package vpm

// This file is the docs-link checker: it fails CI when docs/*.md,
// README.md or ROADMAP.md reference a file that no longer exists or a
// Go symbol (`pkg.Name`, `Type.Member`, `pkg.Type.Member`) that the
// codebase no longer exports. The symbol index is built from the
// repository's own sources with go/parser, so the check needs no
// maintenance as the code evolves — renaming a function and forgetting
// the docs is exactly what it catches.
//
// Matching is deliberately conservative: only backticked tokens that
// unambiguously look like repository paths or resolve their first
// component against this module's packages/types are judged; stdlib
// references, shell snippets and wildcard patterns are ignored, so the
// checker cannot produce false alarms as prose changes.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns the documentation files under the checker's watch.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "ROADMAP.md"}
	matches, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, matches...)
	for _, f := range []string{"README.md", "ROADMAP.md"} {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("%s missing: %v", f, err)
		}
	}
	return files
}

// symbolIndex holds what the codebase exports.
type symbolIndex struct {
	pkgs    map[string]map[string]bool // package name -> top-level idents
	members map[string]map[string]bool // type name -> methods + fields
}

// buildSymbolIndex parses every non-test .go file in the module.
func buildSymbolIndex(t *testing.T) *symbolIndex {
	t.Helper()
	idx := &symbolIndex{
		pkgs:    make(map[string]map[string]bool),
		members: make(map[string]map[string]bool),
	}
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		pkg := f.Name.Name
		if idx.pkgs[pkg] == nil {
			idx.pkgs[pkg] = make(map[string]bool)
		}
		add := func(name string) { idx.pkgs[pkg][name] = true }
		member := func(typ, name string) {
			if idx.members[typ] == nil {
				idx.members[typ] = make(map[string]bool)
			}
			idx.members[typ][name] = true
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil || len(d.Recv.List) == 0 {
					add(d.Name.Name)
					continue
				}
				if typ := receiverType(d.Recv.List[0].Type); typ != "" {
					member(typ, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						add(s.Name.Name)
						if st, ok := s.Type.(*ast.StructType); ok {
							for _, fld := range st.Fields.List {
								for _, n := range fld.Names {
									member(s.Name.Name, n.Name)
								}
							}
						}
						if it, ok := s.Type.(*ast.InterfaceType); ok {
							for _, m := range it.Methods.List {
								for _, n := range m.Names {
									member(s.Name.Name, n.Name)
								}
							}
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							add(n.Name)
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func receiverType(e ast.Expr) string {
	switch r := e.(type) {
	case *ast.Ident:
		return r.Name
	case *ast.StarExpr:
		return receiverType(r.X)
	case *ast.IndexExpr: // generic receiver
		return receiverType(r.X)
	}
	return ""
}

var (
	backtickRe = regexp.MustCompile("`([^`]+)`")
	identRe    = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)
)

// inlineCodeTokens extracts the inline-code spans of a Markdown
// document. Fenced code blocks (```) are skipped — their unpaired
// backticks would otherwise shift every subsequent pairing — and
// spans are matched per line, so a stray backtick never pairs across
// lines.
func inlineCodeTokens(doc string) []string {
	var out []string
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range backtickRe.FindAllStringSubmatch(line, -1) {
			out = append(out, m[1])
		}
	}
	return out
}

// pathLike reports whether a token should be checked as a repository
// path, returning the cleaned path.
func pathLike(tok string) (string, bool) {
	if strings.ContainsAny(tok, "*<>{}?=$ ") || strings.Contains(tok, "://") {
		return "", false
	}
	tok = strings.TrimPrefix(tok, "./")
	prefixes := []string{"internal/", "cmd/", "examples/", "docs/", ".github/"}
	for _, p := range prefixes {
		if strings.HasPrefix(tok, p) {
			return tok, true
		}
	}
	switch filepath.Ext(tok) {
	case ".go", ".md", ".yml", ".json", ".mod":
		// Bare filenames ("main.go") are ambiguous; only check rooted
		// ones and well-known root files.
		if !strings.Contains(tok, "/") {
			root := map[string]bool{"README.md": true, "ROADMAP.md": true, "CHANGES.md": true,
				"PAPER.md": true, "PAPERS.md": true, "SNIPPETS.md": true, "ISSUE.md": true,
				"vpm.go": true, "go.mod": true, "bench_test.go": true, "vpm_test.go": true}
			return tok, root[tok]
		}
		return tok, true
	}
	return "", false
}

// TestDocsReferences is the docs-link checker CI gate.
func TestDocsReferences(t *testing.T) {
	idx := buildSymbolIndex(t)
	var problems []string
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range inlineCodeTokens(string(data)) {
			tok := strings.Trim(m, ".,;:()")
			if p, ok := pathLike(tok); ok {
				if _, err := os.Stat(p); err != nil {
					problems = append(problems, file+": stale path reference `"+tok+"`")
				}
				continue
			}
			if bad, why := checkSymbol(idx, tok); bad {
				problems = append(problems, file+": stale symbol reference `"+tok+"` ("+why+")")
			}
		}
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// checkSymbol judges a dotted token against the symbol index. It only
// reports a problem when the first component resolves to something the
// module owns; unknown qualifiers (stdlib, prose) are skipped.
func checkSymbol(idx *symbolIndex, tok string) (bad bool, why string) {
	parts := strings.Split(tok, ".")
	if len(parts) < 2 || len(parts) > 3 {
		return false, ""
	}
	for _, p := range parts {
		if !identRe.MatchString(p) {
			return false, ""
		}
	}
	if syms, ok := idx.pkgs[parts[0]]; ok {
		// pkg.Name or pkg.Type.Member
		if !syms[parts[1]] {
			return true, "package " + parts[0] + " has no " + parts[1]
		}
		if len(parts) == 3 && !idx.members[parts[1]][parts[2]] {
			return true, "type " + parts[1] + " has no " + parts[2]
		}
		return false, ""
	}
	if members, ok := idx.members[parts[0]]; ok && len(parts) == 2 {
		// Type.Member
		if !members[parts[1]] {
			return true, "type " + parts[0] + " has no " + parts[1]
		}
		return false, ""
	}
	return false, ""
}
