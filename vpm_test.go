package vpm_test

import (
	"math"
	"testing"

	"vpm"
)

// TestPublicAPIEndToEnd walks the documented quickstart path through
// the facade only: generate traffic, build the Figure 1 topology,
// deploy, run, estimate, verify. It pins the public API surface the
// examples and downstream users rely on.
func TestPublicAPIEndToEnd(t *testing.T) {
	traceCfg := vpm.TraceConfig{
		Seed:       101,
		DurationNS: int64(400e6),
		Paths:      []vpm.TracePathSpec{vpm.DefaultTracePath(100000)},
	}
	pkts, err := vpm.GenerateTrace(traceCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 30000 {
		t.Fatalf("trace too small: %d", len(pkts))
	}
	key := vpm.PathKey{Src: traceCfg.Paths[0].SrcPrefix, Dst: traceCfg.Paths[0].DstPrefix}

	path := vpm.Fig1Path(103)
	xi := path.DomainIndex("X")
	queue, err := vpm.NewCongestionQueue(vpm.BurstyUDPScenario(107))
	if err != nil {
		t.Fatal(err)
	}
	path.Domains[xi].Delay = queue
	loss, err := vpm.GilbertElliottLoss(0.15, 8, 109)
	if err != nil {
		t.Fatal(err)
	}
	path.Domains[xi].Loss = loss

	dep, err := vpm.NewDeployment(path, traceCfg.Table(), vpm.DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	truth, err := path.Run(pkts, dep.Observers())
	if err != nil {
		t.Fatal(err)
	}
	dep.Finalize()

	v := dep.NewVerifier(key)
	rep, err := v.DomainReport("X", vpm.DefaultQuantiles, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	xTruth, ok := truth.DomainByName("X")
	if !ok {
		t.Fatal("no ground truth for X")
	}
	if math.Abs(rep.Loss.Rate()-xTruth.LossRate()) > 1e-9 {
		t.Errorf("loss %v vs truth %v", rep.Loss.Rate(), xTruth.LossRate())
	}
	if len(rep.DelayEstimates) != 3 || rep.DelaySamples == 0 {
		t.Fatalf("delay estimation incomplete: %+v", rep)
	}
	for _, lv := range v.VerifyAllLinks() {
		if !lv.Consistent() {
			t.Errorf("honest link flagged: %v", lv)
		}
	}
}

// TestPublicAPIAdversary exercises the facade's threat-model tooling.
func TestPublicAPIAdversary(t *testing.T) {
	traceCfg := vpm.TraceConfig{
		Seed:       111,
		DurationNS: int64(300e6),
		Paths:      []vpm.TracePathSpec{vpm.DefaultTracePath(100000)},
	}
	pkts, err := vpm.GenerateTrace(traceCfg)
	if err != nil {
		t.Fatal(err)
	}
	key := vpm.PathKey{Src: traceCfg.Paths[0].SrcPrefix, Dst: traceCfg.Paths[0].DstPrefix}
	path := vpm.Fig1Path(113)
	loss, err := vpm.GilbertElliottLoss(0.2, 8, 127)
	if err != nil {
		t.Fatal(err)
	}
	path.Domains[path.DomainIndex("X")].Loss = loss
	dep, err := vpm.NewDeployment(path, traceCfg.Table(), vpm.DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := path.Run(pkts, dep.Observers()); err != nil {
		t.Fatal(err)
	}
	dep.Finalize()

	v := vpm.NewVerifier(dep.Layout())
	v.SetConfig(dep.VerifierConfig())
	var xInS vpm.SampleReceipt
	var xInA []vpm.AggReceipt
	for hop, proc := range dep.Processors {
		if hop == 5 {
			continue
		}
		for _, s := range proc.CombinedSamples() {
			if s.Path.Key == key {
				v.AddSampleReceipt(hop, s)
				if hop == 4 {
					xInS = s
				}
			}
		}
		var aggs []vpm.AggReceipt
		for _, a := range proc.Aggs {
			if a.Path.Key == key {
				aggs = append(aggs, a)
			}
		}
		v.AddAggReceipts(hop, aggs)
		if hop == 4 {
			xInA = aggs
		}
	}
	egressPath := path.PathIDFor(vpm.PathID{Key: key}, path.DomainIndex("X"), false)
	fs, fa := vpm.FabricateDelivery(xInS, xInA, egressPath, 500_000)
	v.AddSampleReceipt(5, fs)
	v.AddAggReceipts(5, fa)
	verdict := v.CheckLink(5, 6)
	if verdict.Consistent() {
		t.Fatal("facade adversary tooling failed to produce a detectable lie")
	}
}

// TestPublicAPIStoreAndStreaming pins the scaled verification
// surface: the shared ReceiptStore, key-restricted verifiers, the
// parallel worker pool, and signed-bundle streaming ingest.
func TestPublicAPIStoreAndStreaming(t *testing.T) {
	traceCfg := vpm.TraceConfig{
		Seed:       131,
		DurationNS: int64(200e6),
		Paths:      []vpm.TracePathSpec{vpm.DefaultTracePath(100000)},
	}
	pkts, err := vpm.GenerateTrace(traceCfg)
	if err != nil {
		t.Fatal(err)
	}
	key := vpm.PathKey{Src: traceCfg.Paths[0].SrcPrefix, Dst: traceCfg.Paths[0].DstPrefix}
	path := vpm.Fig1Path(137)
	dep, err := vpm.NewDeployment(path, traceCfg.Table(), vpm.DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := path.Run(pkts, dep.Observers()); err != nil {
		t.Fatal(err)
	}
	dep.Finalize()

	// Shared store + parallel pool must reproduce the private-store
	// serial verdicts exactly.
	baseline := dep.NewVerifier(key).VerifyAllLinks()
	store := dep.NewStore()
	v := dep.NewVerifierOn(store, key)
	cfg := dep.VerifierConfig()
	cfg.Workers = 4
	v.SetConfig(cfg)
	parallel := v.VerifyAllLinks()
	if len(parallel) != len(baseline) {
		t.Fatalf("parallel produced %d verdicts, baseline %d", len(parallel), len(baseline))
	}
	for i := range parallel {
		if parallel[i].String() != baseline[i].String() || parallel[i].LinkID != i {
			t.Fatalf("verdict %d diverged: %v vs %v", i, parallel[i], baseline[i])
		}
	}
	reports, err := v.DomainReports(vpm.DefaultQuantiles, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 { // L, X, N
		t.Fatalf("%d domain reports, want 3", len(reports))
	}

	// Streaming ingest of signed bundles must match batch ingest.
	reg := vpm.KeyRegistry{}
	ch := make(chan vpm.SignedReceiptBundle, len(dep.Processors))
	for hop, proc := range dep.Processors {
		var seed [32]byte
		seed[0] = byte(hop)
		signer := vpm.NewBundleSigner(seed)
		reg[hop] = signer.Public()
		ch <- signer.Sign(&vpm.ReceiptBundle{Origin: hop, Samples: proc.CombinedSamples(), Aggs: proc.Aggs})
	}
	close(ch)
	vs := vpm.NewVerifierFor(dep.Layout(), key)
	vs.SetConfig(dep.VerifierConfig())
	if err := vs.IngestBundles(reg, ch); err != nil {
		t.Fatal(err)
	}
	streamed := vs.VerifyAllLinks()
	for i := range streamed {
		if streamed[i].String() != baseline[i].String() {
			t.Fatalf("streamed verdict %d diverged: %v vs %v", i, streamed[i], baseline[i])
		}
	}
}

// TestPublicAPIReceipts pins receipt construction and combination.
func TestPublicAPIReceipts(t *testing.T) {
	p := vpm.PathID{Key: vpm.PathKey{
		Src: vpm.MakePrefix(10, 0, 0, 0, 8),
		Dst: vpm.MakePrefix(172, 16, 0, 0, 12),
	}}
	r1 := vpm.SampleReceipt{Path: p, Samples: []vpm.SampleRecord{{PktID: 1, TimeNS: 2}}}
	r2 := vpm.SampleReceipt{Path: p, Samples: []vpm.SampleRecord{{PktID: 3, TimeNS: 4}}}
	combined, err := vpm.CombineSamples(r1, r2)
	if err != nil || len(combined.Samples) != 2 {
		t.Fatalf("combine: %v, %d samples", err, len(combined.Samples))
	}
	a1 := vpm.AggReceipt{Path: p, PktCnt: 10}
	a2 := vpm.AggReceipt{Path: p, PktCnt: 5}
	agg, err := vpm.CombineAggregates(a1, a2)
	if err != nil || agg.PktCnt != 15 {
		t.Fatalf("aggregate combine: %v, count %d", err, agg.PktCnt)
	}
	if _, err := vpm.EstimateQuantile([]float64{1, 2, 3, 4, 5}, 0.5, 0.9); err != nil {
		t.Fatalf("quantile: %v", err)
	}
}
