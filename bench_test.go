// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md's per-experiment index), plus the ablations
// DESIGN.md calls out. Each benchmark runs the corresponding
// experiment at a reduced scale and reports the headline quantity via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a smoke
// run of the whole evaluation; cmd/vpm-bench runs the full scale.
package vpm

import (
	"fmt"
	"runtime"
	"testing"

	"vpm/internal/core"
	"vpm/internal/experiments"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/trace"
)

// benchCfg is the reduced scale used by benchmarks.
func benchCfg() experiments.Config {
	return experiments.Config{Seed: 9, RatePPS: 100000, DurationNS: int64(200e6)}
}

// BenchmarkFig2DelayAccuracy regenerates Figure 2 (E1): delay accuracy
// vs sampling rate under loss. Reported metric: accuracy in ms at the
// paper's headline cell (1% sampling, 25% loss).
func BenchmarkFig2DelayAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.SampleRatePct == 1 && r.LossPct == 25 {
				b.ReportMetric(r.AccuracyMS, "ms-accuracy@1%,25%loss")
			}
		}
	}
}

// BenchmarkFig3LossGranularity regenerates Figure 3 (E2): loss
// granularity vs loss rate. Reported metric: granularity degradation
// factor at 25% loss.
func BenchmarkFig3LossGranularity(b *testing.B) {
	cfg := benchCfg()
	cfg.DurationNS = int64(500e6)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var base, mid float64
		for _, r := range rows {
			if r.LossPct == 0 {
				base = r.GranularitySec
			}
			if r.LossPct == 25 {
				mid = r.GranularitySec
			}
		}
		if base > 0 {
			b.ReportMetric(mid/base, "granularity-x@25%loss")
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (E3): the partition algebra.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1(); len(rows) != 5 {
			b.Fatal("table 1 incomplete")
		}
	}
}

// BenchmarkMemoryOverhead regenerates the §7.1 memory table (E4).
func BenchmarkMemoryOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.MemoryOverhead()
		b.ReportMetric(float64(rows[0].Ours.MonitoringCacheBytes)/1e6, "MB-cache@100kpaths")
	}
}

// BenchmarkBandwidthOverhead regenerates the §7.1 bandwidth numbers
// (E5). Reported metric: measured receipt overhead in percent on the
// Figure 1 path.
func BenchmarkBandwidthOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BandwidthOverhead(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].MeasuredPct, "%-receipt-overhead")
	}
}

// BenchmarkForwardingBaseline and BenchmarkForwardingWithVPM
// regenerate the §7.1 Click throughput experiment (E6) as proper
// testing.B loops over the identical per-packet work.
func BenchmarkForwardingBaseline(b *testing.B) {
	pkts, wires := forwardingWorkload(b)
	var scratch packet.Packet
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := wires[i%len(pkts)]
		if err := scratch.Parse(w); err != nil {
			b.Fatal(err)
		}
		scratch.TTL--
	}
}

// BenchmarkForwardingWithVPM is the same loop with the collector
// attached — the difference is VPM's true data-plane cost.
func BenchmarkForwardingWithVPM(b *testing.B) {
	pkts, wires := forwardingWorkload(b)
	tc := benchTraceConfig()
	col, err := core.NewCollector(core.CollectorConfig{
		HOP:   4,
		Table: tc.Table(),
		PathID: func(key packet.PathKey) receipt.PathID {
			return receipt.PathID{Key: key}
		},
		Sampling:    core.DefaultSamplingConfig(),
		Aggregation: core.DefaultAggregationConfig(),
	})
	if err != nil {
		b.Fatal(err)
	}
	var scratch packet.Packet
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := wires[i%len(pkts)]
		if err := scratch.Parse(w); err != nil {
			b.Fatal(err)
		}
		scratch.TTL--
		col.Observe(&scratch, scratch.Digest(1), int64(i)*10_000)
		if i%1_000_000 == 999_999 {
			col.Drain()
		}
	}
}

func benchTraceConfig() trace.Config {
	return trace.Config{
		Seed:       3,
		DurationNS: int64(100e6),
		Paths:      []trace.PathSpec{trace.DefaultPath(100000)},
	}
}

func forwardingWorkload(b *testing.B) ([]packet.Packet, [][]byte) {
	b.Helper()
	pkts, err := trace.Generate(benchTraceConfig())
	if err != nil {
		b.Fatal(err)
	}
	wires := make([][]byte, len(pkts))
	for i := range pkts {
		wires[i] = pkts[i].Serialize(nil)
	}
	return pkts, wires
}

// collectorWorkload materializes the Fig1 foreground workload as a
// ready-to-feed observation stream — the same stream cmd/vpm-bench's
// throughput experiment measures.
func collectorWorkload(b *testing.B) []netsim.Observation {
	b.Helper()
	obs, err := experiments.CollectorWorkload(benchTraceConfig())
	if err != nil {
		b.Fatal(err)
	}
	return obs
}

func benchCollectorConfig(b *testing.B, shards int) core.CollectorConfig {
	b.Helper()
	return experiments.ThroughputCollectorConfig(benchTraceConfig().Table(), shards)
}

// observeSteadyState drives a collector benchmark with the
// steady-state protocol shared by TestObserveBatchSteadyStateZeroAlloc
// and the throughput experiment: warmup passes grow every accumulator
// and prime the recycled buffers, timestamps shift forward by one
// workload span per pass (so the reordering window keeps evicting
// instead of accumulating a restarted clock), and each iteration's
// Drain hands its buffers back via Recycle. Only the feed is timed;
// the allocs/pkt metric meters the whole cycle. Returns allocations
// per packet over the measured iterations.
func observeSteadyState(b *testing.B, col core.PathCollector, workload []netsim.Observation, feed func()) float64 {
	b.Helper()
	span := experiments.WorkloadSpan(workload)
	for i := 0; i < 3; i++ {
		experiments.ShiftWorkload(workload, span)
		feed()
		samples, aggs := col.Drain()
		col.Recycle(samples, aggs)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		experiments.ShiftWorkload(workload, span)
		b.StartTimer()
		feed()
		b.StopTimer()
		samples, aggs := col.Drain()
		col.Recycle(samples, aggs)
		b.StartTimer()
	}
	runtime.ReadMemStats(&after)
	allocsPerPkt := float64(after.Mallocs-before.Mallocs) / (float64(b.N) * float64(len(workload)))
	b.ReportMetric(allocsPerPkt, "allocs/pkt")
	reportThroughput(b, len(workload))
	return allocsPerPkt
}

// BenchmarkObserveSerial is the baseline of the sharding acceptance
// comparison: single-packet Observe calls through the netsim.Observer
// interface, one virtual call, classification and map lookup per
// packet — the pre-sharding hot path.
func BenchmarkObserveSerial(b *testing.B) {
	workload := collectorWorkload(b)
	col, err := core.NewCollector(benchCollectorConfig(b, 1))
	if err != nil {
		b.Fatal(err)
	}
	var obs netsim.Observer = col
	observeSteadyState(b, col, workload, func() {
		for j := range workload {
			obs.Observe(workload[j].Pkt, workload[j].Digest, workload[j].TimeNS)
		}
	})
}

// BenchmarkObserveBatchSharded measures the sharded batch pipeline at
// 1/2/4/8 shards on the same Fig1 workload. The acceptance bars: ≥ 2×
// BenchmarkObserveSerial's packet rate at 4 shards, and steady-state
// allocations within core.AllocsPerPktBudget — the CI zero-alloc gate
// fails the build when the observe → drain → recycle cycle starts
// allocating again.
func BenchmarkObserveBatchSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			workload := collectorWorkload(b)
			col, err := core.NewShardedCollector(benchCollectorConfig(b, shards))
			if err != nil {
				b.Fatal(err)
			}
			const batch = experiments.ThroughputBatchSize
			allocsPerPkt := observeSteadyState(b, col, workload, func() {
				for off := 0; off < len(workload); off += batch {
					end := off + batch
					if end > len(workload) {
						end = len(workload)
					}
					col.ObserveBatch(workload[off:end])
				}
			})
			if allocsPerPkt > core.AllocsPerPktBudget {
				b.Fatalf("steady-state allocations %.6f/pkt exceed budget %.4f",
					allocsPerPkt, core.AllocsPerPktBudget)
			}
		})
	}
}

// reportThroughput converts a per-iteration packet count into the
// pkts/s and ns/pkt metrics the perf trajectory tracks.
func reportThroughput(b *testing.B, pktsPerIter int) {
	total := float64(b.N) * float64(pktsPerIter)
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(total/secs, "pkts/s")
		b.ReportMetric(secs*1e9/total, "ns/pkt")
	}
}

// verifyWorld builds the reduced-scale 16-HOP × 64-path verification
// scenario once per benchmark.
func verifyWorld(b *testing.B) (*core.Deployment, []packet.PathKey) {
	b.Helper()
	cfg := benchCfg()
	cfg.DurationNS = int64(100e6)
	dep, keys, err := experiments.VerifyScenario(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return dep, keys
}

// BenchmarkVerifyRebuildSerial is the baseline of the verification
// acceptance comparison: the pre-store shape, where every path key
// re-scans the deployment's receipts into a private verifier and then
// checks its links serially.
func BenchmarkVerifyRebuildSerial(b *testing.B) {
	dep, keys := verifyWorld(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var matched int
		for _, key := range keys {
			v := dep.NewVerifier(key)
			vc := dep.VerifierConfig()
			vc.Workers = 1
			v.SetConfig(vc)
			for _, lv := range v.VerifyAllLinks() {
				matched += lv.MatchedSamples
			}
		}
		if matched == 0 {
			b.Fatal("no matched samples")
		}
	}
	reportVerifyThroughput(b, len(keys)*len(dep.Layout().Links()))
}

// BenchmarkVerifyIndexed measures VerifyAllLinks over the shared
// indexed store at 1/2/4/8 workers on the same scenario. The
// acceptance bar is ≥ 2× the serial link-check rate at 4 workers on
// multi-core hardware; on a single-core host the pool must be
// throughput-neutral.
func BenchmarkVerifyIndexed(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			dep, keys := verifyWorld(b)
			store := dep.NewStore()
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var matched int
				for _, key := range keys {
					v := dep.NewVerifierOn(store, key)
					vc := dep.VerifierConfig()
					vc.Workers = workers
					v.SetConfig(vc)
					for _, lv := range v.VerifyAllLinks() {
						matched += lv.MatchedSamples
					}
				}
				if matched == 0 {
					b.Fatal("no matched samples")
				}
			}
			reportVerifyThroughput(b, len(keys)*len(dep.Layout().Links()))
		})
	}
}

// BenchmarkVerifyStoreIngest measures indexing the whole deployment's
// receipts into a fresh store — the amortized-once cost the indexed
// modes pay instead of 64 per-key rebuilds.
func BenchmarkVerifyStoreIngest(b *testing.B) {
	dep, _ := verifyWorld(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		store := dep.NewStore()
		if len(store.Keys()) == 0 {
			b.Fatal("empty store")
		}
	}
}

// reportVerifyThroughput converts per-iteration link checks into the
// link-checks/s metric the perf trajectory tracks.
func reportVerifyThroughput(b *testing.B, checksPerIter int) {
	total := float64(b.N) * float64(checksPerIter)
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(total/secs, "linkchecks/s")
	}
}

// BenchmarkVerifiability regenerates the §7.2 verifiability numbers
// (E7). Reported metric: verification accuracy in ms when the witness
// samples at 0.1%.
func BenchmarkVerifiability(b *testing.B) {
	cfg := benchCfg()
	cfg.DurationNS = int64(500e6)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Verifiability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.NRatePct == 0.1 {
				b.ReportMetric(r.VerifyMS, "ms-verify@0.1%witness")
			}
		}
	}
}

// BenchmarkAttacks regenerates the §3 attack ablation (E8). Reported
// metric: how much loss the TS++ bias attack hides, in percentage
// points.
func BenchmarkAttacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Attacks(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Protocol == "TS++" {
				b.ReportMetric(r.TrueLossPct-r.EstLossPct, "pct-loss-hidden-by-TS++bias")
			}
		}
	}
}

// BenchmarkAblationMarkerRate sweeps the marker rate µ (DESIGN.md
// ablation): more frequent markers shrink the bias-resistance buffer
// but add always-sampled marker traffic. Reported metric: sampler
// temp-buffer high-water mark in entries.
func BenchmarkAblationMarkerRate(b *testing.B) {
	for _, markerRate := range []float64{0.0001, 0.001, 0.01} {
		b.Run(pct(markerRate), func(b *testing.B) {
			tc := benchTraceConfig()
			pkts, err := trace.Generate(tc)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				dc := core.DefaultDeployConfig()
				dc.MarkerRate = markerRate
				path := netsim.Fig1Path(5)
				dep, err := core.NewDeployment(path, tc.Table(), dc)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := path.Run(pkts, dep.Observers()); err != nil {
					b.Fatal(err)
				}
				dep.Finalize()
				b.ReportMetric(float64(dep.Collectors[4].Memory().TempBufferPeakEntries), "tempbuf-entries")
			}
		})
	}
}

// BenchmarkAblationPatchUp compares J = 0 (no AggTrans; the Difference
// Aggregator ++ behaviour) against the default window under
// reordering. Reported metric: phantom losses per run attributed by
// the verifier when nothing was actually dropped.
func BenchmarkAblationPatchUp(b *testing.B) {
	for _, window := range []int64{0, 2_000_000} {
		name := "J=0"
		if window > 0 {
			name = "J=2ms"
		}
		b.Run(name, func(b *testing.B) {
			tc := benchTraceConfig()
			pkts, err := trace.Generate(tc)
			if err != nil {
				b.Fatal(err)
			}
			key := packet.PathKey{Src: tc.Paths[0].SrcPrefix, Dst: tc.Paths[0].DstPrefix}
			for i := 0; i < b.N; i++ {
				dc := core.DefaultDeployConfig()
				dc.WindowNS = window
				dc.Default.AggRate = 0.001 // many aggregates -> many cut windows
				path := netsim.Fig1Path(6)
				dep, err := core.NewDeployment(path, tc.Table(), dc)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := path.Run(pkts, dep.Observers()); err != nil {
					b.Fatal(err)
				}
				dep.Finalize()
				v := dep.NewVerifier(key)
				rep, err := v.LossBetween(4, 5)
				if err != nil {
					b.Fatal(err)
				}
				// Per-pair absolute misalignment: a packet reordered
				// across a cut inflates one pair and deflates the
				// next, so the net sum hides it.
				var phantom int64
				for _, p := range rep.Pairs {
					if l := p.Lost(); l >= 0 {
						phantom += l
					} else {
						phantom -= l
					}
				}
				b.ReportMetric(float64(phantom), "phantom-losses")
			}
		})
	}
}

func pct(r float64) string {
	switch {
	case r >= 0.01:
		return "mu=1%"
	case r >= 0.001:
		return "mu=0.1%"
	default:
		return "mu=0.01%"
	}
}

// BenchmarkQuantileEstimation measures the verifier-side estimation
// cost for a realistic sample population.
func BenchmarkQuantileEstimation(b *testing.B) {
	delays := make([]float64, 5000)
	for i := range delays {
		delays[i] = float64(i%997) * 1e4
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := quantile.Quantiles(delays, quantile.DefaultQuantiles, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}
