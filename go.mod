module vpm

go 1.24

tool vpm/cmd/vpm-lint
