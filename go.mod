module vpm

go 1.24
