// Package vpm is a library implementation of "Verifiable
// Network-Performance Measurements" (Argyraki, Maniatis, Singla —
// CoNEXT 2010): a voluntary self-reporting protocol by which network
// domains produce traffic receipts that let their customers and peers
// compute — and, crucially, verify — each domain's loss and delay
// performance, at an independently tunable resource cost.
//
// The package re-exports the library's public surface from the
// internal implementation packages:
//
//   - packet model and origin-prefix classification (internal/packet)
//   - bias-resistant delay sampling, Algorithm 1 (internal/sampling)
//   - tunable aggregation with reorder patch-up, Algorithm 2
//     (internal/aggregation)
//   - traffic receipts, combination and consistency (internal/receipt)
//   - the Collector/Processor/Verifier protocol stack (internal/core)
//   - the simulation substrate: domains, HOPs, links, loss and
//     congestion models, synthetic traces (internal/netsim and
//     friends)
//   - signed receipt dissemination over HTTP (internal/dissem)
//
// # Concurrency and sharding
//
// The collection pipeline is sharded for multi-core throughput. A
// Collector is one single-threaded shard of a HOP's data plane; a
// ShardedCollector hash-partitions origin-prefix paths across N such
// shards, each owning its own path map, sampler and partitioner
// state, so the per-packet path takes no locks. Observers can receive
// traffic either packet-at-a-time (Observe) or in arrival-order
// batches (ObserveBatch, the BatchObserver interface), which
// amortizes dispatch and classification; the simulator replays each
// HOP's observations concurrently with every other HOP's, in batches.
// DeployConfig.Shards selects the parallelism per HOP (0 = GOMAXPROCS,
// 1 = serial); sharded and serial deployments produce byte-identical
// receipts for the same traffic, and both drain receipts in
// deterministic PathID-sorted order.
//
// # Verification
//
// The verification side scales the same way. Receipts are ingested
// into a ReceiptStore — an indexed, concurrent store keyed by (HOP,
// traffic key) — either up front (Deployment.NewStore,
// Verifier.AddSampleReceipt) or incrementally from signed
// dissemination bundles (Verifier.Ingest, IngestSigned, and
// IngestBundles; BundleClient.FetchEach streams bundles off the wire
// one at a time, authenticating each signature before it is
// ingested). One store serves many verifiers: build it once, then
// attach a key-restricted verifier per origin-prefix path
// (Deployment.NewVerifierOn, NewVerifierOn) without re-scanning
// receipts per path. Verifier.VerifyAllLinks and
// Verifier.DomainReports fan their independent link and domain checks
// over a worker pool (VerifierConfig.Workers: 0 = GOMAXPROCS, 1 =
// serial); verdicts are byte-identical at any pool size and return in
// deterministic LinkID (path) order, with missing-record checks
// answered by a binary search over each index's cached marker
// timeline instead of a scan over all of a HOP's samples.
//
// # Continuous operation
//
// The pipeline also runs continuously, over a stream of rotating
// epochs (reporting intervals), instead of as a one-shot batch. An
// EpochDriver wraps every collector of a Deployment in an epoch clock:
// when a HOP's observation timestamps cross an interval boundary the
// collector rotates (RotateInterval), sealing the receipts finalized
// during the closing epoch without disturbing open state — an
// aggregate spanning the boundary keeps counting and lands in the
// epoch where it closes, so the concatenated epoch stream is
// byte-identical to a one-shot run's receipts. Sealed epochs flow
// (optionally as epoch-tagged signed bundles, BundleServer.PublishEpoch)
// into a WindowedStore — one ReceiptStore segment per epoch — and a
// RollingVerifier verifies each epoch as soon as every HOP has sealed
// it, concurrently with ingest of the next, while verified epochs
// older than the retention window are evicted (unverified epochs
// never are). Traffic segments come from TraceGenerator.NextChunk and
// a SimRunner, whose network state persists across segments. See
// examples/continuous and cmd/vpm-node.
//
// # Mesh & multipath topologies
//
// Beyond linear paths, a Topology models an arbitrary directed domain
// graph: every directed link contributes an egress and an ingress HOP,
// so a link shared by many origin-prefix paths is one HOP pair whose
// collectors file receipts for every traffic key crossing it. A Route
// is one key's HOP sequence through the graph; several routes per key
// is ECMP multipath, hash-split per packet by the TopoRunner (whose
// segmented replay semantics match SimRunner's exactly). Named
// families — StarTopology, TreeTopology, ClosTopology,
// RandomASTopology — build mesh fixtures; NewTopoDeployment places
// collectors on every routed HOP, verification runs per (key, route)
// against RouteLayouts, and MergeBlames condenses per-key findings so
// a faulty shared link is named by every key crossing it while honest
// disjoint routes stay clean. See `vpm-bench -run topo`.
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	pkts, _ := vpm.GenerateTrace(vpm.TraceConfig{
//		Seed: 1, DurationNS: 1e9,
//		Paths: []vpm.TracePathSpec{vpm.DefaultTracePath(100000)},
//	})
//	path := vpm.Fig1Path(7)                  // S -> L -> X -> N -> D
//	dep, _ := vpm.NewDeployment(path, table, vpm.DefaultDeployConfig())
//	path.Run(pkts, dep.Observers())
//	dep.Finalize()
//	v := dep.NewVerifier(key)
//	report, _ := v.DomainReport("X", vpm.DefaultQuantiles, 0.95)
package vpm

import (
	"vpm/internal/aggregation"
	"vpm/internal/core"
	"vpm/internal/delaymodel"
	"vpm/internal/dissem"
	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/sampling"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

// Packet model.
type (
	// Packet is an IPv4 packet with transport header and simulation
	// metadata.
	Packet = packet.Packet
	// Prefix is an IPv4 origin prefix.
	Prefix = packet.Prefix
	// PathKey names a HOP path by its origin-prefix pair.
	PathKey = packet.PathKey
	// PrefixTable performs longest-prefix matching.
	PrefixTable = packet.Table
)

// MakePrefix builds an origin prefix from octets and a length.
func MakePrefix(a, b, c, d byte, bits int) Prefix { return packet.MakePrefix(a, b, c, d, bits) }

// NewPrefixTable builds a longest-prefix-match table.
func NewPrefixTable(prefixes []Prefix) *PrefixTable { return packet.NewTable(prefixes) }

// Receipts.
type (
	// HOPID identifies a hand-off point.
	HOPID = receipt.HOPID
	// PathID names the HOP path a receipt belongs to.
	PathID = receipt.PathID
	// SampleRecord is one delay-sampled 〈PktID, Time〉 measurement.
	SampleRecord = receipt.SampleRecord
	// SampleReceipt is a receipt for a set of sampled packets.
	SampleReceipt = receipt.SampleReceipt
	// AggReceipt is a receipt for a packet aggregate.
	AggReceipt = receipt.AggReceipt
	// Inconsistency is one receipt-consistency violation.
	Inconsistency = receipt.Inconsistency
)

// CombineSamples is the receipt combination operator ⊎ for sample
// receipts.
func CombineSamples(rs ...SampleReceipt) (SampleReceipt, error) {
	return receipt.CombineSamples(rs...)
}

// CombineAggregates is the ⊎ operator for consecutive aggregate
// receipts.
func CombineAggregates(rs ...AggReceipt) (AggReceipt, error) {
	return receipt.CombineAggregates(rs...)
}

// Protocol stack.
type (
	// Collector is the per-HOP data-plane module (one shard's worth).
	Collector = core.Collector
	// ShardedCollector hash-partitions paths across N collector
	// shards for multi-core throughput.
	ShardedCollector = core.ShardedCollector
	// PathCollector is the data-plane surface both Collector and
	// ShardedCollector implement.
	PathCollector = core.PathCollector
	// CollectorConfig configures a collector.
	CollectorConfig = core.CollectorConfig
	// Processor is the per-HOP control-plane module.
	Processor = core.Processor
	// Deployment wires collectors onto a simulated path.
	Deployment = core.Deployment
	// DeployConfig configures a deployment.
	DeployConfig = core.DeployConfig
	// Tuning is one domain's sampling/aggregation rates.
	Tuning = core.Tuning
	// Verifier estimates and verifies per-domain performance from
	// receipts.
	Verifier = core.Verifier
	// ReceiptStore is the indexed, concurrent receipt store behind
	// verifiers; one store can serve many per-path verifiers.
	ReceiptStore = core.ReceiptStore
	// DomainReport is a verifier's estimate for one domain.
	DomainReport = core.DomainReport
	// LinkVerdict is the consistency verdict for one inter-domain
	// link.
	LinkVerdict = core.LinkVerdict
	// MarkerBiasReport is the outcome of the marker-preference check.
	MarkerBiasReport = core.MarkerBiasReport
	// Segment is one adjacency (link or domain crossing) of a Layout.
	Segment = core.Segment
	// SegmentKind distinguishes link segments from domain segments.
	SegmentKind = core.SegmentKind
	// LossReport is the aggregate-based loss computation.
	LossReport = core.LossReport
	// SamplingConfig parameterizes Algorithm 1.
	SamplingConfig = sampling.Config
	// AggregationConfig parameterizes Algorithm 2.
	AggregationConfig = aggregation.Config
	// Layout describes a path's HOPs and segments for a verifier.
	Layout = core.Layout
	// VerifierConfig carries deployment constants for a hand-built
	// verifier.
	VerifierConfig = core.VerifierConfig
)

// Segment kinds (see core.SegmentKind).
const (
	// LinkSegment is an inter-domain link — where consistency is
	// checked.
	LinkSegment = core.LinkSegment
	// DomainSegment is an intra-domain crossing — where performance
	// is estimated.
	DomainSegment = core.DomainSegment
)

// NewVerifier builds a verifier over a path layout for hand-fed
// receipts; Deployment.NewVerifier is the usual entry point.
func NewVerifier(layout Layout) *Verifier { return core.NewVerifier(layout) }

// NewVerifierFor builds a verifier restricted to one origin-prefix
// path key: receipts for other paths (e.g. in multi-path
// dissemination bundles) are ingested but never read back.
func NewVerifierFor(layout Layout, key PathKey) *Verifier { return core.NewVerifierFor(layout, key) }

// NewVerifierOn builds a key-restricted verifier over a shared
// ReceiptStore; Deployment.NewVerifierOn is the usual entry point.
func NewVerifierOn(layout Layout, store *ReceiptStore, key PathKey) *Verifier {
	return core.NewVerifierOn(layout, store, key)
}

// NewReceiptStore returns an empty indexed receipt store, to be shared
// across per-path verifiers via NewVerifierOn.
func NewReceiptStore() *ReceiptStore { return core.NewReceiptStore() }

// Byzantine adversary framework (threat-model tooling). Data-plane
// adversaries (HOPAdversary) are worn by a HOP via WearAdversary and
// rewrite its observation stream; control-plane adversaries
// (EpochAdversary) are interposed between epoch rotation and
// publication with NewAdversarySink and rewrite sealed receipts;
// dissemination attacks (BundleTamper) install on a BundleServer with
// SetTamper. Verification answers with blame attribution: each Blame
// names the narrowest implicated HOP/domain set and the evidence
// class. See the attack-matrix section in README.md.
type (
	// HOPAdversary rewrites the observation stream of one HOP (the
	// data-plane half of the Byzantine framework).
	HOPAdversary = netsim.Adversary
	// EpochAdversary rewrites a domain's sealed epoch receipts before
	// publication (the control-plane half).
	EpochAdversary = core.EpochAdversary
	// SealedEpoch is one HOP's sealed interval as an EpochAdversary
	// sees it.
	SealedEpoch = core.SealedEpoch
	// BundleTamper intercepts bundles at the dissemination boundary.
	BundleTamper = dissem.BundleTamper
	// Blame is one attribution: narrowest implicated set + evidence
	// class + epoch.
	Blame = core.Blame
	// EvidenceClass classifies the proof behind a Blame.
	EvidenceClass = core.EvidenceClass
	// Equivocation is a non-repudiable two-signatures proof.
	Equivocation = dissem.Equivocation
)

// WearAdversary dresses a HOP's observer in a data-plane adversary.
func WearAdversary(hop HOPID, adv HOPAdversary, obs Observer) Observer {
	return netsim.Wear(hop, adv, obs)
}

// NewAdversarySink interposes a control-plane adversary between an
// epoch pipeline and its publication sink.
func NewAdversarySink(sink EpochSink, adv EpochAdversary) EpochSink {
	return core.NewAdversarySink(sink, adv)
}

// AttributeBlame condenses link verdicts into blame findings.
func AttributeBlame(layout Layout, epoch EpochID, verdicts []LinkVerdict) []Blame {
	return core.AttributeBlame(layout, epoch, verdicts)
}

// FindEquivocation cross-checks two verifiers' signed bundles from
// one origin for contradictions.
func FindEquivocation(reg KeyRegistry, origin HOPID, a, b []SignedReceiptBundle) []Equivocation {
	return dissem.FindEquivocation(reg, origin, a, b)
}

// FabricateDelivery is the blame-shift lie (threat-model tooling): a
// domain claims it delivered traffic it dropped. See
// examples/liar-detection.
func FabricateDelivery(ingressSamples SampleReceipt, ingressAggs []AggReceipt,
	egressPath PathID, claimedDelayNS int64) (SampleReceipt, []AggReceipt) {
	return core.FabricateDelivery(ingressSamples, ingressAggs, egressPath, claimedDelayNS)
}

// CoverUpReceipt is the collusion lie: a neighbor echoes a liar's
// fabricated claims, absorbing the blame.
func CoverUpReceipt(liarEgress SampleReceipt, ownPath PathID, linkDelayNS int64) SampleReceipt {
	return core.CoverUpReceipt(liarEgress, ownPath, linkDelayNS)
}

// CoverUpAggs forges matching aggregate receipts for a cover-up.
func CoverUpAggs(liarEgress []AggReceipt, ownPath PathID, linkDelayNS int64) []AggReceipt {
	return core.CoverUpAggs(liarEgress, ownPath, linkDelayNS)
}

// ShaveDelays is the delay-exaggeration lie: egress timestamps
// compressed toward ingress ones.
func ShaveDelays(ingress, egress SampleReceipt, factor float64) SampleReceipt {
	return core.ShaveDelays(ingress, egress, factor)
}

// NewCollector builds a standalone single-threaded collector.
func NewCollector(cfg CollectorConfig) (*Collector, error) { return core.NewCollector(cfg) }

// NewShardedCollector builds a standalone sharded collector with
// cfg.Shards shards (0 = GOMAXPROCS).
func NewShardedCollector(cfg CollectorConfig) (*ShardedCollector, error) {
	return core.NewShardedCollector(cfg)
}

// NewPathCollector builds the collector variant cfg.Shards selects.
func NewPathCollector(cfg CollectorConfig) (PathCollector, error) {
	return core.NewPathCollector(cfg)
}

// NewProcessor attaches a control-plane processor to a collector.
func NewProcessor(c PathCollector) *Processor { return core.NewProcessor(c) }

// NewDeployment wires collectors onto every HOP of a path.
func NewDeployment(p *Path, table *PrefixTable, cfg DeployConfig) (*Deployment, error) {
	return core.NewDeployment(p, table, cfg)
}

// DefaultDeployConfig returns the baseline protocol parameters.
func DefaultDeployConfig() DeployConfig { return core.DefaultDeployConfig() }

// Simulation substrate.
type (
	// Path is a linear inter-domain path.
	Path = netsim.Path
	// DomainSpec describes one domain on a path.
	DomainSpec = netsim.DomainSpec
	// LinkSpec describes one inter-domain link.
	LinkSpec = netsim.LinkSpec
	// Observer receives one HOP's packet observations.
	Observer = netsim.Observer
	// BatchObserver is the batched extension of Observer.
	BatchObserver = netsim.BatchObserver
	// Observation is one packet observation at a HOP.
	Observation = netsim.Observation
	// SimResult is a simulation run's ground truth.
	SimResult = netsim.Result
	// DomainTruth is one domain's ground truth.
	DomainTruth = netsim.DomainTruth
	// CongestionConfig describes a bottleneck congestion scenario.
	CongestionConfig = delaymodel.Config
	// CongestionQueue is the bottleneck delay source.
	CongestionQueue = delaymodel.Queue
	// GilbertElliott is the two-state bursty loss model.
	GilbertElliott = lossmodel.GilbertElliott
)

// Fig1Path builds the paper's five-domain example topology
// (S -> L -> X -> N -> D, HOPs 1..8).
func Fig1Path(seed uint64) *Path { return netsim.Fig1Path(seed) }

// Mesh & multipath topologies.
type (
	// Topology is a directed domain graph with a route table.
	Topology = netsim.Topology
	// TopoLink is one directed inter-domain link of a topology.
	TopoLink = netsim.TopoLink
	// Route is one traffic key's HOP sequence through a topology.
	Route = netsim.Route
	// TopoRunner drives traffic across a topology in segments.
	TopoRunner = netsim.TopoRunner
	// TopoResult is a topology simulation's ground truth.
	TopoResult = netsim.TopoResult
	// SharedBlame is one blame finding merged across traffic keys.
	SharedBlame = core.SharedBlame
)

// NewTopoRunner prepares persistent mesh simulation state.
func NewTopoRunner(t *Topology, table *PrefixTable) (*TopoRunner, error) {
	return netsim.NewTopoRunner(t, table)
}

// NewTopoDeployment places collectors on every routed HOP of a
// topology; verify per (key, route) via Deployment.KeyLayouts.
func NewTopoDeployment(t *Topology, table *PrefixTable, cfg DeployConfig) (*Deployment, error) {
	return core.NewTopoDeployment(t, table, cfg)
}

// MergeBlames condenses per-key blame findings into shared findings
// (one per evidence class and implicated HOP set, contributing keys
// counted) — how a mesh verifier names a faulty shared link.
func MergeBlames(perKey map[PathKey][]Blame) []SharedBlame { return core.MergeBlames(perKey) }

// StarTopology builds a hub-and-leaves mesh whose access link is
// shared by every key.
func StarTopology(seed uint64, leaves int, keys []PathKey) *Topology {
	return netsim.StarTopology(seed, leaves, keys)
}

// TreeTopology builds a fanout-ary tree with leaf-to-leaf routes
// crossing the shared root backbone.
func TreeTopology(seed uint64, depth, fanout int, keys []PathKey) *Topology {
	return netsim.TreeTopology(seed, depth, fanout, keys)
}

// ClosTopology builds a leaf-spine fabric with ECMP multipath across
// the spines.
func ClosTopology(seed uint64, edges, spines int, keys []PathKey) *Topology {
	return netsim.ClosTopology(seed, edges, spines, keys)
}

// RandomASTopology builds a random AS-style graph with shortest-path
// routes between stub domains.
func RandomASTopology(seed uint64, n, extra int, keys []PathKey) *Topology {
	return netsim.RandomASTopology(seed, n, extra, keys)
}

// TopoKeys returns n distinct origin-prefix traffic keys for topology
// route tables.
func TopoKeys(n int) []PathKey { return netsim.TopoKeys(n) }

// BurstyUDPScenario is the Figure 2 congestion scenario.
func BurstyUDPScenario(seed uint64) CongestionConfig { return delaymodel.BurstyUDPScenario(seed) }

// NewCongestionQueue builds a bottleneck delay source.
func NewCongestionQueue(cfg CongestionConfig) (*CongestionQueue, error) { return delaymodel.New(cfg) }

// GilbertElliottLoss builds a bursty loss process with the given
// stationary loss rate and mean burst length.
func GilbertElliottLoss(target, meanBurst float64, seed uint64) (*GilbertElliott, error) {
	return lossmodel.FromTargetLoss(target, meanBurst, stats.NewRNG(seed))
}

// Workloads.
type (
	// TraceConfig configures a synthetic trace.
	TraceConfig = trace.Config
	// TracePathSpec describes one path's traffic.
	TracePathSpec = trace.PathSpec
)

// DefaultTracePath returns a PathSpec at the given packet rate.
func DefaultTracePath(ratePPS float64) TracePathSpec { return trace.DefaultPath(ratePPS) }

// GenerateTrace materializes a synthetic trace.
func GenerateTrace(cfg TraceConfig) ([]Packet, error) { return trace.Generate(cfg) }

// Estimation.
type (
	// QuantileEstimate is a delay-quantile estimate with
	// distribution-free confidence bounds.
	QuantileEstimate = quantile.Estimate
)

// DefaultQuantiles are the quantiles reports cover (p50, p90, p99).
var DefaultQuantiles = quantile.DefaultQuantiles

// EstimateQuantile estimates one delay quantile from sampled delays.
func EstimateQuantile(delaysNS []float64, q, confidence float64) (QuantileEstimate, error) {
	return quantile.Quantile(delaysNS, q, confidence)
}

// Dissemination.
type (
	// ReceiptBundle is one signed reporting interval.
	ReceiptBundle = dissem.Bundle
	// SignedReceiptBundle is a bundle encoding plus its signature —
	// the unit of the streaming ingest path (Verifier.IngestBundles).
	SignedReceiptBundle = dissem.SignedBundle
	// BundleSigner signs bundles with a HOP's ed25519 key.
	BundleSigner = dissem.Signer
	// BundleServer publishes signed bundles over HTTP.
	BundleServer = dissem.Server
	// BundleClient fetches and authenticates bundles.
	BundleClient = dissem.Client
	// KeyRegistry maps HOPs to verification keys.
	KeyRegistry = dissem.Registry
)

// NewBundleSigner derives a signer from a 32-byte seed.
func NewBundleSigner(seed [32]byte) *BundleSigner { return dissem.NewSigner(seed) }

// NewBundleServer builds a bundle publisher for one HOP.
func NewBundleServer(hop HOPID, s *BundleSigner) *BundleServer { return dissem.NewServer(hop, s) }

// NewReceiptBus builds an in-memory signed-bundle bus (the sockets-free
// dissemination transport for simulations).
func NewReceiptBus() *ReceiptBus { return dissem.NewBus() }

// Continuous operation.
type (
	// EpochID is the ordinal of one reporting interval.
	EpochID = core.EpochID
	// EpochConfig parameterizes continuous multi-interval operation.
	EpochConfig = core.EpochConfig
	// EpochSink receives one HOP's sealed epoch.
	EpochSink = core.EpochSink
	// EpochCollector wraps one collector in an epoch clock.
	EpochCollector = core.EpochCollector
	// EpochDriver runs a whole Deployment continuously.
	EpochDriver = core.EpochDriver
	// WindowedStore holds one ReceiptStore segment per epoch with
	// retention-based eviction.
	WindowedStore = core.WindowedStore
	// WindowStats is a WindowedStore occupancy snapshot.
	WindowStats = core.WindowStats
	// EpochReport is the rolling verifier's per-epoch delta.
	EpochReport = core.EpochReport
	// EpochKeyReport is one traffic key's outcome within an epoch.
	EpochKeyReport = core.EpochKeyReport
	// RollingVerifier verifies sealed epochs as they become ready.
	RollingVerifier = core.RollingVerifier
	// ReceiptBus is the in-memory dissemination transport.
	ReceiptBus = dissem.Bus
	// SimRunner drives a path in consecutive segments with persistent
	// network state.
	SimRunner = netsim.Runner
	// TraceGenerator is the pull-based synthetic packet source;
	// NextChunk slices its stream at epoch boundaries.
	TraceGenerator = trace.Generator
)

// NewEpochCollector wraps a collector in an epoch clock of the given
// interval feeding sink.
func NewEpochCollector(col PathCollector, intervalNS int64, sink EpochSink) (*EpochCollector, error) {
	return core.NewEpochCollector(col, intervalNS, sink)
}

// NewEpochDriver wraps every collector of a deployment in an epoch
// clock sharing one interval and sink.
func NewEpochDriver(dep *Deployment, intervalNS int64, sink EpochSink) (*EpochDriver, error) {
	return core.NewEpochDriver(dep, intervalNS, sink)
}

// NewWindowedStore builds a per-epoch receipt store expecting seals
// from the given HOPs and retaining `retention` verified epochs.
func NewWindowedStore(hops []HOPID, retention int) (*WindowedStore, error) {
	return core.NewWindowedStore(hops, retention)
}

// NewRollingVerifier builds a rolling verifier over a windowed store.
func NewRollingVerifier(layout Layout, cfg VerifierConfig, win *WindowedStore, quantiles []float64, confidence float64) *RollingVerifier {
	return core.NewRollingVerifier(layout, cfg, win, quantiles, confidence)
}

// NewSimRunner prepares a path for segmented continuous simulation.
func NewSimRunner(p *Path) (*SimRunner, error) { return netsim.NewRunner(p) }

// NewTraceGenerator builds a pull-based trace generator.
func NewTraceGenerator(cfg TraceConfig) (*TraceGenerator, error) { return trace.NewGenerator(cfg) }
