// Package aggregation implements the paper's Algorithm 2 (Partition)
// and the verifier-side machinery of §6: hash-selected cutting points
// partition each path's packet stream into aggregates; per-aggregate
// receipts carry an AggTrans window (the packet IDs observed within J
// time units of the cutting point) so that a verifier can re-align
// receipts from HOPs that observed reordered streams; and Join
// computes the finest common coarsening of two HOPs' aggregate sets so
// that loss can be computed per joined aggregate.
package aggregation

import (
	"fmt"

	"vpm/internal/hashing"
	"vpm/internal/receipt"
)

// Config parameterizes a Partitioner.
type Config struct {
	// CutRate is the locally tunable probability that a packet is a
	// cutting point (its digest exceeds the partition threshold δ).
	// The mean aggregate size is 1/CutRate packets.
	CutRate float64
	// WindowNS is the safety reordering threshold J: two packets
	// observed more than J apart are assumed not to reorder (§6.3,
	// a conservative 10 ms by default). The AggTrans window covers
	// [cut-J, cut+J]. Zero disables patch-up information (the
	// Difference Aggregator ++ degenerate case).
	WindowNS int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CutRate <= 0 || c.CutRate > 1 {
		return fmt.Errorf("aggregation: cut rate %v outside (0,1]", c.CutRate)
	}
	if c.WindowNS < 0 {
		return fmt.Errorf("aggregation: negative window %d", c.WindowNS)
	}
	return nil
}

// pendingReceipt is a closed aggregate still collecting the post-cut
// half of its AggTrans window.
type pendingReceipt struct {
	rec      receipt.AggReceipt
	cutTime  int64 // observation time of the cutting packet
	deadline int64 // cutTime + J
}

// Partitioner is the per-path aggregation state of one HOP: one open
// aggregate receipt (constant state per aggregate, constant work per
// packet — Algorithm 2's footprint), the recent-packet window for
// AggTrans, and closed receipts awaiting collection. Not safe for
// concurrent use.
type Partitioner struct {
	delta    uint64 // partition threshold δ
	windowNS int64
	path     receipt.PathID

	openFirst uint64
	openLast  uint64
	openCnt   uint64
	hasOpen   bool
	// recent[recentHead:] are the observations within the last J;
	// the head index advances on eviction and the slice is compacted
	// only when the dead prefix dominates, keeping per-packet work
	// amortized O(1).
	recent     []receipt.SampleRecord
	recentHead int
	pending    []pendingReceipt
	closed     []receipt.AggReceipt
	spare      []receipt.AggReceipt // recycled accumulator for the next Take
	lastTime   int64
	observed   uint64
	cutsSeen   uint64
}

// New builds a Partitioner for one path. It panics on an invalid
// config; use Config.Validate for user input.
func New(cfg Config, path receipt.PathID) *Partitioner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Partitioner{
		delta:    hashing.ThresholdForRate(cfg.CutRate),
		windowNS: cfg.WindowNS,
		path:     path,
	}
}

// Observe processes one packet observation (Algorithm 2): pktID is the
// packet's digest, tNS the HOP's observation timestamp. Timestamps
// must be non-decreasing per HOP.
func (p *Partitioner) Observe(pktID uint64, tNS int64) {
	p.observed++
	p.lastTime = tNS

	// Maintain the recent window and flush pending receipts whose
	// post-cut window has elapsed.
	p.evict(tNS)

	if hashing.Exceeds(pktID, p.delta) {
		// Cutting point: close the current aggregate (if any) and
		// open a new one starting at this packet.
		p.cutsSeen++
		if p.hasOpen {
			rec := receipt.AggReceipt{
				Path:   p.path,
				Agg:    receipt.AggID{First: p.openFirst, Last: p.openLast},
				PktCnt: p.openCnt,
			}
			if p.windowNS > 0 {
				// Pre-cut half of the window: recent observations in
				// [tNS-J, tNS].
				for _, r := range p.recent[p.recentHead:] {
					if r.TimeNS >= tNS-p.windowNS {
						rec.AggTrans = append(rec.AggTrans, r)
					}
				}
				// The cutting packet itself anchors the window.
				rec.AggTrans = append(rec.AggTrans, receipt.SampleRecord{PktID: pktID, TimeNS: tNS})
				p.pending = append(p.pending, pendingReceipt{
					rec:      rec,
					cutTime:  tNS,
					deadline: tNS + p.windowNS,
				})
			} else {
				p.closed = append(p.closed, rec)
			}
		}
		p.openFirst, p.openLast, p.openCnt, p.hasOpen = pktID, pktID, 1, true
	} else {
		if !p.hasOpen {
			// Stream began mid-aggregate: open an implicit aggregate
			// so packets before the first cut are still counted.
			p.openFirst, p.hasOpen = pktID, true
		}
		p.openLast = pktID
		p.openCnt++
	}

	if p.windowNS > 0 {
		rec := receipt.SampleRecord{PktID: pktID, TimeNS: tNS}
		p.recent = append(p.recent, rec)
		// Feed the post-cut half of any pending receipt windows.
		for i := range p.pending {
			if tNS > p.pending[i].cutTime && tNS <= p.pending[i].deadline {
				p.pending[i].rec.AggTrans = append(p.pending[i].rec.AggTrans, rec)
			}
		}
	}
}

// ObserveBatch processes a slice of observations (PktID = digest,
// TimeNS = observation time) in order — the batch hook the sharded
// collector's per-path runs feed. Semantically identical to calling
// Observe per record. Cutting points are rare (δ is a per-mille-scale
// rate), so the batch is consumed as cut-delimited segments: one
// threshold comparison per packet to find the next cut, then a single
// bulk extend of the open aggregate and the recent window — the
// steady-state cost is a compare and a memmove. Only the packets
// around a cut (and any packets while post-cut AggTrans windows are
// still collecting) pay the per-packet call.
func (p *Partitioner) ObserveBatch(recs []receipt.SampleRecord) {
	delta := p.delta
	for len(recs) > 0 {
		if len(p.pending) > 0 {
			// Post-cut windows are open: feed packets one at a time so
			// pending AggTrans windows fill and flush at the same
			// points they would under per-packet observation.
			i := 0
			for i < len(recs) && len(p.pending) > 0 {
				p.Observe(recs[i].PktID, recs[i].TimeNS)
				i++
			}
			recs = recs[i:]
			continue
		}
		n := 0
		for n < len(recs) && !hashing.Exceeds(recs[n].PktID, delta) {
			n++
		}
		if n > 0 {
			p.extendOpen(recs[:n])
		}
		if n == len(recs) {
			return
		}
		p.Observe(recs[n].PktID, recs[n].TimeNS) // the cutting point
		recs = recs[n+1:]
	}
}

// extendOpen bulk-extends the open aggregate (and, when AggTrans is
// enabled, the recent window) with a cut-free run of observations.
// Eviction is amortized to once per run: the recent window is only
// ever read through a time filter, so a stale head is invisible to
// receipts — trimming exists purely to bound memory.
func (p *Partitioner) extendOpen(recs []receipt.SampleRecord) {
	p.observed += uint64(len(recs))
	last := recs[len(recs)-1]
	p.lastTime = last.TimeNS
	if !p.hasOpen {
		p.openFirst, p.hasOpen = recs[0].PktID, true
	}
	p.openLast = last.PktID
	p.openCnt += uint64(len(recs))
	if p.windowNS > 0 {
		p.recent = append(p.recent, recs...)
		p.evictRecent(last.TimeNS)
	}
}

// evict drops recent records older than J and finalizes pending
// receipts whose deadline has passed.
func (p *Partitioner) evict(now int64) {
	if p.windowNS <= 0 {
		return
	}
	p.evictRecent(now)
	done := 0
	for done < len(p.pending) && p.pending[done].deadline < now {
		p.closed = append(p.closed, p.pending[done].rec)
		done++
	}
	if done > 0 {
		p.pending = append(p.pending[:0], p.pending[done:]...)
	}
}

// evictRecent advances the recent window past records older than J.
func (p *Partitioner) evictRecent(now int64) {
	for p.recentHead < len(p.recent) && p.recent[p.recentHead].TimeNS < now-p.windowNS {
		p.recentHead++
	}
	// Compact only when the dead prefix dominates the slice.
	if p.recentHead > 64 && p.recentHead*2 > len(p.recent) {
		n := copy(p.recent, p.recent[p.recentHead:])
		p.recent = p.recent[:n]
		p.recentHead = 0
	}
}

// Take returns the receipts finalized since the previous Take and
// resets the accumulator. Ownership of the returned slice passes to
// the caller; the partitioner continues on a buffer previously
// returned through Recycle when one is available (the zero-alloc
// steady state), or a fresh one otherwise.
func (p *Partitioner) Take() []receipt.AggReceipt {
	out := p.closed
	p.closed = p.spare
	p.spare = nil
	return out
}

// Recycle hands a no-longer-needed receipt buffer back to the
// partitioner for reuse by a future Take. Only call with buffers whose
// contents nothing retains.
func (p *Partitioner) Recycle(buf []receipt.AggReceipt) {
	if cap(buf) > cap(p.spare) {
		p.spare = buf[:0]
	}
}

// Flush finalizes all pending state — the still-open aggregate and any
// receipts waiting out their post-cut window — and returns every
// remaining receipt. Call at end of stream or reporting period.
func (p *Partitioner) Flush() []receipt.AggReceipt {
	for _, pr := range p.pending {
		p.closed = append(p.closed, pr.rec)
	}
	p.pending = p.pending[:0]
	if p.hasOpen && p.openCnt > 0 {
		rec := receipt.AggReceipt{
			Path:   p.path,
			Agg:    receipt.AggID{First: p.openFirst, Last: p.openLast},
			PktCnt: p.openCnt,
		}
		if p.windowNS > 0 {
			for _, r := range p.recent[p.recentHead:] {
				if r.TimeNS >= p.lastTime-p.windowNS {
					rec.AggTrans = append(rec.AggTrans, r)
				}
			}
		}
		p.closed = append(p.closed, rec)
		p.hasOpen = false
		p.openCnt = 0
	}
	return p.Take()
}

// Stats returns (packets observed, cutting points seen).
func (p *Partitioner) Stats() (observed, cuts uint64) { return p.observed, p.cutsSeen }

// RecentWindowLen returns the current number of records held in the
// recent-packet window (the §7.1 temporary-buffer quantity).
func (p *Partitioner) RecentWindowLen() int { return len(p.recent) - p.recentHead }
