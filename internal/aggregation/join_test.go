package aggregation

import (
	"testing"

	"vpm/internal/hashing"
	"vpm/internal/receipt"
	"vpm/internal/stats"
)

// runPair feeds the upstream stream to one partitioner and a
// downstream variant (possibly with drops/reorder) to another,
// returning both receipt sequences.
func runPair(cfgUp, cfgDown Config, up, down []obs) (a, b []receipt.AggReceipt) {
	pa := New(cfgUp, testPath())
	for _, o := range up {
		pa.Observe(o.id, o.t)
	}
	pb := New(cfgDown, testPath())
	for _, o := range down {
		pb.Observe(o.id, o.t)
	}
	return pa.Flush(), pb.Flush()
}

func TestJoinIdenticalStreams(t *testing.T) {
	stream := randomStream(11, 100000)
	cfg := Config{CutRate: 0.001, WindowNS: 10_000}
	a, b := runPair(cfg, cfg, stream, stream)
	pairs := Join(a, b)
	if len(pairs) != len(a) {
		t.Fatalf("join of identical sequences has %d pairs, want %d", len(pairs), len(a))
	}
	for i, p := range pairs {
		if p.Lost() != 0 {
			t.Fatalf("pair %d lost %d on identical streams", i, p.Lost())
		}
		if p.A.Agg != p.B.Agg {
			t.Fatalf("pair %d AggIDs differ", i)
		}
	}
}

func TestJoinDifferentThresholds(t *testing.T) {
	// §6.2: with no loss/reorder, differently tuned HOPs produce
	// nested partitions; the join equals the coarser side and all
	// counts agree.
	stream := randomStream(12, 150000)
	a, b := runPair(
		Config{CutRate: 0.0005, WindowNS: 10_000},
		Config{CutRate: 0.01, WindowNS: 10_000},
		stream, stream)
	pairs := Join(a, b)
	if len(pairs) != len(a) {
		t.Fatalf("join has %d pairs, want coarse side's %d", len(pairs), len(a))
	}
	for i, p := range pairs {
		if p.Lost() != 0 {
			t.Fatalf("pair %d lost %d with no loss", i, p.Lost())
		}
	}
}

func TestJoinExactLossAccounting(t *testing.T) {
	// Drop a known set of non-cut packets downstream; the join must
	// attribute exactly those losses, pair by pair.
	stream := randomStream(13, 120000)
	cfg := Config{CutRate: 0.001, WindowNS: 0}
	delta := hashing.ThresholdForRate(cfg.CutRate)
	r := stats.NewRNG(99)
	var down []obs
	dropped := 0
	for _, o := range stream {
		if !hashing.Exceeds(o.id, delta) && r.Bool(0.1) {
			dropped++
			continue
		}
		down = append(down, o)
	}
	a, b := runPair(cfg, cfg, stream, down)
	pairs := Join(a, b)
	if len(pairs) != len(a) {
		// All cuts survive, so alignment must be perfect.
		t.Fatalf("join has %d pairs, want %d", len(pairs), len(a))
	}
	var lost int64
	for i, p := range pairs {
		if p.Lost() < 0 {
			t.Fatalf("pair %d negative loss %d", i, p.Lost())
		}
		lost += p.Lost()
	}
	if lost != int64(dropped) {
		t.Fatalf("join accounts %d losses, want %d", lost, dropped)
	}
}

func TestJoinLostCuttingPointsMerge(t *testing.T) {
	// §6.3: dropping cutting points coarsens the join smoothly — the
	// two sides still produce pairs and total counts still reconcile.
	stream := randomStream(14, 150000)
	cfg := Config{CutRate: 0.002, WindowNS: 0}
	delta := hashing.ThresholdForRate(cfg.CutRate)
	r := stats.NewRNG(7)
	var down []obs
	droppedCuts, dropped := 0, 0
	for _, o := range stream {
		if hashing.Exceeds(o.id, delta) && r.Bool(0.25) {
			droppedCuts++
			dropped++
			continue
		}
		down = append(down, o)
	}
	if droppedCuts == 0 {
		t.Fatal("test did not drop any cuts")
	}
	a, b := runPair(cfg, cfg, stream, down)
	pairs := Join(a, b)
	if len(pairs) == 0 {
		t.Fatal("no pairs after cut loss")
	}
	if len(pairs) >= len(a) {
		t.Fatalf("join should coarsen: %d pairs vs %d upstream receipts", len(pairs), len(a))
	}
	var lost int64
	for _, p := range pairs {
		lost += p.Lost()
	}
	if lost != int64(dropped) {
		t.Fatalf("join accounts %d losses, want %d", lost, dropped)
	}
}

func TestJoinEmpty(t *testing.T) {
	if Join(nil, nil) != nil {
		t.Error("join of empties should be nil")
	}
	one := []receipt.AggReceipt{{Path: testPath(), PktCnt: 5}}
	if Join(one, nil) != nil || Join(nil, one) != nil {
		t.Error("join with one empty side should be nil")
	}
}

func TestJoinSingleAggregates(t *testing.T) {
	p := testPath()
	a := []receipt.AggReceipt{{Path: p, Agg: receipt.AggID{First: 1, Last: 9}, PktCnt: 10}}
	b := []receipt.AggReceipt{{Path: p, Agg: receipt.AggID{First: 1, Last: 9}, PktCnt: 8}}
	pairs := Join(a, b)
	if len(pairs) != 1 || pairs[0].Lost() != 2 {
		t.Fatalf("pairs = %+v", pairs)
	}
}

func TestPatchUpPaperExample(t *testing.T) {
	// The §6.3 worked example: upstream observes p1..p8 with a cut at
	// p5; downstream observes p4 and p5 swapped. Without patch-up the
	// counts disagree (3 vs 4, 5 vs 4); with patch-up they align.
	delta := hashing.ThresholdForRate(0.5)
	// Construct IDs: only idx 4 ("p5") exceeds delta.
	r := stats.NewRNG(21)
	ids := make([]uint64, 8)
	for i := range ids {
		for {
			v := r.Uint64()
			isCut := hashing.Exceeds(v, delta)
			if isCut == (i == 4) {
				ids[i] = v
				break
			}
		}
	}
	const gap = 100 // ns between packets; window J comfortably larger
	mkObs := func(order []int) []obs {
		out := make([]obs, len(order))
		for pos, idx := range order {
			out[pos] = obs{id: ids[idx], t: int64(pos) * gap}
		}
		return out
	}
	up := mkObs([]int{0, 1, 2, 3, 4, 5, 6, 7})   // p1..p8
	down := mkObs([]int{0, 1, 2, 4, 3, 5, 6, 7}) // p4, p5 swapped
	cfg := Config{CutRate: 0.5, WindowNS: 1000}
	a, b := runPair(cfg, cfg, up, down)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("unexpected partitioning: %d and %d aggregates", len(a), len(b))
	}
	pairs := Join(a, b)
	if len(pairs) != 2 {
		t.Fatalf("join has %d pairs", len(pairs))
	}
	if pairs[0].Lost() == 0 && pairs[1].Lost() == 0 {
		t.Fatal("reordering should misalign raw counts (4,4 vs 3,5)")
	}
	n := PatchUp(pairs)
	if n != 1 {
		t.Fatalf("PatchUp migrated %d packets, want 1", n)
	}
	for i, p := range pairs {
		if p.Lost() != 0 {
			t.Fatalf("pair %d still misaligned after patch-up: lost=%d", i, p.Lost())
		}
	}
}

func TestJoinAlignedUnderJitterReordering(t *testing.T) {
	// Randomized reordering confined to a J-sized neighborhood: after
	// JoinAligned, total loss must be exactly zero (nothing dropped).
	stream := randomStream(15, 60000) // spaced 1000ns
	const J = 20_000
	r := stats.NewRNG(31)
	down := make([]obs, len(stream))
	copy(down, stream)
	// Swap ~5% of adjacent pairs (reorder within 1µs << J), keeping
	// observation times attached to positions, as a real HOP would
	// timestamp arrivals.
	for i := 0; i+1 < len(down); i += 2 {
		if r.Bool(0.05) {
			down[i].id, down[i+1].id = down[i+1].id, down[i].id
		}
	}
	cfg := Config{CutRate: 0.002, WindowNS: J}
	a, b := runPair(cfg, cfg, stream, down)
	pairs := JoinAligned(a, b)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	var lost int64
	for _, p := range pairs {
		lost += p.Lost()
	}
	if lost != 0 {
		t.Fatalf("JoinAligned leaves %d phantom losses under pure reordering", lost)
	}
}

func TestPatchUpNoWindows(t *testing.T) {
	// Without AggTrans, PatchUp is a no-op.
	p := testPath()
	pairs := []Pair{
		{A: receipt.AggReceipt{Path: p, Agg: receipt.AggID{First: 1, Last: 2}, PktCnt: 4},
			B: receipt.AggReceipt{Path: p, Agg: receipt.AggID{First: 1, Last: 2}, PktCnt: 3}},
		{A: receipt.AggReceipt{Path: p, Agg: receipt.AggID{First: 5, Last: 6}, PktCnt: 4},
			B: receipt.AggReceipt{Path: p, Agg: receipt.AggID{First: 5, Last: 6}, PktCnt: 5}},
	}
	if n := PatchUp(pairs); n != 0 {
		t.Fatalf("PatchUp migrated %d without windows", n)
	}
}

func TestPartitionAlgebraTable1(t *testing.T) {
	// The paper's Table 1, verbatim.
	p1, p2, p3, p4 := uint64(1), uint64(2), uint64(3), uint64(4)
	A1 := Partition{{p1}, {p2}, {p3}, {p4}}
	A2 := Partition{{p1, p2}, {p3, p4}}
	A3 := Partition{{p1}, {p2, p3}, {p4}}
	A3p := Partition{{p1}, {p2}, {p3, p4}}
	A4 := Partition{{p1, p2, p3, p4}}

	coarser := []struct {
		hi, lo Partition
		name   string
	}{
		{A2, A1, "A2>=A1"},
		{A3, A1, "A3>=A1"},
		{A4, A2, "A4>=A2"},
		{A4, A3, "A4>=A3"},
		{A2, A3p, "A2>=A3'"},
	}
	for _, c := range coarser {
		if !c.hi.Coarser(c.lo) {
			t.Errorf("%s should hold", c.name)
		}
	}
	// "Not all partitions have a >= relationship": A2 vs A3.
	if A2.Coarser(A3) || A3.Coarser(A2) {
		t.Error("A2 and A3 must be incomparable")
	}
	joins := []struct {
		a, b, want Partition
		name       string
	}{
		{A1, A2, A2, "Join(A1,A2)=A2"},
		{A2, A3, A4, "Join(A2,A3)=A4"},
		{A2, A3p, A2, "Join(A2,A3')=A2"},
	}
	for _, j := range joins {
		got := j.a.JoinWith(j.b)
		if !got.Equal(j.want) {
			t.Errorf("%s: got %v", j.name, got)
		}
		// Join is symmetric.
		if !j.b.JoinWith(j.a).Equal(j.want) {
			t.Errorf("%s reversed: got %v", j.name, j.b.JoinWith(j.a))
		}
	}
}

func TestPartitionCoarserRejectsDifferentSets(t *testing.T) {
	a := Partition{{1, 2}}
	b := Partition{{1}, {3}}
	if a.Coarser(b) {
		t.Error("partitions of different sets must be incomparable")
	}
}

func BenchmarkJoin(b *testing.B) {
	stream := randomStream(16, 200000)
	cfg := Config{CutRate: 0.001, WindowNS: 10_000}
	a, bb := runPair(cfg, Config{CutRate: 0.005, WindowNS: 10_000}, stream, stream)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Join(a, bb)
	}
}
