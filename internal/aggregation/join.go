package aggregation

import (
	"vpm/internal/receipt"
)

// This file implements the verifier-side partition algebra of §6: the
// join of two aggregate sets (the finest partition coarser than both)
// and the §6.3 patch-up transformation that migrates packets across
// cutting points using AggTrans windows when the two HOPs observed
// reordered streams.

// Pair is a joined aggregate: the combined receipts from the upstream
// HOP (A) and the downstream HOP (B) covering the same packet set.
type Pair struct {
	A, B receipt.AggReceipt
}

// Lost returns the packets lost between the two HOPs within this
// joined aggregate (negative if B somehow counted more, which an
// honest pair never does).
func (p Pair) Lost() int64 { return int64(p.A.PktCnt) - int64(p.B.PktCnt) }

// Join computes the join of two aggregate receipt sequences: it finds
// the cutting points common to both HOPs (aggregate First-packet IDs
// appearing in both sequences, in order) and combines the receipts
// between consecutive common cuts. The result is the finest partition
// over which the two HOPs' claims can be compared (§6.1–§6.2).
//
// Receipts must be in stream order and share each side's PathID
// traffic. Loss or extra cuts on either side merge away — exactly the
// graceful degradation §6.3 describes.
func Join(a, b []receipt.AggReceipt) []Pair {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	// Internal boundaries of b: First-packet ID -> aggregate index.
	bIdx := make(map[uint64]int, len(b))
	for j := 1; j < len(b); j++ {
		if _, dup := bIdx[b[j].Agg.First]; !dup {
			bIdx[b[j].Agg.First] = j
		}
	}
	var pairs []Pair
	ia, ib := 0, 0
	for i := 1; i < len(a); i++ {
		j, ok := bIdx[a[i].Agg.First]
		if !ok || j <= ib {
			// Not a common boundary (or would violate stream order,
			// which can happen with duplicate digests): merge on.
			continue
		}
		if ia == i || ib == j {
			continue
		}
		ca, err1 := receipt.CombineAggregates(a[ia:i]...)
		cb, err2 := receipt.CombineAggregates(b[ib:j]...)
		if err1 != nil || err2 != nil {
			// PathID mismatch inside a sequence — skip this boundary.
			continue
		}
		pairs = append(pairs, Pair{A: ca, B: cb})
		ia, ib = i, j
	}
	ca, err1 := receipt.CombineAggregates(a[ia:]...)
	cb, err2 := receipt.CombineAggregates(b[ib:]...)
	if err1 == nil && err2 == nil {
		pairs = append(pairs, Pair{A: ca, B: cb})
	}
	return pairs
}

// PatchUp applies the §6.3 migration to a joined sequence: for each
// internal boundary, it compares the two AggTrans windows and, for any
// packet that appears on different sides of the cutting point at the
// two HOPs, migrates B's count so that B's aggregates correspond to
// the same packet sets as A's. It returns the number of migrations
// performed. Pairs are modified in place.
//
// In the paper's example, HOP 1 observes 〈p3 p4 p5 p6〉 around the cut
// at p5 while HOP 4 observes 〈p2 p3 p5 p4〉: p4 moved across the cut,
// so the verifier migrates p4 from HOP 4's later aggregate into its
// earlier one.
func PatchUp(pairs []Pair) int {
	migrations := 0
	for k := 0; k+1 < len(pairs); k++ {
		// The boundary after pair k is the First packet of pair k+1.
		cutID := pairs[k+1].A.Agg.First
		if cutID != pairs[k+1].B.Agg.First {
			// Join produced this boundary from a common cut; if the
			// sequences disagree the boundary isn't patchable.
			continue
		}
		wa, wb := pairs[k].A.AggTrans, pairs[k].B.AggTrans
		posA, okA := indexOf(wa, cutID)
		posB, okB := indexOf(wb, cutID)
		if !okA || !okB {
			continue
		}
		// Side of the cut each common packet fell on at each HOP.
		sideB := make(map[uint64]bool, len(wb)) // true = before cut
		for i, r := range wb {
			if r.PktID == cutID {
				continue
			}
			if _, dup := sideB[r.PktID]; !dup {
				sideB[r.PktID] = i < posB
			}
		}
		for i, r := range wa {
			if r.PktID == cutID {
				continue
			}
			beforeAtB, seen := sideB[r.PktID]
			if !seen {
				continue
			}
			beforeAtA := i < posA
			switch {
			case beforeAtA && !beforeAtB:
				// A says the packet belongs to the earlier aggregate;
				// B counted it in the later one. Migrate earlier.
				pairs[k].B.PktCnt++
				pairs[k+1].B.PktCnt--
				migrations++
			case !beforeAtA && beforeAtB:
				pairs[k].B.PktCnt--
				pairs[k+1].B.PktCnt++
				migrations++
			}
		}
	}
	return migrations
}

// indexOf returns the position of id in the window.
func indexOf(w []receipt.SampleRecord, id uint64) (int, bool) {
	for i, r := range w {
		if r.PktID == id {
			return i, true
		}
	}
	return 0, false
}

// JoinAligned is Join followed by PatchUp — the full §6 verifier
// pipeline for aggregate receipts.
func JoinAligned(a, b []receipt.AggReceipt) []Pair {
	pairs := Join(a, b)
	PatchUp(pairs)
	return pairs
}

// Partition describes an abstract partition of a packet set as a list
// of aggregates (each a list of packet IDs). It exists to express the
// paper's Table 1 set algebra directly, for tests, documentation and
// the Table 1 experiment.
type Partition [][]uint64

// Coarser reports whether p ≥ q: every aggregate of p is a union of
// consecutive aggregates of q (the paper's "finer than" relation).
func (p Partition) Coarser(q Partition) bool {
	flatP := p.flatten()
	flatQ := q.flatten()
	if !equalU64(flatP, flatQ) {
		return false // not partitions of the same sequence
	}
	// Every cut of p must also be a cut of q.
	cutsQ := q.cutSet()
	for _, c := range p.cuts() {
		if !cutsQ[c] {
			return false
		}
	}
	return true
}

// JoinWith returns the join of p and q: the finest partition of the
// same packet sequence that is coarser than both — cut exactly at the
// common cutting points.
func (p Partition) JoinWith(q Partition) Partition {
	flat := p.flatten()
	cutsP := p.cutSet()
	cutsQ := q.cutSet()
	var out Partition
	var cur []uint64
	for i, id := range flat {
		if i > 0 && cutsP[id] && cutsQ[id] {
			out = append(out, cur)
			cur = nil
		}
		cur = append(cur, id)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// Equal reports structural equality of two partitions.
func (p Partition) Equal(q Partition) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if !equalU64(p[i], q[i]) {
			return false
		}
	}
	return true
}

func (p Partition) flatten() []uint64 {
	var out []uint64
	for _, agg := range p {
		out = append(out, agg...)
	}
	return out
}

// cuts returns the first element of each aggregate after the first.
func (p Partition) cuts() []uint64 {
	var out []uint64
	for i := 1; i < len(p); i++ {
		if len(p[i]) > 0 {
			out = append(out, p[i][0])
		}
	}
	return out
}

func (p Partition) cutSet() map[uint64]bool {
	m := make(map[uint64]bool)
	for _, c := range p.cuts() {
		m[c] = true
	}
	return m
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
