package aggregation

import (
	"math"
	"reflect"
	"testing"

	"vpm/internal/hashing"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/stats"
)

func testPath() receipt.PathID {
	return receipt.PathKeyOf(
		packet.MakePrefix(10, 1, 0, 0, 16),
		packet.MakePrefix(172, 16, 0, 0, 16),
		4, 5, 2_000_000)
}

// obs is one (id, time) observation.
type obs struct {
	id uint64
	t  int64
}

// randomStream returns n observations 1µs apart with uniform digests.
func randomStream(seed uint64, n int) []obs {
	r := stats.NewRNG(seed)
	out := make([]obs, n)
	for i := range out {
		out[i] = obs{id: r.Uint64(), t: int64(i) * 1000}
	}
	return out
}

// runPartitioner feeds the stream and flushes.
func runPartitioner(cfg Config, stream []obs) []receipt.AggReceipt {
	p := New(cfg, testPath())
	for _, o := range stream {
		p.Observe(o.id, o.t)
	}
	return p.Flush()
}

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{{CutRate: 0}, {CutRate: -1}, {CutRate: 2}, {CutRate: 0.1, WindowNS: -1}} {
		if c.Validate() == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if (Config{CutRate: 0.01, WindowNS: 0}).Validate() != nil {
		t.Error("valid config rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(Config{}, testPath())
}

func TestCountsSumToObserved(t *testing.T) {
	stream := randomStream(1, 100000)
	recs := runPartitioner(Config{CutRate: 0.001, WindowNS: 10_000}, stream)
	var sum uint64
	for _, r := range recs {
		sum += r.PktCnt
	}
	if sum != uint64(len(stream)) {
		t.Fatalf("counts sum to %d, want %d", sum, len(stream))
	}
}

func TestAggIDBoundaries(t *testing.T) {
	stream := randomStream(2, 50000)
	cfg := Config{CutRate: 0.002}
	recs := runPartitioner(cfg, stream)
	if len(recs) < 10 {
		t.Fatalf("too few aggregates: %d", len(recs))
	}
	delta := hashing.ThresholdForRate(cfg.CutRate)
	// Every aggregate's First (after the very first, which may open
	// implicitly) is a cutting point; no internal packet is.
	pos := 0
	for ri, r := range recs {
		if ri > 0 && !hashing.Exceeds(r.Agg.First, delta) {
			t.Fatalf("aggregate %d First is not a cutting point", ri)
		}
		if stream[pos].id != r.Agg.First && ri > 0 {
			t.Fatalf("aggregate %d First mismatch", ri)
		}
		last := pos + int(r.PktCnt) - 1
		if last >= len(stream) {
			t.Fatalf("aggregate %d overruns stream", ri)
		}
		if stream[last].id != r.Agg.Last {
			t.Fatalf("aggregate %d Last mismatch", ri)
		}
		// Internal packets must not be cuts.
		for i := pos + 1; i <= last; i++ {
			if hashing.Exceeds(stream[i].id, delta) {
				t.Fatalf("internal packet %d of aggregate %d is a cut", i, ri)
			}
		}
		pos = last + 1
	}
	if pos != len(stream) {
		t.Fatalf("aggregates cover %d of %d packets", pos, len(stream))
	}
}

func TestCutRateEmpirical(t *testing.T) {
	stream := randomStream(3, 300000)
	for _, rate := range []float64{0.01, 0.001} {
		recs := runPartitioner(Config{CutRate: rate}, stream)
		got := float64(len(recs)) / float64(len(stream))
		if math.Abs(got-rate)/rate > 0.25 {
			t.Errorf("rate %v: %d aggregates over %d packets (%v)", rate, len(recs), len(stream), got)
		}
	}
}

func TestThresholdSubsetProperty(t *testing.T) {
	// §6.2: a HOP with a lower threshold (higher cut rate) cuts at a
	// superset of the points of a higher-threshold HOP.
	stream := randomStream(4, 200000)
	coarse := runPartitioner(Config{CutRate: 0.001}, stream)
	fine := runPartitioner(Config{CutRate: 0.01}, stream)
	fineCuts := make(map[uint64]bool)
	for i := 1; i < len(fine); i++ {
		fineCuts[fine[i].Agg.First] = true
	}
	for i := 1; i < len(coarse); i++ {
		if !fineCuts[coarse[i].Agg.First] {
			t.Fatalf("coarse cut %#x missing from fine cuts", coarse[i].Agg.First)
		}
	}
	if len(fine) <= len(coarse) {
		t.Errorf("fine partition (%d) not finer than coarse (%d)", len(fine), len(coarse))
	}
}

func TestAggTransWindow(t *testing.T) {
	// With a window, each non-final receipt's AggTrans must contain
	// the cutting packet, everything within J before it, and
	// everything within J after it.
	const J = 5_000 // 5µs window; stream spaced 1µs
	stream := randomStream(5, 20000)
	cfg := Config{CutRate: 0.005, WindowNS: J}
	recs := runPartitioner(cfg, stream)
	if len(recs) < 5 {
		t.Fatal("too few aggregates")
	}
	// Index stream by time for expectations.
	timeOf := make(map[uint64]int64, len(stream))
	for _, o := range stream {
		timeOf[o.id] = o.t
	}
	checked := 0
	pos := 0
	for ri := 0; ri < len(recs)-1; ri++ {
		r := recs[ri]
		next := recs[ri+1]
		cutID := next.Agg.First
		cutT, ok := timeOf[cutID]
		if !ok {
			t.Fatal("cut id missing from stream")
		}
		if len(r.AggTrans) == 0 {
			t.Fatalf("aggregate %d has empty AggTrans", ri)
		}
		inWindow := make(map[uint64]bool)
		for _, rec := range r.AggTrans {
			if rec.TimeNS < cutT-J || rec.TimeNS > cutT+J {
				t.Fatalf("AggTrans record outside [cut-J, cut+J]: t=%d cut=%d", rec.TimeNS, cutT)
			}
			inWindow[rec.PktID] = true
		}
		if !inWindow[cutID] {
			t.Fatalf("AggTrans of aggregate %d missing the cutting packet", ri)
		}
		// Every stream packet within the window must be present.
		for _, o := range stream {
			if o.t >= cutT-J && o.t <= cutT+J && !inWindow[o.id] {
				t.Fatalf("packet at t=%d inside window of cut t=%d missing from AggTrans", o.t, cutT)
			}
		}
		pos += int(r.PktCnt)
		checked++
	}
	if checked == 0 {
		t.Fatal("no windows checked")
	}
}

func TestZeroWindowDisablesAggTrans(t *testing.T) {
	recs := runPartitioner(Config{CutRate: 0.01, WindowNS: 0}, randomStream(6, 20000))
	for i, r := range recs {
		if len(r.AggTrans) != 0 {
			t.Fatalf("receipt %d has AggTrans with zero window", i)
		}
	}
}

func TestTakeVsFlush(t *testing.T) {
	p := New(Config{CutRate: 0.01, WindowNS: 1000}, testPath())
	stream := randomStream(7, 10000)
	for _, o := range stream {
		p.Observe(o.id, o.t)
	}
	early := p.Take()
	rest := p.Flush()
	var sum uint64
	for _, r := range early {
		sum += r.PktCnt
	}
	for _, r := range rest {
		sum += r.PktCnt
	}
	if sum != uint64(len(stream)) {
		t.Fatalf("Take+Flush cover %d of %d", sum, len(stream))
	}
	if len(p.Flush()) != 0 {
		t.Error("second Flush should be empty")
	}
}

func TestRecentWindowBounded(t *testing.T) {
	const J = 10_000 // 10µs; stream spaced 1µs -> ~10 packets in window
	p := New(Config{CutRate: 0.001, WindowNS: J}, testPath())
	for _, o := range randomStream(8, 50000) {
		p.Observe(o.id, o.t)
		if n := p.RecentWindowLen(); n > 15 {
			t.Fatalf("recent window grew to %d", n)
		}
	}
}

func TestStats(t *testing.T) {
	p := New(Config{CutRate: 0.01}, testPath())
	stream := randomStream(9, 10000)
	for _, o := range stream {
		p.Observe(o.id, o.t)
	}
	obs, cuts := p.Stats()
	if obs != uint64(len(stream)) {
		t.Errorf("observed %d", obs)
	}
	if cuts == 0 {
		t.Error("no cuts recorded")
	}
}

func BenchmarkPartitionerObserve(b *testing.B) {
	p := New(Config{CutRate: 0.001, WindowNS: 10_000}, testPath())
	r := stats.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Observe(r.Uint64(), int64(i)*1000)
		if i%1000000 == 0 {
			p.Take()
		}
	}
}

// TestObserveBatchMatchesObserve proves the segment-scan batch path
// produces byte-identical receipts to per-packet observation across
// seeds, batch splits, and window configurations — including batches
// that straddle cutting points and post-cut AggTrans windows.
func TestObserveBatchMatchesObserve(t *testing.T) {
	for _, cfg := range []Config{
		{CutRate: 0.01, WindowNS: 50_000},
		{CutRate: 0.05, WindowNS: 5_000},
		{CutRate: 0.01, WindowNS: 0},
	} {
		for seed := uint64(1); seed <= 4; seed++ {
			stream := randomStream(seed, 20_000)
			recs := make([]receipt.SampleRecord, len(stream))
			for i, o := range stream {
				recs[i] = receipt.SampleRecord{PktID: o.id, TimeNS: o.t}
			}
			want := runPartitioner(cfg, stream)

			for _, batch := range []int{1, 7, 100, 4096, len(recs)} {
				p := New(cfg, testPath())
				for off := 0; off < len(recs); off += batch {
					end := off + batch
					if end > len(recs) {
						end = len(recs)
					}
					p.ObserveBatch(recs[off:end])
				}
				got := p.Flush()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("cfg %+v seed %d batch %d: batched receipts diverge from serial (%d vs %d receipts)",
						cfg, seed, batch, len(got), len(want))
				}
			}
		}
	}
}

// TestTakeRecycleOwnership proves Take transfers ownership of the
// closed-receipt buffer and Recycle reuses it without aliasing a
// buffer the caller still holds.
func TestTakeRecycleOwnership(t *testing.T) {
	cfg := Config{CutRate: 0.05, WindowNS: 10_000}
	p := New(cfg, testPath())
	stream := randomStream(3, 8000)
	for _, o := range stream[:4000] {
		p.Observe(o.id, o.t)
	}
	first := p.Take()
	snapshot := append([]receipt.AggReceipt(nil), first...)
	for _, o := range stream[4000:] {
		p.Observe(o.id, o.t)
	}
	if !reflect.DeepEqual(first, snapshot) {
		t.Fatal("receipts from Take were clobbered by later observation")
	}
	second := p.Take()
	p.Recycle(first)
	for _, o := range stream {
		p.Observe(o.id, o.t+stream[len(stream)-1].t+1)
	}
	third := p.Flush()
	if len(second) > 0 && len(third) > 0 && &second[0] == &third[0] {
		t.Fatal("buffer still owned by caller was handed out again")
	}
	if len(third) == 0 {
		t.Fatal("no receipts after recycle")
	}
}
