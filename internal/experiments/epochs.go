package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"vpm/internal/core"
	"vpm/internal/dissem"
	"vpm/internal/netsim"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/seqdetect"
	"vpm/internal/trace"
)

// This file runs the pipeline the way a deployment would: continuously,
// over a stream of rotating epochs, with receipts travelling through
// signed per-epoch dissemination bundles and verification rolling one
// interval behind ingest. RunContinuous is the engine (cmd/vpm-node is
// a thin wrapper around it); Epochs is the benchmark that measures
// sustained epochs/s and steady-state memory against the one-shot
// batch baseline, emitting the BENCH_*.json trajectory rows.

// ContinuousResult is the outcome of one continuous run.
type ContinuousResult struct {
	// EpochsRun counts the simulation segments driven (one per
	// configured epoch, fewer if stopped early).
	EpochsRun int
	// EpochsSealed counts the epochs every HOP sealed — EpochsRun plus
	// the terminal partial interval that propagation delay spills into.
	EpochsSealed int
	// Packets is the total traffic replayed.
	Packets int
	// SampleReceipts and AggReceipts count the receipts sealed across
	// all epochs and HOPs.
	SampleReceipts, AggReceipts int
	// Reports are the per-epoch verification deltas, in epoch order.
	Reports []core.EpochReport
	// Violations and MatchedSamples aggregate the reports.
	Violations     int
	MatchedSamples int64
	// EpochWall holds each epoch's ingest wall time (simulation +
	// rotation + publication; verification overlaps the next epoch).
	EpochWall []time.Duration
	// Window is the windowed store's final occupancy — Segments stays
	// bounded by retention no matter how many epochs ran.
	Window core.WindowStats
	// HeapAllocBytes is the live heap after a forced GC at the end of
	// the run, with the window (but not the trace) still reachable —
	// the steady-state memory of the pipeline.
	HeapAllocBytes uint64
	// Truth is the merged per-domain ground truth across all segments
	// (counts summed, true delays concatenated).
	Truth []netsim.DomainTruth
	// DissemFindings are the dissemination-layer blame findings the
	// drain loop classified instead of aborting on: signature failures,
	// stale-epoch replays, pruned-cursor gaps, and — after shutdown —
	// withheld bundles that left epochs permanently unverifiable.
	DissemFindings []core.Blame
	// Unverified lists the epochs still held unverified at shutdown
	// (empty on an honest run).
	Unverified []core.EpochID
	// RecoveredEpochs counts the epochs whose verification was skipped
	// because the durable backend already held their verdict reports
	// (only non-zero when ContinuousOptions.Backend resumes a prior
	// run); Reports covers the other EpochsSealed − RecoveredEpochs.
	RecoveredEpochs int
}

// stopOrNil returns stop, or a never-ready channel when stop is nil,
// so it can sit in a select arm unconditionally.
func stopOrNil(stop <-chan struct{}) <-chan struct{} {
	if stop != nil {
		return stop
	}
	return nil // nil channel: blocks forever
}

// hopSigner derives a HOP's deterministic signing key for an
// experiment seed — the single derivation scheme every pipeline mode
// and tamper builder shares, so batch and continuous runs of the same
// scenario always agree on keys.
func hopSigner(seed uint64, hop receipt.HOPID) *dissem.Signer {
	var keySeed [32]byte
	keySeed[0], keySeed[1] = byte(seed), byte(hop)
	return dissem.NewSigner(keySeed)
}

// dissemWorld is the signed-bundle substrate of one experiment run:
// one signing server per HOP on an in-memory bus, every public key
// registered.
type dissemWorld struct {
	bus     *dissem.Bus
	reg     dissem.Registry
	servers map[receipt.HOPID]*dissem.Server
	signers map[receipt.HOPID]*dissem.Signer
}

// newDissemWorld builds the substrate for the given HOPs with keys
// from hopSigner(seed, ·).
func newDissemWorld(seed uint64, hops []receipt.HOPID) *dissemWorld {
	w := &dissemWorld{
		bus:     dissem.NewBus(),
		reg:     make(dissem.Registry, len(hops)),
		servers: make(map[receipt.HOPID]*dissem.Server, len(hops)),
		signers: make(map[receipt.HOPID]*dissem.Signer, len(hops)),
	}
	for _, id := range hops {
		signer := hopSigner(seed, id)
		srv := dissem.NewServer(id, signer)
		w.bus.Attach(srv)
		w.servers[id] = srv
		w.signers[id] = signer
		w.reg[id] = signer.Public()
	}
	return w
}

// ContinuousOptions parameterizes RunContinuousOpts beyond the basic
// epoch configuration — the hooks the Byzantine attack matrix uses to
// corrupt each layer of the pipeline, plus operational knobs.
type ContinuousOptions struct {
	// OnEpoch receives each epoch's report as verification completes
	// (from the verification goroutine).
	OnEpoch func(core.EpochReport, core.WindowStats)
	// Stop aborts cleanly at the next epoch boundary when closed.
	Stop <-chan struct{}
	// Ctx, when non-nil, hard-aborts the run when cancelled: the epoch
	// loop stops simulating and the collection/verification loop
	// returns the context's error. Use Stop for a clean epoch-boundary
	// shutdown; use Ctx for deadlines and forced aborts — it is
	// consulted between per-HOP collection drains, so a deadline
	// bounds the collection loop even when a fetch layer hangs.
	Ctx context.Context
	// MutatePath perturbs the Fig1 path (loss, congestion, skew)
	// before deployment.
	MutatePath func(*netsim.Path)
	// Deploy overrides the deployment config (nil: defaults). Shards
	// still come from the EpochConfig.
	Deploy *core.DeployConfig
	// Wear dresses HOPs in data-plane adversaries: each HOP's
	// observation stream passes through its adversary before the
	// collector sees it.
	Wear map[receipt.HOPID]netsim.Adversary
	// WrapSink interposes control-plane adversaries between the epoch
	// driver and publication (see core.NewAdversarySink); it receives
	// the honest publish sink and returns the sink the driver uses.
	WrapSink func(core.EpochSink) core.EpochSink
	// Tamper installs dissemination-layer attacks on the named HOPs'
	// bundle servers.
	Tamper map[receipt.HOPID]dissem.BundleTamper
	// BiasChecks enables the per-epoch marker-bias check in rolling
	// verification.
	BiasChecks bool
	// Sequential, when non-nil, arms the rolling verifier's concurrent
	// SPRT arm (see core.VerifierConfig.Sequential): early sequential
	// verdicts ride on each EpochReport's Seq field while the batch
	// verdicts stay byte-identical to an unarmed run.
	Sequential *seqdetect.Config
	// Backend attaches a durable store backend beneath the windowed
	// store (see core.StoreBackend): sealed epochs and verdict reports
	// persist to it, and epochs already durable from a previous run are
	// neither re-persisted nor re-verified — the recovery path
	// cmd/vpm-node uses after a crash.
	Backend core.StoreBackend
	// Pace, when positive, is the minimum wall-clock duration of each
	// epoch: the loop sleeps out the remainder of the interval after
	// simulating it. Simulated time normally outruns real time by
	// orders of magnitude; pacing restores real-time epoch cadence so
	// external events (signals, kill -9) land mid-stream.
	Pace time.Duration
}

// RunContinuous drives the Fig1 workload over `epochs` rotating
// intervals: each epoch's packets are generated and simulated as one
// segment (network state persists across segments via netsim.Runner),
// every HOP's sealed epoch is published as an ed25519-signed
// epoch-tagged bundle, a rolling verifier drains the bundles into a
// windowed store and verifies each interval as soon as every HOP has
// sealed it — concurrently with ingest of the following epoch — and
// verified epochs older than the retention window are evicted.
//
// onEpoch, if non-nil, receives each epoch's report as verification
// completes (from the verification goroutine). stop, if non-nil,
// aborts cleanly at the next epoch boundary when closed.
func RunContinuous(cfg Config, ec core.EpochConfig, epochs int, onEpoch func(core.EpochReport, core.WindowStats), stop <-chan struct{}) (*ContinuousResult, error) {
	return RunContinuousOpts(cfg, ec, epochs, ContinuousOptions{OnEpoch: onEpoch, Stop: stop})
}

// RunContinuousOpts is RunContinuous with the full option set: path
// perturbation, per-layer adversaries (data plane, control plane,
// dissemination), bias checks, and context cancellation. Classified
// dissemination misbehavior (bad signatures, stale replays, cursor
// gaps) is recorded as blame findings and skipped rather than aborting
// the pipeline; only unclassifiable errors fail the run.
func RunContinuousOpts(cfg Config, ec core.EpochConfig, epochs int, opts ContinuousOptions) (*ContinuousResult, error) {
	cfg = cfg.Normalize()
	if err := ec.Validate(); err != nil {
		return nil, err
	}
	if epochs < 1 {
		return nil, fmt.Errorf("experiments: need at least one epoch, got %d", epochs)
	}
	onEpoch, stop := opts.OnEpoch, opts.Stop

	tc := trace.Config{
		Seed:       cfg.Seed,
		DurationNS: int64(epochs) * ec.IntervalNS,
		Paths:      []trace.PathSpec{trace.DefaultPath(cfg.RatePPS)},
	}
	gen, err := trace.NewGenerator(tc)
	if err != nil {
		return nil, err
	}
	path := netsim.Fig1Path(cfg.Seed + 1000)
	if opts.MutatePath != nil {
		opts.MutatePath(path)
	}
	dc := core.DefaultDeployConfig()
	if opts.Deploy != nil {
		dc = *opts.Deploy
	}
	dc.Shards = ec.Shards
	dep, err := core.NewDeployment(path, tc.Table(), dc)
	if err != nil {
		return nil, err
	}

	// Dissemination: one signer + bundle server per HOP, all on an
	// in-memory bus, with every public key registered.
	hops := make([]receipt.HOPID, 0, len(dep.Processors))
	for id := range dep.Processors {
		hops = append(hops, id)
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
	dw := newDissemWorld(cfg.Seed, hops)
	bus, reg, servers := dw.bus, dw.reg, dw.servers
	for id, t := range opts.Tamper {
		if srv, ok := servers[id]; ok {
			srv.SetTamper(t)
		}
	}

	win, err := core.NewWindowedStore(hops, ec.Retention)
	if err != nil {
		return nil, err
	}
	if opts.Backend != nil {
		win.AttachBackend(opts.Backend)
	}

	res := &ContinuousResult{}
	// The sink runs on the replay goroutines (one per HOP): count the
	// sealed receipts, then publish the epoch as a signed bundle.
	// Control-plane adversaries wrap this honest sink (WrapSink), so
	// the counters and the published bundles both reflect what the
	// lying control planes actually emitted.
	var nSamples, nAggs atomic.Int64
	sink := core.EpochSink(func(hop receipt.HOPID, epoch core.EpochID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) {
		nSamples.Add(int64(len(samples)))
		nAggs.Add(int64(len(aggs)))
		servers[hop].PublishEpoch(uint64(epoch), samples, aggs)
	})
	if opts.WrapSink != nil {
		sink = opts.WrapSink(sink)
	}
	driver, err := core.NewEpochDriver(dep, ec.IntervalNS, sink)
	if err != nil {
		return nil, err
	}

	layout := dep.Layout()
	vc := dep.VerifierConfig()
	vc.Workers = ec.Workers
	vc.BiasChecks = opts.BiasChecks
	vc.Sequential = opts.Sequential
	rolling := core.NewRollingVerifier(layout, vc, win, quantile.DefaultQuantiles, cfg.Confidence)

	// Verification pipeline: woken after each segment, it drains the
	// bus into the windowed store (ingest + seal per bundle), verifies
	// every interval that every HOP has sealed, and evicts what has
	// aged out — all while the main loop simulates the next epoch.
	// Classifiable dissemination misbehavior becomes a blame finding
	// and the cursor skips past it; only unclassifiable errors abort.
	notify := make(chan struct{}, 1)
	verifyDone := make(chan error, 1)
	cursors := make(map[receipt.HOPID]uint64, len(hops))
	ctxErr := func() error {
		if opts.Ctx != nil {
			return opts.Ctx.Err()
		}
		return nil
	}
	drainAndVerify := func() error {
		for _, id := range hops {
			if err := ctxErr(); err != nil {
				return err
			}
			consume := func(b *dissem.Bundle) error {
				err := win.IngestBundle(b)
				var stale *core.StaleSealError
				if errors.As(err, &stale) {
					res.DissemFindings = append(res.DissemFindings,
						core.BlameHOP(layout, stale.Epoch, core.EvEpochReplay, b.Origin, 1, err.Error()))
					return nil // consumed: replay evidence recorded
				}
				if errors.Is(err, core.ErrEvictedEpoch) {
					res.DissemFindings = append(res.DissemFindings,
						core.BlameHOP(layout, core.EpochID(b.Epoch), core.EvEpochReplay, b.Origin, 1, err.Error()))
					return nil
				}
				if err != nil {
					return err
				}
				return win.SealHOP(b.Origin, core.EpochID(b.Epoch))
			}
			cursor := cursors[id]
			for {
				next, err := bus.CollectSince(reg, id, cursor, consume)
				cursor = next
				if err == nil {
					break
				}
				var be *dissem.BundleError
				if errors.As(err, &be) {
					res.DissemFindings = append(res.DissemFindings,
						core.BlameHOP(layout, core.EpochID(be.Epoch), core.EvSignature, id, 1, err.Error()))
					cursor = be.Seq + 1 // skip the poisoned bundle
					continue
				}
				var gap *dissem.GapError
				if errors.As(err, &gap) {
					res.DissemFindings = append(res.DissemFindings,
						core.BlameHOP(layout, 0, core.EvBundleGap, id, int(gap.Base-gap.Since), err.Error()))
					cursor = gap.Base // resume past the pruned range
					continue
				}
				return err
			}
			cursors[id] = cursor
			if cursor > 0 {
				// Consumed bundles live on in the windowed store; free
				// the publisher's copies so server memory stays bounded
				// over an endless epoch stream, like the window's.
				servers[id].DropThrough(cursor - 1)
			}
		}
		reps, err := rolling.VerifyReady()
		for _, rep := range reps {
			res.Reports = append(res.Reports, rep)
			res.Violations += rep.Violations()
			res.MatchedSamples += rep.MatchedSamples()
			if onEpoch != nil {
				onEpoch(rep, win.Stats())
			}
		}
		if err != nil {
			return err
		}
		win.Evict()
		return nil
	}
	go func() {
		for range notify {
			if err := drainAndVerify(); err != nil {
				verifyDone <- err
				// Drain remaining wakeups so the main loop never blocks.
				for range notify {
				}
				return
			}
		}
		verifyDone <- drainAndVerify()
	}()

	runner, err := netsim.NewRunner(path)
	if err != nil {
		return nil, err
	}
	observers := driver.Observers()
	for hop, adv := range opts.Wear {
		if obs, ok := observers[hop]; ok && adv != nil {
			observers[hop] = netsim.Wear(hop, adv, obs)
		}
	}
	mergeTruth := func(seg *netsim.Result) {
		if res.Truth == nil {
			res.Truth = make([]netsim.DomainTruth, len(seg.Domains))
			for i, d := range seg.Domains {
				res.Truth[i] = netsim.DomainTruth{Name: d.Name, Ingress: d.Ingress, Egress: d.Egress}
			}
		}
		for i, d := range seg.Domains {
			res.Truth[i].In += d.In
			res.Truth[i].Out += d.Out
			res.Truth[i].DroppedInside += d.DroppedInside
			res.Truth[i].TrueDelaysNS = append(res.Truth[i].TrueDelaysNS, d.TrueDelaysNS...)
		}
	}
	stopped := false
	for e := 0; e < epochs && !stopped; e++ {
		if stop != nil {
			select {
			case <-stop:
				stopped = true
				continue
			default:
			}
		}
		if ctxErr() != nil {
			stopped = true
			continue
		}
		start := time.Now()
		horizon := int64(e+1) * ec.IntervalNS
		chunk := gen.NextChunk(horizon)
		segTruth, err := runner.RunSegment(chunk, observers, horizon)
		if err != nil {
			close(notify)
			<-verifyDone
			return nil, err
		}
		mergeTruth(segTruth)
		res.Packets += len(chunk)
		res.EpochsRun++
		res.EpochWall = append(res.EpochWall, time.Since(start))
		select {
		case notify <- struct{}{}:
		default: // verifier already has a pending wakeup
		}
		if remain := opts.Pace - time.Since(start); opts.Pace > 0 && remain > 0 {
			// Real-time pacing: sleep out the interval, still answering
			// stop and cancellation promptly.
			timer := time.NewTimer(remain)
			var done <-chan struct{}
			if opts.Ctx != nil {
				done = opts.Ctx.Done()
			}
			select {
			case <-timer.C:
			case <-stopOrNil(stop):
				stopped = true
			case <-done:
				stopped = true
			}
			timer.Stop()
		}
	}
	// Deliver the replay observations withheld at the final boundary,
	// then seal every HOP's terminal epoch.
	if _, err := runner.Run(nil, observers); err != nil {
		close(notify)
		<-verifyDone
		return nil, err
	}
	terminal := driver.Close()
	res.EpochsSealed = int(terminal) + 1
	// Clean shutdown: no further epochs will seal, so the terminal
	// epoch may be verified without waiting for a successor.
	win.FinishStream()
	close(notify)
	if err := <-verifyDone; err != nil {
		return nil, err
	}
	res.SampleReceipts = int(nSamples.Load())
	res.AggReceipts = int(nAggs.Load())

	// Anything still unverified after the final sweep is permanently
	// unjudgeable: some HOP never published the epoch's bundle. The
	// missing seals name the withholder — the narrowest implicated set
	// for starvation, since every other HOP's bundle arrived.
	res.Unverified = win.UnverifiedEpochs()
	for _, e := range res.Unverified {
		for _, h := range win.MissingSeals(e) {
			res.DissemFindings = append(res.DissemFindings,
				core.BlameHOP(layout, e, core.EvWithheldBundle, h, 1,
					fmt.Sprintf("epoch %d never sealed: no bundle from %v", e, h)))
		}
	}

	res.RecoveredEpochs = int(win.Recovered())
	res.Window = win.Stats()
	// Steady-state heap: drop the trace machinery, keep the window.
	gen = nil
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res.HeapAllocBytes = ms.HeapAlloc
	runtime.KeepAlive(win)
	return res, nil
}

// EpochsRow is one line of the continuous-operation experiment — the
// schema cmd/vpm-bench -run epochs -json emits for BENCH_*.json
// tracking.
type EpochsRow struct {
	Mode           string  `json:"mode"` // "batch" (one-shot) or "continuous"
	Epochs         int     `json:"epochs"`
	IntervalMS     float64 `json:"interval_ms"`
	Retention      int     `json:"retention"`
	Packets        int     `json:"packets"`
	SampleReceipts int     `json:"sample_receipts"`
	AggReceipts    int     `json:"agg_receipts"`
	MatchedSamples int64   `json:"matched_samples"`
	Violations     int     `json:"violations"`
	WallMS         float64 `json:"wall_ms"`
	EpochsPerSec   float64 `json:"epochs_per_sec"`
	MeanEpochMS    float64 `json:"mean_epoch_ms"`
	MaxEpochMS     float64 `json:"max_epoch_ms"`
	HeapMB         float64 `json:"heap_mb"`
	SegmentsHeld   int     `json:"segments_held"`
	SegmentsGCed   uint64  `json:"segments_gced"`
}

// Epochs measures continuous multi-interval operation on the Fig1
// workload: the one-shot batch baseline (whole trace, single flush,
// single verification sweep) against the rotating pipeline at each
// retention in retentions (default 2). cfg.DurationNS is interpreted
// as the epoch interval; epochs sets how many intervals to run.
func Epochs(cfg Config, epochs int, retentions []int) ([]EpochsRow, error) {
	cfg = cfg.Normalize()
	if epochs < 1 {
		epochs = 8
	}
	if len(retentions) == 0 {
		retentions = []int{2}
	}
	intervalNS := cfg.DurationNS

	var rows []EpochsRow

	// Batch baseline: the same total trace, one run, one verification
	// sweep at the end — what the repo did before continuous mode.
	batch, err := epochsBatchRow(cfg, epochs, intervalNS)
	if err != nil {
		return nil, err
	}
	rows = append(rows, batch)

	for _, ret := range retentions {
		ec := core.EpochConfig{IntervalNS: intervalNS, Retention: ret, Workers: 1, Shards: 1}
		start := time.Now()
		res, err := RunContinuous(cfg, ec, epochs, nil, nil)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		row := EpochsRow{
			Mode:           "continuous",
			Epochs:         res.EpochsRun,
			IntervalMS:     float64(intervalNS) / 1e6,
			Retention:      ret,
			Packets:        res.Packets,
			SampleReceipts: res.SampleReceipts,
			AggReceipts:    res.AggReceipts,
			MatchedSamples: res.MatchedSamples,
			Violations:     res.Violations,
			WallMS:         float64(wall.Nanoseconds()) / 1e6,
			EpochsPerSec:   float64(res.EpochsRun) / wall.Seconds(),
			HeapMB:         float64(res.HeapAllocBytes) / (1 << 20),
			SegmentsHeld:   res.Window.Segments,
			SegmentsGCed:   res.Window.Evicted,
		}
		var sum, max time.Duration
		for _, d := range res.EpochWall {
			sum += d
			if d > max {
				max = d
			}
		}
		if n := len(res.EpochWall); n > 0 {
			row.MeanEpochMS = float64(sum.Nanoseconds()) / float64(n) / 1e6
			row.MaxEpochMS = float64(max.Nanoseconds()) / 1e6
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// epochsBatchRow runs the one-shot baseline over the same total
// duration and measures its wall time and post-GC heap with the full
// store live.
func epochsBatchRow(cfg Config, epochs int, intervalNS int64) (EpochsRow, error) {
	row := EpochsRow{Mode: "batch", Epochs: epochs, IntervalMS: float64(intervalNS) / 1e6}
	tc := trace.Config{
		Seed:       cfg.Seed,
		DurationNS: int64(epochs) * intervalNS,
		Paths:      []trace.PathSpec{trace.DefaultPath(cfg.RatePPS)},
	}
	start := time.Now()
	pkts, err := trace.Generate(tc)
	if err != nil {
		return row, err
	}
	path := netsim.Fig1Path(cfg.Seed + 1000)
	dep, err := core.NewDeployment(path, tc.Table(), core.DefaultDeployConfig())
	if err != nil {
		return row, err
	}
	if _, err := path.Run(pkts, dep.Observers()); err != nil {
		return row, err
	}
	dep.Finalize()
	store := dep.NewStore()
	for _, proc := range dep.Processors {
		row.SampleReceipts += len(proc.Samples)
		row.AggReceipts += len(proc.Aggs)
	}
	for _, key := range store.Keys() {
		v := dep.NewVerifierOn(store, key)
		for _, lv := range v.VerifyAllLinks() {
			row.MatchedSamples += int64(lv.MatchedSamples)
			row.Violations += len(lv.Violations)
		}
		if _, err := v.DomainReports(quantile.DefaultQuantiles, cfg.Confidence); err != nil {
			return row, err
		}
	}
	wall := time.Since(start)
	row.Packets = len(pkts)
	row.WallMS = float64(wall.Nanoseconds()) / 1e6
	row.EpochsPerSec = float64(epochs) / wall.Seconds()
	// Batch heap: everything — trace, receipts, store — is live until
	// the sweep ends.
	pkts = nil
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	row.HeapMB = float64(ms.HeapAlloc) / (1 << 20)
	row.SegmentsHeld = 1
	runtime.KeepAlive(store)
	runtime.KeepAlive(dep)
	return row, nil
}

// EpochsRender renders the rows.
func EpochsRender(rows []EpochsRow, markdown bool) string {
	header := []string{"Mode", "Epochs", "Interval", "Ret", "Packets", "Receipts", "Matched", "Viol", "ms", "epochs/s", "heap MB", "segs"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Mode,
			fmt.Sprintf("%d", r.Epochs),
			fmt.Sprintf("%.0fms", r.IntervalMS),
			fmt.Sprintf("%d", r.Retention),
			fmt.Sprintf("%d", r.Packets),
			fmt.Sprintf("%d", r.SampleReceipts+r.AggReceipts),
			fmt.Sprintf("%d", r.MatchedSamples),
			fmt.Sprintf("%d", r.Violations),
			fmt.Sprintf("%.1f", r.WallMS),
			fmt.Sprintf("%.1f", r.EpochsPerSec),
			fmt.Sprintf("%.1f", r.HeapMB),
			fmt.Sprintf("%d", r.SegmentsHeld),
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
