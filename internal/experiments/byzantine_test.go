package experiments

import (
	"sync"
	"testing"

	"vpm/internal/core"
	"vpm/internal/netsim"
	"vpm/internal/receipt"
)

// matrixTestConfig is the reduced-scale matrix world: large enough for
// per-epoch marker populations (the bias check needs ≥10 matched
// markers per epoch), small enough to keep the suite fast.
func matrixTestConfig() Config {
	return Config{Seed: 1, RatePPS: 50_000, DurationNS: 300_000_000}
}

// testMatrix computes the (deterministic) matrix once and shares it
// across the tests that assert on it — the 22 scenario simulations are
// the most expensive thing in the suite.
var testMatrix = sync.OnceValues(func() ([]MatrixRow, error) {
	return AttackMatrix(matrixTestConfig())
})

// TestAttackMatrix is the acceptance gate of the Byzantine framework:
// every adversary in the matrix, in batch AND continuous mode, is
// either detected with correct blame (narrowest HOP set, allowed
// evidence class), contained (collusion), or provably harmless —
// and honest links carry zero violations in every scenario.
func TestAttackMatrix(t *testing.T) {
	rows, err := testMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 20 {
		t.Fatalf("matrix produced only %d rows", len(rows))
	}
	modes := map[string]map[string]bool{}
	for _, r := range rows {
		t.Logf("%-18s %-11s -> %-10s localized=%v evidence=%q blamed=%v epochs=%v",
			r.Adversary, r.Mode, r.Verdict, r.Localized, r.Evidence, r.BlamedHOPs, r.FlaggedEpochs)
		if r.Verdict == "undetected" {
			t.Errorf("%s/%s: adversary escaped: neither detected, contained, nor harmless", r.Adversary, r.Mode)
		}
		if !r.Localized {
			t.Errorf("%s/%s: blame not localized to the expected set (blamed %v)", r.Adversary, r.Mode, r.BlamedHOPs)
		}
		if r.HonestLinkViolations != 0 {
			t.Errorf("%s/%s: %d violations leaked onto honest links", r.Adversary, r.Mode, r.HonestLinkViolations)
		}
		if modes[r.Adversary] == nil {
			modes[r.Adversary] = map[string]bool{}
		}
		modes[r.Adversary][r.Mode] = true
	}
	// Every scenario must run in both modes unless it explicitly
	// restricted itself.
	for _, sc := range matrixScenarios(matrixTestConfig()) {
		for _, mode := range []string{"batch", "continuous"} {
			if sc.runsIn(mode) && !modes[sc.name][mode] {
				t.Errorf("scenario %s missing its %s row", sc.name, mode)
			}
		}
	}
	// Honest rows must be faithful: the verifier's estimate tracks the
	// ground truth.
	for _, r := range rows {
		if r.Adversary != "honest" {
			continue
		}
		if d := r.EstLossPct - r.TrueLossPct; d > 1.5 || d < -1.5 {
			t.Errorf("honest/%s: estimated loss %.2f%% vs true %.2f%%", r.Mode, r.EstLossPct, r.TrueLossPct)
		}
	}
}

// TestMatrixEvidenceClasses pins the headline detections to their
// paper-mandated evidence: fabrication surfaces as missing receipts at
// X-N, delay shaving as MaxDiff violations, withholding as a named
// missing seal, equivocation as a signed contradiction.
func TestMatrixEvidenceClasses(t *testing.T) {
	rows, err := testMatrix()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"fabricate/batch":         "missing-receipt",
		"delay-underreport/batch": "delay-bound",
		"withhold/continuous":     "withheld-bundle",
		"stale-replay/continuous": "epoch-replay",
		"equivocate/batch":        "equivocation",
		"prefer-markers/batch":    "marker-bias",
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r.Adversary+"/"+r.Mode] = r.Evidence
	}
	for key, ev := range want {
		if !containsCSV(got[key], ev) {
			t.Errorf("%s: evidence %q does not include %q", key, got[key], ev)
		}
	}
}

func containsCSV(csv, want string) bool {
	for csv != "" {
		i := 0
		for i < len(csv) && csv[i] != ',' {
			i++
		}
		if csv[:i] == want {
			return true
		}
		if i == len(csv) {
			break
		}
		csv = csv[i+1:]
	}
	return false
}

// TestEpochStraddleAttribution: an attack active only for a window of
// epochs — including one straddling a rotation boundary — is
// attributed to the epochs it touched (±1 for boundary spill) and to
// the right link, while untouched epochs stay violation-free. This is
// the per-epoch half of the blame-attribution contract.
func TestEpochStraddleAttribution(t *testing.T) {
	cfg := Config{Seed: 5, RatePPS: 50_000}
	const epochs = 6
	const intervalNS = 60_000_000
	const from, to = 2, 4 // fabricate during epochs [2, 4)
	dc := matrixDeploy()
	ec := core.EpochConfig{IntervalNS: intervalNS, Retention: 3, Workers: 1, Shards: 1}
	opts := ContinuousOptions{
		Deploy: &dc,
		MutatePath: func(p *netsim.Path) {
			// Lossless X: every forged record is a pure fabrication
			// artifact, so all violations stem from the attack window.
		},
		WrapSink: func(sink core.EpochSink) core.EpochSink {
			fab := fabricatorForX(netsim.Fig1Path(cfg.Seed + 1000))
			fab.From, fab.To = from, to
			return core.NewAdversarySink(sink, fab)
		},
	}
	res, err := RunContinuousOpts(cfg, ec, epochs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DissemFindings) != 0 {
		t.Fatalf("unexpected dissemination findings: %v", res.DissemFindings)
	}
	flagged := map[core.EpochID]bool{}
	for _, rep := range res.Reports {
		for _, k := range rep.Keys {
			for _, b := range k.Blames {
				flagged[rep.Epoch] = true
				for _, h := range b.HOPs {
					if h != 5 && h != 6 {
						t.Errorf("epoch %d: blame names %v, outside the X-N link", rep.Epoch, h)
					}
				}
				if b.Epoch != rep.Epoch {
					t.Errorf("blame stamped epoch %d inside report for epoch %d", b.Epoch, rep.Epoch)
				}
			}
		}
	}
	hit := false
	for e := range flagged {
		// Boundary spill may pull attribution one epoch to either side
		// of the active window; anything further is misattribution.
		if e < from-1 || e > to {
			t.Errorf("epoch %d flagged, outside the attack window [%d,%d) ±1", e, from, to)
		}
		if e >= from && e < to {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("no epoch inside the attack window [%d,%d) was flagged: %v", from, to, flagged)
	}
}

// TestContinuousWearMatchesBatchWear: the same data-plane adversary
// worn in batch and continuous mode corrupts the same observation
// stream — receipts stay deterministic under segmentation even when a
// HOP is lying (the Runner's segmentation invariant extends to worn
// observers).
func TestContinuousWearMatchesBatchWear(t *testing.T) {
	cfg := Config{Seed: 9, RatePPS: 30_000, DurationNS: 200_000_000}
	dc := matrixDeploy()
	wear := map[receipt.HOPID]netsim.Adversary{
		hopXEgress: &netsim.DelayShaver{ShaveNS: shaveBlatant},
	}
	ec := core.EpochConfig{IntervalNS: cfg.DurationNS / 4, Retention: 2, Workers: 1, Shards: 1}
	res1, err := RunContinuousOpts(cfg, ec, 4, ContinuousOptions{Deploy: &dc, Wear: wear})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunContinuousOpts(cfg, ec, 4, ContinuousOptions{Deploy: &dc, Wear: map[receipt.HOPID]netsim.Adversary{
		hopXEgress: &netsim.DelayShaver{ShaveNS: shaveBlatant},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res1.SampleReceipts != res2.SampleReceipts || res1.MatchedSamples != res2.MatchedSamples ||
		res1.Violations != res2.Violations {
		t.Fatalf("worn runs diverged: %d/%d/%d vs %d/%d/%d",
			res1.SampleReceipts, res1.MatchedSamples, res1.Violations,
			res2.SampleReceipts, res2.MatchedSamples, res2.Violations)
	}
	if res1.Violations == 0 {
		t.Fatal("worn DelayShaver produced no violations")
	}
}
