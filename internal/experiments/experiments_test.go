package experiments

import (
	"strings"
	"testing"
)

// quickCfg shrinks runs for unit testing; the full-scale runs happen
// in cmd/vpm-bench and the root benchmarks.
func quickCfg() Config {
	return Config{Seed: 5, RatePPS: 100000, DurationNS: int64(300e6)}
}

func TestNormalize(t *testing.T) {
	c := Config{}.Normalize()
	if c.Seed == 0 || c.RatePPS == 0 || c.DurationNS == 0 || c.Confidence == 0 {
		t.Fatalf("defaults missing: %+v", c)
	}
}

func TestTableRenderers(t *testing.T) {
	txt := Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(txt, "333") || !strings.Contains(txt, "--") {
		t.Errorf("bad table:\n%s", txt)
	}
	md := Markdown([]string{"a"}, [][]string{{"x"}})
	if !strings.HasPrefix(md, "| a |") {
		t.Errorf("bad markdown:\n%s", md)
	}
}

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	cfg := quickCfg()
	cfg.DurationNS = int64(1e9) // the paper's per-second packet sequences
	rows, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig2LossPcts)*len(Fig2SampleRatesPct) {
		t.Fatalf("%d rows", len(rows))
	}
	byCell := map[[2]float64]Fig2Row{}
	for _, r := range rows {
		if r.AccuracyMS < 0 {
			t.Fatalf("unmeasurable cell: %+v", r)
		}
		byCell[[2]float64{r.LossPct, r.SampleRatePct}] = r
	}
	// Shape 1: at a given loss, more sampling never has wildly worse
	// accuracy than 10x less sampling (graceful degradation).
	for _, loss := range Fig2LossPcts {
		hi := byCell[[2]float64{loss, 5}]
		lo := byCell[[2]float64{loss, 0.1}]
		if hi.MatchedSamples <= lo.MatchedSamples {
			t.Errorf("loss %v: 5%% sampling matched %d <= 0.1%%'s %d",
				loss, hi.MatchedSamples, lo.MatchedSamples)
		}
	}
	// Shape 2: the paper's headline cell — 1% sampling, 25% loss —
	// stays within a few ms.
	if acc := byCell[[2]float64{25, 1}].AccuracyMS; acc > 3 {
		t.Errorf("accuracy at (1%%, 25%% loss) = %.3f ms, paper says ~2 ms", acc)
	}
	// Shape 3: no-loss, high-rate accuracy is sub-millisecond.
	if acc := byCell[[2]float64{0, 5}].AccuracyMS; acc > 1 {
		t.Errorf("accuracy at (5%%, no loss) = %.3f ms, want < 1 ms", acc)
	}
	if out := Fig2Render(rows, false); !strings.Contains(out, "ms") {
		t.Error("render broken")
	}
	if out := Fig2Render(rows, true); !strings.HasPrefix(out, "|") {
		t.Error("markdown render broken")
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	cfg := quickCfg()
	cfg.DurationNS = int64(1e9)
	rows, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig3LossPcts) {
		t.Fatalf("%d rows", len(rows))
	}
	var noLoss, mid, high Fig3Row
	for _, r := range rows {
		switch r.LossPct {
		case 0:
			noLoss = r
		case 25:
			mid = r
		case 50:
			high = r
		}
		if r.Pairs == 0 {
			t.Fatalf("loss %v%%: no joined aggregates", r.LossPct)
		}
		// The measurement itself stays correct as granularity
		// degrades.
		if diff := r.MeasuredLossPct - r.LossPct; diff > 3 || diff < -3 {
			t.Errorf("loss %v%%: measured %v%%", r.LossPct, r.MeasuredLossPct)
		}
	}
	// No-loss granularity matches the configured aggregate span.
	if ratio := noLoss.GranularitySec / noLoss.BaselineSec; ratio < 0.8 || ratio > 1.3 {
		t.Errorf("no-loss granularity ratio %.2f, want ~1", ratio)
	}
	// Degradation is smooth: 25% loss coarsens but stays under ~2x;
	// 50% under ~3x (the paper's curve runs 1.0 -> ~1.5 -> ~2.5).
	if r := mid.GranularitySec / noLoss.GranularitySec; r < 1.05 || r > 2.2 {
		t.Errorf("25%% loss granularity ratio %.2f, want ~1.3-1.5", r)
	}
	if r := high.GranularitySec / noLoss.GranularitySec; r < 1.3 || r > 3.5 {
		t.Errorf("50%% loss granularity ratio %.2f, want ~2-2.5", r)
	}
	if out := Fig3Render(rows, false); !strings.Contains(out, "Granularity") {
		t.Error("render broken")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	out := Table1Render(rows, false)
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("partition algebra violated:\n%s", out)
	}
	if !strings.Contains(out, "Join(A2,A3) = A4") {
		t.Errorf("missing join example:\n%s", out)
	}
}

func TestMemoryOverheadRows(t *testing.T) {
	rows := MemoryOverhead()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper headline numbers.
	if rows[0].Paper.MonitoringCacheBytes != 2_000_000 {
		t.Errorf("paper cache = %d, want 2 MB", rows[0].Paper.MonitoringCacheBytes)
	}
	// 3.125 Mpps * 10ms = 31250 entries * 7 B = ~218 KB (the paper's
	// 436 KB counts both directions of the interface).
	if e := rows[1].Paper.TempBufferEntries; e != 31250 {
		t.Errorf("entries = %d", e)
	}
	if out := MemoryRender(rows, false); !strings.Contains(out, "MB") {
		t.Error("render broken")
	}
}

func TestBandwidthOverheadRows(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := BandwidthOverhead(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Analytic paper scenario: our 16-byte sample records are ~2.3x
	// the paper's 7-byte ones, so the paper's 0.046% becomes ~0.5%;
	// it must stay well under the 1% mark regardless.
	if rows[0].Analytic.OverheadFraction > 0.007 {
		t.Errorf("paper-scenario overhead %.4f%%", rows[0].Analytic.OverheadFraction*100)
	}
	// Compact encoding: ~1.2 B/pkt (0.31%). The paper's 0.2 B/pkt
	// counts only the per-aggregate receipts; adding the 1%-sampling
	// records at its own 7-byte size gives ~0.9 B/pkt, so our figure
	// is the honest version of the same arithmetic.
	if rows[1].Analytic.OverheadFraction > 0.004 {
		t.Errorf("compact overhead %.4f%%", rows[1].Analytic.OverheadFraction*100)
	}
	if rows[1].Analytic.BytesPerPacket >= rows[0].Analytic.BytesPerPacket {
		t.Error("compact encoding should cost less than full-width")
	}
	// Measured Fig.1 deployment: under 1% of traffic.
	if rows[2].MeasuredPct < 0 || rows[2].MeasuredPct > 1 {
		t.Errorf("measured overhead %.4f%%", rows[2].MeasuredPct)
	}
	if out := BandwidthRender(rows, false); !strings.Contains(out, "%") {
		t.Error("render broken")
	}
}

func TestVerifiabilityRows(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := Verifiability(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	full, reduced := rows[0], rows[1]
	if full.NRatePct != 1 || reduced.NRatePct != 0.1 {
		t.Fatalf("row order: %+v", rows)
	}
	// N sampling 10x less => ~10x fewer verifiable samples. That cap
	// on the verifiable population is the §7.2 claim's mechanism.
	if reduced.VerifyN*4 > full.VerifyN {
		t.Errorf("verifiable samples %d vs %d — expected a large drop", reduced.VerifyN, full.VerifyN)
	}
	// Within the full-rate row, verification matches self-estimation
	// (same sample set up to reorder noise).
	if full.VerifyN*100 < full.EstimateN*80 {
		t.Errorf("1%% witness corroborates only %d of %d samples", full.VerifyN, full.EstimateN)
	}
	if reduced.VerifyMS <= 0 || reduced.EstimateMS <= 0 {
		t.Errorf("degenerate accuracies: %+v", reduced)
	}
	if out := VerifiabilityRender(rows, false); !strings.Contains(out, "verifiable") {
		t.Error("render broken")
	}
}

func TestAttackRows(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := Attacks(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]AttackRow{}
	for _, r := range rows {
		byKey[r.Protocol+"/"+r.Attack] = r
	}
	strawman := byKey["strawman/honest"]
	if d := strawman.EstLossPct - strawman.TrueLossPct; d > 0.01 || d < -0.01 {
		t.Errorf("strawman not exact: %+v", strawman)
	}
	tspp := byKey["TS++/sampling bias"]
	if tspp.TrueLossPct < 15 {
		t.Fatalf("TS++ world lost only %v%%", tspp.TrueLossPct)
	}
	if tspp.EstLossPct > 2 {
		t.Errorf("TS++ bias should hide loss, estimated %v%%", tspp.EstLossPct)
	}
	if tspp.Detected {
		t.Error("TS++ bias must go undetected — that is the flaw")
	}
	vpmBias := byKey["VPM/bias attempt (prefer markers)"]
	if d := vpmBias.EstLossPct - vpmBias.TrueLossPct; d > 3 || d < -3 {
		t.Errorf("VPM bias attempt moved loss estimate: est %v%% vs true %v%%",
			vpmBias.EstLossPct, vpmBias.TrueLossPct)
	}
	if !vpmBias.Detected {
		t.Error("marker-bias detector should flag the marker preference")
	}
	blame := byKey["VPM/blame shift (fabricate delivery)"]
	if !blame.Detected {
		t.Error("blame shift must be exposed")
	}
	if blame.EstLossPct > 0.01 {
		t.Errorf("fabricated receipts should claim zero loss, got %v%%", blame.EstLossPct)
	}
	if out := AttacksRender(rows, false); !strings.Contains(out, "Exposed") {
		t.Error("render broken")
	}
}

func TestVerifyRows(t *testing.T) {
	cfg := quickCfg()
	cfg.DurationNS = int64(100e6)
	rows, err := Verify(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want rebuild + indexed@1 + indexed@4", len(rows))
	}
	if rows[0].Mode != "rebuild" || rows[1].Mode != "indexed" || rows[2].Mode != "indexed" {
		t.Fatalf("unexpected modes: %+v", rows)
	}
	for _, r := range rows {
		if r.HOPs != 16 || r.PathKeys != VerifyPathKeys {
			t.Fatalf("scenario shape %d HOPs × %d keys, want 16 × %d", r.HOPs, r.PathKeys, VerifyPathKeys)
		}
		if r.LinkChecks != 8*VerifyPathKeys {
			t.Fatalf("%d link checks, want %d", r.LinkChecks, 8*VerifyPathKeys)
		}
		if r.LinkChecksPerSec <= 0 || r.WallMS <= 0 {
			t.Fatalf("non-positive timing in %+v", r)
		}
		if r.MatchedSamples != rows[0].MatchedSamples {
			t.Fatalf("mode %s@%d matched %d samples, rebuild matched %d — modes disagree",
				r.Mode, r.Workers, r.MatchedSamples, rows[0].MatchedSamples)
		}
	}
	if rows[0].MatchedSamples == 0 {
		t.Fatal("scenario matched no samples")
	}
	if out := VerifyRender(rows, false); !strings.Contains(out, "rebuild") {
		t.Error("render broken")
	}
	if out := VerifyRender(rows, true); !strings.Contains(out, "|") {
		t.Error("markdown render broken")
	}
}

func TestClickRows(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	cfg := quickCfg()
	cfg.DurationNS = int64(100e6)
	rows, err := Click(cfg, 300000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].PktsPerSec <= 0 || rows[1].PktsPerSec <= 0 {
		t.Fatal("non-positive rates")
	}
	// The paper's Click setup was I/O-bound, hiding the collector's
	// CPU cost entirely; our pure-CPU loop surfaces it. The absolute
	// budget is what matters: the collector's marginal cost must keep
	// a single core above 2 Mpkts/s (~6.4 Gbps at 400 B packets),
	// comfortably inside "modern network capabilities" for a
	// multi-core line card.
	if !raceEnabled && rows[1].PktsPerSec < 2e6 {
		t.Errorf("with collector: %.2f Mpkts/s — below the 2 Mpps/core budget",
			rows[1].PktsPerSec/1e6)
	}
	if out := ClickRender(rows, false); !strings.Contains(out, "Mpkts/s") {
		t.Error("render broken")
	}
}
