package experiments

import "testing"

// seqLatencyBounds are the checked-in detection-latency regression
// gates: for every continuous-mode row the sequential arm is expected
// to detect, the measured SeqEpochsToVerdict (fractional epochs) must
// stay at or under the bound. The bounds carry headroom over the
// measured values (e.g. delay-underreport crosses at ~0.07 epochs,
// prefer-markers at ~0.73) so benign jitter passes while a real
// regression — a detector that stopped crossing, or got epochs
// slower — fails loudly.
var seqLatencyBounds = map[string]float64{
	"prefer-markers":      1.5,
	"delay-underreport":   0.5,
	"suppress-ingress":    0.5,
	"marker-shave":        1.0,
	"adaptive-shave":      0.5,
	"adaptive-shave-duty": 0.5,
	"adaptive-suppress":   0.5,
	"drop-records":        0.5,
	"fabricate":           0.5,
}

// seqQuietRows are the continuous rows the sequential arm must stay
// silent on: the honest baseline and the harmless probe (a sequential
// verdict there is a false positive), the contained collusion (blame
// would break the §3.1 containment contract), and the dissemination
// attacks — withheld or replayed bundles leave no packet-evidence
// stream, so a sequential verdict could only be a misattribution.
var seqQuietRows = []string{"honest", "bias-blind", "collude", "withhold", "stale-replay"}

// TestAttackMatrixSequential is the sequential arm's acceptance gate
// over the adversary matrix:
//
//   - agreement: every continuous packet-evidence row the batch checks
//     detect, the SPRT also detects — and no later (the sequential
//     crossing is mid-epoch; the batch verdict waits for the epoch to
//     seal);
//   - latency regression: each expected detection stays under its
//     checked-in epochs-to-verdict bound;
//   - adaptivity: at least one adaptive adversary is caught at a
//     fractional epochs-to-verdict below 1.0 — before the first batch
//     judgment was even possible;
//   - silence: quiet rows stay quiet (no sequential false positives).
func TestAttackMatrixSequential(t *testing.T) {
	rows, err := testMatrix()
	if err != nil {
		t.Fatal(err)
	}
	cont := map[string]MatrixRow{}
	for _, r := range rows {
		if r.Mode == "continuous" {
			cont[r.Adversary] = r
		}
	}

	for name, bound := range seqLatencyBounds {
		r, ok := cont[name]
		if !ok {
			t.Errorf("%s: expected continuous row missing from the matrix", name)
			continue
		}
		if !r.SeqDetected {
			t.Errorf("%s: sequential arm regressed to undetected", name)
			continue
		}
		if r.SeqEpochsToVerdict > bound {
			t.Errorf("%s: sequential detection at %.3f epochs exceeds the checked-in bound %.2f",
				name, r.SeqEpochsToVerdict, bound)
		}
	}

	// SPRT-vs-batch agreement on the rows that carry a packet-evidence
	// stream (dissemination attacks starve the stream instead of lying
	// in it; the matrix judges them by their missing seals).
	subBatch := 0
	for name, r := range cont {
		if r.Layer == "dissemination" || r.Layer == "none" {
			continue
		}
		if r.BatchEpochsToVerdict > 0 {
			if !r.SeqDetected {
				t.Errorf("%s: batch-detected (%.1f epochs) but the sequential arm never crossed",
					name, r.BatchEpochsToVerdict)
			} else if r.SeqEpochsToVerdict > r.BatchEpochsToVerdict {
				t.Errorf("%s: sequential detection at %.3f epochs is later than batch at %.1f",
					name, r.SeqEpochsToVerdict, r.BatchEpochsToVerdict)
			}
		}
		if r.SeqDetected && r.BatchEpochsToVerdict == 0 {
			subBatch++
			t.Logf("%s: sub-batch-threshold attack caught only by the sequential arm (%.3f epochs)",
				name, r.SeqEpochsToVerdict)
		}
	}
	// The tentpole row: the duty-cycled sub-MaxDiff shave never trips
	// a batch check, so at least one detection must be sequential-only.
	if subBatch == 0 {
		t.Error("no row demonstrates a sequential-only detection (every detected attack also tripped batch)")
	}

	fracBelowOne := 0
	for _, name := range []string{"adaptive-shave", "adaptive-shave-duty", "adaptive-suppress"} {
		if r := cont[name]; r.SeqDetected && r.SeqEpochsToVerdict < 1.0 {
			fracBelowOne++
		}
	}
	if fracBelowOne == 0 {
		t.Error("no adaptive row crossed at a fractional epochs-to-verdict below 1.0")
	}

	for _, name := range seqQuietRows {
		r, ok := cont[name]
		if !ok {
			t.Errorf("%s: expected continuous row missing from the matrix", name)
			continue
		}
		if r.SeqDetected {
			t.Errorf("%s: sequential arm fired on a row it must stay silent on (%.3f epochs)",
				name, r.SeqEpochsToVerdict)
		}
	}
}
