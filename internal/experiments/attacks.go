package experiments

import (
	"fmt"

	"vpm/internal/baseline"
	"vpm/internal/core"
	"vpm/internal/delaymodel"
	"vpm/internal/hashing"
	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

// AttackRow summarizes one protocol × adversary combination from the
// §3 design-space argument and the §5.1/§5.3 attack analyses.
type AttackRow struct {
	Protocol string
	Attack   string
	// TrueLossPct is what the domain actually did to its traffic;
	// EstLossPct is what a verifier computes from its receipts.
	TrueLossPct, EstLossPct float64
	// TrueP90MS / EstP90MS compare the 90th-percentile delay.
	TrueP90MS, EstP90MS float64
	// Detected reports whether the protocol exposed the manipulation
	// (receipt inconsistencies for VPM; always false for TS++ bias,
	// which is the point).
	Detected bool
	Note     string
}

// Attacks runs the §3 ablation suite: the same congested, lossy domain
// X under four protocols and the strongest applicable adversary.
//
//   - strawman / honest: exact measurements (reference row).
//   - TS++ / sampling bias: X recognizes sampled packets at forwarding
//     time and exempts them from loss and congestion — estimates turn
//     near-perfect, nothing is detected (§3.2).
//   - VPM / bias attempt: the best predictor X has is the public
//     marker threshold; preferring likely markers barely moves the
//     estimate because the σ-keyed samples are unpredictable (§5.1).
//   - VPM / blame shift: X fabricates delivery receipts; the verifier
//     flags the X-N link (§3.1, §4).
func Attacks(cfg Config) ([]AttackRow, error) {
	cfg = cfg.Normalize()
	const lossX = 0.20
	var rows []AttackRow

	// --- Strawman, honest (reference). ---
	{
		up, down := &baseline.Strawman{}, &baseline.Strawman{}
		truth, err := runBaselineWorld(cfg, lossX, up, down, nil)
		if err != nil {
			return nil, err
		}
		lost, delays := baseline.StrawmanCompare(up, down)
		rows = append(rows, AttackRow{
			Protocol:    "strawman",
			Attack:      "honest",
			TrueLossPct: truth.LossRate() * 100,
			EstLossPct:  float64(lost) / float64(truth.In) * 100,
			TrueP90MS:   p90ms(truth.TrueDelaysNS),
			EstP90MS:    p90ms(delays),
			Detected:    false,
			Note:        "exact but per-packet cost",
		})
	}

	// --- TS++ with the sampling-bias attack. ---
	{
		up := baseline.NewTrajectorySampling(0.01)
		down := baseline.NewTrajectorySampling(0.01)
		biased := func(_ *packet.Packet, digest uint64) bool { return up.Sampled(digest) }
		truth, err := runBaselineWorld(cfg, lossX, up, down, biased)
		if err != nil {
			return nil, err
		}
		est := baseline.TSPPCompare(up, down, cfg.Confidence)
		rows = append(rows, AttackRow{
			Protocol:    "TS++",
			Attack:      "sampling bias",
			TrueLossPct: truth.LossRate() * 100,
			EstLossPct:  est.LossRate * 100,
			TrueP90MS:   p90ms(truth.TrueDelaysNS),
			EstP90MS:    p90ms(est.DelaysNS),
			Detected:    false,
			Note:        "bias invisible: sampled packets identifiable at forwarding time",
		})
	}

	// --- VPM with the best available bias attempt. ---
	{
		markerMu := hashing.ThresholdForRate(core.DefaultDeployConfig().MarkerRate)
		biased := func(_ *packet.Packet, digest uint64) bool {
			// The adversary's only forwarding-time knowledge: markers
			// (public µ). Everything σ-keyed is unpredictable.
			return hashing.Exceeds(digest, markerMu)
		}
		w, err := buildVPMAttackWorld(cfg, lossX, biased)
		if err != nil {
			return nil, err
		}
		v := w.dep.NewVerifier(w.key)
		truth, _ := w.truth.DomainByName("X")
		rep, err := v.LossBetween(4, 5)
		if err != nil {
			return nil, err
		}
		delays := v.DelaysBetween(4, 5)
		// Extension: marker delays vs σ-keyed delays expose the
		// preference (markers are the only predictable samples).
		bias, biasErr := v.CheckMarkerBias(4, 5)
		detected := biasErr == nil && bias.Suspicious
		rows = append(rows, AttackRow{
			Protocol:    "VPM",
			Attack:      "bias attempt (prefer markers)",
			TrueLossPct: truth.LossRate() * 100,
			EstLossPct:  rep.Rate() * 100,
			TrueP90MS:   p90ms(truth.TrueDelaysNS),
			EstP90MS:    p90ms(delays),
			Detected:    detected,
			Note:        "loss exact; σ-keyed samples unpredictable; marker-vs-σ delay split flags the preference",
		})
	}

	// --- VPM with the blame-shift lie. ---
	{
		w, err := buildVPMAttackWorld(cfg, lossX, nil)
		if err != nil {
			return nil, err
		}
		truth, _ := w.truth.DomainByName("X")
		v := core.NewVerifier(w.dep.Layout())
		v.SetConfig(w.dep.VerifierConfig())
		var xInS receipt.SampleReceipt
		var xInA []receipt.AggReceipt
		for hop, proc := range w.dep.Processors {
			if hop == 5 {
				continue
			}
			for _, s := range proc.CombinedSamples() {
				if s.Path.Key == w.key {
					v.AddSampleReceipt(hop, s)
					if hop == 4 {
						xInS = s
					}
				}
			}
			var aggs []receipt.AggReceipt
			for _, a := range proc.Aggs {
				if a.Path.Key == w.key {
					aggs = append(aggs, a)
				}
			}
			v.AddAggReceipts(hop, aggs)
			if hop == 4 {
				xInA = aggs
			}
		}
		egressPath := w.path.PathIDFor(receipt.PathID{Key: w.key}, w.path.DomainIndex("X"), false)
		fs, fa := core.FabricateDelivery(xInS, xInA, egressPath, 500_000)
		v.AddSampleReceipt(5, fs)
		v.AddAggReceipts(5, fa)
		rep, err := v.LossBetween(4, 5)
		if err != nil {
			return nil, err
		}
		verdict := v.CheckLink(5, 6)
		rows = append(rows, AttackRow{
			Protocol:    "VPM",
			Attack:      "blame shift (fabricate delivery)",
			TrueLossPct: truth.LossRate() * 100,
			EstLossPct:  rep.Rate() * 100,
			TrueP90MS:   p90ms(truth.TrueDelaysNS),
			EstP90MS:    -1,
			Detected:    !verdict.Consistent(),
			Note: fmt.Sprintf("%d violations at the X-N link expose the lie",
				len(verdict.Violations)),
		})
	}
	return rows, nil
}

// runBaselineWorld drives the Figure 1 world with observers only at
// X's ingress/egress, for the baseline protocols.
func runBaselineWorld(cfg Config, lossX float64, up, down netsim.Observer,
	biased func(*packet.Packet, uint64) bool) (*netsim.DomainTruth, error) {
	tc := trace.Config{
		Seed:       cfg.Seed + 17,
		DurationNS: cfg.DurationNS,
		Paths:      []trace.PathSpec{trace.DefaultPath(cfg.RatePPS)},
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		return nil, err
	}
	path := netsim.Fig1Path(cfg.Seed + 23)
	xi := path.DomainIndex("X")
	ge, err := lossmodel.FromTargetLoss(lossX, 8, stats.NewRNG(cfg.Seed+29))
	if err != nil {
		return nil, err
	}
	path.Domains[xi].Loss = ge
	q, err := delaymodel.New(delaymodel.BurstyUDPScenario(cfg.Seed + 31))
	if err != nil {
		return nil, err
	}
	path.Domains[xi].Delay = q
	path.Domains[xi].Preferential = biased
	res, err := path.Run(pkts, map[receipt.HOPID]netsim.Observer{4: up, 5: down})
	if err != nil {
		return nil, err
	}
	truth, _ := res.DomainByName("X")
	return truth, nil
}

// buildVPMAttackWorld is buildWorld with congestion, loss and an
// optional preferential-treatment hook inside X.
func buildVPMAttackWorld(cfg Config, lossX float64, biased func(*packet.Packet, uint64) bool) (*world, error) {
	tc := trace.Config{
		Seed:       cfg.Seed + 17,
		DurationNS: cfg.DurationNS,
		Paths:      []trace.PathSpec{trace.DefaultPath(cfg.RatePPS)},
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		return nil, err
	}
	path := netsim.Fig1Path(cfg.Seed + 23)
	xi := path.DomainIndex("X")
	ge, err := lossmodel.FromTargetLoss(lossX, 8, stats.NewRNG(cfg.Seed+29))
	if err != nil {
		return nil, err
	}
	path.Domains[xi].Loss = ge
	q, err := delaymodel.New(delaymodel.BurstyUDPScenario(cfg.Seed + 31))
	if err != nil {
		return nil, err
	}
	path.Domains[xi].Delay = q
	path.Domains[xi].Preferential = biased
	dep, err := core.NewDeployment(path, tc.Table(), core.DefaultDeployConfig())
	if err != nil {
		return nil, err
	}
	res, err := path.Run(pkts, dep.Observers())
	if err != nil {
		return nil, err
	}
	dep.Finalize()
	return &world{
		cfg:   cfg,
		pkts:  pkts,
		path:  path,
		dep:   dep,
		key:   packet.PathKey{Src: tc.Paths[0].SrcPrefix, Dst: tc.Paths[0].DstPrefix},
		truth: res,
	}, nil
}

func p90ms(delaysNS []float64) float64 {
	if len(delaysNS) == 0 {
		return -1
	}
	return stats.Quantile(delaysNS, 0.9) / 1e6
}

// AttacksRender renders the rows.
func AttacksRender(rows []AttackRow, markdown bool) string {
	header := []string{"Protocol", "Adversary", "True loss", "Est. loss", "True p90", "Est. p90", "Exposed?", "Note"}
	var body [][]string
	ms := func(v float64) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f ms", v)
	}
	for _, r := range rows {
		body = append(body, []string{
			r.Protocol, r.Attack,
			fmt.Sprintf("%.1f%%", r.TrueLossPct),
			fmt.Sprintf("%.1f%%", r.EstLossPct),
			ms(r.TrueP90MS), ms(r.EstP90MS),
			fmt.Sprintf("%v", r.Detected),
			r.Note,
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
