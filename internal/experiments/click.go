package experiments

import (
	"fmt"
	"time"

	"vpm/internal/core"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/trace"
)

// ClickRow is one line of the §7.1 Click experiment reproduction: the
// software forwarding rate with and without the VPM collector module
// attached. The paper loaded its Click modules into an IPv4 router on
// a Nehalem server and measured no difference (the server was
// I/O-bound at 25 Gbps either way); here the forwarding loop is pure
// CPU, so we report the collector's actual marginal cost per packet
// instead of hiding it behind an I/O bottleneck.
type ClickRow struct {
	Configuration string
	PktsPerSec    float64
	NSPerPkt      float64
}

// forwardingTouch emulates the baseline router work per packet:
// parse the wire bytes into a preallocated struct (header validation
// + field extraction, the software-router equivalent of a forwarding
// lookup input) and fold the TTL decrement back into the checksum.
func forwardingTouch(p *packet.Packet, wire []byte) {
	_ = p.Parse(wire)
	p.TTL--
}

// Click measures the forwarding loop over n packets, with and without
// a VPM collector observing every packet.
func Click(cfg Config, n int) ([]ClickRow, error) {
	cfg = cfg.Normalize()
	tc := trace.Config{
		Seed:       cfg.Seed + 3,
		DurationNS: cfg.DurationNS,
		Paths:      []trace.PathSpec{trace.DefaultPath(cfg.RatePPS)},
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = 2_000_000
	}
	// Pre-serialize wire bytes once (the "NIC" side).
	wires := make([][]byte, len(pkts))
	for i := range pkts {
		wires[i] = pkts[i].Serialize(nil)
	}

	var rows []ClickRow
	// Baseline: forwarding only.
	var scratch packet.Packet
	start := time.Now()
	for i := 0; i < n; i++ {
		forwardingTouch(&scratch, wires[i%len(wires)])
	}
	base := time.Since(start)
	rows = append(rows, ClickRow{
		Configuration: "forwarding only",
		PktsPerSec:    float64(n) / base.Seconds(),
		NSPerPkt:      float64(base.Nanoseconds()) / float64(n),
	})

	// With the VPM collector attached.
	col, err := core.NewCollector(core.CollectorConfig{
		HOP:   4,
		Table: tc.Table(),
		PathID: func(key packet.PathKey) receipt.PathID {
			return receipt.PathID{Key: key}
		},
		Sampling:    core.DefaultSamplingConfig(),
		Aggregation: core.DefaultAggregationConfig(),
	})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < n; i++ {
		forwardingTouch(&scratch, wires[i%len(wires)])
		col.Observe(&scratch, scratch.Digest(1), int64(i)*10_000)
		if i%1_000_000 == 999_999 {
			col.Drain()
		}
	}
	withVPM := time.Since(start)
	rows = append(rows, ClickRow{
		Configuration: "forwarding + VPM collector",
		PktsPerSec:    float64(n) / withVPM.Seconds(),
		NSPerPkt:      float64(withVPM.Nanoseconds()) / float64(n),
	})
	return rows, nil
}

// ClickRender renders the rows.
func ClickRender(rows []ClickRow, markdown bool) string {
	header := []string{"Configuration", "Mpkts/s", "ns/pkt"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Configuration,
			fmt.Sprintf("%.2f", r.PktsPerSec/1e6),
			fmt.Sprintf("%.1f", r.NSPerPkt),
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
