package experiments

import (
	"fmt"

	"vpm/internal/core"
)

// MemoryRow is one §7.1 memory scenario: the paper's arithmetic next
// to this implementation's.
type MemoryRow struct {
	Scenario    string
	Paper, Ours core.MemoryBudget
}

// MemoryOverhead reproduces the §7.1 memory back-of-envelope:
//   - monitoring cache for 100k active paths (paper: 2 MB at 20 B/path);
//   - temporary buffer for a 10 Gbps interface at J = 10 ms with
//     average 400 B packets (paper: 436 KB) and with worst-case
//     minimum-size packets (paper: 2.8 MB).
func MemoryOverhead() []MemoryRow {
	const j = int64(10_000_000) // 10 ms
	return []MemoryRow{
		{
			Scenario: "monitoring cache, 100k active paths",
			Paper:    core.PaperMemoryScenario(100000, 0, j),
			Ours:     core.ComputeMemoryBudget(100000, 0, j),
		},
		{
			Scenario: "temp buffer, 10Gbps @ 400B avg (3.125 Mpps), J=10ms",
			Paper:    core.PaperMemoryScenario(0, 3.125e6, j),
			Ours:     core.ComputeMemoryBudget(0, 3.125e6, j),
		},
		{
			Scenario: "temp buffer, 10Gbps worst-case min packets (20 Mpps), J=10ms",
			Paper:    core.PaperMemoryScenario(0, 20e6, j),
			Ours:     core.ComputeMemoryBudget(0, 20e6, j),
		},
	}
}

// MemoryRender renders the memory rows.
func MemoryRender(rows []MemoryRow, markdown bool) string {
	header := []string{"Scenario", "Paper cache", "Ours cache", "Paper tempbuf", "Ours tempbuf"}
	var body [][]string
	mb := func(v int64) string { return fmt.Sprintf("%.2f MB", float64(v)/1e6) }
	for _, r := range rows {
		body = append(body, []string{
			r.Scenario,
			mb(r.Paper.MonitoringCacheBytes), mb(r.Ours.MonitoringCacheBytes),
			mb(r.Paper.TempBufferBytes), mb(r.Ours.TempBufferBytes),
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}

// BandwidthRow is one §7.1 bandwidth scenario.
type BandwidthRow struct {
	Scenario string
	// Analytic is the closed-form budget; MeasuredBytesPerPkt and
	// MeasuredPct come from an actual deployment run when available
	// (negative when not measured).
	Analytic            core.BandwidthBudget
	MeasuredBytesPerPkt float64
	MeasuredPct         float64
}

// BandwidthOverhead reproduces the §7.1 bandwidth estimate — the
// conservative 10-domain path with 1000-packet aggregates and 1%
// sampling (paper: 0.2 B/pkt, 0.046%) — with our receipt sizes, and
// also measures a real Figure 1 deployment end to end.
func BandwidthOverhead(cfg Config) ([]BandwidthRow, error) {
	cfg = cfg.Normalize()
	rows := []BandwidthRow{
		{
			Scenario:            "paper scenario: 10 domains, 1000-pkt aggs, 1% sampling (analytic, full 64-bit records)",
			Analytic:            core.ComputeBandwidthBudget(10, 1000, 0.01, 400),
			MeasuredBytesPerPkt: -1,
			MeasuredPct:         -1,
		},
		{
			Scenario:            "paper scenario, compact encoding (7-byte records, the paper's field sizes)",
			Analytic:            core.ComputeCompactBandwidthBudget(10, 1000, 0.01, 400),
			MeasuredBytesPerPkt: -1,
			MeasuredPct:         -1,
		},
	}
	// Measured: the Figure 1 path (8 HOPs), default tuning.
	w, err := buildWorld(cfg, worldOpt{})
	if err != nil {
		return nil, err
	}
	var traffic int64
	for i := range w.pkts {
		traffic += int64(w.pkts[i].WireLen())
	}
	rb := w.dep.TotalReceiptBytes()
	rows = append(rows, BandwidthRow{
		Scenario: fmt.Sprintf("measured: Fig.1 path (8 HOPs), default tuning, %d pkts", len(w.pkts)),
		Analytic: core.ComputeBandwidthBudget(8,
			1/core.DefaultDeployConfig().Default.AggRate,
			core.DefaultDeployConfig().Default.SampleRate, 400),
		MeasuredBytesPerPkt: float64(rb) / float64(len(w.pkts)),
		MeasuredPct:         float64(rb) / float64(traffic) * 100,
	})
	return rows, nil
}

// BandwidthRender renders the bandwidth rows.
func BandwidthRender(rows []BandwidthRow, markdown bool) string {
	header := []string{"Scenario", "Analytic B/pkt", "Analytic %", "Measured B/pkt", "Measured %"}
	var body [][]string
	for _, r := range rows {
		meas1, meas2 := "-", "-"
		if r.MeasuredBytesPerPkt >= 0 {
			meas1 = fmt.Sprintf("%.3f", r.MeasuredBytesPerPkt)
			meas2 = fmt.Sprintf("%.4f%%", r.MeasuredPct)
		}
		body = append(body, []string{
			r.Scenario,
			fmt.Sprintf("%.3f", r.Analytic.BytesPerPacket),
			fmt.Sprintf("%.4f%%", r.Analytic.OverheadFraction*100),
			meas1, meas2,
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
