package experiments

import (
	"fmt"
	"strings"

	"vpm/internal/aggregation"
)

// Table1Row is one line of the paper's Table 1: partitions of the
// packet set {p1..p4}, their "coarser than" relationships, and join
// examples.
type Table1Row struct {
	Name     string
	Value    string
	Relation string
	JoinNote string
}

// Table1 reproduces the paper's Table 1 by evaluating the partition
// algebra implementation on the worked example.
func Table1() []Table1Row {
	p1, p2, p3, p4 := uint64(1), uint64(2), uint64(3), uint64(4)
	A1 := aggregation.Partition{{p1}, {p2}, {p3}, {p4}}
	A2 := aggregation.Partition{{p1, p2}, {p3, p4}}
	A3 := aggregation.Partition{{p1}, {p2, p3}, {p4}}
	A3p := aggregation.Partition{{p1}, {p2}, {p3, p4}}
	A4 := aggregation.Partition{{p1, p2, p3, p4}}

	render := func(p aggregation.Partition) string {
		var aggs []string
		for _, a := range p {
			var ids []string
			for _, id := range a {
				ids = append(ids, fmt.Sprintf("p%d", id))
			}
			aggs = append(aggs, "{"+strings.Join(ids, ",")+"}")
		}
		return "{" + strings.Join(aggs, ", ") + "}"
	}
	rel := func(hi, lo aggregation.Partition, name string) string {
		if hi.Coarser(lo) {
			return name
		}
		return "VIOLATED: " + name
	}
	joinEq := func(a, b, want aggregation.Partition, name string) string {
		if a.JoinWith(b).Equal(want) {
			return name
		}
		return "VIOLATED: " + name
	}
	return []Table1Row{
		{"A1", render(A1), "", ""},
		{"A2", render(A2), rel(A2, A1, "A2 >= A1"), joinEq(A1, A2, A2, "Join(A1,A2) = A2")},
		{"A3", render(A3), rel(A3, A1, "A3 >= A1"), joinEq(A2, A3, A4, "Join(A2,A3) = A4")},
		{"A3'", render(A3p), rel(A2, A3p, "A2 >= A3'"), joinEq(A2, A3p, A2, "Join(A2,A3') = A2")},
		{"A4", render(A4), rel(A4, A2, "A4 >= A2") + ", " + rel(A4, A3, "A4 >= A3"), ""},
	}
}

// Table1Render renders the table.
func Table1Render(rows []Table1Row, markdown bool) string {
	header := []string{"Set", "Partition", "Relation", "Join example"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{r.Name, r.Value, r.Relation, r.JoinNote})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
