//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; wall-
// clock throughput budgets don't hold under its ~10× slowdown, so
// perf-assertion tests consult it.
const raceEnabled = true
