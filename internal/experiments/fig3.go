package experiments

import (
	"fmt"
)

// Fig3Row is one point of the paper's Figure 3: the granularity at
// which domain X's loss performance can be computed, as a function of
// the loss rate X introduces.
type Fig3Row struct {
	LossPct float64
	// GranularitySec is the average span of one computable (joined)
	// aggregate, in seconds of traffic.
	GranularitySec float64
	// BaselineSec is the no-loss granularity implied by the
	// aggregation rate (the paper's 1 s for 100k-packet aggregates at
	// 100k pkt/s).
	BaselineSec float64
	// Pairs is the number of joined aggregates the verifier could
	// compare.
	Pairs int
	// MeasuredLossPct is the loss the verifier computed — it should
	// track the x-axis (the measurement stays correct even as
	// granularity degrades).
	MeasuredLossPct float64
}

// Fig3LossPcts are the figure's x-axis points.
var Fig3LossPcts = []float64{0, 5, 10, 15, 20, 25, 30, 40, 50}

// Fig3 reproduces Figure 3: X produces one aggregate per
// (RatePPS * BaselineSec) packets; the verifier joins X's ingress and
// egress aggregate receipts and reports the average computable
// granularity. Loss of cutting points merges aggregates, coarsening
// the join smoothly (§6.3).
//
// The paper uses 100k-packet aggregates over a long trace; to keep
// single-process runs tractable the aggregate span defaults to a tenth
// of the trace so every point joins ~10 aggregates, and granularity is
// reported in absolute seconds alongside the no-loss baseline.
func Fig3(cfg Config) ([]Fig3Row, error) {
	cfg = cfg.Normalize()
	// One aggregate per ~20th of the trace, averaged over a few
	// repetitions: the survival of individual hash-selected cutting
	// points is noisy at small aggregate counts.
	const reps = 5
	aggPkts := cfg.RatePPS * float64(cfg.DurationNS) / 1e9 / 20
	if aggPkts < 100 {
		aggPkts = 100
	}
	aggRate := 1 / aggPkts
	baseline := aggPkts / cfg.RatePPS
	var rows []Fig3Row
	for _, loss := range Fig3LossPcts {
		row := Fig3Row{LossPct: loss, BaselineSec: baseline}
		var totalIn, totalLost int64
		for rep := 0; rep < reps; rep++ {
			w, err := buildWorld(cfg, worldOpt{
				lossX:    loss / 100,
				aggRate:  aggRate,
				seedBump: uint64(loss*100) + uint64(rep)*77777,
			})
			if err != nil {
				return nil, err
			}
			v := w.dep.NewVerifier(w.key)
			lrep, err := v.LossBetween(4, 5)
			if err != nil {
				return nil, err
			}
			row.Pairs += len(lrep.Pairs)
			totalIn += lrep.In
			totalLost += lrep.Lost
		}
		if row.Pairs > 0 {
			// Average packets per joined aggregate over the sending
			// rate gives seconds of traffic per computable point.
			row.GranularitySec = float64(totalIn) / float64(row.Pairs) / cfg.RatePPS
			row.MeasuredLossPct = float64(totalLost) / float64(totalIn) * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig3Render renders the figure's series.
func Fig3Render(rows []Fig3Row, markdown bool) string {
	header := []string{"Loss Rate", "Loss Granularity [sec]", "vs no-loss", "Joined Aggs", "Measured Loss"}
	var body [][]string
	for _, r := range rows {
		ratio := 0.0
		if r.BaselineSec > 0 {
			ratio = r.GranularitySec / r.BaselineSec
		}
		body = append(body, []string{
			fmt.Sprintf("%g%%", r.LossPct),
			fmt.Sprintf("%.2f", r.GranularitySec),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%d", r.Pairs),
			fmt.Sprintf("%.1f%%", r.MeasuredLossPct),
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
