package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"vpm/internal/fleet"
)

// Fleet measures the multi-process scale-out curve: it builds the real
// vpm-fleet binary, spawns the collector processes once, then runs the
// verifier tier at each requested width over the same collector set —
// real processes, real HTTP, real part files — and returns the
// keys/s-vs-processes rows the supervisor reports. The supervisor
// enforces that every width's merged verdict fingerprint matches, and
// with check it also replays the whole world single-process in-process
// and requires the merge byte-identical to it; a divergence is an
// error here, not a row.
//
// This experiment needs the go toolchain on PATH (it compiles
// vpm/cmd/vpm-fleet into a temp dir), unlike the in-process sweeps.
func Fleet(spec fleet.Spec, widths []int, check bool) ([]fleet.BenchRow, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(widths) == 0 {
		widths = []int{1, 2, 4}
	}
	dir, err := os.MkdirTemp("", "vpm-fleet-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "vpm-fleet")
	build := exec.Command("go", "build", "-o", bin, "vpm/cmd/vpm-fleet")
	if out, err := build.CombinedOutput(); err != nil {
		return nil, fmt.Errorf("building vpm-fleet: %w\n%s", err, out)
	}

	var widthTexts []string
	for _, w := range widths {
		widthTexts = append(widthTexts, strconv.Itoa(w))
	}
	args := []string{"run",
		"-spec", spec.Encode(),
		"-verifiers", strings.Join(widthTexts, ","),
		"-dir", dir,
		"-json",
	}
	if check {
		args = append(args, "-check")
	}
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("vpm-fleet run: %w\nstderr:\n%s", err, stderr.String())
	}
	var rows []fleet.BenchRow
	if err := json.Unmarshal(stdout.Bytes(), &rows); err != nil {
		return nil, fmt.Errorf("decoding vpm-fleet rows: %w\n%s", err, stdout.String())
	}
	for _, r := range rows[1:] {
		if r.Fingerprint != rows[0].Fingerprint {
			return nil, fmt.Errorf("fleet fingerprints diverge: procs=%d got %s, procs=%d got %s",
				rows[0].Procs, rows[0].Fingerprint, r.Procs, r.Fingerprint)
		}
	}
	return rows, nil
}

// FleetRender formats the scale-out curve.
func FleetRender(rows []fleet.BenchRow, markdown bool) string {
	var b strings.Builder
	if markdown {
		b.WriteString("| verifier procs | domains | keys | packets | wall [ms] | keys/s | fingerprint |\n")
		b.WriteString("|---:|---:|---:|---:|---:|---:|:---|\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "| %d | %d | %d | %d | %.0f | %.0f | %s |\n",
				r.Procs, r.Domains, r.Keys, r.Packets, r.WallMS, r.KeysPerSec, r.Fingerprint)
		}
	} else {
		fmt.Fprintf(&b, "%14s %8s %9s %10s %10s %12s  %s\n",
			"verifier procs", "domains", "keys", "packets", "wall [ms]", "keys/s", "fingerprint")
		for _, r := range rows {
			fmt.Fprintf(&b, "%14d %8d %9d %10d %10.0f %12.0f  %s\n",
				r.Procs, r.Domains, r.Keys, r.Packets, r.WallMS, r.KeysPerSec, r.Fingerprint)
		}
	}
	return b.String()
}
