package experiments

import (
	"fmt"
	"runtime"
	"time"

	"vpm/internal/core"
	"vpm/internal/hashing"
	"vpm/internal/netsim"
	"vpm/internal/packet"
)

// ChurnRow reports the path-churn experiment: a collector fed a fresh
// block of never-seen-before traffic keys every epoch, with idle-path
// eviction bounding the monitoring cache to the active working set.
// The heap figures are live-heap (HeapAlloc after GC) snapshots: the
// plateau is taken once eviction reaches steady state, and growth is
// measured from there to the final epoch — a flat heap means visiting
// a million distinct keys costs the working set, not the key count.
type ChurnRow struct {
	Keys          int     `json:"keys"`
	Epochs        int     `json:"epochs"`
	PacketsTotal  int     `json:"packets_total"`
	NSPerPkt      float64 `json:"ns_per_packet"`
	PeakActive    int     `json:"peak_active_paths"`
	FinalActive   int     `json:"final_active_paths"`
	PlateauHeapMB float64 `json:"plateau_heap_mb"`
	FinalHeapMB   float64 `json:"final_heap_mb"`
	HeapGrowthPct float64 `json:"heap_growth_pct"`
}

// churnDstPrefixes is the destination-prefix fan-out of the churn
// keyspace; key index k maps to (src k>>10, dst k&1023).
const churnDstPrefixes = 1024

// ChurnEvictIdleEpochs is the eviction threshold the churn experiment
// runs with: a path idle for one full epoch is evicted at the next
// rotation.
const ChurnEvictIdleEpochs = 1

// churnAddrs maps a global key index to its packet addresses.
func churnAddrs(k int) (src, dst [4]byte) {
	s, d := k/churnDstPrefixes, k%churnDstPrefixes
	return [4]byte{10, byte(s >> 8), byte(s & 255), 1},
		[4]byte{172, byte(16 + d>>8), byte(d & 255), 1}
}

// churnTable builds the prefix table covering totalKeys churn keys.
func churnTable(totalKeys int) *packet.Table {
	srcN := (totalKeys + churnDstPrefixes - 1) / churnDstPrefixes
	dstN := churnDstPrefixes
	if totalKeys < dstN {
		dstN = totalKeys
	}
	var prefixes []packet.Prefix
	for s := 0; s < srcN; s++ {
		prefixes = append(prefixes, packet.MakePrefix(10, byte(s>>8), byte(s&255), 0, 24))
	}
	for d := 0; d < dstN; d++ {
		prefixes = append(prefixes, packet.MakePrefix(172, byte(16+d>>8), byte(d&255), 0, 24))
	}
	return packet.NewTable(prefixes)
}

// Churn runs the key-churn experiment: totalKeys distinct traffic keys
// arrive in epochs disjoint blocks, one block per epoch, each key
// emitting pktsPerKey packets and then never returning. The collector
// runs with idle-path eviction (ChurnEvictIdleEpochs), so its heap
// should plateau at roughly two blocks' working set no matter how many
// total keys the run visits.
func Churn(totalKeys, epochs, pktsPerKey, shards int) (ChurnRow, error) {
	if totalKeys < epochs {
		return ChurnRow{}, fmt.Errorf("experiments: %d churn keys cannot fill %d epochs", totalKeys, epochs)
	}
	if pktsPerKey < 1 {
		return ChurnRow{}, fmt.Errorf("experiments: need at least 1 packet per key")
	}
	table := churnTable(totalKeys)
	cfg := ThroughputCollectorConfig(table, shards)
	cfg.EvictIdleEpochs = ChurnEvictIdleEpochs
	col, err := core.NewPathCollector(cfg)
	if err != nil {
		return ChurnRow{}, err
	}

	blockSize := totalKeys / epochs
	// Reused epoch buffers: the workload must not grow with the key
	// count or it would mask (or fake) collector heap growth.
	pkts := make([]packet.Packet, blockSize*pktsPerKey)
	obs := make([]netsim.Observation, len(pkts))
	var (
		row     ChurnRow
		elapsed time.Duration
		tNS     int64
		plateau float64
	)
	row.Keys, row.Epochs = blockSize*epochs, epochs
	for e := 0; e < epochs; e++ {
		n := 0
		for k := e * blockSize; k < (e+1)*blockSize; k++ {
			src, dst := churnAddrs(k)
			for p := 0; p < pktsPerKey; p++ {
				pkts[n] = packet.Packet{Src: src, Dst: dst, IPID: uint16(n)}
				obs[n] = netsim.Observation{
					Pkt:    &pkts[n],
					Digest: hashing.Mix64(uint64(k)*64 + uint64(p) + 1),
					TimeNS: tNS,
				}
				tNS += 1_000
				n++
			}
		}
		start := time.Now()
		for off := 0; off < n; off += ThroughputBatchSize {
			end := off + ThroughputBatchSize
			if end > n {
				end = n
			}
			col.ObserveBatch(obs[off:end])
		}
		elapsed += time.Since(start)
		samples, aggs := col.Drain()
		col.Recycle(samples, aggs)
		if active := col.Memory().ActivePaths; active > row.PeakActive {
			row.PeakActive = active
		}
		row.PacketsTotal += n

		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapMB := float64(ms.HeapAlloc) / (1 << 20)
		// Steady state begins once the first eviction pass has run
		// (epoch index 1 drains with block 0 idle).
		if e == 1 || (epochs == 1 && e == 0) {
			plateau = heapMB
		}
		row.FinalHeapMB = heapMB
	}
	row.PlateauHeapMB = plateau
	if plateau > 0 {
		row.HeapGrowthPct = (row.FinalHeapMB - plateau) / plateau * 100
	}
	row.FinalActive = col.Memory().ActivePaths
	row.NSPerPkt = float64(elapsed.Nanoseconds()) / float64(row.PacketsTotal)
	return row, nil
}

// ChurnRender renders the row.
func ChurnRender(r ChurnRow, markdown bool) string {
	header := []string{"keys", "epochs", "pkts", "ns/pkt", "peak paths", "final paths", "plateau MB", "final MB", "growth %"}
	body := [][]string{{
		fmt.Sprintf("%d", r.Keys),
		fmt.Sprintf("%d", r.Epochs),
		fmt.Sprintf("%d", r.PacketsTotal),
		fmt.Sprintf("%.1f", r.NSPerPkt),
		fmt.Sprintf("%d", r.PeakActive),
		fmt.Sprintf("%d", r.FinalActive),
		fmt.Sprintf("%.1f", r.PlateauHeapMB),
		fmt.Sprintf("%.1f", r.FinalHeapMB),
		fmt.Sprintf("%.1f", r.HeapGrowthPct),
	}}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
