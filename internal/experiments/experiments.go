// Package experiments reproduces every table and figure of the paper's
// evaluation (§7) plus the attack ablations its design sections argue
// (§3, §5.3). Each experiment is a pure function of a Config, returns
// typed rows, and renders itself as an aligned text table and as
// Markdown — cmd/vpm-bench and the repo-root benchmarks are thin
// wrappers around these. See DESIGN.md's per-experiment index.
package experiments

import (
	"fmt"
	"strings"

	"vpm/internal/core"
	"vpm/internal/delaymodel"
	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

// Config scales the experiments. The zero value is upgraded to the
// paper's settings by Normalize; benchmarks shrink Duration for speed.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// RatePPS is the foreground path's packet rate; the paper's
	// packet sequences run at 100k packets per second.
	RatePPS float64
	// DurationNS is the trace length (default 1 s).
	DurationNS int64
	// Confidence for quantile estimates (default 0.95).
	Confidence float64
}

// Normalize fills defaults in place and returns the config.
func (c Config) Normalize() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RatePPS == 0 {
		c.RatePPS = 100000
	}
	if c.DurationNS == 0 {
		c.DurationNS = int64(1e9)
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	return c
}

// world bundles everything one simulated run produces.
type world struct {
	cfg   Config
	pkts  []packet.Packet
	path  *netsim.Path
	dep   *core.Deployment
	key   packet.PathKey
	truth *netsim.Result
}

// worldOpt perturbs the Figure 1 scenario.
type worldOpt struct {
	// lossX is the Gilbert-Elliott loss rate inside domain X.
	lossX float64
	// congestX attaches the bursty-UDP bottleneck to X.
	congestX bool
	// deploy overrides the deployment config (nil: default with
	// sampleRate/aggRate applied to every domain).
	deploy *core.DeployConfig
	// sampleRate and aggRate set every domain's tuning when deploy is
	// nil (zero keeps the defaults).
	sampleRate, aggRate float64
	// seedBump decorrelates repeated runs.
	seedBump uint64
}

// buildWorld generates the trace, the (possibly perturbed) Figure 1
// path, and a full deployment, then runs the simulation.
func buildWorld(cfg Config, opt worldOpt) (*world, error) {
	tc := trace.Config{
		Seed:       cfg.Seed + opt.seedBump,
		DurationNS: cfg.DurationNS,
		Paths:      []trace.PathSpec{trace.DefaultPath(cfg.RatePPS)},
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		return nil, err
	}
	path := netsim.Fig1Path(cfg.Seed + opt.seedBump + 1000)
	xi := path.DomainIndex("X")
	if opt.congestX {
		q, err := delaymodel.New(delaymodel.BurstyUDPScenario(cfg.Seed + opt.seedBump + 7))
		if err != nil {
			return nil, err
		}
		path.Domains[xi].Delay = q
	}
	if opt.lossX > 0 {
		ge, err := lossmodel.FromTargetLoss(opt.lossX, 8, stats.NewRNG(cfg.Seed+opt.seedBump+13))
		if err != nil {
			return nil, err
		}
		path.Domains[xi].Loss = ge
	}
	dc := core.DefaultDeployConfig()
	if opt.deploy != nil {
		dc = *opt.deploy
	} else {
		if opt.sampleRate > 0 {
			dc.Default.SampleRate = opt.sampleRate
		}
		if opt.aggRate > 0 {
			dc.Default.AggRate = opt.aggRate
		}
	}
	dep, err := core.NewDeployment(path, tc.Table(), dc)
	if err != nil {
		return nil, err
	}
	res, err := path.Run(pkts, dep.Observers())
	if err != nil {
		return nil, err
	}
	dep.Finalize()
	return &world{
		cfg:   cfg,
		pkts:  pkts,
		path:  path,
		dep:   dep,
		key:   packet.PathKey{Src: tc.Paths[0].SrcPrefix, Dst: tc.Paths[0].DstPrefix},
		truth: res,
	}, nil
}

// Table renders rows of cells as an aligned text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders rows of cells as a Markdown table.
func Markdown(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(header)) + "\n")
	for _, r := range rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}
