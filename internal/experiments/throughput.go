package experiments

import (
	"fmt"
	"runtime"
	"time"

	"vpm/internal/core"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/streamagg"
	"vpm/internal/trace"
)

// ThroughputRow is one line of the collection-pipeline throughput
// experiment: packets per second through a HOP collector in a given
// configuration, plus the steady-state heap behavior of the full
// observe → drain → encode → recycle cycle. Mode "serial" is the
// pre-sharding hot path (single-packet Observe through the
// netsim.Observer interface); "sharded" is the batched
// ShardedCollector at Shards shards; "sharded-sketch" is the same
// pipeline with the streaming sketch backend thinning retained
// records. The JSON tags are the machine-readable schema
// cmd/vpm-bench -json emits, so the perf trajectory can be tracked
// across PRs in BENCH_*.json files.
type ThroughputRow struct {
	Mode       string  `json:"mode"`
	Shards     int     `json:"shards"`
	Packets    int     `json:"packets"`
	PktsPerSec float64 `json:"packets_per_sec"`
	NSPerPkt   float64 `json:"ns_per_packet"`
	// AllocsPerPkt and BytesPerPkt are heap allocations (count and
	// bytes) per packet across the measured steady-state passes,
	// including epoch drains, arena encoding and buffer recycling —
	// the whole pipeline, not just the observe path.
	AllocsPerPkt float64 `json:"allocs_per_packet"`
	BytesPerPkt  float64 `json:"bytes_per_packet"`
	// ReceiptBytesPerPkt is the encoded receipt stream's size per
	// observed packet — the §6 reporting-bandwidth figure as this
	// workload produces it.
	ReceiptBytesPerPkt float64 `json:"receipt_bytes_per_packet"`
}

// ThroughputBatchSize is the feed granularity of all collector
// throughput measurements (this experiment and the repo-root
// benchmarks) — netsim's replay batch size, so measured numbers
// reflect what the real pipeline delivers per ObserveBatch call.
const ThroughputBatchSize = netsim.ReplayBatchSize

// Warmup and measurement pass counts for the steady-state protocol:
// warmup passes grow every accumulator (path state, scratch buffers,
// recycled receipt slices, the encode arena) to its high-water mark,
// then the measured passes run on a quiet heap.
const (
	throughputWarmupPasses   = 3
	throughputMeasuredPasses = 5
)

// CollectorWorkload materializes a trace as a ready-to-feed
// observation stream (packets, digests, arrival-ordered timestamps)
// for collector throughput measurement. The repo-root benchmarks and
// the Throughput experiment share it so both measure the same
// workload shape.
func CollectorWorkload(tc trace.Config) ([]netsim.Observation, error) {
	pkts, err := trace.Generate(tc)
	if err != nil {
		return nil, err
	}
	workload := make([]netsim.Observation, len(pkts))
	for i := range pkts {
		workload[i] = netsim.Observation{Pkt: &pkts[i], Digest: pkts[i].Digest(1), TimeNS: int64(i) * 10_000}
	}
	return workload, nil
}

// ShiftWorkload advances every observation timestamp by span — feeding
// the same workload repeatedly must keep HOP clocks monotonic, or the
// partitioner's reordering window sees time restart and never evicts.
func ShiftWorkload(w []netsim.Observation, span int64) {
	for i := range w {
		w[i].TimeNS += span
	}
}

// WorkloadSpan returns the timestamp span one feed pass covers.
func WorkloadSpan(w []netsim.Observation) int64 { return int64(len(w)) * 10_000 }

// ThroughputCollectorConfig is the standalone-collector configuration
// the throughput measurements use (HOP 4 with an identity PathID, the
// default protocol parameters, and the given shard count).
func ThroughputCollectorConfig(table *packet.Table, shards int) core.CollectorConfig {
	return core.CollectorConfig{
		HOP:   4,
		Table: table,
		PathID: func(key packet.PathKey) receipt.PathID {
			return receipt.PathID{Key: key}
		},
		Sampling:    core.DefaultSamplingConfig(),
		Aggregation: core.DefaultAggregationConfig(),
		Shards:      shards,
	}
}

// SketchCollectorConfig is ThroughputCollectorConfig with the
// streaming sketch backend at the standard benchmark thinning
// parameters (keep 1 in 4 sampled records exactly, summarize the rest).
func SketchCollectorConfig(table *packet.Table, shards int) core.CollectorConfig {
	cfg := ThroughputCollectorConfig(table, shards)
	cfg.Backend = core.BackendSketch
	cfg.Sketch = streamagg.Config{
		KeepRate:    0.25,
		Salt:        0x5eed_cafe,
		MarkerRate:  cfg.Sampling.MarkerRate,
		SketchCells: 512,
		SketchSeed:  7,
	}
	return cfg
}

// throughputMetrics accumulates one configuration's measured passes.
type throughputMetrics struct {
	elapsed      time.Duration
	allocs       uint64
	bytes        uint64
	receiptBytes uint64
	packets      int
}

// runThroughput drives col through the steady-state measurement
// protocol: warmup feed+drain passes, then measured passes timing the
// observe path and metering heap allocations across the whole cycle
// (feed, drain, arena-encode, recycle). batch <= 0 selects the serial
// per-packet Observe feed.
func runThroughput(col core.PathCollector, workload []netsim.Observation, batch int) throughputMetrics {
	span := WorkloadSpan(workload)
	feed := func() {
		if batch <= 0 {
			var obs netsim.Observer = col
			for i := range workload {
				obs.Observe(workload[i].Pkt, workload[i].Digest, workload[i].TimeNS)
			}
			return
		}
		for off := 0; off < len(workload); off += batch {
			end := off + batch
			if end > len(workload) {
				end = len(workload)
			}
			col.ObserveBatch(workload[off:end])
		}
	}
	var arena receipt.Arena
	drainCycle := func() int {
		samples, aggs := col.Drain()
		arena.Reset()
		encoded := len(arena.Encode(samples, aggs))
		col.Recycle(samples, aggs)
		if pool := col.SketchPool(); pool != nil {
			for _, ps := range col.DrainSketches() {
				pool.Put(ps)
			}
		}
		return encoded
	}
	for i := 0; i < throughputWarmupPasses; i++ {
		ShiftWorkload(workload, span)
		feed()
		drainCycle()
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var m throughputMetrics
	for i := 0; i < throughputMeasuredPasses; i++ {
		ShiftWorkload(workload, span) // untimed: harness bookkeeping, not pipeline work
		start := time.Now()
		feed()
		m.elapsed += time.Since(start)
		m.receiptBytes += uint64(drainCycle())
	}
	runtime.ReadMemStats(&after)
	m.allocs = after.Mallocs - before.Mallocs
	m.bytes = after.TotalAlloc - before.TotalAlloc
	m.packets = len(workload) * throughputMeasuredPasses
	return m
}

// Throughput measures the collector data plane on the Fig1 foreground
// workload: the serial per-packet baseline, the sharded batch pipeline
// at each of shardCounts (default 1, 2, 4, 8), and the sketch backend
// at the largest shard count.
func Throughput(cfg Config, shardCounts []int) ([]ThroughputRow, error) {
	cfg = cfg.Normalize()
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	tc := trace.Config{
		Seed:       cfg.Seed + 7,
		DurationNS: cfg.DurationNS,
		Paths:      []trace.PathSpec{trace.DefaultPath(cfg.RatePPS)},
	}
	workload, err := CollectorWorkload(tc)
	if err != nil {
		return nil, err
	}

	var rows []ThroughputRow
	serial, err := core.NewCollector(ThroughputCollectorConfig(tc.Table(), 1))
	if err != nil {
		return nil, err
	}
	rows = append(rows, throughputRow("serial", 1, runThroughput(serial, workload, 0)))

	for _, shards := range shardCounts {
		col, err := core.NewShardedCollector(ThroughputCollectorConfig(tc.Table(), shards))
		if err != nil {
			return nil, err
		}
		rows = append(rows, throughputRow("sharded", col.NumShards(), runThroughput(col, workload, ThroughputBatchSize)))
	}

	maxShards := shardCounts[len(shardCounts)-1]
	sk, err := core.NewShardedCollector(SketchCollectorConfig(tc.Table(), maxShards))
	if err != nil {
		return nil, err
	}
	rows = append(rows, throughputRow("sharded-sketch", sk.NumShards(), runThroughput(sk, workload, ThroughputBatchSize)))
	return rows, nil
}

func throughputRow(mode string, shards int, m throughputMetrics) ThroughputRow {
	n := float64(m.packets)
	return ThroughputRow{
		Mode:               mode,
		Shards:             shards,
		Packets:            m.packets,
		PktsPerSec:         n / m.elapsed.Seconds(),
		NSPerPkt:           float64(m.elapsed.Nanoseconds()) / n,
		AllocsPerPkt:       float64(m.allocs) / n,
		BytesPerPkt:        float64(m.bytes) / n,
		ReceiptBytesPerPkt: float64(m.receiptBytes) / n,
	}
}

// ThroughputRender renders the rows.
func ThroughputRender(rows []ThroughputRow, markdown bool) string {
	header := []string{"Mode", "Shards", "Mpkts/s", "ns/pkt", "allocs/pkt", "B/pkt", "rcptB/pkt"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Mode,
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%.2f", r.PktsPerSec/1e6),
			fmt.Sprintf("%.1f", r.NSPerPkt),
			fmt.Sprintf("%.4f", r.AllocsPerPkt),
			fmt.Sprintf("%.1f", r.BytesPerPkt),
			fmt.Sprintf("%.3f", r.ReceiptBytesPerPkt),
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
