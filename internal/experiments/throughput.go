package experiments

import (
	"fmt"
	"time"

	"vpm/internal/core"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/trace"
)

// ThroughputRow is one line of the collection-pipeline throughput
// experiment: packets per second through a HOP collector in a given
// configuration. Mode "serial" is the pre-sharding hot path
// (single-packet Observe through the netsim.Observer interface);
// mode "sharded" is the batched ShardedCollector at Shards shards.
// The JSON tags are the machine-readable schema cmd/vpm-bench -json
// emits, so the perf trajectory can be tracked across PRs in
// BENCH_*.json files.
type ThroughputRow struct {
	Mode       string  `json:"mode"`
	Shards     int     `json:"shards"`
	Packets    int     `json:"packets"`
	PktsPerSec float64 `json:"packets_per_sec"`
	NSPerPkt   float64 `json:"ns_per_packet"`
}

// ThroughputBatchSize is the feed granularity of all collector
// throughput measurements (this experiment and the repo-root
// benchmarks) — netsim's replay batch size, so measured numbers
// reflect what the real pipeline delivers per ObserveBatch call.
const ThroughputBatchSize = netsim.ReplayBatchSize

// CollectorWorkload materializes a trace as a ready-to-feed
// observation stream (packets, digests, arrival-ordered timestamps)
// for collector throughput measurement. The repo-root benchmarks and
// the Throughput experiment share it so both measure the same
// workload shape.
func CollectorWorkload(tc trace.Config) ([]netsim.Observation, error) {
	pkts, err := trace.Generate(tc)
	if err != nil {
		return nil, err
	}
	workload := make([]netsim.Observation, len(pkts))
	for i := range pkts {
		workload[i] = netsim.Observation{Pkt: &pkts[i], Digest: pkts[i].Digest(1), TimeNS: int64(i) * 10_000}
	}
	return workload, nil
}

// ThroughputCollectorConfig is the standalone-collector configuration
// the throughput measurements use (HOP 4 with an identity PathID, the
// default protocol parameters, and the given shard count).
func ThroughputCollectorConfig(table *packet.Table, shards int) core.CollectorConfig {
	return core.CollectorConfig{
		HOP:   4,
		Table: table,
		PathID: func(key packet.PathKey) receipt.PathID {
			return receipt.PathID{Key: key}
		},
		Sampling:    core.DefaultSamplingConfig(),
		Aggregation: core.DefaultAggregationConfig(),
		Shards:      shards,
	}
}

// Throughput measures the collector data plane on the Fig1 foreground
// workload: the serial per-packet baseline, then the sharded batch
// pipeline at each of shardCounts (default 1, 2, 4, 8).
func Throughput(cfg Config, shardCounts []int) ([]ThroughputRow, error) {
	cfg = cfg.Normalize()
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	tc := trace.Config{
		Seed:       cfg.Seed + 7,
		DurationNS: cfg.DurationNS,
		Paths:      []trace.PathSpec{trace.DefaultPath(cfg.RatePPS)},
	}
	workload, err := CollectorWorkload(tc)
	if err != nil {
		return nil, err
	}
	colCfg := func(shards int) core.CollectorConfig {
		return ThroughputCollectorConfig(tc.Table(), shards)
	}

	var rows []ThroughputRow
	serial, err := core.NewCollector(colCfg(1))
	if err != nil {
		return nil, err
	}
	var obs netsim.Observer = serial
	start := time.Now()
	for i := range workload {
		obs.Observe(workload[i].Pkt, workload[i].Digest, workload[i].TimeNS)
	}
	serial.Drain()
	rows = append(rows, throughputRow("serial", 1, len(workload), time.Since(start)))

	for _, shards := range shardCounts {
		col, err := core.NewShardedCollector(colCfg(shards))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for off := 0; off < len(workload); off += ThroughputBatchSize {
			end := off + ThroughputBatchSize
			if end > len(workload) {
				end = len(workload)
			}
			col.ObserveBatch(workload[off:end])
		}
		col.Drain()
		rows = append(rows, throughputRow("sharded", col.NumShards(), len(workload), time.Since(start)))
	}
	return rows, nil
}

func throughputRow(mode string, shards, n int, d time.Duration) ThroughputRow {
	return ThroughputRow{
		Mode:       mode,
		Shards:     shards,
		Packets:    n,
		PktsPerSec: float64(n) / d.Seconds(),
		NSPerPkt:   float64(d.Nanoseconds()) / float64(n),
	}
}

// ThroughputRender renders the rows.
func ThroughputRender(rows []ThroughputRow, markdown bool) string {
	header := []string{"Mode", "Shards", "Mpkts/s", "ns/pkt"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Mode,
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%.2f", r.PktsPerSec/1e6),
			fmt.Sprintf("%.1f", r.NSPerPkt),
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
