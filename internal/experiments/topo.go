package experiments

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
	"time"

	"vpm/internal/core"
	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

// This file sweeps the mesh topology families: for each named family
// (star, tree, Clos-like ECMP fabric, random AS graph) it runs the
// full pipeline — many origin-prefix keys multiplexed over shared
// links, cross-traffic included — honest and with a lossy shared link,
// and verifies every (key, route) against the per-route layouts. The
// faulty runs repeat across the {shards} × {workers} grid and must
// produce byte-identical verdicts at every point; the blame columns
// prove the §3.1 localization claim on meshes: the shared link's own
// domain pair is implicated by every key crossing it, and the honest
// disjoint routes carry zero violations.

// TopoFaultLoss is the loss rate injected on the faulty shared link.
const TopoFaultLoss = 0.3

// TopoRow is one line of the topology sweep — the schema
// cmd/vpm-bench -run topo -json emits for BENCH_*.json tracking.
type TopoRow struct {
	Family   string `json:"family"`
	Scenario string `json:"scenario"` // "honest" or "faulty-shared-link"
	Domains  int    `json:"domains"`
	Links    int    `json:"links"`
	HOPs     int    `json:"hops"`
	// PathKeys counts the verified foreground keys; Background counts
	// keys routed across the mesh (loading the shared queues and
	// collectors) but not verified — cross-traffic.
	PathKeys   int `json:"path_keys"`
	Background int `json:"background_keys"`
	Routes     int `json:"routes"`
	// FanIn is the largest number of distinct keys sharing one link.
	FanIn   int `json:"fan_in"`
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	Packets int `json:"packets"`
	// LinkChecks counts the per-(key, route) link verifications of the
	// sweep; WallMS times store build + full sweep.
	LinkChecks       int     `json:"link_checks"`
	MatchedSamples   int64   `json:"matched_samples"`
	WallMS           float64 `json:"wall_ms"`
	LinkChecksPerSec float64 `json:"link_checks_per_sec"`
	// FaultyLink names the injected faulty link ("leaf0-hub"), empty on
	// honest rows. BlamedDomains is the union of domains the merged
	// blame implicates; BlamedKeys is how many distinct keys implicated
	// the faulty link; HonestLinkViolations counts violations on any
	// other link (must be zero); Localized reports blame confined to
	// the faulty link's own HOP pair.
	FaultyLink           string   `json:"faulty_link,omitempty"`
	BlamedDomains        []string `json:"blamed_domains,omitempty"`
	BlamedKeys           int      `json:"blamed_keys"`
	HonestLinkViolations int      `json:"honest_link_violations"`
	Localized            bool     `json:"localized"`
	// Fingerprint is a digest of the full verdict text; identical
	// across every (shards, workers) grid point of one scenario.
	Fingerprint string `json:"fingerprint"`
}

// topoFamily describes one named topology family at sweep scale.
type topoFamily struct {
	name       string
	keys       int // verified foreground keys
	background int // routed but unverified cross-traffic keys
	build      func(seed uint64, keys []packet.PathKey) *netsim.Topology
}

// topoFamilies returns the sweep roster: ≥3 families spanning fan-in
// shapes (one hot access link, a shared tree backbone, ECMP fan-out,
// organic overlap).
func topoFamilies() []topoFamily {
	return []topoFamily{
		{
			name: "star", keys: 8, background: 1,
			build: func(seed uint64, keys []packet.PathKey) *netsim.Topology {
				return netsim.StarTopology(seed, 6, keys)
			},
		},
		{
			name: "tree", keys: 4, background: 0,
			build: func(seed uint64, keys []packet.PathKey) *netsim.Topology {
				return netsim.TreeTopology(seed, 2, 2, keys)
			},
		},
		{
			name: "clos", keys: 4, background: 1,
			build: func(seed uint64, keys []packet.PathKey) *netsim.Topology {
				return netsim.ClosTopology(seed, 3, 2, keys)
			},
		},
		{
			name: "random-as", keys: 6, background: 0,
			build: func(seed uint64, keys []packet.PathKey) *netsim.Topology {
				return netsim.RandomASTopology(seed, 8, 3, keys)
			},
		},
	}
}

// topoDeployConfig samples densely enough that every per-key link
// check sees a meaningful population at bench scale.
func topoDeployConfig(shards int) core.DeployConfig {
	dc := core.DefaultDeployConfig()
	dc.MarkerRate = 0.004
	dc.Default.SampleRate = 0.05
	dc.Default.AggRate = 0.001
	dc.Shards = shards
	return dc
}

// busiestSharedLink returns the shared link crossed by the most
// distinct keys (first by link order on ties), or -1 when nothing is
// shared.
func busiestSharedLink(t *netsim.Topology) int {
	best, bestKeys := -1, 0
	for _, li := range t.SharedLinks() {
		keys := make(map[packet.PathKey]bool)
		for ri := range t.Routes {
			for _, l := range t.Routes[ri].Links {
				if l == li {
					keys[t.Routes[ri].Key] = true
				}
			}
		}
		if len(keys) > bestKeys {
			best, bestKeys = li, len(keys)
		}
	}
	return best
}

// topoWorld is one built-and-run mesh pipeline, ready to verify.
type topoWorld struct {
	topo    *netsim.Topology
	dep     *core.Deployment
	store   *core.ReceiptStore
	fgKeys  []packet.PathKey
	packets int
}

// runTopoWorld builds the family's topology (optionally with the
// faulty shared link), deploys at the given shard count, dresses any
// worn HOPs in their data-plane adversaries, and replays the
// multi-key trace through the mesh engine.
func runTopoWorld(cfg Config, f topoFamily, faultyLink bool, shards int, wear map[receipt.HOPID]netsim.Adversary) (*topoWorld, int, error) {
	allKeys := netsim.TopoKeys(f.keys + f.background)
	topo := f.build(cfg.Seed+5000, allKeys)
	fault := -1
	if faultyLink {
		fault = busiestSharedLink(topo)
		if fault < 0 {
			return nil, -1, fmt.Errorf("experiments: family %s has no shared link to break", f.name)
		}
		ge, err := lossmodel.FromTargetLoss(TopoFaultLoss, 8, stats.NewRNG(cfg.Seed+97))
		if err != nil {
			return nil, -1, err
		}
		topo.Links[fault].Loss = ge
	}
	tc := trace.Config{Seed: cfg.Seed + 7000, DurationNS: cfg.DurationNS}
	perKey := cfg.RatePPS / float64(len(allKeys))
	for _, k := range allKeys {
		tc.Paths = append(tc.Paths, trace.PathSpec{
			SrcPrefix:    k.Src,
			DstPrefix:    k.Dst,
			RatePPS:      perKey,
			ActiveFlows:  8,
			MeanFlowPkts: 50,
			UDPFraction:  0.2,
		})
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		return nil, -1, err
	}
	dep, err := core.NewTopoDeployment(topo, tc.Table(), topoDeployConfig(shards))
	if err != nil {
		return nil, -1, err
	}
	tr, err := netsim.NewTopoRunner(topo, tc.Table())
	if err != nil {
		return nil, -1, err
	}
	observers := dep.Observers()
	for hop, adv := range wear {
		if obs, ok := observers[hop]; ok && adv != nil {
			observers[hop] = netsim.Wear(hop, adv, obs)
		}
	}
	if _, err := tr.Run(pkts, observers); err != nil {
		return nil, -1, err
	}
	dep.Finalize()
	return &topoWorld{
		topo:    topo,
		dep:     dep,
		store:   dep.NewStore(),
		fgKeys:  allKeys[:f.keys],
		packets: len(pkts),
	}, fault, nil
}

// topoSweep verifies every foreground (key, route) of the world at the
// given worker-pool size and returns the verdict text (for
// fingerprinting), the per-key blames, all link verdicts, and the
// matched-sample and link-check totals.
func (w *topoWorld) topoSweep(workers int, confidence float64) (string, map[packet.PathKey][]core.Blame, []core.LinkVerdict, int64, int, error) {
	vc := w.dep.VerifierConfig()
	vc.Workers = workers
	keyLayouts := w.dep.KeyLayouts()
	perKey := make(map[packet.PathKey][]core.Blame)
	var all []core.LinkVerdict
	var matched int64
	checks := 0
	var text strings.Builder
	for _, key := range w.fgKeys {
		// ECMP routes of one key share their access legs; the shared
		// links would get identical verdicts on every route (same
		// store, same key). Check each (Up, Down) pair once — on the
		// first route that reaches it — so checks, violations, blame
		// counts AND the timed work all tally distinct link
		// verifications, not route multiplicity.
		seen := make(map[[2]receipt.HOPID]bool)
		for ri, layout := range keyLayouts[key] {
			v := core.NewVerifierOn(layout, w.store, key)
			v.SetConfig(vc)
			var kept []core.LinkVerdict
			for li, l := range layout.Links() {
				pair := [2]receipt.HOPID{l.Up, l.Down}
				if seen[pair] {
					continue
				}
				seen[pair] = true
				lv := v.CheckLink(l.Up, l.Down)
				lv.LinkID = li
				kept = append(kept, lv)
			}
			checks += len(kept)
			fmt.Fprintf(&text, "key %v route %d\n", key, ri)
			for _, lv := range kept {
				matched += int64(lv.MatchedSamples)
				fmt.Fprintf(&text, "  %+v\n", lv)
			}
			reps, err := v.DomainReports(quantile.DefaultQuantiles, confidence)
			if err != nil {
				return "", nil, nil, 0, 0, err
			}
			for _, rep := range reps {
				fmt.Fprintf(&text, "  %+v\n", rep)
			}
			all = append(all, kept...)
			perKey[key] = append(perKey[key], core.AttributeBlame(layout, 0, kept)...)
		}
	}
	return text.String(), perKey, all, matched, checks, nil
}

// Topo runs the topology sweep: per family, an honest row, then the
// faulty-shared-link scenario at every (shards × workers) grid point —
// erroring out unless all grid points produce byte-identical verdicts.
func Topo(cfg Config, shardCounts, workerCounts []int) ([]TopoRow, error) {
	cfg = cfg.Normalize()
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 4}
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4}
	}
	var rows []TopoRow
	for _, f := range topoFamilies() {
		honest, err := topoScenarioRows(cfg, f, false, []int{shardCounts[0]}, []int{workerCounts[0]})
		if err != nil {
			return nil, err
		}
		rows = append(rows, honest...)
		faulty, err := topoScenarioRows(cfg, f, true, shardCounts, workerCounts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, faulty...)
	}
	return rows, nil
}

// topoScenarioRows runs one (family, scenario) over the grid.
func topoScenarioRows(cfg Config, f topoFamily, faulty bool, shardCounts, workerCounts []int) ([]TopoRow, error) {
	var rows []TopoRow
	wantFP := ""
	for _, shards := range shardCounts {
		// The simulated world is rebuilt per shard count — sharded and
		// serial collectors must produce identical receipts, which the
		// fingerprint equality below re-proves on every sweep.
		world, fault, err := runTopoWorld(cfg, f, faulty, shards, nil)
		if err != nil {
			return nil, err
		}
		for _, workers := range workerCounts {
			start := time.Now()
			text, perKey, verdicts, matched, checks, err := world.topoSweep(workers, cfg.Confidence)
			if err != nil {
				return nil, err
			}
			wall := time.Since(start)
			sum := sha256.Sum256([]byte(text))
			fp := fmt.Sprintf("%x", sum[:8])
			if wantFP == "" {
				wantFP = fp
			} else if fp != wantFP {
				return nil, fmt.Errorf("experiments: %s/%v verdicts diverge at shards=%d workers=%d (fingerprint %s, want %s)",
					f.name, faulty, shards, workers, fp, wantFP)
			}
			row := TopoRow{
				Family:           f.name,
				Scenario:         "honest",
				Domains:          len(world.topo.Domains),
				Links:            len(world.topo.Links),
				HOPs:             world.topo.NumHOPs(),
				PathKeys:         len(world.fgKeys),
				Background:       f.background,
				Routes:           len(world.topo.Routes),
				FanIn:            world.topo.MaxFanIn(),
				Shards:           shards,
				Workers:          workers,
				Packets:          world.packets,
				LinkChecks:       checks,
				MatchedSamples:   matched,
				WallMS:           float64(wall.Nanoseconds()) / 1e6,
				LinkChecksPerSec: float64(checks) / wall.Seconds(),
				Fingerprint:      fp,
			}
			if faulty {
				row.Scenario = "faulty-shared-link"
				judgeTopoBlame(&row, world, fault, perKey, verdicts)
			} else {
				// Honest world: any violation anywhere is a false
				// positive.
				for _, lv := range verdicts {
					row.HonestLinkViolations += len(lv.Violations)
				}
				row.Localized = row.HonestLinkViolations == 0
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// judgeTopoBlame fills the blame columns of a faulty-shared-link row:
// the merged findings must implicate exactly the faulty link's HOP
// pair, every foreground key crossing the link must contribute, and no
// other link may carry a violation.
func judgeTopoBlame(row *TopoRow, world *topoWorld, fault int, perKey map[packet.PathKey][]core.Blame, verdicts []core.LinkVerdict) {
	topo := world.topo
	eg, in := topo.LinkHOPs(fault)
	row.FaultyLink = topo.Domains[topo.Links[fault].From].Name + "-" + topo.Domains[topo.Links[fault].To].Name
	merged := core.MergeBlames(perKey)
	domSet := make(map[string]bool)
	localized := len(merged) > 0
	for _, sb := range merged {
		for _, h := range sb.HOPs {
			if h != eg && h != in {
				localized = false
			}
		}
		for _, d := range sb.Domains {
			domSet[d] = true
		}
		if sb.Keys > row.BlamedKeys {
			row.BlamedKeys = sb.Keys
		}
	}
	for d := range domSet {
		row.BlamedDomains = append(row.BlamedDomains, d)
	}
	sort.Strings(row.BlamedDomains)
	for _, lv := range verdicts {
		if lv.Up == eg && lv.Down == in {
			continue
		}
		row.HonestLinkViolations += len(lv.Violations)
	}
	row.Localized = localized && row.HonestLinkViolations == 0
}

// TopoRender renders the rows.
func TopoRender(rows []TopoRow, markdown bool) string {
	header := []string{"Family", "Scenario", "Keys", "Routes", "FanIn", "Shards", "Workers", "Checks", "ms", "checks/s", "Blamed", "BlamedKeys", "HonestViol", "Localized"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Family, r.Scenario,
			fmt.Sprintf("%d", r.PathKeys),
			fmt.Sprintf("%d", r.Routes),
			fmt.Sprintf("%d", r.FanIn),
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.LinkChecks),
			fmt.Sprintf("%.1f", r.WallMS),
			fmt.Sprintf("%.0f", r.LinkChecksPerSec),
			strings.Join(r.BlamedDomains, "+"),
			fmt.Sprintf("%d", r.BlamedKeys),
			fmt.Sprintf("%d", r.HonestLinkViolations),
			fmt.Sprintf("%v", r.Localized),
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}

// MeshAttackRows extends the Byzantine attack matrix onto a mesh: a
// star topology whose access link is shared by every key, with
// data-plane adversaries mounted on the shared link's HOPs. The rows
// prove that an adversary on a *shared* link is detected with blame
// confined to that link's HOP pair — across every traffic key — while
// the disjoint honest routes stay violation-free (no smearing).
func MeshAttackRows(cfg Config) ([]MatrixRow, error) {
	cfg = cfg.Normalize()
	keys := netsim.TopoKeys(4)
	scenarios := []struct {
		name     string
		wear     func() map[receipt.HOPID]netsim.Adversary
		expectEv []core.EvidenceClass
		honest   bool
		note     string
	}{
		{
			name:   "mesh-honest",
			honest: true,
			note:   "reference mesh row: shared access link telling the truth",
		},
		{
			name: "mesh-suppress-shared",
			wear: func() map[receipt.HOPID]netsim.Adversary {
				return map[receipt.HOPID]netsim.Adversary{2: &netsim.Suppressor{Fraction: 0.3, Seed: 99}}
			},
			expectEv: []core.EvidenceClass{core.EvMissingReceipt, core.EvInconsistentAggregate},
			note:     "hub under-reports the shared access link: every key exposes it at leaf0-hub",
		},
		{
			name: "mesh-shave-shared",
			wear: func() map[receipt.HOPID]netsim.Adversary {
				return map[receipt.HOPID]netsim.Adversary{1: &netsim.DelayShaver{ShaveNS: 3_000_000}}
			},
			expectEv: []core.EvidenceClass{core.EvDelayBound},
			note:     "leaf0 shaves its egress clocks: MaxDiff blown on the shared link for every key",
		},
	}
	meshFamily := topoFamily{
		name: "star", keys: len(keys),
		build: func(seed uint64, ks []packet.PathKey) *netsim.Topology {
			return netsim.StarTopology(seed, 5, ks)
		},
	}
	var rows []MatrixRow
	for _, sc := range scenarios {
		var wear map[receipt.HOPID]netsim.Adversary
		if sc.wear != nil {
			wear = sc.wear()
		}
		world, _, err := runTopoWorld(cfg, meshFamily, false, 1, wear)
		if err != nil {
			return nil, err
		}
		_, perKeyBlames, verdicts, _, _, err := world.topoSweep(1, cfg.Confidence)
		if err != nil {
			return nil, err
		}

		// Shared access link = link 0 (leaf0 egress HOP 1, hub ingress
		// HOP 2) — the only allowed implicated set.
		eg, in := world.topo.LinkHOPs(0)
		allowed := map[receipt.HOPID]bool{eg: true, in: true}
		allowedEv := make(map[core.EvidenceClass]bool)
		for _, e := range sc.expectEv {
			allowedEv[e] = true
		}
		row := MatrixRow{Adversary: sc.name, Layer: "data-plane", Mode: "batch", Note: sc.note}
		blamed := make(map[receipt.HOPID]bool)
		evSeen := make(map[string]bool)
		localized := true
		detected := false
		for _, lv := range verdicts {
			if !allowed[lv.Up] && !allowed[lv.Down] {
				row.HonestLinkViolations += len(lv.Violations)
			}
		}
		for _, key := range world.fgKeys {
			for _, b := range perKeyBlames[key] {
				detected = true
				evSeen[b.Evidence.String()] = true
				inSet := true
				for _, h := range b.HOPs {
					blamed[h] = true
					if !allowed[h] {
						inSet = false
					}
				}
				if !inSet || (len(allowedEv) > 0 && !allowedEv[b.Evidence]) {
					localized = false
				}
			}
		}
		for ev := range evSeen {
			row.Evidence = appendCSV(row.Evidence, ev)
		}
		row.Evidence = sortCSV(row.Evidence)
		for h := range blamed {
			row.BlamedHOPs = append(row.BlamedHOPs, uint32(h))
		}
		sort.Slice(row.BlamedHOPs, func(i, j int) bool { return row.BlamedHOPs[i] < row.BlamedHOPs[j] })
		switch {
		case sc.honest && !detected:
			row.Verdict = "honest"
			row.Localized = row.HonestLinkViolations == 0
		case sc.honest:
			row.Verdict = "undetected"
			row.Note = "FALSE POSITIVE: " + row.Note
		case detected:
			row.Verdict = "detected"
			row.Localized = localized && row.HonestLinkViolations == 0
		default:
			row.Verdict = "undetected"
		}
		rows = append(rows, row)
	}
	return rows, nil
}
