package experiments

import "testing"

// TestSketchOracle is the streaming-backend property test: across
// seeds, the sketch deployment's verdicts stay clean, its thinned
// quantile intervals overlap the exact path's order-statistic bounds
// (within the union-bound miss budget), its interarrival histograms
// bracket the exact gaps deterministically, its IBLT reconciles the
// exact sampled-set difference, and loss totals are byte-identical.
func TestSketchOracle(t *testing.T) {
	cfg := Config{DurationNS: 400_000_000} // 40k packets per world
	rows, err := SketchOracle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no oracle rows")
	}
	var checks, misses int
	for _, r := range rows {
		if r.LinkViolations != 0 {
			t.Errorf("seed %d: sketch backend raised %d false alarms", r.Seed, r.LinkViolations)
		}
		if r.ExactSamples == 0 || r.ThinnedSamples == 0 {
			t.Fatalf("seed %d: empty delay populations (exact %d, thinned %d)", r.Seed, r.ExactSamples, r.ThinnedSamples)
		}
		if r.ThinnedSamples >= r.ExactSamples {
			t.Errorf("seed %d: thinning kept %d of %d samples — KeepRate not exercised", r.Seed, r.ThinnedSamples, r.ExactSamples)
		}
		if r.HistChecks == 0 {
			t.Errorf("seed %d: no interarrival histogram checks ran", r.Seed)
		}
		if r.HistMisses != 0 {
			t.Errorf("seed %d: %d/%d interarrival quantiles outside FastHist bucket bounds", r.Seed, r.HistMisses, r.HistChecks)
		}
		if !r.IBLTDecoded {
			t.Errorf("seed %d: IBLT difference failed to peel", r.Seed)
		} else if !r.IBLTDiffMatch {
			t.Errorf("seed %d: IBLT decode differs from exact sampled-set difference", r.Seed)
		}
		if r.LossExact != r.LossSketch {
			t.Errorf("seed %d: loss totals differ (exact %d, sketch %d)", r.Seed, r.LossExact, r.LossSketch)
		}
		checks += r.QuantileChecks
		misses += r.QuantileMisses
	}
	if checks == 0 {
		t.Fatal("no quantile interval checks ran")
	}
	// Disjoint intervals happen with probability ≤ 2(1-confidence) =
	// 10% per check; allow double that before declaring bias.
	if budget := (checks + 4) / 5; misses > budget {
		t.Errorf("thinned quantile intervals disjoint from exact bounds %d/%d times (budget %d)", misses, checks, budget)
	}
}
