package experiments

import (
	"fmt"

	"vpm/internal/core"
	"vpm/internal/quantile"
)

// VerifiabilityRow is one line of the §7.2 verifiability analysis: how
// accurately a third party (domain L) can *verify* congested domain
// X's delay performance, given the sampling rate of X's downstream
// neighbor N. Verification uses only the samples N also reported —
// the subset property makes that exactly N's sample set.
type VerifiabilityRow struct {
	XRatePct, NRatePct float64
	LossPct            float64
	// EstimateMS is X's self-estimated accuracy (from X's own
	// receipts); VerifyMS is the accuracy achievable using only the
	// samples N corroborates.
	EstimateMS, VerifyMS float64
	// EstimateN / VerifyN are the sample populations.
	EstimateN, VerifyN int
}

// Verifiability reproduces the §7.2 numbers: X samples 1% and loses
// 25% of its traffic; its delay estimate is ~2 ms accurate. If N also
// samples 1%, L verifies at the same accuracy; if N samples 0.1%, L
// verifies at ~5 ms.
func Verifiability(cfg Config) ([]VerifiabilityRow, error) {
	cfg = cfg.Normalize()
	const reps = 3
	var rows []VerifiabilityRow
	for _, nRate := range []float64{1, 0.1} {
		row := VerifiabilityRow{XRatePct: 1, NRatePct: nRate, LossPct: 25}
		var estSum, verSum float64
		estRuns, verRuns := 0, 0
		for rep := 0; rep < reps; rep++ {
			dc := core.DefaultDeployConfig()
			dc.PerDomain = map[string]core.Tuning{
				"N": {SampleRate: nRate / 100, AggRate: dc.Default.AggRate},
			}
			w, err := buildWorld(cfg, worldOpt{
				congestX: true,
				lossX:    0.25,
				deploy:   &dc,
				seedBump: uint64(nRate*31) + uint64(rep)*88883,
			})
			if err != nil {
				return nil, err
			}
			v := w.dep.NewVerifier(w.key)
			truth, _ := w.truth.DomainByName("X")

			xDelays := v.DelaysBetween(4, 5)
			row.EstimateN += len(xDelays)
			if len(xDelays) > 0 {
				acc, err := quantile.AccuracyNS(xDelays, truth.TrueDelaysNS, Fig2Quantiles)
				if err != nil {
					return nil, err
				}
				estSum += acc
				estRuns++
			}
			// Verification: restrict X's claimed delays to the
			// packets N corroborates (sampled at HOP 6).
			verifiable := v.CorroboratedDelays(4, 5, 6)
			row.VerifyN += len(verifiable)
			if len(verifiable) > 0 {
				acc, err := quantile.AccuracyNS(verifiable, truth.TrueDelaysNS, Fig2Quantiles)
				if err != nil {
					return nil, err
				}
				verSum += acc
				verRuns++
			}
		}
		if estRuns > 0 {
			row.EstimateMS = estSum / float64(estRuns) / 1e6
			row.EstimateN /= reps
		}
		if verRuns > 0 {
			row.VerifyMS = verSum / float64(verRuns) / 1e6
			row.VerifyN /= reps
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// VerifiabilityRender renders the rows.
func VerifiabilityRender(rows []VerifiabilityRow, markdown bool) string {
	header := []string{"X rate", "N rate", "X loss", "X self-estimate", "verifiable accuracy"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			fmt.Sprintf("%g%%", r.XRatePct),
			fmt.Sprintf("%g%%", r.NRatePct),
			fmt.Sprintf("%g%%", r.LossPct),
			fmt.Sprintf("%.3f ms (n=%d)", r.EstimateMS, r.EstimateN),
			fmt.Sprintf("%.3f ms (n=%d)", r.VerifyMS, r.VerifyN),
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
