package experiments

import (
	"fmt"
	"time"

	"vpm/internal/core"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/trace"
)

// Verification-pipeline scenario constants: a 16-HOP path (9 domains:
// stubs S and D plus transits T1..T7) carrying 64 origin-prefix paths,
// sampled densely enough that every link check matches a meaningful
// sample population.
const (
	// VerifyDomains is the number of domains on the verify scenario's
	// path (9 domains = 16 HOPs).
	VerifyDomains = 9
	// VerifyPathKeys is the number of origin-prefix paths multiplexed
	// on the scenario.
	VerifyPathKeys = 64
	// VerifySampleRate is every domain's σ in the scenario — denser
	// than the 1% default so per-path link checks see real sample
	// populations at benchmark durations.
	VerifySampleRate = 0.05
	// VerifyAggRate gives each path a handful of aggregates per run.
	VerifyAggRate = 0.0005
)

// VerifyRow is one line of the verification-pipeline throughput
// experiment. Mode "rebuild" is the pre-store shape: every path key
// re-scans the deployment's receipts into a private verifier. Mode
// "indexed" ingests receipts once into the shared indexed store, then
// runs every per-key verification sweep (VerifyAllLinks +
// DomainReports) over it with the given worker-pool size. The JSON
// tags are the schema cmd/vpm-bench -run verify -json emits for
// BENCH_*.json tracking.
type VerifyRow struct {
	Mode             string  `json:"mode"`
	Workers          int     `json:"workers"`
	HOPs             int     `json:"hops"`
	PathKeys         int     `json:"path_keys"`
	LinkChecks       int     `json:"link_checks"`
	MatchedSamples   int64   `json:"matched_samples"`
	WallMS           float64 `json:"wall_ms"`
	LinkChecksPerSec float64 `json:"link_checks_per_sec"`
	SpeedupVsRebuild float64 `json:"speedup_vs_rebuild"`
}

// VerifyScenario builds and runs the verification workload: the
// 16-HOP path, VerifyPathKeys concurrent origin-prefix paths sharing
// cfg.RatePPS, and a full deployment with dense sampling. It returns
// the finalized deployment and the traffic keys in trace order.
func VerifyScenario(cfg Config) (*core.Deployment, []packet.PathKey, error) {
	cfg = cfg.Normalize()
	tc := VerifyTraceConfig(cfg)
	pkts, err := trace.Generate(tc)
	if err != nil {
		return nil, nil, err
	}
	path := netsim.LinearPath(cfg.Seed+2000, VerifyDomains)
	dc := core.DefaultDeployConfig()
	dc.Default.SampleRate = VerifySampleRate
	dc.Default.AggRate = VerifyAggRate
	dep, err := core.NewDeployment(path, tc.Table(), dc)
	if err != nil {
		return nil, nil, err
	}
	if _, err := path.Run(pkts, dep.Observers()); err != nil {
		return nil, nil, err
	}
	dep.Finalize()
	keys := make([]packet.PathKey, len(tc.Paths))
	for i, p := range tc.Paths {
		keys[i] = packet.PathKey{Src: p.SrcPrefix, Dst: p.DstPrefix}
	}
	return dep, keys, nil
}

// VerifyTraceConfig returns the 64-path trace configuration of the
// verify scenario: cfg.RatePPS split evenly across VerifyPathKeys
// distinct /16 origin-prefix pairs.
func VerifyTraceConfig(cfg Config) trace.Config {
	cfg = cfg.Normalize()
	paths := make([]trace.PathSpec, VerifyPathKeys)
	for i := range paths {
		p := trace.DefaultPath(cfg.RatePPS / VerifyPathKeys)
		p.SrcPrefix = packet.MakePrefix(10, byte(i), 0, 0, 16)
		p.DstPrefix = packet.MakePrefix(192, byte(i), 0, 0, 16)
		paths[i] = p
	}
	return trace.Config{Seed: cfg.Seed + 70, DurationNS: cfg.DurationNS, Paths: paths}
}

// verifySweep runs the full verification of one path key — every link
// verdict plus every domain report — and returns the matched-sample
// total as a cheap cross-mode consistency signal.
func verifySweep(v *core.Verifier, confidence float64) (int64, error) {
	var matched int64
	for _, lv := range v.VerifyAllLinks() {
		matched += int64(lv.MatchedSamples)
	}
	if _, err := v.DomainReports(quantile.DefaultQuantiles, confidence); err != nil {
		return matched, err
	}
	return matched, nil
}

// Verify measures the verification pipeline on the 16-HOP × 64-path
// scenario: the per-key rebuild baseline, then the shared indexed
// store at each worker-pool size in workerCounts (default 1, 2, 4, 8).
func Verify(cfg Config, workerCounts []int) ([]VerifyRow, error) {
	cfg = cfg.Normalize()
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	dep, keys, err := VerifyScenario(cfg)
	if err != nil {
		return nil, err
	}
	linksPerKey := len(dep.Layout().Links())
	mkRow := func(mode string, workers int, matched int64, d time.Duration) VerifyRow {
		checks := linksPerKey * len(keys)
		return VerifyRow{
			Mode:             mode,
			Workers:          workers,
			HOPs:             dep.Path.NumHOPs(),
			PathKeys:         len(keys),
			LinkChecks:       checks,
			MatchedSamples:   matched,
			WallMS:           float64(d.Nanoseconds()) / 1e6,
			LinkChecksPerSec: float64(checks) / d.Seconds(),
		}
	}

	var rows []VerifyRow

	// Baseline: the pre-store shape — each key rebuilds its own
	// verifier, re-scanning every processor's receipts, then verifies
	// serially.
	start := time.Now()
	var matched int64
	for _, key := range keys {
		v := dep.NewVerifier(key)
		vc := dep.VerifierConfig()
		vc.Workers = 1
		v.SetConfig(vc)
		m, err := verifySweep(v, cfg.Confidence)
		if err != nil {
			return nil, err
		}
		matched += m
	}
	rows = append(rows, mkRow("rebuild", 1, matched, time.Since(start)))

	// Indexed: ingest once into the shared store (charged to the row),
	// then sweep every key at the configured pool size.
	for _, workers := range workerCounts {
		start := time.Now()
		store := dep.NewStore()
		var matched int64
		for _, key := range keys {
			v := dep.NewVerifierOn(store, key)
			vc := dep.VerifierConfig()
			vc.Workers = workers
			v.SetConfig(vc)
			m, err := verifySweep(v, cfg.Confidence)
			if err != nil {
				return nil, err
			}
			matched += m
		}
		rows = append(rows, mkRow("indexed", workers, matched, time.Since(start)))
	}

	base := rows[0].WallMS
	for i := range rows {
		if rows[i].WallMS > 0 {
			rows[i].SpeedupVsRebuild = base / rows[i].WallMS
		}
	}
	return rows, nil
}

// VerifyRender renders the rows.
func VerifyRender(rows []VerifyRow, markdown bool) string {
	header := []string{"Mode", "Workers", "LinkChecks", "Matched", "ms", "checks/s", "x-rebuild"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Mode,
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.LinkChecks),
			fmt.Sprintf("%d", r.MatchedSamples),
			fmt.Sprintf("%.1f", r.WallMS),
			fmt.Sprintf("%.0f", r.LinkChecksPerSec),
			fmt.Sprintf("%.2f", r.SpeedupVsRebuild),
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
