package experiments

import (
	"fmt"
	"os"
	"time"

	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/segstore"
)

// The segstore experiment measures the durable backend in isolation:
// how fast sealed epochs stream onto the store (block encode + CRC +
// write + manifest commit per seal) and how fast a cold Open replays
// them back (full-file CRC + block scan per segment) — the write and
// recovery halves of the crash-durability story. Two backends per
// sweep: "mem" is the codec ceiling (MemFS, no I/O), "disk" is the
// real thing on a temp directory, fsyncs included.

// SegstoreRow is one backend's measurement.
type SegstoreRow struct {
	// Backend is "mem" (MemFS ceiling) or "disk" (DirFS with fsync).
	Backend string `json:"backend"`
	// Epochs sealed; Blocks and Bytes are the store's resulting size.
	Epochs int   `json:"epochs"`
	Blocks int   `json:"blocks"`
	Bytes  int64 `json:"bytes"`
	// Write half: wall time to append and seal every epoch.
	WriteWallMS float64 `json:"write_wall_ms"`
	WriteMBps   float64 `json:"write_mb_per_sec"`
	SealsPerSec float64 `json:"seals_per_sec"`
	// Recovery half: wall time for a cold Open over the sealed store.
	RecoverWallMS   float64 `json:"recover_wall_ms"`
	RecoverMBps     float64 `json:"recover_mb_per_sec"`
	RecoveredEpochs int     `json:"recovered_epochs"`
}

// segstorePath builds the path identity the synthetic receipts share.
func segstorePath(hop receipt.HOPID) receipt.PathID {
	return receipt.PathID{
		Key: packet.PathKey{
			Src: packet.MakePrefix(10, byte(hop), 0, 0, 16),
			Dst: packet.MakePrefix(172, 16, byte(hop), 0, 24),
		},
		PrevHOP:   hop,
		NextHOP:   hop + 1,
		MaxDiffNS: 3_000_000,
	}
}

// segstoreReceipts builds one HOP's sealed-epoch receipt set: a
// deterministic, realistically sized payload (receipt wire encoding is
// what lands in the segment blocks).
func segstoreReceipts(epoch uint64, hop receipt.HOPID) ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	path := segstorePath(hop)
	const nRecords = 128
	records := make([]receipt.SampleRecord, nRecords)
	for i := range records {
		records[i] = receipt.SampleRecord{
			PktID:  epoch*1_000_000 + uint64(hop)*10_000 + uint64(i),
			TimeNS: int64(epoch)*1_000_000 + int64(i)*700,
		}
	}
	samples := []receipt.SampleReceipt{{Path: path, Samples: records}}
	aggs := []receipt.AggReceipt{{
		Path:   path,
		Agg:    receipt.AggID{First: epoch * 1_000_000, Last: epoch*1_000_000 + nRecords},
		PktCnt: nRecords,
	}}
	return samples, aggs
}

// segstoreSweep runs the write and recovery halves against one backend.
func segstoreSweep(backend string, dir string, fsys segstore.FS, epochs, hops int) (SegstoreRow, error) {
	row := SegstoreRow{Backend: backend, Epochs: epochs}
	store, _, err := segstore.Open(dir, segstore.Options{FS: fsys})
	if err != nil {
		return row, fmt.Errorf("segstore %s open: %w", backend, err)
	}

	writeStart := time.Now()
	for epoch := uint64(0); epoch < uint64(epochs); epoch++ {
		for h := 0; h < hops; h++ {
			samples, aggs := segstoreReceipts(epoch, receipt.HOPID(h))
			if err := store.Append(epoch, receipt.HOPID(h), samples, aggs); err != nil {
				return row, fmt.Errorf("segstore %s append: %w", backend, err)
			}
		}
		if err := store.Seal(epoch); err != nil {
			return row, fmt.Errorf("segstore %s seal: %w", backend, err)
		}
	}
	writeWall := time.Since(writeStart)
	stats := store.StoreStats()
	row.Blocks = epochs * hops
	row.Bytes = stats.Bytes
	row.WriteWallMS = float64(writeWall.Nanoseconds()) / 1e6
	if s := writeWall.Seconds(); s > 0 {
		row.WriteMBps = float64(stats.Bytes) / (1 << 20) / s
		row.SealsPerSec = float64(epochs) / s
	}
	if err := store.Close(); err != nil {
		return row, err
	}

	recoverStart := time.Now()
	reopened, rstats, err := segstore.Open(dir, segstore.Options{FS: fsys})
	if err != nil {
		return row, fmt.Errorf("segstore %s recovery: %w", backend, err)
	}
	recoverWall := time.Since(recoverStart)
	row.RecoveredEpochs = rstats.SealedEpochs
	row.RecoverWallMS = float64(recoverWall.Nanoseconds()) / 1e6
	if s := recoverWall.Seconds(); s > 0 {
		row.RecoverMBps = float64(stats.Bytes) / (1 << 20) / s
	}
	if row.RecoveredEpochs != epochs {
		return row, fmt.Errorf("segstore %s: recovered %d of %d epochs", backend, row.RecoveredEpochs, epochs)
	}
	return row, reopened.Close()
}

// Segstore measures segment write and recovery-replay throughput over
// the in-memory and on-disk backends.
func Segstore(epochs int) ([]SegstoreRow, error) {
	if epochs <= 0 {
		epochs = 64
	}
	const hops = 4
	memRow, err := segstoreSweep("mem", "", segstore.NewMemFS(), epochs, hops)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "vpm-segstore-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	diskRow, err := segstoreSweep("disk", dir, nil, epochs, hops)
	if err != nil {
		return nil, err
	}
	return []SegstoreRow{memRow, diskRow}, nil
}

// SegstoreRender renders the sweep.
func SegstoreRender(rows []SegstoreRow, markdown bool) string {
	header := []string{"Backend", "Epochs", "Blocks", "MB", "write ms", "write MB/s", "seals/s", "recover ms", "recover MB/s"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Backend,
			fmt.Sprintf("%d", r.Epochs),
			fmt.Sprintf("%d", r.Blocks),
			fmt.Sprintf("%.1f", float64(r.Bytes)/(1<<20)),
			fmt.Sprintf("%.1f", r.WriteWallMS),
			fmt.Sprintf("%.1f", r.WriteMBps),
			fmt.Sprintf("%.0f", r.SealsPerSec),
			fmt.Sprintf("%.1f", r.RecoverWallMS),
			fmt.Sprintf("%.1f", r.RecoverMBps),
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
