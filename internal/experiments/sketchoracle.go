package experiments

import (
	"fmt"
	"sort"

	"vpm/internal/core"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/sketch"
	"vpm/internal/streamagg"
)

// Sketch-oracle constants: the system-wide streaming-backend knobs a
// real deployment would fix once (like µ and J). The keep rate thins
// retained delay samples 4×; the IBLT is sized far above the sampled
// set difference a lossy domain produces at these trace lengths.
const (
	SketchOracleKeepRate = 0.25
	sketchOracleSalt     = 0x5eed_cafe
	sketchOracleCells    = 2048
	sketchOracleSeed     = 7
	sketchOracleLossX    = 0.02
)

// SketchOracleQuantiles are the delay quantiles whose streaming
// estimates are checked against the exact path's confidence bounds.
var SketchOracleQuantiles = []float64{0.5, 0.9, 0.99}

// SketchOracleRow is one seed's worth of oracle comparisons between a
// BackendSketch deployment and a byte-identical-traffic exact
// deployment.
type SketchOracleRow struct {
	Seed uint64
	// ExactSamples and ThinnedSamples are the matched delay-sample
	// populations across domain X under each backend; thinning must
	// shrink the population (KeepRate < 1) without breaking any check
	// below.
	ExactSamples   int
	ThinnedSamples int
	// QuantileChecks/QuantileMisses: for each quantile, the thinned
	// order-statistic confidence interval must overlap the exact one.
	// Both intervals cover the true quantile with the configured
	// confidence, so by the union bound they are disjoint with
	// probability ≤ 2(1-confidence); misses above that budget mean the
	// thinned estimator is biased.
	QuantileChecks int
	QuantileMisses int
	// HistChecks/HistMisses: the per-path FastHist interarrival
	// quantile bucket must contain the exact k-th interarrival gap of
	// the same stream — a deterministic property of the log-bucketed
	// histogram, so any miss is a bug.
	HistChecks int
	HistMisses int
	// LinkViolations counts verifier inconsistencies reported by the
	// sketch-backend deployment. Thinning is system-wide and
	// deterministic, so an honest path must report zero (no false
	// alarms).
	LinkViolations int
	// IBLTDecoded/IBLTDiffMatch: subtracting X's egress IBLT from its
	// ingress IBLT must peel completely and decode exactly the exact
	// backends' sampled-set difference (the delay-sampled packets lost
	// or marker-desynced inside X).
	IBLTDecoded   bool
	IBLTDiffMatch bool
	// Loss totals must be identical under both backends: thinning
	// touches only retained delay samples, never aggregates.
	LossExact  int64
	LossSketch int64
}

// SketchOracle runs the streaming-backend verification oracle: for
// each seed it simulates the same lossy Figure 1 traffic twice — once
// with exact sample retention, once with the sketch backend — and
// cross-checks verdicts, quantile bounds, interarrival histograms,
// IBLT set reconciliation and loss totals. One row per seed.
func SketchOracle(cfg Config) ([]SketchOracleRow, error) {
	cfg = cfg.Normalize()
	const reps = 4
	rows := make([]SketchOracleRow, 0, reps)
	for rep := 0; rep < reps; rep++ {
		bump := uint64(rep) * 99991
		exactOpt := worldOpt{lossX: sketchOracleLossX, seedBump: bump}
		dc := core.DefaultDeployConfig()
		dc.Backend = core.BackendSketch
		dc.Sketch = streamagg.Config{
			KeepRate:    SketchOracleKeepRate,
			Salt:        sketchOracleSalt,
			SketchCells: sketchOracleCells,
			SketchSeed:  sketchOracleSeed,
		}
		we, err := buildWorld(cfg, exactOpt)
		if err != nil {
			return nil, err
		}
		ws, err := buildWorld(cfg, worldOpt{lossX: sketchOracleLossX, seedBump: bump, deploy: &dc})
		if err != nil {
			return nil, err
		}
		row := SketchOracleRow{Seed: cfg.Seed + bump}

		// 1. No false alarms: the honest sketch-backend path verifies
		// clean end to end.
		vs := ws.dep.NewVerifier(ws.key)
		for _, lv := range vs.VerifyAllLinks() {
			row.LinkViolations += len(lv.Violations)
		}

		// 2. Thinned delay quantiles vs exact confidence bounds.
		ve := we.dep.NewVerifier(we.key)
		de := ve.DelaysBetween(4, 5)
		ds := vs.DelaysBetween(4, 5)
		row.ExactSamples, row.ThinnedSamples = len(de), len(ds)
		if len(de) > 0 && len(ds) > 0 {
			ee, err := quantile.Quantiles(de, SketchOracleQuantiles, cfg.Confidence)
			if err != nil {
				return nil, err
			}
			es, err := quantile.Quantiles(ds, SketchOracleQuantiles, cfg.Confidence)
			if err != nil {
				return nil, err
			}
			for i := range ee {
				row.QuantileChecks++
				if es[i].Lo > ee[i].Hi || es[i].Hi < ee[i].Lo {
					row.QuantileMisses++
				}
			}
		}

		// 3–4. Per-path streaming state at X's boundary HOPs against
		// the exact backends' retained records.
		exactIn := hopRecords(we.dep, 4, we.key)
		exactEg := hopRecords(we.dep, 5, we.key)
		skIn := hopSketches(ws.dep, 4, ws.key)
		skEg := hopSketches(ws.dep, 5, ws.key)
		checks, misses := histChecks(skIn, exactIn, SketchOracleQuantiles)
		row.HistChecks += checks
		row.HistMisses += misses
		checks, misses = histChecks(skEg, exactEg, SketchOracleQuantiles)
		row.HistChecks += checks
		row.HistMisses += misses
		row.IBLTDecoded, row.IBLTDiffMatch = ibltOracle(skIn, skEg, exactIn, exactEg)
		returnSketches(ws.dep, 4, skIn)
		returnSketches(ws.dep, 5, skEg)

		// 5. Aggregate-derived loss is backend-independent.
		le, err := ve.LossBetween(4, 5)
		if err != nil {
			return nil, err
		}
		ls, err := vs.LossBetween(4, 5)
		if err != nil {
			return nil, err
		}
		row.LossExact, row.LossSketch = le.Lost, ls.Lost

		rows = append(rows, row)
	}
	return rows, nil
}

// hopRecords collects one HOP's retained sample records for a traffic
// key, in receipt (arrival) order.
func hopRecords(d *core.Deployment, hop receipt.HOPID, key packet.PathKey) []receipt.SampleRecord {
	var out []receipt.SampleRecord
	for _, r := range d.Processors[hop].CombinedSamples() {
		if r.Path.Key == key {
			out = append(out, r.Samples...)
		}
	}
	return out
}

// hopSketches drains one HOP collector's sealed sketches for a key.
func hopSketches(d *core.Deployment, hop receipt.HOPID, key packet.PathKey) []*streamagg.PathSketch {
	var out []*streamagg.PathSketch
	for _, ps := range d.Collectors[hop].DrainSketches() {
		if ps.Path.Key == key {
			out = append(out, ps)
		}
	}
	return out
}

// returnSketches hands sealed sketches back to the HOP's pool.
func returnSketches(d *core.Deployment, hop receipt.HOPID, sks []*streamagg.PathSketch) {
	pool := d.Collectors[hop].SketchPool()
	if pool == nil {
		return
	}
	for _, ps := range sks {
		pool.Put(ps)
	}
}

// histChecks replays the exact record stream's interarrival gaps and
// checks, for each quantile, that the streaming histogram's bucket
// bounds contain the exact k-th gap. The streams are identical by
// construction, so the log-bucketed histogram must never miss.
func histChecks(sks []*streamagg.PathSketch, recs []receipt.SampleRecord, qs []float64) (checks, misses int) {
	if len(sks) != 1 || len(recs) < 2 {
		return 0, 0
	}
	hist := &sks[0].Interarrival
	gaps := make([]float64, 0, len(recs)-1)
	for i := 1; i < len(recs); i++ {
		g := recs[i].TimeNS - recs[i-1].TimeNS
		if g < 0 {
			g = 0 // FastHist clamps negative gaps the same way
		}
		gaps = append(gaps, float64(g))
	}
	sort.Float64s(gaps)
	for _, q := range qs {
		_, lo, hi, err := hist.Quantile(q)
		if err != nil {
			continue
		}
		k := int(float64(len(gaps))*q + 0.9999999)
		if k < 1 {
			k = 1
		}
		if k > len(gaps) {
			k = len(gaps)
		}
		exact := gaps[k-1]
		checks++
		if exact < float64(lo) || exact > float64(hi) {
			misses++
		}
	}
	return checks, misses
}

// ibltOracle subtracts egress from ingress and demands the decoded
// difference equal the exact backends' sampled-set difference.
func ibltOracle(skIn, skEg []*streamagg.PathSketch, exactIn, exactEg []receipt.SampleRecord) (decoded, match bool) {
	if len(skIn) != 1 || len(skEg) != 1 || skIn[0].IBLT() == nil || skEg[0].IBLT() == nil {
		return false, false
	}
	verdict, err := sketch.Compare(skIn[0].IBLT(), skEg[0].IBLT())
	if err != nil || !verdict.Decoded {
		return false, false
	}
	inSet := make(map[uint64]bool, len(exactIn))
	for _, r := range exactIn {
		inSet[r.PktID] = true
	}
	egSet := make(map[uint64]bool, len(exactEg))
	for _, r := range exactEg {
		egSet[r.PktID] = true
	}
	var wantLost, wantInjected []uint64
	for id := range inSet {
		if !egSet[id] {
			wantLost = append(wantLost, id)
		}
	}
	for id := range egSet {
		if !inSet[id] {
			wantInjected = append(wantInjected, id)
		}
	}
	return true, sameIDSet(verdict.Lost, wantLost) && sameIDSet(verdict.Injected, wantInjected)
}

// sameIDSet compares two id lists as sets.
func sameIDSet(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]uint64(nil), a...)
	bs := append([]uint64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// SketchOracleRender renders the oracle rows.
func SketchOracleRender(rows []SketchOracleRow, markdown bool) string {
	header := []string{"Seed", "Exact n", "Thinned n", "CI overlap", "Hist", "Verdicts", "IBLT", "Loss"}
	var body [][]string
	for _, r := range rows {
		iblt := "ok"
		if !r.IBLTDecoded {
			iblt = "undecoded"
		} else if !r.IBLTDiffMatch {
			iblt = "mismatch"
		}
		loss := "equal"
		if r.LossExact != r.LossSketch {
			loss = fmt.Sprintf("%d != %d", r.LossSketch, r.LossExact)
		}
		body = append(body, []string{
			fmt.Sprintf("%d", r.Seed),
			fmt.Sprintf("%d", r.ExactSamples),
			fmt.Sprintf("%d", r.ThinnedSamples),
			fmt.Sprintf("%d/%d", r.QuantileChecks-r.QuantileMisses, r.QuantileChecks),
			fmt.Sprintf("%d/%d", r.HistChecks-r.HistMisses, r.HistChecks),
			fmt.Sprintf("%d violations", r.LinkViolations),
			iblt,
			loss,
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
