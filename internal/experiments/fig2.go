package experiments

import (
	"fmt"

	"vpm/internal/quantile"
)

// Fig2Row is one cell of the paper's Figure 2: the accuracy with which
// domain X's delay performance is estimated from its receipts, for a
// sampling rate and an intra-X loss level.
type Fig2Row struct {
	SampleRatePct float64
	LossPct       float64
	// AccuracyMS is the worst error across the median and 90th
	// percentile between the receipt-based estimate and ground
	// truth, in milliseconds (the paper's "Delay Accuracy [msec]").
	AccuracyMS float64
	// MatchedSamples is the estimate's sample population.
	MatchedSamples int
}

// Fig2SampleRatesPct are the paper's x-axis points.
var Fig2SampleRatesPct = []float64{5, 1, 0.5, 0.1}

// Fig2LossPcts are the paper's curves.
var Fig2LossPcts = []float64{0, 10, 25, 50}

// Fig2Quantiles are the quantiles whose worst-case estimation error
// defines the figure's accuracy metric (the SLA-relevant median and
// 90th percentile; the paper's example SLA statement is about the
// 90th).
var Fig2Quantiles = []float64{0.5, 0.9}

// Fig2 reproduces Figure 2: X is congested by a bursty high-rate UDP
// flow; its delay accuracy is measured as a function of its sampling
// rate for several loss levels. Each cell averages a few independent
// runs (different trace, congestion and loss seeds), as a single
// hash-sampled run is noisy at the lowest rates.
func Fig2(cfg Config) ([]Fig2Row, error) {
	cfg = cfg.Normalize()
	const reps = 3
	var rows []Fig2Row
	for _, loss := range Fig2LossPcts {
		for _, ratePct := range Fig2SampleRatesPct {
			row := Fig2Row{SampleRatePct: ratePct, LossPct: loss}
			var accSum float64
			measured := 0
			for rep := 0; rep < reps; rep++ {
				w, err := buildWorld(cfg, worldOpt{
					congestX:   true,
					lossX:      loss / 100,
					sampleRate: ratePct / 100,
					seedBump:   uint64(loss*1000+ratePct*10) + uint64(rep)*99991,
				})
				if err != nil {
					return nil, err
				}
				v := w.dep.NewVerifier(w.key)
				truth, _ := w.truth.DomainByName("X")
				delays := v.DelaysBetween(4, 5)
				row.MatchedSamples += len(delays)
				if len(delays) == 0 {
					continue
				}
				acc, err := quantile.AccuracyNS(delays, truth.TrueDelaysNS, Fig2Quantiles)
				if err != nil {
					return nil, err
				}
				accSum += acc
				measured++
			}
			if measured == 0 {
				row.AccuracyMS = -1 // unmeasurable
			} else {
				row.AccuracyMS = accSum / float64(measured) / 1e6
				row.MatchedSamples /= reps
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig2Render renders the rows like the paper's figure: one column per
// sampling rate, one row per loss level.
func Fig2Render(rows []Fig2Row, markdown bool) string {
	header := []string{"Loss \\ Sampling"}
	for _, r := range Fig2SampleRatesPct {
		header = append(header, fmt.Sprintf("%g%%", r))
	}
	cell := make(map[[2]float64]Fig2Row, len(rows))
	for _, r := range rows {
		cell[[2]float64{r.LossPct, r.SampleRatePct}] = r
	}
	var body [][]string
	for _, loss := range Fig2LossPcts {
		line := []string{fmt.Sprintf("%g%% loss", loss)}
		for _, rate := range Fig2SampleRatesPct {
			r := cell[[2]float64{loss, rate}]
			line = append(line, fmt.Sprintf("%.3f ms (n=%d)", r.AccuracyMS, r.MatchedSamples))
		}
		body = append(body, line)
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
