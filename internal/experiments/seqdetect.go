package experiments

import (
	"fmt"
	"math"

	"vpm/internal/seqdetect"
	"vpm/internal/stats"
)

// This file sweeps the sequential arm's detection-latency frontier:
// for each attack magnitude — a delay mean shift in σ units, or a
// suppression drop fraction — it measures how many epochs of evidence
// the SPRT needs to cross, against a per-epoch batch test at the same
// false-positive budget that discards its state at every epoch seal.
// The frontier is the quantitative form of the matrix's adaptive rows:
// above the batch test's single-epoch noise floor the two arms agree,
// and below it the batch arm never fires at any horizon while the
// SPRT's latency merely grows as the magnitude shrinks toward
// MinDetectableShiftSigma.
//
// The sweep drives the seqdetect engine directly over synthetic
// evidence streams (seeded, deterministic) rather than full netsim
// worlds: the per-epoch evidence budget n is matched to what one
// matrix link yields per epoch, so the curves compose with the matrix
// rows that BENCH_8 carries alongside them.

// SeqFrontierRow is one magnitude point of the latency frontier.
type SeqFrontierRow struct {
	// Channel is the evidence class swept: "delay" (Gaussian mean
	// shift) or "loss" (Bernoulli drop rate).
	Channel string `json:"channel"`
	// Magnitude is the attack size: the mean shift in σ units for
	// delay, the absolute drop fraction for loss.
	Magnitude float64 `json:"magnitude"`
	// PerEpochN is the evidence items one epoch contributes.
	PerEpochN int `json:"per_epoch_n"`
	// Trials is the number of independent seeded streams.
	Trials int `json:"trials"`
	// SeqDetectFrac / BatchDetectFrac are the fractions of trials each
	// arm detected within the horizon.
	SeqDetectFrac   float64 `json:"seq_detect_frac"`
	BatchDetectFrac float64 `json:"batch_detect_frac"`
	// SeqEpochs / BatchEpochs are the mean epochs-to-verdict over the
	// trials that detected (fractional for the sequential arm, whole
	// epochs for batch; 0 when no trial detected).
	SeqEpochs   float64 `json:"seq_epochs_to_verdict"`
	BatchEpochs float64 `json:"batch_epochs_to_verdict"`
	// MinDetectableSigma is the analytic one-epoch detectability floor
	// for the configured operating point at this n.
	MinDetectableSigma float64 `json:"min_detectable_magnitude_sigma"`
}

// seqFrontierHorizon bounds each trial; a magnitude whose expected
// crossing exceeds it reports a sub-1.0 detect fraction instead of
// running forever.
const seqFrontierHorizon = 40

// zAlpha999 is Φ⁻¹(1 − 1e-3): the one-sided normal quantile matching
// the default α the batch comparator spends afresh every epoch.
const zAlpha999 = 3.0902

// delayMagnitudes spans sub-floor shifts (the batch test cannot see
// them in one epoch) up to the blatant shaves the matrix mounts.
var delayMagnitudes = []float64{0.05, 0.1, 0.2, 0.3, 0.5, 1, 2, 5, 10, 40}

// lossMagnitudes spans drop rates from the honest design point p0 up
// to the matrix's 30% suppressor.
var lossMagnitudes = []float64{0.015, 0.02, 0.03, 0.05, 0.08, 0.12, 0.2, 0.3}

// SeqFrontier sweeps both channels at the matrix's per-epoch evidence
// budget.
func SeqFrontier(cfg Config) ([]SeqFrontierRow, error) {
	cfg = cfg.Normalize()
	intervalNS := cfg.DurationNS / matrixEpochs
	if intervalNS < 1 {
		intervalNS = cfg.DurationNS
	}
	// One matrix link's per-epoch evidence: the sampled packets of one
	// rotation interval.
	n := int(cfg.RatePPS * float64(intervalNS) / 1e9 * matrixSampleRate)
	if n < 8 {
		n = 8
	}
	const trials = 32
	sq := matrixSeqConfig()
	var rows []SeqFrontierRow
	for _, mag := range delayMagnitudes {
		rows = append(rows, sweepDelay(sq, mag, n, trials, cfg.Seed))
	}
	for _, mag := range lossMagnitudes {
		rows = append(rows, sweepLoss(sq, mag, n, trials, cfg.Seed))
	}
	return rows, nil
}

// frontierTally accumulates one magnitude's trial outcomes.
type frontierTally struct {
	seqDet, batchDet int
	seqSum, batchSum float64
}

func (ta *frontierTally) row(channel string, mag float64, n, trials int, sq seqdetect.Config) SeqFrontierRow {
	r := SeqFrontierRow{
		Channel:            channel,
		Magnitude:          mag,
		PerEpochN:          n,
		Trials:             trials,
		SeqDetectFrac:      float64(ta.seqDet) / float64(trials),
		BatchDetectFrac:    float64(ta.batchDet) / float64(trials),
		MinDetectableSigma: seqdetect.MinDetectableShiftSigma(sq.Alpha, sq.Beta, n),
	}
	if ta.seqDet > 0 {
		r.SeqEpochs = ta.seqSum / float64(ta.seqDet)
	}
	if ta.batchDet > 0 {
		r.BatchEpochs = ta.batchSum / float64(ta.batchDet)
	}
	return r
}

// sweepDelay runs one delay-shift magnitude: the sequential engine
// consumes the same per-epoch sample stream a per-epoch batch mean
// test judges and forgets.
func sweepDelay(sq seqdetect.Config, mag float64, n, trials int, seed uint64) SeqFrontierRow {
	var ta frontierTally
	scope := seqdetect.Scope{Key: "frontier"}
	for tr := 0; tr < trials; tr++ {
		rng := stats.NewRNG(seed ^ (0xd31a<<16 + uint64(tr)*0x9e3779b97f4a7c15 + uint64(mag*1e6)))
		eng := seqdetect.NewEngine(sq)
		seqEp, batchEp := -1.0, -1
		for ep := 0; ep < seqFrontierHorizon && (seqEp < 0 || batchEp < 0); ep++ {
			items := make([]seqdetect.Evidence, n)
			var sum float64
			for i := range items {
				v := sq.DelayRefNS + (mag+rng.NormFloat64())*sq.DelaySigmaNS
				items[i] = seqdetect.Evidence{Kind: seqdetect.KindDelta, Value: v}
				sum += v
			}
			eng.Observe(scope, seqdetect.ClassDelay, items)
			for _, v := range eng.EndEpoch(uint64(ep)) {
				if seqEp < 0 {
					seqEp = v.EpochsToVerdict()
				}
			}
			// The batch comparator: a fresh one-epoch mean test at the
			// same α, no memory across seals.
			if batchEp < 0 {
				mean := sum / float64(n)
				if mean > sq.DelayRefNS+zAlpha999*sq.DelaySigmaNS/math.Sqrt(float64(n)) {
					batchEp = ep + 1
				}
			}
		}
		if seqEp >= 0 {
			ta.seqDet++
			ta.seqSum += seqEp
		}
		if batchEp > 0 {
			ta.batchDet++
			ta.batchSum += float64(batchEp)
		}
	}
	return ta.row("delay", mag, n, trials, sq)
}

// sweepLoss runs one drop-rate magnitude: Bernoulli keep/drop trials
// against a per-epoch binomial tail test at the same α (normal
// approximation around the honest design point p0).
func sweepLoss(sq seqdetect.Config, mag float64, n, trials int, seed uint64) SeqFrontierRow {
	var ta frontierTally
	scope := seqdetect.Scope{Key: "frontier"}
	for tr := 0; tr < trials; tr++ {
		rng := stats.NewRNG(seed ^ (0x10ff<<16 + uint64(tr)*0x9e3779b97f4a7c15 + uint64(mag*1e6)))
		eng := seqdetect.NewEngine(sq)
		seqEp, batchEp := -1.0, -1
		batchBound := float64(n)*sq.LossP0 + zAlpha999*math.Sqrt(float64(n)*sq.LossP0*(1-sq.LossP0))
		for ep := 0; ep < seqFrontierHorizon && (seqEp < 0 || batchEp < 0); ep++ {
			items := make([]seqdetect.Evidence, n)
			drops := 0
			for i := range items {
				if rng.Bool(mag) {
					items[i] = seqdetect.Evidence{Kind: seqdetect.KindDrop}
					drops++
				} else {
					items[i] = seqdetect.Evidence{Kind: seqdetect.KindKeep}
				}
			}
			eng.Observe(scope, seqdetect.ClassLoss, items)
			for _, v := range eng.EndEpoch(uint64(ep)) {
				if seqEp < 0 {
					seqEp = v.EpochsToVerdict()
				}
			}
			if batchEp < 0 && float64(drops) > batchBound {
				batchEp = ep + 1
			}
		}
		if seqEp >= 0 {
			ta.seqDet++
			ta.seqSum += seqEp
		}
		if batchEp > 0 {
			ta.batchDet++
			ta.batchSum += float64(batchEp)
		}
	}
	return ta.row("loss", mag, n, trials, sq)
}

// SeqFrontierRender renders the frontier rows.
func SeqFrontierRender(rows []SeqFrontierRow, markdown bool) string {
	header := []string{"Channel", "Magnitude", "n/epoch", "Seq det", "Seq epochs", "Batch det", "Batch epochs", "1-epoch floor (σ)"}
	var body [][]string
	for _, r := range rows {
		ep := func(det float64, v float64) string {
			if det == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", v)
		}
		body = append(body, []string{
			r.Channel,
			fmt.Sprintf("%.3f", r.Magnitude),
			fmt.Sprintf("%d", r.PerEpochN),
			fmt.Sprintf("%.0f%%", r.SeqDetectFrac*100),
			ep(r.SeqDetectFrac, r.SeqEpochs),
			fmt.Sprintf("%.0f%%", r.BatchDetectFrac*100),
			ep(r.BatchDetectFrac, r.BatchEpochs),
			fmt.Sprintf("%.3f", r.MinDetectableSigma),
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
