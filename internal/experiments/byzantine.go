package experiments

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"vpm/internal/core"
	"vpm/internal/delaymodel"
	"vpm/internal/dissem"
	"vpm/internal/hashing"
	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/seqdetect"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

// This file wires the Byzantine HOP framework into a full adversary
// matrix over the Figure 1 path: every attack the threat model (§2.1,
// §3, §5) admits — at the data plane, the control plane, and the
// dissemination layer — driven through the one-shot batch pipeline AND
// the continuous epoch pipeline, with each outcome judged against the
// paper's guarantee: the attack is either *detected with the right
// blame* (narrowest implicated HOP set, right evidence class, right
// epoch), *contained* (a colluding set absorbs the loss it hid), or
// *provably harmless* (the estimates move less than the noise floor).
// Honest links must stay violation-free throughout — detection without
// localization would be useless for §3.1's exposure argument.

// Matrix world constants: domain X drops ~20% and, in most scenarios,
// is congested; the marker rate is raised above the deployment default
// so per-epoch marker populations are large enough for the §5.1 bias
// check even at test scale (tuning σ/µ per deployment is the paper's
// §2.2 knob, not a protocol change).
const (
	matrixLossX      = 0.20
	matrixMarkerRate = 0.004
	matrixSampleRate = 0.02
	// matrixAggRate cuts one aggregate per ~1000 packets, so every
	// epoch holds several commonly-bounded aggregate pairs — per-epoch
	// loss estimates need complete aggregates inside the evidence
	// window (the deployment default of one per ~100k packets yields
	// none at matrix scale).
	matrixAggRate = 0.001
	// matrixEpochs is the number of rotation intervals the continuous
	// arm drives; the total trace duration matches the batch arm.
	matrixEpochs = 4
)

// Matrix-world HOP geography (netsim.Fig1Path): S=1, L=2/3, X=4/5,
// N=6/7, D=8.
const (
	hopLEgress   = receipt.HOPID(3)
	hopXIngress  = receipt.HOPID(4)
	hopXEgress   = receipt.HOPID(5)
	hopNIngress  = receipt.HOPID(6)
	hopNEgress   = receipt.HOPID(7)
	shaveBlatant = 3_000_000 // 3 ms: past MaxDiff on every matched sample
	shaveSubtle  = 1_800_000 // 1.8 ms: inside MaxDiff, but impossible marker stats
	// shaveFloor / shaveDuty are the adaptive shaves: both leave the
	// honest ~1.05 ms link delta inside the 3 ms MaxDiff, so a
	// per-epoch DelayBound check never fires at these magnitudes —
	// only the cross-epoch sequential mean test sees the shift.
	shaveFloor = 1_200_000
	shaveDuty  = 1_350_000
)

// MatrixRow is one adversary × mode outcome of the attack matrix.
type MatrixRow struct {
	Adversary string `json:"adversary"`
	// Layer is where the attack is mounted: data-plane (corrupted
	// observations), control-plane (rewritten sealed receipts), or
	// dissemination (withheld/replayed/equivocated bundles).
	Layer string `json:"layer"`
	Mode  string `json:"mode"` // "batch" or "continuous"
	// Verdict is the judged outcome: "honest" (reference row),
	// "detected" (flagged with blame), "contained" (collusion absorbed
	// the hidden loss inside the colluding set), "harmless" (estimates
	// moved less than the noise floor), or "undetected" (the framework
	// failed — tests forbid it).
	Verdict string `json:"verdict"`
	// Localized reports that every blame finding stayed inside the
	// expected implicated set.
	Localized bool `json:"localized"`
	// Evidence lists the distinct evidence classes observed.
	Evidence string `json:"evidence"`
	// BlamedHOPs is the union of implicated HOPs across findings.
	BlamedHOPs []uint32 `json:"blamed_hops,omitempty"`
	// FlaggedEpochs lists the epochs carrying findings (continuous
	// mode; batch is epoch 0).
	FlaggedEpochs []uint64 `json:"flagged_epochs,omitempty"`
	// HonestLinkViolations counts violations on links outside the
	// expected implicated set — must be zero.
	HonestLinkViolations int `json:"honest_link_violations"`
	// TrueLossPct / EstLossPct and TrueP90MS / EstP90MS compare domain
	// X's ground truth with what a verifier computes from the
	// (possibly lying) receipts.
	TrueLossPct float64 `json:"true_loss_pct"`
	EstLossPct  float64 `json:"est_loss_pct"`
	TrueP90MS   float64 `json:"true_p90_ms"`
	EstP90MS    float64 `json:"est_p90_ms"`
	// Detection-latency columns. BatchEpochsToVerdict is how many
	// whole epochs of evidence the per-epoch batch checks needed
	// before the first blame (min flagged epoch + 1; 0 = batch never
	// flagged). SeqEpochsToVerdict is the sequential arm's crossing
	// point in fractional epochs (crossing epoch + mid-epoch
	// fraction); a value below 1.0 means the SPRT crossed before the
	// first batch judgment was even possible. Continuous mode only —
	// the batch pipeline has a single epoch and no sequential arm.
	BatchEpochsToVerdict float64 `json:"batch_epochs_to_verdict"`
	SeqDetected          bool    `json:"seq_detected"`
	SeqEpochsToVerdict   float64 `json:"seq_epochs_to_verdict"`
	// MinDetectableSigma is the smallest mean shift (in σ units) the
	// configured SPRT can expect to detect within one epoch's worth of
	// per-link evidence — the row's noise-floor context for the
	// latency columns (seqdetect.MinDetectableShiftSigma).
	MinDetectableSigma float64 `json:"min_detectable_magnitude_sigma"`
	Note               string  `json:"note"`
}

// expectation is a scenario's contract with the §3/§5 analysis.
type expectation struct {
	// verdict the scenario must reach ("detected", "contained",
	// "harmless", "honest").
	verdict string
	// hops is the allowed implicated set: every blame finding must
	// stay inside it.
	hops []receipt.HOPID
	// evidence is the allowed evidence-class set.
	evidence []core.EvidenceClass
}

// matrixScenario describes one adversary: how to mount it on a fresh
// world (per mode) and what outcome the paper promises. Builders run
// per mode so stateful adversaries are never shared between runs.
type matrixScenario struct {
	name  string
	layer string
	// modes the scenario runs in (nil = both).
	modes []string
	// congestX attaches the bursty bottleneck inside X.
	congestX bool
	// preferential installs a forwarding-time treatment predicate in X
	// (data-plane, mounted inside the simulated network).
	preferential func(mu uint64) func(*packet.Packet, uint64) bool
	// wear returns data-plane adversaries to dress HOPs in.
	wear func(mu uint64) map[receipt.HOPID]netsim.Adversary
	// domainAdvs returns control-plane adversaries, in tap order.
	domainAdvs func(p *netsim.Path) []core.EpochAdversary
	// tamper returns dissemination tampers per origin HOP for the
	// given mode (batch publishes everything as epoch 0). The signer
	// argument resolves an origin's key (equivocation re-signs).
	tamper func(mode string, signer func(receipt.HOPID) *dissem.Signer) map[receipt.HOPID]dissem.BundleTamper
	expect expectation
	note   string
}

// matrixScenarios builds the adversary roster. cfg sizes the adaptive
// adversaries' schedules: their decay half-lives and duty periods are
// fractions of the continuous arm's rotation interval, so the same
// scenario stays "adaptive" (loud opening, sub-threshold floor) at any
// trace duration.
func matrixScenarios(cfg Config) []matrixScenario {
	cfg = cfg.Normalize()
	intervalNS := cfg.DurationNS / matrixEpochs
	if intervalNS < 1 {
		intervalNS = cfg.DurationNS
	}
	allLinkEvidence := []core.EvidenceClass{core.EvMissingReceipt, core.EvInconsistentAggregate, core.EvDelayBound}
	xnHOPs := []receipt.HOPID{hopXEgress, hopNIngress}
	lxHOPs := []receipt.HOPID{hopLEgress, hopXIngress}
	xHOPs := []receipt.HOPID{hopXIngress, hopXEgress}
	return []matrixScenario{
		{
			name: "honest", layer: "none", congestX: true,
			expect: expectation{verdict: "honest"},
			note:   "reference row: lossy, congested X telling the truth",
		},
		{
			name: "bias-blind", layer: "data-plane", congestX: true,
			preferential: func(mu uint64) func(*packet.Packet, uint64) bool {
				// The adversary guesses which packets are σ-sampled
				// without the key: any digest predicate uncorrelated
				// with SampleFcn. It treats ~10% of traffic
				// preferentially and gains nothing (§5.1).
				return func(_ *packet.Packet, digest uint64) bool { return digest&0xff < 26 }
			},
			// A marginal bias detection on X is acceptable (the judge's
			// harmless branch allows detected-with-localization); the
			// allowed set makes such a detection localize instead of
			// reading as misattribution.
			expect: expectation{verdict: "harmless", hops: xHOPs, evidence: []core.EvidenceClass{core.EvMarkerBias}},
			note:   "σ-keyed samples unpredictable: preferential treatment moves no estimate",
		},
		{
			name: "prefer-markers", layer: "data-plane", congestX: true,
			preferential: func(mu uint64) func(*packet.Packet, uint64) bool {
				// The only forwarding-time-predictable samples are the
				// markers (µ is public); exempting them from loss and
				// congestion flatters the visible tail (§5.1).
				return func(_ *packet.Packet, digest uint64) bool { return hashing.Exceeds(digest, mu) }
			},
			expect: expectation{verdict: "detected", hops: xHOPs, evidence: []core.EvidenceClass{core.EvMarkerBias}},
			note:   "loss stays exact; marker-vs-σ delay split flags the preference",
		},
		{
			name: "delay-underreport", layer: "data-plane", congestX: true,
			wear: func(uint64) map[receipt.HOPID]netsim.Adversary {
				return map[receipt.HOPID]netsim.Adversary{hopXEgress: &netsim.DelayShaver{ShaveNS: shaveBlatant}}
			},
			expect: expectation{verdict: "detected", hops: xnHOPs, evidence: []core.EvidenceClass{core.EvDelayBound}},
			note:   "shaved egress clocks blow the X-N MaxDiff bound",
		},
		{
			name: "suppress-ingress", layer: "data-plane", congestX: true,
			wear: func(uint64) map[receipt.HOPID]netsim.Adversary {
				return map[receipt.HOPID]netsim.Adversary{hopXIngress: &netsim.Suppressor{Fraction: 0.3, Seed: 99}}
			},
			expect: expectation{verdict: "detected", hops: lxHOPs, evidence: allLinkEvidence},
			note:   "packets L delivered go unreported by X: exposed on the L-X link",
		},
		{
			name: "marker-shave", layer: "data-plane",
			wear: func(mu uint64) map[receipt.HOPID]netsim.Adversary {
				return map[receipt.HOPID]netsim.Adversary{hopXEgress: &netsim.MarkerShaver{Mu: mu, ShaveNS: shaveSubtle}}
			},
			expect: expectation{verdict: "detected", hops: xHOPs, evidence: []core.EvidenceClass{core.EvMarkerBias}},
			note:   "markers shaved inside MaxDiff: only the bias split catches it",
		},
		{
			name: "adaptive-shave", layer: "data-plane", congestX: true,
			modes: []string{"continuous"},
			wear: func(uint64) map[receipt.HOPID]netsim.Adversary {
				return map[receipt.HOPID]netsim.Adversary{hopXEgress: &netsim.AdaptiveShaver{
					InitialShaveNS: shaveBlatant,
					FloorNS:        shaveFloor,
					HalfLifeNS:     intervalNS / 2,
				}}
			},
			expect: expectation{verdict: "detected", hops: xnHOPs, evidence: []core.EvidenceClass{core.EvDelayBound}},
			note:   "loud opening decays under MaxDiff within an epoch; the SPRT latches mid-epoch and holds through the quiet floor",
		},
		{
			name: "adaptive-shave-duty", layer: "data-plane", congestX: true,
			modes: []string{"continuous"},
			wear: func(uint64) map[receipt.HOPID]netsim.Adversary {
				return map[receipt.HOPID]netsim.Adversary{hopXEgress: &netsim.AdaptiveShaver{
					InitialShaveNS: shaveDuty,
					FloorNS:        shaveDuty,
					PeriodNS:       intervalNS / 2,
					Duty:           0.5,
				}}
			},
			expect: expectation{verdict: "detected", hops: xnHOPs, evidence: []core.EvidenceClass{core.EvDelayBound}},
			note:   "sub-MaxDiff duty-cycled shave: every batch epoch stays quiet; only the sequential arm accumulates across on-phases",
		},
		{
			name: "adaptive-suppress", layer: "data-plane", congestX: true,
			modes: []string{"continuous"},
			wear: func(uint64) map[receipt.HOPID]netsim.Adversary {
				return map[receipt.HOPID]netsim.Adversary{hopXIngress: &netsim.AdaptiveSuppressor{
					InitialFraction: 0.12,
					FloorFraction:   0.08,
					HalfLifeNS:      intervalNS,
					Seed:            99,
				}}
			},
			expect: expectation{verdict: "detected", hops: lxHOPs, evidence: allLinkEvidence},
			note:   "drops sit under the per-epoch missing-record tolerance; exact aggregate counts and the cross-epoch Bernoulli SPRT still expose them",
		},
		{
			name: "drop-records", layer: "control-plane", congestX: true,
			domainAdvs: func(*netsim.Path) []core.EpochAdversary {
				return []core.EpochAdversary{&core.RecordDropper{HOP: hopXEgress, Fraction: 0.5, Seed: 7}}
			},
			expect: expectation{verdict: "detected", hops: xnHOPs, evidence: []core.EvidenceClass{core.EvMissingReceipt}},
			note:   "deleted sample records reappear as missing-receipt evidence at X-N",
		},
		{
			name: "fabricate", layer: "control-plane", congestX: true,
			domainAdvs: func(p *netsim.Path) []core.EpochAdversary {
				return []core.EpochAdversary{fabricatorForX(p)}
			},
			expect: expectation{verdict: "detected", hops: xnHOPs, evidence: allLinkEvidence},
			note:   "forged deliveries have no downstream record: exposed at X-N",
		},
		{
			name: "collude", layer: "control-plane", congestX: true,
			domainAdvs: func(p *netsim.Path) []core.EpochAdversary {
				return []core.EpochAdversary{fabricatorForX(p), colluderForN(p)}
			},
			expect: expectation{verdict: "contained",
				hops: []receipt.HOPID{hopXIngress, hopXEgress, hopNIngress, hopNEgress}},
			note: "N covers X's forgery: the hidden loss resurfaces inside N (§3.1)",
		},
		{
			name: "withhold", layer: "dissemination", congestX: true,
			tamper: func(mode string, _ func(receipt.HOPID) *dissem.Signer) map[receipt.HOPID]dissem.BundleTamper {
				from := uint64(matrixEpochs / 2)
				if mode == "batch" {
					from = 0 // batch publishes everything as epoch 0
				}
				return map[receipt.HOPID]dissem.BundleTamper{hopXEgress: &dissem.Withholder{FromEpoch: from}}
			},
			expect: expectation{verdict: "detected", hops: []receipt.HOPID{hopXEgress},
				evidence: []core.EvidenceClass{core.EvWithheldBundle}},
			note: "starved epochs never seal; the missing seal names the withholder",
		},
		{
			name: "stale-replay", layer: "dissemination", congestX: true,
			modes: []string{"continuous"},
			tamper: func(string, func(receipt.HOPID) *dissem.Signer) map[receipt.HOPID]dissem.BundleTamper {
				return map[receipt.HOPID]dissem.BundleTamper{hopXEgress: &dissem.Replayer{FromEpoch: matrixEpochs / 2}}
			},
			expect: expectation{verdict: "detected", hops: []receipt.HOPID{hopXEgress},
				evidence: []core.EvidenceClass{core.EvEpochReplay, core.EvWithheldBundle}},
			note: "re-served sealed epochs are refused as stale; fresh epochs starve",
		},
		{
			name: "equivocate", layer: "dissemination", congestX: true,
			modes: []string{"batch"},
			tamper: func(_ string, signer func(receipt.HOPID) *dissem.Signer) map[receipt.HOPID]dissem.BundleTamper {
				return map[receipt.HOPID]dissem.BundleTamper{hopXEgress: &dissem.Equivocator{
					Signer: signer(hopXEgress),
					Victim: "B",
					Mutate: func(b *dissem.Bundle) {
						for i := range b.Samples {
							for j := range b.Samples[i].Samples {
								b.Samples[i].Samples[j].TimeNS -= shaveBlatant
							}
						}
					},
				}}
			},
			expect: expectation{verdict: "detected", hops: []receipt.HOPID{hopXEgress},
				evidence: []core.EvidenceClass{core.EvEquivocation}},
			note: "two valid signatures over mismatched payloads: non-repudiable proof",
		},
	}
}

// fabricatorForX builds the §3.1 blame-shift adversary for domain X on
// the given path.
func fabricatorForX(p *netsim.Path) *core.Fabricator {
	xi := p.DomainIndex("X")
	return &core.Fabricator{
		Ingress: hopXIngress,
		Egress:  hopXEgress,
		RewritePath: func(in receipt.PathID) receipt.PathID {
			return p.PathIDFor(receipt.PathID{Key: in.Key}, xi, false)
		},
		ClaimedDelayNS: 500_000,
	}
}

// colluderForN builds the cover-up adversary for domain N.
func colluderForN(p *netsim.Path) *core.Colluder {
	ni := p.DomainIndex("N")
	return &core.Colluder{
		LiarEgress: hopXEgress,
		OwnIngress: hopNIngress,
		RewritePath: func(liar receipt.PathID) receipt.PathID {
			return p.PathIDFor(receipt.PathID{Key: liar.Key}, ni, true)
		},
		LinkDelayNS: netsim.DefaultLinkDelayNS,
	}
}

// matrixDeploy is the deployment the matrix worlds share.
func matrixDeploy() core.DeployConfig {
	dc := core.DefaultDeployConfig()
	dc.MarkerRate = matrixMarkerRate
	dc.Default.SampleRate = matrixSampleRate
	dc.Default.AggRate = matrixAggRate
	return dc
}

// runsIn reports whether the scenario participates in mode.
func (sc *matrixScenario) runsIn(mode string) bool {
	if len(sc.modes) == 0 {
		return true
	}
	for _, m := range sc.modes {
		if m == mode {
			return true
		}
	}
	return false
}

// AttackMatrix runs every scenario in both pipelines and judges the
// outcomes. cfg.DurationNS is the total trace length; the continuous
// arm splits it into matrixEpochs rotation intervals. The honest
// scenario runs first in each mode and serves as the noise-floor
// baseline for the "harmless" judgments: an estimator's own honest
// deviation from ground truth bounds what an attack may add.
func AttackMatrix(cfg Config) ([]MatrixRow, error) {
	cfg = cfg.Normalize()
	var rows []MatrixRow
	baselines := map[string]*matrixOutcome{}
	for _, sc := range matrixScenarios(cfg) {
		sc := sc
		for _, mode := range []string{"batch", "continuous"} {
			if !sc.runsIn(mode) {
				continue
			}
			var out *matrixOutcome
			var err error
			if mode == "batch" {
				out, err = runBatchScenario(cfg, &sc)
			} else {
				out, err = runContinuousScenario(cfg, &sc)
			}
			if err != nil {
				return nil, fmt.Errorf("experiments: matrix %s/%s: %w", sc.name, mode, err)
			}
			if sc.name == "honest" {
				baselines[mode] = out
			}
			rows = append(rows, judge(&sc, mode, out, baselines[mode]))
		}
	}
	// Mesh rows: the same guarantee on a shared-link topology — an
	// adversary on a link carrying many traffic keys is exposed by all
	// of them, without smearing blame onto the disjoint honest routes.
	meshRows, err := MeshAttackRows(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, meshRows...)
	return rows, nil
}

// matrixOutcome is what a mode runner hands the judge.
type matrixOutcome struct {
	blames       []core.Blame
	linkVerdicts map[uint64][]core.LinkVerdict // per epoch
	truth        *netsim.DomainTruth           // domain X ground truth
	estLoss      float64
	estP90MS     float64
	domainLoss   map[string]float64 // per-domain estimated loss rate
	// batchEpochs is the batch arm's epochs-to-verdict (min flagged
	// epoch + 1; 0 = never flagged), computed before any sequential
	// blames are folded in. seq holds the sequential arm's early
	// verdicts (continuous mode only). perEpochN is the mean matched
	// samples one link contributes per epoch — the n that sizes the
	// minimum detectable shift.
	batchEpochs float64
	seq         []seqdetect.SeqVerdict
	perEpochN   float64
}

// matrixSeqConfig is the sequential operating point the continuous
// matrix arm runs: the seqdetect defaults, whose evidence-class
// parameters match the Fig1 healthy-path constants the matrix world
// inherits (1 ms link delay, 0.1 ms jitter).
func matrixSeqConfig() seqdetect.Config { return seqdetect.DefaultConfig() }

// seqBlameEvidence maps a sequential evidence class onto the blame
// evidence class its batch counterpart files, so the judge's
// localization contract applies unchanged to early verdicts.
func seqBlameEvidence(c seqdetect.Class) core.EvidenceClass {
	switch c {
	case seqdetect.ClassDelay:
		return core.EvDelayBound
	case seqdetect.ClassBias:
		return core.EvMarkerBias
	default: // loss and fabrication both surface as missing receipts
		return core.EvMissingReceipt
	}
}

// seqBlame converts an early sequential verdict into a blame finding
// on the implicated HOP pair.
func seqBlame(v seqdetect.SeqVerdict) core.Blame {
	return core.Blame{
		Epoch:    core.EpochID(v.Epoch),
		Evidence: seqBlameEvidence(v.Class),
		LinkID:   -1,
		HOPs:     []receipt.HOPID{receipt.HOPID(v.Up), receipt.HOPID(v.Down)},
		Count:    int(v.N),
		Detail: fmt.Sprintf("sequential %s crossing at %.2f epochs (stat %.1f after %d items)",
			v.Class, v.EpochsToVerdict(), v.Stat, v.N),
	}
}

// recordMatched folds the per-link matched-sample counts into the
// outcome's per-epoch-per-link mean — the evidence budget n one
// sequential detector sees per epoch.
func (out *matrixOutcome) recordMatched() {
	var matched, cells int
	for _, vs := range out.linkVerdicts {
		for _, lv := range vs {
			matched += lv.MatchedSamples
			cells++
		}
	}
	if cells > 0 {
		out.perEpochN = float64(matched) / float64(cells)
	}
}

// mutateMatrixPath perturbs the Fig1 path into the scenario's world.
func mutateMatrixPath(cfg Config, sc *matrixScenario, mu uint64) func(*netsim.Path) {
	return func(p *netsim.Path) {
		xi := p.DomainIndex("X")
		ge, err := lossmodel.FromTargetLoss(matrixLossX, 8, stats.NewRNG(cfg.Seed+29))
		if err != nil {
			panic(err) // static parameters; cannot fail
		}
		p.Domains[xi].Loss = ge
		if sc.congestX {
			q, err := delaymodel.New(delaymodel.BurstyUDPScenario(cfg.Seed + 31))
			if err != nil {
				panic(err)
			}
			p.Domains[xi].Delay = q
		}
		if sc.preferential != nil {
			p.Domains[xi].Preferential = sc.preferential(mu)
		}
	}
}

// judge turns an outcome into a MatrixRow against the scenario's
// expectation. base is the honest run of the same mode (nil only when
// judging the honest run itself), whose deviation from ground truth
// calibrates the noise floor.
func judge(sc *matrixScenario, mode string, out *matrixOutcome, base *matrixOutcome) MatrixRow {
	row := MatrixRow{
		Adversary: sc.name,
		Layer:     sc.layer,
		Mode:      mode,
		Note:      sc.note,
	}
	if out.truth != nil {
		row.TrueLossPct = out.truth.LossRate() * 100
		row.TrueP90MS = p90ms(out.truth.TrueDelaysNS)
	}
	row.EstLossPct = out.estLoss * 100
	row.EstP90MS = out.estP90MS
	row.BatchEpochsToVerdict = out.batchEpochs
	row.SeqDetected = len(out.seq) > 0
	if row.SeqDetected {
		min := math.Inf(1)
		for _, v := range out.seq {
			if e := v.EpochsToVerdict(); e < min {
				min = e
			}
		}
		row.SeqEpochsToVerdict = min
	}
	if n := int(out.perEpochN); n > 0 {
		sq := matrixSeqConfig()
		row.MinDetectableSigma = seqdetect.MinDetectableShiftSigma(sq.Alpha, sq.Beta, n)
	}

	allowed := make(map[receipt.HOPID]bool)
	for _, h := range sc.expect.hops {
		allowed[h] = true
	}
	allowedEv := make(map[core.EvidenceClass]bool)
	for _, e := range sc.expect.evidence {
		allowedEv[e] = true
	}

	evSeen := make(map[string]bool)
	hopSeen := make(map[receipt.HOPID]bool)
	epochSeen := make(map[uint64]bool)
	localized := true
	for _, b := range out.blames {
		evSeen[b.Evidence.String()] = true
		epochSeen[uint64(b.Epoch)] = true
		inSet := true
		for _, h := range b.HOPs {
			hopSeen[h] = true
			if !allowed[h] {
				inSet = false
			}
		}
		if !inSet || (len(allowedEv) > 0 && !allowedEv[b.Evidence]) {
			localized = false
		}
	}
	// Violations on links whose endpoints lie outside the expected set
	// are misattributions — the §3.1 guarantee says honest links stay
	// clean.
	for _, verdicts := range out.linkVerdicts {
		for _, lv := range verdicts {
			if !allowed[lv.Up] && !allowed[lv.Down] {
				row.HonestLinkViolations += len(lv.Violations)
			}
		}
	}

	for ev := range evSeen {
		row.Evidence = appendCSV(row.Evidence, ev)
	}
	row.Evidence = sortCSV(row.Evidence)
	for h := range hopSeen {
		row.BlamedHOPs = append(row.BlamedHOPs, uint32(h))
	}
	sort.Slice(row.BlamedHOPs, func(i, j int) bool { return row.BlamedHOPs[i] < row.BlamedHOPs[j] })
	for e := range epochSeen {
		row.FlaggedEpochs = append(row.FlaggedEpochs, e)
	}
	sort.Slice(row.FlaggedEpochs, func(i, j int) bool { return row.FlaggedEpochs[i] < row.FlaggedEpochs[j] })

	detected := len(out.blames) > 0
	switch sc.expect.verdict {
	case "honest":
		row.Verdict = "honest"
		if detected {
			row.Verdict = "undetected" // false positives on the honest row
			row.Note = "FALSE POSITIVE: " + row.Note
		}
		row.Localized = !detected
	case "harmless":
		row.Localized = true
		if detected {
			// A harmless attack that still trips a detector is fine —
			// but only with correct localization.
			row.Verdict = "detected"
			row.Localized = localized && row.HonestLinkViolations == 0
		} else if out.harmlessShift(base) {
			row.Verdict = "harmless"
		} else {
			row.Verdict = "undetected"
		}
	case "contained":
		// Collusion: no blame expected; the hidden loss must resurface
		// inside the colluding set (N's estimate absorbs what X hid).
		absorbed := out.domainLoss["X"]+out.domainLoss["N"] >= out.truth.LossRate()-containLossTolerance
		if detected && !localized {
			row.Verdict = "undetected"
		} else if absorbed {
			row.Verdict = "contained"
			row.Localized = row.HonestLinkViolations == 0
		} else {
			row.Verdict = "undetected"
		}
	default: // "detected"
		if detected {
			row.Verdict = "detected"
			row.Localized = localized && row.HonestLinkViolations == 0
		} else {
			row.Verdict = "undetected"
		}
	}
	return row
}

// Noise floors for the "harmless" judgment (§5.3 scale): loss is
// counted exactly by aggregates, so anything past one percentage point
// is a real shift; delay estimates carry quantile-CI and estimator
// noise, bounded at 20% relative or 1.5× whatever deviation the same
// estimator showed on the honest run, whichever is larger.
const (
	noiseLossPct         = 1.0
	noiseP90Rel          = 0.20
	containLossTolerance = 0.03
)

// harmlessShift reports whether the estimates stayed faithful to the
// ground truth within the noise floor — the §5.1 "the attack gained
// nothing" criterion. base calibrates the floor with the honest run's
// own estimator deviation.
func (out *matrixOutcome) harmlessShift(base *matrixOutcome) bool {
	if out.truth == nil {
		return false
	}
	lossDev := func(o *matrixOutcome) float64 {
		d := (o.estLoss - o.truth.LossRate()) * 100
		if d < 0 {
			d = -d
		}
		return d
	}
	p90Dev := func(o *matrixOutcome) float64 {
		t := p90ms(o.truth.TrueDelaysNS)
		if t <= 0 {
			return 0
		}
		d := o.estP90MS - t
		if d < 0 {
			d = -d
		}
		return d
	}
	lossFloor, p90Floor := noiseLossPct, noiseP90Rel*p90ms(out.truth.TrueDelaysNS)
	if base != nil && base.truth != nil {
		if f := 1.5 * lossDev(base); f > lossFloor {
			lossFloor = f
		}
		if f := 1.5 * p90Dev(base); f > p90Floor {
			p90Floor = f
		}
	}
	return lossDev(out) <= lossFloor && p90Dev(out) <= p90Floor
}

func appendCSV(csv, v string) string {
	if csv == "" {
		return v
	}
	return csv + "," + v
}

func sortCSV(csv string) string {
	if csv == "" {
		return ""
	}
	parts := strings.Split(csv, ",")
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// runBatchScenario mounts the scenario on the one-shot pipeline:
// simulate with worn observers, seal the batch as epoch 0, run the
// control-plane adversaries, publish signed bundles through tampered
// servers, collect as verifier "A", and judge.
func runBatchScenario(cfg Config, sc *matrixScenario) (*matrixOutcome, error) {
	dc := matrixDeploy()
	mu := hashing.ThresholdForRate(dc.MarkerRate)
	tc := trace.Config{
		Seed:       cfg.Seed + 17,
		DurationNS: cfg.DurationNS,
		Paths:      []trace.PathSpec{trace.DefaultPath(cfg.RatePPS)},
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		return nil, err
	}
	path := netsim.Fig1Path(cfg.Seed + 23)
	mutateMatrixPath(cfg, sc, mu)(path)
	dep, err := core.NewDeployment(path, tc.Table(), dc)
	if err != nil {
		return nil, err
	}
	observers := dep.Observers()
	if sc.wear != nil {
		for hop, adv := range sc.wear(mu) {
			if obs, ok := observers[hop]; ok {
				observers[hop] = netsim.Wear(hop, adv, obs)
			}
		}
	}
	truthRes, err := path.Run(pkts, observers)
	if err != nil {
		return nil, err
	}
	dep.Finalize()

	// Control plane: seal the batch as epoch 0 and let the lying
	// domains rewrite their intervals.
	sealed := core.BatchSeal(dep)
	if sc.domainAdvs != nil {
		core.CorruptSealed(sealed, sc.domainAdvs(path)...)
	}

	// Dissemination: one signed bundle per HOP through (possibly
	// tampered) servers on a bus; verifier "A" collects with a cursor.
	hops := make([]int, 0, len(sealed))
	for h := range sealed {
		hops = append(hops, int(h))
	}
	sort.Ints(hops)
	hopIDs := make([]receipt.HOPID, len(hops))
	for i, hi := range hops {
		hopIDs[i] = receipt.HOPID(hi)
	}
	dw := newDissemWorld(cfg.Seed, hopIDs)
	bus, reg, servers := dw.bus, dw.reg, dw.servers
	if sc.tamper != nil {
		for hop, t := range sc.tamper("batch", func(h receipt.HOPID) *dissem.Signer { return dw.signers[h] }) {
			servers[hop].SetTamper(t)
		}
	}
	for _, hi := range hops {
		id := receipt.HOPID(hi)
		se := sealed[id]
		servers[id].Publish(se.Samples, se.Aggs)
	}

	layout := dep.Layout()
	out := &matrixOutcome{linkVerdicts: make(map[uint64][]core.LinkVerdict), domainLoss: make(map[string]float64)}
	store := core.NewReceiptStore()
	received := make(map[receipt.HOPID]int, len(hops))
	for _, hi := range hops {
		id := receipt.HOPID(hi)
		cursor := uint64(0)
		for {
			next, err := bus.CollectSinceAs("A", reg, id, cursor, func(b *dissem.Bundle) error {
				for _, s := range b.Samples {
					store.AddSamples(b.Origin, s)
				}
				store.AddAggs(b.Origin, b.Aggs)
				received[id]++
				return nil
			})
			cursor = next
			if err == nil {
				break
			}
			var be *dissem.BundleError
			if errors.As(err, &be) {
				out.blames = append(out.blames, core.BlameHOP(layout, 0, core.EvSignature, id, 1, err.Error()))
				cursor = be.Seq + 1
				continue
			}
			return nil, err
		}
	}
	// A HOP that published nothing is a withholder: its interval can
	// never be judged and the absence itself is the evidence. Links
	// touching an absent HOP are excluded from the receipt checks —
	// with one end's receipts missing entirely, a link verdict would
	// smear the withholder's blame onto its honest neighbor, while the
	// absence already names the narrowest set.
	absent := make(map[receipt.HOPID]bool)
	for _, hi := range hops {
		id := receipt.HOPID(hi)
		if received[id] == 0 {
			absent[id] = true
			out.blames = append(out.blames, core.BlameHOP(layout, 0, core.EvWithheldBundle, id, 1,
				fmt.Sprintf("no bundle from %v", id)))
		}
	}

	// Cross-verifier equivocation check: a second verifier "B" fetches
	// independently and the two compare raw signed bundles per origin.
	for _, hi := range hops {
		id := receipt.HOPID(hi)
		eqs := dissem.FindEquivocation(reg, id, servers[id].SignedBundles("A"), servers[id].SignedBundles("B"))
		if len(eqs) > 0 {
			out.blames = append(out.blames, core.BlameHOP(layout, 0, core.EvEquivocation, id, len(eqs), eqs[0].String()))
		}
	}

	// Verification: link checks, blame attribution, bias checks, and
	// per-domain estimates over the collected receipts.
	key := packet.PathKey{Src: tc.Paths[0].SrcPrefix, Dst: tc.Paths[0].DstPrefix}
	v := core.NewVerifierOn(layout, store, key)
	v.SetConfig(dep.VerifierConfig())
	var verdicts []core.LinkVerdict
	for _, lv := range v.VerifyAllLinks() {
		if absent[lv.Up] || absent[lv.Down] {
			continue
		}
		verdicts = append(verdicts, lv)
	}
	out.linkVerdicts[0] = verdicts
	out.blames = append(out.blames, core.AttributeBlame(layout, 0, verdicts)...)
	for _, seg := range layout.DomainSegments() {
		bias, err := v.CheckMarkerBias(seg.Up, seg.Down)
		if err != nil || !bias.Suspicious {
			continue
		}
		out.blames = append(out.blames, core.BlameMarkerBias(0, seg, bias))
	}
	reports, _ := v.DomainReports(quantile.DefaultQuantiles, cfg.Confidence)
	for _, dr := range reports {
		out.domainLoss[dr.Name] = dr.Loss.Rate()
		if dr.Name == "X" {
			out.estLoss = dr.Loss.Rate()
			if len(dr.DelayEstimates) > 1 {
				out.estP90MS = dr.DelayEstimates[1].Point / 1e6
			}
		}
	}
	truth, _ := truthRes.DomainByName("X")
	out.truth = truth
	out.recordMatched()
	if len(out.blames) > 0 {
		out.batchEpochs = 1 // one-shot: the whole trace is epoch 0
	}
	return out, nil
}

// runContinuousScenario mounts the scenario on the rotating epoch
// pipeline via RunContinuousOpts and judges the union of per-epoch
// findings.
func runContinuousScenario(cfg Config, sc *matrixScenario) (*matrixOutcome, error) {
	dc := matrixDeploy()
	mu := hashing.ThresholdForRate(dc.MarkerRate)
	intervalNS := cfg.DurationNS / matrixEpochs
	if intervalNS < 1 {
		intervalNS = cfg.DurationNS
	}
	ec := core.EpochConfig{IntervalNS: intervalNS, Retention: 2, Workers: 1, Shards: 1}
	seqCfg := matrixSeqConfig()
	opts := ContinuousOptions{
		MutatePath: mutateMatrixPath(cfg, sc, mu),
		Deploy:     &dc,
		BiasChecks: true,
		Sequential: &seqCfg,
	}
	if sc.wear != nil {
		opts.Wear = sc.wear(mu)
	}
	if sc.domainAdvs != nil {
		opts.WrapSink = func(sink core.EpochSink) core.EpochSink {
			// PathIDFor depends only on the path geometry, which the
			// world mutation never changes, so a fresh Fig1 path serves
			// the rewrite closures. Wrap in reverse order so the
			// first-listed adversary sees the honest receipts first and
			// later ones tap its output.
			chain := sc.domainAdvs(netsim.Fig1Path(cfg.Seed + 1000))
			for i := len(chain) - 1; i >= 0; i-- {
				sink = core.NewAdversarySink(sink, chain[i])
			}
			return sink
		}
	}
	if sc.tamper != nil {
		// The same hopSigner derivation RunContinuousOpts uses, so a
		// re-signing tamper (an Equivocator) holds the origin's real key
		// in continuous mode too.
		opts.Tamper = sc.tamper("continuous", func(h receipt.HOPID) *dissem.Signer {
			return hopSigner(cfg.Seed, h)
		})
	}
	res, err := RunContinuousOpts(cfg, ec, matrixEpochs, opts)
	if err != nil {
		return nil, err
	}

	out := &matrixOutcome{linkVerdicts: make(map[uint64][]core.LinkVerdict), domainLoss: make(map[string]float64)}
	out.blames = append(out.blames, res.DissemFindings...)
	var lossIn, lossLost int64
	domIn := make(map[string]int64)
	domLost := make(map[string]int64)
	var p90Weighted float64
	var p90Samples int
	for _, rep := range res.Reports {
		out.seq = append(out.seq, rep.Seq...)
		for _, k := range rep.Keys {
			out.linkVerdicts[uint64(rep.Epoch)] = append(out.linkVerdicts[uint64(rep.Epoch)], k.Links...)
			out.blames = append(out.blames, k.Blames...)
			for _, dom := range k.Domains {
				domIn[dom.Name] += dom.Loss.In
				domLost[dom.Name] += dom.Loss.Lost
				if dom.Name == "X" {
					lossIn += dom.Loss.In
					lossLost += dom.Loss.Lost
					if len(dom.DelayEstimates) > 1 && dom.DelaySamples > 0 {
						p90Weighted += dom.DelayEstimates[1].Point * float64(dom.DelaySamples)
						p90Samples += dom.DelaySamples
					}
				}
			}
		}
	}
	if lossIn > 0 {
		out.estLoss = float64(lossLost) / float64(lossIn)
	}
	for name, in := range domIn {
		if in > 0 {
			out.domainLoss[name] = float64(domLost[name]) / float64(in)
		}
	}
	if p90Samples > 0 {
		out.estP90MS = p90Weighted / float64(p90Samples) / 1e6
	}
	for i := range res.Truth {
		if res.Truth[i].Name == "X" {
			out.truth = &res.Truth[i]
		}
	}
	out.recordMatched()
	// Batch latency is judged before the sequential verdicts are
	// folded in, so the column measures the per-epoch checks alone;
	// the folded blames then give the judge's localization contract
	// authority over the early verdicts too.
	for _, b := range out.blames {
		if e := float64(b.Epoch) + 1; out.batchEpochs == 0 || e < out.batchEpochs {
			out.batchEpochs = e
		}
	}
	for _, v := range out.seq {
		out.blames = append(out.blames, seqBlame(v))
	}
	return out, nil
}

// MatrixRender renders the rows.
func MatrixRender(rows []MatrixRow, markdown bool) string {
	header := []string{"Adversary", "Layer", "Mode", "Verdict", "Localized", "Evidence", "Blamed", "Batch ep", "Seq ep", "True loss", "Est. loss", "True p90", "Est. p90"}
	ms := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f ms", v)
	}
	ep := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	var body [][]string
	for _, r := range rows {
		blamed := make([]string, len(r.BlamedHOPs))
		for i, h := range r.BlamedHOPs {
			blamed[i] = fmt.Sprintf("%d", h)
		}
		seqEp := "-"
		if r.SeqDetected {
			seqEp = ep(r.SeqEpochsToVerdict)
		}
		body = append(body, []string{
			r.Adversary, r.Layer, r.Mode, r.Verdict,
			fmt.Sprintf("%v", r.Localized),
			r.Evidence,
			strings.Join(blamed, ","),
			ep(r.BatchEpochsToVerdict), seqEp,
			fmt.Sprintf("%.1f%%", r.TrueLossPct),
			fmt.Sprintf("%.1f%%", r.EstLossPct),
			ms(r.TrueP90MS), ms(r.EstP90MS),
		})
	}
	if markdown {
		return Markdown(header, body)
	}
	return Table(header, body)
}
