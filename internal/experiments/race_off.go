//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
