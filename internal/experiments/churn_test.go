package experiments

import "testing"

// TestChurnFlatHeap is the reduced-scale churn property: visiting
// ~128k distinct keys across 8 epochs with idle eviction keeps the
// live heap flat after the eviction plateau and the monitoring cache
// bounded by the working set, not the key count.
func TestChurnFlatHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement")
	}
	const (
		totalKeys  = 128 * 1024
		epochs     = 8
		pktsPerKey = 2
	)
	row, err := Churn(totalKeys, epochs, pktsPerKey, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%+v", row)
	blockSize := totalKeys / epochs
	if row.PacketsTotal != totalKeys*pktsPerKey {
		t.Errorf("fed %d packets, want %d", row.PacketsTotal, totalKeys*pktsPerKey)
	}
	// The cache never holds more than the current block plus the
	// not-yet-evicted previous one.
	if row.PeakActive > 2*blockSize {
		t.Errorf("peak active paths %d exceed two blocks (%d)", row.PeakActive, 2*blockSize)
	}
	if row.FinalActive > 2*blockSize {
		t.Errorf("final active paths %d exceed two blocks (%d)", row.FinalActive, 2*blockSize)
	}
	// Flat heap: once eviction reaches steady state, the live heap
	// stops tracking the cumulative key count. The tolerance absorbs
	// GC jitter; without eviction the heap roughly doubles per
	// doubling of visited keys (several hundred percent over this
	// run).
	if row.HeapGrowthPct > 15 {
		t.Errorf("live heap grew %.1f%% past the eviction plateau", row.HeapGrowthPct)
	}
}
