package experiments

import (
	"testing"

	"vpm/internal/core"
)

// TestRunContinuous drives the full continuous pipeline — per-epoch
// simulation segments, signed epoch-tagged bundles over the bus, the
// windowed store, rolling verification overlapping ingest, and
// retention-based eviction — at smoke scale, and asserts the
// steady-state properties the design promises.
func TestRunContinuous(t *testing.T) {
	cfg := Config{Seed: 3, RatePPS: 20_000}
	const epochs, retention = 12, 2
	ec := core.EpochConfig{IntervalNS: 25_000_000, Retention: retention, Workers: 1, Shards: 1}

	var reported []core.EpochID
	res, err := RunContinuous(cfg, ec, epochs, func(rep core.EpochReport, _ core.WindowStats) {
		reported = append(reported, rep.Epoch)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochsRun != epochs {
		t.Fatalf("ran %d epochs, want %d", res.EpochsRun, epochs)
	}
	if res.EpochsSealed < epochs || len(res.Reports) != res.EpochsSealed {
		t.Fatalf("sealed %d epochs but produced %d reports", res.EpochsSealed, len(res.Reports))
	}
	for i, e := range reported {
		if e != core.EpochID(i) {
			t.Fatalf("reports out of order: %v", reported)
		}
	}
	if res.Violations != 0 {
		t.Fatalf("healthy continuous run produced %d violations", res.Violations)
	}
	if res.MatchedSamples == 0 || res.SampleReceipts == 0 {
		t.Fatalf("no receipts flowed: %+v", res)
	}
	// Bounded steady state: the window never outgrows retention plus
	// the verification/ingest in-flight epochs.
	if bound := retention + 2; res.Window.Segments > bound {
		t.Fatalf("window holds %d segments after shutdown; bound %d", res.Window.Segments, bound)
	}
	if res.Window.Evicted == 0 {
		t.Fatal("a 12-epoch run with retention 2 must have evicted something")
	}
}

// TestRunContinuousValidation: the engine rejects broken epoch
// configurations up front.
func TestRunContinuousValidation(t *testing.T) {
	cfg := Config{Seed: 1, RatePPS: 1000}
	if _, err := RunContinuous(cfg, core.EpochConfig{IntervalNS: 0, Retention: 1}, 2, nil, nil); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := RunContinuous(cfg, core.EpochConfig{IntervalNS: 1e7, Retention: 0}, 2, nil, nil); err == nil {
		t.Fatal("zero retention accepted")
	}
	if _, err := RunContinuous(cfg, core.EpochConfig{IntervalNS: 1e7, Retention: 1}, 0, nil, nil); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

// TestEpochsRows: the benchmark emits the batch baseline plus one row
// per retention, with consistent packet accounting across modes.
func TestEpochsRows(t *testing.T) {
	cfg := Config{Seed: 2, RatePPS: 10_000, DurationNS: 25_000_000}
	rows, err := Epochs(cfg, 4, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected batch + 1 continuous row, got %d", len(rows))
	}
	if rows[0].Mode != "batch" || rows[1].Mode != "continuous" {
		t.Fatalf("unexpected modes: %q, %q", rows[0].Mode, rows[1].Mode)
	}
	if rows[0].Packets != rows[1].Packets {
		t.Fatalf("modes saw different traffic: %d vs %d packets", rows[0].Packets, rows[1].Packets)
	}
	if rows[1].SegmentsHeld > 2+2 {
		t.Fatalf("continuous row held %d segments", rows[1].SegmentsHeld)
	}
	if rows[1].EpochsPerSec <= 0 || rows[1].HeapMB <= 0 {
		t.Fatalf("missing throughput/heap stats: %+v", rows[1])
	}
	if EpochsRender(rows, false) == "" || EpochsRender(rows, true) == "" {
		t.Fatal("renderers returned nothing")
	}
}
