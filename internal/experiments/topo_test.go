package experiments

import (
	"testing"
)

// testTopoCfg is a reduced-scale sweep configuration.
func testTopoCfg() Config {
	return Config{Seed: 3, RatePPS: 60000, DurationNS: 2e8}
}

// TestTopoSweep is the mesh acceptance test: every family verifies
// with byte-identical verdicts across the {1,4}×{1,4} shards/workers
// grid, honest worlds carry zero violations, and a faulty shared link
// is blamed on exactly its owning domain pair by at least two traffic
// keys with zero violations on the disjoint honest routes.
func TestTopoSweep(t *testing.T) {
	rows, err := Topo(testTopoCfg(), []int{1, 4}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	families := map[string]bool{}
	fpByScenario := map[string]string{}
	gridRows := map[string]int{}
	for _, r := range rows {
		families[r.Family] = true
		key := r.Family + "/" + r.Scenario
		if fp, ok := fpByScenario[key]; ok && fp != r.Fingerprint {
			t.Errorf("%s: fingerprint diverges across the grid: %s vs %s (shards=%d workers=%d)",
				key, fp, r.Fingerprint, r.Shards, r.Workers)
		}
		fpByScenario[key] = r.Fingerprint
		switch r.Scenario {
		case "honest":
			if r.HonestLinkViolations != 0 {
				t.Errorf("%s honest: %d violations on an honest mesh", r.Family, r.HonestLinkViolations)
			}
			if !r.Localized {
				t.Errorf("%s honest: row not marked clean", r.Family)
			}
		case "faulty-shared-link":
			gridRows[r.Family]++
			if !r.Localized {
				t.Errorf("%s faulty: blame not localized to the shared link (blamed %v, honest violations %d)",
					r.Family, r.BlamedDomains, r.HonestLinkViolations)
			}
			if r.HonestLinkViolations != 0 {
				t.Errorf("%s faulty: %d violations smeared onto honest disjoint links", r.Family, r.HonestLinkViolations)
			}
			if len(r.BlamedDomains) != 2 {
				t.Errorf("%s faulty: blamed domains %v, want exactly the owning pair", r.Family, r.BlamedDomains)
			}
			if r.BlamedKeys < 2 {
				t.Errorf("%s faulty: only %d keys implicated the shared link", r.Family, r.BlamedKeys)
			}
			if r.FaultyLink == "" {
				t.Errorf("%s faulty: row does not name the faulty link", r.Family)
			}
		default:
			t.Errorf("unknown scenario %q", r.Scenario)
		}
		if r.FanIn < 2 {
			t.Errorf("%s: fan-in %d — topology shares nothing", r.Family, r.FanIn)
		}
	}
	if len(families) < 3 {
		t.Fatalf("sweep covered %d families, want at least 3", len(families))
	}
	for fam, n := range gridRows {
		if n != 4 {
			t.Errorf("%s: %d faulty grid rows, want the full {1,4}×{1,4} grid", fam, n)
		}
	}
}

// TestMeshAttackRows gates the mesh rows the attack matrix gained: the
// shared-link adversaries must be detected with blame confined to the
// shared link's HOP pair, the honest mesh must stay clean.
func TestMeshAttackRows(t *testing.T) {
	rows, err := MeshAttackRows(Config{Seed: 2, RatePPS: 50000, DurationNS: 3e8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 mesh rows, got %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-22s -> %-10s localized=%v evidence=%q blamed=%v", r.Adversary, r.Verdict, r.Localized, r.Evidence, r.BlamedHOPs)
		if r.Verdict == "undetected" {
			t.Errorf("%s: adversary escaped", r.Adversary)
		}
		if !r.Localized {
			t.Errorf("%s: blame not localized (blamed %v)", r.Adversary, r.BlamedHOPs)
		}
		if r.HonestLinkViolations != 0 {
			t.Errorf("%s: %d violations on honest links", r.Adversary, r.HonestLinkViolations)
		}
		if r.Adversary != "mesh-honest" {
			if r.Verdict != "detected" {
				t.Errorf("%s: verdict %q, want detected", r.Adversary, r.Verdict)
			}
			for _, h := range r.BlamedHOPs {
				if h != 1 && h != 2 {
					t.Errorf("%s: blamed HOP %d outside the shared link pair", r.Adversary, h)
				}
			}
		}
	}
}
