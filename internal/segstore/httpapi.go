package segstore

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"vpm/internal/core"
	"vpm/internal/packet"
)

// The historical-verdict query API: read-only HTTP over the store's
// persisted per-epoch reports, so disputes can be investigated long
// after the epochs left the RAM window — the paper's post-hoc use
// case. Three endpoints:
//
//	GET /api/v1/epochs    — the durable world: sealed epochs, report
//	                        availability, occupancy stats.
//	GET /api/v1/verdicts  — per-epoch verdict reports. Filters:
//	                        from/to (epoch range, inclusive),
//	                        from_ns/to_ns (time range; needs the
//	                        epoch interval), key (traffic key,
//	                        "src->dst" CIDR pair), domain (domain
//	                        name). Unfiltered reports are served
//	                        verbatim from disk — byte-identical to
//	                        what verification persisted.
//	GET /metrics          — Prometheus text exposition: occupancy
//	                        gauges plus violation/matched-sample
//	                        counters over the stored verdicts.
//
// The handler is safe for concurrent use alongside a writing Store.

// APIConfig parameterizes the query handler.
type APIConfig struct {
	// IntervalNS is the epoch interval, enabling the from_ns/to_ns
	// time-range parameters (epoch = time ÷ interval). 0 disables
	// time-range queries (400 on use).
	IntervalNS int64
}

// apiHandler serves the query API over one store.
type apiHandler struct {
	store *Store
	cfg   APIConfig

	// tallies memoizes per-epoch violation/matched counts for the
	// metrics endpoint, so scrapes do not re-decode unchanged reports.
	mu      sync.Mutex
	tallies map[uint64]reportTally
}

type reportTally struct {
	violations int
	matched    int64
}

// NewHandler returns the query API over s.
func NewHandler(s *Store, cfg APIConfig) http.Handler {
	h := &apiHandler{store: s, cfg: cfg, tallies: make(map[uint64]reportTally)}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/epochs", h.epochs)
	mux.HandleFunc("/api/v1/verdicts", h.verdicts)
	mux.HandleFunc("/metrics", h.metrics)
	return mux
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func wantGET(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return false
	}
	return true
}

// epochsResponse is GET /api/v1/epochs.
type epochsResponse struct {
	Sealed     []uint64 `json:"sealed"`
	LastSealed *uint64  `json:"last_sealed,omitempty"`
	Reports    []uint64 `json:"reports"`
	Stats      Stats    `json:"stats"`
}

func (h *apiHandler) epochs(w http.ResponseWriter, r *http.Request) {
	if !wantGET(w, r) {
		return
	}
	resp := epochsResponse{
		Sealed:  h.store.SealedEpochs(),
		Reports: h.store.ReportEpochs(),
		Stats:   h.store.StoreStats(),
	}
	if last, ok := h.store.LastSealed(); ok {
		resp.LastSealed = &last
	}
	if resp.Sealed == nil {
		resp.Sealed = []uint64{}
	}
	if resp.Reports == nil {
		resp.Reports = []uint64{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// epochRange resolves the from/to (epoch) and from_ns/to_ns (time)
// query parameters to an inclusive epoch range over the epochs that
// have reports.
func (h *apiHandler) epochRange(r *http.Request) (from, to uint64, err error) {
	q := r.URL.Query()
	from, to = 0, ^uint64(0)
	parse := func(name string) (uint64, bool, error) {
		s := q.Get(name)
		if s == "" {
			return 0, false, nil
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, false, fmt.Errorf("bad %s %q: %v", name, s, err)
		}
		return v, true, nil
	}
	if v, ok, perr := parse("from"); perr != nil {
		return 0, 0, perr
	} else if ok {
		from = v
	}
	if v, ok, perr := parse("to"); perr != nil {
		return 0, 0, perr
	} else if ok {
		to = v
	}
	for _, tp := range []struct {
		name  string
		apply func(epoch uint64)
	}{
		{"from_ns", func(e uint64) { from = e }},
		{"to_ns", func(e uint64) { to = e }},
	} {
		v, ok, perr := parse(tp.name)
		if perr != nil {
			return 0, 0, perr
		}
		if !ok {
			continue
		}
		if h.cfg.IntervalNS <= 0 {
			return 0, 0, fmt.Errorf("%s requires the server to know the epoch interval", tp.name)
		}
		tp.apply(v / uint64(h.cfg.IntervalNS))
	}
	if from > to {
		return 0, 0, fmt.Errorf("empty range: from %d > to %d", from, to)
	}
	return from, to, nil
}

// verdictsResponse is GET /api/v1/verdicts. Unfiltered, Reports holds
// the stored verdict blobs verbatim.
type verdictsResponse struct {
	Epochs  []uint64          `json:"epochs"`
	Reports []json.RawMessage `json:"reports"`
}

func (h *apiHandler) verdicts(w http.ResponseWriter, r *http.Request) {
	if !wantGET(w, r) {
		return
	}
	from, to, err := h.epochRange(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := r.URL.Query()
	keyFilter := q.Get("key")
	var wantKey packet.PathKey
	if keyFilter != "" {
		k, err := packet.ParsePathKey(keyFilter)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad key %q: %v", keyFilter, err)
			return
		}
		wantKey = k
	}
	domainFilter := q.Get("domain")

	resp := verdictsResponse{Epochs: []uint64{}, Reports: []json.RawMessage{}}
	for _, epoch := range h.store.ReportEpochs() {
		if epoch < from || epoch > to {
			continue
		}
		blob, err := h.store.Report(epoch)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "reading epoch %d report: %v", epoch, err)
			return
		}
		if keyFilter == "" && domainFilter == "" {
			// Verbatim: the exact bytes verification persisted.
			resp.Epochs = append(resp.Epochs, epoch)
			resp.Reports = append(resp.Reports, json.RawMessage(blob))
			continue
		}
		rep, err := core.DecodeEpochReport(blob)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "decoding epoch %d report: %v", epoch, err)
			return
		}
		filtered := filterReport(rep, keyFilter != "", wantKey, domainFilter)
		if len(filtered.Keys) == 0 {
			continue
		}
		encoded, err := core.EncodeEpochReport(filtered)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "encoding epoch %d report: %v", epoch, err)
			return
		}
		resp.Epochs = append(resp.Epochs, epoch)
		resp.Reports = append(resp.Reports, json.RawMessage(encoded))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// filterReport narrows a report to the requested key and/or domain:
// keys not matching the key filter are dropped; with a domain filter,
// each surviving key keeps only the matching domain reports (and the
// blames naming that domain), and keys left with no matching domain
// are dropped.
func filterReport(rep core.EpochReport, byKey bool, key packet.PathKey, domain string) core.EpochReport {
	out := core.EpochReport{Epoch: rep.Epoch}
	for _, kr := range rep.Keys {
		if byKey && kr.Key != key {
			continue
		}
		if domain == "" {
			out.Keys = append(out.Keys, kr)
			continue
		}
		nk := kr
		nk.Domains = nil
		for _, dr := range kr.Domains {
			if dr.Name == domain {
				nk.Domains = append(nk.Domains, dr)
			}
		}
		if len(nk.Domains) == 0 {
			continue
		}
		nk.Blames = nil
		for _, bl := range kr.Blames {
			for _, d := range bl.Domains {
				if d == domain {
					nk.Blames = append(nk.Blames, bl)
					break
				}
			}
		}
		nk.Bias = nil
		for _, bv := range kr.Bias {
			if bv.Domain == domain {
				nk.Bias = append(nk.Bias, bv)
			}
		}
		out.Keys = append(out.Keys, nk)
	}
	return out
}

// tallyFor returns (memoized) the violation/matched counts of one
// stored report.
func (h *apiHandler) tallyFor(epoch uint64) (reportTally, error) {
	h.mu.Lock()
	t, ok := h.tallies[epoch]
	h.mu.Unlock()
	if ok {
		return t, nil
	}
	blob, err := h.store.Report(epoch)
	if err != nil {
		return reportTally{}, err
	}
	rep, err := core.DecodeEpochReport(blob)
	if err != nil {
		return reportTally{}, err
	}
	t = reportTally{violations: rep.Violations(), matched: rep.MatchedSamples()}
	h.mu.Lock()
	h.tallies[epoch] = t
	h.mu.Unlock()
	return t, nil
}

func (h *apiHandler) metrics(w http.ResponseWriter, r *http.Request) {
	if !wantGET(w, r) {
		return
	}
	st := h.store.StoreStats()
	var violations int
	var matched int64
	epochs := h.store.ReportEpochs()
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, epoch := range epochs {
		t, err := h.tallyFor(epoch)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "tallying epoch %d: %v", epoch, err)
			return
		}
		violations += t.violations
		matched += t.matched
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP vpm_store_sealed_epochs Durably sealed epochs on disk.\n")
	fmt.Fprintf(w, "# TYPE vpm_store_sealed_epochs gauge\nvpm_store_sealed_epochs %d\n", st.SealedEpochs)
	fmt.Fprintf(w, "# TYPE vpm_store_segments gauge\nvpm_store_segments %d\n", st.Segments)
	fmt.Fprintf(w, "# TYPE vpm_store_bytes gauge\nvpm_store_bytes %d\n", st.Bytes)
	fmt.Fprintf(w, "# TYPE vpm_store_sample_receipts gauge\nvpm_store_sample_receipts %d\n", st.Samples)
	fmt.Fprintf(w, "# TYPE vpm_store_agg_receipts gauge\nvpm_store_agg_receipts %d\n", st.Aggs)
	fmt.Fprintf(w, "# TYPE vpm_store_reports gauge\nvpm_store_reports %d\n", st.Reports)
	fmt.Fprintf(w, "# HELP vpm_violations_total Consistency violations across stored verdict reports.\n")
	fmt.Fprintf(w, "# TYPE vpm_violations_total counter\nvpm_violations_total %d\n", violations)
	fmt.Fprintf(w, "# TYPE vpm_matched_samples_total counter\nvpm_matched_samples_total %d\n", matched)
}
