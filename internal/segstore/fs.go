// Package segstore is the durable epoch-segment backend: an
// append-only on-disk store of sealed per-epoch receipt segments with
// a rename-committed manifest, crash-recovery replay, size-tiered
// compaction, and per-epoch verdict-report persistence. It sits
// beneath core.WindowedStore (see core.StoreBackend) so a continuous
// deployment's evidence survives process death and retention reaches
// far beyond RAM — the paper's post-hoc dispute-resolution use case
// needs receipts to still exist when the dispute is raised.
//
// Durability contract: an epoch is durable exactly when its Seal
// committed the manifest (write-temp, fsync, rename, fsync-dir).
// Everything before that point — blocks appended to the active
// segment, a manifest temp file — is discardable; everything after
// survives kill -9 at any instruction boundary. Recovery (Open)
// re-establishes exactly the manifest's world: sealed segments are
// checksum-verified, a torn tail on the active segment is truncated
// away, and orphaned temp files are removed.
package segstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem slice the store needs, narrowed to the
// operations whose ordering the durability argument depends on. The
// production implementation is DirFS; tests substitute MemFS (pure
// in-memory) and FaultFS (fails or tears writes after a budget of
// operations) to drive the store through every crash point without a
// real disk or a real crash.
//
// All names are relative to the store's root directory; the store
// never creates subdirectories.
type FS interface {
	// OpenAppend opens name for appending, creating it if needed.
	OpenAppend(name string) (File, error)
	// ReadFile returns name's full contents.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name down to size bytes.
	Truncate(name string, size int64) error
	// List returns every filename in the root, sorted.
	List() ([]string, error)
	// SyncDir flushes the directory entry metadata (renames, removes)
	// to stable storage.
	SyncDir() error
}

// File is an append handle.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage.
	Sync() error
	Close() error
}

// DirFS implements FS over one real directory.
type DirFS struct {
	dir string
}

// NewDirFS returns an FS rooted at dir, creating the directory if
// needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segstore: create data dir: %w", err)
	}
	return &DirFS{dir: dir}, nil
}

// Dir returns the root directory.
func (f *DirFS) Dir() string { return f.dir }

// OpenAppend implements FS.
func (f *DirFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(filepath.Join(f.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (f *DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(f.dir, name))
}

// Rename implements FS.
func (f *DirFS) Rename(oldname, newname string) error {
	return os.Rename(filepath.Join(f.dir, oldname), filepath.Join(f.dir, newname))
}

// Remove implements FS.
func (f *DirFS) Remove(name string) error {
	return os.Remove(filepath.Join(f.dir, name))
}

// Truncate implements FS.
func (f *DirFS) Truncate(name string, size int64) error {
	return os.Truncate(filepath.Join(f.dir, name), size)
}

// List implements FS.
func (f *DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: fsync on the directory makes the renames and
// removes since the last sync durable (POSIX requires the directory
// fsync for the *entry*, not just the file data).
func (f *DirFS) SyncDir() error {
	d, err := os.Open(f.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
