package segstore

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"reflect"
	"testing"

	"vpm/internal/packet"
	"vpm/internal/receipt"
)

// testPath builds a distinct PathID from a small seed.
func testPath(n int) receipt.PathID {
	return receipt.PathID{
		Key: packet.PathKey{
			Src: packet.Prefix{Addr: [4]byte{10, byte(n), 0, 0}, Bits: 16},
			Dst: packet.Prefix{Addr: [4]byte{172, 16, byte(n), 0}, Bits: 24},
		},
		PrevHOP:   receipt.HOPID(n),
		NextHOP:   receipt.HOPID(n + 1),
		MaxDiffNS: 1000,
	}
}

// testReceipts builds per-HOP receipt slices that vary by epoch and
// hop, so cross-contamination between blocks is detectable.
func testReceipts(epoch uint64, hop receipt.HOPID) ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	samples := []receipt.SampleReceipt{{
		Path: testPath(int(hop)),
		Samples: []receipt.SampleRecord{
			{PktID: epoch*1000 + uint64(hop), TimeNS: int64(epoch * 10)},
			{PktID: epoch*1000 + uint64(hop) + 1, TimeNS: int64(epoch*10 + 1)},
		},
	}}
	aggs := []receipt.AggReceipt{{
		Path:   testPath(int(hop)),
		Agg:    receipt.AggID{First: epoch, Last: epoch + uint64(hop)},
		PktCnt: 7 + uint64(hop),
	}}
	return samples, aggs
}

// fillEpochs appends and seals epochs [0, n) across the given hops.
func fillEpochs(t *testing.T, s *Store, n int, hops []receipt.HOPID) {
	t.Helper()
	for epoch := uint64(0); epoch < uint64(n); epoch++ {
		for _, hop := range hops {
			samples, aggs := testReceipts(epoch, hop)
			if err := s.Append(epoch, hop, samples, aggs); err != nil {
				t.Fatalf("Append(%d, %d): %v", epoch, hop, err)
			}
		}
		if err := s.Seal(epoch); err != nil {
			t.Fatalf("Seal(%d): %v", epoch, err)
		}
	}
}

func TestBlockRoundTrip(t *testing.T) {
	samples, aggs := testReceipts(3, 2)
	data := append([]byte(nil), segMagic[:]...)
	data = AppendBlock(data, 3, 2, samples, aggs)
	data = AppendBlock(data, 3, 5, nil, nil) // empty block is legal

	blocks, valid, err := ScanSegment(data)
	if err != nil {
		t.Fatalf("ScanSegment: %v", err)
	}
	if valid != len(data) {
		t.Fatalf("valid prefix %d, want %d", valid, len(data))
	}
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(blocks))
	}
	if blocks[0].Epoch != 3 || blocks[0].HOP != 2 {
		t.Fatalf("block 0 header = (%d, %d), want (3, 2)", blocks[0].Epoch, blocks[0].HOP)
	}
	if !reflect.DeepEqual(blocks[0].Samples, samples) || !reflect.DeepEqual(blocks[0].Aggs, aggs) {
		t.Fatalf("block 0 receipts did not round-trip")
	}
	if len(blocks[1].Samples) != 0 || len(blocks[1].Aggs) != 0 {
		t.Fatalf("empty block came back non-empty")
	}
}

func TestScanSegmentTornAndCorrupt(t *testing.T) {
	samples, aggs := testReceipts(1, 1)
	full := append([]byte(nil), segMagic[:]...)
	full = AppendBlock(full, 1, 1, samples, aggs)
	full = AppendBlock(full, 2, 1, samples, aggs)
	oneBlock := len(segMagic) + blockHeaderLen
	for _, r := range samples {
		oneBlock += r.WireSize()
	}
	for _, r := range aggs {
		oneBlock += r.WireSize()
	}

	// Every truncation point inside the second block is a torn tail
	// whose valid prefix is exactly the first block.
	for cut := oneBlock + 1; cut < len(full); cut++ {
		blocks, valid, err := ScanSegment(full[:cut])
		if !errors.Is(err, ErrTornTail) {
			t.Fatalf("cut %d: err = %v, want ErrTornTail", cut, err)
		}
		if valid != oneBlock || len(blocks) != 1 {
			t.Fatalf("cut %d: valid=%d blocks=%d, want %d and 1", cut, valid, len(blocks), oneBlock)
		}
	}

	// A flipped payload bit is corruption, not a tear.
	bad := append([]byte(nil), full...)
	bad[oneBlock+blockHeaderLen] ^= 0x40
	if _, _, err := ScanSegment(bad); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("payload bitflip: err = %v, want ErrCorruptSegment", err)
	}
	// A flipped header bit likewise.
	bad = append([]byte(nil), full...)
	bad[oneBlock+4] ^= 0x01
	if _, _, err := ScanSegment(bad); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("header bitflip: err = %v, want ErrCorruptSegment", err)
	}
	// A bad magic is corruption from byte zero.
	bad = append([]byte(nil), full...)
	bad[0] = 'X'
	if _, _, err := ScanSegment(bad); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("bad magic: err = %v, want ErrCorruptSegment", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	entries := []SegmentInfo{
		{File: "ep-0000000000000000.seg", FromEpoch: 0, ToEpoch: 0, Bytes: 64, Blocks: 2, CRC: 7, Samples: 4, Aggs: 2},
		{File: "ep-0000000000000001-0000000000000003.seg", FromEpoch: 1, ToEpoch: 3, Bytes: 256, Blocks: 9, CRC: 9, Samples: 18, Aggs: 9},
	}
	data, err := encodeManifest(entries)
	if err != nil {
		t.Fatalf("encodeManifest: %v", err)
	}
	got, err := DecodeManifest(data)
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Fatalf("manifest did not round-trip:\n got %+v\nwant %+v", got, entries)
	}

	for name, mangle := range map[string]func([]SegmentInfo) []SegmentInfo{
		"overlap":  func(e []SegmentInfo) []SegmentInfo { e[1].FromEpoch = 0; return e },
		"reversed": func(e []SegmentInfo) []SegmentInfo { e[1].ToEpoch = 0; return e },
		"tiny":     func(e []SegmentInfo) []SegmentInfo { e[0].Bytes = 2; return e },
		"unnamed":  func(e []SegmentInfo) []SegmentInfo { e[0].File = ""; return e },
	} {
		bad := mangle(append([]SegmentInfo(nil), entries...))
		// Encode without the sanity sort hiding the damage: build the
		// JSON by hand through the manifest struct.
		raw, err := encodeManifest(bad)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if _, err := DecodeManifest(raw); !errors.Is(err, ErrCorruptManifest) {
			t.Fatalf("%s: err = %v, want ErrCorruptManifest", name, err)
		}
	}
	if _, err := DecodeManifest([]byte("{not json")); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("garbage: err = %v, want ErrCorruptManifest", err)
	}
}

func TestStoreSealReopenRoundTrip(t *testing.T) {
	mfs := NewMemFS()
	hops := []receipt.HOPID{0, 1, 2}
	s, stats, err := Open("", Options{FS: mfs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if stats.HasSealed || stats.SealedEpochs != 0 {
		t.Fatalf("fresh store recovered state: %+v", stats)
	}
	fillEpochs(t, s, 4, hops)
	if err := s.PutReport(2, []byte(`{"epoch":2}`)); err != nil {
		t.Fatalf("PutReport: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, stats, err := Open("", Options{FS: mfs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !stats.HasSealed || stats.LastSealed != 3 || stats.SealedEpochs != 4 || stats.Reports != 1 {
		t.Fatalf("recovery stats: %+v", stats)
	}
	for epoch := uint64(0); epoch < 4; epoch++ {
		blocks, err := s2.ReadEpoch(epoch)
		if err != nil {
			t.Fatalf("ReadEpoch(%d): %v", epoch, err)
		}
		if len(blocks) != len(hops) {
			t.Fatalf("epoch %d: %d blocks, want %d", epoch, len(blocks), len(hops))
		}
		for i, hop := range hops {
			samples, aggs := testReceipts(epoch, hop)
			if blocks[i].HOP != hop || !reflect.DeepEqual(blocks[i].Samples, samples) || !reflect.DeepEqual(blocks[i].Aggs, aggs) {
				t.Fatalf("epoch %d block %d did not round-trip", epoch, i)
			}
		}
	}
	rep, err := s2.Report(2)
	if err != nil || !bytes.Equal(rep, []byte(`{"epoch":2}`)) {
		t.Fatalf("Report(2) = %q, %v", rep, err)
	}
	if _, err := s2.Report(1); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Report(1): err = %v, want fs.ErrNotExist", err)
	}
}

func TestStoreRejectsDoubleCounting(t *testing.T) {
	s, _, err := Open("", Options{FS: NewMemFS()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillEpochs(t, s, 2, []receipt.HOPID{0})
	samples, aggs := testReceipts(1, 0)
	if err := s.Append(1, 0, samples, aggs); !errors.Is(err, ErrEpochSealed) {
		t.Fatalf("Append to sealed epoch: err = %v, want ErrEpochSealed", err)
	}
	if err := s.Seal(1); !errors.Is(err, ErrEpochSealed) {
		t.Fatalf("double Seal: err = %v, want ErrEpochSealed", err)
	}
	if err := s.PutReport(5, []byte(`{}`)); !errors.Is(err, ErrNotSealed) {
		t.Fatalf("PutReport on unsealed epoch: err = %v, want ErrNotSealed", err)
	}
}

func TestRecoveryDropsPartialEpochAndTornTail(t *testing.T) {
	mfs := NewMemFS()
	s, _, err := Open("", Options{FS: mfs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillEpochs(t, s, 2, []receipt.HOPID{0, 1})

	// Epoch 2 is mid-flight: one whole block plus a torn half-block,
	// never sealed — the state kill -9 leaves behind.
	samples, aggs := testReceipts(2, 0)
	if err := s.Append(2, 0, samples, aggs); err != nil {
		t.Fatalf("Append: %v", err)
	}
	torn := EncodeBlock(2, 1, samples, aggs)
	f, err := mfs.OpenAppend(segmentName(2))
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	f.Write(torn[:len(torn)-5])
	f.Close()
	// A stale manifest temp and an orphan report ride along.
	tmp, _ := mfs.OpenAppend(manifestTemp)
	tmp.Write([]byte("half a manifest"))
	tmp.Close()
	orphan, _ := mfs.OpenAppend(reportName(9))
	orphan.Write([]byte(`{"epoch":9}`))
	orphan.Close()

	s2, stats, err := Open("", Options{FS: mfs})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if last, ok := s2.LastSealed(); !ok || last != 1 {
		t.Fatalf("LastSealed = %d, %v; want 1, true", last, ok)
	}
	if stats.PartialSegments != 1 || stats.PartialBlocksDropped != 1 || stats.TornBytes == 0 {
		t.Fatalf("partial-segment stats: %+v", stats)
	}
	if stats.OrphansRemoved != 2 {
		t.Fatalf("OrphansRemoved = %d, want 2 (manifest temp + orphan report)", stats.OrphansRemoved)
	}
	if _, err := s2.ReadEpoch(2); !errors.Is(err, ErrNotSealed) {
		t.Fatalf("ReadEpoch(2) after drop: err = %v, want ErrNotSealed", err)
	}
	if names, _ := mfs.List(); len(names) != 3 { // MANIFEST + 2 sealed segments
		t.Fatalf("surviving files = %v, want manifest and 2 segments", names)
	}

	// The dropped epoch can be rebuilt and sealed — no double-count,
	// no residue.
	if err := s2.Append(2, 0, samples, aggs); err != nil {
		t.Fatalf("re-append dropped epoch: %v", err)
	}
	if err := s2.Seal(2); err != nil {
		t.Fatalf("re-seal dropped epoch: %v", err)
	}
	blocks, err := s2.ReadEpoch(2)
	if err != nil || len(blocks) != 1 {
		t.Fatalf("rebuilt epoch 2: %d blocks, %v; want 1, nil", len(blocks), err)
	}
}

func TestRecoveryTruncatesSealedSegmentOvergrowth(t *testing.T) {
	mfs := NewMemFS()
	s, _, err := Open("", Options{FS: mfs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillEpochs(t, s, 1, []receipt.HOPID{0})

	// Garbage appended after the seal (a torn post-commit write).
	f, _ := mfs.OpenAppend(segmentName(0))
	f.Write([]byte("garbage past the committed size"))
	f.Close()

	s2, stats, err := Open("", Options{FS: mfs})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if stats.TruncatedBytes == 0 {
		t.Fatalf("TruncatedBytes = 0, want the garbage trimmed: %+v", stats)
	}
	if blocks, err := s2.ReadEpoch(0); err != nil || len(blocks) != 1 {
		t.Fatalf("ReadEpoch(0) after truncation: %d blocks, %v", len(blocks), err)
	}
}

func TestRecoveryRefusesCorruptSealedSegment(t *testing.T) {
	cases := map[string]func(mfs *MemFS){
		"missing segment": func(mfs *MemFS) { mfs.Remove(segmentName(0)) },
		"payload bitflip": func(mfs *MemFS) {
			data, _ := mfs.ReadFile(segmentName(0))
			data[len(data)-1] ^= 0x10
			mfs.Truncate(segmentName(0), 0)
			f, _ := mfs.OpenAppend(segmentName(0))
			f.Write(data)
			f.Close()
		},
		"short file": func(mfs *MemFS) {
			data, _ := mfs.ReadFile(segmentName(0))
			mfs.Truncate(segmentName(0), int64(len(data)-4))
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			mfs := NewMemFS()
			s, _, err := Open("", Options{FS: mfs})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			fillEpochs(t, s, 1, []receipt.HOPID{0})
			corrupt(mfs)
			if _, _, err := Open("", Options{FS: mfs}); !errors.Is(err, ErrSegmentIntegrity) {
				t.Fatalf("err = %v, want ErrSegmentIntegrity", err)
			}
		})
	}

	t.Run("corrupt manifest", func(t *testing.T) {
		mfs := NewMemFS()
		s, _, err := Open("", Options{FS: mfs})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		fillEpochs(t, s, 1, []receipt.HOPID{0})
		mfs.Truncate(manifestName, 10)
		if _, _, err := Open("", Options{FS: mfs}); !errors.Is(err, ErrCorruptManifest) {
			t.Fatalf("err = %v, want ErrCorruptManifest", err)
		}
	})
}

func TestStoreOnRealDisk(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillEpochs(t, s, 3, []receipt.HOPID{0, 1})
	if err := s.PutReport(0, []byte(`{"epoch":0}`)); err != nil {
		t.Fatalf("PutReport: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, stats, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !stats.HasSealed || stats.LastSealed != 2 || stats.Reports != 1 {
		t.Fatalf("recovery stats on disk: %+v", stats)
	}
	blocks, err := s2.ReadEpoch(1)
	if err != nil || len(blocks) != 2 {
		t.Fatalf("ReadEpoch(1): %d blocks, %v", len(blocks), err)
	}
	st := s2.StoreStats()
	if st.SealedEpochs != 3 || st.Segments != 3 || st.Reports != 1 {
		t.Fatalf("StoreStats: %+v", st)
	}
}

func TestManifestEntryCRCMatchesFile(t *testing.T) {
	mfs := NewMemFS()
	s, _, err := Open("", Options{FS: mfs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillEpochs(t, s, 2, []receipt.HOPID{0, 1})
	for _, e := range s.Manifest() {
		data, err := mfs.ReadFile(e.File)
		if err != nil {
			t.Fatalf("read %s: %v", e.File, err)
		}
		if int64(len(data)) != e.Bytes {
			t.Fatalf("%s: %d bytes on disk, manifest says %d", e.File, len(data), e.Bytes)
		}
		if got := crc32.Checksum(data, crcTable); got != e.CRC {
			t.Fatalf("%s: CRC %08x on disk, manifest says %08x", e.File, got, e.CRC)
		}
	}
}

func TestRecoveryStatsString(t *testing.T) {
	var zero RecoveryStats
	if s := zero.String(); s == "" {
		t.Fatal("empty String()")
	}
	full := RecoveryStats{SealedEpochs: 4, HasSealed: true, LastSealed: 3, Reports: 2, PartialSegments: 1}
	if s := full.String(); s == "" {
		t.Fatal("empty String()")
	}
	_ = fmt.Sprintf("%v", full)
}
