package segstore_test

// The query API is tested from outside the package, against a store
// populated by a real continuous run: experiments.RunContinuousOpts
// with a MemFS-backed segstore beneath the windowed store — the same
// wiring cmd/vpm-node uses, minus the process boundary.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vpm/internal/core"
	"vpm/internal/experiments"
	"vpm/internal/segstore"
)

const apiIntervalNS = int64(5e7)

// runBackedPipeline runs a short continuous pipeline persisting into a
// fresh MemFS-backed store and returns the store and the run result.
func runBackedPipeline(t *testing.T, epochs int) (*segstore.Store, *experiments.ContinuousResult) {
	t.Helper()
	store, _, err := segstore.Open("", segstore.Options{FS: segstore.NewMemFS()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cfg := experiments.Config{Seed: 7, RatePPS: 20_000, DurationNS: apiIntervalNS}
	ec := core.EpochConfig{IntervalNS: apiIntervalNS, Retention: 2, Workers: 1, Shards: 1}
	res, err := experiments.RunContinuousOpts(cfg, ec, epochs, experiments.ContinuousOptions{
		Backend: segstore.Backend{Store: store},
	})
	if err != nil {
		t.Fatalf("RunContinuousOpts: %v", err)
	}
	return store, res
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
	}
	return resp
}

func TestQueryAPIServesVerbatimVerdicts(t *testing.T) {
	store, res := runBackedPipeline(t, 4)
	srv := httptest.NewServer(segstore.NewHandler(store, segstore.APIConfig{IntervalNS: apiIntervalNS}))
	defer srv.Close()

	var epochsResp struct {
		Sealed     []uint64       `json:"sealed"`
		LastSealed *uint64        `json:"last_sealed"`
		Reports    []uint64       `json:"reports"`
		Stats      segstore.Stats `json:"stats"`
	}
	getJSON(t, srv, "/api/v1/epochs", &epochsResp)
	if len(epochsResp.Sealed) != res.EpochsSealed {
		t.Fatalf("sealed %v, run sealed %d epochs", epochsResp.Sealed, res.EpochsSealed)
	}
	if len(epochsResp.Reports) != len(res.Reports) {
		t.Fatalf("%d reports via API, run produced %d", len(epochsResp.Reports), len(res.Reports))
	}
	if epochsResp.LastSealed == nil || *epochsResp.LastSealed != uint64(res.EpochsSealed-1) {
		t.Fatalf("last_sealed = %v, want %d", epochsResp.LastSealed, res.EpochsSealed-1)
	}

	var verdicts struct {
		Epochs  []uint64          `json:"epochs"`
		Reports []json.RawMessage `json:"reports"`
	}
	getJSON(t, srv, "/api/v1/verdicts", &verdicts)
	if len(verdicts.Reports) != len(res.Reports) {
		t.Fatalf("%d verdicts via API, want %d", len(verdicts.Reports), len(res.Reports))
	}
	// Unfiltered responses are byte-identical to the canonical
	// encodings the verifier persisted.
	for i, rep := range res.Reports {
		want, err := core.EncodeEpochReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(verdicts.Reports[i], want) {
			t.Fatalf("epoch %d verdict differs from canonical encoding", rep.Epoch)
		}
	}

	// Epoch-range filter.
	var ranged struct {
		Epochs []uint64 `json:"epochs"`
	}
	getJSON(t, srv, "/api/v1/verdicts?from=1&to=2", &ranged)
	if len(ranged.Epochs) != 2 || ranged.Epochs[0] != 1 || ranged.Epochs[1] != 2 {
		t.Fatalf("from=1&to=2 returned epochs %v", ranged.Epochs)
	}
	// Time-range filter: the second epoch's interval.
	ranged.Epochs = nil
	getJSON(t, srv, "/api/v1/verdicts?from_ns=50000000&to_ns=99999999", &ranged)
	if len(ranged.Epochs) != 1 || ranged.Epochs[0] != 1 {
		t.Fatalf("time-ranged query returned epochs %v, want [1]", ranged.Epochs)
	}
}

func TestQueryAPIFilters(t *testing.T) {
	store, res := runBackedPipeline(t, 3)
	srv := httptest.NewServer(segstore.NewHandler(store, segstore.APIConfig{IntervalNS: apiIntervalNS}))
	defer srv.Close()

	// Pull a real key and domain out of the run's reports.
	var key, domain string
	for _, rep := range res.Reports {
		for _, kr := range rep.Keys {
			key = kr.Key.String()
			for _, dr := range kr.Domains {
				domain = dr.Name
				break
			}
			break
		}
		if key != "" && domain != "" {
			break
		}
	}
	if key == "" || domain == "" {
		t.Fatalf("run produced no keyed domain reports to filter on")
	}

	var filtered struct {
		Epochs  []uint64          `json:"epochs"`
		Reports []json.RawMessage `json:"reports"`
	}
	getJSON(t, srv, "/api/v1/verdicts?key="+key, &filtered)
	if len(filtered.Reports) == 0 {
		t.Fatalf("key filter %q matched nothing", key)
	}
	for _, blob := range filtered.Reports {
		rep, err := core.DecodeEpochReport(blob)
		if err != nil {
			t.Fatal(err)
		}
		for _, kr := range rep.Keys {
			if kr.Key.String() != key {
				t.Fatalf("key filter leaked key %s", kr.Key)
			}
		}
	}

	filtered.Reports = nil
	getJSON(t, srv, "/api/v1/verdicts?domain="+domain, &filtered)
	if len(filtered.Reports) == 0 {
		t.Fatalf("domain filter %q matched nothing", domain)
	}
	for _, blob := range filtered.Reports {
		rep, err := core.DecodeEpochReport(blob)
		if err != nil {
			t.Fatal(err)
		}
		for _, kr := range rep.Keys {
			if len(kr.Domains) == 0 {
				t.Fatal("domain filter kept a key with no matching domains")
			}
			for _, dr := range kr.Domains {
				if dr.Name != domain {
					t.Fatalf("domain filter leaked domain %s", dr.Name)
				}
			}
		}
	}

	// Bad inputs are 400s, wrong methods 405s.
	if resp := getJSON(t, srv, "/api/v1/verdicts?key=notakey", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, srv, "/api/v1/verdicts?from=3&to=1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted range: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, srv, "/api/v1/verdicts?from_ns=abc", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from_ns: status %d, want 400", resp.StatusCode)
	}
	post, err := srv.Client().Post(srv.URL+"/api/v1/verdicts", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", post.StatusCode)
	}
}

func TestQueryAPIMetrics(t *testing.T) {
	store, res := runBackedPipeline(t, 3)
	srv := httptest.NewServer(segstore.NewHandler(store, segstore.APIConfig{IntervalNS: apiIntervalNS}))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"vpm_store_sealed_epochs",
		"vpm_store_reports",
		"vpm_violations_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if res.Violations != 0 {
		t.Fatalf("honest run produced %d violations", res.Violations)
	}
}
