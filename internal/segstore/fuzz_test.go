package segstore

// Fuzzing for the durable codecs. Both decoders sit on the recovery
// path — they are fed whatever bytes a crash (or a disk) left behind,
// so totality is a correctness property, not a nicety. The committed
// seed corpus lives under testdata/fuzz/ (valid images, torn cuts,
// corrupted variants); CI's fuzz-smoke job runs both fuzzers for a
// bounded time on every push.

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"vpm/internal/receipt"
)

// fuzzSegmentImage builds a small valid two-block segment for seeding.
func fuzzSegmentImage() []byte {
	data := append([]byte(nil), segMagic[:]...)
	s0, a0 := testReceiptsRaw(3, 1)
	data = AppendBlock(data, 3, 1, s0, a0)
	data = AppendBlock(data, 3, 2, nil, nil)
	return data
}

// testReceiptsRaw mirrors the segstore_test helpers without *testing.T,
// so fuzz seeding can use it.
func testReceiptsRaw(epoch uint64, hop receipt.HOPID) ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	path := receipt.PathID{PrevHOP: hop, NextHOP: hop + 1, MaxDiffNS: 1000}
	samples := []receipt.SampleReceipt{{
		Path:    path,
		Samples: []receipt.SampleRecord{{PktID: epoch*10 + uint64(hop), TimeNS: int64(epoch)}},
	}}
	aggs := []receipt.AggReceipt{{Path: path, Agg: receipt.AggID{First: epoch, Last: epoch + 1}, PktCnt: 5}}
	return samples, aggs
}

// FuzzDecodeSegment: ScanSegment must be total — any byte string
// yields (blocks, valid, err) without panicking, the valid prefix is
// really valid (re-scanning it succeeds and yields the same blocks),
// the decoded blocks re-encode into a scannable image, and the error
// is always one of nil / ErrTornTail / ErrCorruptSegment.
func FuzzDecodeSegment(f *testing.F) {
	img := fuzzSegmentImage()
	f.Add(img)
	f.Add([]byte{})
	f.Add(segMagic[:])
	f.Add([]byte("VPMSEG1\nnot a block"))
	f.Add([]byte("WRONGMAG"))
	f.Add(img[:len(img)-3]) // torn mid-block
	f.Add(img[:11])         // torn mid-header
	corrupt := append([]byte(nil), img...)
	corrupt[len(segMagic)+5] ^= 0x40 // flips a header byte
	f.Add(corrupt)
	corruptPayload := append([]byte(nil), img...)
	corruptPayload[len(img)-40] ^= 0x01
	f.Add(corruptPayload)

	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, valid, err := ScanSegment(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		switch {
		case err == nil:
			if valid != len(data) {
				t.Fatalf("clean scan stopped at %d of %d bytes", valid, len(data))
			}
		case errors.Is(err, ErrTornTail), errors.Is(err, ErrCorruptSegment):
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
		if valid < len(segMagic) {
			return // nothing valid to re-check
		}
		// The valid prefix must re-scan cleanly to the same blocks: this
		// is the contract recovery relies on when it truncates there.
		reBlocks, reValid, reErr := ScanSegment(data[:valid])
		if reErr != nil {
			t.Fatalf("valid prefix does not re-scan: %v", reErr)
		}
		if reValid != valid || !reflect.DeepEqual(reBlocks, blocks) {
			t.Fatalf("re-scan of valid prefix diverged: %d blocks/%d bytes vs %d/%d",
				len(reBlocks), reValid, len(blocks), valid)
		}
		// Decoded blocks re-encode into an image that scans back to the
		// same blocks (the merge path concatenates such re-reads).
		out := append([]byte(nil), segMagic[:]...)
		for _, blk := range blocks {
			out = AppendBlock(out, blk.Epoch, blk.HOP, blk.Samples, blk.Aggs)
		}
		outBlocks, _, outErr := ScanSegment(out)
		if outErr != nil {
			t.Fatalf("re-encoded image does not scan: %v", outErr)
		}
		if !reflect.DeepEqual(outBlocks, blocks) {
			t.Fatalf("re-encode round trip changed the blocks")
		}
	})
}

// FuzzDecodeManifest: DecodeManifest must be total, reject everything
// inconsistent with ErrCorruptManifest, and accept exactly the images
// its own encoder produces (encode∘decode = id on the accepted set).
func FuzzDecodeManifest(f *testing.F) {
	valid, err := encodeManifest([]SegmentInfo{
		{File: "ep-0000000000000000.seg", FromEpoch: 0, ToEpoch: 0, Bytes: 64, Blocks: 2, CRC: 7, Samples: 2, Aggs: 1},
		{File: "ep-0000000000000001-0000000000000003.seg", FromEpoch: 1, ToEpoch: 3, Bytes: 128, Blocks: 6, CRC: 9, Samples: 4, Aggs: 4},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1,"entries":[]}`))
	f.Add([]byte(`{"version":2,"entries":[]}`))
	f.Add([]byte(`{"version":1,"entries":[{"file":"a.seg","from_epoch":5,"to_epoch":2,"bytes":64}]}`))
	f.Add([]byte(`{"version":1,"entries":[{"file":"a.seg","from_epoch":0,"to_epoch":3,"bytes":64},{"file":"b.seg","from_epoch":2,"to_epoch":4,"bytes":64}]}`))
	f.Add(bytes.Replace(valid, []byte(`"version": 1`), []byte(`"version": 1e1`), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptManifest) {
				t.Fatalf("rejection outside ErrCorruptManifest: %v", err)
			}
			return
		}
		for i, e := range entries {
			if e.File == "" || e.ToEpoch < e.FromEpoch {
				t.Fatalf("accepted malformed entry %d: %+v", i, e)
			}
			if i > 0 && e.FromEpoch <= entries[i-1].ToEpoch {
				t.Fatalf("accepted overlapping entries %d and %d", i-1, i)
			}
		}
		re, err := encodeManifest(entries)
		if err != nil {
			t.Fatalf("accepted entries do not re-encode: %v", err)
		}
		back, err := DecodeManifest(re)
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
		// nil and empty are the same store state; only the contents matter.
		if len(back) != len(entries) || (len(entries) > 0 && !reflect.DeepEqual(back, entries)) {
			t.Fatalf("manifest round trip changed the entries")
		}
	})
}
