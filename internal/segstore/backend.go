package segstore

import (
	"vpm/internal/core"
	"vpm/internal/receipt"
)

// Backend adapts a Store to core.StoreBackend, the hook beneath
// core.WindowedStore. The store itself speaks raw uint64 epochs so it
// has no opinion about the pipeline's epoch lifecycle; this adapter is
// the one place the two vocabularies meet.
type Backend struct {
	Store *Store
}

var _ core.StoreBackend = Backend{}

// AppendEpochHOP implements core.StoreBackend.
func (b Backend) AppendEpochHOP(epoch core.EpochID, hop receipt.HOPID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) error {
	return b.Store.Append(uint64(epoch), hop, samples, aggs)
}

// SealEpoch implements core.StoreBackend.
func (b Backend) SealEpoch(epoch core.EpochID) error {
	return b.Store.Seal(uint64(epoch))
}

// LastSealed implements core.StoreBackend.
func (b Backend) LastSealed() (core.EpochID, bool) {
	epoch, ok := b.Store.LastSealed()
	return core.EpochID(epoch), ok
}

// HasReport implements core.StoreBackend.
func (b Backend) HasReport(epoch core.EpochID) bool {
	return b.Store.HasReport(uint64(epoch))
}

// PutReport implements core.StoreBackend.
func (b Backend) PutReport(epoch core.EpochID, encoded []byte) error {
	return b.Store.PutReport(uint64(epoch), encoded)
}
