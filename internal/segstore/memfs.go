package segstore

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"sync"
)

// MemFS is an in-memory FS for tests and benchmarks: the same
// byte-level semantics as a directory (append, rename-replace,
// truncate) with none of the disk. The crash-point property test
// pairs it with FaultFS — whatever bytes landed before the injected
// fault are exactly the bytes a reopened store sees, standing in for
// the surviving on-disk state after kill -9.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory FS.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// Snapshot returns a deep copy of the current file set — the "disk
// image" a crash would leave behind.
func (m *MemFS) Snapshot() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.files))
	for name, data := range m.files {
		out[name] = append([]byte(nil), data...)
	}
	return out
}

// memFile is an append handle onto a MemFS entry.
type memFile struct {
	fs   *MemFS
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = nil
	}
	return &memFile{fs: m, name: name}, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), data...), nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	m.files[newname] = data
	delete(m.files, oldname)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size < 0 || size > int64(len(data)) {
		return fmt.Errorf("segstore: truncate %s to %d outside [0,%d]", name, size, len(data))
	}
	m.files[name] = data[:size]
	return nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS.
func (m *MemFS) SyncDir() error { return nil }

// ErrInjectedFault is the error every FaultFS-induced failure wraps,
// so tests can distinguish injected faults from real bugs.
var ErrInjectedFault = errors.New("segstore: injected fault")

// FaultFS wraps an FS and fails after a budget of mutating operations
// (writes, syncs, renames, removes, truncates) — the crash-point
// injector. Every mutating call decrements the budget; the call that
// exhausts it fails, and so does everything after, simulating a
// process that died at exactly that point. A write that exhausts the
// budget is *torn*: a prefix of its bytes is applied before the error,
// exercising the torn-tail truncation path in recovery.
//
// Reads are never failed: recovery runs against the wrapped FS
// directly, the way a restarted process reads the surviving disk.
type FaultFS struct {
	mu sync.Mutex
	fs FS
	// remaining is the mutating-operation budget; -1 once tripped.
	remaining int
	tripped   bool
}

// NewFaultFS wraps inner, allowing budget mutating operations before
// every subsequent one fails.
func NewFaultFS(inner FS, budget int) *FaultFS {
	return &FaultFS{fs: inner, remaining: budget}
}

// Tripped reports whether the injected crash point has been reached.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// spend consumes one operation from the budget, reporting whether the
// operation may proceed. The exhausting operation itself fails.
func (f *FaultFS) spend() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tripped || f.remaining <= 0 {
		f.tripped = true
		return false
	}
	f.remaining--
	return true
}

type faultFile struct {
	f    *FaultFS
	file File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if !ff.f.spend() {
		// Torn write: half the bytes land, then the "crash".
		n := len(p) / 2
		if n > 0 {
			ff.file.Write(p[:n])
		}
		return n, fmt.Errorf("%w: torn write after %d/%d bytes", ErrInjectedFault, n, len(p))
	}
	return ff.file.Write(p)
}

func (ff *faultFile) Sync() error {
	if !ff.f.spend() {
		return fmt.Errorf("%w: sync", ErrInjectedFault)
	}
	return ff.file.Sync()
}

func (ff *faultFile) Close() error { return ff.file.Close() }

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(name string) (File, error) {
	file, err := f.fs.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, file: file}, nil
}

// ReadFile implements FS (never failed; see type comment).
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.fs.ReadFile(name) }

// Rename implements FS; an exhausted budget returns an error wrapping
// ErrInjectedFault.
func (f *FaultFS) Rename(oldname, newname string) error {
	if !f.spend() {
		return fmt.Errorf("%w: rename %s", ErrInjectedFault, oldname)
	}
	return f.fs.Rename(oldname, newname)
}

// Remove implements FS; an exhausted budget returns an error wrapping
// ErrInjectedFault.
func (f *FaultFS) Remove(name string) error {
	if !f.spend() {
		return fmt.Errorf("%w: remove %s", ErrInjectedFault, name)
	}
	return f.fs.Remove(name)
}

// Truncate implements FS; an exhausted budget returns an error
// wrapping ErrInjectedFault.
func (f *FaultFS) Truncate(name string, size int64) error {
	if !f.spend() {
		return fmt.Errorf("%w: truncate %s", ErrInjectedFault, name)
	}
	return f.fs.Truncate(name, size)
}

// List implements FS (never failed).
func (f *FaultFS) List() ([]string, error) { return f.fs.List() }

// SyncDir implements FS; an exhausted budget returns an error
// wrapping ErrInjectedFault.
func (f *FaultFS) SyncDir() error {
	if !f.spend() {
		return fmt.Errorf("%w: syncdir", ErrInjectedFault)
	}
	return f.fs.SyncDir()
}
