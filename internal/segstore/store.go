package segstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"sort"
	"strings"
	"sync"

	"vpm/internal/receipt"
)

// Typed failure modes. Callers branch on these: the daemon refuses to
// boot on integrity errors (rather than starting with silently empty
// history), while the ingest path treats ErrEpochSealed as the
// no-double-count guard during recovery-by-reexecution.
var (
	// ErrEpochSealed reports an append to an epoch the manifest
	// already committed — accepting it would double-count receipts
	// that are already durable.
	ErrEpochSealed = errors.New("segstore: epoch already sealed")
	// ErrSegmentIntegrity reports a sealed segment that fails
	// recovery validation (missing, short, or failing its checksum).
	ErrSegmentIntegrity = errors.New("segstore: sealed segment fails integrity check")
	// ErrNotSealed reports a verdict-report operation against an
	// epoch that is not durably sealed — a report must never outlive
	// the evidence it judges.
	ErrNotSealed = errors.New("segstore: epoch not sealed")
)

// Options parameterizes a Store.
type Options struct {
	// FS overrides the filesystem (tests use MemFS/FaultFS). Nil
	// means a DirFS over the Open directory.
	FS FS
	// DiskRetention bounds how many sealed epochs stay on disk; 0
	// keeps everything. Compaction drops segments whose newest epoch
	// has fallen more than DiskRetention behind the last sealed one.
	DiskRetention int
	// CompactFanIn is how many adjacent small segments trigger a
	// size-tiered merge (default 8; <0 disables merging).
	CompactFanIn int
	// CompactMaxBytes caps the segments eligible for merging — files
	// at or above this size are already their tier's output (default
	// 4 MiB).
	CompactMaxBytes int64
	// AutoCompact runs Compact after every Seal, the continuous-
	// deployment mode. Off, the caller schedules compaction.
	AutoCompact bool
}

// normalize fills defaulted options.
func (o Options) normalize() Options {
	if o.CompactFanIn == 0 {
		o.CompactFanIn = 8
	}
	if o.CompactMaxBytes == 0 {
		o.CompactMaxBytes = 4 << 20
	}
	return o
}

// RecoveryStats reports what Open found and did — the daemon logs it
// at boot, and the kill-9 e2e harness asserts over it.
type RecoveryStats struct {
	// SealedEpochs and HasSealed/LastSealed describe the durable
	// world recovered from the manifest.
	SealedEpochs int    `json:"sealed_epochs"`
	HasSealed    bool   `json:"has_sealed"`
	LastSealed   uint64 `json:"last_sealed"`
	// Reports counts the persisted per-epoch verdict reports.
	Reports int `json:"reports"`
	// PartialSegments counts unsealed segments dropped (the epoch in
	// flight when the process died); PartialBlocksDropped counts the
	// intact blocks inside them and TornBytes the garbage after the
	// tear point.
	PartialSegments      int   `json:"partial_segments"`
	PartialBlocksDropped int   `json:"partial_blocks_dropped"`
	TornBytes            int64 `json:"torn_bytes"`
	// TruncatedBytes counts bytes cut from *sealed* segments that had
	// grown past their committed size (an append torn mid-crash after
	// the manifest commit).
	TruncatedBytes int64 `json:"truncated_bytes"`
	// OrphansRemoved counts stale temp files garbage-collected.
	OrphansRemoved int `json:"orphans_removed"`
}

// String renders the one-line boot summary.
func (s RecoveryStats) String() string {
	last := "none"
	if s.HasSealed {
		last = fmt.Sprintf("%d", s.LastSealed)
	}
	return fmt.Sprintf("recovered %d sealed epochs (last sealed epoch %s, %d reports); dropped %d partial segments (%d blocks, %d torn bytes), %d orphans",
		s.SealedEpochs, last, s.Reports, s.PartialSegments, s.PartialBlocksDropped, s.TornBytes, s.OrphansRemoved)
}

// activeSegment is one open (unsealed) epoch's append state.
type activeSegment struct {
	file    File
	name    string
	bytes   int64
	blocks  int
	samples int
	aggs    int
	crc     uint32 // running CRC-32C over the whole file
}

// Store is the durable epoch-segment store. All methods are safe for
// concurrent use.
type Store struct {
	mu      sync.Mutex
	fsys    FS
	opts    Options
	entries []SegmentInfo // committed manifest, sorted by FromEpoch
	active  map[uint64]*activeSegment
	reports map[uint64]bool
	buf     []byte // grow-only block-encode buffer
}

// Open opens (or initializes) the store in dir, running crash
// recovery: the manifest's world is validated segment by segment, torn
// tails are truncated, unsealed partial segments and stale temp files
// are removed. Returns the store and what recovery found. Integrity
// failures (a corrupt manifest, a sealed segment that cannot be read
// back) return typed errors — ErrCorruptManifest, ErrSegmentIntegrity;
// match with errors.Is — and no store, so the caller decides whether
// to refuse service or rebuild.
func Open(dir string, opts Options) (*Store, RecoveryStats, error) {
	opts = opts.normalize()
	var stats RecoveryStats
	fsys := opts.FS
	if fsys == nil {
		dfs, err := NewDirFS(dir)
		if err != nil {
			return nil, stats, err
		}
		fsys = dfs
	}
	s := &Store{
		fsys:    fsys,
		opts:    opts,
		active:  make(map[uint64]*activeSegment),
		reports: make(map[uint64]bool),
	}
	entries, err := loadManifest(fsys)
	if err != nil {
		return nil, stats, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].FromEpoch < entries[j].FromEpoch })
	s.entries = entries

	// Validate every sealed segment against its manifest entry.
	for _, e := range entries {
		data, err := fsys.ReadFile(e.File)
		if err != nil {
			return nil, stats, fmt.Errorf("%w: %s: %v", ErrSegmentIntegrity, e.File, err)
		}
		if int64(len(data)) < e.Bytes {
			return nil, stats, fmt.Errorf("%w: %s has %d bytes, manifest committed %d",
				ErrSegmentIntegrity, e.File, len(data), e.Bytes)
		}
		if int64(len(data)) > e.Bytes {
			// An append torn by the crash after this segment sealed;
			// the committed prefix is authoritative.
			if err := fsys.Truncate(e.File, e.Bytes); err != nil {
				return nil, stats, fmt.Errorf("%w: %s: truncating torn tail: %v", ErrSegmentIntegrity, e.File, err)
			}
			stats.TruncatedBytes += int64(len(data)) - e.Bytes
			data = data[:e.Bytes]
		}
		if got := crc32.Checksum(data, crcTable); got != e.CRC {
			return nil, stats, fmt.Errorf("%w: %s checksum %08x, manifest committed %08x",
				ErrSegmentIntegrity, e.File, got, e.CRC)
		}
		blocks, _, err := ScanSegment(data)
		if err != nil {
			return nil, stats, fmt.Errorf("%w: %s: %v", ErrSegmentIntegrity, e.File, err)
		}
		if len(blocks) != e.Blocks {
			return nil, stats, fmt.Errorf("%w: %s holds %d blocks, manifest committed %d",
				ErrSegmentIntegrity, e.File, len(blocks), e.Blocks)
		}
		for _, b := range blocks {
			if b.Epoch < e.FromEpoch || b.Epoch > e.ToEpoch {
				return nil, stats, fmt.Errorf("%w: %s holds epoch %d outside [%d,%d]",
					ErrSegmentIntegrity, e.File, b.Epoch, e.FromEpoch, e.ToEpoch)
			}
		}
	}

	// Garbage-collect everything the manifest does not vouch for.
	inManifest := make(map[string]bool, len(entries))
	for _, e := range entries {
		inManifest[e.File] = true
	}
	names, err := fsys.List()
	if err != nil {
		return nil, stats, fmt.Errorf("segstore: list data dir: %w", err)
	}
	for _, name := range names {
		switch {
		case name == manifestName || inManifest[name]:
			continue
		case name == manifestTemp || strings.HasSuffix(name, ".tmp"):
			if err := fsys.Remove(name); err != nil {
				return nil, stats, fmt.Errorf("segstore: remove stale %s: %w", name, err)
			}
			stats.OrphansRemoved++
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			// An unsealed segment: the epoch in flight at the crash.
			// Scan its valid prefix for the record, then drop it —
			// commitment is at seal, and keeping a partial epoch would
			// double-count its receipts when the epoch is rebuilt.
			data, err := fsys.ReadFile(name)
			if err != nil {
				return nil, stats, fmt.Errorf("segstore: read partial %s: %w", name, err)
			}
			blocks, valid, scanErr := ScanSegment(data)
			stats.PartialSegments++
			stats.PartialBlocksDropped += len(blocks)
			if scanErr != nil {
				stats.TornBytes += int64(len(data) - valid)
			}
			if err := fsys.Remove(name); err != nil {
				return nil, stats, fmt.Errorf("segstore: remove partial %s: %w", name, err)
			}
		case strings.HasPrefix(name, repPrefix) && strings.HasSuffix(name, repSuffix):
			epoch, perr := parseReportName(name)
			if perr == nil && s.sealedLocked(epoch) {
				if data, err := fsys.ReadFile(name); err == nil && json.Valid(data) {
					s.reports[epoch] = true
					continue
				}
			}
			// A report for an epoch that is not durably sealed (or
			// unreadable): a verdict without evidence — drop it.
			if err := fsys.Remove(name); err != nil {
				return nil, stats, fmt.Errorf("segstore: remove orphan report %s: %w", name, err)
			}
			stats.OrphansRemoved++
		}
	}
	if err := fsys.SyncDir(); err != nil {
		return nil, stats, fmt.Errorf("segstore: sync recovery cleanup: %w", err)
	}

	for _, e := range entries {
		stats.SealedEpochs += int(e.ToEpoch-e.FromEpoch) + 1
	}
	if n := len(entries); n > 0 {
		stats.HasSealed = true
		stats.LastSealed = entries[n-1].ToEpoch
	}
	stats.Reports = len(s.reports)
	return s, stats, nil
}

// Segment and report filename schemes. Single-epoch segments are
// "ep-<epoch>.seg"; compaction outputs "ep-<from>-<to>.seg".
const (
	segPrefix = "ep-"
	segSuffix = ".seg"
	repPrefix = "rep-"
	repSuffix = ".json"
)

func segmentName(epoch uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, epoch, segSuffix)
}

func mergedSegmentName(from, to uint64) string {
	return fmt.Sprintf("%s%016x-%016x%s", segPrefix, from, to, segSuffix)
}

func reportName(epoch uint64) string {
	return fmt.Sprintf("%s%016x%s", repPrefix, epoch, repSuffix)
}

// parseReportName inverts reportName.
func parseReportName(name string) (uint64, error) {
	hex := strings.TrimSuffix(strings.TrimPrefix(name, repPrefix), repSuffix)
	var epoch uint64
	if _, err := fmt.Sscanf(hex, "%016x", &epoch); err != nil || len(hex) != 16 {
		return 0, fmt.Errorf("segstore: bad report name %q", name)
	}
	return epoch, nil
}

// sealedLocked reports whether epoch is inside any committed segment.
func (s *Store) sealedLocked(epoch uint64) bool {
	return s.entryForLocked(epoch) != nil
}

// entryForLocked returns the manifest entry holding epoch, nil if
// none.
func (s *Store) entryForLocked(epoch uint64) *SegmentInfo {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].ToEpoch >= epoch })
	if i < len(s.entries) && s.entries[i].FromEpoch <= epoch {
		return &s.entries[i]
	}
	return nil
}

// Append files one HOP's receipts for an open epoch into the epoch's
// active segment. Blocks are buffered by the OS until Seal syncs the
// file — durability is a property of sealed epochs only. Appending to
// an already-sealed epoch returns ErrEpochSealed (nothing is written):
// that is the no-double-count guard recovery-by-reexecution relies on.
func (s *Store) Append(epoch uint64, hop receipt.HOPID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealedLocked(epoch) {
		return fmt.Errorf("%w: epoch %d", ErrEpochSealed, epoch)
	}
	seg, err := s.activeLocked(epoch)
	if err != nil {
		return err
	}
	s.buf = AppendBlock(s.buf[:0], epoch, hop, samples, aggs)
	if _, err := seg.file.Write(s.buf); err != nil {
		return fmt.Errorf("segstore: append epoch %d hop %d: %w", epoch, hop, err)
	}
	seg.crc = crc32.Update(seg.crc, crcTable, s.buf)
	seg.bytes += int64(len(s.buf))
	seg.blocks++
	seg.samples += len(samples)
	seg.aggs += len(aggs)
	return nil
}

// activeLocked returns (creating if needed) the epoch's open segment.
func (s *Store) activeLocked(epoch uint64) (*activeSegment, error) {
	if seg := s.active[epoch]; seg != nil {
		return seg, nil
	}
	name := segmentName(epoch)
	file, err := s.fsys.OpenAppend(name)
	if err != nil {
		return nil, fmt.Errorf("segstore: open segment for epoch %d: %w", epoch, err)
	}
	if _, err := file.Write(segMagic[:]); err != nil {
		file.Close()
		// Leave no half-born active state; the file (possibly holding a
		// torn magic) is swept as a partial segment on the next Open.
		return nil, fmt.Errorf("segstore: start segment for epoch %d: %w", epoch, err)
	}
	seg := &activeSegment{
		file:  file,
		name:  name,
		bytes: int64(len(segMagic)),
		crc:   crc32.Checksum(segMagic[:], crcTable),
	}
	s.active[epoch] = seg
	return seg, nil
}

// Seal makes epoch durable: the active segment is synced to stable
// storage and the manifest is atomically rewritten to include it. When
// Seal returns nil the epoch survives kill -9; until then it is
// discardable. Sealing an epoch with no appended receipts commits an
// empty segment (epochs with zero traffic are still epochs). Sealing
// twice returns ErrEpochSealed.
func (s *Store) Seal(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealedLocked(epoch) {
		return fmt.Errorf("%w: epoch %d", ErrEpochSealed, epoch)
	}
	seg, err := s.activeLocked(epoch)
	if err != nil {
		return err
	}
	if err := seg.file.Sync(); err != nil {
		return fmt.Errorf("segstore: sync epoch %d: %w", epoch, err)
	}
	if err := seg.file.Close(); err != nil {
		return fmt.Errorf("segstore: close epoch %d: %w", epoch, err)
	}
	// The file handle is spent either way; if the manifest commit
	// below fails, the segment is left an uncommitted orphan for the
	// next Open to sweep.
	delete(s.active, epoch)
	entry := SegmentInfo{
		File:      seg.name,
		FromEpoch: epoch,
		ToEpoch:   epoch,
		Bytes:     seg.bytes,
		Blocks:    seg.blocks,
		CRC:       seg.crc,
		Samples:   seg.samples,
		Aggs:      seg.aggs,
	}
	entries := append(append([]SegmentInfo(nil), s.entries...), entry)
	sort.Slice(entries, func(i, j int) bool { return entries[i].FromEpoch < entries[j].FromEpoch })
	if err := commitManifest(s.fsys, entries); err != nil {
		return err
	}
	s.entries = entries
	if s.opts.AutoCompact {
		if _, err := s.compactLocked(); err != nil {
			return fmt.Errorf("segstore: auto-compact after epoch %d: %w", epoch, err)
		}
	}
	return nil
}

// LastSealed returns the newest durably sealed epoch, false when
// nothing has sealed.
func (s *Store) LastSealed() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return 0, false
	}
	return s.entries[len(s.entries)-1].ToEpoch, true
}

// SealedEpochs returns every durably sealed epoch, ascending (merged
// segments expand to their full inclusive range).
func (s *Store) SealedEpochs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []uint64
	for _, e := range s.entries {
		for ep := e.FromEpoch; ep <= e.ToEpoch; ep++ {
			out = append(out, ep)
			if ep == e.ToEpoch {
				break // guard uint64 wrap at the top of the range
			}
		}
	}
	return out
}

// Sealed reports whether epoch is durably sealed.
func (s *Store) Sealed(epoch uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealedLocked(epoch)
}

// ReadEpoch returns the sealed epoch's record blocks in seal order.
// Unsealed epochs return ErrNotSealed; a sealed segment whose bytes
// fail verification returns ErrSegmentIntegrity (match with
// errors.Is).
func (s *Store) ReadEpoch(epoch uint64) ([]Block, error) {
	s.mu.Lock()
	entry := s.entryForLocked(epoch)
	if entry == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: epoch %d", ErrNotSealed, epoch)
	}
	e := *entry
	s.mu.Unlock()
	data, err := s.fsys.ReadFile(e.File)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrSegmentIntegrity, e.File, err)
	}
	blocks, _, err := ScanSegment(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrSegmentIntegrity, e.File, err)
	}
	if e.FromEpoch == e.ToEpoch {
		return blocks, nil
	}
	var out []Block
	for _, b := range blocks {
		if b.Epoch == epoch {
			out = append(out, b)
		}
	}
	return out, nil
}

// PutReport durably files the epoch's canonical verdict-report bytes
// (write-temp, sync, rename, sync-dir — the same commit discipline as
// the manifest). The epoch must be sealed first — a verdict must
// never outlive the evidence it judges — else ErrNotSealed is
// returned (match with errors.Is). Re-putting a report replaces it
// (re-verification writes identical bytes).
func (s *Store) PutReport(epoch uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sealedLocked(epoch) {
		return fmt.Errorf("%w: epoch %d has no durable evidence for a report", ErrNotSealed, epoch)
	}
	name := reportName(epoch)
	tmp := name + ".tmp"
	if err := s.fsys.Remove(tmp); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("segstore: clear stale report temp: %w", err)
	}
	f, err := s.fsys.OpenAppend(tmp)
	if err != nil {
		return fmt.Errorf("segstore: stage report for epoch %d: %w", epoch, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("segstore: stage report for epoch %d: %w", epoch, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("segstore: sync report for epoch %d: %w", epoch, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("segstore: close report for epoch %d: %w", epoch, err)
	}
	if err := s.fsys.Rename(tmp, name); err != nil {
		return fmt.Errorf("segstore: commit report for epoch %d: %w", epoch, err)
	}
	if err := s.fsys.SyncDir(); err != nil {
		return fmt.Errorf("segstore: sync report commit for epoch %d: %w", epoch, err)
	}
	s.reports[epoch] = true
	return nil
}

// HasReport reports whether a durable verdict report exists for epoch.
func (s *Store) HasReport(epoch uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reports[epoch]
}

// Report returns the epoch's stored verdict-report bytes; fs.ErrNotExist
// (wrapped) when none is filed.
func (s *Store) Report(epoch uint64) ([]byte, error) {
	s.mu.Lock()
	ok := s.reports[epoch]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("segstore: no report for epoch %d: %w", epoch, fs.ErrNotExist)
	}
	return s.fsys.ReadFile(reportName(epoch))
}

// ReportEpochs returns every epoch with a durable report, ascending.
func (s *Store) ReportEpochs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.reports))
	for epoch := range s.reports {
		out = append(out, epoch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats is the store's occupancy snapshot, the source for the metrics
// exposition.
type Stats struct {
	SealedEpochs int   `json:"sealed_epochs"`
	Segments     int   `json:"segments"`
	Bytes        int64 `json:"bytes"`
	Samples      int   `json:"samples"`
	Aggs         int   `json:"aggs"`
	Reports      int   `json:"reports"`
	ActiveEpochs int   `json:"active_epochs"`
}

// StoreStats returns the current occupancy.
func (s *Store) StoreStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Segments:     len(s.entries),
		Reports:      len(s.reports),
		ActiveEpochs: len(s.active),
	}
	for _, e := range s.entries {
		st.SealedEpochs += int(e.ToEpoch-e.FromEpoch) + 1
		st.Bytes += e.Bytes
		st.Samples += e.Samples
		st.Aggs += e.Aggs
	}
	return st
}

// Manifest returns a copy of the committed manifest entries.
func (s *Store) Manifest() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SegmentInfo(nil), s.entries...)
}

// Close releases the open segment files. Unsealed epochs stay
// discardable — Close does not seal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for epoch, seg := range s.active {
		if err := seg.file.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("segstore: close active epoch %d: %w", epoch, err)
		}
		delete(s.active, epoch)
	}
	return firstErr
}
