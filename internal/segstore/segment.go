package segstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"vpm/internal/receipt"
)

// On-disk segment format. A segment file is the 8-byte magic followed
// by zero or more record blocks, each one HOP's receipts for one
// epoch, appended in seal order:
//
//	magic:  "VPMSEG1\n"
//	block:  epoch[8] hop[4] nSamples[4] nAggs[4] payloadLen[4]
//	        payloadCRC[4] headerCRC[4]  payload[payloadLen]
//
// The payload is the receipt wire encoding (samples then aggregates,
// the canonical stream order — the same bytes a receipt.Arena encodes
// and a dissemination bundle carries). Both CRCs are CRC-32C
// (Castagnoli); headerCRC covers the 28 header bytes before it, so a
// torn or bit-rotted header is detected without trusting payloadLen.
// Everything is little-endian, like the receipt encoding.
//
// The format is append-only and self-delimiting: recovery scans
// blocks until the first incomplete or corrupt one and truncates
// there — the torn tail a crash mid-append leaves behind.

// segMagic begins every segment file.
var segMagic = [8]byte{'V', 'P', 'M', 'S', 'E', 'G', '1', '\n'}

// blockHeaderLen is the fixed block header size.
const blockHeaderLen = 32

// crcTable is the Castagnoli polynomial table (hardware-accelerated
// on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptSegment reports malformed segment bytes: a bad magic, a
// header or payload failing its checksum, or receipts that do not
// decode. A truncated (torn) tail is reported as ErrTornTail instead —
// recovery treats the two differently.
var ErrCorruptSegment = errors.New("segstore: corrupt segment")

// ErrTornTail reports a segment whose final block is incomplete — the
// signature of a crash mid-append. The valid prefix before the tear is
// intact and usable.
var ErrTornTail = errors.New("segstore: torn segment tail")

// Block is one decoded record block: one HOP's receipts for one epoch.
type Block struct {
	Epoch   uint64
	HOP     receipt.HOPID
	Samples []receipt.SampleReceipt
	Aggs    []receipt.AggReceipt
}

// AppendBlock appends the canonical block encoding for one HOP's
// sealed epoch to dst and returns the extended slice. The payload is
// encoded exactly as receipt.Arena.Encode would: samples then
// aggregates.
func AppendBlock(dst []byte, epoch uint64, hop receipt.HOPID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) []byte {
	payloadLen := 0
	for _, r := range samples {
		payloadLen += r.WireSize()
	}
	for _, r := range aggs {
		payloadLen += r.WireSize()
	}
	start := len(dst)
	var hdr [blockHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], epoch)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(hop))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(samples)))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(aggs)))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(payloadLen))
	dst = append(dst, hdr[:]...)
	for _, r := range samples {
		dst = r.AppendBinary(dst)
	}
	for _, r := range aggs {
		dst = r.AppendBinary(dst)
	}
	payload := dst[start+blockHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start+24:start+28], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(dst[start+28:start+32], crc32.Checksum(dst[start:start+28], crcTable))
	return dst
}

// EncodeBlock is AppendBlock into a fresh slice.
func EncodeBlock(epoch uint64, hop receipt.HOPID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) []byte {
	return AppendBlock(nil, epoch, hop, samples, aggs)
}

// decodeBlock parses one block from b, returning the block and the
// remaining bytes. A clean truncation (fewer bytes than the header or
// payload promise, with the present prefix intact) returns ErrTornTail;
// checksum or receipt-decode failures return ErrCorruptSegment.
func decodeBlock(b []byte) (Block, []byte, error) {
	var blk Block
	if len(b) < blockHeaderLen {
		return blk, nil, ErrTornTail
	}
	hdr := b[:blockHeaderLen]
	if crc32.Checksum(hdr[:28], crcTable) != binary.LittleEndian.Uint32(hdr[28:32]) {
		// An incomplete header overwritten by nothing is
		// indistinguishable from a corrupt one; either way the block —
		// and everything after it — is unusable. Report the stronger
		// "torn" only when the header itself was short.
		return blk, nil, fmt.Errorf("%w: block header checksum", ErrCorruptSegment)
	}
	blk.Epoch = binary.LittleEndian.Uint64(hdr[0:8])
	blk.HOP = receipt.HOPID(binary.LittleEndian.Uint32(hdr[8:12]))
	nSamples := binary.LittleEndian.Uint32(hdr[12:16])
	nAggs := binary.LittleEndian.Uint32(hdr[16:20])
	payloadLen := binary.LittleEndian.Uint32(hdr[20:24])
	wantCRC := binary.LittleEndian.Uint32(hdr[24:28])
	rest := b[blockHeaderLen:]
	if uint64(len(rest)) < uint64(payloadLen) {
		return blk, nil, ErrTornTail
	}
	payload := rest[:payloadLen]
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return blk, nil, fmt.Errorf("%w: block payload checksum", ErrCorruptSegment)
	}
	for i := uint32(0); i < nSamples; i++ {
		s, _, r, err := receipt.Decode(payload)
		if err != nil {
			return blk, nil, fmt.Errorf("%w: sample %d: %v", ErrCorruptSegment, i, err)
		}
		if s == nil {
			return blk, nil, fmt.Errorf("%w: sample %d has wrong kind", ErrCorruptSegment, i)
		}
		blk.Samples = append(blk.Samples, *s)
		payload = r
	}
	for i := uint32(0); i < nAggs; i++ {
		_, a, r, err := receipt.Decode(payload)
		if err != nil {
			return blk, nil, fmt.Errorf("%w: agg %d: %v", ErrCorruptSegment, i, err)
		}
		if a == nil {
			return blk, nil, fmt.Errorf("%w: agg %d has wrong kind", ErrCorruptSegment, i)
		}
		blk.Aggs = append(blk.Aggs, *a)
		payload = r
	}
	if len(payload) != 0 {
		return blk, nil, fmt.Errorf("%w: %d payload bytes beyond the declared receipts", ErrCorruptSegment, len(payload))
	}
	return blk, rest[payloadLen:], nil
}

// ScanSegment decodes a segment image block by block. It returns the
// decoded blocks of the valid prefix, the prefix's length in bytes
// (magic included — the truncation point for a torn file), and the
// error that stopped the scan: nil for a clean end, ErrTornTail for an
// incomplete final block, ErrCorruptSegment (wrapped) for checksum or
// decode failures. Malformed input of any shape returns; it never
// panics (FuzzDecodeSegment).
func ScanSegment(data []byte) ([]Block, int, error) {
	if len(data) < len(segMagic) {
		return nil, 0, fmt.Errorf("%w: short magic", ErrTornTail)
	}
	if [8]byte(data[:8]) != segMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorruptSegment)
	}
	var blocks []Block
	valid := len(segMagic)
	rest := data[len(segMagic):]
	for len(rest) > 0 {
		blk, r, err := decodeBlock(rest)
		if err != nil {
			return blocks, valid, err
		}
		blocks = append(blocks, blk)
		valid += len(rest) - len(r)
		rest = r
	}
	return blocks, valid, nil
}
