package segstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"sort"
)

// The manifest is the commit record: a segment exists, durably, iff
// the manifest names it. Sealing an epoch (and every compaction)
// rewrites the manifest through write-temp → fsync → rename →
// fsync-dir, so the transition from "epoch N-1 durable" to "epoch N
// durable" is a single atomic rename — a crash observes one world or
// the other, never a half-written manifest. A half-written temp left
// behind by a crash is garbage-collected on Open.

// manifestName is the committed manifest's filename; manifestTemp is
// the staging name every rewrite goes through.
const (
	manifestName = "MANIFEST"
	manifestTemp = "MANIFEST.tmp"
)

// manifestVersion guards the manifest schema.
const manifestVersion = 1

// ErrCorruptManifest reports an unreadable or inconsistent manifest —
// the store refuses to open rather than silently starting with empty
// history (a node that lost its evidence must say so loudly; see
// cmd/vpm-node's boot error path).
var ErrCorruptManifest = errors.New("segstore: corrupt manifest")

// SegmentInfo is one sealed segment's manifest entry. A freshly sealed
// segment covers one epoch (FromEpoch == ToEpoch); compaction merges
// adjacent segments into multi-epoch files.
type SegmentInfo struct {
	// File is the segment's filename within the store directory.
	File string `json:"file"`
	// FromEpoch and ToEpoch bound the epochs the segment holds
	// (inclusive).
	FromEpoch uint64 `json:"from_epoch"`
	ToEpoch   uint64 `json:"to_epoch"`
	// Bytes is the segment's committed size; recovery truncates any
	// bytes beyond it (an append torn by a crash after the last seal).
	Bytes int64 `json:"bytes"`
	// Blocks counts the record blocks, CRC is CRC-32C over the whole
	// committed file — recovery's integrity check.
	Blocks int    `json:"blocks"`
	CRC    uint32 `json:"crc32c"`
	// Samples and Aggs count the receipts held, for occupancy stats
	// and the metrics exposition.
	Samples int `json:"samples"`
	Aggs    int `json:"aggs"`
}

// manifest is the committed store state.
type manifest struct {
	Version int           `json:"version"`
	Entries []SegmentInfo `json:"entries"`
}

// DecodeManifest parses and validates manifest bytes: entries must be
// sorted by epoch, non-overlapping, with sane ranges. Malformed input
// returns an error wrapping ErrCorruptManifest, never a panic
// (FuzzDecodeSegment fuzzes this decoder too).
func DecodeManifest(data []byte) ([]SegmentInfo, error) {
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptManifest, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorruptManifest, m.Version, manifestVersion)
	}
	for i, e := range m.Entries {
		if e.File == "" || e.ToEpoch < e.FromEpoch || e.Bytes < int64(len(segMagic)) || e.Blocks < 0 {
			return nil, fmt.Errorf("%w: entry %d (%q) is malformed", ErrCorruptManifest, i, e.File)
		}
		if i > 0 && e.FromEpoch <= m.Entries[i-1].ToEpoch {
			return nil, fmt.Errorf("%w: entry %d (%q) overlaps or disorders epochs", ErrCorruptManifest, i, e.File)
		}
	}
	return m.Entries, nil
}

// encodeManifest renders the committed form.
func encodeManifest(entries []SegmentInfo) ([]byte, error) {
	sorted := append([]SegmentInfo(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].FromEpoch < sorted[j].FromEpoch })
	return json.MarshalIndent(manifest{Version: manifestVersion, Entries: sorted}, "", " ")
}

// commitManifest durably replaces the manifest with entries: temp
// write, file sync, atomic rename, directory sync. On any error the
// committed manifest is untouched (the rename either happened whole or
// not at all).
func commitManifest(fsys FS, entries []SegmentInfo) error {
	data, err := encodeManifest(entries)
	if err != nil {
		return err
	}
	// A temp left by an earlier crash is garbage; start clean.
	if err := fsys.Remove(manifestTemp); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("segstore: clear stale manifest temp: %w", err)
	}
	f, err := fsys.OpenAppend(manifestTemp)
	if err != nil {
		return fmt.Errorf("segstore: stage manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("segstore: stage manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("segstore: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("segstore: close manifest: %w", err)
	}
	if err := fsys.Rename(manifestTemp, manifestName); err != nil {
		return fmt.Errorf("segstore: commit manifest: %w", err)
	}
	if err := fsys.SyncDir(); err != nil {
		return fmt.Errorf("segstore: sync manifest commit: %w", err)
	}
	return nil
}

// loadManifest reads the committed manifest; a missing file is an
// empty store (fresh directory), anything unreadable is
// ErrCorruptManifest.
func loadManifest(fsys FS) ([]SegmentInfo, error) {
	data, err := fsys.ReadFile(manifestName)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptManifest, err)
	}
	return DecodeManifest(data)
}
