package segstore

// The crash-point property test: the store's durability contract is
// checked at EVERY possible crash point, not a sampled few. The same
// deterministic workload runs once uninterrupted to fix the expected
// state and once per mutating-operation budget N under FaultFS, which
// kills the store at exactly its Nth write/sync/rename/remove/truncate
// (tearing the fatal write). After each simulated crash the surviving
// MemFS bytes are reopened the way a restarted process would, and three
// invariants must hold at every N:
//
//  1. No durably sealed epoch is lost: every epoch whose Seal returned
//     nil is in the recovered sealed set, byte-identical to baseline.
//  2. Nothing phantom appears: the recovered sealed set is bounded by
//     the epochs the workload had attempted to seal, and every
//     surviving report decodes and matches baseline bytes.
//  3. No double-count: resuming the workload over the recovered store
//     converges to exactly the uninterrupted final state.

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"vpm/internal/receipt"
)

const (
	crashEpochs = 5
	crashReport = `{"epoch":%d,"keys":[]}`
)

var crashHops = []receipt.HOPID{0, 1}

// crashWorkload drives the deterministic workload against s for the
// given number of epochs, returning the epochs durably sealed (Seal
// returned nil), the epochs whose report write returned nil, the
// epochs a Seal was at least attempted for, and the first error hit
// (nil if the workload completed).
func crashWorkload(s *Store, epochs uint64) (durable, reported, attempted map[uint64]bool, err error) {
	durable = make(map[uint64]bool)
	reported = make(map[uint64]bool)
	attempted = make(map[uint64]bool)
	for epoch := uint64(0); epoch < epochs; epoch++ {
		for _, hop := range crashHops {
			samples, aggs := testReceipts(epoch, hop)
			if err = s.Append(epoch, hop, samples, aggs); err != nil {
				return
			}
		}
		attempted[epoch] = true
		if err = s.Seal(epoch); err != nil {
			return
		}
		durable[epoch] = true
		if err = s.PutReport(epoch, []byte(fmt.Sprintf(crashReport, epoch))); err != nil {
			return
		}
		reported[epoch] = true
	}
	return
}

// baselineState captures the uninterrupted end state: per-epoch decoded
// blocks and report bytes.
type baselineState struct {
	blocks  map[uint64][]Block
	reports map[uint64][]byte
}

func crashBaseline(t *testing.T) baselineState {
	t.Helper()
	s, _, err := Open("", Options{FS: NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := crashWorkload(s, crashEpochs); err != nil {
		t.Fatalf("uninterrupted workload failed: %v", err)
	}
	base := baselineState{blocks: make(map[uint64][]Block), reports: make(map[uint64][]byte)}
	for epoch := uint64(0); epoch < crashEpochs; epoch++ {
		blocks, err := s.ReadEpoch(epoch)
		if err != nil {
			t.Fatalf("baseline ReadEpoch(%d): %v", epoch, err)
		}
		base.blocks[epoch] = blocks
		rep, err := s.Report(epoch)
		if err != nil {
			t.Fatalf("baseline Report(%d): %v", epoch, err)
		}
		base.reports[epoch] = rep
	}
	return base
}

// totalOps counts the mutating operations of one uninterrupted
// workload (including Open's) by running it under a FaultFS whose
// budget is never exhausted.
func totalOps(t *testing.T) int {
	t.Helper()
	const huge = 1 << 20
	fault := NewFaultFS(NewMemFS(), huge)
	s, _, err := Open("", Options{FS: fault})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := crashWorkload(s, crashEpochs); err != nil {
		t.Fatalf("counting run failed: %v", err)
	}
	fault.mu.Lock()
	defer fault.mu.Unlock()
	return huge - fault.remaining
}

func TestCrashPointEveryOperation(t *testing.T) {
	base := crashBaseline(t)
	ops := totalOps(t)
	if ops < 20 {
		t.Fatalf("workload only has %d mutating ops — not exercising much", ops)
	}
	t.Logf("sweeping %d crash points", ops)

	for n := 1; n <= ops; n++ {
		mem := NewMemFS()
		fault := NewFaultFS(mem, n)

		durable := make(map[uint64]bool)
		attempted := make(map[uint64]bool)
		s, _, err := Open("", Options{FS: fault})
		if err == nil {
			durable, _, attempted, err = crashWorkload(s, crashEpochs)
		}
		if n < ops {
			if err == nil {
				t.Fatalf("budget %d/%d: workload did not crash", n, ops)
			}
			if !errors.Is(err, ErrInjectedFault) {
				t.Fatalf("budget %d: real error, not the injected fault: %v", n, err)
			}
		} else if err != nil {
			t.Fatalf("budget %d covers the whole workload but it failed: %v", n, err)
		}

		// Reboot over the surviving bytes. Recovery itself must always
		// succeed, whatever the crash left behind.
		s2, stats, err := Open("", Options{FS: mem})
		if err != nil {
			t.Fatalf("budget %d: recovery failed: %v\nstats: %s", n, err, stats)
		}

		recovered := make(map[uint64]bool)
		for _, epoch := range s2.SealedEpochs() {
			recovered[epoch] = true
		}
		// (1) every durably sealed epoch survives, bytes intact.
		for epoch := range durable {
			if !recovered[epoch] {
				t.Fatalf("budget %d: durably sealed epoch %d lost (recovered %v)", n, epoch, s2.SealedEpochs())
			}
			blocks, err := s2.ReadEpoch(epoch)
			if err != nil {
				t.Fatalf("budget %d: ReadEpoch(%d) after recovery: %v", n, epoch, err)
			}
			if !reflect.DeepEqual(blocks, base.blocks[epoch]) {
				t.Fatalf("budget %d: epoch %d blocks differ from baseline after recovery", n, epoch)
			}
		}
		// (2) nothing phantom: only attempted seals can be recovered,
		// and surviving reports are byte-exact.
		for epoch := range recovered {
			if !attempted[epoch] {
				t.Fatalf("budget %d: recovered epoch %d was never sealed", n, epoch)
			}
		}
		for _, epoch := range s2.ReportEpochs() {
			if !recovered[epoch] {
				t.Fatalf("budget %d: report for unsealed epoch %d survived recovery", n, epoch)
			}
			rep, err := s2.Report(epoch)
			if err != nil {
				t.Fatalf("budget %d: Report(%d): %v", n, epoch, err)
			}
			if want := fmt.Sprintf(crashReport, epoch); string(rep) != want {
				t.Fatalf("budget %d: epoch %d report = %q, want %q", n, epoch, rep, want)
			}
		}

		// (3) resume to convergence: redo every epoch the recovered
		// store does not hold sealed (partial epochs were dropped whole,
		// so whole-epoch redo is the correct resume granularity), and
		// re-put any missing report.
		for epoch := uint64(0); epoch < crashEpochs; epoch++ {
			if !recovered[epoch] {
				for _, hop := range crashHops {
					samples, aggs := testReceipts(epoch, hop)
					if err := s2.Append(epoch, hop, samples, aggs); err != nil {
						t.Fatalf("budget %d: resume Append(%d,%d): %v", n, epoch, hop, err)
					}
				}
				if err := s2.Seal(epoch); err != nil {
					t.Fatalf("budget %d: resume Seal(%d): %v", n, epoch, err)
				}
			}
			if !s2.HasReport(epoch) {
				if err := s2.PutReport(epoch, []byte(fmt.Sprintf(crashReport, epoch))); err != nil {
					t.Fatalf("budget %d: resume PutReport(%d): %v", n, epoch, err)
				}
			}
		}
		for epoch := uint64(0); epoch < crashEpochs; epoch++ {
			blocks, err := s2.ReadEpoch(epoch)
			if err != nil {
				t.Fatalf("budget %d: converged ReadEpoch(%d): %v", n, epoch, err)
			}
			if !reflect.DeepEqual(blocks, base.blocks[epoch]) {
				t.Fatalf("budget %d: epoch %d diverged from baseline after resume — double-count or loss", n, epoch)
			}
			rep, err := s2.Report(epoch)
			if err != nil {
				t.Fatalf("budget %d: converged Report(%d): %v", n, epoch, err)
			}
			if string(rep) != string(base.reports[epoch]) {
				t.Fatalf("budget %d: epoch %d report diverged after resume", n, epoch)
			}
		}
	}
}

// TestCrashPointWithAutoCompact repeats the sweep with AutoCompact on
// and a tight retention, so crash points also land inside compaction's
// merge/drop/commit sequence — recovery must cope with half-finished
// compaction exactly as with half-finished seals.
const compactEpochs = 8

func TestCrashPointWithAutoCompact(t *testing.T) {
	opts := func(fsys FS) Options {
		return Options{FS: fsys, AutoCompact: true, DiskRetention: 3, CompactFanIn: 2}
	}

	// Baseline final state under compaction: only the retained window
	// survives, so capture per-epoch blocks for the retained epochs.
	sBase, _, err := Open("", opts(NewMemFS()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := crashWorkload(sBase, compactEpochs); err != nil {
		t.Fatalf("uninterrupted compacting workload failed: %v", err)
	}
	baseSealed := sBase.SealedEpochs()

	const huge = 1 << 20
	fault := NewFaultFS(NewMemFS(), huge)
	sCount, _, err := Open("", opts(fault))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := crashWorkload(sCount, compactEpochs); err != nil {
		t.Fatalf("counting run failed: %v", err)
	}
	fault.mu.Lock()
	ops := huge - fault.remaining
	fault.mu.Unlock()
	t.Logf("sweeping %d crash points with auto-compaction", ops)

	for n := 1; n <= ops; n++ {
		mem := NewMemFS()
		durable := make(map[uint64]bool)
		s, _, err := Open("", opts(NewFaultFS(mem, n)))
		if err == nil {
			durable, _, _, err = crashWorkload(s, compactEpochs)
		}
		if n == ops && err != nil {
			t.Fatalf("budget %d covers the whole workload but it failed: %v", n, err)
		}

		s2, stats, err := Open("", opts(mem))
		if err != nil {
			t.Fatalf("budget %d: recovery failed: %v\nstats: %s", n, err, stats)
		}
		recovered := make(map[uint64]bool)
		for _, epoch := range s2.SealedEpochs() {
			recovered[epoch] = true
		}
		// Compaction may legitimately have dropped old durable epochs;
		// what may never vanish is anything inside the retention window
		// of the last sealed epoch *on disk*. (That can run ahead of the
		// durable set the workload observed: a crash inside Seal after
		// the manifest commit leaves the epoch durable even though the
		// call returned the injected fault — and the same Seal may have
		// already run a compaction pass against the newer horizon.)
		recoveredLast, haveRecovered := s2.LastSealed()
		if !haveRecovered && len(durable) > 0 {
			t.Fatalf("budget %d: all durable epochs lost (durable %v)", n, durable)
		}
		var keepFrom uint64
		if haveRecovered && recoveredLast+1 > 3 {
			keepFrom = recoveredLast + 1 - 3
		}
		for epoch := range durable {
			if epoch >= keepFrom && !recovered[epoch] {
				t.Fatalf("budget %d: retained durable epoch %d lost (recovered %v)", n, epoch, s2.SealedEpochs())
			}
		}
		// Recovered segments must always read back clean.
		for epoch := range recovered {
			if _, err := s2.ReadEpoch(epoch); err != nil {
				t.Fatalf("budget %d: ReadEpoch(%d): %v", n, epoch, err)
			}
		}
	}

	// Sanity: the compacting baseline really did retain only a window.
	if len(baseSealed) >= compactEpochs {
		t.Fatalf("compaction baseline retained %v — retention never kicked in", baseSealed)
	}
}
