package segstore

import (
	"reflect"
	"testing"

	"vpm/internal/receipt"
)

func TestCompactMergesSmallRuns(t *testing.T) {
	mfs := NewMemFS()
	s, _, err := Open("", Options{FS: mfs, CompactFanIn: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	hops := []receipt.HOPID{0, 1}
	fillEpochs(t, s, 10, hops)

	before := make(map[uint64][]Block)
	for _, epoch := range s.SealedEpochs() {
		blocks, err := s.ReadEpoch(epoch)
		if err != nil {
			t.Fatalf("ReadEpoch(%d): %v", epoch, err)
		}
		before[epoch] = blocks
	}

	st, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.Merges == 0 || st.SegmentsMerged < 4 {
		t.Fatalf("no merging happened: %+v", st)
	}
	if got := len(s.Manifest()); got >= 10 {
		t.Fatalf("still %d segments after compaction", got)
	}

	// Every epoch reads back byte-for-byte the same blocks.
	for epoch, want := range before {
		got, err := s.ReadEpoch(epoch)
		if err != nil {
			t.Fatalf("ReadEpoch(%d) after compact: %v", epoch, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d changed across compaction", epoch)
		}
	}

	// And across a reopen of the compacted store.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, stats, err := Open("", Options{FS: mfs, CompactFanIn: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if stats.SealedEpochs != 10 {
		t.Fatalf("recovered %d epochs, want 10", stats.SealedEpochs)
	}
	for epoch, want := range before {
		got, err := s2.ReadEpoch(epoch)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d changed across compaction + reopen (%v)", epoch, err)
		}
	}

	// No stale files: everything listed is the manifest or committed.
	names, _ := mfs.List()
	committed := map[string]bool{manifestName: true}
	for _, e := range s2.Manifest() {
		committed[e.File] = true
	}
	for _, name := range names {
		if !committed[name] {
			t.Fatalf("uncommitted file %s survived compaction", name)
		}
	}
}

func TestCompactRetentionDropsOldEpochsAndReports(t *testing.T) {
	s, _, err := Open("", Options{FS: NewMemFS(), DiskRetention: 3, CompactFanIn: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillEpochs(t, s, 8, []receipt.HOPID{0})
	for epoch := uint64(0); epoch < 8; epoch++ {
		if err := s.PutReport(epoch, []byte(`{}`)); err != nil {
			t.Fatalf("PutReport(%d): %v", epoch, err)
		}
	}

	st, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.EpochsDropped != 5 || st.SegmentsDropped != 5 || st.ReportsDropped != 5 {
		t.Fatalf("retention stats: %+v", st)
	}
	if got := s.SealedEpochs(); !reflect.DeepEqual(got, []uint64{5, 6, 7}) {
		t.Fatalf("SealedEpochs = %v, want [5 6 7]", got)
	}
	if got := s.ReportEpochs(); !reflect.DeepEqual(got, []uint64{5, 6, 7}) {
		t.Fatalf("ReportEpochs = %v, want [5 6 7]", got)
	}

	// Idempotent: a second pass with nothing aged out does nothing.
	st, err = s.Compact()
	if err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	if st.changed() {
		t.Fatalf("second pass did work: %+v", st)
	}
}

func TestAutoCompactBoundsSegmentCount(t *testing.T) {
	s, _, err := Open("", Options{FS: NewMemFS(), AutoCompact: true, DiskRetention: 4, CompactFanIn: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillEpochs(t, s, 20, []receipt.HOPID{0})
	if got := s.SealedEpochs(); !reflect.DeepEqual(got, []uint64{16, 17, 18, 19}) {
		t.Fatalf("SealedEpochs = %v, want the last 4", got)
	}
	st := s.StoreStats()
	if st.SealedEpochs != 4 {
		t.Fatalf("StoreStats.SealedEpochs = %d, want 4", st.SealedEpochs)
	}
}

func TestCompactLeavesLargeSegmentsAlone(t *testing.T) {
	// CompactMaxBytes of 1 makes every segment "large": nothing merges.
	s, _, err := Open("", Options{FS: NewMemFS(), CompactFanIn: 2, CompactMaxBytes: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillEpochs(t, s, 6, []receipt.HOPID{0})
	st, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.Merges != 0 {
		t.Fatalf("merged above the size cap: %+v", st)
	}
	if got := len(s.Manifest()); got != 6 {
		t.Fatalf("%d segments, want 6 untouched", got)
	}
}
