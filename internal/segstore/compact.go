package segstore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"sort"
)

// Compaction keeps the store's file count and footprint bounded under
// continuous operation, LSM-style but simpler: segments are already
// sorted, non-overlapping epoch ranges, so "merging" is concatenation.
//
//   - Retention: with DiskRetention = R, segments whose newest epoch
//     has fallen R or more behind the last sealed epoch are dropped,
//     along with their epochs' verdict reports (a report never
//     outlives its evidence — the invariant Open enforces).
//   - Size-tiering: a run of CompactFanIn or more adjacent segments
//     each under CompactMaxBytes is concatenated into one multi-epoch
//     segment. Files that reach CompactMaxBytes stop merging — they
//     are their tier's output.
//
// Every pass commits through the same manifest rename as Seal, staged
// merge files included, so a crash at any point leaves either the old
// world or the new one: a merged file renamed before the manifest
// commit is an uncommitted orphan the next Open sweeps (its receipts
// still live in the old segments); old files surviving after the
// commit are orphans swept the same way.

// CompactStats reports one pass's work.
type CompactStats struct {
	// SegmentsDropped / EpochsDropped / ReportsDropped are retention's
	// work; BytesReclaimed counts their bytes.
	SegmentsDropped int   `json:"segments_dropped"`
	EpochsDropped   int   `json:"epochs_dropped"`
	ReportsDropped  int   `json:"reports_dropped"`
	BytesReclaimed  int64 `json:"bytes_reclaimed"`
	// Merges counts size-tier concatenations; SegmentsMerged the input
	// files consumed.
	Merges         int `json:"merges"`
	SegmentsMerged int `json:"segments_merged"`
}

// changed reports whether the pass did anything.
func (c CompactStats) changed() bool {
	return c.SegmentsDropped > 0 || c.Merges > 0 || c.ReportsDropped > 0
}

// Compact runs one retention-and-merge pass. Safe to call at any
// cadence; a pass with nothing to do is cheap and commits nothing.
func (s *Store) Compact() (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() (CompactStats, error) {
	var st CompactStats
	entries := append([]SegmentInfo(nil), s.entries...)
	var obsolete []string // files to remove after the manifest commit

	// Retention: drop whole segments strictly older than the horizon.
	// Segments straddling the horizon stay until they age out whole —
	// dropping must never split a committed file.
	var keepFrom uint64
	if r := s.opts.DiskRetention; r > 0 && len(entries) > 0 {
		last := entries[len(entries)-1].ToEpoch
		if last+1 > uint64(r) {
			keepFrom = last + 1 - uint64(r)
		}
		kept := entries[:0]
		for _, e := range entries {
			if e.ToEpoch < keepFrom {
				obsolete = append(obsolete, e.File)
				st.SegmentsDropped++
				st.EpochsDropped += int(e.ToEpoch-e.FromEpoch) + 1
				st.BytesReclaimed += e.Bytes
				continue
			}
			kept = append(kept, e)
		}
		entries = kept
	}

	// Size-tiering: concatenate eligible runs. With retention on, a
	// merged segment may never span more epochs than the retention
	// window — otherwise it would always straddle the moving horizon
	// (straddlers are never split) and retention could never fire.
	// Capped tiles age out whole.
	if s.opts.CompactFanIn > 0 {
		var span uint64
		if r := s.opts.DiskRetention; r > 0 {
			span = uint64(r)
		}
		var out []SegmentInfo
		for i := 0; i < len(entries); {
			j := i
			for j < len(entries) && entries[j].Bytes < s.opts.CompactMaxBytes &&
				(span == 0 || entries[j].ToEpoch-entries[i].FromEpoch+1 <= span) {
				j++
			}
			if j-i >= s.opts.CompactFanIn {
				merged, err := s.mergeRunLocked(entries[i:j])
				if err != nil {
					return st, err
				}
				for _, e := range entries[i:j] {
					obsolete = append(obsolete, e.File)
				}
				out = append(out, merged)
				st.Merges++
				st.SegmentsMerged += j - i
				i = j
				continue
			}
			if j == i {
				// entries[i] is at or above the size cap: its own tier.
				out = append(out, entries[i])
				i++
				continue
			}
			out = append(out, entries[i:j]...)
			i = j
		}
		entries = out
	}

	// Reports for retention-dropped epochs.
	var dropReports []uint64
	for epoch := range s.reports {
		if epoch < keepFrom {
			dropReports = append(dropReports, epoch)
		}
	}
	sort.Slice(dropReports, func(i, j int) bool { return dropReports[i] < dropReports[j] })

	if !st.changed() && len(dropReports) == 0 {
		return st, nil
	}
	if err := commitManifest(s.fsys, entries); err != nil {
		return st, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].FromEpoch < entries[j].FromEpoch })
	s.entries = entries

	// Old files are garbage now; failing to remove one only costs an
	// orphan the next Open sweeps, so removal errors are not fatal to
	// the committed state — but they are still reported.
	var firstErr error
	for _, name := range obsolete {
		if err := s.fsys.Remove(name); err != nil && !errors.Is(err, fs.ErrNotExist) && firstErr == nil {
			firstErr = fmt.Errorf("segstore: remove compacted %s: %w", name, err)
		}
	}
	for _, epoch := range dropReports {
		if err := s.fsys.Remove(reportName(epoch)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			if firstErr == nil {
				firstErr = fmt.Errorf("segstore: remove retired report for epoch %d: %w", epoch, err)
			}
			continue
		}
		delete(s.reports, epoch)
		st.ReportsDropped++
	}
	if err := s.fsys.SyncDir(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("segstore: sync compaction cleanup: %w", err)
	}
	return st, firstErr
}

// mergeRunLocked concatenates a run of adjacent segments into one
// staged, durably renamed multi-epoch file and returns its manifest
// entry. The inputs are untouched; the caller retires them after the
// manifest commit.
func (s *Store) mergeRunLocked(run []SegmentInfo) (SegmentInfo, error) {
	out := append([]byte(nil), segMagic[:]...)
	entry := SegmentInfo{
		FromEpoch: run[0].FromEpoch,
		ToEpoch:   run[len(run)-1].ToEpoch,
	}
	for _, e := range run {
		data, err := s.fsys.ReadFile(e.File)
		if err != nil {
			return entry, fmt.Errorf("%w: merging %s: %v", ErrSegmentIntegrity, e.File, err)
		}
		if int64(len(data)) != e.Bytes || crc32.Checksum(data, crcTable) != e.CRC {
			return entry, fmt.Errorf("%w: merging %s: size or checksum drifted from manifest", ErrSegmentIntegrity, e.File)
		}
		out = append(out, data[len(segMagic):]...)
		entry.Blocks += e.Blocks
		entry.Samples += e.Samples
		entry.Aggs += e.Aggs
	}
	entry.File = mergedSegmentName(entry.FromEpoch, entry.ToEpoch)
	entry.Bytes = int64(len(out))
	entry.CRC = crc32.Checksum(out, crcTable)

	tmp := entry.File + ".tmp"
	if err := s.fsys.Remove(tmp); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return entry, fmt.Errorf("segstore: clear stale merge temp: %w", err)
	}
	// A leftover target from an interrupted earlier merge of the same
	// range is stale; the rename below replaces it atomically.
	f, err := s.fsys.OpenAppend(tmp)
	if err != nil {
		return entry, fmt.Errorf("segstore: stage merge %s: %w", entry.File, err)
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		return entry, fmt.Errorf("segstore: stage merge %s: %w", entry.File, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return entry, fmt.Errorf("segstore: sync merge %s: %w", entry.File, err)
	}
	if err := f.Close(); err != nil {
		return entry, fmt.Errorf("segstore: close merge %s: %w", entry.File, err)
	}
	if err := s.fsys.Rename(tmp, entry.File); err != nil {
		return entry, fmt.Errorf("segstore: place merge %s: %w", entry.File, err)
	}
	if err := s.fsys.SyncDir(); err != nil {
		return entry, fmt.Errorf("segstore: sync merge %s: %w", entry.File, err)
	}
	return entry, nil
}
