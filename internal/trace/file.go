package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"vpm/internal/packet"
)

// Binary trace file format: an 8-byte magic, a record count, then
// fixed-width little-endian records. The format exists so generated
// workloads can be saved once and replayed by benchmarks and the
// cmd/vpm-trace tool without regeneration.

// Magic identifies trace files (version embedded in the last byte).
var Magic = [8]byte{'V', 'P', 'M', 'T', 'R', 'C', '0', '1'}

// recordLen is the fixed encoded size of one packet record.
const recordLen = 40

// ErrBadMagic is returned when a file does not start with Magic.
var ErrBadMagic = errors.New("trace: bad magic (not a VPM trace file)")

// Write serializes pkts to w in the trace file format.
func Write(w io.Writer, pkts []packet.Packet) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(pkts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordLen]byte
	for i := range pkts {
		encodeRecord(&rec, &pkts[i])
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeRecord(rec *[recordLen]byte, p *packet.Packet) {
	binary.LittleEndian.PutUint64(rec[0:8], uint64(p.SentAt))
	rec[8] = p.TOS
	rec[9] = p.TTL
	rec[10] = uint8(p.Proto)
	rec[11] = p.TCPFlags
	binary.LittleEndian.PutUint16(rec[12:14], p.TotalLen)
	binary.LittleEndian.PutUint16(rec[14:16], p.IPID)
	copy(rec[16:20], p.Src[:])
	copy(rec[20:24], p.Dst[:])
	binary.LittleEndian.PutUint16(rec[24:26], p.SrcPort)
	binary.LittleEndian.PutUint16(rec[26:28], p.DstPort)
	binary.LittleEndian.PutUint32(rec[28:32], p.Seq)
	binary.LittleEndian.PutUint32(rec[32:36], p.Ack)
	binary.LittleEndian.PutUint16(rec[36:38], p.Window)
	// rec[38:40] reserved.
	rec[38], rec[39] = 0, 0
}

func decodeRecord(rec *[recordLen]byte, p *packet.Packet) {
	p.SentAt = int64(binary.LittleEndian.Uint64(rec[0:8]))
	p.TOS = rec[8]
	p.TTL = rec[9]
	p.Proto = packet.Proto(rec[10])
	p.TCPFlags = rec[11]
	p.TotalLen = binary.LittleEndian.Uint16(rec[12:14])
	p.IPID = binary.LittleEndian.Uint16(rec[14:16])
	copy(p.Src[:], rec[16:20])
	copy(p.Dst[:], rec[20:24])
	p.SrcPort = binary.LittleEndian.Uint16(rec[24:26])
	p.DstPort = binary.LittleEndian.Uint16(rec[26:28])
	p.Seq = binary.LittleEndian.Uint32(rec[28:32])
	p.Ack = binary.LittleEndian.Uint32(rec[32:36])
	p.Window = binary.LittleEndian.Uint16(rec[36:38])
}

// Read parses a trace file written by Write. A stream that does not
// start with the trace magic returns ErrBadMagic (match with
// errors.Is).
func Read(r io.Reader) ([]packet.Packet, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	const maxRecords = 1 << 28 // refuse absurd files rather than OOM
	if n > maxRecords {
		return nil, fmt.Errorf("trace: record count %d exceeds limit", n)
	}
	out := make([]packet.Packet, n)
	var rec [recordLen]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		decodeRecord(&rec, &out[i])
	}
	return out, nil
}
