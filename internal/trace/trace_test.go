package trace

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"vpm/internal/packet"
)

func testConfig(rate float64, durNS int64) Config {
	return Config{
		Seed:       1,
		DurationNS: durNS,
		Paths:      []PathSpec{DefaultPath(rate)},
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := testConfig(10000, int64(200e6))
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestGenerateRate(t *testing.T) {
	const rate = 50000.0
	const dur = int64(1e9)
	pkts, err := Generate(testConfig(rate, dur))
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(pkts))
	if math.Abs(got-rate)/rate > 0.05 {
		t.Errorf("generated %v packets for rate %v over 1s", got, rate)
	}
}

func TestGenerateTimeOrdered(t *testing.T) {
	cfg := Config{
		Seed:       2,
		DurationNS: int64(100e6),
		Paths: []PathSpec{
			DefaultPath(20000),
			{
				SrcPrefix: packet.MakePrefix(10, 2, 0, 0, 16),
				DstPrefix: packet.MakePrefix(172, 17, 0, 0, 16),
				RatePPS:   30000,
			},
		},
	}
	pkts, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pkts); i++ {
		if pkts[i].SentAt < pkts[i-1].SentAt {
			t.Fatalf("out of order at %d: %d < %d", i, pkts[i].SentAt, pkts[i-1].SentAt)
		}
	}
}

func TestGenerateAddressesInPrefixes(t *testing.T) {
	cfg := testConfig(20000, int64(100e6))
	spec := cfg.Paths[0]
	pkts, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) == 0 {
		t.Fatal("empty trace")
	}
	for i := range pkts {
		if !spec.SrcPrefix.Contains(pkts[i].Src) {
			t.Fatalf("packet %d src %v outside %v", i, pkts[i].Src, spec.SrcPrefix)
		}
		if !spec.DstPrefix.Contains(pkts[i].Dst) {
			t.Fatalf("packet %d dst %v outside %v", i, pkts[i].Dst, spec.DstPrefix)
		}
	}
}

func TestGenerateMeanPacketSize(t *testing.T) {
	pkts, err := Generate(testConfig(50000, int64(1e9)))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := range pkts {
		sum += float64(pkts[i].TotalLen)
	}
	mean := sum / float64(len(pkts))
	// The paper's back-of-envelope assumes ~400 B average.
	if mean < 330 || mean > 480 {
		t.Errorf("mean packet size %v, want ~400", mean)
	}
}

func TestGenerateProtocolMix(t *testing.T) {
	pkts, err := Generate(testConfig(50000, int64(500e6)))
	if err != nil {
		t.Fatal(err)
	}
	udp := 0
	for i := range pkts {
		switch pkts[i].Proto {
		case packet.ProtoUDP:
			udp++
		case packet.ProtoTCP:
		default:
			t.Fatalf("unexpected proto %v", pkts[i].Proto)
		}
	}
	frac := float64(udp) / float64(len(pkts))
	if frac < 0.05 || frac > 0.5 {
		t.Errorf("UDP fraction %v, want near 0.2", frac)
	}
}

func TestGenerateDigestUniqueness(t *testing.T) {
	// Receipt matching relies on mostly-unique digests within a path.
	pkts, err := Generate(testConfig(100000, int64(1e9)))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]struct{}, len(pkts))
	dups := 0
	for i := range pkts {
		d := pkts[i].Digest(42)
		if _, dup := seen[d]; dup {
			dups++
		}
		seen[d] = struct{}{}
	}
	if frac := float64(dups) / float64(len(pkts)); frac > 0.001 {
		t.Errorf("duplicate digest fraction %v too high", frac)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Config{DurationNS: 0, Paths: []PathSpec{DefaultPath(1)}}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := NewGenerator(Config{DurationNS: 1e9}); err == nil {
		t.Error("no paths accepted")
	}
	cfg := testConfig(0, 1e9)
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestConfigTable(t *testing.T) {
	cfg := testConfig(1000, int64(1e6))
	tbl := cfg.Table()
	if tbl.Len() != 2 {
		t.Fatalf("table has %d prefixes", tbl.Len())
	}
	pkts, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		if _, ok := tbl.Classify(&pkts[i]); !ok {
			t.Fatalf("packet %d unclassifiable", i)
		}
	}
}

func TestExtractPath(t *testing.T) {
	cfg := Config{
		Seed:       3,
		DurationNS: int64(50e6),
		Paths: []PathSpec{
			DefaultPath(20000),
			{
				SrcPrefix: packet.MakePrefix(10, 9, 0, 0, 16),
				DstPrefix: packet.MakePrefix(172, 31, 0, 0, 16),
				RatePPS:   20000,
			},
		},
	}
	pkts, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p0 := ExtractPath(pkts, cfg.Paths[0].SrcPrefix, cfg.Paths[0].DstPrefix)
	p1 := ExtractPath(pkts, cfg.Paths[1].SrcPrefix, cfg.Paths[1].DstPrefix)
	if len(p0)+len(p1) != len(pkts) {
		t.Fatalf("extraction lost packets: %d + %d != %d", len(p0), len(p1), len(pkts))
	}
	if len(p0) == 0 || len(p1) == 0 {
		t.Fatal("a path generated no packets")
	}
}

func TestFileRoundTrip(t *testing.T) {
	pkts, err := Generate(testConfig(20000, int64(100e6)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("count mismatch %d != %d", len(got), len(pkts))
	}
	for i := range got {
		if got[i] != pkts[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], pkts[i])
		}
	}
}

func TestFileEmptyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("expected empty trace")
	}
}

func TestFileBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRACEFILE???"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestFileTruncated(t *testing.T) {
	pkts, _ := Generate(testConfig(5000, int64(10e6)))
	var buf bytes.Buffer
	if err := Write(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("truncated file accepted")
	}
	if _, err := Read(bytes.NewReader(raw[:4])); err == nil {
		t.Error("header-truncated file accepted")
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := testConfig(100000, int64(100e6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
