// Package trace generates and stores synthetic packet traces that stand
// in for the CAIDA Tier-1 traces used in the paper's evaluation
// (DESIGN.md documents the substitution). The paper uses traces only to
// drive the hashing, sampling and aggregation machinery with a
// realistic packet stream — what matters is header entropy, a realistic
// packet-size mix, and well-defined per-path packet sequences, all of
// which the generator reproduces deterministically from a seed.
//
// The workload model: each HOP path (source/destination origin-prefix
// pair) carries a population of concurrent flows; flow sizes are
// heavy-tailed (Pareto); packet arrivals are Poisson at a configurable
// per-path rate; packet sizes follow the classic trimodal Internet mix
// (40/576/1500 bytes) weighted to a ~400-byte mean, matching the
// paper's back-of-envelope assumption.
package trace

import (
	"fmt"
	"math"

	"vpm/internal/packet"
	"vpm/internal/stats"
)

// PathSpec describes the traffic of one HOP path.
type PathSpec struct {
	// SrcPrefix and DstPrefix are the origin prefixes naming the path.
	SrcPrefix, DstPrefix packet.Prefix
	// RatePPS is the mean packet arrival rate in packets per second.
	RatePPS float64
	// ActiveFlows is the number of concurrently active flows
	// multiplexed on the path (default 32).
	ActiveFlows int
	// MeanFlowPkts is the mean flow size in packets, drawn from a
	// Pareto distribution with shape 1.5 (default 50).
	MeanFlowPkts float64
	// UDPFraction is the probability that a new flow is UDP rather
	// than TCP (default 0.2).
	UDPFraction float64
}

// Config configures a synthetic trace.
type Config struct {
	// Seed makes the trace fully deterministic.
	Seed uint64
	// DurationNS is the trace length in simulated nanoseconds.
	DurationNS int64
	// Paths lists the HOP paths carried in the trace.
	Paths []PathSpec
}

// Table builds the origin-prefix lookup table covering all paths in
// the config, for use by HOP classifiers.
func (c Config) Table() *packet.Table {
	var ps []packet.Prefix
	for _, p := range c.Paths {
		ps = append(ps, p.SrcPrefix, p.DstPrefix)
	}
	return packet.NewTable(ps)
}

// DefaultPath returns a PathSpec with the defaults documented on the
// fields, carrying ratePPS packets per second between two /16s.
func DefaultPath(ratePPS float64) PathSpec {
	return PathSpec{
		SrcPrefix:    packet.MakePrefix(10, 1, 0, 0, 16),
		DstPrefix:    packet.MakePrefix(172, 16, 0, 0, 16),
		RatePPS:      ratePPS,
		ActiveFlows:  32,
		MeanFlowPkts: 50,
		UDPFraction:  0.2,
	}
}

// flow is one active transport flow on a path.
type flow struct {
	src, dst         [4]byte
	srcPort, dstPort uint16
	proto            packet.Proto
	remaining        int
	seq              uint32
	ipid             uint16
}

// pathState is the evolving generator state of one path.
type pathState struct {
	spec     PathSpec
	rng      *stats.RNG
	flows    []flow
	nextTime int64 // SentAt of the next packet on this path
	gapNS    float64
}

// Generator produces a time-ordered packet stream for a Config. It is
// a pull-based iterator: call Next until it returns false. Generators
// are not safe for concurrent use.
type Generator struct {
	cfg   Config
	paths []*pathState

	// pending holds a packet pulled past a NextChunk limit, waiting
	// for the next call.
	pending    packet.Packet
	hasPending bool
}

// NewGenerator validates cfg and prepares a deterministic generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.DurationNS <= 0 {
		return nil, fmt.Errorf("trace: non-positive duration %d", cfg.DurationNS)
	}
	if len(cfg.Paths) == 0 {
		return nil, fmt.Errorf("trace: no paths configured")
	}
	root := stats.NewRNG(cfg.Seed)
	g := &Generator{cfg: cfg}
	for i, spec := range cfg.Paths {
		if spec.RatePPS <= 0 {
			return nil, fmt.Errorf("trace: path %d has non-positive rate", i)
		}
		if spec.ActiveFlows <= 0 {
			spec.ActiveFlows = 32
		}
		if spec.MeanFlowPkts <= 0 {
			spec.MeanFlowPkts = 50
		}
		ps := &pathState{
			spec:  spec,
			rng:   root.Split(),
			gapNS: 1e9 / spec.RatePPS,
		}
		ps.flows = make([]flow, spec.ActiveFlows)
		for j := range ps.flows {
			ps.flows[j] = ps.newFlow()
		}
		// Desynchronize path start times.
		ps.nextTime = int64(ps.rng.ExpFloat64() * ps.gapNS)
		g.paths = append(g.paths, ps)
	}
	return g, nil
}

// newFlow starts a fresh flow on the path.
func (ps *pathState) newFlow() flow {
	r := ps.rng
	f := flow{
		srcPort: uint16(1024 + r.Intn(64000)),
		dstPort: wellKnownPort(r),
		proto:   packet.ProtoTCP,
		seq:     r.Uint32(),
		ipid:    uint16(r.Uint32()),
	}
	if r.Bool(ps.spec.UDPFraction) {
		f.proto = packet.ProtoUDP
	}
	f.src = addrIn(ps.spec.SrcPrefix, r)
	f.dst = addrIn(ps.spec.DstPrefix, r)
	// Pareto(1.5) with mean spec.MeanFlowPkts => xm = mean/3.
	xm := ps.spec.MeanFlowPkts / 3
	if xm < 1 {
		xm = 1
	}
	f.remaining = int(math.Ceil(r.Pareto(1.5, xm)))
	if f.remaining < 1 {
		f.remaining = 1
	}
	return f
}

// wellKnownPort picks a destination port from a realistic mix.
func wellKnownPort(r *stats.RNG) uint16 {
	ports := []uint16{80, 443, 443, 443, 53, 22, 25, 8080, 3478, 5060}
	return ports[r.Intn(len(ports))]
}

// addrIn draws a host address uniformly inside prefix p.
func addrIn(p packet.Prefix, r *stats.RNG) [4]byte {
	hostBits := 32 - p.Bits
	var host uint32
	if hostBits > 0 {
		host = uint32(r.Uint64()) & (1<<uint(hostBits) - 1)
	}
	base := uint32(p.Addr[0])<<24 | uint32(p.Addr[1])<<16 | uint32(p.Addr[2])<<8 | uint32(p.Addr[3])
	v := base | host
	return [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// packetSize draws a size from the trimodal Internet mix with a mean
// near 400 bytes (40 B with p=.55, 576 B with p=.30, 1500 B with
// p=.15).
func packetSize(r *stats.RNG) uint16 {
	u := r.Float64()
	switch {
	case u < 0.55:
		return 40
	case u < 0.85:
		return 576
	default:
		return 1500
	}
}

// Next fills p with the next packet in global time order and returns
// true, or returns false when the configured duration is exhausted.
func (g *Generator) Next(p *packet.Packet) bool {
	if g.hasPending {
		*p, g.hasPending = g.pending, false
		return true
	}
	// Pick the path with the earliest next arrival.
	var best *pathState
	for _, ps := range g.paths {
		if best == nil || ps.nextTime < best.nextTime {
			best = ps
		}
	}
	if best == nil || best.nextTime >= g.cfg.DurationNS {
		return false
	}
	best.emit(p)
	return true
}

// NextChunk pulls every remaining packet sent before limitNS — the
// epoch-sized slice a continuous pipeline feeds per interval. The
// packet stream is identical to draining Next packet by packet:
// NextChunk just cuts it at send-time boundaries (the first packet at
// or past the limit is held back for the next call). Returns nil when
// the stream has no packets before the limit.
func (g *Generator) NextChunk(limitNS int64) []packet.Packet {
	var out []packet.Packet
	var p packet.Packet
	for g.Next(&p) {
		if p.SentAt >= limitNS {
			g.pending, g.hasPending = p, true
			break
		}
		out = append(out, p)
	}
	return out
}

// emit writes the path's next packet into p and advances path state.
func (ps *pathState) emit(p *packet.Packet) {
	r := ps.rng
	fi := r.Intn(len(ps.flows))
	f := &ps.flows[fi]

	size := packetSize(r)
	*p = packet.Packet{
		TotalLen: size,
		IPID:     f.ipid,
		TTL:      64,
		Proto:    f.proto,
		Src:      f.src,
		Dst:      f.dst,
		SrcPort:  f.srcPort,
		DstPort:  f.dstPort,
		SentAt:   ps.nextTime,
	}
	if f.proto == packet.ProtoTCP {
		p.Seq = f.seq
		p.TCPFlags = 0x10 // ACK
		p.Window = 65535
		payload := int(size) - packet.IPv4HeaderLen - packet.TCPHeaderLen
		if payload < 1 {
			payload = 1
		}
		f.seq += uint32(payload)
	}
	f.ipid++
	f.remaining--
	if f.remaining <= 0 {
		*f = ps.newFlow()
	}
	ps.nextTime += int64(r.ExpFloat64() * ps.gapNS)
}

// Generate materializes the whole trace as a slice. For the rates the
// experiments use (~100k pkt/s over a few seconds) this is a few
// hundred thousand structs — fine to hold in memory.
func Generate(cfg Config) ([]packet.Packet, error) {
	g, err := NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	var out []packet.Packet
	var p packet.Packet
	for g.Next(&p) {
		out = append(out, p)
	}
	return out, nil
}

// ExtractPath filters pkts to those whose addresses fall in the given
// path's prefixes — the paper's "extract a packet sequence" operation
// (§7.2 step 1).
func ExtractPath(pkts []packet.Packet, src, dst packet.Prefix) []packet.Packet {
	var out []packet.Packet
	for i := range pkts {
		if src.Contains(pkts[i].Src) && dst.Contains(pkts[i].Dst) {
			out = append(out, pkts[i])
		}
	}
	return out
}
