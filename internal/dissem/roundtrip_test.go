package dissem

import (
	"bytes"
	"crypto/ed25519"
	"testing"

	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/stats"
)

// Randomized bundle round-trip property, fixed seeds: for any bundle,
// Encode → DecodeBundle → Encode is byte-identical (v2), and the
// legacy v1 path round-trips for pre-epoch bundles.

func randBundle(rng *stats.RNG, epoch uint64) *Bundle {
	randPath := func() receipt.PathID {
		return receipt.PathID{
			Key: packet.PathKey{
				Src: packet.MakePrefix(byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), rng.Intn(33)),
				Dst: packet.MakePrefix(byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), rng.Intn(33)),
			},
			PrevHOP:   receipt.HOPID(rng.Uint32()),
			NextHOP:   receipt.HOPID(rng.Uint32()),
			MaxDiffNS: int64(rng.Uint64()),
		}
	}
	b := &Bundle{
		Origin: receipt.HOPID(rng.Uint32()),
		Seq:    rng.Uint64(),
		Epoch:  epoch,
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		sr := receipt.SampleReceipt{Path: randPath()}
		for j, m := 0, rng.Intn(10); j < m; j++ {
			sr.Samples = append(sr.Samples, receipt.SampleRecord{PktID: rng.Uint64(), TimeNS: int64(rng.Uint64())})
		}
		b.Samples = append(b.Samples, sr)
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		ar := receipt.AggReceipt{
			Path:   randPath(),
			Agg:    receipt.AggID{First: rng.Uint64(), Last: rng.Uint64()},
			PktCnt: rng.Uint64(),
		}
		for j, m := 0, rng.Intn(4); j < m; j++ {
			ar.AggTrans = append(ar.AggTrans, receipt.SampleRecord{PktID: rng.Uint64(), TimeNS: int64(rng.Uint64())})
		}
		b.Aggs = append(b.Aggs, ar)
	}
	return b
}

// TestBundleRoundTripProperty: 500 random epoch-tagged bundles
// round-trip byte-identically through the v2 codec.
func TestBundleRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(0xabc1)
	for i := 0; i < 500; i++ {
		b := randBundle(rng, rng.Uint64())
		enc := b.Encode()
		got, err := DecodeBundle(enc)
		if err != nil {
			t.Fatalf("iteration %d: decode failed: %v", i, err)
		}
		re := got.Encode()
		if !bytes.Equal(re, enc) {
			t.Fatalf("iteration %d: v2 encode→decode→encode not byte-identical", i)
		}
	}
}

// TestEquivocationIgnoresV1V2Migration is the regression test for the
// cross-version false positive: an origin serving the same interval
// once as its archived v1 payload and once as the v2 re-encoding has
// signed two byte-different payloads — but not two contradictory
// statements. FindEquivocation must forgive the semantically-equal
// pair and still indict a genuinely mutated bundle.
func TestEquivocationIgnoresV1V2Migration(t *testing.T) {
	var seed [32]byte
	seed[0] = 9
	signer := NewSigner(seed)
	reg := Registry{3: signer.Public()}

	b := fuzzBundle(0)
	v1Payload, err := b.EncodeV1()
	if err != nil {
		t.Fatal(err)
	}
	v1Signed := SignedBundle{Payload: v1Payload, Sig: ed25519.Sign(signer.priv, v1Payload)}
	v2Signed := signer.Sign(b)

	if eqs := FindEquivocation(reg, 3, []SignedBundle{v1Signed}, []SignedBundle{v2Signed}); len(eqs) != 0 {
		t.Fatalf("v1/v2 re-encodings of the same bundle flagged as equivocation: %v", eqs)
	}

	// A real contradiction under the same seq must still be caught.
	mut := fuzzBundle(0)
	mut.Samples[0].Samples[0].TimeNS += 5
	mutSigned := signer.Sign(mut)
	if eqs := FindEquivocation(reg, 3, []SignedBundle{v1Signed}, []SignedBundle{mutSigned}); len(eqs) != 1 {
		t.Fatalf("mutated bundle not flagged: %v", eqs)
	}
}

// TestBundleV1RoundTripProperty: pre-epoch bundles round-trip through
// the legacy v1 codec, decode with epoch 0, and refuse to carry a
// non-zero epoch.
func TestBundleV1RoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(0xabc2)
	for i := 0; i < 500; i++ {
		b := randBundle(rng, 0)
		enc, err := b.EncodeV1()
		if err != nil {
			t.Fatalf("iteration %d: v1 encode failed: %v", i, err)
		}
		got, err := DecodeBundle(enc)
		if err != nil {
			t.Fatalf("iteration %d: v1 decode failed: %v", i, err)
		}
		if got.Epoch != 0 {
			t.Fatalf("iteration %d: v1 bundle decoded with epoch %d", i, got.Epoch)
		}
		re, err := got.EncodeV1()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("iteration %d: v1 encode→decode→encode not byte-identical", i)
		}
		// And the v2 re-encoding of the same bundle is decodable and
		// semantically equal.
		v2, err := DecodeBundle(got.Encode())
		if err != nil {
			t.Fatalf("iteration %d: v2 re-encode did not decode: %v", i, err)
		}
		if v2.Origin != got.Origin || v2.Seq != got.Seq || len(v2.Samples) != len(got.Samples) || len(v2.Aggs) != len(got.Aggs) {
			t.Fatalf("iteration %d: v1→v2 migration changed the bundle", i)
		}
	}
	if _, err := randBundle(rng, 7).EncodeV1(); err == nil {
		t.Fatal("v1 encoding accepted a non-zero epoch")
	}
}
