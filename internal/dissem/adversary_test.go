package dissem

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vpm/internal/receipt"
)

// dissemWorld wires one signing server with a registry.
func dissemWorld(t *testing.T, hop receipt.HOPID) (*Server, *Signer, Registry) {
	t.Helper()
	signer := NewSigner(seedOf(byte(hop)))
	srv := NewServer(hop, signer)
	reg := Registry{hop: signer.Public()}
	return srv, signer, reg
}

// TestFetchTimeoutOnHungServer: the regression for the fetch-stall
// bug — a Client with neither an HTTP client nor a context deadline
// must not hang forever on a server that never responds.
func TestFetchTimeoutOnHungServer(t *testing.T) {
	block := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		<-block // never responds
	}))
	defer hung.Close()
	defer close(block) // release the handler before Close waits on it

	old := DefaultFetchTimeout
	DefaultFetchTimeout = 150 * time.Millisecond
	defer func() { DefaultFetchTimeout = old }()

	_, _, reg := dissemWorld(t, 4)
	c := &Client{Registry: reg}
	start := time.Now()
	err := c.FetchEach(context.Background(), hung.URL, 4, 0, func(*Bundle) error { return nil })
	if err == nil {
		t.Fatal("fetch from a hung server succeeded")
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("fetch took %v: the default timeout did not engage", wall)
	}
}

// TestFetchCtxDeadline: a context deadline aborts a hung fetch even
// when the caller supplied its own timeout-less HTTP client.
func TestFetchCtxDeadline(t *testing.T) {
	block := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		<-block
	}))
	defer hung.Close()
	defer close(block) // release the handler before Close waits on it
	_, _, reg := dissemWorld(t, 4)
	c := &Client{Registry: reg, HTTP: &http.Client{}}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := c.FetchEach(ctx, hung.URL, 4, 0, func(*Bundle) error { return nil }); err == nil {
		t.Fatal("fetch outlived its context deadline")
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("fetch took %v despite a 100ms deadline", wall)
	}
}

// TestPrunedCursorGapHTTP: the regression for the silent-clamp bug —
// a cursor below the server's pruned base gets a typed GapError (via
// the X-VPM-Base header), not a silently shortened stream.
func TestPrunedCursorGapHTTP(t *testing.T) {
	srv, _, reg := dissemWorld(t, 4)
	for seq := 0; seq < 4; seq++ {
		b := sampleBundle(4, uint64(seq))
		srv.Publish(b.Samples, b.Aggs)
	}
	srv.DropThrough(1) // bundles 0 and 1 are gone; base is now 2
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := &Client{Registry: reg}
	err := c.FetchEach(context.Background(), ts.URL, 4, 0, func(*Bundle) error {
		t.Fatal("bundle delivered before the gap was surfaced")
		return nil
	})
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("want GapError, got %v", err)
	}
	if gap.Origin != 4 || gap.Since != 0 || gap.Base != 2 {
		t.Fatalf("gap misdescribed: %+v", gap)
	}
	// Resuming from the advertised base acknowledges the loss and
	// serves the rest.
	n := 0
	if err := c.FetchEach(context.Background(), ts.URL, 4, gap.Base, func(*Bundle) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("resumed fetch returned %d bundles, want 2", n)
	}
}

// TestPrunedCursorGapBus: same contract on the in-memory bus —
// CollectSince surfaces the gap instead of skipping it; CollectEach
// (no cursor promise) still serves what is retained.
func TestPrunedCursorGapBus(t *testing.T) {
	srv, _, reg := dissemWorld(t, 4)
	for seq := 0; seq < 4; seq++ {
		b := sampleBundle(4, uint64(seq))
		srv.Publish(b.Samples, b.Aggs)
	}
	srv.DropThrough(1)
	bus := NewBus()
	bus.Attach(srv)

	_, err := bus.CollectSince(reg, 4, 0, func(*Bundle) error { return nil })
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("want GapError, got %v", err)
	}
	if gap.Base != 2 {
		t.Fatalf("gap base %d, want 2", gap.Base)
	}
	next, err := bus.CollectSince(reg, 4, gap.Base, func(*Bundle) error { return nil })
	if err != nil || next != 4 {
		t.Fatalf("resume from base: next=%d err=%v", next, err)
	}
	n := 0
	if err := bus.CollectEach(reg, 4, func(*Bundle) error { n++; return nil }); err != nil || n != 2 {
		t.Fatalf("CollectEach over pruned log: n=%d err=%v", n, err)
	}
}

// TestWithholderHidesBundles: a withholding tamper starves the
// consumer without any transport-level error — the absence is the
// evidence (the windowed store's MissingSeals names the origin).
func TestWithholderHidesBundles(t *testing.T) {
	srv, _, reg := dissemWorld(t, 4)
	srv.PublishEpoch(0, nil, nil)
	srv.PublishEpoch(1, nil, nil)
	srv.PublishEpoch(2, nil, nil)
	srv.SetTamper(&Withholder{FromEpoch: 1})
	bus := NewBus()
	bus.Attach(srv)
	var epochs []uint64
	next, err := bus.CollectSince(reg, 4, 0, func(b *Bundle) error {
		epochs = append(epochs, b.Epoch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 1 || epochs[0] != 0 {
		t.Fatalf("withholder leaked: %v", epochs)
	}
	if next != 1 {
		t.Fatalf("cursor advanced to %d past a withheld bundle", next)
	}
}

// TestReplayerServesStaleEpoch: from its activation epoch on, the
// replayer serves the last honest bundle again; the decoded epoch
// gives the replay away downstream.
func TestReplayerServesStaleEpoch(t *testing.T) {
	srv, _, reg := dissemWorld(t, 4)
	srv.PublishEpoch(0, nil, nil)
	srv.PublishEpoch(1, nil, nil)
	srv.PublishEpoch(2, nil, nil)
	srv.SetTamper(&Replayer{FromEpoch: 1})
	bus := NewBus()
	bus.Attach(srv)
	var epochs []uint64
	if _, err := bus.CollectSince(reg, 4, 0, func(b *Bundle) error {
		epochs = append(epochs, b.Epoch)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 || epochs[0] != 0 || epochs[1] != 0 || epochs[2] != 0 {
		t.Fatalf("replayed epochs: %v, want [0 0 0]", epochs)
	}
}

// TestEquivocatorAndProof: the equivocator serves viewer-dependent,
// validly-signed bundles; two verifiers comparing raw bundles hold a
// non-repudiable proof naming the origin.
func TestEquivocatorAndProof(t *testing.T) {
	srv, signer, reg := dissemWorld(t, 4)
	b := sampleBundle(4, 0)
	srv.Publish(b.Samples, b.Aggs)
	srv.SetTamper(&Equivocator{
		Signer: signer,
		Victim: "B",
		Mutate: func(b *Bundle) {
			for i := range b.Samples {
				for j := range b.Samples[i].Samples {
					b.Samples[i].Samples[j].TimeNS -= 1000
				}
			}
		},
	})
	bus := NewBus()
	bus.Attach(srv)

	// Both viewers' fetches authenticate: equivocation is invisible to
	// a single verifier.
	for _, viewer := range []string{"A", "B"} {
		if _, err := bus.CollectSinceAs(viewer, reg, 4, 0, func(*Bundle) error { return nil }); err != nil {
			t.Fatalf("viewer %s: %v", viewer, err)
		}
	}
	proofs := FindEquivocation(reg, 4, srv.SignedBundles("A"), srv.SignedBundles("B"))
	if len(proofs) != 1 {
		t.Fatalf("got %d equivocation proofs, want 1", len(proofs))
	}
	if proofs[0].Origin != 4 || proofs[0].Seq != 0 {
		t.Fatalf("proof misattributed: %+v", proofs[0])
	}
	// Same viewer twice: no proof (consistency, not equivocation).
	if p := FindEquivocation(reg, 4, srv.SignedBundles("A"), srv.SignedBundles("A")); len(p) != 0 {
		t.Fatalf("false equivocation proof: %v", p)
	}
}

// corruptSigTamper breaks the signature of every bundle it serves.
type corruptSigTamper struct{}

func (corruptSigTamper) Name() string { return "corrupt-sig" }
func (corruptSigTamper) Serve(_ string, _, _ uint64, sb SignedBundle) (SignedBundle, bool) {
	bad := append([]byte(nil), sb.Sig...)
	bad[0] ^= 0xff
	return SignedBundle{Payload: sb.Payload, Sig: bad}, true
}

// TestBundleErrorCarriesSeq: a verification failure mid-stream is a
// typed BundleError naming origin and sequence, so a cursor consumer
// can classify it and skip the poisoned bundle.
func TestBundleErrorCarriesSeq(t *testing.T) {
	srv, _, reg := dissemWorld(t, 4)
	b := sampleBundle(4, 0)
	srv.Publish(b.Samples, b.Aggs)
	srv.SetTamper(corruptSigTamper{})
	bus := NewBus()
	bus.Attach(srv)
	_, err := bus.CollectSince(reg, 4, 0, func(*Bundle) error { return nil })
	var be *BundleError
	if !errors.As(err, &be) {
		t.Fatalf("want BundleError, got %v", err)
	}
	if be.Origin != 4 || be.Seq != 0 || !errors.Is(err, ErrBadSignature) {
		t.Fatalf("bundle error misdescribed: %+v", be)
	}
	// Skipping past it drains cleanly.
	if _, err := bus.CollectSince(reg, 4, be.Seq+1, func(*Bundle) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestViewerHeaderReachesTamper: the HTTP transport carries the
// verifier identity to the server's tamper, so per-viewer equivocation
// works over the paper's real dissemination realization too.
func TestViewerHeaderReachesTamper(t *testing.T) {
	srv, signer, reg := dissemWorld(t, 4)
	b := sampleBundle(4, 0)
	srv.Publish(b.Samples, b.Aggs)
	srv.SetTamper(&Equivocator{
		Signer: signer,
		Victim: "victim",
		Mutate: func(b *Bundle) { b.Samples[0].Samples[0].TimeNS = 999_999 },
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	fetchFirstTime := func(viewer string) int64 {
		c := &Client{Registry: reg, Viewer: viewer}
		var got int64
		if err := c.FetchEach(context.Background(), ts.URL, 4, 0, func(b *Bundle) error {
			got = b.Samples[0].Samples[0].TimeNS
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if honest := fetchFirstTime("bystander"); honest == 999_999 {
		t.Fatal("bystander received the forged variant")
	}
	if forged := fetchFirstTime("victim"); forged != 999_999 {
		t.Fatalf("victim received %d, want the forged variant", forged)
	}
}
