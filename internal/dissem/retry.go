package dissem

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Fetch retry with bounded exponential backoff. A fleet verifier polls
// many collector processes over HTTP; any of them can be restarting,
// overloaded, or briefly unreachable, and the poll loop must neither
// give up on the first refused connection nor spin forever against a
// dead peer. Retry wraps one fetch attempt in a fixed budget of
// retries with exponential backoff between them — after the budget is
// exhausted the caller gets a typed RetryBudgetError and decides
// (typically: surface the collector as failed), never an unbounded
// loop.
//
// The backoff is deterministic (no jitter): each fleet process polls
// its own peer set on its own schedule, so synchronized-retry
// stampedes are not a failure mode here, and the dissemination layer
// keeps the repo-wide discipline that identical runs behave
// identically.

// RetryPolicy bounds a retried operation: at most Attempts tries, with
// Base, 2·Base, 4·Base, ... waits between them, capped at Max.
type RetryPolicy struct {
	// Attempts is the total try budget (first try included); values
	// below 1 behave as 1 — a single try, no retry.
	Attempts int
	// Base is the wait before the first retry; it doubles per retry.
	Base time.Duration
	// Max caps the per-retry wait; 0 means uncapped.
	Max time.Duration
}

// DefaultRetryPolicy is the fleet fetch budget: 5 tries spanning about
// three seconds of backoff — long enough to ride out a collector
// restart, short enough that a dead peer surfaces within one epoch at
// operational interval lengths.
var DefaultRetryPolicy = RetryPolicy{Attempts: 5, Base: 200 * time.Millisecond, Max: 2 * time.Second}

// wait returns the backoff before retry number n (n = 1 is the first
// retry).
func (p RetryPolicy) wait(n int) time.Duration {
	d := p.Base << (n - 1)
	if d < p.Base { // shift overflow
		d = p.Max
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	return d
}

// RetryBudgetError reports an operation that failed on every try of
// its retry budget. It wraps the last attempt's error.
type RetryBudgetError struct {
	// Attempts is how many tries were made before giving up.
	Attempts int
	// Err is the last attempt's error.
	Err error
}

func (e *RetryBudgetError) Error() string {
	return fmt.Sprintf("dissem: giving up after %d attempts: %v", e.Attempts, e.Err)
}

func (e *RetryBudgetError) Unwrap() error { return e.Err }

// PermanentError marks an error no retry can fix — a signature
// mismatch, a malformed bundle — so Retry stops immediately instead of
// burning the rest of its budget. Wrap with Permanent.
type PermanentError struct {
	Err error
}

func (e *PermanentError) Error() string { return e.Err.Error() }

func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err so Retry treats it as non-retryable. A nil err
// stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// Retry runs op under the policy's budget: on error it backs off and
// tries again, until op succeeds, the budget is exhausted, op returns
// a PermanentError, or ctx is done. It returns nil on success; a
// *RetryBudgetError wrapping the last error once the budget is spent;
// the unwrapped permanent error as soon as op marks one; or the
// context's error if cancellation interrupts a backoff wait (errors
// match with errors.As / errors.Is).
func Retry(ctx context.Context, p RetryPolicy, op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for try := 1; ; try++ {
		err := op()
		if err == nil {
			return nil
		}
		var perm *PermanentError
		if errors.As(err, &perm) {
			return perm.Err
		}
		lastErr = err
		if try >= attempts {
			return &RetryBudgetError{Attempts: try, Err: lastErr}
		}
		if ctx != nil {
			timer := time.NewTimer(p.wait(try))
			select {
			case <-ctx.Done():
				timer.Stop()
				return &RetryBudgetError{Attempts: try, Err: ctx.Err()}
			case <-timer.C:
			}
		} else {
			time.Sleep(p.wait(try))
		}
	}
}
