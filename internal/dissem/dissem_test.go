package dissem

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	"vpm/internal/packet"
	"vpm/internal/receipt"
)

func seedOf(b byte) [32]byte {
	var s [32]byte
	s[0] = b
	return s
}

func sampleBundle(origin receipt.HOPID, seq uint64) *Bundle {
	path := receipt.PathKeyOf(
		packet.MakePrefix(10, 1, 0, 0, 16),
		packet.MakePrefix(172, 16, 0, 0, 16),
		4, 5, 2_000_000)
	return &Bundle{
		Origin: origin,
		Seq:    seq,
		Samples: []receipt.SampleReceipt{{
			Path:    path,
			Samples: []receipt.SampleRecord{{PktID: 1, TimeNS: 2}, {PktID: 3, TimeNS: 4}},
		}},
		Aggs: []receipt.AggReceipt{{
			Path:     path,
			Agg:      receipt.AggID{First: 9, Last: 11},
			PktCnt:   100,
			AggTrans: []receipt.SampleRecord{{PktID: 11, TimeNS: 50}},
		}},
	}
}

func TestBundleEncodeDecode(t *testing.T) {
	b := sampleBundle(4, 7)
	enc := b.Encode()
	got, err := DecodeBundle(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != 4 || got.Seq != 7 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Samples) != 1 || len(got.Samples[0].Samples) != 2 {
		t.Fatalf("samples mismatch: %+v", got.Samples)
	}
	if len(got.Aggs) != 1 || got.Aggs[0].PktCnt != 100 || len(got.Aggs[0].AggTrans) != 1 {
		t.Fatalf("aggs mismatch: %+v", got.Aggs)
	}
}

func TestBundleDecodeRejectsCorruption(t *testing.T) {
	enc := sampleBundle(4, 7).Encode()
	if _, err := DecodeBundle(enc[:10]); err == nil {
		t.Error("truncated bundle accepted")
	}
	if _, err := DecodeBundle(append(enc, 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
	bad := append([]byte{}, enc...)
	bad[0] = 'X'
	if _, err := DecodeBundle(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestSignVerify(t *testing.T) {
	s := NewSigner(seedOf(1))
	b := sampleBundle(4, 0)
	sb := s.Sign(b)
	got, err := Verify(s.Public(), 4, sb)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 0 || got.Origin != 4 {
		t.Fatalf("verified bundle mismatch: %+v", got)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	s := NewSigner(seedOf(2))
	sb := s.Sign(sampleBundle(4, 0))
	sb.Payload[30] ^= 0xff
	if _, err := Verify(s.Public(), 4, sb); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered payload: err = %v", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	s1, s2 := NewSigner(seedOf(3)), NewSigner(seedOf(4))
	sb := s1.Sign(sampleBundle(4, 0))
	if _, err := Verify(s2.Public(), 4, sb); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong key: err = %v", err)
	}
}

func TestVerifyRejectsOriginSpoof(t *testing.T) {
	// HOP 5's key signs a bundle claiming to be from HOP 4.
	s := NewSigner(seedOf(5))
	sb := s.Sign(sampleBundle(4, 0))
	if _, err := Verify(s.Public(), 5, sb); err == nil {
		t.Error("origin spoof accepted")
	}
}

func TestDeterministicKeys(t *testing.T) {
	a, b := NewSigner(seedOf(6)), NewSigner(seedOf(6))
	if string(a.Public()) != string(b.Public()) {
		t.Error("same seed produced different keys")
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	signer := NewSigner(seedOf(7))
	srv := NewServer(4, signer)
	b := sampleBundle(4, 0)
	srv.Publish(b.Samples, b.Aggs)
	srv.Publish(nil, b.Aggs)
	if srv.BundleCount() != 2 {
		t.Fatalf("bundle count %d", srv.BundleCount())
	}

	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := &Client{Registry: Registry{4: signer.Public()}}
	got, err := client.Fetch(context.Background(), ts.URL, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("fetched %d bundles, want 2", len(got))
	}
	if len(got[0].Samples) != 1 || len(got[1].Samples) != 0 {
		t.Fatal("bundle contents mismatch")
	}

	// Incremental fetch.
	got, err = client.Fetch(context.Background(), ts.URL, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("since-fetch returned %d bundles", len(got))
	}

	// Past the end.
	got, err = client.Fetch(context.Background(), ts.URL, 4, 10)
	if err != nil || len(got) != 0 {
		t.Fatalf("past-end fetch: %v, %d bundles", err, len(got))
	}
}

func TestHTTPRejectsUnregisteredOrigin(t *testing.T) {
	signer := NewSigner(seedOf(8))
	srv := NewServer(4, signer)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &Client{Registry: Registry{}}
	if _, err := client.Fetch(context.Background(), ts.URL, 4, 0); err == nil {
		t.Error("fetch without registered key accepted")
	}
}

func TestHTTPRejectsForgedServer(t *testing.T) {
	// Server signs with a key other than the one the client
	// registered for HOP 4: every bundle must be rejected.
	evil := NewSigner(seedOf(9))
	srv := NewServer(4, evil)
	b := sampleBundle(4, 0)
	srv.Publish(b.Samples, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	legit := NewSigner(seedOf(10))
	client := &Client{Registry: Registry{4: legit.Public()}}
	if _, err := client.Fetch(context.Background(), ts.URL, 4, 0); err == nil {
		t.Error("forged bundles accepted")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv := NewServer(4, NewSigner(seedOf(11)))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("POST status %d, want 405", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "?since=garbage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad since status %d, want 400", resp.StatusCode)
	}
}

func TestVerifyFromRegistry(t *testing.T) {
	signer := NewSigner(seedOf(20))
	reg := Registry{4: signer.Public()}
	sb := signer.Sign(sampleBundle(4, 3))
	b, err := VerifyFromRegistry(reg, sb)
	if err != nil {
		t.Fatal(err)
	}
	if b.Origin != 4 || b.Seq != 3 {
		t.Fatalf("verified bundle mismatch: %+v", b)
	}

	// Unregistered claimed origin.
	if _, err := VerifyFromRegistry(Registry{}, sb); err == nil {
		t.Error("bundle from unregistered origin accepted")
	}
	// Signed by a key other than the claimed origin's.
	evil := NewSigner(seedOf(21))
	if _, err := VerifyFromRegistry(reg, evil.Sign(sampleBundle(4, 0))); err == nil {
		t.Error("bundle signed by wrong key accepted")
	}
	// Corrupt payload.
	bad := signer.Sign(sampleBundle(4, 0))
	bad.Payload = bad.Payload[:10]
	if _, err := VerifyFromRegistry(reg, bad); err == nil {
		t.Error("corrupt payload accepted")
	}
}

func TestFetchEachStreams(t *testing.T) {
	signer := NewSigner(seedOf(22))
	srv := NewServer(4, signer)
	b := sampleBundle(4, 0)
	for i := 0; i < 5; i++ {
		srv.Publish(b.Samples, b.Aggs)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &Client{Registry: Registry{4: signer.Public()}}

	var seqs []uint64
	err := client.FetchEach(context.Background(), ts.URL, 4, 1, func(b *Bundle) error {
		seqs = append(seqs, b.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 || seqs[0] != 1 || seqs[3] != 4 {
		t.Fatalf("streamed seqs %v, want 1..4", seqs)
	}

	// A callback error aborts the stream.
	calls := 0
	sentinel := context.Canceled
	err = client.FetchEach(context.Background(), ts.URL, 4, 0, func(*Bundle) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || calls != 2 {
		t.Fatalf("abort: err=%v calls=%d", err, calls)
	}

	// Past the end: the server encodes a JSON null; zero callbacks.
	err = client.FetchEach(context.Background(), ts.URL, 4, 99, func(*Bundle) error {
		t.Error("callback on empty stream")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectEach(t *testing.T) {
	signer := NewSigner(seedOf(23))
	srv := NewServer(4, signer)
	b := sampleBundle(4, 0)
	srv.Publish(b.Samples, nil)
	srv.Publish(nil, b.Aggs)
	bus := NewBus()
	bus.Attach(srv)
	reg := Registry{4: signer.Public()}

	var seqs []uint64
	if err := bus.CollectEach(reg, 4, func(b *Bundle) error {
		seqs = append(seqs, b.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 1 {
		t.Fatalf("collected seqs %v", seqs)
	}
	if err := bus.CollectEach(reg, 9, func(*Bundle) error { return nil }); err == nil {
		t.Error("missing HOP accepted")
	}
	if err := bus.CollectEach(Registry{}, 4, func(*Bundle) error { return nil }); err == nil {
		t.Error("missing key accepted")
	}
}

func TestBus(t *testing.T) {
	signer := NewSigner(seedOf(12))
	srv := NewServer(4, signer)
	b := sampleBundle(4, 0)
	srv.Publish(b.Samples, b.Aggs)
	bus := NewBus()
	bus.Attach(srv)
	reg := Registry{4: signer.Public()}
	got, err := bus.Collect(reg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("collected %d bundles", len(got))
	}
	if _, err := bus.Collect(reg, 9); err == nil {
		t.Error("missing HOP accepted")
	}
	if _, err := bus.Collect(Registry{}, 4); err == nil {
		t.Error("missing key accepted")
	}
}

func TestBundleEpochRoundTrip(t *testing.T) {
	b := sampleBundle(4, 7)
	b.Epoch = 12345
	got, err := DecodeBundle(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 12345 {
		t.Fatalf("epoch lost in encoding: got %d", got.Epoch)
	}
	// The epoch is under the signature: flipping it must break
	// verification.
	signer := NewSigner(seedOf(4))
	sb := signer.Sign(b)
	sb.Payload[16] ^= 1 // first epoch byte
	if _, err := Verify(signer.Public(), 4, sb); err == nil {
		t.Fatal("tampered epoch accepted")
	}
}

func TestPublishEpochFilters(t *testing.T) {
	signer := NewSigner(seedOf(9))
	srv := NewServer(3, signer)
	reg := Registry{3: signer.Public()}

	// Three epochs, two bundles for epoch 1.
	srv.PublishEpoch(0, sampleBundle(3, 0).Samples, nil)
	srv.PublishEpoch(1, sampleBundle(3, 0).Samples, nil)
	srv.PublishEpoch(1, nil, sampleBundle(3, 0).Aggs)
	srv.PublishEpoch(2, sampleBundle(3, 0).Samples, nil)

	// HTTP per-epoch fetch.
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{Registry: reg}
	var got []uint64
	err := c.FetchEpochEach(context.Background(), ts.URL, 3, 1, func(b *Bundle) error {
		got = append(got, b.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("epoch-1 fetch returned seqs %v", got)
	}

	// Bus per-epoch collection.
	bus := NewBus()
	bus.Attach(srv)
	var epochs []uint64
	err = bus.CollectEpochEach(reg, 3, 1, func(b *Bundle) error {
		epochs = append(epochs, b.Epoch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 1 || epochs[1] != 1 {
		t.Fatalf("bus epoch-1 collection returned %v", epochs)
	}
}

func TestCollectSinceCursor(t *testing.T) {
	signer := NewSigner(seedOf(5))
	srv := NewServer(2, signer)
	reg := Registry{2: signer.Public()}
	bus := NewBus()
	bus.Attach(srv)

	srv.PublishEpoch(0, sampleBundle(2, 0).Samples, nil)
	srv.PublishEpoch(0, sampleBundle(2, 0).Samples, nil)

	var seen []uint64
	next, err := bus.CollectSince(reg, 2, 0, func(b *Bundle) error {
		seen = append(seen, b.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 2 || len(seen) != 2 {
		t.Fatalf("first drain: next=%d seen=%v", next, seen)
	}

	// Nothing new: the cursor holds and fn is not called.
	next, err = bus.CollectSince(reg, 2, next, func(b *Bundle) error {
		t.Fatalf("unexpected bundle %d", b.Seq)
		return nil
	})
	if err != nil || next != 2 {
		t.Fatalf("idle drain: next=%d err=%v", next, err)
	}

	// A new publication is seen exactly once.
	srv.PublishEpoch(1, nil, sampleBundle(2, 0).Aggs)
	seen = nil
	next, err = bus.CollectSince(reg, 2, next, func(b *Bundle) error {
		seen = append(seen, b.Seq)
		return nil
	})
	if err != nil || next != 3 || len(seen) != 1 || seen[0] != 2 {
		t.Fatalf("incremental drain: next=%d seen=%v err=%v", next, seen, err)
	}
}

func TestDropThroughKeepsCursorSemantics(t *testing.T) {
	signer := NewSigner(seedOf(6))
	srv := NewServer(4, signer)
	reg := Registry{4: signer.Public()}
	bus := NewBus()
	bus.Attach(srv)

	for e := uint64(0); e < 3; e++ {
		srv.PublishEpoch(e, sampleBundle(4, 0).Samples, nil)
	}
	next, err := bus.CollectSince(reg, 4, 0, func(*Bundle) error { return nil })
	if err != nil || next != 3 {
		t.Fatalf("drain: next=%d err=%v", next, err)
	}
	srv.DropThrough(next - 1)
	if srv.BundleCount() != 0 {
		t.Fatalf("server still retains %d bundles after drop", srv.BundleCount())
	}

	// Publication continues with stable sequence numbers; the old
	// cursor sees exactly the new bundle.
	srv.PublishEpoch(3, nil, sampleBundle(4, 0).Aggs)
	var seqs []uint64
	next, err = bus.CollectSince(reg, 4, next, func(b *Bundle) error {
		seqs = append(seqs, b.Seq)
		return nil
	})
	if err != nil || next != 4 || len(seqs) != 1 || seqs[0] != 3 {
		t.Fatalf("post-drop drain: next=%d seqs=%v err=%v", next, seqs, err)
	}

	// A failing callback leaves the cursor on the failed bundle.
	srv.PublishEpoch(4, sampleBundle(4, 0).Samples, nil)
	boom := fmt.Errorf("boom")
	next2, err := bus.CollectSince(reg, 4, next, func(*Bundle) error { return boom })
	if err == nil || next2 != next {
		t.Fatalf("failed callback advanced cursor: next=%d err=%v", next2, err)
	}

	// HTTP ?since past the dropped range still serves the retained log.
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{Registry: reg}
	got := 0
	if err := c.FetchEach(context.Background(), ts.URL, 4, 3, func(*Bundle) error {
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("since=3 fetch after drop returned %d bundles, want 2", got)
	}
}

// TestBundleAppendEncode: AppendEncode into a reused scratch buffer is
// byte-identical to Encode, WireSize predicts the exact length, and
// once the scratch reached its high-water mark re-encoding allocates
// nothing.
func TestBundleAppendEncode(t *testing.T) {
	b := sampleBundle(4, 7)
	b.Epoch = 3
	want := b.Encode()
	if len(want) != b.WireSize() {
		t.Fatalf("WireSize %d, encoded length %d", b.WireSize(), len(want))
	}
	scratch := make([]byte, 0, b.WireSize())
	got := b.AppendEncode(scratch)
	if !bytes.Equal(got, want) {
		t.Fatal("AppendEncode differs from Encode")
	}
	allocs := testing.AllocsPerRun(50, func() {
		if out := b.AppendEncode(scratch[:0]); len(out) != len(want) {
			t.Fatal("short encode")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state AppendEncode allocated %.1f times per bundle", allocs)
	}
}
