package dissem

import (
	"bytes"
	"fmt"
	"sync"

	"vpm/internal/receipt"
)

// This file is the dissemination-layer half of the Byzantine HOP
// framework: attacks injected at the Server/Bus boundary, where a
// lying origin controls *delivery* of its receipts rather than their
// content. Signatures make content tampering by third parties
// impossible (Assumption 2), so the remaining attacks are the origin's
// own: withholding bundles, replaying stale epochs, and equivocating —
// serving different validly-signed bundles to different verifiers.
// Each is either directly detected (typed errors, equivocation proofs)
// or starves an epoch of its seal, which the windowed store surfaces
// as a never-Ready epoch naming the withholder (MissingSeals).

// BundleTamper intercepts every bundle a Server is about to serve.
// viewer identifies the requesting verifier ("" when the transport
// carries no identity); seq and epoch describe the retained bundle.
// Serve returns the bundle actually sent and true, or false to
// withhold it entirely. Implementations must be safe for concurrent
// use (HTTP handlers serve concurrently).
type BundleTamper interface {
	// Name identifies the tamper in reports and matrix rows.
	Name() string
	// Serve intercepts one bundle on its way to viewer.
	Serve(viewer string, seq, epoch uint64, sb SignedBundle) (SignedBundle, bool)
}

// SetTamper installs a BundleTamper on the server — simulation-side
// wiring for the dissemination attacks. A nil tamper restores honest
// service.
func (s *Server) SetTamper(t BundleTamper) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tamper = t
}

// SignedBundles returns the retained bundles exactly as they would be
// served to viewer (tamper applied, withheld bundles absent) — the raw
// material two verifiers exchange when cross-checking an origin for
// equivocation (FindEquivocation).
func (s *Server) SignedBundles(viewer string) []SignedBundle {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SignedBundle, 0, len(s.bundles))
	for i, p := range s.bundles {
		sb := p.sb
		if s.tamper != nil {
			var ok bool
			if sb, ok = s.tamper.Serve(viewer, s.base+uint64(i), p.epoch, sb); !ok {
				continue
			}
		}
		out = append(out, sb)
	}
	return out
}

// Withholder withholds every bundle tagged with an epoch in
// [FromEpoch, ToEpoch) (ToEpoch = 0 means unbounded): the silent
// starvation attack. Nothing the consumer receives is wrong — the
// evidence is the absence itself, surfaced by the windowed store as an
// epoch that never seals, with MissingSeals naming this origin.
type Withholder struct {
	FromEpoch, ToEpoch uint64
}

// Name implements BundleTamper.
func (w *Withholder) Name() string { return "withhold-bundles" }

// Serve implements BundleTamper.
func (w *Withholder) Serve(_ string, _, epoch uint64, sb SignedBundle) (SignedBundle, bool) {
	if epoch >= w.FromEpoch && (w.ToEpoch == 0 || epoch < w.ToEpoch) {
		return SignedBundle{}, false
	}
	return sb, true
}

// Replayer serves, in place of every bundle tagged epoch >= FromEpoch,
// the last bundle it saw from an earlier epoch — the stale-epoch
// replay attack. The replayed bundle is validly signed, so transport
// authentication passes; the receiver's windowed store refuses it with
// a StaleSealError (the origin already sealed that epoch), and the
// suppressed fresh epochs additionally surface as withheld.
type Replayer struct {
	FromEpoch uint64

	mu    sync.Mutex
	stale *SignedBundle
}

// Name implements BundleTamper.
func (r *Replayer) Name() string { return "stale-epoch-replay" }

// Serve implements BundleTamper.
func (r *Replayer) Serve(_ string, _, epoch uint64, sb SignedBundle) (SignedBundle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch < r.FromEpoch {
		cp := sb
		r.stale = &cp
		return sb, true
	}
	if r.stale == nil {
		return SignedBundle{}, false
	}
	return *r.stale, true
}

// Equivocator serves the honest bundle to every viewer except Victim,
// who receives a mutated, re-signed variant — the cross-verifier
// equivocation attack. Only the origin itself can mount it (Signer is
// the origin's own key), and mounting it is self-destructive: the two
// variants are both validly signed by the same key, so any two
// verifiers comparing notes hold non-repudiable proof of the lie
// (FindEquivocation).
type Equivocator struct {
	// Signer is the origin's signing key, used to re-sign mutations.
	Signer *Signer
	// Victim is the viewer that receives the forged variant.
	Victim string
	// Mutate rewrites the decoded bundle served to the victim.
	Mutate func(*Bundle)
}

// Name implements BundleTamper.
func (e *Equivocator) Name() string { return "equivocate" }

// Serve implements BundleTamper.
func (e *Equivocator) Serve(viewer string, _, _ uint64, sb SignedBundle) (SignedBundle, bool) {
	if viewer != e.Victim || e.Mutate == nil {
		return sb, true
	}
	b, err := DecodeBundle(sb.Payload)
	if err != nil {
		return sb, true // not decodable: nothing to equivocate about
	}
	e.Mutate(b)
	return e.Signer.Sign(b), true
}

// Equivocation is non-repudiable proof that one origin served two
// different validly-signed bundles for the same sequence number.
type Equivocation struct {
	Origin receipt.HOPID
	Seq    uint64
	Epoch  uint64
	// A and B are the two contradictory signed bundles.
	A, B SignedBundle
}

// String renders the proof.
func (e Equivocation) String() string {
	return fmt.Sprintf("%v equivocated on bundle seq %d (epoch %d): two valid signatures over different payloads",
		e.Origin, e.Seq, e.Epoch)
}

// FindEquivocation cross-checks the signed bundles two verifiers
// collected from the same origin: bundles with the same sequence
// number whose payloads differ, while both signatures verify against
// the origin's registered key, are equivocation proofs — the origin
// signed two contradictory statements about the same interval, and no
// third party could have forged either. Bundles failing signature
// verification are ignored (they are ordinary forgeries, handled by
// transport authentication, not equivocation).
func FindEquivocation(reg Registry, origin receipt.HOPID, a, b []SignedBundle) []Equivocation {
	pub, ok := reg[origin]
	if !ok {
		return nil
	}
	bySeq := make(map[uint64]SignedBundle, len(a))
	for _, sb := range a {
		if bd, err := Verify(pub, origin, sb); err == nil {
			bySeq[bd.Seq] = sb
		}
	}
	var out []Equivocation
	var encA, encB []byte // re-encode scratch, grow-only across the sweep
	for _, sb := range b {
		bd, err := Verify(pub, origin, sb)
		if err != nil {
			continue
		}
		other, ok := bySeq[bd.Seq]
		if !ok || bytes.Equal(other.Payload, sb.Payload) {
			continue
		}
		// Different payload bytes for the same sequence number — but
		// an honest origin that migrated its archive may legitimately
		// serve the same interval once as the legacy v1 encoding and
		// once as its v2 re-encoding. Equivocation is a *semantic*
		// contradiction: compare the decoded bundles under the
		// canonical (v2) encoding and only indict when they differ.
		// (Within one version the codec is canonical — byte-different
		// payloads cannot decode equal — so this only forgives the
		// cross-version case.)
		if otherBd, err := Verify(pub, origin, other); err == nil {
			encA = otherBd.AppendEncode(encA[:0])
			encB = bd.AppendEncode(encB[:0])
			if bytes.Equal(encA, encB) {
				continue
			}
		}
		out = append(out, Equivocation{Origin: origin, Seq: bd.Seq, Epoch: bd.Epoch, A: other, B: sb})
	}
	return out
}
