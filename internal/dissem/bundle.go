// Package dissem realizes the paper's Assumption 2 (§2.3): "there
// exists a way for a domain in path P to disseminate receipts to all
// other domains in P, such that the authenticity and integrity of each
// received receipt is guaranteed." Receipts are batched into bundles,
// canonically encoded, signed with the origin HOP's ed25519 key, and
// served over HTTP (the paper's suggested realization is an
// administrative web-site over HTTPS; wrap the handler in a TLS
// listener for the full equivalent).
package dissem

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"

	"vpm/internal/receipt"
)

// Bundle is one reporting interval's worth of receipts from one HOP.
type Bundle struct {
	// Origin is the reporting HOP.
	Origin receipt.HOPID
	// Seq is the bundle sequence number (monotonic per origin).
	Seq uint64
	// Epoch tags the reporting interval the receipts were sealed in —
	// the continuous pipeline routes bundles into per-epoch store
	// segments by it. Batch (single-interval) producers leave it 0.
	Epoch uint64
	// Samples and Aggs are the interval's receipts.
	Samples []receipt.SampleReceipt
	Aggs    []receipt.AggReceipt
}

// bundleMagic guards the canonical encoding. The last byte is the
// layout version; '2' added the epoch tag to the header. Encode always
// emits v2; DecodeBundle also accepts the pre-epoch v1 layout (no
// epoch field, epoch 0 implied) so receipts archived by pre-epoch
// deployments remain readable.
var bundleMagic = [4]byte{'V', 'P', 'M', '2'}

// bundleMagicV1 is the legacy pre-epoch encoding's magic.
var bundleMagicV1 = [4]byte{'V', 'P', 'M', '1'}

// ErrCorruptBundle reports a malformed bundle encoding.
var ErrCorruptBundle = errors.New("dissem: corrupt bundle")

// WireSize returns the exact encoded size of the v2 form, letting
// encoders allocate (or arena-reserve) once instead of growing
// append-by-append through a whole epoch's receipts.
func (b *Bundle) WireSize() int {
	n := 4 + 28
	for _, s := range b.Samples {
		n += s.WireSize()
	}
	for _, a := range b.Aggs {
		n += a.WireSize()
	}
	return n
}

// AppendEncode appends the canonical binary form to dst and returns
// the extended slice. Sealing loops hand it a per-shard grow-only
// buffer (or a receipt.Arena's) so steady-state encoding allocates
// nothing; Encode wraps it for callers that need a fresh payload.
func (b *Bundle) AppendEncode(dst []byte) []byte {
	dst = append(dst, bundleMagic[:]...)
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(b.Origin))
	binary.LittleEndian.PutUint64(hdr[4:12], b.Seq)
	binary.LittleEndian.PutUint64(hdr[12:20], b.Epoch)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(b.Samples)))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(len(b.Aggs)))
	dst = append(dst, hdr[:]...)
	for _, s := range b.Samples {
		dst = s.AppendBinary(dst)
	}
	for _, a := range b.Aggs {
		dst = a.AppendBinary(dst)
	}
	return dst
}

// Encode produces the canonical binary form that signatures cover, in
// one exactly-sized allocation.
func (b *Bundle) Encode() []byte {
	return b.AppendEncode(make([]byte, 0, b.WireSize()))
}

// EncodeV1 produces the legacy pre-epoch encoding — kept only so
// round-trip tests and archived-receipt tooling can exercise the v1
// decode path. The epoch tag does not exist in v1; encoding a bundle
// with a non-zero Epoch returns an error instead of silently dropping
// the tag from the signed bytes.
func (b *Bundle) EncodeV1() ([]byte, error) {
	if b.Epoch != 0 {
		return nil, fmt.Errorf("dissem: v1 encoding cannot carry epoch %d", b.Epoch)
	}
	out := append([]byte{}, bundleMagicV1[:]...)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(b.Origin))
	binary.LittleEndian.PutUint64(hdr[4:12], b.Seq)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(b.Samples)))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(b.Aggs)))
	out = append(out, hdr[:]...)
	for _, s := range b.Samples {
		out = s.AppendBinary(out)
	}
	for _, a := range b.Aggs {
		out = a.AppendBinary(out)
	}
	return out, nil
}

// DecodeBundle parses a canonical bundle encoding: the current v2
// layout, or the legacy pre-epoch v1 layout (whose bundles carry
// epoch 0 — they predate intervals). Malformed input of either
// version returns an error wrapping ErrCorruptBundle, never a panic
// (FuzzDecodeBundle).
func DecodeBundle(data []byte) (*Bundle, error) {
	if len(data) < 4 {
		return nil, ErrCorruptBundle
	}
	var (
		b        *Bundle
		nSamples uint32
		nAggs    uint32
		rest     []byte
	)
	switch [4]byte(data[0:4]) {
	case bundleMagic: // v2: origin[4] seq[8] epoch[8] nSamples[4] nAggs[4]
		if len(data) < 32 {
			return nil, ErrCorruptBundle
		}
		b = &Bundle{
			Origin: receipt.HOPID(binary.LittleEndian.Uint32(data[4:8])),
			Seq:    binary.LittleEndian.Uint64(data[8:16]),
			Epoch:  binary.LittleEndian.Uint64(data[16:24]),
		}
		nSamples = binary.LittleEndian.Uint32(data[24:28])
		nAggs = binary.LittleEndian.Uint32(data[28:32])
		rest = data[32:]
	case bundleMagicV1: // v1: origin[4] seq[8] nSamples[4] nAggs[4]
		if len(data) < 24 {
			return nil, ErrCorruptBundle
		}
		b = &Bundle{
			Origin: receipt.HOPID(binary.LittleEndian.Uint32(data[4:8])),
			Seq:    binary.LittleEndian.Uint64(data[8:16]),
		}
		nSamples = binary.LittleEndian.Uint32(data[16:20])
		nAggs = binary.LittleEndian.Uint32(data[20:24])
		rest = data[24:]
	default:
		return nil, ErrCorruptBundle
	}
	for i := uint32(0); i < nSamples; i++ {
		s, _, r, err := receipt.Decode(rest)
		if err != nil {
			return nil, fmt.Errorf("%w: sample %d: %v", ErrCorruptBundle, i, err)
		}
		if s == nil {
			return nil, fmt.Errorf("%w: sample %d has wrong kind", ErrCorruptBundle, i)
		}
		b.Samples = append(b.Samples, *s)
		rest = r
	}
	for i := uint32(0); i < nAggs; i++ {
		_, a, r, err := receipt.Decode(rest)
		if err != nil {
			return nil, fmt.Errorf("%w: agg %d: %v", ErrCorruptBundle, i, err)
		}
		if a == nil {
			return nil, fmt.Errorf("%w: agg %d has wrong kind", ErrCorruptBundle, i)
		}
		b.Aggs = append(b.Aggs, *a)
		rest = r
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptBundle, len(rest))
	}
	return b, nil
}

// SignedBundle is a bundle encoding plus its ed25519 signature.
type SignedBundle struct {
	Payload []byte `json:"payload"`
	Sig     []byte `json:"sig"`
}

// Signer holds a HOP's signing key.
type Signer struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewSigner derives a signer deterministically from a 32-byte seed
// (deterministic keys keep simulations reproducible; production would
// use crypto/rand via ed25519.GenerateKey).
func NewSigner(seed [32]byte) *Signer {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &Signer{priv: priv, pub: priv.Public().(ed25519.PublicKey)}
}

// Public returns the verification key to register with peers.
func (s *Signer) Public() ed25519.PublicKey { return s.pub }

// Sign encodes and signs a bundle.
func (s *Signer) Sign(b *Bundle) SignedBundle {
	payload := b.Encode()
	return SignedBundle{Payload: payload, Sig: ed25519.Sign(s.priv, payload)}
}

// ErrBadSignature reports signature verification failure.
var ErrBadSignature = errors.New("dissem: bad signature")

// ErrWrongOrigin reports a bundle claiming a different origin HOP than
// the key it was verified against.
var ErrWrongOrigin = errors.New("dissem: bundle origin mismatch")

// Verify checks a signed bundle against pub and the expected origin
// HOP, returning the decoded bundle. A forged or corrupted signature
// returns ErrBadSignature; a bundle claiming a different origin than
// the key's HOP returns ErrWrongOrigin (match both with errors.Is).
func Verify(pub ed25519.PublicKey, origin receipt.HOPID, sb SignedBundle) (*Bundle, error) {
	if !ed25519.Verify(pub, sb.Payload, sb.Sig) {
		return nil, ErrBadSignature
	}
	b, err := DecodeBundle(sb.Payload)
	if err != nil {
		return nil, err
	}
	if b.Origin != origin {
		return nil, fmt.Errorf("%w: claims %v, key belongs to %v", ErrWrongOrigin, b.Origin, origin)
	}
	return b, nil
}

// VerifyFromRegistry authenticates a signed bundle against the key
// registered for its claimed origin HOP: the payload is decoded first
// to learn the origin, then the signature is checked against that
// origin's registered key. A bundle claiming a HOP with no registered
// key is rejected. This is the entry point for streaming ingest,
// where bundles from many HOPs arrive interleaved and the expected
// origin is not known per call. A signature that fails against the
// registered key returns ErrBadSignature (match with errors.Is).
func VerifyFromRegistry(reg Registry, sb SignedBundle) (*Bundle, error) {
	b, err := DecodeBundle(sb.Payload)
	if err != nil {
		return nil, err
	}
	pub, ok := reg[b.Origin]
	if !ok {
		return nil, fmt.Errorf("dissem: no registered key for claimed origin %v", b.Origin)
	}
	if !ed25519.Verify(pub, sb.Payload, sb.Sig) {
		return nil, fmt.Errorf("%w: bundle claiming %v", ErrBadSignature, b.Origin)
	}
	return b, nil
}

// Registry maps HOPs to their registered verification keys.
type Registry map[receipt.HOPID]ed25519.PublicKey
