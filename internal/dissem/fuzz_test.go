package dissem

import (
	"bytes"
	"errors"
	"testing"

	"vpm/internal/packet"
	"vpm/internal/receipt"
)

// fuzzBundle builds a small valid bundle for seeding.
func fuzzBundle(epoch uint64) *Bundle {
	path := receipt.PathID{
		Key: packet.PathKey{
			Src: packet.MakePrefix(10, 1, 0, 0, 16),
			Dst: packet.MakePrefix(172, 16, 0, 0, 16),
		},
		PrevHOP:   2,
		NextHOP:   4,
		MaxDiffNS: 3_000_000,
	}
	return &Bundle{
		Origin: 3,
		Seq:    9,
		Epoch:  epoch,
		Samples: []receipt.SampleReceipt{{
			Path:    path,
			Samples: []receipt.SampleRecord{{PktID: 1, TimeNS: 2}, {PktID: 3, TimeNS: 4}},
		}},
		Aggs: []receipt.AggReceipt{{
			Path:   path,
			Agg:    receipt.AggID{First: 5, Last: 6},
			PktCnt: 77,
		}},
	}
}

// FuzzDecodeBundle: DecodeBundle must be total over both the current
// v2 encoding and the legacy pre-epoch v1 encoding — any byte string
// either decodes into a bundle that re-encodes byte-identically under
// its own version, or returns an error wrapping ErrCorruptBundle;
// never a panic, whatever the headers claim.
func FuzzDecodeBundle(f *testing.F) {
	v2 := fuzzBundle(4).Encode()
	f.Add(v2)
	v1, err := fuzzBundle(0).EncodeV1()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v1)
	f.Add([]byte{})
	f.Add([]byte("VPM2"))
	f.Add([]byte("VPM1"))
	f.Add([]byte("VPM3----------------------------"))
	f.Add(v2[:len(v2)-5])
	f.Add(append(append([]byte{}, v2...), 0xAA)) // trailing byte
	corrupt := append([]byte{}, v2...)
	corrupt[33] ^= 0xff // inside the first receipt
	f.Add(corrupt)
	// Header claiming 4 billion samples.
	huge := append([]byte{}, v2[:24]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBundle(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptBundle) {
				t.Fatalf("untyped decode error %v (%T)", err, err)
			}
			if b != nil {
				t.Fatal("error with a non-nil bundle")
			}
			return
		}
		var re []byte
		switch [4]byte(data[0:4]) {
		case bundleMagic:
			re = b.Encode()
		case bundleMagicV1:
			if b.Epoch != 0 {
				t.Fatalf("v1 bundle decoded with epoch %d", b.Epoch)
			}
			re, err = b.EncodeV1()
			if err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("accepted unknown magic %q", data[0:4])
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encoding differs:\n in: %x\nout: %x", data, re)
		}
	})
}
