package dissem

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps test backoffs in the microsecond range.
var fastRetry = RetryPolicy{Attempts: 4, Base: time.Microsecond, Max: 10 * time.Microsecond}

// flappingServer wraps a real bundle server behind a handler that
// fails the first failN requests with 503 — the collector-restarting
// window a fleet verifier must ride out.
func flappingServer(t *testing.T, failN int64) (*httptest.Server, *Client, *int64) {
	t.Helper()
	signer := NewSigner(seedOf(9))
	srv := NewServer(7, signer)
	srv.PublishEpoch(0, sampleBundle(7, 0).Samples, sampleBundle(7, 0).Aggs)
	srv.PublishEpoch(1, sampleBundle(7, 1).Samples, nil)
	var requests int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt64(&requests, 1) <= failN {
			http.Error(w, "restarting", http.StatusServiceUnavailable)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)
	client := &Client{Registry: Registry{7: signer.Public()}}
	return hs, client, &requests
}

func TestRetryRidesOutFlappingServer(t *testing.T) {
	hs, client, requests := flappingServer(t, 2)
	ctx := context.Background()
	var got int
	err := Retry(ctx, fastRetry, func() error {
		got = 0
		return client.FetchEach(ctx, hs.URL, 7, 0, func(b *Bundle) error {
			got++
			return nil
		})
	})
	if err != nil {
		t.Fatalf("retry over flapping server: %v", err)
	}
	if got != 2 {
		t.Fatalf("fetched %d bundles, want 2", got)
	}
	if n := atomic.LoadInt64(requests); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + 1 success)", n)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	hs, client, requests := flappingServer(t, 1<<30) // never recovers
	ctx := context.Background()
	err := Retry(ctx, fastRetry, func() error {
		return client.FetchEach(ctx, hs.URL, 7, 0, func(*Bundle) error { return nil })
	})
	var budget *RetryBudgetError
	if !errors.As(err, &budget) {
		t.Fatalf("want *RetryBudgetError, got %v", err)
	}
	if budget.Attempts != fastRetry.Attempts {
		t.Fatalf("gave up after %d attempts, want %d", budget.Attempts, fastRetry.Attempts)
	}
	if budget.Err == nil {
		t.Fatal("budget error does not wrap the last attempt's error")
	}
	// The loop is bounded: exactly one request per budgeted attempt.
	if n := atomic.LoadInt64(requests); n != int64(fastRetry.Attempts) {
		t.Fatalf("server saw %d requests, want %d", n, fastRetry.Attempts)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	sigErr := fmt.Errorf("signature mismatch")
	tries := 0
	err := Retry(context.Background(), fastRetry, func() error {
		tries++
		return Permanent(sigErr)
	})
	if !errors.Is(err, sigErr) {
		t.Fatalf("want the permanent error back, got %v", err)
	}
	if tries != 1 {
		t.Fatalf("permanent error retried %d times, want 1", tries)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
}

func TestRetryContextCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	slow := RetryPolicy{Attempts: 3, Base: time.Hour}
	tries := 0
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, slow, func() error {
			tries++
			return fmt.Errorf("down")
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		var budget *RetryBudgetError
		if !errors.As(err, &budget) || !errors.Is(err, context.Canceled) {
			t.Fatalf("want budget error wrapping context.Canceled, got %v", err)
		}
		if tries != 1 {
			t.Fatalf("ran %d tries, want 1 (cancel hit during first backoff)", tries)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry did not observe context cancellation")
	}
}

func TestRetryPolicyBackoffCaps(t *testing.T) {
	p := RetryPolicy{Attempts: 10, Base: 100 * time.Millisecond, Max: 300 * time.Millisecond}
	if d := p.wait(1); d != 100*time.Millisecond {
		t.Fatalf("wait(1) = %v", d)
	}
	if d := p.wait(2); d != 200*time.Millisecond {
		t.Fatalf("wait(2) = %v", d)
	}
	if d := p.wait(3); d != 300*time.Millisecond {
		t.Fatalf("wait(3) = %v, want capped at Max", d)
	}
	if d := p.wait(62); d != 300*time.Millisecond {
		t.Fatalf("wait(62) = %v, want Max after shift overflow", d)
	}
}
