package dissem

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"vpm/internal/receipt"
)

// Server publishes one HOP's signed receipt bundles over HTTP. Mount
// it at a path of your choice; GET ?since=N returns all bundles with
// Seq >= N as a JSON array of SignedBundle. Wrap in TLS for the
// paper's HTTPS web-site realization.
type Server struct {
	hop    receipt.HOPID
	signer *Signer

	mu      sync.RWMutex
	bundles []SignedBundle
	nextSeq uint64
}

// NewServer builds a publisher for one HOP.
func NewServer(hop receipt.HOPID, signer *Signer) *Server {
	return &Server{hop: hop, signer: signer}
}

// Publish signs and retains the given receipts as the next bundle,
// returning its sequence number.
func (s *Server) Publish(samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.nextSeq
	s.nextSeq++
	b := &Bundle{Origin: s.hop, Seq: seq, Samples: samples, Aggs: aggs}
	s.bundles = append(s.bundles, s.signer.Sign(b))
	return seq
}

// BundleCount returns how many bundles have been published.
func (s *Server) BundleCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bundles)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	since := uint64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		since = v
	}
	s.mu.RLock()
	var out []SignedBundle
	if since < uint64(len(s.bundles)) {
		out = append(out, s.bundles[since:]...)
	}
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		// Connection-level failure; nothing more to do.
		return
	}
}

// Client fetches and authenticates bundles from HOP servers.
type Client struct {
	// HTTP is the underlying client (http.DefaultClient if nil).
	HTTP *http.Client
	// Registry supplies the verification key per origin HOP.
	Registry Registry
}

// Fetch retrieves all bundles with Seq >= since from the HOP server at
// baseURL, verifies each signature against the registered key of
// origin, and returns the decoded bundles. Any verification failure
// aborts the fetch: unauthenticated receipts are never returned.
func (c *Client) Fetch(ctx context.Context, baseURL string, origin receipt.HOPID, since uint64) ([]*Bundle, error) {
	var out []*Bundle
	err := c.FetchEach(ctx, baseURL, origin, since, func(b *Bundle) error {
		out = append(out, b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FetchEach is the streaming form of Fetch: the server's JSON response
// is decoded incrementally, each bundle is signature-verified as it
// arrives, and fn is invoked per authenticated bundle — the whole
// interval's receipts never sit in memory at once. A verification
// failure or an fn error aborts the stream and is returned; bundles
// already passed to fn stay consumed (ingest is incremental by
// design — pair FetchEach with a Verifier whose answers are only read
// after a successful drain).
func (c *Client) FetchEach(ctx context.Context, baseURL string, origin receipt.HOPID, since uint64, fn func(*Bundle) error) error {
	pub, ok := c.Registry[origin]
	if !ok {
		return fmt.Errorf("dissem: no registered key for %v", origin)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	url := fmt.Sprintf("%s?since=%d", baseURL, since)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("dissem: fetching %v: %w", origin, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dissem: %v returned %s", origin, resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("dissem: decoding response from %v: %w", origin, err)
	}
	if tok == nil {
		return nil // JSON null: no bundles
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("dissem: response from %v is not a bundle array", origin)
	}
	for i := 0; dec.More(); i++ {
		var sb SignedBundle
		if err := dec.Decode(&sb); err != nil {
			return fmt.Errorf("dissem: decoding bundle %d from %v: %w", i, origin, err)
		}
		b, err := Verify(pub, origin, sb)
		if err != nil {
			return fmt.Errorf("dissem: bundle %d from %v: %w", i, origin, err)
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	if _, err := dec.Token(); err != nil {
		return fmt.Errorf("dissem: decoding response from %v: %w", origin, err)
	}
	return nil
}

// Bus is an in-memory alternative to the HTTP transport for
// simulations: publish and subscribe without sockets, with the same
// sign/verify discipline.
type Bus struct {
	mu      sync.RWMutex
	servers map[receipt.HOPID]*Server
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{servers: make(map[receipt.HOPID]*Server)}
}

// Attach registers a HOP's server on the bus.
func (b *Bus) Attach(s *Server) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.servers[s.hop] = s
}

// Collect returns all verified bundles from the given HOP.
func (b *Bus) Collect(reg Registry, origin receipt.HOPID) ([]*Bundle, error) {
	out := make([]*Bundle, 0)
	err := b.CollectEach(reg, origin, func(bundle *Bundle) error {
		out = append(out, bundle)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CollectEach is the streaming form of Collect: each of the HOP's
// bundles is verified and handed to fn one at a time, without
// materializing the full interval. fn runs outside the bus and server
// locks, so it may ingest into a verifier (or publish elsewhere)
// freely; a verification failure or fn error aborts the stream.
func (b *Bus) CollectEach(reg Registry, origin receipt.HOPID, fn func(*Bundle) error) error {
	b.mu.RLock()
	s, ok := b.servers[origin]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("dissem: HOP %v not on bus", origin)
	}
	pub, ok := reg[origin]
	if !ok {
		return fmt.Errorf("dissem: no registered key for %v", origin)
	}
	for i := 0; ; i++ {
		s.mu.RLock()
		if i >= len(s.bundles) {
			s.mu.RUnlock()
			return nil
		}
		sb := s.bundles[i]
		s.mu.RUnlock()
		bundle, err := Verify(pub, origin, sb)
		if err != nil {
			return fmt.Errorf("dissem: bundle %d from %v: %w", i, origin, err)
		}
		if err := fn(bundle); err != nil {
			return err
		}
	}
}
