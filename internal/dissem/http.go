package dissem

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"vpm/internal/receipt"
)

// BaseHeader is the response header a Server sets on every fetch: the
// sequence number of the oldest bundle it still retains. A client
// whose cursor lies below it has permanently missed bundles
// (DropThrough pruned them) and receives a GapError instead of a
// silently clamped stream.
const BaseHeader = "X-VPM-Base"

// ViewerHeader carries the requesting verifier's identity on fetches,
// so simulations can model per-verifier misbehavior (equivocation).
// Honest servers ignore it.
const ViewerHeader = "X-VPM-Viewer"

// DefaultFetchTimeout bounds a fetch when the caller supplies neither
// an HTTP client nor a context deadline. Without it a single hung HOP
// server stalls collection forever (http.DefaultClient has no
// timeout).
var DefaultFetchTimeout = 30 * time.Second

// GapError reports a cursor fetch reaching into a pruned range: the
// server's retention base has moved past the requested since, so
// bundles [Since, Base) are permanently gone. The caller decides
// whether to resume from Base (accepting the loss) or to treat the
// origin as having destroyed evidence.
type GapError struct {
	Origin      receipt.HOPID
	Since, Base uint64
}

// Error implements error.
func (e *GapError) Error() string {
	return fmt.Sprintf("dissem: %v pruned bundles [%d, %d); cursor %d cannot be served completely",
		e.Origin, e.Since, e.Base, e.Since)
}

// BundleError wraps a per-bundle verification failure with the origin,
// sequence number and the epoch the publisher tagged the bundle with,
// so a consumer can classify the evidence (attributed to the right
// interval) and skip past the poisoned bundle instead of stalling its
// cursor on it.
type BundleError struct {
	Origin receipt.HOPID
	Seq    uint64
	Epoch  uint64
	Err    error
}

// Error implements error.
func (e *BundleError) Error() string {
	return fmt.Sprintf("dissem: bundle %d from %v: %v", e.Seq, e.Origin, e.Err)
}

// Unwrap exposes the underlying verification failure.
func (e *BundleError) Unwrap() error { return e.Err }

// Server publishes one HOP's signed receipt bundles over HTTP. Mount
// it at a path of your choice; GET ?since=N returns all bundles with
// Seq >= N, GET ?epoch=E only the bundles tagged with epoch E (the
// two filters compose), as a JSON array of SignedBundle. Wrap in TLS
// for the paper's HTTPS web-site realization.
type Server struct {
	hop    receipt.HOPID
	signer *Signer

	mu      sync.RWMutex
	bundles []published
	base    uint64 // Seq of bundles[0]; earlier bundles were dropped
	nextSeq uint64
	tamper  BundleTamper // simulation hook for dissemination attacks
}

// published is one signed bundle plus the epoch it was tagged with,
// kept in the clear so the server can filter without re-decoding
// payloads.
type published struct {
	sb    SignedBundle
	epoch uint64
}

// NewServer builds a publisher for one HOP.
func NewServer(hop receipt.HOPID, signer *Signer) *Server {
	return &Server{hop: hop, signer: signer}
}

// Publish signs and retains the given receipts as the next bundle,
// returning its sequence number. Batch (single-interval) use; the
// bundle is tagged epoch 0.
func (s *Server) Publish(samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) uint64 {
	return s.PublishEpoch(0, samples, aggs)
}

// PublishEpoch signs and retains one sealed epoch's receipts as the
// next bundle, tagged with the epoch so subscribers can route it into
// the matching window segment. Returns the bundle's sequence number.
func (s *Server) PublishEpoch(epoch uint64, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.nextSeq
	s.nextSeq++
	b := &Bundle{Origin: s.hop, Seq: seq, Epoch: epoch, Samples: samples, Aggs: aggs}
	s.bundles = append(s.bundles, published{sb: s.signer.Sign(b), epoch: epoch})
	return seq
}

// BundleCount returns how many bundles the server currently retains.
func (s *Server) BundleCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bundles)
}

// Base returns the sequence number of the oldest retained bundle —
// everything below it was pruned by DropThrough.
func (s *Server) Base() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base
}

// DropThrough discards every retained bundle with Seq <= seq — the
// publisher-side garbage collection of continuous operation. Sequence
// numbers are stable across drops: later fetches with ?since continue
// to work, and a fetch reaching into the dropped range simply returns
// what is still retained (the subscriber's cursor discipline guarantees
// it already consumed the rest). Without periodic drops an endless
// epoch stream accumulates in the server forever.
func (s *Server) DropThrough(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq < s.base {
		return
	}
	n := seq - s.base + 1
	if n > uint64(len(s.bundles)) {
		n = uint64(len(s.bundles))
	}
	s.bundles = append(s.bundles[:0:0], s.bundles[n:]...)
	s.base += n
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	since := uint64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		since = v
	}
	epochFilter, hasEpoch := uint64(0), false
	if q := r.URL.Query().Get("epoch"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad epoch parameter", http.StatusBadRequest)
			return
		}
		epochFilter, hasEpoch = v, true
	}
	viewer := r.URL.Query().Get("viewer")
	if viewer == "" {
		viewer = r.Header.Get(ViewerHeader)
	}
	s.mu.RLock()
	var out []SignedBundle
	base := s.base
	start := uint64(0)
	if since > s.base {
		start = since - s.base
	}
	if start < uint64(len(s.bundles)) {
		for i, p := range s.bundles[start:] {
			if hasEpoch && p.epoch != epochFilter {
				continue
			}
			sb := p.sb
			if s.tamper != nil {
				var ok bool
				if sb, ok = s.tamper.Serve(viewer, s.base+start+uint64(i), p.epoch, sb); !ok {
					continue
				}
			}
			out = append(out, sb)
		}
	}
	s.mu.RUnlock()
	// The base is always advertised: a cursor below it has permanently
	// missed bundles, and silently clamping would hide that from the
	// lagging verifier (Fetch promises all bundles with Seq >= since).
	w.Header().Set(BaseHeader, strconv.FormatUint(base, 10))
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		// Connection-level failure; nothing more to do.
		return
	}
}

// Client fetches and authenticates bundles from HOP servers.
type Client struct {
	// HTTP is the underlying client. nil selects a default client with
	// DefaultFetchTimeout — never the timeout-less http.DefaultClient,
	// which would let one hung HOP stall collection forever. Context
	// deadlines on the fetch calls are honored either way.
	HTTP *http.Client
	// Registry supplies the verification key per origin HOP.
	Registry Registry
	// Viewer optionally identifies this verifier to servers (sent as
	// the X-VPM-Viewer header); simulations use it to model
	// per-verifier misbehavior.
	Viewer string
}

// Fetch retrieves all bundles with Seq >= since from the HOP server at
// baseURL, verifies each signature against the registered key of
// origin, and returns the decoded bundles. Any verification failure
// aborts the fetch: unauthenticated receipts are never returned.
func (c *Client) Fetch(ctx context.Context, baseURL string, origin receipt.HOPID, since uint64) ([]*Bundle, error) {
	var out []*Bundle
	err := c.FetchEach(ctx, baseURL, origin, since, func(b *Bundle) error {
		out = append(out, b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FetchEach is the streaming form of Fetch: the server's JSON response
// is decoded incrementally, each bundle is signature-verified as it
// arrives, and fn is invoked per authenticated bundle — the whole
// interval's receipts never sit in memory at once. A verification
// failure or an fn error aborts the stream and is returned; bundles
// already passed to fn stay consumed (ingest is incremental by
// design — pair FetchEach with a Verifier whose answers are only read
// after a successful drain). When the server advertises a retention
// base above since (it pruned bundles the cursor never consumed),
// FetchEach returns a GapError before delivering anything: the caller
// must decide how to handle the permanently missing bundles rather
// than silently skipping them.
func (c *Client) FetchEach(ctx context.Context, baseURL string, origin receipt.HOPID, since uint64, fn func(*Bundle) error) error {
	return c.fetchEach(ctx, fmt.Sprintf("%s?since=%d", baseURL, since), origin, &since, fn)
}

// FetchEpochEach streams only the bundles the server tagged with the
// given epoch — the per-epoch subscription of a rolling verifier.
// Signatures are verified per bundle exactly as in FetchEach, and the
// epoch claim inside each authenticated payload is checked against the
// requested epoch so a server cannot smuggle another interval's
// receipts into the response.
func (c *Client) FetchEpochEach(ctx context.Context, baseURL string, origin receipt.HOPID, epoch uint64, fn func(*Bundle) error) error {
	return c.fetchEach(ctx, fmt.Sprintf("%s?epoch=%d", baseURL, epoch), origin, nil, func(b *Bundle) error {
		if b.Epoch != epoch {
			return fmt.Errorf("dissem: %v sent epoch %d in an epoch-%d fetch", origin, b.Epoch, epoch)
		}
		return fn(b)
	})
}

// fetchEach GETs url and streams each authenticated bundle to fn.
// since, when non-nil, is the cursor the fetch promised to serve
// completely; a server base above it becomes a GapError.
func (c *Client) fetchEach(ctx context.Context, url string, origin receipt.HOPID, since *uint64, fn func(*Bundle) error) error {
	pub, ok := c.Registry[origin]
	if !ok {
		return fmt.Errorf("dissem: no registered key for %v", origin)
	}
	hc := c.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: DefaultFetchTimeout}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if c.Viewer != "" {
		req.Header.Set(ViewerHeader, c.Viewer)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("dissem: fetching %v: %w", origin, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dissem: %v returned %s", origin, resp.Status)
	}
	if since != nil {
		if h := resp.Header.Get(BaseHeader); h != "" {
			base, err := strconv.ParseUint(h, 10, 64)
			if err == nil && base > *since {
				return &GapError{Origin: origin, Since: *since, Base: base}
			}
		}
	}
	dec := json.NewDecoder(resp.Body)
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("dissem: decoding response from %v: %w", origin, err)
	}
	if tok == nil {
		return nil // JSON null: no bundles
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("dissem: response from %v is not a bundle array", origin)
	}
	for i := 0; dec.More(); i++ {
		var sb SignedBundle
		if err := dec.Decode(&sb); err != nil {
			return fmt.Errorf("dissem: decoding bundle %d from %v: %w", i, origin, err)
		}
		b, err := Verify(pub, origin, sb)
		if err != nil {
			return fmt.Errorf("dissem: bundle %d from %v: %w", i, origin, err)
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	if _, err := dec.Token(); err != nil {
		return fmt.Errorf("dissem: decoding response from %v: %w", origin, err)
	}
	return nil
}

// Bus is an in-memory alternative to the HTTP transport for
// simulations: publish and subscribe without sockets, with the same
// sign/verify discipline.
type Bus struct {
	mu      sync.RWMutex
	servers map[receipt.HOPID]*Server
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{servers: make(map[receipt.HOPID]*Server)}
}

// Attach registers a HOP's server on the bus.
func (b *Bus) Attach(s *Server) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.servers[s.hop] = s
}

// Collect returns all verified bundles from the given HOP.
func (b *Bus) Collect(reg Registry, origin receipt.HOPID) ([]*Bundle, error) {
	out := make([]*Bundle, 0)
	err := b.CollectEach(reg, origin, func(bundle *Bundle) error {
		out = append(out, bundle)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CollectSince streams the HOP's verified bundles with Seq >= since to
// fn and returns the next since value — the incremental-subscription
// primitive: a rolling verifier polls each HOP with the cursor from
// the previous call and sees every bundle exactly once. The cursor
// advances only past bundles fn consumed successfully, so retrying
// with the returned cursor after an error re-delivers the failed
// bundle (at-least-once). When the server pruned bundles the cursor
// never consumed (DropThrough moved its base past since), CollectSince
// returns a GapError instead of silently skipping the gap; resume from
// the error's Base to accept the loss explicitly.
func (b *Bus) CollectSince(reg Registry, origin receipt.HOPID, since uint64, fn func(*Bundle) error) (uint64, error) {
	return b.CollectSinceAs("", reg, origin, since, fn)
}

// CollectSinceAs is CollectSince with a viewer identity, which
// simulated per-verifier misbehavior (an Equivocator tamper) keys on.
func (b *Bus) CollectSinceAs(viewer string, reg Registry, origin receipt.HOPID, since uint64, fn func(*Bundle) error) (uint64, error) {
	s, ok := b.server(origin)
	if !ok {
		return since, fmt.Errorf("dissem: HOP %v not on bus", origin)
	}
	if base := s.Base(); since < base {
		return since, &GapError{Origin: origin, Since: since, Base: base}
	}
	next := since
	err := b.collectFrom(viewer, reg, origin, since, func(bundle *Bundle, seq uint64) error {
		if err := fn(bundle); err != nil {
			return err
		}
		if seq >= next {
			next = seq + 1
		}
		return nil
	})
	return next, err
}

// CollectEach is the streaming form of Collect: each of the HOP's
// bundles is verified and handed to fn one at a time, without
// materializing the full interval. fn runs outside the bus and server
// locks, so it may ingest into a verifier (or publish elsewhere)
// freely; a verification failure or fn error aborts the stream.
// Unlike the cursor-based CollectSince, CollectEach means "everything
// still retained": bundles pruned by DropThrough are skipped silently.
func (b *Bus) CollectEach(reg Registry, origin receipt.HOPID, fn func(*Bundle) error) error {
	return b.collectFrom("", reg, origin, 0, func(bundle *Bundle, _ uint64) error { return fn(bundle) })
}

// CollectEpochEach streams only the HOP's bundles tagged with the
// given epoch — the per-epoch fetch a rolling verifier issues when it
// learns an interval has closed. Every bundle is still signature-
// verified before the epoch filter is applied.
func (b *Bus) CollectEpochEach(reg Registry, origin receipt.HOPID, epoch uint64, fn func(*Bundle) error) error {
	return b.collectFrom("", reg, origin, 0, func(bundle *Bundle, _ uint64) error {
		if bundle.Epoch != epoch {
			return nil
		}
		return fn(bundle)
	})
}

// server resolves an attached HOP server.
func (b *Bus) server(origin receipt.HOPID) (*Server, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	s, ok := b.servers[origin]
	return s, ok
}

// collectFrom streams the HOP's verified bundles at log positions >=
// since to fn, along with each bundle's server-side sequence number.
// Sequence numbers index the server's log behind its base offset
// (bundles below the base were dropped by DropThrough and are
// skipped — CollectSince surfaces that as a GapError before calling
// here). A verification failure is returned as a *BundleError naming
// the origin and sequence, so cursor-based consumers can classify it
// and skip past the poisoned bundle.
func (b *Bus) collectFrom(viewer string, reg Registry, origin receipt.HOPID, since uint64, fn func(*Bundle, uint64) error) error {
	s, ok := b.server(origin)
	if !ok {
		return fmt.Errorf("dissem: HOP %v not on bus", origin)
	}
	pub, ok := reg[origin]
	if !ok {
		return fmt.Errorf("dissem: no registered key for %v", origin)
	}
	for i := since; ; i++ {
		s.mu.RLock()
		if i < s.base {
			i = s.base
		}
		idx := i - s.base
		if idx >= uint64(len(s.bundles)) {
			s.mu.RUnlock()
			return nil
		}
		sb := s.bundles[idx].sb
		epoch := s.bundles[idx].epoch
		tamper := s.tamper
		s.mu.RUnlock()
		if tamper != nil {
			var serve bool
			if sb, serve = tamper.Serve(viewer, i, epoch, sb); !serve {
				continue // withheld: the consumer sees only absence
			}
		}
		bundle, err := Verify(pub, origin, sb)
		if err != nil {
			return &BundleError{Origin: origin, Seq: i, Epoch: epoch, Err: err}
		}
		if err := fn(bundle, i); err != nil {
			return err
		}
	}
}
