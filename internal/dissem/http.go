package dissem

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"vpm/internal/receipt"
)

// Server publishes one HOP's signed receipt bundles over HTTP. Mount
// it at a path of your choice; GET ?since=N returns all bundles with
// Seq >= N as a JSON array of SignedBundle. Wrap in TLS for the
// paper's HTTPS web-site realization.
type Server struct {
	hop    receipt.HOPID
	signer *Signer

	mu      sync.RWMutex
	bundles []SignedBundle
	nextSeq uint64
}

// NewServer builds a publisher for one HOP.
func NewServer(hop receipt.HOPID, signer *Signer) *Server {
	return &Server{hop: hop, signer: signer}
}

// Publish signs and retains the given receipts as the next bundle,
// returning its sequence number.
func (s *Server) Publish(samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.nextSeq
	s.nextSeq++
	b := &Bundle{Origin: s.hop, Seq: seq, Samples: samples, Aggs: aggs}
	s.bundles = append(s.bundles, s.signer.Sign(b))
	return seq
}

// BundleCount returns how many bundles have been published.
func (s *Server) BundleCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bundles)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	since := uint64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		since = v
	}
	s.mu.RLock()
	var out []SignedBundle
	if since < uint64(len(s.bundles)) {
		out = append(out, s.bundles[since:]...)
	}
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		// Connection-level failure; nothing more to do.
		return
	}
}

// Client fetches and authenticates bundles from HOP servers.
type Client struct {
	// HTTP is the underlying client (http.DefaultClient if nil).
	HTTP *http.Client
	// Registry supplies the verification key per origin HOP.
	Registry Registry
}

// Fetch retrieves all bundles with Seq >= since from the HOP server at
// baseURL, verifies each signature against the registered key of
// origin, and returns the decoded bundles. Any verification failure
// aborts the fetch: unauthenticated receipts are never returned.
func (c *Client) Fetch(ctx context.Context, baseURL string, origin receipt.HOPID, since uint64) ([]*Bundle, error) {
	pub, ok := c.Registry[origin]
	if !ok {
		return nil, fmt.Errorf("dissem: no registered key for %v", origin)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	url := fmt.Sprintf("%s?since=%d", baseURL, since)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dissem: fetching %v: %w", origin, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dissem: %v returned %s", origin, resp.Status)
	}
	var signed []SignedBundle
	if err := json.NewDecoder(resp.Body).Decode(&signed); err != nil {
		return nil, fmt.Errorf("dissem: decoding response from %v: %w", origin, err)
	}
	out := make([]*Bundle, 0, len(signed))
	for i, sb := range signed {
		b, err := Verify(pub, origin, sb)
		if err != nil {
			return nil, fmt.Errorf("dissem: bundle %d from %v: %w", i, origin, err)
		}
		out = append(out, b)
	}
	return out, nil
}

// Bus is an in-memory alternative to the HTTP transport for
// simulations: publish and subscribe without sockets, with the same
// sign/verify discipline.
type Bus struct {
	mu      sync.RWMutex
	servers map[receipt.HOPID]*Server
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{servers: make(map[receipt.HOPID]*Server)}
}

// Attach registers a HOP's server on the bus.
func (b *Bus) Attach(s *Server) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.servers[s.hop] = s
}

// Collect returns all verified bundles from the given HOP.
func (b *Bus) Collect(reg Registry, origin receipt.HOPID) ([]*Bundle, error) {
	b.mu.RLock()
	s, ok := b.servers[origin]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dissem: HOP %v not on bus", origin)
	}
	pub, ok := reg[origin]
	if !ok {
		return nil, fmt.Errorf("dissem: no registered key for %v", origin)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Bundle, 0, len(s.bundles))
	for i, sb := range s.bundles {
		bundle, err := Verify(pub, origin, sb)
		if err != nil {
			return nil, fmt.Errorf("dissem: bundle %d from %v: %w", i, origin, err)
		}
		out = append(out, bundle)
	}
	return out, nil
}
