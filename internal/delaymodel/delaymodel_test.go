package delaymodel

import (
	"testing"

	"vpm/internal/stats"
)

// drive feeds n foreground packets of size bytes at the given rate and
// returns their delays in milliseconds.
func drive(t *testing.T, q *Queue, n int, gapNS int64, bytes int) []float64 {
	t.Helper()
	delays := make([]float64, n)
	now := int64(0)
	for i := 0; i < n; i++ {
		d := q.DelayOf(now, bytes)
		if d < 0 {
			t.Fatalf("negative delay %d at packet %d", d, i)
		}
		delays[i] = float64(d) / 1e6
		now += gapNS
	}
	return delays
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{CapacityBps: 0, QueueBytes: 1}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(Config{CapacityBps: 1e9, QueueBytes: 0}); err == nil {
		t.Error("zero queue accepted")
	}
	bad := BurstyUDPScenario(1)
	bad.UDP[0].MeanOnNS = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid UDP flow accepted")
	}
	badTCP := MixedScenario(1)
	badTCP.TCP[0].RTTNS = 0
	if _, err := New(badTCP); err == nil {
		t.Error("invalid TCP flow accepted")
	}
}

func TestNoBackgroundMinimalDelay(t *testing.T) {
	q, err := New(Config{CapacityBps: 1e9, QueueBytes: 1e6, PropagationNS: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	// Sparse foreground arrivals: queue fully drains between packets,
	// so delay is own transmission + propagation.
	delays := drive(t, q, 100, 1e6 /* 1ms apart */, 400)
	wantMS := (400*8/1e9)*1e3 + 1.0
	for i, d := range delays {
		if d < 0.99 || d > wantMS+0.01 {
			t.Fatalf("packet %d delay %vms, want ~%vms", i, d, wantMS)
		}
	}
}

func TestCongestionCreatesSpikes(t *testing.T) {
	q, err := New(BurstyUDPScenario(11))
	if err != nil {
		t.Fatal(err)
	}
	// 100k pkt/s foreground of 400B packets for 2 simulated seconds.
	delays := drive(t, q, 200000, 10_000, 400)
	s := stats.Summarize(delays)
	if s.P99 < 2*s.P50 {
		t.Errorf("expected spiky delays: p50=%vms p99=%vms", s.P50, s.P99)
	}
	if s.Max > float64(q.MaxDelayNS(400))/1e6+0.001 {
		t.Errorf("delay %vms exceeds structural max %vms", s.Max, float64(q.MaxDelayNS(400))/1e6)
	}
	if s.P90 < 1.0 {
		t.Errorf("congested p90 %vms suspiciously small", s.P90)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []float64 {
		q, err := New(BurstyUDPScenario(42))
		if err != nil {
			t.Fatal(err)
		}
		return drive(t, q, 50000, 10_000, 400)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSeedsProduceDifferentProcesses(t *testing.T) {
	q1, _ := New(BurstyUDPScenario(1))
	q2, _ := New(BurstyUDPScenario(2))
	d1 := drive(t, q1, 50000, 10_000, 400)
	d2 := drive(t, q2, 50000, 10_000, 400)
	same := 0
	for i := range d1 {
		if d1[i] == d2[i] {
			same++
		}
	}
	if same == len(d1) {
		t.Error("different seeds produced identical delay series")
	}
}

func TestBacklogBounded(t *testing.T) {
	cfg := BurstyUDPScenario(3)
	q, _ := New(cfg)
	now := int64(0)
	for i := 0; i < 300000; i++ {
		q.DelayOf(now, 400)
		if q.Backlog() > cfg.QueueBytes+1 {
			t.Fatalf("backlog %v exceeds buffer %v", q.Backlog(), cfg.QueueBytes)
		}
		now += 10_000
	}
	if q.DroppedBytes() == 0 {
		t.Error("bursty scenario should overflow the buffer at least once")
	}
}

func TestMixedScenarioAIMD(t *testing.T) {
	q, err := New(MixedScenario(5))
	if err != nil {
		t.Fatal(err)
	}
	delays := drive(t, q, 200000, 10_000, 400)
	s := stats.Summarize(delays)
	if s.StdDev == 0 {
		t.Error("AIMD scenario produced constant delays")
	}
	// AIMD rates should stay clamped below capacity.
	for _, tc := range q.tcp {
		if tc.rateBps > q.cfg.CapacityBps {
			t.Errorf("AIMD rate %v exceeds capacity", tc.rateBps)
		}
	}
}

func TestDelayMonotoneWithBacklog(t *testing.T) {
	// Two back-to-back arrivals: the second waits behind the first.
	q, _ := New(Config{CapacityBps: 1e8, QueueBytes: 1e6, PropagationNS: 0})
	d1 := q.DelayOf(0, 1500)
	d2 := q.DelayOf(0, 1500)
	if d2 <= d1 {
		t.Errorf("second packet delay %d should exceed first %d", d2, d1)
	}
}

func TestMaxDelay(t *testing.T) {
	q, _ := New(Config{CapacityBps: 1e9, QueueBytes: 2.5e6, PropagationNS: 1e6})
	// Full buffer: 2.5e6 bytes at 125e6 B/s = 20ms, + 1ms prop.
	got := float64(q.MaxDelayNS(0)) / 1e6
	if got < 20.9 || got > 21.1 {
		t.Errorf("MaxDelayNS = %vms, want ~21ms", got)
	}
}

func BenchmarkDelayOf(b *testing.B) {
	q, _ := New(BurstyUDPScenario(1))
	now := int64(0)
	for i := 0; i < b.N; i++ {
		q.DelayOf(now, 400)
		now += 10_000
	}
}
