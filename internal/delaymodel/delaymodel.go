// Package delaymodel generates per-packet delays for traffic crossing
// a congested network segment. It replaces the NS-2 simulations the
// paper used to "create realistic congestion scenarios and generate
// the sequence of delay values that our packet sequence would
// encounter" (§7.2): a droptail bottleneck queue is shared by the
// foreground path and background cross-traffic — bursty on/off UDP
// flows and long-lived AIMD (TCP-like) flows — and each foreground
// packet's delay is its queueing plus transmission plus propagation
// time.
//
// The fluid-queue formulation tracks the bottleneck backlog exactly
// between foreground arrivals: background flows contribute arrival
// volume over each interval, the queue drains at link capacity, and
// the backlog is clamped to the buffer size (droptail). This produces
// the paper's qualitative target — delay "spikes" of high variance at
// sub-second time scales (§2.2) — with fully deterministic output.
package delaymodel

import (
	"fmt"

	"vpm/internal/stats"
)

// OnOffUDP describes one bursty constant-rate UDP background flow with
// exponentially distributed ON and OFF period durations.
type OnOffUDP struct {
	// RateBps is the sending rate while ON, in bits per second.
	RateBps float64
	// MeanOnNS and MeanOffNS are the mean period durations.
	MeanOnNS, MeanOffNS float64
}

// AIMD describes one long-lived TCP-like background flow: its rate
// grows linearly (additive increase) and halves whenever the
// bottleneck buffer overflows (multiplicative decrease).
type AIMD struct {
	// RTTNS is the flow's round-trip time, which sets the additive
	// increase rate (one MSS per RTT).
	RTTNS float64
	// StartBps is the initial sending rate.
	StartBps float64
}

// Config describes the congestion scenario at one bottleneck.
type Config struct {
	// CapacityBps is the bottleneck link rate in bits per second.
	CapacityBps float64
	// QueueBytes is the droptail buffer size. Backlog above it is
	// discarded (background loss; foreground loss is modeled
	// separately with lossmodel, as in the paper).
	QueueBytes float64
	// PropagationNS is the fixed propagation delay added to every
	// foreground packet.
	PropagationNS int64
	// UDP and TCP list the background flows.
	UDP []OnOffUDP
	TCP []AIMD
	// Seed drives all randomness in the background processes.
	Seed uint64
}

// BurstyUDPScenario reproduces the configuration behind Figure 2:
// "congestion is caused by a bursty, high-rate UDP flow" competing
// with the foreground path at a bottleneck. Capacity 1 Gbps, 2.5 MB
// buffer (20 ms worth), one UDP flow bursting at 900 Mbps with 40 ms
// mean ON and 80 ms mean OFF periods.
func BurstyUDPScenario(seed uint64) Config {
	return Config{
		CapacityBps:   1e9,
		QueueBytes:    2.5e6,
		PropagationNS: 1_000_000, // 1 ms
		UDP: []OnOffUDP{
			{RateBps: 9e8, MeanOnNS: 4e7, MeanOffNS: 8e7},
		},
		Seed: seed,
	}
}

// MixedScenario adds long-lived AIMD flows to the bursty UDP flow,
// the paper's "long-lived TCP or UDP flows compete for/saturate the
// bandwidth of a bottleneck link" alternative.
func MixedScenario(seed uint64) Config {
	c := BurstyUDPScenario(seed)
	c.UDP[0].RateBps = 6e8
	c.TCP = []AIMD{
		{RTTNS: 4e7, StartBps: 2e8},
		{RTTNS: 8e7, StartBps: 1e8},
	}
	return c
}

// udpState is the evolving state of one on/off flow.
type udpState struct {
	spec     OnOffUDP
	on       bool
	switchAt int64 // time of next state switch
	rng      *stats.RNG
}

// tcpState is the evolving state of one AIMD flow.
type tcpState struct {
	spec    AIMD
	rateBps float64
}

// Queue is the bottleneck simulator. Feed it foreground packet
// arrivals in non-decreasing time order with DelayOf; it returns each
// packet's delay through the congested segment.
type Queue struct {
	cfg          Config
	backlogBytes float64
	now          int64
	udp          []*udpState
	tcp          []*tcpState
	overflowed   bool // buffer overflowed during the last advance
	drops        float64
}

// New validates cfg and builds the bottleneck simulator.
func New(cfg Config) (*Queue, error) {
	if cfg.CapacityBps <= 0 {
		return nil, fmt.Errorf("delaymodel: non-positive capacity")
	}
	if cfg.QueueBytes <= 0 {
		return nil, fmt.Errorf("delaymodel: non-positive queue size")
	}
	root := stats.NewRNG(cfg.Seed)
	q := &Queue{cfg: cfg}
	for _, spec := range cfg.UDP {
		if spec.RateBps < 0 || spec.MeanOnNS <= 0 || spec.MeanOffNS <= 0 {
			return nil, fmt.Errorf("delaymodel: invalid UDP flow %+v", spec)
		}
		s := &udpState{spec: spec, rng: root.Split()}
		// Start OFF; first switch is exponentially distributed.
		s.switchAt = int64(s.rng.ExpFloat64() * spec.MeanOffNS)
		q.udp = append(q.udp, s)
	}
	for _, spec := range cfg.TCP {
		if spec.RTTNS <= 0 || spec.StartBps < 0 {
			return nil, fmt.Errorf("delaymodel: invalid TCP flow %+v", spec)
		}
		q.tcp = append(q.tcp, &tcpState{spec: spec, rateBps: spec.StartBps})
	}
	return q, nil
}

// advance integrates background arrivals and draining from q.now to t.
func (q *Queue) advance(t int64) {
	for q.now < t {
		// Step to the next UDP state switch or to t, whichever first.
		step := t
		for _, u := range q.udp {
			if u.switchAt > q.now && u.switchAt < step {
				step = u.switchAt
			}
		}
		dt := float64(step-q.now) / 1e9 // seconds
		// Background arrival rate over this interval.
		var bg float64 // bytes/sec
		for _, u := range q.udp {
			if u.on {
				bg += u.spec.RateBps / 8
			}
		}
		for _, tc := range q.tcp {
			bg += tc.rateBps / 8
		}
		drain := q.cfg.CapacityBps / 8
		q.backlogBytes += (bg - drain) * dt
		if q.backlogBytes < 0 {
			q.backlogBytes = 0
		}
		if q.backlogBytes > q.cfg.QueueBytes {
			q.drops += q.backlogBytes - q.cfg.QueueBytes
			q.backlogBytes = q.cfg.QueueBytes
			q.overflowed = true
		}
		// AIMD growth over the interval; decrease on overflow.
		for _, tc := range q.tcp {
			if q.overflowed {
				tc.rateBps /= 2
			} else {
				// One 1500-byte MSS per RTT of additive increase.
				tc.rateBps += 1500 * 8 / (tc.spec.RTTNS / 1e9) * dt
			}
			if tc.rateBps > q.cfg.CapacityBps {
				tc.rateBps = q.cfg.CapacityBps
			}
		}
		q.overflowed = false
		// Flip any UDP flows whose switch time has arrived.
		for _, u := range q.udp {
			if u.switchAt <= step {
				u.on = !u.on
				mean := u.spec.MeanOffNS
				if u.on {
					mean = u.spec.MeanOnNS
				}
				u.switchAt = step + int64(u.rng.ExpFloat64()*mean) + 1
			}
		}
		q.now = step
	}
}

// DelayOf returns the delay, in nanoseconds, experienced by a
// foreground packet of pktBytes arriving at the bottleneck at
// absolute time tNS. Arrival times must be non-decreasing. The
// packet's own bytes join the backlog.
func (q *Queue) DelayOf(tNS int64, pktBytes int) int64 {
	if tNS > q.now {
		q.advance(tNS)
	}
	// The packet waits for the current backlog plus its own
	// transmission, then propagates.
	drain := q.cfg.CapacityBps / 8
	queueing := (q.backlogBytes + float64(pktBytes)) / drain * 1e9
	q.backlogBytes += float64(pktBytes)
	if q.backlogBytes > q.cfg.QueueBytes {
		// Foreground loss is modeled separately (lossmodel); clamp,
		// but account the overflow as droptail discard volume.
		q.drops += q.backlogBytes - q.cfg.QueueBytes
		q.backlogBytes = q.cfg.QueueBytes
		q.overflowed = true
	}
	return int64(queueing) + q.cfg.PropagationNS
}

// Backlog returns the current queue occupancy in bytes (for tests and
// instrumentation).
func (q *Queue) Backlog() float64 { return q.backlogBytes }

// DroppedBytes returns the cumulative background bytes discarded by
// the droptail buffer.
func (q *Queue) DroppedBytes() float64 { return q.drops }

// MaxDelayNS returns the largest delay the scenario can produce: a
// full buffer ahead of the packet, plus propagation.
func (q *Queue) MaxDelayNS(pktBytes int) int64 {
	drain := q.cfg.CapacityBps / 8
	return int64((q.cfg.QueueBytes+float64(pktBytes))/drain*1e9) + q.cfg.PropagationNS
}
