// Package quantile estimates delay quantiles of all traffic through a
// domain from the delays of its sampled packets, with distribution-free
// confidence bounds — the role the paper delegates to Sommers et al.,
// "Accurate and Efficient SLA Compliance Monitoring" (reference [20]).
//
// Given n sampled delays, the true q-quantile of the traffic lies
// between two order statistics of the sample with a confidence given
// by the Binomial(n, q) distribution; no assumption about the delay
// distribution is required. The package also defines the "delay
// accuracy" metric of Figure 2: how far the receipt-based estimate of
// a domain's delay performance can be from the truth.
package quantile

import (
	"fmt"
	"sort"

	"vpm/internal/stats"
)

// Estimate is a point estimate of one delay quantile with its
// distribution-free confidence interval, in nanoseconds.
type Estimate struct {
	// Q is the quantile (e.g. 0.9 for the 90th percentile).
	Q float64
	// Point is the sample quantile.
	Point float64
	// Lo and Hi bound the true quantile at the requested confidence.
	Lo, Hi float64
	// N is the number of samples used.
	N int
	// Exact is true when the order-statistic bounds met the requested
	// confidence; false means n was too small and [Lo, Hi] fell back
	// to the sample extremes.
	Exact bool
}

// String renders the estimate in milliseconds for logs.
func (e Estimate) String() string {
	return fmt.Sprintf("q%.3g=%.3fms [%.3f,%.3f] n=%d", e.Q, e.Point/1e6, e.Lo/1e6, e.Hi/1e6, e.N)
}

// Width returns the confidence interval width in nanoseconds — the
// verifier's "accuracy" handle on its own estimate.
func (e Estimate) Width() float64 { return e.Hi - e.Lo }

// Quantile estimates the q-quantile of the underlying traffic delay
// from sampled delays (nanoseconds) at the given confidence. It
// returns an error when no samples are available.
func Quantile(delaysNS []float64, q, confidence float64) (Estimate, error) {
	n := len(delaysNS)
	if n == 0 {
		return Estimate{}, fmt.Errorf("quantile: no samples")
	}
	if q < 0 || q > 1 {
		return Estimate{}, fmt.Errorf("quantile: q %v outside [0,1]", q)
	}
	if confidence <= 0 || confidence >= 1 {
		return Estimate{}, fmt.Errorf("quantile: confidence %v outside (0,1)", confidence)
	}
	sorted := make([]float64, n)
	copy(sorted, delaysNS)
	sort.Float64s(sorted)
	est := Estimate{
		Q:     q,
		Point: stats.QuantileSorted(sorted, q),
		N:     n,
	}
	lo, hi, ok := stats.QuantileOrderBounds(n, q, confidence)
	est.Exact = ok
	if ok {
		est.Lo, est.Hi = sorted[lo-1], sorted[hi-1]
	} else {
		est.Lo, est.Hi = sorted[0], sorted[n-1]
	}
	return est, nil
}

// Quantiles estimates several quantiles from one sample set.
func Quantiles(delaysNS []float64, qs []float64, confidence float64) ([]Estimate, error) {
	out := make([]Estimate, 0, len(qs))
	for _, q := range qs {
		e, err := Quantile(delaysNS, q, confidence)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// DefaultQuantiles are the quantiles the experiments report: median,
// the SLA-typical 90th, and the tail 99th.
var DefaultQuantiles = []float64{0.50, 0.90, 0.99}

// AccuracyNS is the Figure 2 metric: the worst-case absolute error,
// across the given quantiles, between the estimates computed from
// sampled delays and the ground-truth delays of all packets. Both
// inputs are in nanoseconds; the result is in nanoseconds.
//
// This is the quantity the paper plots as "Delay Accuracy [msec]": a
// verifier working from domain X's receipts estimates X's delay
// quantiles this close to X's actual performance.
func AccuracyNS(sampledNS, truthNS []float64, qs []float64) (float64, error) {
	if len(truthNS) == 0 {
		return 0, fmt.Errorf("quantile: no ground-truth delays")
	}
	if len(sampledNS) == 0 {
		return 0, fmt.Errorf("quantile: no sampled delays")
	}
	if len(qs) == 0 {
		qs = DefaultQuantiles
	}
	sortedTruth := make([]float64, len(truthNS))
	copy(sortedTruth, truthNS)
	sort.Float64s(sortedTruth)
	sortedSample := make([]float64, len(sampledNS))
	copy(sortedSample, sampledNS)
	sort.Float64s(sortedSample)
	worst := 0.0
	for _, q := range qs {
		est := stats.QuantileSorted(sortedSample, q)
		tru := stats.QuantileSorted(sortedTruth, q)
		if d := est - tru; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	return worst, nil
}
