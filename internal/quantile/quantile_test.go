package quantile

import (
	"math"
	"sort"
	"testing"

	"vpm/internal/stats"
)

func TestQuantileValidation(t *testing.T) {
	if _, err := Quantile(nil, 0.5, 0.95); err == nil {
		t.Error("empty samples accepted")
	}
	xs := []float64{1, 2, 3}
	if _, err := Quantile(xs, -0.1, 0.95); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := Quantile(xs, 1.1, 0.95); err == nil {
		t.Error("q>1 accepted")
	}
	if _, err := Quantile(xs, 0.5, 0); err == nil {
		t.Error("zero confidence accepted")
	}
	if _, err := Quantile(xs, 0.5, 1); err == nil {
		t.Error("confidence 1 accepted")
	}
}

func TestQuantilePointEstimate(t *testing.T) {
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = float64(i) * 1e6 // 0..1000 ms
	}
	e, err := Quantile(xs, 0.9, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Point-900e6) > 1e6 {
		t.Errorf("point = %v, want ~900ms", e.Point)
	}
	if !e.Exact {
		t.Error("1001 samples should give exact bounds at 95%")
	}
	if e.Lo > e.Point || e.Hi < e.Point {
		t.Errorf("interval [%v,%v] excludes point %v", e.Lo, e.Hi, e.Point)
	}
	if e.Width() <= 0 {
		t.Error("zero-width interval")
	}
	if e.String() == "" {
		t.Error("empty String()")
	}
}

func TestQuantileSmallSampleFallback(t *testing.T) {
	xs := []float64{5, 1}
	e, err := Quantile(xs, 0.5, 0.9999)
	if err != nil {
		t.Fatal(err)
	}
	if e.Exact {
		t.Error("2 samples cannot give 99.99% bounds")
	}
	if e.Lo != 1 || e.Hi != 5 {
		t.Errorf("fallback bounds [%v,%v], want sample extremes", e.Lo, e.Hi)
	}
}

func TestQuantileCoverage(t *testing.T) {
	// Empirical coverage of the interval across resamples of a skewed
	// distribution.
	r := stats.NewRNG(3)
	const n = 300
	const trials = 500
	const q = 0.9
	const conf = 0.95
	covered := 0
	// Ground truth for Exp(1): q90 = -ln(0.1).
	truth := -math.Log(1 - q)
	xs := make([]float64, n)
	for tr := 0; tr < trials; tr++ {
		for i := range xs {
			xs[i] = r.ExpFloat64()
		}
		e, err := Quantile(xs, q, conf)
		if err != nil {
			t.Fatal(err)
		}
		if e.Lo <= truth && truth <= e.Hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < conf-0.04 {
		t.Errorf("coverage %v below nominal %v", rate, conf)
	}
}

func TestQuantiles(t *testing.T) {
	xs := make([]float64, 500)
	r := stats.NewRNG(5)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	es, err := Quantiles(xs, DefaultQuantiles, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 3 {
		t.Fatalf("%d estimates", len(es))
	}
	if !(es[0].Point <= es[1].Point && es[1].Point <= es[2].Point) {
		t.Error("quantile points not monotone")
	}
	if _, err := Quantiles(nil, DefaultQuantiles, 0.95); err == nil {
		t.Error("empty input accepted")
	}
}

func TestAccuracyPerfectSampling(t *testing.T) {
	// Sampling everything => zero error.
	xs := make([]float64, 10000)
	r := stats.NewRNG(7)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 1e6
	}
	acc, err := AccuracyNS(xs, xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0 {
		t.Errorf("accuracy %v for identical sets", acc)
	}
}

func TestAccuracyShrinksWithSampleSize(t *testing.T) {
	// More samples => better accuracy, on average over resamples.
	r := stats.NewRNG(9)
	truth := make([]float64, 200000)
	for i := range truth {
		truth[i] = r.ExpFloat64() * 10e6 // mean 10ms
	}
	meanAcc := func(k int) float64 {
		total := 0.0
		const reps = 10
		for rep := 0; rep < reps; rep++ {
			sample := make([]float64, k)
			for i := range sample {
				sample[i] = truth[r.Intn(len(truth))]
			}
			a, err := AccuracyNS(sample, truth, nil)
			if err != nil {
				t.Fatal(err)
			}
			total += a
		}
		return total / reps
	}
	small := meanAcc(100)
	big := meanAcc(10000)
	if big >= small {
		t.Errorf("accuracy did not improve with samples: n=100 -> %v, n=10000 -> %v", small, big)
	}
}

func TestAccuracyValidation(t *testing.T) {
	if _, err := AccuracyNS(nil, []float64{1}, nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := AccuracyNS([]float64{1}, nil, nil); err == nil {
		t.Error("empty truth accepted")
	}
}

func TestAccuracyCustomQuantiles(t *testing.T) {
	truth := make([]float64, 1000)
	for i := range truth {
		truth[i] = float64(i)
	}
	sample := make([]float64, len(truth))
	copy(sample, truth)
	// Corrupt only the extreme tail: p50/p90 unaffected, p999 moves.
	sort.Float64s(sample)
	sample[len(sample)-1] = 1e9
	aMid, _ := AccuracyNS(sample, truth, []float64{0.5})
	aTail, _ := AccuracyNS(sample, truth, []float64{0.9999})
	if aMid != 0 {
		t.Errorf("median accuracy %v, want 0", aMid)
	}
	if aTail == 0 {
		t.Error("tail corruption invisible to p9999")
	}
}

func BenchmarkQuantile(b *testing.B) {
	r := stats.NewRNG(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Quantile(xs, 0.9, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}
