package sampling

import (
	"math"
	"reflect"
	"testing"

	"vpm/internal/receipt"
	"vpm/internal/stats"
)

// stream generates n pseudo-random packet digests.
func stream(seed uint64, n int) []uint64 {
	r := stats.NewRNG(seed)
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = r.Uint64()
	}
	return ids
}

// run feeds ids (1ns apart) to a fresh sampler and returns the sampled
// IDs as a set.
func run(cfg Config, ids []uint64) map[uint64]bool {
	s := New(cfg)
	for i, id := range ids {
		s.Observe(id, int64(i))
	}
	out := make(map[uint64]bool)
	for _, rec := range s.Take() {
		out[rec.PktID] = true
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MarkerRate: 0, SampleRate: 0.1},
		{MarkerRate: -0.1, SampleRate: 0.1},
		{MarkerRate: 1.5, SampleRate: 0.1},
		{MarkerRate: 0.01, SampleRate: -0.1},
		{MarkerRate: 0.01, SampleRate: 1.1},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if (Config{MarkerRate: 0.01, SampleRate: 0.01}).Validate() != nil {
		t.Error("valid config rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(Config{})
}

func TestDeterminismAndAgreement(t *testing.T) {
	// Two HOPs with identical thresholds observing the same stream
	// sample exactly the same packets (§4 "same sampling algorithm").
	ids := stream(1, 100000)
	cfg := Config{MarkerRate: 0.001, SampleRate: 0.01}
	a, b := run(cfg, ids), run(cfg, ids)
	if len(a) == 0 {
		t.Fatal("no samples")
	}
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for id := range a {
		if !b[id] {
			t.Fatal("sample sets differ")
		}
	}
}

func TestSubsetProperty(t *testing.T) {
	// §5.2: a HOP with a higher sampling rate (lower σ) samples a
	// superset of a HOP with a lower rate; sets are never partially
	// overlapping.
	ids := stream(2, 200000)
	low := run(Config{MarkerRate: 0.001, SampleRate: 0.002}, ids)
	high := run(Config{MarkerRate: 0.001, SampleRate: 0.05}, ids)
	if len(low) >= len(high) {
		t.Fatalf("low-rate set (%d) not smaller than high-rate set (%d)", len(low), len(high))
	}
	for id := range low {
		if !high[id] {
			t.Fatalf("packet %#x sampled at low rate but not at high rate", id)
		}
	}
}

func TestMarkersAlwaysSampled(t *testing.T) {
	ids := stream(3, 50000)
	cfg := Config{MarkerRate: 0.001, SampleRate: 0} // sample nothing but markers
	got := run(cfg, ids)
	s := New(cfg)
	for i, id := range ids {
		s.Observe(id, int64(i))
	}
	_, markers, _ := s.Stats()
	if uint64(len(got)) != markers {
		t.Fatalf("sampled %d, markers %d — markers must be exactly the sampled set at σ-rate 0", len(got), markers)
	}
	if markers == 0 {
		t.Fatal("no markers in 50k packets at rate 0.001")
	}
}

func TestEffectiveRate(t *testing.T) {
	// Effective sampling rate ≈ SampleRate + MarkerRate.
	ids := stream(4, 400000)
	for _, cfg := range []Config{
		{MarkerRate: 0.001, SampleRate: 0.01},
		{MarkerRate: 0.001, SampleRate: 0.05},
		{MarkerRate: 0.0005, SampleRate: 0.001},
	} {
		s := New(cfg)
		for i, id := range ids {
			s.Observe(id, int64(i))
		}
		want := cfg.SampleRate + cfg.MarkerRate*(1-cfg.SampleRate)
		got := s.EffectiveRate()
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("cfg %+v: effective rate %v, want ~%v", cfg, got, want)
		}
	}
}

func TestSamplesCarryObservationTime(t *testing.T) {
	cfg := Config{MarkerRate: 0.01, SampleRate: 0.5}
	s := New(cfg)
	ids := stream(5, 10000)
	for i, id := range ids {
		s.Observe(id, int64(i)*100)
	}
	byID := make(map[uint64]int64, len(ids))
	for i, id := range ids {
		byID[id] = int64(i) * 100
	}
	for _, rec := range s.Take() {
		if want, ok := byID[rec.PktID]; !ok || rec.TimeNS != want {
			t.Fatalf("sample %#x has time %d, want %d", rec.PktID, rec.TimeNS, want)
		}
	}
}

func TestDelayedDecision(t *testing.T) {
	// The bias-resistance core: a packet's sampling fate is unknown
	// until a marker arrives. Before any marker, everything is
	// pending and nothing is sampled.
	cfg := Config{MarkerRate: 0.5, SampleRate: 0.5}
	s := New(cfg)
	mu := s.mu
	// Feed 100 non-marker packets (digests <= µ).
	r := stats.NewRNG(6)
	fed := 0
	for fed < 100 {
		id := r.Uint64()
		if id > mu {
			continue
		}
		s.Observe(id, int64(fed))
		fed++
	}
	if s.Pending() != 100 {
		t.Fatalf("pending = %d, want 100", s.Pending())
	}
	if got := len(s.Take()); got != 0 {
		t.Fatalf("sampled %d before any marker", got)
	}
	// Now a marker: buffer must clear.
	for {
		id := r.Uint64()
		if id > mu {
			s.Observe(id, 1000)
			break
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after marker, want 0", s.Pending())
	}
	if got := len(s.Take()); got == 0 {
		t.Fatal("marker itself was not sampled")
	}
}

func TestMarkerLossDesynchronizesUntilNextMarker(t *testing.T) {
	// §5.3: if a marker is lost between two HOPs, they sample
	// different sets only until the next marker.
	ids := stream(7, 200000)
	cfg := Config{MarkerRate: 0.001, SampleRate: 0.01}
	up := New(cfg)
	down := New(cfg)
	mu := up.mu
	// Drop exactly the first marker from the downstream stream.
	droppedOne := false
	for i, id := range ids {
		up.Observe(id, int64(i))
		if !droppedOne && id > mu {
			droppedOne = true
			continue
		}
		down.Observe(id, int64(i))
	}
	upSet := map[uint64]bool{}
	for _, r := range up.Take() {
		upSet[r.PktID] = true
	}
	common, downOnly := 0, 0
	for _, r := range down.Take() {
		if upSet[r.PktID] {
			common++
		} else {
			downOnly++
		}
	}
	if common == 0 {
		t.Fatal("no common samples at all after one marker loss")
	}
	// The damage should be bounded: divergence is confined to the
	// packets between the lost marker and the next one (~1/markerRate
	// packets of ~200k).
	if frac := float64(downOnly) / float64(common+downOnly); frac > 0.05 {
		t.Errorf("divergent sample fraction %v too high for a single lost marker", frac)
	}
}

func TestTempHighWaterTracksBufferDepth(t *testing.T) {
	cfg := Config{MarkerRate: 0.001, SampleRate: 0.01}
	s := New(cfg)
	for i, id := range stream(8, 100000) {
		s.Observe(id, int64(i))
	}
	hw := s.TempHighWater()
	if hw <= 0 {
		t.Fatal("zero high-water mark")
	}
	// Expected max gap between markers at rate 0.001 over 100k
	// packets is on the order of several thousand; sanity bounds.
	if hw < 500 || hw > 60000 {
		t.Errorf("high-water mark %d implausible for marker rate 0.001", hw)
	}
}

func TestTakeResets(t *testing.T) {
	cfg := Config{MarkerRate: 0.1, SampleRate: 0.5}
	s := New(cfg)
	for i, id := range stream(9, 1000) {
		s.Observe(id, int64(i))
	}
	first := s.Take()
	if len(first) == 0 {
		t.Fatal("no samples taken")
	}
	if len(s.Take()) != 0 {
		t.Fatal("second Take should be empty")
	}
}

func BenchmarkObserve(b *testing.B) {
	s := New(Config{MarkerRate: 0.001, SampleRate: 0.01})
	r := stats.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(r.Uint64(), int64(i))
		if i%100000 == 0 {
			s.Take()
		}
	}
}

// TestObserveBatchMatchesObserve proves the segment-scan batch path is
// byte-identical to per-packet observation across seeds, batch splits,
// and marker positions — the receipt-identity bar the sharded
// collector's equivalence tests build on.
func TestObserveBatchMatchesObserve(t *testing.T) {
	cfg := Config{MarkerRate: 0.01, SampleRate: 0.3}
	for seed := uint64(1); seed <= 5; seed++ {
		ids := stream(seed, 20_000)
		recs := make([]receipt.SampleRecord, len(ids))
		for i, id := range ids {
			recs[i] = receipt.SampleRecord{PktID: id, TimeNS: int64(i)}
		}

		serial := New(cfg)
		for _, r := range recs {
			serial.Observe(r.PktID, r.TimeNS)
		}
		want := serial.Take()

		// Uneven batch sizes exercise segments that straddle batch
		// boundaries and batches with zero or many markers.
		for _, batch := range []int{1, 7, 100, 4096, len(recs)} {
			b := New(cfg)
			for off := 0; off < len(recs); off += batch {
				end := off + batch
				if end > len(recs) {
					end = len(recs)
				}
				b.ObserveBatch(recs[off:end])
			}
			got := b.Take()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d batch %d: batched samples diverge from serial (%d vs %d records)",
					seed, batch, len(got), len(want))
			}
			bo, bm, bs := b.Stats()
			so, sm, ss := serial.Stats()
			if bo != so || bm != sm || bs != ss {
				t.Fatalf("seed %d batch %d: stats diverge: (%d,%d,%d) vs (%d,%d,%d)",
					seed, batch, bo, bm, bs, so, sm, ss)
			}
			if b.TempHighWater() != serial.TempHighWater() {
				t.Fatalf("seed %d batch %d: temp high water %d vs %d",
					seed, batch, b.TempHighWater(), serial.TempHighWater())
			}
		}
	}
}

// TestTakeRecycleOwnership proves Take transfers ownership: records
// returned by one Take are never clobbered by later observation, and a
// Recycled buffer is reused without leaking stale records.
func TestTakeRecycleOwnership(t *testing.T) {
	cfg := Config{MarkerRate: 0.05, SampleRate: 0.5}
	s := New(cfg)
	ids := stream(11, 4000)
	for i, id := range ids[:2000] {
		s.Observe(id, int64(i))
	}
	first := s.Take()
	snapshot := append([]receipt.SampleRecord(nil), first...)
	for i, id := range ids[2000:] {
		s.Observe(id, int64(2000+i))
	}
	if !reflect.DeepEqual(first, snapshot) {
		t.Fatal("records from Take were clobbered by later observation")
	}
	second := s.Take()
	s.Recycle(first)
	for i, id := range ids {
		s.Observe(id, int64(4000+i))
	}
	third := s.Take()
	if len(second) > 0 && len(third) > 0 && &second[0] == &third[0] {
		t.Fatal("buffer still owned by caller was handed out again")
	}
	if len(third) == 0 {
		t.Fatal("no samples after recycle")
	}
}
