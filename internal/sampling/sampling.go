// Package sampling implements the paper's Algorithm 1 (DelaySample):
// bias-resistant, tunable delay sampling.
//
// A HOP buffers 〈PktID, Time〉 state for every packet it observes on a
// path, but only until the next marker packet arrives. A packet is a
// marker when its digest exceeds the system-wide marker threshold µ.
// The marker's digest then keys the sampling decision for every
// buffered packet: q is sampled iff SampleFcn(Digest(q), Digest(p)) > σ,
// where σ is the locally chosen sampling threshold. The marker itself
// is always sampled.
//
// Because a domain learns whether a packet will be sampled only after
// it has forwarded it (the marker comes later), it cannot treat
// sampled packets preferentially (§5.1). Because the same inequality
// is evaluated everywhere, a HOP with a lower σ samples a superset of
// any HOP with a higher σ — different HOPs never sample partially
// overlapping sets (§5.2). Markers are a system-wide constant, so all
// HOPs agree on where sampling decisions happen (modulo marker loss,
// §5.3).
package sampling

import (
	"fmt"

	"vpm/internal/hashing"
	"vpm/internal/receipt"
)

// Config parameterizes a Sampler.
type Config struct {
	// MarkerRate is the system-wide marker frequency: the probability
	// that a packet's digest exceeds µ. The paper fixes this at
	// design time so that markers arrive every ten milliseconds or
	// so at backbone packet rates.
	MarkerRate float64
	// SampleRate is the locally tunable probability that SampleFcn
	// exceeds σ for a buffered packet. The overall fraction of
	// sampled packets is approximately SampleRate + MarkerRate (the
	// markers themselves are always sampled).
	SampleRate float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MarkerRate <= 0 || c.MarkerRate > 1 {
		return fmt.Errorf("sampling: marker rate %v outside (0,1]", c.MarkerRate)
	}
	if c.SampleRate < 0 || c.SampleRate > 1 {
		return fmt.Errorf("sampling: sample rate %v outside [0,1]", c.SampleRate)
	}
	return nil
}

// Sampler is the per-path delay-sampling state of one HOP: the
// temporary packet buffer of Algorithm 1 plus the accumulated samples
// of the receipt under construction. Not safe for concurrent use.
type Sampler struct {
	mu    uint64 // marker threshold µ
	sigma uint64 // sampling threshold σ

	// keep, when non-nil, thins the *retained* sample records: a
	// sampled packet is appended to the receipt under construction
	// only when keep(pktID) is true. The sampling decision itself —
	// and sink, the streaming-summary hook — always sees the full
	// sampled set; only exact per-packet retention is thinned (the
	// streaming aggregation backend's second-stage threshold
	// subsample). Nil keeps everything (the exact path).
	keep func(pktID uint64) bool
	// sink, when non-nil, observes every sampled record (markers
	// included) before thinning — the streaming sketch state's feed.
	sink func(pktID uint64, tNS int64)

	temp    []receipt.SampleRecord // TempBuffer: all packets since last marker
	samples []receipt.SampleRecord // samples accumulated since last Take
	spare   []receipt.SampleRecord // recycled accumulator for the next Take

	// Accounting.
	observed      uint64
	markers       uint64
	sampled       uint64
	retained      uint64
	tempHighWater int
}

// New builds a Sampler. It panics on an invalid config (programmer
// error); use Config.Validate to check user input first.
func New(cfg Config) *Sampler {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Sampler{
		mu:    hashing.ThresholdForRate(cfg.MarkerRate),
		sigma: hashing.ThresholdForRate(cfg.SampleRate),
	}
}

// SetKeep installs the retention thinning filter (nil = keep every
// sampled record, the exact path). The filter must retain markers —
// the verifier's marker timeline re-derivation depends on them — which
// any digest-threshold filter composed with µ does by construction.
func (s *Sampler) SetKeep(keep func(pktID uint64) bool) { s.keep = keep }

// SetSink installs the streaming-summary hook: it observes every
// sampled record (pre-thinning, markers included) as Algorithm 1
// accepts it.
func (s *Sampler) SetSink(sink func(pktID uint64, tNS int64)) { s.sink = sink }

// Observe processes one packet observation (Algorithm 1): pktID is the
// packet's digest, tNS the HOP's observation timestamp.
//
//vpm:hotpath
func (s *Sampler) Observe(pktID uint64, tNS int64) {
	s.observed++
	if hashing.Exceeds(pktID, s.mu) {
		s.marker(pktID, tNS)
		return
	}
	s.temp = append(s.temp, receipt.SampleRecord{PktID: pktID, TimeNS: tNS})
}

// marker processes a marker packet: its digest keys the sampling
// decision for every buffered packet, then the buffer is emptied and
// the marker itself is sampled. The temp buffer only grows between
// markers, so recording its high-water mark here (just before the
// clear) equals checking after every append.
func (s *Sampler) marker(pktID uint64, tNS int64) {
	if len(s.temp) > s.tempHighWater {
		s.tempHighWater = len(s.temp)
	}
	s.markers++
	sigma := s.sigma
	for _, q := range s.temp {
		if hashing.Exceeds(hashing.SampleFcn(q.PktID, pktID), sigma) {
			s.sampled++
			s.accept(q)
		}
	}
	s.temp = s.temp[:0]
	s.sampled++
	s.accept(receipt.SampleRecord{PktID: pktID, TimeNS: tNS})
}

// accept routes one sampled record through the streaming sink and the
// retention filter.
func (s *Sampler) accept(q receipt.SampleRecord) {
	if s.sink != nil {
		s.sink(q.PktID, q.TimeNS)
	}
	if s.keep == nil || s.keep(q.PktID) {
		s.retained++
		s.samples = append(s.samples, q)
	}
}

// ObserveBatch processes a slice of observations (PktID = digest,
// TimeNS = observation time) in order — the batch hook the sharded
// collector's per-path runs feed. Semantically identical to calling
// Observe per record. Markers are rare (µ is a per-mille rate), so the
// batch is consumed as marker-delimited segments: one threshold
// comparison per packet to find the next marker, then a single bulk
// append moves the whole segment into the temporary buffer — the
// steady-state cost is a compare and a memmove, not a call.
//
//vpm:hotpath
func (s *Sampler) ObserveBatch(recs []receipt.SampleRecord) {
	mu := s.mu
	for len(recs) > 0 {
		n := 0
		for n < len(recs) && !hashing.Exceeds(recs[n].PktID, mu) {
			n++
		}
		if n > 0 {
			s.temp = append(s.temp, recs[:n]...)
			s.observed += uint64(n)
		}
		if n == len(recs) {
			return
		}
		s.observed++
		s.marker(recs[n].PktID, recs[n].TimeNS)
		recs = recs[n+1:]
	}
}

// Take returns the samples accumulated since the previous Take and
// resets the accumulator. Ownership of the returned slice passes to
// the caller; the sampler continues on a buffer previously returned
// through Recycle when one is available (the zero-alloc steady state),
// or a fresh one otherwise.
func (s *Sampler) Take() []receipt.SampleRecord {
	out := s.samples
	s.samples = s.spare
	s.spare = nil
	return out
}

// Recycle hands a no-longer-needed record buffer back to the sampler
// for reuse by a future Take. Only call with buffers whose contents
// nothing retains.
func (s *Sampler) Recycle(buf []receipt.SampleRecord) {
	if cap(buf) > cap(s.spare) {
		s.spare = buf[:0]
	}
}

// Pending returns the number of packets currently awaiting a marker in
// the temporary buffer.
func (s *Sampler) Pending() int { return len(s.temp) }

// TempHighWater returns the maximum temporary-buffer occupancy seen,
// in packets — the §7.1 memory-budget quantity.
func (s *Sampler) TempHighWater() int {
	if len(s.temp) > s.tempHighWater {
		return len(s.temp)
	}
	return s.tempHighWater
}

// Stats returns (packets observed, markers seen, packets sampled).
func (s *Sampler) Stats() (observed, markers, sampled uint64) {
	return s.observed, s.markers, s.sampled
}

// Retained returns how many sampled records passed the retention
// filter into receipts. Without thinning it equals the sampled count.
func (s *Sampler) Retained() uint64 { return s.retained }

// EffectiveRate returns the empirical fraction of observed packets
// that were sampled so far.
func (s *Sampler) EffectiveRate() float64 {
	if s.observed == 0 {
		return 0
	}
	return float64(s.sampled) / float64(s.observed)
}
