// Package sampling implements the paper's Algorithm 1 (DelaySample):
// bias-resistant, tunable delay sampling.
//
// A HOP buffers 〈PktID, Time〉 state for every packet it observes on a
// path, but only until the next marker packet arrives. A packet is a
// marker when its digest exceeds the system-wide marker threshold µ.
// The marker's digest then keys the sampling decision for every
// buffered packet: q is sampled iff SampleFcn(Digest(q), Digest(p)) > σ,
// where σ is the locally chosen sampling threshold. The marker itself
// is always sampled.
//
// Because a domain learns whether a packet will be sampled only after
// it has forwarded it (the marker comes later), it cannot treat
// sampled packets preferentially (§5.1). Because the same inequality
// is evaluated everywhere, a HOP with a lower σ samples a superset of
// any HOP with a higher σ — different HOPs never sample partially
// overlapping sets (§5.2). Markers are a system-wide constant, so all
// HOPs agree on where sampling decisions happen (modulo marker loss,
// §5.3).
package sampling

import (
	"fmt"

	"vpm/internal/hashing"
	"vpm/internal/receipt"
)

// Config parameterizes a Sampler.
type Config struct {
	// MarkerRate is the system-wide marker frequency: the probability
	// that a packet's digest exceeds µ. The paper fixes this at
	// design time so that markers arrive every ten milliseconds or
	// so at backbone packet rates.
	MarkerRate float64
	// SampleRate is the locally tunable probability that SampleFcn
	// exceeds σ for a buffered packet. The overall fraction of
	// sampled packets is approximately SampleRate + MarkerRate (the
	// markers themselves are always sampled).
	SampleRate float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MarkerRate <= 0 || c.MarkerRate > 1 {
		return fmt.Errorf("sampling: marker rate %v outside (0,1]", c.MarkerRate)
	}
	if c.SampleRate < 0 || c.SampleRate > 1 {
		return fmt.Errorf("sampling: sample rate %v outside [0,1]", c.SampleRate)
	}
	return nil
}

// Sampler is the per-path delay-sampling state of one HOP: the
// temporary packet buffer of Algorithm 1 plus the accumulated samples
// of the receipt under construction. Not safe for concurrent use.
type Sampler struct {
	mu    uint64 // marker threshold µ
	sigma uint64 // sampling threshold σ

	temp    []receipt.SampleRecord // TempBuffer: all packets since last marker
	samples []receipt.SampleRecord // samples accumulated since last Take

	// Accounting.
	observed      uint64
	markers       uint64
	sampled       uint64
	tempHighWater int
}

// New builds a Sampler. It panics on an invalid config (programmer
// error); use Config.Validate to check user input first.
func New(cfg Config) *Sampler {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Sampler{
		mu:    hashing.ThresholdForRate(cfg.MarkerRate),
		sigma: hashing.ThresholdForRate(cfg.SampleRate),
	}
}

// Observe processes one packet observation (Algorithm 1): pktID is the
// packet's digest, tNS the HOP's observation timestamp.
func (s *Sampler) Observe(pktID uint64, tNS int64) {
	s.observed++
	if hashing.Exceeds(pktID, s.mu) {
		// Marker: its digest keys the sampling decision for every
		// buffered packet, then the buffer is emptied and the marker
		// itself is sampled.
		s.markers++
		for _, q := range s.temp {
			if hashing.Exceeds(hashing.SampleFcn(q.PktID, pktID), s.sigma) {
				s.samples = append(s.samples, q)
				s.sampled++
			}
		}
		s.temp = s.temp[:0]
		s.samples = append(s.samples, receipt.SampleRecord{PktID: pktID, TimeNS: tNS})
		s.sampled++
		return
	}
	s.temp = append(s.temp, receipt.SampleRecord{PktID: pktID, TimeNS: tNS})
	if len(s.temp) > s.tempHighWater {
		s.tempHighWater = len(s.temp)
	}
}

// ObserveBatch processes a slice of observations (PktID = digest,
// TimeNS = observation time) in order — the batch hook the sharded
// collector's per-path runs feed. Semantically identical to calling
// Observe per record; the common non-marker case (append to the
// temporary buffer) is inlined so only markers pay the full call.
func (s *Sampler) ObserveBatch(recs []receipt.SampleRecord) {
	mu := s.mu
	for i := range recs {
		if hashing.Exceeds(recs[i].PktID, mu) {
			s.Observe(recs[i].PktID, recs[i].TimeNS)
			continue
		}
		s.observed++
		s.temp = append(s.temp, recs[i])
		if len(s.temp) > s.tempHighWater {
			s.tempHighWater = len(s.temp)
		}
	}
}

// Take returns the samples accumulated since the previous Take and
// resets the accumulator — the processor module's periodic read.
func (s *Sampler) Take() []receipt.SampleRecord {
	out := make([]receipt.SampleRecord, len(s.samples))
	copy(out, s.samples)
	s.samples = s.samples[:0]
	return out
}

// Pending returns the number of packets currently awaiting a marker in
// the temporary buffer.
func (s *Sampler) Pending() int { return len(s.temp) }

// TempHighWater returns the maximum temporary-buffer occupancy seen,
// in packets — the §7.1 memory-budget quantity.
func (s *Sampler) TempHighWater() int { return s.tempHighWater }

// Stats returns (packets observed, markers seen, packets sampled).
func (s *Sampler) Stats() (observed, markers, sampled uint64) {
	return s.observed, s.markers, s.sampled
}

// EffectiveRate returns the empirical fraction of observed packets
// that were sampled so far.
func (s *Sampler) EffectiveRate() float64 {
	if s.observed == 0 {
		return 0
	}
	return float64(s.sampled) / float64(s.observed)
}
