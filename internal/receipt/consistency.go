package receipt

import "fmt"

// This file implements the receipt-consistency rules of paper §4. A
// verifier applies them to receipts produced by the two HOPs at
// opposite ends of one inter-domain link (e.g. HOPs 5 and 6 in the
// paper's Figure 1): a correct link introduces neither loss nor
// unpredictable delay, so the upstream HOP's claims about delivered
// traffic must match the downstream HOP's claims about received
// traffic. A mismatch means either a faulty link or a lie, and the
// liar is exposed to the neighbor it implicated.

// InconsistencyKind classifies a consistency violation.
type InconsistencyKind int

// The kinds of violations a receipt pair can exhibit.
const (
	// MaxDiffMismatch: the two HOPs report different MaxDiff values
	// for their shared link (rule 1 for sample receipts).
	MaxDiffMismatch InconsistencyKind = iota
	// DelayBound: a sampled packet's receive timestamp exceeds the
	// delivery timestamp by more than MaxDiff (rule 2).
	DelayBound
	// CountMismatch: the two HOPs report different packet counts for
	// the same aggregate.
	CountMismatch
	// MissingDownstream: the upstream HOP claims a sampled packet was
	// delivered but the downstream HOP has no record of it.
	MissingDownstream
	// MissingUpstream: the downstream HOP reports a sampled packet the
	// upstream HOP never claimed to deliver.
	MissingUpstream
)

// String names the violation kind.
func (k InconsistencyKind) String() string {
	switch k {
	case MaxDiffMismatch:
		return "maxdiff-mismatch"
	case DelayBound:
		return "delay-bound"
	case CountMismatch:
		return "count-mismatch"
	case MissingDownstream:
		return "missing-downstream"
	case MissingUpstream:
		return "missing-upstream"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Inconsistency describes one violation found in a receipt pair.
type Inconsistency struct {
	Kind InconsistencyKind
	// PktID identifies the offending packet for per-packet kinds.
	PktID uint64
	// Detail is a human-readable elaboration.
	Detail string
}

// String renders the inconsistency.
func (v Inconsistency) String() string {
	if v.PktID != 0 {
		return fmt.Sprintf("%s pkt=%#x: %s", v.Kind, v.PktID, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Kind, v.Detail)
}

// SamplePairReport is the outcome of checking two sample receipts for
// the same traffic across one inter-domain link.
type SamplePairReport struct {
	// Matched pairs of records (same PktID in both receipts), as
	// (upstream record, downstream record).
	Matched [][2]SampleRecord
	// Violations found. An honest pair over a healthy link has none.
	Violations []Inconsistency
}

// Consistent reports whether no violations were found.
func (r SamplePairReport) Consistent() bool { return len(r.Violations) == 0 }

// CheckSamplePair applies the paper's consistency rules (equations 1
// and 2 in §4) to the receipts of the upstream HOP (which delivered
// the traffic onto the link) and the downstream HOP (which received
// it). Missing records are reported as violations of the appropriate
// direction; the caller decides how to attribute blame (a missing
// downstream record is expected when the packet was genuinely lost on
// a faulty link — or when someone is lying).
func CheckSamplePair(up, down SampleReceipt) SamplePairReport {
	var rep SamplePairReport
	if up.Path.MaxDiffNS != down.Path.MaxDiffNS {
		rep.Violations = append(rep.Violations, Inconsistency{
			Kind:   MaxDiffMismatch,
			Detail: fmt.Sprintf("upstream %dns vs downstream %dns", up.Path.MaxDiffNS, down.Path.MaxDiffNS),
		})
	}
	maxDiff := up.Path.MaxDiffNS
	downByID := make(map[uint64]SampleRecord, len(down.Samples))
	for _, r := range down.Samples {
		downByID[r.PktID] = r
	}
	seen := make(map[uint64]bool, len(up.Samples))
	for _, u := range up.Samples {
		seen[u.PktID] = true
		d, ok := downByID[u.PktID]
		if !ok {
			rep.Violations = append(rep.Violations, Inconsistency{
				Kind:   MissingDownstream,
				PktID:  u.PktID,
				Detail: "delivered upstream, no downstream record",
			})
			continue
		}
		rep.Matched = append(rep.Matched, [2]SampleRecord{u, d})
		if delta := d.TimeNS - u.TimeNS; delta > maxDiff {
			rep.Violations = append(rep.Violations, Inconsistency{
				Kind:   DelayBound,
				PktID:  u.PktID,
				Detail: fmt.Sprintf("link delta %dns exceeds MaxDiff %dns", delta, maxDiff),
			})
		}
	}
	for _, d := range down.Samples {
		if !seen[d.PktID] {
			rep.Violations = append(rep.Violations, Inconsistency{
				Kind:   MissingUpstream,
				PktID:  d.PktID,
				Detail: "received downstream, never reported upstream",
			})
		}
	}
	return rep
}

// CheckAggPair applies the aggregate consistency rule of §4: the two
// HOPs at the ends of a correct inter-domain link must report equal
// packet counts for the same aggregate. The receipts are assumed to
// describe the same aggregate (the verifier aligns aggregates first,
// see internal/aggregation.Join).
func CheckAggPair(up, down AggReceipt) []Inconsistency {
	var out []Inconsistency
	if up.PktCnt != down.PktCnt {
		out = append(out, Inconsistency{
			Kind: CountMismatch,
			Detail: fmt.Sprintf("aggregate [%#x..%#x]: upstream delivered %d, downstream received %d",
				up.Agg.First, up.Agg.Last, up.PktCnt, down.PktCnt),
		})
	}
	return out
}
