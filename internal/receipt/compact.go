package receipt

import (
	"encoding/binary"
	"fmt"
)

// Compact encoding — the paper's field sizes. §7.1 budgets receipts at
// 22 bytes and temp-buffer records at 〈PktID, Time〉 = 4 + 3 bytes. The
// default binary encoding in this package uses full-width 64-bit
// fields; this file provides the packed alternative so the paper's
// bandwidth arithmetic is exactly reproducible and so deployments can
// trade digest width against collision-induced false inconsistencies
// (see TestDigestCollisionRate for the ablation).
//
// Layout:
//
//	compact sample receipt: kind[1]=3 PathID[28] baseTime[8] count[4]
//	                        (pktID[4] timeDelta[3])*
//	compact agg receipt:    kind[1]=4 PathID[28] first[4] last[4]
//	                        pktCnt[4] baseTime[8] transCount[4]
//	                        (pktID[4] timeDelta[3])*
//
// PktIDs are truncated to their low 32 bits. Times are microseconds
// relative to the receipt's base time, truncated to 24 bits (covering
// a 16.7-second reporting interval — ample for the paper's per-second
// to per-minute receipt cadence).

const (
	kindCompactSample = 3
	kindCompactAgg    = 4

	// CompactRecordBytes is the packed per-record cost: 4-byte packet
	// ID + 3-byte timestamp, the paper's figures.
	CompactRecordBytes = 7
)

// compactTime converts an absolute nanosecond timestamp to the packed
// 24-bit microsecond delta, clamping at the field bounds.
func compactTime(baseNS, tNS int64) uint32 {
	d := (tNS - baseNS) / 1000
	if d < 0 {
		d = 0
	}
	if d > 0xFFFFFF {
		d = 0xFFFFFF
	}
	return uint32(d)
}

func appendCompactRecords(dst []byte, baseNS int64, rs []SampleRecord) []byte {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(baseNS))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(rs)))
	dst = append(dst, hdr[:]...)
	var rec [CompactRecordBytes]byte
	for _, r := range rs {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(r.PktID))
		t := compactTime(baseNS, r.TimeNS)
		rec[4], rec[5], rec[6] = byte(t), byte(t>>8), byte(t>>16)
		dst = append(dst, rec[:]...)
	}
	return dst
}

func decodeCompactRecords(b []byte) ([]SampleRecord, []byte, error) {
	if len(b) < 12 {
		return nil, nil, ErrCorrupt
	}
	base := int64(binary.LittleEndian.Uint64(b[0:8]))
	n := binary.LittleEndian.Uint32(b[8:12])
	b = b[12:]
	if uint64(len(b)) < uint64(n)*CompactRecordBytes {
		return nil, nil, ErrCorrupt
	}
	var rs []SampleRecord
	if n > 0 {
		rs = make([]SampleRecord, n)
		for i := range rs {
			rs[i].PktID = uint64(binary.LittleEndian.Uint32(b[0:4]))
			us := uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16
			rs[i].TimeNS = base + int64(us)*1000
			b = b[CompactRecordBytes:]
		}
	}
	return rs, b, nil
}

// baseTimeOf picks the earliest record time as the delta base.
func baseTimeOf(rs []SampleRecord) int64 {
	if len(rs) == 0 {
		return 0
	}
	base := rs[0].TimeNS
	for _, r := range rs[1:] {
		if r.TimeNS < base {
			base = r.TimeNS
		}
	}
	return base
}

// AppendCompact appends the packed encoding of the receipt to dst.
// Precision lost relative to AppendBinary: packet IDs truncate to 32
// bits, timestamps to microseconds within a 16.7 s window.
func (r SampleReceipt) AppendCompact(dst []byte) []byte {
	dst = append(dst, kindCompactSample)
	dst = appendPathID(dst, r.Path)
	return appendCompactRecords(dst, baseTimeOf(r.Samples), r.Samples)
}

// CompactWireSize returns the packed encoded size.
func (r SampleReceipt) CompactWireSize() int {
	return 1 + pathIDLen + 12 + len(r.Samples)*CompactRecordBytes
}

// AppendCompact appends the packed encoding of the receipt to dst.
func (r AggReceipt) AppendCompact(dst []byte) []byte {
	dst = append(dst, kindCompactAgg)
	dst = appendPathID(dst, r.Path)
	var b [12]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(r.Agg.First))
	binary.LittleEndian.PutUint32(b[4:8], uint32(r.Agg.Last))
	binary.LittleEndian.PutUint32(b[8:12], uint32(r.PktCnt))
	dst = append(dst, b[:]...)
	return appendCompactRecords(dst, baseTimeOf(r.AggTrans), r.AggTrans)
}

// CompactWireSize returns the packed encoded size. With no AggTrans
// window this is 53 bytes — the same order as the paper's 22-byte
// estimate, the difference being our explicit 28-byte PathID (the
// paper amortizes path identification across a reporting session).
func (r AggReceipt) CompactWireSize() int {
	return 1 + pathIDLen + 12 + 12 + len(r.AggTrans)*CompactRecordBytes
}

// DecodeCompact parses one compact receipt from b. Truncated fields
// are widened back (packet IDs occupy the low 32 bits). Malformed
// input returns ErrCorrupt (match with errors.Is).
func DecodeCompact(b []byte) (*SampleReceipt, *AggReceipt, []byte, error) {
	if len(b) < 1 {
		return nil, nil, nil, ErrCorrupt
	}
	kind := b[0]
	b = b[1:]
	path, err := decodePathID(b)
	if err != nil {
		return nil, nil, nil, err
	}
	b = b[pathIDLen:]
	switch kind {
	case kindCompactSample:
		samples, rest, err := decodeCompactRecords(b)
		if err != nil {
			return nil, nil, nil, err
		}
		return &SampleReceipt{Path: path, Samples: samples}, nil, rest, nil
	case kindCompactAgg:
		if len(b) < 12 {
			return nil, nil, nil, ErrCorrupt
		}
		r := AggReceipt{Path: path}
		r.Agg.First = uint64(binary.LittleEndian.Uint32(b[0:4]))
		r.Agg.Last = uint64(binary.LittleEndian.Uint32(b[4:8]))
		r.PktCnt = uint64(binary.LittleEndian.Uint32(b[8:12]))
		trans, rest, err := decodeCompactRecords(b[12:])
		if err != nil {
			return nil, nil, nil, err
		}
		r.AggTrans = trans
		return nil, &r, rest, nil
	default:
		return nil, nil, nil, fmt.Errorf("%w: unknown compact kind %d", ErrCorrupt, kind)
	}
}
