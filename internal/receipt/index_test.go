package receipt

import (
	"sort"
	"testing"

	"vpm/internal/packet"
)

func TestKeyOfIgnoresLinkFields(t *testing.T) {
	src := packet.MakePrefix(10, 1, 0, 0, 16)
	dst := packet.MakePrefix(172, 16, 0, 0, 16)
	a := PathKeyOf(src, dst, 4, 5, 2_000_000)
	b := PathKeyOf(src, dst, 7, 8, 9_000_000)
	if KeyOf(3, a) != KeyOf(3, b) {
		t.Error("store key depends on PathID link fields; must depend on traffic only")
	}
	if KeyOf(3, a) == KeyOf(4, a) {
		t.Error("store key ignores the reporting HOP")
	}
	other := PathKeyOf(dst, src, 4, 5, 2_000_000)
	if KeyOf(3, a) == KeyOf(3, other) {
		t.Error("store key ignores the traffic key")
	}
}

func TestStoreKeyCompare(t *testing.T) {
	p1 := packet.PathKey{Src: packet.MakePrefix(10, 1, 0, 0, 16), Dst: packet.MakePrefix(172, 16, 0, 0, 16)}
	p2 := packet.PathKey{Src: packet.MakePrefix(10, 2, 0, 0, 16), Dst: packet.MakePrefix(172, 16, 0, 0, 16)}
	keys := []StoreKey{
		{HOP: 2, Key: p2},
		{HOP: 2, Key: p1},
		{HOP: 1, Key: p2},
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
	want := []StoreKey{{HOP: 1, Key: p2}, {HOP: 2, Key: p1}, {HOP: 2, Key: p2}}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, keys[i], want[i])
		}
	}
	if keys[0].Compare(keys[0]) != 0 {
		t.Error("equal keys must compare 0")
	}
	if keys[0].String() == "" {
		t.Error("empty String rendering")
	}
}
