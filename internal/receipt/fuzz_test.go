package receipt

import (
	"bytes"
	"errors"
	"testing"

	"vpm/internal/packet"
)

// fuzzSampleReceipt is a small valid sample receipt for seeding.
func fuzzSampleReceipt() SampleReceipt {
	return SampleReceipt{
		Path: PathID{
			Key: packet.PathKey{
				Src: packet.MakePrefix(10, 1, 0, 0, 16),
				Dst: packet.MakePrefix(172, 16, 0, 0, 16),
			},
			PrevHOP:   2,
			NextHOP:   4,
			MaxDiffNS: 3_000_000,
		},
		Samples: []SampleRecord{{PktID: 0xdeadbeef, TimeNS: 12345}, {PktID: 7, TimeNS: -9}},
	}
}

// fuzzAggReceipt is a small valid aggregate receipt for seeding.
func fuzzAggReceipt() AggReceipt {
	r := AggReceipt{
		Path:   fuzzSampleReceipt().Path,
		Agg:    AggID{First: 11, Last: 22},
		PktCnt: 1000,
	}
	r.AggTrans = []SampleRecord{{PktID: 22, TimeNS: 5}}
	return r
}

// FuzzDecodeReceipt: Decode must be total — any byte string either
// parses into exactly one receipt whose re-encoding reproduces the
// consumed bytes, or returns an error wrapping ErrCorrupt. It must
// never panic, whatever the header claims about record counts.
func FuzzDecodeReceipt(f *testing.F) {
	f.Add(fuzzSampleReceipt().AppendBinary(nil))
	f.Add(fuzzAggReceipt().AppendBinary(nil))
	f.Add([]byte{})
	f.Add([]byte{kindSample})
	f.Add([]byte{3, 0, 0, 0})
	trunc := fuzzAggReceipt().AppendBinary(nil)
	f.Add(trunc[:len(trunc)-3])
	// A header claiming 4 billion records backed by 4 bytes.
	huge := append([]byte{kindSample}, make([]byte, pathIDLen)...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, a, rest, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error %v (%T)", err, err)
			}
			if s != nil || a != nil {
				t.Fatal("error with a non-nil receipt")
			}
			return
		}
		if (s == nil) == (a == nil) {
			t.Fatalf("decode returned %v/%v receipts", s != nil, a != nil)
		}
		var re []byte
		if s != nil {
			re = s.AppendBinary(nil)
		} else {
			re = a.AppendBinary(nil)
		}
		consumed := data[:len(data)-len(rest)]
		if !bytes.Equal(re, consumed) {
			t.Fatalf("re-encoding differs from consumed bytes:\n in: %x\nout: %x", consumed, re)
		}
	})
}

// FuzzParseStoreKey: ParseStoreKey must be total and strict — any
// string either round-trips exactly (one accepted spelling per key) or
// returns an error wrapping ErrBadStoreKey; never a panic.
func FuzzParseStoreKey(f *testing.F) {
	f.Add("HOP3 10.1.0.0/16->172.16.0.0/16")
	f.Add("HOP0 0.0.0.0/0->255.255.255.255/32")
	f.Add("HOP4294967295 10.0.0.0/8->192.168.0.0/24")
	f.Add("HOP3 10.1.0.0/16")
	f.Add("HOP03 10.1.0.0/16->172.16.0.0/16")
	f.Add("HOP3 10.1.2.3/16->172.16.0.0/16") // host bits set
	f.Add("HOPx 1.2.3.4/32->4.3.2.1/32")
	f.Add("")
	f.Add("HOP1 1.2.3.4/33->1.2.3.0/24")
	f.Add("HOP1 01.2.3.4/32->1.2.3.4/32")

	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseStoreKey(s)
		if err != nil {
			if !errors.Is(err, ErrBadStoreKey) {
				t.Fatalf("untyped parse error %v (%T)", err, err)
			}
			return
		}
		if got := k.String(); got != s {
			t.Fatalf("accepted non-canonical spelling %q of %q", s, got)
		}
		k2, err := ParseStoreKey(k.String())
		if err != nil || k2 != k {
			t.Fatalf("round-trip failed: %v -> %q -> %v (%v)", k, k.String(), k2, err)
		}
	})
}
