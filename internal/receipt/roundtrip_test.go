package receipt

import (
	"bytes"
	"testing"

	"vpm/internal/packet"
	"vpm/internal/stats"
)

// Randomized round-trip properties with fixed seeds: for any receipt
// the wire codec can produce, encode → decode → encode is
// byte-identical (the encoding is canonical and the decoder is its
// exact inverse), and decode consumes exactly the encoded bytes even
// when receipts are concatenated into a stream.

// randPathID draws a random-but-valid PathID (canonical prefixes).
func randPathID(rng *stats.RNG) PathID {
	return PathID{
		Key: packet.PathKey{
			Src: packet.MakePrefix(byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), rng.Intn(33)),
			Dst: packet.MakePrefix(byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), rng.Intn(33)),
		},
		PrevHOP:   HOPID(rng.Uint32()),
		NextHOP:   HOPID(rng.Uint32()),
		MaxDiffNS: int64(rng.Uint64()),
	}
}

func randRecords(rng *stats.RNG, n int) []SampleRecord {
	if n == 0 {
		return nil
	}
	out := make([]SampleRecord, n)
	for i := range out {
		out[i] = SampleRecord{PktID: rng.Uint64(), TimeNS: int64(rng.Uint64())}
	}
	return out
}

func randSampleReceipt(rng *stats.RNG) SampleReceipt {
	return SampleReceipt{Path: randPathID(rng), Samples: randRecords(rng, rng.Intn(20))}
}

func randAggReceipt(rng *stats.RNG) AggReceipt {
	return AggReceipt{
		Path:     randPathID(rng),
		Agg:      AggID{First: rng.Uint64(), Last: rng.Uint64()},
		PktCnt:   rng.Uint64(),
		AggTrans: randRecords(rng, rng.Intn(8)),
	}
}

// TestReceiptRoundTripProperty: 2000 random receipts of both kinds,
// fixed seed, byte-identical re-encoding and exact stream consumption.
func TestReceiptRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(0xfeed)
	for i := 0; i < 2000; i++ {
		var enc []byte
		if rng.Bool(0.5) {
			enc = randSampleReceipt(rng).AppendBinary(nil)
		} else {
			enc = randAggReceipt(rng).AppendBinary(nil)
		}
		s, a, rest, err := Decode(enc)
		if err != nil {
			t.Fatalf("iteration %d: decode of a valid encoding failed: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("iteration %d: %d bytes left over", i, len(rest))
		}
		var re []byte
		if s != nil {
			re = s.AppendBinary(nil)
		} else {
			re = a.AppendBinary(nil)
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("iteration %d: encode→decode→encode not byte-identical:\n in: %x\nout: %x", i, enc, re)
		}
	}
}

// TestReceiptStreamRoundTripProperty: concatenated receipt streams
// decode receipt-by-receipt with exact byte accounting, and the
// re-encoded stream matches the original.
func TestReceiptStreamRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(0xbeef)
	for iter := 0; iter < 100; iter++ {
		var stream []byte
		n := 1 + rng.Intn(10)
		for i := 0; i < n; i++ {
			if rng.Bool(0.5) {
				stream = randSampleReceipt(rng).AppendBinary(stream)
			} else {
				stream = randAggReceipt(rng).AppendBinary(stream)
			}
		}
		var re []byte
		rest := stream
		decoded := 0
		for len(rest) > 0 {
			s, a, r, err := Decode(rest)
			if err != nil {
				t.Fatalf("iter %d: stream decode failed at receipt %d: %v", iter, decoded, err)
			}
			if s != nil {
				re = s.AppendBinary(re)
			} else {
				re = a.AppendBinary(re)
			}
			rest = r
			decoded++
		}
		if decoded != n {
			t.Fatalf("iter %d: decoded %d receipts, want %d", iter, decoded, n)
		}
		if !bytes.Equal(re, stream) {
			t.Fatalf("iter %d: re-encoded stream differs", iter)
		}
	}
}

// TestStoreKeyRoundTripProperty: random store keys print and re-parse
// to themselves — the strict parser accepts exactly the canonical
// spelling String emits.
func TestStoreKeyRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(0xcafe)
	for i := 0; i < 2000; i++ {
		k := StoreKey{
			HOP: HOPID(rng.Uint32()),
			Key: packet.PathKey{
				Src: packet.MakePrefix(byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), rng.Intn(33)),
				Dst: packet.MakePrefix(byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), rng.Intn(33)),
			},
		}
		got, err := ParseStoreKey(k.String())
		if err != nil {
			t.Fatalf("iteration %d: %q did not parse: %v", i, k.String(), err)
		}
		if got != k {
			t.Fatalf("iteration %d: %q parsed to %v, want %v", i, k.String(), got, k)
		}
	}
}
