package receipt

import (
	"testing"
	"testing/quick"
)

func TestCompactSampleRoundTrip(t *testing.T) {
	r := SampleReceipt{
		Path: testPath(),
		Samples: []SampleRecord{
			{PktID: 0xAABBCCDD, TimeNS: 5_000_000_000},
			{PktID: 0x11223344, TimeNS: 5_001_234_000},
		},
	}
	b := r.AppendCompact(nil)
	if len(b) != r.CompactWireSize() {
		t.Fatalf("encoded %d, CompactWireSize %d", len(b), r.CompactWireSize())
	}
	s, a, rest, err := DecodeCompact(b)
	if err != nil || a != nil || len(rest) != 0 {
		t.Fatalf("decode: %v %v %v", s, a, err)
	}
	if s.Path != r.Path || len(s.Samples) != 2 {
		t.Fatalf("round trip: %+v", s)
	}
	// 32-bit IDs survive exactly when they fit.
	if s.Samples[0].PktID != 0xAABBCCDD {
		t.Errorf("pktID = %#x", s.Samples[0].PktID)
	}
	// Times survive at microsecond precision.
	if d := s.Samples[1].TimeNS - s.Samples[0].TimeNS; d != 1_234_000 {
		t.Errorf("time delta = %d, want 1234000", d)
	}
}

func TestCompactTruncation(t *testing.T) {
	r := SampleReceipt{
		Path:    testPath(),
		Samples: []SampleRecord{{PktID: 0xFFFF_0000_AABB_CCDD, TimeNS: 1000}},
	}
	b := r.AppendCompact(nil)
	s, _, _, err := DecodeCompact(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Samples[0].PktID != 0xAABBCCDD {
		t.Errorf("expected low-32 truncation, got %#x", s.Samples[0].PktID)
	}
}

func TestCompactAggRoundTrip(t *testing.T) {
	r := AggReceipt{
		Path:   testPath(),
		Agg:    AggID{First: 0x1111, Last: 0x2222},
		PktCnt: 98765,
		AggTrans: []SampleRecord{
			{PktID: 7, TimeNS: 9_000_000_000},
			{PktID: 8, TimeNS: 9_000_500_000},
		},
	}
	b := r.AppendCompact(nil)
	if len(b) != r.CompactWireSize() {
		t.Fatalf("encoded %d, CompactWireSize %d", len(b), r.CompactWireSize())
	}
	_, a, rest, err := DecodeCompact(b)
	if err != nil || a == nil || len(rest) != 0 {
		t.Fatalf("decode failed: %v", err)
	}
	if a.Agg != r.Agg || a.PktCnt != r.PktCnt || len(a.AggTrans) != 2 {
		t.Fatalf("round trip: %+v", a)
	}
	if d := a.AggTrans[1].TimeNS - a.AggTrans[0].TimeNS; d != 500_000 {
		t.Errorf("trans delta %d", d)
	}
}

func TestCompactSmallerThanFull(t *testing.T) {
	r := SampleReceipt{Path: testPath(), Samples: make([]SampleRecord, 100)}
	if r.CompactWireSize() >= r.WireSize() {
		t.Fatalf("compact %d should beat full %d", r.CompactWireSize(), r.WireSize())
	}
	// Asymptotically 7 vs 16 bytes per record.
	big := SampleReceipt{Path: testPath(), Samples: make([]SampleRecord, 10000)}
	ratio := float64(big.CompactWireSize()) / float64(big.WireSize())
	if ratio > 0.5 {
		t.Errorf("compact ratio %.2f, want < 0.5 at scale", ratio)
	}
}

func TestCompactTimeClamping(t *testing.T) {
	// Deltas beyond 24 bits clamp rather than wrap.
	r := SampleReceipt{
		Path: testPath(),
		Samples: []SampleRecord{
			{PktID: 1, TimeNS: 0},
			{PktID: 2, TimeNS: 100_000_000_000}, // 100 s later
		},
	}
	s, _, _, err := DecodeCompact(r.AppendCompact(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Samples[1].TimeNS; got != 0xFFFFFF*1000 {
		t.Errorf("clamped time = %d, want max delta", got)
	}
}

func TestCompactDecodeCorrupt(t *testing.T) {
	r := AggReceipt{Path: testPath(), Agg: AggID{First: 1, Last: 2}, PktCnt: 3}
	b := r.AppendCompact(nil)
	for _, n := range []int{0, 1, 20, len(b) - 1} {
		if _, _, _, err := DecodeCompact(b[:n]); err == nil {
			t.Errorf("truncation to %d accepted", n)
		}
	}
	bad := append([]byte{}, b...)
	bad[0] = 9
	if _, _, _, err := DecodeCompact(bad); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestCompactDecodeFuzz(t *testing.T) {
	f := func(data []byte) bool {
		DecodeCompact(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompactEncode(b *testing.B) {
	r := SampleReceipt{Path: testPath(), Samples: make([]SampleRecord, 100)}
	buf := make([]byte, 0, r.CompactWireSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.AppendCompact(buf[:0])
	}
}
