package receipt

// Arena is a grow-only encode buffer for receipt streams. Sealing an
// epoch encodes every receipt a shard produced; doing that with fresh
// allocations churns the heap at exactly the moment the hot path wants
// it quiet. An Arena amortizes instead: encodes append into one
// backing buffer that only ever grows, so once a shard's buffer
// reaches its steady-state high-water mark, sealing allocates nothing.
//
// The byte slices returned by Encode alias the arena's buffer and are
// valid until the next Reset. An Arena is not safe for concurrent use;
// keep one per shard (or per sealing goroutine).
type Arena struct {
	buf []byte
}

// Reset forgets the arena's contents, keeping its capacity. Slices
// returned by earlier Encode calls become invalid.
func (a *Arena) Reset() { a.buf = a.buf[:0] }

// Len returns the number of encoded bytes currently in the arena.
func (a *Arena) Len() int { return len(a.buf) }

// Cap returns the arena's high-water capacity.
func (a *Arena) Cap() int { return cap(a.buf) }

// EncodeSample encodes one sample receipt, returning its bytes.
func (a *Arena) EncodeSample(r SampleReceipt) []byte {
	start := len(a.buf)
	a.buf = r.AppendBinary(a.buf)
	return a.buf[start:len(a.buf):len(a.buf)]
}

// EncodeAgg encodes one aggregate receipt, returning its bytes.
func (a *Arena) EncodeAgg(r AggReceipt) []byte {
	start := len(a.buf)
	a.buf = r.AppendBinary(a.buf)
	return a.buf[start:len(a.buf):len(a.buf)]
}

// Encode encodes a whole drained receipt stream — samples first, then
// aggregates, the canonical stream order — returning the concatenated
// bytes. Equivalent to chaining AppendBinary over a fresh slice, minus
// the allocations.
func (a *Arena) Encode(samples []SampleReceipt, aggs []AggReceipt) []byte {
	need := 0
	for _, r := range samples {
		need += r.WireSize()
	}
	for _, r := range aggs {
		need += r.WireSize()
	}
	a.Grow(need)
	start := len(a.buf)
	for _, r := range samples {
		a.buf = r.AppendBinary(a.buf)
	}
	for _, r := range aggs {
		a.buf = r.AppendBinary(a.buf)
	}
	return a.buf[start:len(a.buf):len(a.buf)]
}

// Grow ensures the arena can hold n more bytes without reallocating.
func (a *Arena) Grow(n int) {
	if cap(a.buf)-len(a.buf) >= n {
		return
	}
	grown := make([]byte, len(a.buf), len(a.buf)+n)
	copy(grown, a.buf)
	a.buf = grown
}
