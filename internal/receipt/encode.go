package receipt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vpm/internal/packet"
)

// Binary wire encoding of receipts. The format is little-endian with
// fixed-width fields: the point is a compact, deterministic encoding
// whose measured size feeds the paper's bandwidth-overhead accounting
// (§7.1), not a general-purpose serialization.
//
// PathID (28 bytes):
//   src prefix addr[4] bits[1]  dst prefix addr[4] bits[1]
//   prevHOP[4] nextHOP[4] maxDiff[8] pad[2]
// SampleReceipt: kind[1]=1 PathID count[4] (pktID[8] time[8])*
// AggReceipt:    kind[1]=2 PathID first[8] last[8] pktCnt[8]
//                transCount[4] (pktID[8] time[8])*

const (
	kindSample = 1
	kindAgg    = 2

	pathIDLen = 28
	recordLen = 16
)

// ErrCorrupt is returned when decoding malformed receipt bytes.
var ErrCorrupt = errors.New("receipt: corrupt encoding")

func appendPathID(dst []byte, p PathID) []byte {
	var b [pathIDLen]byte
	copy(b[0:4], p.Key.Src.Addr[:])
	b[4] = byte(p.Key.Src.Bits)
	copy(b[5:9], p.Key.Dst.Addr[:])
	b[9] = byte(p.Key.Dst.Bits)
	binary.LittleEndian.PutUint32(b[10:14], uint32(p.PrevHOP))
	binary.LittleEndian.PutUint32(b[14:18], uint32(p.NextHOP))
	binary.LittleEndian.PutUint64(b[18:26], uint64(p.MaxDiffNS))
	return append(dst, b[:]...)
}

func decodePathID(b []byte) (PathID, error) {
	if len(b) < pathIDLen {
		return PathID{}, ErrCorrupt
	}
	var p PathID
	copy(p.Key.Src.Addr[:], b[0:4])
	p.Key.Src.Bits = int(b[4])
	copy(p.Key.Dst.Addr[:], b[5:9])
	p.Key.Dst.Bits = int(b[9])
	if p.Key.Src.Bits > 32 || p.Key.Dst.Bits > 32 {
		return PathID{}, fmt.Errorf("%w: prefix bits out of range", ErrCorrupt)
	}
	p.PrevHOP = HOPID(binary.LittleEndian.Uint32(b[10:14]))
	p.NextHOP = HOPID(binary.LittleEndian.Uint32(b[14:18]))
	p.MaxDiffNS = int64(binary.LittleEndian.Uint64(b[18:26]))
	if b[26] != 0 || b[27] != 0 {
		// The two padding bytes must be zero: the encoding is
		// canonical — one byte string per receipt — so a decoder that
		// silently dropped set padding bits would accept two distinct
		// encodings of the same receipt (found by FuzzDecodeReceipt).
		return PathID{}, fmt.Errorf("%w: non-zero PathID padding", ErrCorrupt)
	}
	return p, nil
}

func appendRecords(dst []byte, rs []SampleRecord) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(rs)))
	dst = append(dst, n[:]...)
	var b [recordLen]byte
	for _, r := range rs {
		binary.LittleEndian.PutUint64(b[0:8], r.PktID)
		binary.LittleEndian.PutUint64(b[8:16], uint64(r.TimeNS))
		dst = append(dst, b[:]...)
	}
	return dst
}

func decodeRecords(b []byte) ([]SampleRecord, []byte, error) {
	if len(b) < 4 {
		return nil, nil, ErrCorrupt
	}
	n := binary.LittleEndian.Uint32(b[:4])
	b = b[4:]
	if uint64(len(b)) < uint64(n)*recordLen {
		return nil, nil, ErrCorrupt
	}
	var rs []SampleRecord
	if n > 0 {
		rs = make([]SampleRecord, n)
		for i := range rs {
			rs[i].PktID = binary.LittleEndian.Uint64(b[0:8])
			rs[i].TimeNS = int64(binary.LittleEndian.Uint64(b[8:16]))
			b = b[recordLen:]
		}
	}
	return rs, b, nil
}

// AppendBinary appends the receipt's binary encoding to dst.
func (r SampleReceipt) AppendBinary(dst []byte) []byte {
	dst = append(dst, kindSample)
	dst = appendPathID(dst, r.Path)
	return appendRecords(dst, r.Samples)
}

// WireSize returns the encoded size in bytes.
func (r SampleReceipt) WireSize() int {
	return 1 + pathIDLen + 4 + len(r.Samples)*recordLen
}

// AppendBinary appends the receipt's binary encoding to dst.
func (r AggReceipt) AppendBinary(dst []byte) []byte {
	dst = append(dst, kindAgg)
	dst = appendPathID(dst, r.Path)
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:8], r.Agg.First)
	binary.LittleEndian.PutUint64(b[8:16], r.Agg.Last)
	binary.LittleEndian.PutUint64(b[16:24], r.PktCnt)
	dst = append(dst, b[:]...)
	return appendRecords(dst, r.AggTrans)
}

// WireSize returns the encoded size in bytes.
func (r AggReceipt) WireSize() int {
	return 1 + pathIDLen + 24 + 4 + len(r.AggTrans)*recordLen
}

// Decode parses one receipt from b, returning the receipt (exactly one
// of the two pointers is non-nil), the remaining bytes, and an error.
// Malformed input returns ErrCorrupt (match with errors.Is).
func Decode(b []byte) (*SampleReceipt, *AggReceipt, []byte, error) {
	if len(b) < 1 {
		return nil, nil, nil, ErrCorrupt
	}
	kind := b[0]
	b = b[1:]
	path, err := decodePathID(b)
	if err != nil {
		return nil, nil, nil, err
	}
	b = b[pathIDLen:]
	switch kind {
	case kindSample:
		samples, rest, err := decodeRecords(b)
		if err != nil {
			return nil, nil, nil, err
		}
		return &SampleReceipt{Path: path, Samples: samples}, nil, rest, nil
	case kindAgg:
		if len(b) < 24 {
			return nil, nil, nil, ErrCorrupt
		}
		r := AggReceipt{Path: path}
		r.Agg.First = binary.LittleEndian.Uint64(b[0:8])
		r.Agg.Last = binary.LittleEndian.Uint64(b[8:16])
		r.PktCnt = binary.LittleEndian.Uint64(b[16:24])
		trans, rest, err := decodeRecords(b[24:])
		if err != nil {
			return nil, nil, nil, err
		}
		r.AggTrans = trans
		return nil, &r, rest, nil
	default:
		return nil, nil, nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
}

// BaseAggReceiptBytes is the size of an aggregate receipt without its
// AggTrans window — the "roughly 20 bytes" of per-path collector state
// the paper's §7.1 memory budget counts (PathID + AggID + PktCnt). We
// expose our exact figure for the overhead experiments.
const BaseAggReceiptBytes = 1 + pathIDLen + 24 + 4

// SampleRecordBytes is the per-sample wire cost (packet digest +
// timestamp), the paper's "〈PktID, Time〉 pairs (4 and 3 bytes)"
// scaled to our 64-bit fields.
const SampleRecordBytes = recordLen

// PathKeyOf is a convenience for building a PathID from components.
func PathKeyOf(src, dst packet.Prefix, prev, next HOPID, maxDiffNS int64) PathID {
	return PathID{
		Key:       packet.PathKey{Src: src, Dst: dst},
		PrevHOP:   prev,
		NextHOP:   next,
		MaxDiffNS: maxDiffNS,
	}
}
