// Package receipt defines the traffic receipts at the heart of VPM
// (paper §4): receipts for sets of delay-sampled packets and receipts
// for packet aggregates, together with the combination operator (⊎),
// the inter-domain consistency rules, and compact wire encodings.
//
// A receipt is produced by a HOP (hand-off point) for traffic on one
// HOP path and is disseminated to every domain that observed that
// traffic. Verifiers compare receipts from the two HOPs at the ends of
// an inter-domain link: honest receipts agree (timestamps within
// MaxDiff; equal aggregate packet counts), and a lie shows up as an
// inconsistency that exposes the liar to the neighbor it implicated.
package receipt

import (
	"fmt"
	"strconv"

	"vpm/internal/intern"
	"vpm/internal/packet"
)

// HOPID identifies a hand-off point. The paper numbers HOPs 1..8 in
// its running example (Figure 1).
type HOPID uint32

// AppendText appends "HOP<n>" to dst.
func (h HOPID) AppendText(dst []byte) []byte {
	dst = append(dst, 'H', 'O', 'P')
	return strconv.AppendUint(dst, uint64(h), 10)
}

// String renders the HOP id. A deployment has a handful of HOPs whose
// names recur in every verdict and store key, so the rendering is
// interned: one allocation per distinct HOP per process.
func (h HOPID) String() string {
	var buf [14]byte
	return intern.Bytes(h.AppendText(buf[:0]))
}

// PathID names the HOP path a receipt belongs to, as seen from the
// reporting HOP: the header specification (source and destination
// origin prefixes), the previous and next HOPs on the path, and the
// MaxDiff bound agreed with the HOP across the shared inter-domain
// link (paper §4, "Traffic Receipts").
type PathID struct {
	Key       packet.PathKey `json:"key"`
	PrevHOP   HOPID          `json:"prev_hop"`
	NextHOP   HOPID          `json:"next_hop"`
	MaxDiffNS int64          `json:"max_diff_ns"`
}

// SameTraffic reports whether two PathIDs refer to the same traffic
// (same origin-prefix pair), regardless of the reporting HOP's
// position or link configuration.
func (p PathID) SameTraffic(q PathID) bool { return p.Key == q.Key }

// String renders the PathID compactly.
func (p PathID) String() string {
	return fmt.Sprintf("%s prev=%s next=%s maxdiff=%dns", p.Key, p.PrevHOP, p.NextHOP, p.MaxDiffNS)
}

// Compare totally orders PathIDs: by origin-prefix pair, then previous
// and next HOP, then MaxDiff. Collectors use it to drain receipts in a
// deterministic order instead of map-iteration order.
func (p PathID) Compare(q PathID) int {
	if c := p.Key.Compare(q.Key); c != 0 {
		return c
	}
	switch {
	case p.PrevHOP < q.PrevHOP:
		return -1
	case p.PrevHOP > q.PrevHOP:
		return 1
	case p.NextHOP < q.NextHOP:
		return -1
	case p.NextHOP > q.NextHOP:
		return 1
	case p.MaxDiffNS < q.MaxDiffNS:
		return -1
	case p.MaxDiffNS > q.MaxDiffNS:
		return 1
	}
	return 0
}

// SampleRecord is one delay-sampled measurement: the packet's digest
// and the time the reporting HOP observed it.
type SampleRecord struct {
	PktID  uint64 `json:"pkt_id"`
	TimeNS int64  `json:"time_ns"`
}

// SampleReceipt is a receipt for a set of sampled packets:
// R = 〈PathID, Samples〉.
type SampleReceipt struct {
	Path    PathID         `json:"path"`
	Samples []SampleRecord `json:"samples"`
}

// AggID identifies a packet aggregate by the digests of its first and
// last packets.
type AggID struct {
	First uint64 `json:"first"`
	Last  uint64 `json:"last"`
}

// AggReceipt is a receipt for a packet aggregate:
// R = 〈PathID, AggID, PktCnt, AggTrans〉. AggTrans is the §6.3
// extension: the packet identifiers observed within a window of 2J
// around the aggregate's cutting point, in observation order, which a
// verifier uses to re-align receipts under reordering.
type AggReceipt struct {
	Path     PathID         `json:"path"`
	Agg      AggID          `json:"agg"`
	PktCnt   uint64         `json:"pkt_cnt"`
	AggTrans []SampleRecord `json:"agg_trans,omitempty"`
}

// CombineSamples implements the ⊎ operator for sample receipts: the
// union of the sample sets under a common PathID. Receipts must share
// the PathID; the result's samples preserve input order.
func CombineSamples(rs ...SampleReceipt) (SampleReceipt, error) {
	if len(rs) == 0 {
		return SampleReceipt{}, fmt.Errorf("receipt: combining zero sample receipts")
	}
	out := SampleReceipt{Path: rs[0].Path}
	for i, r := range rs {
		if r.Path != rs[0].Path {
			return SampleReceipt{}, fmt.Errorf("receipt: sample receipt %d has PathID %v, want %v", i, r.Path, rs[0].Path)
		}
		out.Samples = append(out.Samples, r.Samples...)
	}
	return out, nil
}

// CombineAggregates implements the ⊎ operator for N consecutive
// aggregate receipts from a single HOP: the combined receipt covers
// the union aggregate, identified by the first receipt's First and the
// last receipt's Last, with the summed packet count. The caller is
// responsible for passing receipts in stream order; adjacency of
// consecutive aggregates is the reporting HOP's invariant. The
// combined receipt carries the final receipt's AggTrans (the only
// cutting point that survives the merge).
func CombineAggregates(rs ...AggReceipt) (AggReceipt, error) {
	if len(rs) == 0 {
		return AggReceipt{}, fmt.Errorf("receipt: combining zero aggregate receipts")
	}
	out := AggReceipt{
		Path: rs[0].Path,
		Agg:  AggID{First: rs[0].Agg.First, Last: rs[len(rs)-1].Agg.Last},
	}
	for i, r := range rs {
		if r.Path != rs[0].Path {
			return AggReceipt{}, fmt.Errorf("receipt: aggregate receipt %d has PathID %v, want %v", i, r.Path, rs[0].Path)
		}
		out.PktCnt += r.PktCnt
	}
	out.AggTrans = append(out.AggTrans, rs[len(rs)-1].AggTrans...)
	return out, nil
}
