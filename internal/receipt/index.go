package receipt

import "vpm/internal/packet"

// StoreKey identifies one receipt stream inside an indexed receipt
// store: the reporting HOP and the traffic (origin-prefix pair) the
// receipts describe. A verifier that collects receipts for many HOP
// paths at once files every receipt under its StoreKey, so matching
// the two ends of an inter-domain link is a single index lookup
// instead of a scan over everything the HOP ever reported.
type StoreKey struct {
	HOP HOPID
	Key packet.PathKey
}

// KeyOf derives the store key a receipt with the given PathID files
// under when reported by hop. Only the traffic key participates: the
// PathID's link fields (PrevHOP, NextHOP, MaxDiff) describe the
// reporting HOP's position, not the traffic, and receipts from one HOP
// for one traffic stream must land in one index regardless of them.
func KeyOf(hop HOPID, p PathID) StoreKey {
	return StoreKey{HOP: hop, Key: p.Key}
}

// Compare totally orders store keys: by HOP, then by traffic key.
// Indexed stores iterate in this order so multi-path verification is
// deterministic.
func (k StoreKey) Compare(o StoreKey) int {
	switch {
	case k.HOP < o.HOP:
		return -1
	case k.HOP > o.HOP:
		return 1
	}
	return k.Key.Compare(o.Key)
}

// String renders the store key.
func (k StoreKey) String() string { return k.HOP.String() + " " + k.Key.String() }
