package receipt

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"vpm/internal/intern"
	"vpm/internal/packet"
)

// StoreKey identifies one receipt stream inside an indexed receipt
// store: the reporting HOP and the traffic (origin-prefix pair) the
// receipts describe. A verifier that collects receipts for many HOP
// paths at once files every receipt under its StoreKey, so matching
// the two ends of an inter-domain link is a single index lookup
// instead of a scan over everything the HOP ever reported.
type StoreKey struct {
	HOP HOPID
	Key packet.PathKey
}

// KeyOf derives the store key a receipt with the given PathID files
// under when reported by hop. Only the traffic key participates: the
// PathID's link fields (PrevHOP, NextHOP, MaxDiff) describe the
// reporting HOP's position, not the traffic, and receipts from one HOP
// for one traffic stream must land in one index regardless of them.
func KeyOf(hop HOPID, p PathID) StoreKey {
	return StoreKey{HOP: hop, Key: p.Key}
}

// Compare totally orders store keys: by HOP, then by traffic key.
// Indexed stores iterate in this order so multi-path verification is
// deterministic.
func (k StoreKey) Compare(o StoreKey) int {
	switch {
	case k.HOP < o.HOP:
		return -1
	case k.HOP > o.HOP:
		return 1
	}
	return k.Key.Compare(o.Key)
}

// AppendText appends the store key's textual form to dst.
func (k StoreKey) AppendText(dst []byte) []byte {
	dst = k.HOP.AppendText(dst)
	dst = append(dst, ' ')
	return k.Key.AppendText(dst)
}

// String renders the store key. Store keys name receipt streams in
// logs, query parameters and archive filenames, and the same few keys
// recur for the lifetime of a deployment — the rendering is interned,
// so each distinct key allocates its string once per process.
func (k StoreKey) String() string {
	var buf [57]byte
	return intern.Bytes(k.AppendText(buf[:0]))
}

// ErrBadStoreKey reports an unparseable store-key string.
var ErrBadStoreKey = errors.New("receipt: bad store key")

// ParseStoreKey parses the form String emits
// ("HOP3 10.1.0.0/16->172.16.0.0/16") — the textual identity of one
// receipt stream, as it appears in logs, query parameters and archive
// filenames. The parser is strict (one accepted spelling per key, no
// normalization) and total: malformed input of any shape returns an
// error wrapping ErrBadStoreKey, never a panic (FuzzParseStoreKey).
func ParseStoreKey(s string) (StoreKey, error) {
	hopStr, keyStr, ok := strings.Cut(s, " ")
	if !ok {
		return StoreKey{}, fmt.Errorf("%w: %q has no separating space", ErrBadStoreKey, s)
	}
	digits, ok := strings.CutPrefix(hopStr, "HOP")
	if !ok {
		return StoreKey{}, fmt.Errorf("%w: %q does not start with HOP<n>", ErrBadStoreKey, s)
	}
	if digits == "" || (len(digits) > 1 && digits[0] == '0') {
		return StoreKey{}, fmt.Errorf("%w: bad HOP ordinal %q", ErrBadStoreKey, digits)
	}
	n, err := strconv.ParseUint(digits, 10, 32)
	if err != nil {
		return StoreKey{}, fmt.Errorf("%w: bad HOP ordinal %q", ErrBadStoreKey, digits)
	}
	key, err := packet.ParsePathKey(keyStr)
	if err != nil {
		return StoreKey{}, fmt.Errorf("%w: %v", ErrBadStoreKey, err)
	}
	return StoreKey{HOP: HOPID(n), Key: key}, nil
}
