package receipt

import (
	"bytes"
	"testing"
)

func arenaFixture() ([]SampleReceipt, []AggReceipt) {
	p := PathID{PrevHOP: 3, NextHOP: 5, MaxDiffNS: 1_000_000}
	samples := []SampleReceipt{
		{Path: p, Samples: []SampleRecord{{PktID: 1, TimeNS: 10}, {PktID: 2, TimeNS: 20}}},
		{Path: p, Samples: []SampleRecord{{PktID: 3, TimeNS: 30}}},
	}
	aggs := []AggReceipt{
		{Path: p, Agg: AggID{First: 1, Last: 9}, PktCnt: 42, AggTrans: []SampleRecord{{PktID: 7, TimeNS: 70}}},
	}
	return samples, aggs
}

// TestArenaMatchesAppendBinary: arena encoding is byte-identical to
// the plain AppendBinary chain.
func TestArenaMatchesAppendBinary(t *testing.T) {
	samples, aggs := arenaFixture()
	var want []byte
	for _, r := range samples {
		want = r.AppendBinary(want)
	}
	for _, r := range aggs {
		want = r.AppendBinary(want)
	}
	var a Arena
	got := a.Encode(samples, aggs)
	if !bytes.Equal(got, want) {
		t.Fatal("arena encoding differs from AppendBinary chain")
	}
	if a.Len() != len(want) {
		t.Fatalf("arena holds %d bytes, want %d", a.Len(), len(want))
	}

	// Per-receipt encodes after Reset reproduce the same stream.
	a.Reset()
	var rebuilt []byte
	for _, r := range samples {
		rebuilt = append(rebuilt, a.EncodeSample(r)...)
	}
	for _, r := range aggs {
		rebuilt = append(rebuilt, a.EncodeAgg(r)...)
	}
	if !bytes.Equal(rebuilt, want) {
		t.Fatal("per-receipt arena encoding differs")
	}
}

// TestArenaGrowOnly: after the first epoch's encode sized the buffer,
// re-encoding the same-shaped stream allocates nothing.
func TestArenaGrowOnly(t *testing.T) {
	samples, aggs := arenaFixture()
	var a Arena
	a.Encode(samples, aggs)
	highWater := a.Cap()
	allocs := testing.AllocsPerRun(50, func() {
		a.Reset()
		if out := a.Encode(samples, aggs); len(out) == 0 {
			t.Fatal("empty encode")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena encode allocated %.1f times per epoch", allocs)
	}
	if a.Cap() != highWater {
		t.Fatalf("capacity moved from %d to %d on identical streams", highWater, a.Cap())
	}
}

// TestArenaViewsStableUntilReset: slices from successive encodes in
// one epoch stay valid and disjoint.
func TestArenaViewsStableUntilReset(t *testing.T) {
	samples, aggs := arenaFixture()
	var a Arena
	a.Grow(samples[0].WireSize() + samples[1].WireSize())
	first := a.EncodeSample(samples[0])
	firstCopy := append([]byte(nil), first...)
	second := a.EncodeSample(samples[1])
	if !bytes.Equal(first, firstCopy) {
		t.Fatal("earlier view corrupted by later encode in same epoch")
	}
	if &first[0] == &second[0] {
		t.Fatal("views overlap")
	}
	_ = aggs
}
