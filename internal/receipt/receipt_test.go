package receipt

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"vpm/internal/packet"
)

func testPath() PathID {
	return PathKeyOf(
		packet.MakePrefix(10, 1, 0, 0, 16),
		packet.MakePrefix(172, 16, 0, 0, 16),
		HOPID(4), HOPID(5), 2_000_000)
}

func TestCombineSamples(t *testing.T) {
	p := testPath()
	r1 := SampleReceipt{Path: p, Samples: []SampleRecord{{1, 10}, {2, 20}}}
	r2 := SampleReceipt{Path: p, Samples: []SampleRecord{{3, 30}}}
	out, err := CombineSamples(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 3 || out.Samples[2].PktID != 3 {
		t.Fatalf("bad combination: %+v", out)
	}
	if out.Path != p {
		t.Error("path not preserved")
	}
}

func TestCombineSamplesPathMismatch(t *testing.T) {
	p1, p2 := testPath(), testPath()
	p2.NextHOP = 9
	_, err := CombineSamples(SampleReceipt{Path: p1}, SampleReceipt{Path: p2})
	if err == nil {
		t.Fatal("mismatched paths combined")
	}
}

func TestCombineSamplesEmpty(t *testing.T) {
	if _, err := CombineSamples(); err == nil {
		t.Fatal("empty combine accepted")
	}
}

func TestCombineAggregates(t *testing.T) {
	p := testPath()
	rs := []AggReceipt{
		{Path: p, Agg: AggID{First: 0xa, Last: 0xb}, PktCnt: 100},
		{Path: p, Agg: AggID{First: 0xc, Last: 0xd}, PktCnt: 50},
		{Path: p, Agg: AggID{First: 0xe, Last: 0xf}, PktCnt: 25,
			AggTrans: []SampleRecord{{0xf, 99}}},
	}
	out, err := CombineAggregates(rs...)
	if err != nil {
		t.Fatal(err)
	}
	if out.PktCnt != 175 {
		t.Errorf("PktCnt = %d, want 175", out.PktCnt)
	}
	if out.Agg.First != 0xa || out.Agg.Last != 0xf {
		t.Errorf("AggID = %+v", out.Agg)
	}
	if len(out.AggTrans) != 1 || out.AggTrans[0].PktID != 0xf {
		t.Error("combined receipt should carry the last AggTrans")
	}
}

func TestCombineAggregatesPathMismatch(t *testing.T) {
	p1, p2 := testPath(), testPath()
	p2.MaxDiffNS = 1
	_, err := CombineAggregates(AggReceipt{Path: p1}, AggReceipt{Path: p2})
	if err == nil {
		t.Fatal("mismatched paths combined")
	}
	if _, err := CombineAggregates(); err == nil {
		t.Fatal("empty combine accepted")
	}
}

func TestCheckSamplePairConsistent(t *testing.T) {
	p := testPath()
	up := SampleReceipt{Path: p, Samples: []SampleRecord{{1, 1000}, {2, 2000}}}
	down := SampleReceipt{Path: p, Samples: []SampleRecord{{1, 1000 + 500_000}, {2, 2000 + 900_000}}}
	rep := CheckSamplePair(up, down)
	if !rep.Consistent() {
		t.Fatalf("expected consistency, got %v", rep.Violations)
	}
	if len(rep.Matched) != 2 {
		t.Errorf("matched %d, want 2", len(rep.Matched))
	}
}

func TestCheckSamplePairDelayBound(t *testing.T) {
	p := testPath()
	up := SampleReceipt{Path: p, Samples: []SampleRecord{{1, 0}}}
	down := SampleReceipt{Path: p, Samples: []SampleRecord{{1, p.MaxDiffNS + 1}}}
	rep := CheckSamplePair(up, down)
	if rep.Consistent() {
		t.Fatal("delay-bound violation missed")
	}
	if rep.Violations[0].Kind != DelayBound {
		t.Errorf("kind = %v", rep.Violations[0].Kind)
	}
}

func TestCheckSamplePairNegativeDeltaAllowed(t *testing.T) {
	// Clock skew can make the downstream timestamp earlier; the
	// paper's rule only bounds the positive difference.
	p := testPath()
	up := SampleReceipt{Path: p, Samples: []SampleRecord{{1, 1000}}}
	down := SampleReceipt{Path: p, Samples: []SampleRecord{{1, 500}}}
	if rep := CheckSamplePair(up, down); !rep.Consistent() {
		t.Fatalf("negative delta should be tolerated: %v", rep.Violations)
	}
}

func TestCheckSamplePairMaxDiffMismatch(t *testing.T) {
	up := SampleReceipt{Path: testPath()}
	downPath := testPath()
	downPath.MaxDiffNS++
	down := SampleReceipt{Path: downPath}
	rep := CheckSamplePair(up, down)
	if rep.Consistent() || rep.Violations[0].Kind != MaxDiffMismatch {
		t.Fatalf("MaxDiff mismatch missed: %+v", rep.Violations)
	}
}

func TestCheckSamplePairMissing(t *testing.T) {
	p := testPath()
	up := SampleReceipt{Path: p, Samples: []SampleRecord{{1, 0}, {2, 0}}}
	down := SampleReceipt{Path: p, Samples: []SampleRecord{{2, 100}, {3, 100}}}
	rep := CheckSamplePair(up, down)
	var kinds []InconsistencyKind
	for _, v := range rep.Violations {
		kinds = append(kinds, v.Kind)
	}
	if len(kinds) != 2 {
		t.Fatalf("violations = %v", rep.Violations)
	}
	hasMissing := map[InconsistencyKind]bool{}
	for _, k := range kinds {
		hasMissing[k] = true
	}
	if !hasMissing[MissingDownstream] || !hasMissing[MissingUpstream] {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestCheckAggPair(t *testing.T) {
	p := testPath()
	a := AggReceipt{Path: p, Agg: AggID{1, 2}, PktCnt: 100}
	b := AggReceipt{Path: p, Agg: AggID{1, 2}, PktCnt: 100}
	if v := CheckAggPair(a, b); len(v) != 0 {
		t.Fatalf("equal counts flagged: %v", v)
	}
	b.PktCnt = 99
	v := CheckAggPair(a, b)
	if len(v) != 1 || v[0].Kind != CountMismatch {
		t.Fatalf("count mismatch missed: %v", v)
	}
}

func TestInconsistencyStrings(t *testing.T) {
	for _, k := range []InconsistencyKind{MaxDiffMismatch, DelayBound, CountMismatch, MissingDownstream, MissingUpstream, InconsistencyKind(99)} {
		if k.String() == "" {
			t.Errorf("empty name for kind %d", int(k))
		}
	}
	v := Inconsistency{Kind: DelayBound, PktID: 5, Detail: "x"}
	if v.String() == "" {
		t.Error("empty violation string")
	}
	v.PktID = 0
	if v.String() == "" {
		t.Error("empty violation string without pkt")
	}
}

func TestSampleReceiptBinaryRoundTrip(t *testing.T) {
	r := SampleReceipt{Path: testPath(), Samples: []SampleRecord{{0xdead, 123}, {0xbeef, -7}}}
	b := r.AppendBinary(nil)
	if len(b) != r.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(b), r.WireSize())
	}
	s, a, rest, err := Decode(b)
	if err != nil || a != nil || len(rest) != 0 {
		t.Fatalf("decode: s=%v a=%v rest=%d err=%v", s, a, len(rest), err)
	}
	if s.Path != r.Path || len(s.Samples) != 2 || s.Samples[1] != r.Samples[1] {
		t.Fatalf("round trip mismatch: %+v", s)
	}
}

func TestAggReceiptBinaryRoundTrip(t *testing.T) {
	r := AggReceipt{
		Path:     testPath(),
		Agg:      AggID{First: 0x1111, Last: 0x2222},
		PktCnt:   98765,
		AggTrans: []SampleRecord{{0x33, 1}, {0x44, 2}, {0x55, 3}},
	}
	b := r.AppendBinary(nil)
	if len(b) != r.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(b), r.WireSize())
	}
	s, a, rest, err := Decode(b)
	if err != nil || s != nil || len(rest) != 0 {
		t.Fatalf("decode: s=%v a=%v err=%v", s, a, err)
	}
	if a.Path != r.Path || a.Agg != r.Agg || a.PktCnt != r.PktCnt || len(a.AggTrans) != 3 {
		t.Fatalf("round trip mismatch: %+v", a)
	}
}

func TestDecodeStream(t *testing.T) {
	r1 := SampleReceipt{Path: testPath(), Samples: []SampleRecord{{1, 2}}}
	r2 := AggReceipt{Path: testPath(), Agg: AggID{3, 4}, PktCnt: 5}
	b := r2.AppendBinary(r1.AppendBinary(nil))
	s, _, rest, err := Decode(b)
	if err != nil || s == nil {
		t.Fatal("first decode failed")
	}
	_, a, rest, err := Decode(rest)
	if err != nil || a == nil || len(rest) != 0 {
		t.Fatal("second decode failed")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	r := SampleReceipt{Path: testPath(), Samples: []SampleRecord{{1, 2}}}
	b := r.AppendBinary(nil)
	for _, n := range []int{0, 1, 10, len(b) - 1} {
		if _, _, _, err := Decode(b[:n]); err == nil {
			t.Errorf("truncation to %d accepted", n)
		}
	}
	bad := append([]byte{}, b...)
	bad[0] = 77
	if _, _, _, err := Decode(bad); err == nil {
		t.Error("unknown kind accepted")
	}
	// Corrupt prefix bits.
	bad2 := append([]byte{}, b...)
	bad2[5] = 99
	if _, _, _, err := Decode(bad2); err == nil {
		t.Error("invalid prefix bits accepted")
	}
}

func TestDecodeFuzz(t *testing.T) {
	f := func(data []byte) bool {
		// Must never panic; errors are fine.
		Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := AggReceipt{Path: testPath(), Agg: AggID{1, 2}, PktCnt: 3,
		AggTrans: []SampleRecord{{9, 8}}}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back AggReceipt
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.PktCnt != 3 || back.Agg != r.Agg || len(back.AggTrans) != 1 {
		t.Fatalf("json round trip: %+v", back)
	}
}

func TestSameTraffic(t *testing.T) {
	p, q := testPath(), testPath()
	q.PrevHOP, q.NextHOP, q.MaxDiffNS = 1, 2, 3
	if !p.SameTraffic(q) {
		t.Error("same prefixes should be same traffic")
	}
	q.Key.Dst = packet.MakePrefix(9, 9, 0, 0, 16)
	if p.SameTraffic(q) {
		t.Error("different prefixes should differ")
	}
}

func TestStringers(t *testing.T) {
	if testPath().String() == "" || HOPID(3).String() != "HOP3" {
		t.Error("stringers broken")
	}
}

func BenchmarkSampleReceiptEncode(b *testing.B) {
	r := SampleReceipt{Path: testPath(), Samples: make([]SampleRecord, 100)}
	buf := make([]byte, 0, r.WireSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.AppendBinary(buf[:0])
	}
}

func BenchmarkReceiptEncodingJSONVsBinary(b *testing.B) {
	r := AggReceipt{Path: testPath(), Agg: AggID{1, 2}, PktCnt: 100000,
		AggTrans: make([]SampleRecord, 16)}
	b.Run("binary", func(b *testing.B) {
		buf := make([]byte, 0, r.WireSize())
		for i := 0; i < b.N; i++ {
			buf = r.AppendBinary(buf[:0])
		}
	})
	b.Run("json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}
