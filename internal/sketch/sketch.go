// Package sketch implements the traffic-modification detection
// extension the paper sketches in §3.5: "bad ISP behavior may consist
// not only of introducing loss and unpredictable delay, but also of
// modifying traffic; the only way to detect such behavior is to use a
// content-processing technique like [Secure Sketch], which could be
// easily incorporated in our aggregation component."
//
// The structure is an invertible Bloom lookup table (IBLT) over packet
// digests: constant state per aggregate regardless of aggregate size,
// mergeable, and — the key property — *subtractable*. Each HOP folds
// every observed packet's digest into the sketch for the current
// aggregate; a verifier subtracts the downstream sketch from the
// upstream one and peels the difference to recover exactly which
// packet digests disappeared (loss) and which appeared from nowhere
// (injection). A modified packet shows up as one of each — a
// fingerprint plain packet counts cannot produce, since counts only
// see the net difference.
package sketch

import (
	"errors"
	"fmt"

	"vpm/internal/hashing"
)

// cell is one IBLT bucket.
type cell struct {
	count    int64
	idXor    uint64
	checkXor uint64
}

func (c cell) empty() bool { return c.count == 0 && c.idXor == 0 && c.checkXor == 0 }

// pure reports whether the cell holds exactly one surviving id from
// one side of the difference, and which side (+1 upstream-only = lost,
// -1 downstream-only = injected).
func (c cell) pure() (id uint64, lost bool, ok bool) {
	if (c.count == 1 || c.count == -1) && c.checkXor == checksumOf(c.idXor) {
		return c.idXor, c.count == 1, true
	}
	return 0, false, false
}

// checksumOf guards peeling against false positives.
func checksumOf(id uint64) uint64 { return hashing.Mix64(id ^ 0x9e3779b97f4a7c15) }

// NumHashes is the number of cells each id folds into. Three is the
// standard IBLT choice: decodable up to a load factor around 0.8.
const NumHashes = 3

// Sketch is a fixed-size content summary of a packet set. The zero
// value is not usable; call New. Two sketches are comparable only when
// built with identical size and seed (deployment constants, like the
// digest seed).
type Sketch struct {
	cells []cell
	seed  uint64
	n     int64 // items folded in (net, after Subtract)
}

// New builds a sketch with the given cell count. Size it at ~1.5 cells
// per expected *difference* (lost + injected packets per aggregate),
// not per packet — the whole point is that state is independent of
// aggregate size.
func New(cells int, seed uint64) (*Sketch, error) {
	if cells < NumHashes {
		return nil, fmt.Errorf("sketch: need at least %d cells, got %d", NumHashes, cells)
	}
	return &Sketch{cells: make([]cell, cells), seed: seed}, nil
}

// indices returns the id's cell positions.
func (s *Sketch) indices(id uint64) [NumHashes]int {
	var out [NumHashes]int
	h := hashing.Mix64(id ^ s.seed)
	for i := 0; i < NumHashes; i++ {
		out[i] = int(h % uint64(len(s.cells)))
		h = hashing.Mix64(h + uint64(i) + 1)
	}
	return out
}

func (s *Sketch) apply(id uint64, dir int64) {
	chk := checksumOf(id)
	for _, i := range s.indices(id) {
		s.cells[i].count += dir
		s.cells[i].idXor ^= id
		s.cells[i].checkXor ^= chk
	}
	s.n += dir
}

// Add folds one packet digest into the sketch.
func (s *Sketch) Add(id uint64) { s.apply(id, 1) }

// Len returns the net number of items folded in.
func (s *Sketch) Len() int64 { return s.n }

// Reset clears the sketch for reuse, preserving its shape and seed —
// the pooling hook the streaming aggregation backend uses to avoid
// reallocating cell arrays every epoch.
func (s *Sketch) Reset() {
	for i := range s.cells {
		s.cells[i] = cell{}
	}
	s.n = 0
}

// Cells returns the sketch's size in cells.
func (s *Sketch) Cells() int { return len(s.cells) }

// ErrIncompatible reports sketches of different shapes or seeds.
var ErrIncompatible = errors.New("sketch: incompatible sketches")

// Subtract returns a new sketch holding the difference s - other:
// packets in s but not other carry +1 counts, packets in other but not
// s carry -1. Shared packets cancel exactly. Sketches of different
// shapes or seeds return ErrIncompatible (match with errors.Is).
func (s *Sketch) Subtract(other *Sketch) (*Sketch, error) {
	if len(s.cells) != len(other.cells) || s.seed != other.seed {
		return nil, ErrIncompatible
	}
	out := &Sketch{cells: make([]cell, len(s.cells)), seed: s.seed, n: s.n - other.n}
	for i := range s.cells {
		out.cells[i] = cell{
			count:    s.cells[i].count - other.cells[i].count,
			idXor:    s.cells[i].idXor ^ other.cells[i].idXor,
			checkXor: s.cells[i].checkXor ^ other.cells[i].checkXor,
		}
	}
	return out, nil
}

// Decode peels a difference sketch, recovering the ids only present
// upstream (lost) and only present downstream (injected). ok is false
// when the difference exceeds the sketch's capacity and peeling
// stalls; the recovered prefixes are still returned.
func (s *Sketch) Decode() (lost, injected []uint64, ok bool) {
	work := &Sketch{cells: append([]cell{}, s.cells...), seed: s.seed}
	for {
		progress := false
		for i := range work.cells {
			id, isLost, pure := work.cells[i].pure()
			if !pure {
				continue
			}
			if isLost {
				lost = append(lost, id)
				work.apply(id, -1)
			} else {
				injected = append(injected, id)
				work.apply(id, 1)
			}
			progress = true
		}
		if !progress {
			break
		}
	}
	for i := range work.cells {
		if !work.cells[i].empty() {
			return lost, injected, false
		}
	}
	return lost, injected, true
}

// Verdict summarizes a sketch comparison between two HOPs for one
// aggregate.
type Verdict struct {
	// Lost are digests the upstream HOP saw and the downstream HOP
	// did not: ordinary loss.
	Lost []uint64
	// Injected are digests the downstream HOP saw that the upstream
	// never sent. Any injected packet means the traffic was modified
	// or forged in between — the behaviour §3.5 wants detectable.
	Injected []uint64
	// Decoded is false when the difference overflowed the sketch.
	Decoded bool
}

// Modified reports whether the comparison proves traffic modification
// (something arrived that was never sent).
func (v Verdict) Modified() bool { return len(v.Injected) > 0 }

// Compare subtracts and decodes in one step.
func Compare(up, down *Sketch) (Verdict, error) {
	diff, err := up.Subtract(down)
	if err != nil {
		return Verdict{}, err
	}
	lost, injected, ok := diff.Decode()
	return Verdict{Lost: lost, Injected: injected, Decoded: ok}, nil
}
