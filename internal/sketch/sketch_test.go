package sketch

import (
	"errors"
	"testing"

	"vpm/internal/stats"
)

func mustNew(t testing.TB, cells int) *Sketch {
	t.Helper()
	s, err := New(cells, 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 1); err == nil {
		t.Error("undersized sketch accepted")
	}
	if _, err := New(NumHashes, 1); err != nil {
		t.Errorf("minimum size rejected: %v", err)
	}
}

func TestIdenticalSetsCancel(t *testing.T) {
	up, down := mustNew(t, 64), mustNew(t, 64)
	r := stats.NewRNG(1)
	for i := 0; i < 100000; i++ {
		id := r.Uint64()
		up.Add(id)
		down.Add(id)
	}
	v, err := Compare(up, down)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoded || len(v.Lost) != 0 || len(v.Injected) != 0 || v.Modified() {
		t.Fatalf("identical sets should cancel: %+v", v)
	}
}

func TestLossOnlyDecoding(t *testing.T) {
	up, down := mustNew(t, 64), mustNew(t, 64)
	r := stats.NewRNG(2)
	want := map[uint64]bool{}
	for i := 0; i < 50000; i++ {
		id := r.Uint64()
		up.Add(id)
		if i%2500 == 7 { // drop 20 specific packets
			want[id] = true
			continue
		}
		down.Add(id)
	}
	v, err := Compare(up, down)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoded {
		t.Fatal("decode failed within capacity")
	}
	if v.Modified() {
		t.Fatalf("pure loss misreported as modification: %+v", v.Injected)
	}
	if len(v.Lost) != len(want) {
		t.Fatalf("recovered %d losses, want %d", len(v.Lost), len(want))
	}
	for _, id := range v.Lost {
		if !want[id] {
			t.Fatalf("recovered wrong id %#x", id)
		}
	}
}

func TestModificationDetected(t *testing.T) {
	// A domain rewrites some packets in flight: upstream saw the
	// original digests, downstream the modified ones. The sketch
	// reports both directions — injection proves modification.
	up, down := mustNew(t, 64), mustNew(t, 64)
	r := stats.NewRNG(3)
	modified := 0
	for i := 0; i < 50000; i++ {
		id := r.Uint64()
		up.Add(id)
		if i%5000 == 3 {
			down.Add(id ^ 0xFFFF) // content changed => digest changed
			modified++
			continue
		}
		down.Add(id)
	}
	v, err := Compare(up, down)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoded {
		t.Fatal("decode failed")
	}
	if !v.Modified() {
		t.Fatal("modification went undetected")
	}
	if len(v.Injected) != modified || len(v.Lost) != modified {
		t.Fatalf("lost %d injected %d, want %d each", len(v.Lost), len(v.Injected), modified)
	}
}

func TestCapacityOverflow(t *testing.T) {
	// Differences far beyond capacity must be reported as undecodable,
	// not silently wrong.
	up, down := mustNew(t, 16), mustNew(t, 16)
	r := stats.NewRNG(4)
	for i := 0; i < 1000; i++ {
		up.Add(r.Uint64()) // all lost
	}
	v, err := Compare(up, down)
	if err != nil {
		t.Fatal(err)
	}
	if v.Decoded {
		t.Fatal("1000 differences decoded from 16 cells — impossible")
	}
}

func TestCapacityBoundary(t *testing.T) {
	// ~0.6 load factor decodes reliably.
	const cells = 128
	const diffs = 70
	up, down := mustNew(t, cells), mustNew(t, cells)
	r := stats.NewRNG(5)
	for i := 0; i < 10000; i++ {
		id := r.Uint64()
		up.Add(id)
		if i >= 10000-diffs {
			continue
		}
		down.Add(id)
	}
	v, err := Compare(up, down)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Decoded || len(v.Lost) != diffs {
		t.Fatalf("boundary decode failed: decoded=%v lost=%d", v.Decoded, len(v.Lost))
	}
}

func TestIncompatibleSketches(t *testing.T) {
	a := mustNew(t, 64)
	b, _ := New(32, 42)
	if _, err := a.Subtract(b); !errors.Is(err, ErrIncompatible) {
		t.Errorf("size mismatch: err = %v", err)
	}
	c, _ := New(64, 43)
	if _, err := a.Subtract(c); !errors.Is(err, ErrIncompatible) {
		t.Errorf("seed mismatch: err = %v", err)
	}
}

func TestLenAndCells(t *testing.T) {
	s := mustNew(t, 64)
	s.Add(1)
	s.Add(2)
	if s.Len() != 2 || s.Cells() != 64 {
		t.Errorf("Len=%d Cells=%d", s.Len(), s.Cells())
	}
}

func TestConstantStateIndependentOfAggregateSize(t *testing.T) {
	// The §3.5 selling point: sketch size does not grow with traffic.
	s := mustNew(t, 64)
	r := stats.NewRNG(6)
	for i := 0; i < 1_000_000; i++ {
		s.Add(r.Uint64())
	}
	if s.Cells() != 64 {
		t.Fatal("sketch grew")
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	s, _ := New(128, 1)
	r := stats.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(r.Uint64())
	}
}

func BenchmarkSketchCompare(b *testing.B) {
	up, _ := New(128, 1)
	down, _ := New(128, 1)
	r := stats.NewRNG(1)
	for i := 0; i < 100000; i++ {
		id := r.Uint64()
		up.Add(id)
		if i%5000 != 0 {
			down.Add(id)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(up, down); err != nil {
			b.Fatal(err)
		}
	}
}
