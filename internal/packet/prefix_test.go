package packet

import (
	"testing"
	"testing/quick"
)

func TestPrefixContains(t *testing.T) {
	p := MakePrefix(10, 1, 0, 0, 16)
	cases := []struct {
		addr [4]byte
		want bool
	}{
		{[4]byte{10, 1, 0, 0}, true},
		{[4]byte{10, 1, 255, 255}, true},
		{[4]byte{10, 2, 0, 0}, false},
		{[4]byte{11, 1, 0, 0}, false},
	}
	for _, c := range cases {
		if got := p.Contains(c.addr); got != c.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", p, c.addr, got, c.want)
		}
	}
}

func TestMakePrefixNormalizesHostBits(t *testing.T) {
	p := MakePrefix(10, 1, 2, 3, 16)
	if p.Addr != [4]byte{10, 1, 0, 0} {
		t.Errorf("host bits not cleared: %v", p.Addr)
	}
	if p.String() != "10.1.0.0/16" {
		t.Errorf("String = %q", p.String())
	}
}

func TestPrefixZeroAndFullLength(t *testing.T) {
	def := MakePrefix(0, 0, 0, 0, 0)
	if !def.Contains([4]byte{1, 2, 3, 4}) {
		t.Error("default route should contain everything")
	}
	host := MakePrefix(1, 2, 3, 4, 32)
	if !host.Contains([4]byte{1, 2, 3, 4}) || host.Contains([4]byte{1, 2, 3, 5}) {
		t.Error("/32 containment wrong")
	}
}

func TestTableLongestPrefixMatch(t *testing.T) {
	tbl := NewTable([]Prefix{
		MakePrefix(10, 0, 0, 0, 8),
		MakePrefix(10, 1, 0, 0, 16),
		MakePrefix(10, 1, 2, 0, 24),
		MakePrefix(0, 0, 0, 0, 0),
	})
	cases := []struct {
		addr [4]byte
		want string
	}{
		{[4]byte{10, 1, 2, 3}, "10.1.2.0/24"},
		{[4]byte{10, 1, 9, 9}, "10.1.0.0/16"},
		{[4]byte{10, 200, 1, 1}, "10.0.0.0/8"},
		{[4]byte{8, 8, 8, 8}, "0.0.0.0/0"},
	}
	for _, c := range cases {
		got, ok := tbl.Lookup(c.addr)
		if !ok || got.String() != c.want {
			t.Errorf("Lookup(%v) = %v/%v, want %s", c.addr, got, ok, c.want)
		}
	}
}

func TestTableMiss(t *testing.T) {
	tbl := NewTable([]Prefix{MakePrefix(10, 0, 0, 0, 8)})
	if _, ok := tbl.Lookup([4]byte{11, 0, 0, 1}); ok {
		t.Error("lookup should miss")
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestTableClassify(t *testing.T) {
	tbl := NewTable([]Prefix{
		MakePrefix(10, 1, 0, 0, 16),
		MakePrefix(192, 168, 0, 0, 16),
	})
	p := samplePacket()
	p.Src = [4]byte{10, 1, 5, 5}
	p.Dst = [4]byte{192, 168, 1, 1}
	key, ok := tbl.Classify(&p)
	if !ok {
		t.Fatal("classification failed")
	}
	if key.String() != "10.1.0.0/16->192.168.0.0/16" {
		t.Errorf("key = %v", key)
	}
	p.Dst = [4]byte{172, 16, 0, 1}
	if _, ok := tbl.Classify(&p); ok {
		t.Error("unclassifiable packet should fail")
	}
}

func TestTableLPMAgainstLinearScan(t *testing.T) {
	prefixes := []Prefix{
		MakePrefix(0, 0, 0, 0, 0),
		MakePrefix(10, 0, 0, 0, 8),
		MakePrefix(10, 128, 0, 0, 9),
		MakePrefix(10, 1, 0, 0, 16),
		MakePrefix(10, 1, 128, 0, 17),
		MakePrefix(172, 16, 0, 0, 12),
		MakePrefix(192, 168, 4, 0, 22),
		MakePrefix(192, 168, 4, 4, 30),
	}
	tbl := NewTable(prefixes)
	linear := func(a [4]byte) (Prefix, bool) {
		best, found := Prefix{Bits: -1}, false
		for _, p := range prefixes {
			if p.Contains(a) && p.Bits > best.Bits {
				best, found = p, true
			}
		}
		return best, found
	}
	f := func(a, b, c, d byte) bool {
		addr := [4]byte{a, b, c, d}
		g1, ok1 := tbl.Lookup(addr)
		g2, ok2 := linear(addr)
		return ok1 == ok2 && (!ok1 || g1 == g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTableInvalidPrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid prefix length did not panic")
		}
	}()
	NewTable([]Prefix{{Bits: 40}})
}

func BenchmarkTableLookup(b *testing.B) {
	prefixes := make([]Prefix, 0, 256)
	for i := 0; i < 256; i++ {
		prefixes = append(prefixes, MakePrefix(byte(i), 0, 0, 0, 8))
	}
	tbl := NewTable(prefixes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Lookup([4]byte{byte(i), 1, 2, 3})
	}
}
