package packet

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"

	"vpm/internal/intern"
)

// Prefix is an IPv4 routing prefix (an "origin prefix" in BGP terms).
// The paper names HOP paths by their source and destination origin
// prefixes; HOPs classify packets by looking their addresses up in a
// table of advertised prefixes.
type Prefix struct {
	Addr [4]byte
	Bits int // prefix length, 0..32
}

// MakePrefix builds a Prefix from four address octets and a length,
// normalizing host bits to zero.
func MakePrefix(a, b, c, d byte, bits int) Prefix {
	p := Prefix{Addr: [4]byte{a, b, c, d}, Bits: bits}
	v := p.uint32() & p.mask()
	binary.BigEndian.PutUint32(p.Addr[:], v)
	return p
}

func (p Prefix) uint32() uint32 { return binary.BigEndian.Uint32(p.Addr[:]) }

func (p Prefix) mask() uint32 {
	if p.Bits <= 0 {
		return 0
	}
	if p.Bits >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - p.Bits)
}

// Contains reports whether address a falls inside the prefix.
func (p Prefix) Contains(a [4]byte) bool {
	return binary.BigEndian.Uint32(a[:])&p.mask() == p.uint32()
}

// AppendText appends the prefix in CIDR notation to dst.
func (p Prefix) AppendText(dst []byte) []byte {
	for i, o := range p.Addr {
		if i > 0 {
			dst = append(dst, '.')
		}
		dst = strconv.AppendUint(dst, uint64(o), 10)
	}
	dst = append(dst, '/')
	return strconv.AppendInt(dst, int64(p.Bits), 10)
}

// String renders the prefix in CIDR notation. Prefixes name traffic
// keys all over receipts and verdicts, so the rendering is interned:
// each distinct prefix allocates its string once per process.
func (p Prefix) String() string {
	var buf [20]byte
	return intern.Bytes(p.AppendText(buf[:0]))
}

// Compare totally orders prefixes by address, then length: -1, 0 or +1
// as p sorts before, equal to, or after q. Used to emit receipts in a
// deterministic order.
func (p Prefix) Compare(q Prefix) int {
	pv, qv := p.uint32(), q.uint32()
	switch {
	case pv < qv:
		return -1
	case pv > qv:
		return 1
	case p.Bits < q.Bits:
		return -1
	case p.Bits > q.Bits:
		return 1
	}
	return 0
}

// PathKey identifies a HOP path by its source and destination origin
// prefixes (the paper's HeaderSpec "includes at least a source and
// destination origin-prefix pair").
type PathKey struct {
	Src, Dst Prefix
}

// AppendText appends "src->dst" in CIDR notation to dst.
func (k PathKey) AppendText(dst []byte) []byte {
	dst = k.Src.AppendText(dst)
	dst = append(dst, '-', '>')
	return k.Dst.AppendText(dst)
}

// String renders "src->dst" in CIDR notation, interned like
// Prefix.String.
func (k PathKey) String() string {
	var buf [42]byte
	return intern.Bytes(k.AppendText(buf[:0]))
}

// Compare totally orders path keys (source prefix, then destination).
func (k PathKey) Compare(o PathKey) int {
	if c := k.Src.Compare(o.Src); c != 0 {
		return c
	}
	return k.Dst.Compare(o.Dst)
}

// Table performs longest-prefix matching over a set of origin
// prefixes, standing in for the BGP table a border router would
// consult. It is immutable after Build and safe for concurrent reads.
type Table struct {
	// byLen[l] holds the prefix values of length l in a sorted slice
	// for binary search.
	byLen [33][]uint32
	// prefixes retains originals for reverse lookup.
	byLenPrefix [33][]Prefix
	n           int
}

// NewTable builds a lookup table from the given prefixes.
func NewTable(prefixes []Prefix) *Table {
	t := &Table{}
	for _, p := range prefixes {
		if p.Bits < 0 || p.Bits > 32 {
			panic(fmt.Sprintf("packet: invalid prefix length %d", p.Bits))
		}
		v := p.uint32() & p.mask()
		t.byLen[p.Bits] = append(t.byLen[p.Bits], v)
		t.byLenPrefix[p.Bits] = append(t.byLenPrefix[p.Bits], Prefix{Addr: p.Addr, Bits: p.Bits})
		t.n++
	}
	for l := 0; l <= 32; l++ {
		vals, pfx := t.byLen[l], t.byLenPrefix[l]
		sort.Sort(&prefixSorter{vals, pfx})
	}
	return t
}

type prefixSorter struct {
	vals []uint32
	pfx  []Prefix
}

func (s *prefixSorter) Len() int           { return len(s.vals) }
func (s *prefixSorter) Less(i, j int) bool { return s.vals[i] < s.vals[j] }
func (s *prefixSorter) Swap(i, j int) {
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
	s.pfx[i], s.pfx[j] = s.pfx[j], s.pfx[i]
}

// Len returns the number of prefixes in the table.
func (t *Table) Len() int { return t.n }

// Lookup returns the longest prefix containing address a.
func (t *Table) Lookup(a [4]byte) (Prefix, bool) {
	v := binary.BigEndian.Uint32(a[:])
	for l := 32; l >= 0; l-- {
		vals := t.byLen[l]
		if len(vals) == 0 {
			continue
		}
		var m uint32
		if l == 0 {
			m = 0
		} else {
			m = ^uint32(0) << (32 - l)
		}
		key := v & m
		i := sort.Search(len(vals), func(i int) bool { return vals[i] >= key })
		if i < len(vals) && vals[i] == key {
			return t.byLenPrefix[l][i], true
		}
	}
	return Prefix{}, false
}

// Classify maps a packet to its PathKey by looking up both addresses.
// ok is false when either address has no covering prefix.
func (t *Table) Classify(p *Packet) (PathKey, bool) {
	src, ok1 := t.Lookup(p.Src)
	dst, ok2 := t.Lookup(p.Dst)
	if !ok1 || !ok2 {
		return PathKey{}, false
	}
	return PathKey{Src: src, Dst: dst}, true
}
