// Package packet models the packets VPM HOPs observe: an IPv4 header
// plus a TCP or UDP transport header, with wire-format serialization,
// allocation-free parsing into preallocated structs (in the style of
// gopacket's DecodingLayerParser), and the canonical digest region used
// to compute packet IDs.
//
// The digest region deliberately excludes fields that legitimately
// change as a packet crosses domains (TTL, header checksums, the ECN
// bits of TOS), so that every HOP on a path computes the same PktID for
// the same packet — the property all of VPM's receipt matching relies
// on.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vpm/internal/hashing"
)

// Proto identifies the transport protocol of a packet.
type Proto uint8

// Transport protocol numbers (IANA).
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// String returns the conventional protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Header sizes in bytes. We model option-less headers.
const (
	IPv4HeaderLen = 20
	TCPHeaderLen  = 20
	UDPHeaderLen  = 8
)

// Packet is a decoded IPv4 packet with its transport header and the
// simulation metadata VPM needs (origin timestamp, total size). The
// zero value is not a valid packet; use the trace generator or fill the
// fields explicitly.
type Packet struct {
	// IPv4 header fields.
	TOS      uint8
	TotalLen uint16 // entire packet length on the wire, incl. IPv4 header
	IPID     uint16
	TTL      uint8
	Proto    Proto
	Src, Dst [4]byte

	// Transport header fields. Seq/Ack/TCPFlags/Window are meaningful
	// only when Proto == ProtoTCP.
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	TCPFlags         uint8
	Window           uint16

	// SentAt is the packet's origin timestamp in simulated
	// nanoseconds. It is metadata, not wire content.
	SentAt int64
}

// HeaderLen returns the combined IPv4+transport header length.
func (p *Packet) HeaderLen() int {
	if p.Proto == ProtoTCP {
		return IPv4HeaderLen + TCPHeaderLen
	}
	return IPv4HeaderLen + UDPHeaderLen
}

// PayloadLen returns the payload byte count implied by TotalLen.
func (p *Packet) PayloadLen() int {
	n := int(p.TotalLen) - p.HeaderLen()
	if n < 0 {
		return 0
	}
	return n
}

// WireLen returns the total on-the-wire length in bytes.
func (p *Packet) WireLen() int { return int(p.TotalLen) }

// Errors returned by Parse.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: not IPv4")
	ErrBadChecksum = errors.New("packet: bad IPv4 header checksum")
	ErrBadProto    = errors.New("packet: unsupported transport protocol")
)

// Serialize appends the packet's wire representation (headers only —
// payload bytes are synthetic zeros and are not materialized; the
// returned slice has header length, while TotalLen still reports the
// full size) to dst and returns the extended slice. IPv4 and transport
// checksums are computed.
func (p *Packet) Serialize(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, p.HeaderLen())...)
	b := dst[off:]

	b[0] = 0x45 // version 4, IHL 5
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:4], p.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], p.IPID)
	// flags+fragment offset: DF set, offset 0.
	binary.BigEndian.PutUint16(b[6:8], 0x4000)
	b[8] = p.TTL
	b[9] = uint8(p.Proto)
	// checksum at [10:12], zero for now
	copy(b[12:16], p.Src[:])
	copy(b[16:20], p.Dst[:])
	cs := Checksum(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:12], cs)

	t := b[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(t[0:2], p.SrcPort)
	binary.BigEndian.PutUint16(t[2:4], p.DstPort)
	if p.Proto == ProtoTCP {
		binary.BigEndian.PutUint32(t[4:8], p.Seq)
		binary.BigEndian.PutUint32(t[8:12], p.Ack)
		t[12] = 5 << 4 // data offset 5 words
		t[13] = p.TCPFlags
		binary.BigEndian.PutUint16(t[14:16], p.Window)
		// TCP checksum left zero: payload is synthetic.
	} else {
		binary.BigEndian.PutUint16(t[4:6], uint16(UDPHeaderLen+p.PayloadLen()))
		// UDP checksum optional; left zero.
	}
	return dst
}

// Parse decodes the wire bytes in data into p, overwriting all fields
// except SentAt. It validates the IPv4 version, header checksum and
// transport protocol, returning ErrTruncated, ErrBadVersion,
// ErrBadChecksum or ErrBadProto respectively (match with errors.Is).
// data may contain extra bytes past the headers.
func (p *Packet) Parse(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return ErrTruncated
	}
	if data[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return ErrTruncated
	}
	if Checksum(data[:ihl]) != 0 {
		return ErrBadChecksum
	}
	p.TOS = data[1]
	p.TotalLen = binary.BigEndian.Uint16(data[2:4])
	p.IPID = binary.BigEndian.Uint16(data[4:6])
	p.TTL = data[8]
	p.Proto = Proto(data[9])
	copy(p.Src[:], data[12:16])
	copy(p.Dst[:], data[16:20])

	t := data[ihl:]
	switch p.Proto {
	case ProtoTCP:
		if len(t) < TCPHeaderLen {
			return ErrTruncated
		}
		p.SrcPort = binary.BigEndian.Uint16(t[0:2])
		p.DstPort = binary.BigEndian.Uint16(t[2:4])
		p.Seq = binary.BigEndian.Uint32(t[4:8])
		p.Ack = binary.BigEndian.Uint32(t[8:12])
		p.TCPFlags = t[13]
		p.Window = binary.BigEndian.Uint16(t[14:16])
	case ProtoUDP:
		if len(t) < UDPHeaderLen {
			return ErrTruncated
		}
		p.SrcPort = binary.BigEndian.Uint16(t[0:2])
		p.DstPort = binary.BigEndian.Uint16(t[2:4])
		p.Seq, p.Ack, p.TCPFlags, p.Window = 0, 0, 0, 0
	default:
		return ErrBadProto
	}
	return nil
}

// Checksum computes the Internet checksum (RFC 1071) over b. A buffer
// whose embedded checksum field is correct sums to zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// digestRegionLen is the size of the canonical digest region.
const digestRegionLen = 28

// AppendDigestBytes appends the packet's canonical digest region to dst
// and returns the extended slice: the immutable IPv4 fields (TOS with
// ECN masked, TotalLen, IPID, Proto, Src, Dst) followed by the
// transport fields (ports, and for TCP the sequence number and flags).
// TTL and checksums are excluded so the region is invariant across
// HOPs. This is the "small, fixed portion of each observed packet" the
// paper's hash functions consume.
func (p *Packet) AppendDigestBytes(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, digestRegionLen)...)
	b := dst[off:]
	b[0] = p.TOS &^ 0x03 // mask ECN bits, mutable in flight
	b[1] = uint8(p.Proto)
	binary.BigEndian.PutUint16(b[2:4], p.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], p.IPID)
	copy(b[6:10], p.Src[:])
	copy(b[10:14], p.Dst[:])
	binary.BigEndian.PutUint16(b[14:16], p.SrcPort)
	binary.BigEndian.PutUint16(b[16:18], p.DstPort)
	binary.BigEndian.PutUint32(b[18:22], p.Seq)
	binary.BigEndian.PutUint32(b[22:26], p.Ack)
	b[26] = p.TCPFlags
	b[27] = 0
	return dst
}

// Digest returns the packet's 64-bit ID under the given deployment
// seed: the Bob hash of the canonical digest region.
func (p *Packet) Digest(seed uint64) uint64 {
	var buf [digestRegionLen]byte
	return hashing.Digest(p.AppendDigestBytes(buf[:0]), seed)
}

// String renders a compact one-line description for logs.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %d.%d.%d.%d:%d->%d.%d.%d.%d:%d len=%d id=%d",
		p.Proto,
		p.Src[0], p.Src[1], p.Src[2], p.Src[3], p.SrcPort,
		p.Dst[0], p.Dst[1], p.Dst[2], p.Dst[3], p.DstPort,
		p.TotalLen, p.IPID)
}
