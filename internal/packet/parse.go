package packet

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrBadPrefix reports an unparseable or non-canonical prefix string.
var ErrBadPrefix = errors.New("packet: bad prefix")

// ParsePrefix parses the CIDR form Prefix.String emits
// ("10.1.0.0/16"). The parser is strict: exactly four decimal octets
// in 0..255 with no leading zeros beyond "0" itself, a length in
// 0..32, and no host bits set beyond the length — a receipt stream
// identifier must have exactly one accepted spelling, so anything
// non-canonical is rejected with ErrBadPrefix rather than normalized.
func ParsePrefix(s string) (Prefix, error) {
	addr, bitsStr, ok := strings.Cut(s, "/")
	if !ok {
		return Prefix{}, fmt.Errorf("%w: %q has no /length", ErrBadPrefix, s)
	}
	var p Prefix
	rest := addr
	for i := 0; i < 4; i++ {
		var oct string
		if i < 3 {
			oct, rest, ok = strings.Cut(rest, ".")
			if !ok {
				return Prefix{}, fmt.Errorf("%w: %q has fewer than 4 octets", ErrBadPrefix, s)
			}
		} else {
			oct = rest
		}
		v, err := parseDecimal(oct, 255)
		if err != nil {
			return Prefix{}, fmt.Errorf("%w: octet %q: %v", ErrBadPrefix, oct, err)
		}
		p.Addr[i] = byte(v)
	}
	bits, err := parseDecimal(bitsStr, 32)
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: length %q: %v", ErrBadPrefix, bitsStr, err)
	}
	p.Bits = bits
	if canon := MakePrefix(p.Addr[0], p.Addr[1], p.Addr[2], p.Addr[3], p.Bits); canon != p {
		return Prefix{}, fmt.Errorf("%w: %q has host bits set beyond /%d", ErrBadPrefix, s, p.Bits)
	}
	return p, nil
}

// parseDecimal parses a canonical decimal in [0, max]: digits only, no
// sign, no leading zeros (except "0").
func parseDecimal(s string, max int) (int, error) {
	if s == "" {
		return 0, errors.New("empty")
	}
	if len(s) > 1 && s[0] == '0' {
		return 0, errors.New("leading zero")
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errors.New("non-digit")
		}
	}
	v, err := strconv.Atoi(s)
	if err != nil || v > max {
		return 0, fmt.Errorf("out of range 0..%d", max)
	}
	return v, nil
}

// ParsePathKey parses the form PathKey.String emits
// ("10.1.0.0/16->172.16.0.0/16"). Strict like ParsePrefix: malformed
// input returns an error wrapping ErrBadPrefix (match with errors.Is).
func ParsePathKey(s string) (PathKey, error) {
	src, dst, ok := strings.Cut(s, "->")
	if !ok {
		return PathKey{}, fmt.Errorf("%w: path key %q has no \"->\"", ErrBadPrefix, s)
	}
	sp, err := ParsePrefix(src)
	if err != nil {
		return PathKey{}, err
	}
	dp, err := ParsePrefix(dst)
	if err != nil {
		return PathKey{}, err
	}
	return PathKey{Src: sp, Dst: dp}, nil
}
