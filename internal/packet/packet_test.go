package packet

import (
	"errors"
	"testing"
	"testing/quick"

	"vpm/internal/stats"
)

func samplePacket() Packet {
	return Packet{
		TOS:      0,
		TotalLen: 552,
		IPID:     0x1234,
		TTL:      64,
		Proto:    ProtoTCP,
		Src:      [4]byte{10, 0, 1, 2},
		Dst:      [4]byte{192, 168, 9, 8},
		SrcPort:  443,
		DstPort:  51234,
		Seq:      0xdeadbeef,
		Ack:      0x01020304,
		TCPFlags: 0x18,
		Window:   65535,
		SentAt:   12345,
	}
}

func TestSerializeParseRoundTripTCP(t *testing.T) {
	p := samplePacket()
	wire := p.Serialize(nil)
	if len(wire) != IPv4HeaderLen+TCPHeaderLen {
		t.Fatalf("wire length %d", len(wire))
	}
	var q Packet
	if err := q.Parse(wire); err != nil {
		t.Fatal(err)
	}
	q.SentAt = p.SentAt // metadata, not on the wire
	if q != p {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestSerializeParseRoundTripUDP(t *testing.T) {
	p := samplePacket()
	p.Proto = ProtoUDP
	p.Seq, p.Ack, p.TCPFlags, p.Window = 0, 0, 0, 0
	wire := p.Serialize(nil)
	if len(wire) != IPv4HeaderLen+UDPHeaderLen {
		t.Fatalf("wire length %d", len(wire))
	}
	var q Packet
	if err := q.Parse(wire); err != nil {
		t.Fatal(err)
	}
	q.SentAt = p.SentAt
	if q != p {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestSerializeAppends(t *testing.T) {
	p := samplePacket()
	prefix := []byte{1, 2, 3}
	out := p.Serialize(prefix)
	if len(out) != 3+p.HeaderLen() {
		t.Fatalf("append semantics broken: len=%d", len(out))
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatal("prefix clobbered")
	}
}

func TestParseRejectsTruncated(t *testing.T) {
	p := samplePacket()
	wire := p.Serialize(nil)
	for _, n := range []int{0, 1, 19, 21, len(wire) - 1} {
		var q Packet
		if err := q.Parse(wire[:n]); err == nil {
			t.Errorf("Parse accepted %d-byte truncation", n)
		}
	}
}

func TestParseRejectsBadVersion(t *testing.T) {
	p := samplePacket()
	wire := p.Serialize(nil)
	wire[0] = 0x65 // version 6
	var q Packet
	if err := q.Parse(wire); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestParseRejectsBadChecksum(t *testing.T) {
	p := samplePacket()
	wire := p.Serialize(nil)
	wire[10] ^= 0xff
	var q Packet
	if err := q.Parse(wire); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestParseRejectsBadProto(t *testing.T) {
	p := samplePacket()
	p.Proto = 47 // GRE
	wire := p.Serialize(nil)
	var q Packet
	if err := q.Parse(wire); !errors.Is(err, ErrBadProto) {
		t.Errorf("err = %v, want ErrBadProto", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic RFC 1071 example header.
	h := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	if cs := Checksum(h); cs != 0xb861 {
		t.Fatalf("checksum = %#04x, want 0xb861", cs)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Error("odd-length checksum padding wrong")
	}
}

func TestDigestInvariantToTTLAndECN(t *testing.T) {
	p := samplePacket()
	d := p.Digest(7)
	p.TTL = 3
	if p.Digest(7) != d {
		t.Error("digest changed with TTL")
	}
	p.TOS = 0x03 // ECN bits set
	if p.Digest(7) != d {
		t.Error("digest changed with ECN bits")
	}
	p.TOS = 0x04 // DSCP change IS significant
	if p.Digest(7) == d {
		t.Error("digest should change with DSCP")
	}
}

func TestDigestSensitivity(t *testing.T) {
	p := samplePacket()
	base := p.Digest(1)
	mods := []func(*Packet){
		func(q *Packet) { q.IPID++ },
		func(q *Packet) { q.Seq++ },
		func(q *Packet) { q.SrcPort++ },
		func(q *Packet) { q.DstPort++ },
		func(q *Packet) { q.Src[3]++ },
		func(q *Packet) { q.Dst[0]++ },
		func(q *Packet) { q.TotalLen++ },
	}
	for i, mod := range mods {
		q := samplePacket()
		mod(&q)
		if q.Digest(1) == base {
			t.Errorf("mod %d did not change digest", i)
		}
	}
}

func TestDigestMatchesAfterWireTrip(t *testing.T) {
	// A packet re-parsed from the wire at a later HOP (TTL
	// decremented, checksum rewritten) must produce the same digest.
	f := func(ipid uint16, seq uint32, sp, dp uint16) bool {
		p := samplePacket()
		p.IPID, p.Seq, p.SrcPort, p.DstPort = ipid, seq, sp, dp
		d0 := p.Digest(9)
		p.TTL--
		wire := p.Serialize(nil)
		var q Packet
		if err := q.Parse(wire); err != nil {
			return false
		}
		return q.Digest(9) == d0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigestCollisionRate(t *testing.T) {
	// DESIGN.md ablation: with 64-bit digests, collisions among 200k
	// distinct packets should effectively never occur.
	r := stats.NewRNG(5)
	seen := make(map[uint64]struct{}, 200000)
	p := samplePacket()
	for i := 0; i < 200000; i++ {
		p.IPID = uint16(r.Uint32())
		p.Seq = r.Uint32()
		p.SrcPort = uint16(r.Uint32())
		d := p.Digest(3)
		if _, dup := seen[d]; dup {
			// Could be an input repeat; tolerate only if inputs repeat.
			continue
		}
		seen[d] = struct{}{}
	}
	if len(seen) < 199000 {
		t.Errorf("unexpectedly many digest collisions: %d unique of 200000", len(seen))
	}
}

func TestPayloadAndWireLen(t *testing.T) {
	p := samplePacket()
	if p.PayloadLen() != int(p.TotalLen)-40 {
		t.Errorf("PayloadLen = %d", p.PayloadLen())
	}
	if p.WireLen() != int(p.TotalLen) {
		t.Errorf("WireLen = %d", p.WireLen())
	}
	p.TotalLen = 10 // pathological
	if p.PayloadLen() != 0 {
		t.Error("PayloadLen should clamp at 0")
	}
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "TCP" || ProtoUDP.String() != "UDP" {
		t.Error("proto names wrong")
	}
	if Proto(99).String() == "" {
		t.Error("unknown proto should still render")
	}
}

func TestPacketString(t *testing.T) {
	p := samplePacket()
	if s := p.String(); s == "" {
		t.Error("empty String()")
	}
}

func BenchmarkSerialize(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Serialize(buf[:0])
	}
}

func BenchmarkParse(b *testing.B) {
	p := samplePacket()
	wire := p.Serialize(nil)
	var q Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := q.Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketDigest(b *testing.B) {
	p := samplePacket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.IPID = uint16(i)
		_ = p.Digest(1)
	}
}
