// Package analysis is the repository's static-analysis framework: a
// self-contained, standard-library-only mirror of the
// golang.org/x/tools/go/analysis API surface that vpm-lint's passes
// are written against. The module deliberately has no external
// dependencies (and the build environment is offline), so rather than
// vendor x/tools this package reimplements the thin slice the
// analyzers need — Analyzer, Pass, Diagnostic, a driver with
// //lint:ignore suppression, and an analysistest-style harness — on
// top of go/ast and go/types, fed by internal/analysis/loader.
//
// Each analyzer encodes an invariant the repository's verifiability
// guarantees rest on, front-running a runtime gate that previously
// caught its violations only after they shipped:
//
//   - determinism: verdict/encode packages must not let map iteration
//     order or wall-clock reads leak into output (the runtime twin is
//     the byte-identical-fingerprint test grid).
//   - hotpath: functions reachable from //vpm:hotpath roots must not
//     allocate per packet (runtime twin: core.AllocsPerPktBudget).
//   - fsyncdiscipline: segstore renames must ride the
//     write-temp → fsync → rename → fsync-dir commit sequence
//     (runtime twin: the FaultFS crash-point sweep).
//   - errwrap: sentinel errors are matched with errors.Is/As, never
//     == or message text (runtime twin: every typed-error test).
package analysis

import (
	"fmt"
	"go/token"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in reports and //lint:ignore directives.
	Name string
	// Doc is the one-paragraph description printed by vpm-lint -list.
	Doc string
	// Run applies the pass to one package.
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the offending syntax.
	Pos token.Pos
	// Message states the violation.
	Message string
	// Fix is the remediation hint vpm-lint prints alongside the
	// position — every invariant has a known-good idiom.
	Fix string
}

// Reportf reports a formatted diagnostic without a fix hint.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
