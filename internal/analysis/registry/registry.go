// Package registry is the canonical list of vpm-lint's analyzers.
// cmd/vpm-lint runs exactly this list, and the meta-test in this
// package holds every entry to the testing bar: a registered analyzer
// must ship an analysistest suite with positive, negative and
// //lint:ignore fixtures.
package registry

import (
	"vpm/internal/analysis"
	"vpm/internal/analysis/determinism"
	"vpm/internal/analysis/errwrap"
	"vpm/internal/analysis/fsyncdiscipline"
	"vpm/internal/analysis/hotpath"
)

// All returns the analyzers vpm-lint runs, in report order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		errwrap.Analyzer,
		fsyncdiscipline.Analyzer,
		hotpath.Analyzer,
	}
}
