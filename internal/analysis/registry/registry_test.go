package registry_test

import (
	"os"
	"path/filepath"
	"testing"

	"vpm/internal/analysis/registry"
)

// TestEveryAnalyzerHasATestdataSuite is the meta-test the lint
// framework's own discipline hangs on: an analyzer registered without
// an analysistest fixture ships unverified diagnostics. Each entry in
// registry.All must live in internal/analysis/<name>/ with a
// testdata/src tree next to its test.
func TestEveryAnalyzerHasATestdataSuite(t *testing.T) {
	for _, a := range registry.All() {
		dir := filepath.Join("..", a.Name, "testdata", "src")
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzer %q has no testdata suite: %v", a.Name, err)
			continue
		}
		if len(entries) == 0 {
			t.Errorf("analyzer %q has an empty testdata/src", a.Name)
		}
	}
}

// TestAnalyzerMetadata pins the registry invariants the driver and the
// SARIF encoder rely on: unique non-empty names, docs, and Run hooks.
func TestAnalyzerMetadata(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range registry.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing name, doc or run hook", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 4 {
		t.Errorf("registry has %d analyzers, want the 4 verifiability passes", len(seen))
	}
}
