// Package errwrap enforces the repository's typed-error discipline:
// sentinel errors (segstore.ErrTornTail, core.StaleSealError,
// dissem.GapError, seqdetect.ErrCorruptVerdict, ...) flow through
// wrapping — fmt.Errorf("...: %w", Err) — so callers MUST match them
// with errors.Is/errors.As. A literal ==, a message-text comparison or
// a bare type assertion silently stops matching the moment somebody
// adds context to the error, which is exactly how a "refuses to boot
// on corruption" guarantee degrades into "boots anyway".
package errwrap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vpm/internal/analysis"
)

// Analyzer is the errwrap pass.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "sentinel errors must be matched with errors.Is/As, never == or message text; " +
		"exported functions returning a sentinel must document it",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.CallExpr:
				checkStringsCall(pass, n)
			case *ast.TypeAssertExpr:
				checkAssertion(pass, n)
			case *ast.FuncDecl:
				checkDocumented(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// sentinelObj resolves e to a package-level error-typed variable (a
// sentinel), or nil.
func sentinelObj(pass *analysis.Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !analysis.IsPackageLevel(obj) || !analysis.ImplementsError(obj.Type()) {
		return nil
	}
	return obj
}

// isErrorMessageCall matches x.Error() on an error-typed x.
func isErrorMessageCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	return t != nil && analysis.ImplementsError(t)
}

// checkComparison flags ==/!= against a sentinel and against error
// message text.
func checkComparison(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	// nil comparisons are the one legitimate direct form.
	if isNil(pass, b.X) || isNil(pass, b.Y) {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if obj := sentinelObj(pass, side); obj != nil {
			other := b.Y
			if side == b.Y {
				other = b.X
			}
			if t := pass.TypesInfo.TypeOf(other); t == nil || !analysis.ImplementsError(t) {
				continue // comparing the var to something non-error (e.g. a field select)
			}
			pass.Report(analysis.Diagnostic{
				Pos:     b.Pos(),
				Message: "sentinel error " + obj.Name() + " compared with " + b.Op.String() + "; a wrapped error will not match",
				Fix:     "use errors.Is(err, " + obj.Name() + ")",
			})
			return
		}
	}
	if isErrorMessageCall(pass, b.X) || isErrorMessageCall(pass, b.Y) {
		pass.Report(analysis.Diagnostic{
			Pos:     b.Pos(),
			Message: "error matched by message text; messages are not part of any compatibility contract",
			Fix:     "match the sentinel with errors.Is or the type with errors.As",
		})
	}
}

// checkStringsCall flags strings.Contains/HasPrefix/HasSuffix over
// err.Error().
func checkStringsCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	switch fn.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorMessageCall(pass, arg) {
			pass.Report(analysis.Diagnostic{
				Pos:     call.Pos(),
				Message: "error matched by message substring; messages are not part of any compatibility contract",
				Fix:     "match the sentinel with errors.Is or the type with errors.As",
			})
			return
		}
	}
}

// checkAssertion flags err.(*T) on an error-interface-typed operand.
func checkAssertion(pass *analysis.Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return // the expression form of a type switch; not flagged
	}
	t := pass.TypesInfo.TypeOf(ta.X)
	if t == nil || !types.Identical(t, types.Universe.Lookup("error").Type()) {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos:     ta.Pos(),
		Message: "type assertion on an error; a wrapped error will not match",
		Fix:     "use errors.As(err, &target)",
	})
}

// checkDocumented requires exported functions that return a sentinel
// directly to say so in their doc comment — the sentinel is API.
func checkDocumented(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || !fd.Name.IsExported() {
		return
	}
	if analysis.IsTestFile(pass.Fset, fd.Pos()) {
		return
	}
	if fd.Recv != nil && !exportedRecv(fd) {
		return
	}
	doc := ""
	if fd.Doc != nil {
		doc = fd.Doc.Text()
	}
	seen := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl != nil {
			return false // a closure's returns are not the function's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			obj := returnedSentinel(pass, res)
			if obj == nil || seen[obj.Name()] {
				continue
			}
			seen[obj.Name()] = true
			if !strings.Contains(doc, obj.Name()) {
				pass.Report(analysis.Diagnostic{
					Pos:     fd.Name.Pos(),
					Message: "exported " + fd.Name.Name + " returns sentinel " + obj.Name() + " but its doc comment does not mention it",
					Fix:     "document the sentinel so callers know to errors.Is against it",
				})
			}
		}
		return true
	})
}

// returnedSentinel resolves a result expression that delivers a
// sentinel to the caller: the sentinel itself, or fmt.Errorf wrapping
// it (the %w idiom keeps it matchable, so it is still API).
func returnedSentinel(pass *analysis.Pass, res ast.Expr) types.Object {
	if obj := sentinelObj(pass, res); obj != nil {
		return obj
	}
	call, ok := ast.Unparen(res).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return nil
	}
	for _, arg := range call.Args {
		if obj := sentinelObj(pass, arg); obj != nil {
			return obj
		}
	}
	return nil
}

// exportedRecv reports whether a method's receiver base type is
// exported (unexported receivers are not API surface).
func exportedRecv(fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	id := analysis.RootIdent(fd.Recv.List[0].Type)
	return id != nil && id.IsExported()
}

// isNil matches the untyped nil identifier.
func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilObj
}
