// Package errfix is the errwrap fixture.
package errfix

import (
	"errors"
	"fmt"
	"strings"
)

// ErrTorn is a sentinel in the style of segstore.ErrTornTail.
var ErrTorn = errors.New("errfix: torn tail")

// ErrGone is a second sentinel, documented by DocumentedReturn.
var ErrGone = errors.New("errfix: gone")

// BadEqual compares a sentinel with ==.
func BadEqual(err error) bool {
	return err == ErrTorn // want `sentinel error ErrTorn compared with ==`
}

// BadNotEqual compares a sentinel with !=.
func BadNotEqual(err error) bool {
	return err != ErrTorn // want `sentinel error ErrTorn compared with !=`
}

// BadSwitchCase hides the comparison in a switch — the expression
// desugars to the same ==.
func BadSwitchCase(err error) bool {
	switch {
	case err == ErrGone: // want `sentinel error ErrGone compared with ==`
		return true
	}
	return false
}

// GoodIs matches through wrapping.
func GoodIs(err error) bool {
	return errors.Is(err, ErrTorn)
}

// GoodNil is the one legitimate direct comparison.
func GoodNil(err error) bool {
	return err == nil
}

// BadMessage matches by message text.
func BadMessage(err error) bool {
	return err.Error() == "errfix: torn tail" // want `error matched by message text`
}

// BadContains matches by message substring.
func BadContains(err error) bool {
	return strings.Contains(err.Error(), "torn") // want `error matched by message substring`
}

// BadAssert type-asserts an error.
func BadAssert(err error) bool {
	_, ok := err.(*pathError) // want `type assertion on an error`
	return ok
}

// GoodAs matches the type through wrapping.
func GoodAs(err error) bool {
	var pe *pathError
	return errors.As(err, &pe)
}

type pathError struct{ path string }

func (e *pathError) Error() string { return "path: " + e.path }

// UndocumentedReturn fails without saying how.
func UndocumentedReturn(ok bool) error { // want `exported UndocumentedReturn returns sentinel ErrTorn but its doc comment does not mention it`
	if !ok {
		return ErrTorn
	}
	return nil
}

// DocumentedReturn reports ErrGone when the value is gone.
func DocumentedReturn(ok bool) error {
	if !ok {
		return fmt.Errorf("lookup: %w", ErrGone)
	}
	return nil
}

// undocumentedUnexported is not API; no doc requirement.
func undocumentedUnexported(ok bool) error {
	if !ok {
		return ErrTorn
	}
	return nil
}

// SuppressedEqual demonstrates a justified identity comparison.
func SuppressedEqual(err error) bool {
	//lint:ignore errwrap this API contractually returns the bare sentinel, never wrapped
	return err == ErrTorn
}
