package errwrap_test

import (
	"testing"

	"vpm/internal/analysis/analysistest"
	"vpm/internal/analysis/errwrap"
)

// TestErrwrap drives the pass over the fixture: == / != against
// sentinels, message-text matching and bare type assertions must be
// flagged; errors.Is/As, nil comparisons, unexported functions and
// justified suppressions must not.
func TestErrwrap(t *testing.T) {
	analysistest.Run(t, "testdata", errwrap.Analyzer, "errfix")
}
