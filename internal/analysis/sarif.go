package analysis

import (
	"encoding/json"
	"path/filepath"
)

// SARIF rendering for CI: the lint job uploads the findings as a
// SARIF 2.1.0 artifact so code-scanning UIs can annotate PRs with
// them. Only the slice of the format the findings need is modeled.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID   string `json:"id"`
	Desc struct {
		Text string `json:"text"`
	} `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation struct {
		ArtifactLocation struct {
			URI string `json:"uri"`
		} `json:"artifactLocation"`
		Region struct {
			StartLine   int `json:"startLine"`
			StartColumn int `json:"startColumn"`
		} `json:"region"`
	} `json:"physicalLocation"`
}

// EncodeSARIF renders findings as a SARIF 2.1.0 document. Suppressed
// findings are reported at "note" level so the justification trail
// stays visible; live findings are "error". Paths are made relative
// to root when possible.
func EncodeSARIF(findings []Finding, analyzers []*Analyzer, root string) ([]byte, error) {
	run := sarifRun{Results: []sarifResult{}}
	run.Tool.Driver.Name = "vpm-lint"
	for _, a := range analyzers {
		r := sarifRule{ID: a.Name}
		r.Desc.Text = a.Doc
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, r)
	}
	for _, f := range findings {
		res := sarifResult{RuleID: f.Analyzer, Level: "error"}
		msg := f.Message
		if f.Fix != "" {
			msg += " (fix: " + f.Fix + ")"
		}
		if f.Suppressed {
			res.Level = "note"
			msg += " (suppressed: " + f.Reason + ")"
		}
		res.Message.Text = msg
		var loc sarifLocation
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			uri = rel
		}
		loc.PhysicalLocation.ArtifactLocation.URI = filepath.ToSlash(uri)
		loc.PhysicalLocation.Region.StartLine = f.Pos.Line
		loc.PhysicalLocation.Region.StartColumn = f.Pos.Column
		res.Locations = append(res.Locations, loc)
		run.Results = append(run.Results, res)
	}
	return json.MarshalIndent(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}, "", " ")
}
