// Package loader type-checks this module's packages for the vpm-lint
// analyzers using only the standard library. It is the offline,
// dependency-free slice of golang.org/x/tools/go/packages that this
// repository needs: the module has no external requirements, so every
// import resolves either inside the module itself, in GOROOT/src, or
// in GOROOT/src/vendor — all of which go/build and go/types can load
// from source without network access or export data.
//
// The loader exists so the analyzers in internal/analysis get real
// *types.Info (map-ness of a ranged expression, string-ness of a `+`,
// which method a selector resolves to) rather than guessing from
// syntax. Packages named on the command line are "targets": their
// syntax is retained (with comments, so //vpm:hotpath and
// //lint:ignore directives are visible) and their in-package and
// external test files are included; packages reached only through
// imports are type-checked for their exported API and discarded.
package loader

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded target package, ready for analysis.
type Package struct {
	// PkgPath is the import path ("vpm/internal/core"); external test
	// packages carry the real compiler path ("vpm/internal/core_test").
	PkgPath string
	// Dir is the directory holding the package's files.
	Dir string
	// Fset positions every file in the package (shared loader-wide).
	Fset *token.FileSet
	// Files is the parsed syntax, comments included. For a non-test
	// target this is GoFiles + in-package test files.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Config parameterizes a Load.
type Config struct {
	// Dir is the root the patterns resolve against: the module root in
	// module mode, or a GOPATH-style src root (analysistest fixtures).
	Dir string
	// ModulePath, when non-empty, maps import paths with this prefix
	// into Dir (module mode). When empty, every non-stdlib import path
	// resolves to Dir/<path> (src-root mode).
	ModulePath string
	// Tests includes _test.go files of target packages.
	Tests bool
}

// Load resolves patterns ("./...", "./internal/core", or bare import
// paths in src-root mode) to directories, then parses and type-checks
// each resulting package plus, with cfg.Tests, its external _test
// package.
func Load(cfg *Config, patterns ...string) ([]*Package, error) {
	ctxt := build.Default
	// Cgo files cannot be type-checked from source; every package on
	// this module's import graph has a pure-Go fallback.
	ctxt.CgoEnabled = false
	ld := &loaderState{
		cfg:      cfg,
		ctxt:     &ctxt,
		fset:     token.NewFileSet(),
		checked:  make(map[string]*types.Package),
		checking: make(map[string]bool),
		targets:  make(map[string]bool),
	}

	dirs, err := ld.expand(patterns)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		ld.targets[dir] = true
	}

	// A target reached first as another target's import is checked (and
	// recorded) at that moment, so the loop below may hit the cache;
	// ld.loaded accumulates every target exactly once either way.
	for _, dir := range dirs {
		path, err := ld.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		if _, err := ld.check(path); err != nil {
			return nil, err
		}
	}
	// External test packages are checked after every base package:
	// package foo_test may import anything that imports foo, so
	// checking it inside foo's own check() would manufacture cycles.
	for _, x := range ld.xtests {
		if err := ld.checkXTest(x.base, x.dir, x.files); err != nil {
			return nil, err
		}
	}
	sort.Slice(ld.loaded, func(i, j int) bool { return ld.loaded[i].PkgPath < ld.loaded[j].PkgPath })
	return ld.loaded, nil
}

// loaderState carries one Load's caches.
type loaderState struct {
	cfg      *Config
	ctxt     *build.Context
	fset     *token.FileSet
	checked  map[string]*types.Package // import path -> checked package
	checking map[string]bool           // cycle guard
	targets  map[string]bool           // target directories
	loaded   []*Package
	xtests   []xtestWork
}

// xtestWork defers an external test package until all base packages
// are checked.
type xtestWork struct {
	base, dir string
	files     []string
}

// expand resolves the patterns to package directories.
func (ld *loaderState) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := ld.walkTree(ld.cfg.Dir, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(ld.cfg.Dir, strings.TrimSuffix(pat, "/..."))
			if err := ld.walkTree(root, add); err != nil {
				return nil, err
			}
		default:
			add(filepath.Join(ld.cfg.Dir, pat))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// walkTree collects every directory under root that holds .go files,
// skipping testdata, vendor and hidden directories the way the go
// tool's "./..." does.
func (ld *loaderState) walkTree(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				add(path)
				break
			}
		}
		return nil
	})
}

// importPathFor maps a target directory back to its import path.
func (ld *loaderState) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(ld.cfg.Dir, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		if ld.cfg.ModulePath != "" {
			return ld.cfg.ModulePath, nil
		}
		return "", fmt.Errorf("loader: src-root mode cannot load the root directory itself")
	}
	if ld.cfg.ModulePath != "" {
		return ld.cfg.ModulePath + "/" + rel, nil
	}
	return rel, nil
}

// dirFor resolves an import path to a directory, or "" when the path
// is not resolvable (the caller reports the import site).
func (ld *loaderState) dirFor(path string) string {
	if ld.cfg.ModulePath != "" {
		if path == ld.cfg.ModulePath {
			return ld.cfg.Dir
		}
		if rest, ok := strings.CutPrefix(path, ld.cfg.ModulePath+"/"); ok {
			return filepath.Join(ld.cfg.Dir, filepath.FromSlash(rest))
		}
	} else {
		// src-root mode: local fixture packages live under Dir.
		if dir := filepath.Join(ld.cfg.Dir, filepath.FromSlash(path)); isDir(dir) {
			return dir
		}
	}
	goroot := ld.ctxt.GOROOT
	if dir := filepath.Join(goroot, "src", filepath.FromSlash(path)); isDir(dir) {
		return dir
	}
	// The standard library vendors its golang.org/x dependencies.
	if dir := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)); isDir(dir) {
		return dir
	}
	return ""
}

func isDir(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// Import implements types.Importer over the loader's resolution rules.
func (ld *loaderState) Import(path string) (*types.Package, error) {
	return ld.check(path)
}

// check type-checks path (once), recursing through its imports.
func (ld *loaderState) check(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	if ld.checking[path] {
		return nil, fmt.Errorf("loader: import cycle through %q", path)
	}
	ld.checking[path] = true
	defer delete(ld.checking, path)

	dir := ld.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("loader: cannot resolve import %q", path)
	}
	bp, err := ld.ctxt.ImportDir(dir, 0)
	isTarget := ld.targets[filepath.Clean(dir)]
	if err != nil {
		// A directory holding only _test.go files is a valid target
		// (go/build reports it as NoGoError with the test lists
		// populated); anywhere else it cannot satisfy an import.
		var noGo *build.NoGoError
		if !(errors.As(err, &noGo) && isTarget && ld.cfg.Tests) {
			return nil, fmt.Errorf("loader: %s: %w", path, err)
		}
	}
	files := append([]string(nil), bp.GoFiles...)
	if isTarget && ld.cfg.Tests {
		files = append(files, bp.TestGoFiles...)
	}

	mode := parser.SkipObjectResolution
	if isTarget {
		mode |= parser.ParseComments
	}
	syntax, err := ld.parseAll(dir, files, mode)
	if err != nil {
		return nil, err
	}

	var pkg *types.Package
	info := newInfo()
	if len(syntax) == 0 {
		// Pure external-test directory: the base package is empty.
		pkg = types.NewPackage(path, bp.Name)
	} else {
		conf := types.Config{
			Importer: ld,
			Sizes:    types.SizesFor("gc", ld.ctxt.GOARCH),
		}
		pkg, err = conf.Check(path, ld.fset, syntax, info)
		if err != nil {
			return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
		}
	}
	ld.checked[path] = pkg

	if isTarget {
		ld.loaded = append(ld.loaded, &Package{
			PkgPath: path, Dir: dir, Fset: ld.fset,
			Files: syntax, Types: pkg, Info: info,
		})
		if ld.cfg.Tests && len(bp.XTestGoFiles) > 0 {
			ld.xtests = append(ld.xtests, xtestWork{base: path, dir: dir, files: bp.XTestGoFiles})
		}
	}
	return pkg, nil
}

// checkXTest type-checks a target's external test package
// (package foo_test in foo's directory).
func (ld *loaderState) checkXTest(base, dir string, files []string) error {
	syntax, err := ld.parseAll(dir, files, parser.SkipObjectResolution|parser.ParseComments)
	if err != nil {
		return err
	}
	info := newInfo()
	conf := types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", ld.ctxt.GOARCH),
	}
	path := base + "_test"
	pkg, err := conf.Check(path, ld.fset, syntax, info)
	if err != nil {
		return fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	ld.loaded = append(ld.loaded, &Package{
		PkgPath: path, Dir: dir, Fset: ld.fset,
		Files: syntax, Types: pkg, Info: info,
	})
	return nil
}

// parseAll parses the named files in dir.
func (ld *loaderState) parseAll(dir string, files []string, mode parser.Mode) ([]*ast.File, error) {
	syntax := make([]*ast.File, 0, len(files))
	for _, name := range files {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	return syntax, nil
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
