// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against // want
// comments — the same convention as golang.org/x/tools'
// analysistest, reimplemented over this repository's loader.
//
// A fixture line expecting diagnostics carries a trailing comment:
//
//	for k := range m { out = append(out, k) } // want `leaks map iteration order`
//
// Each backquoted (or double-quoted) string is a regexp that must
// match the message of exactly one diagnostic reported on that line.
// Diagnostics suppressed by a justified //lint:ignore do not count —
// which is how the suites pin the suppression mechanism itself.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"vpm/internal/analysis"
	"vpm/internal/analysis/loader"
)

// Run loads each named fixture package from testdata/src/<pkg>, runs
// the analyzer, and reports want/got mismatches on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	loaded, err := loader.Load(&loader.Config{Dir: src, Tests: true}, pkgs...)
	if err != nil {
		t.Fatalf("analysistest: loading fixtures: %v", err)
	}
	findings, err := analysis.Run(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants := collectWants(t, loaded)
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		if matchWant(wants[key], f.Message) {
			continue
		}
		t.Errorf("%s: unexpected diagnostic: [%s] %s", f.Pos, f.Analyzer, f.Message)
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the expectation strings from a comment:
// backquoted or double-quoted regexps after the word "want".
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// collectWants indexes // want comments by (file, line).
func collectWants(t *testing.T, pkgs []*loader.Package) map[lineKey][]*want {
	t.Helper()
	wants := make(map[lineKey][]*want)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(strings.TrimPrefix(c.Text, "//"), " want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
						expr := m[1]
						if expr == "" {
							expr = m[2]
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, expr, err)
						}
						key := lineKey{pos.Filename, pos.Line}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}

// matchWant consumes the first unmatched want whose regexp matches.
func matchWant(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// Fprint is a debugging helper: it renders findings the way vpm-lint
// does, for use in suite-failure messages.
func Fprint(findings []analysis.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&b, f.String())
	}
	return b.String()
}
