package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"vpm/internal/analysis/loader"
)

// Pass carries one (analyzer, package) unit of work, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the load path (external test packages carry a _test
	// suffix).
	PkgPath string
	// Report records one diagnostic; the driver applies suppression.
	Report func(Diagnostic)
}

// Finding is one driver-level result: a diagnostic resolved to a file
// position, with suppression applied.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	Fix      string         `json:"fix,omitempty"`
	// Suppressed marks findings silenced by a justified //lint:ignore;
	// they are reported for transparency but do not fail the build.
	Suppressed bool `json:"suppressed,omitempty"`
	// Reason is the suppressing directive's justification.
	Reason string `json:"reason,omitempty"`
}

// String renders the vpm-lint output line.
func (f Finding) String() string {
	s := fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
	if f.Fix != "" {
		s += " (fix: " + f.Fix + ")"
	}
	if f.Suppressed {
		s += " (suppressed: " + f.Reason + ")"
	}
	return s
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool // nil means "all"
	reason    string
}

// Run applies every analyzer to every package and returns the merged,
// position-sorted findings. Suppression: a comment of the form
//
//	//lint:ignore <analyzer[,analyzer...]|all> <justification>
//
// on the flagged line or the line above it downgrades matching
// findings to Suppressed. A directive without a justification is
// itself a finding — unexplained suppressions are how invariants rot.
func Run(pkgs []*loader.Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores, malformed := collectIgnores(pkg)
		findings = append(findings, malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.PkgPath,
			}
			pass.Report = func(d Diagnostic) {
				f := Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
					Fix:      d.Fix,
				}
				if dir, ok := matchIgnore(ignores, f.Pos, a.Name); ok {
					f.Suppressed = true
					f.Reason = dir.reason
				}
				findings = append(findings, f)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// collectIgnores indexes a package's //lint:ignore directives by
// (file, line) and reports malformed ones as findings.
func collectIgnores(pkg *loader.Package) (map[string]map[int]ignoreDirective, []Finding) {
	index := make(map[string]map[int]ignoreDirective)
	var malformed []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore: need an analyzer list and a justification",
						Fix:      "write //lint:ignore <analyzer|all> <why this violation is safe>",
					})
					continue
				}
				dir := ignoreDirective{reason: strings.Join(fields[1:], " ")}
				if fields[0] != "all" {
					dir.analyzers = make(map[string]bool)
					for _, name := range strings.Split(fields[0], ",") {
						dir.analyzers[name] = true
					}
				}
				if index[pos.Filename] == nil {
					index[pos.Filename] = make(map[int]ignoreDirective)
				}
				index[pos.Filename][pos.Line] = dir
			}
		}
	}
	return index, malformed
}

// matchIgnore finds a directive covering pos: on the same line
// (trailing comment) or the line above (own-line comment).
func matchIgnore(index map[string]map[int]ignoreDirective, pos token.Position, analyzer string) (ignoreDirective, bool) {
	lines := index[pos.Filename]
	if lines == nil {
		return ignoreDirective{}, false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if dir, ok := lines[line]; ok {
			if dir.analyzers == nil || dir.analyzers[analyzer] {
				return dir, true
			}
		}
	}
	return ignoreDirective{}, false
}
