// Package fsyncdiscipline enforces segstore's durability contract at
// compile time. The store's crash-safety argument (PR 7) rests on one
// commit sequence — write temp file, fsync the file, rename over the
// committed name, fsync the directory — with the manifest rename as
// the sole durability point. A rename that skips the preceding file
// sync can commit a name whose contents are still in the page cache;
// one that skips the following directory sync can lose the rename
// itself. The FaultFS crash-point sweep catches these at test time,
// ~10 minutes after the bug ships; this pass catches them at the
// keystroke.
//
// Rules, applied to non-test files of package segstore:
//
//   - every call to Rename on an FS-typed value (any type whose method
//     set includes SyncDir) must have a file Sync() call before it and
//     a SyncDir() call after it in the same function — except inside a
//     forwarding method that is itself named Rename (the FaultFS
//     pattern);
//   - filesystem mutations must go through the FS abstraction: direct
//     os.Rename/os.WriteFile/... calls are forbidden outside the file
//     that declares DirFS, because an operation the FS interface never
//     sees is an operation the crash-point sweep can never crash.
package fsyncdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"vpm/internal/analysis"
)

// Analyzer is the fsyncdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncdiscipline",
	Doc: "segstore renames must follow write-temp → fsync → rename → fsync-dir, and all " +
		"filesystem mutation must go through the FS abstraction",
	Run: run,
}

// osMutators are the direct-filesystem calls that bypass crash-point
// injection.
var osMutators = map[string]bool{
	"Rename": true, "WriteFile": true, "Create": true, "OpenFile": true,
	"Remove": true, "RemoveAll": true, "Truncate": true, "Mkdir": true, "MkdirAll": true,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() != "segstore" {
		return nil, nil
	}
	fsImplFiles := filesDeclaring(pass, "DirFS")
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		filename := pass.Fset.Position(file.Pos()).Filename
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDirectOS(pass, fd, fsImplFiles[filename])
			checkRenameSequence(pass, fd)
		}
	}
	return nil, nil
}

// filesDeclaring maps filenames that declare the named type.
func filesDeclaring(pass *analysis.Pass, typeName string) map[string]bool {
	out := make(map[string]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if ok && ts.Name.Name == typeName {
				out[pass.Fset.Position(file.Pos()).Filename] = true
			}
			return true
		})
	}
	return out
}

// checkDirectOS flags os.* filesystem mutation outside the FS
// implementation file.
func checkDirectOS(pass *analysis.Pass, fd *ast.FuncDecl, inFSImplFile bool) {
	if inFSImplFile {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !osMutators[fn.Name()] {
			return true
		}
		pass.Report(analysis.Diagnostic{
			Pos:     call.Pos(),
			Message: "direct os." + fn.Name() + " bypasses the FS abstraction; the crash-point sweep cannot crash what it cannot see",
			Fix:     "route the operation through the segstore.FS interface",
		})
		return true
	})
}

// fsCall classifies one interesting call site in source order.
type fsCall struct {
	pos  token.Pos
	kind int // sync, rename, syncdir
}

const (
	kindSync = iota
	kindRename
	kindSyncDir
)

// checkRenameSequence requires Sync-before and SyncDir-after every
// FS.Rename in the function.
func checkRenameSequence(pass *analysis.Pass, fd *ast.FuncDecl) {
	// An FS implementation forwarding its own Rename (FaultFS wrapping
	// the inner FS) is not a commit sequence.
	if fd.Recv != nil && fd.Name.Name == "Rename" {
		return
	}
	var calls []fsCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Sync":
			if len(call.Args) == 0 {
				calls = append(calls, fsCall{call.Pos(), kindSync})
			}
		case "SyncDir":
			calls = append(calls, fsCall{call.Pos(), kindSyncDir})
		case "Rename":
			if recvHasSyncDir(pass, sel) {
				calls = append(calls, fsCall{call.Pos(), kindRename})
			}
		}
		return true
	})
	for i, c := range calls {
		if c.kind != kindRename {
			continue
		}
		var syncBefore, dirAfter bool
		for _, before := range calls[:i] {
			if before.kind == kindSync {
				syncBefore = true
			}
		}
		for _, after := range calls[i+1:] {
			if after.kind == kindSyncDir {
				dirAfter = true
			}
		}
		switch {
		case !syncBefore:
			pass.Report(analysis.Diagnostic{
				Pos:     c.pos,
				Message: "Rename without a preceding file Sync: the committed name may point at unflushed data",
				Fix:     "commit via write-temp → Sync → Rename → SyncDir",
			})
		case !dirAfter:
			pass.Report(analysis.Diagnostic{
				Pos:     c.pos,
				Message: "Rename without a following SyncDir: the rename itself is not durable until the directory entry is flushed",
				Fix:     "commit via write-temp → Sync → Rename → SyncDir",
			})
		}
	}
}

// recvHasSyncDir reports whether the selector's receiver type exposes
// a SyncDir method — the structural signature of the FS interface and
// its implementations.
func recvHasSyncDir(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, "SyncDir")
	_, isFunc := obj.(*types.Func)
	return isFunc
}
