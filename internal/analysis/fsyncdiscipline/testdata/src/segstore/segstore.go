// Package segstore is the fsyncdiscipline fixture: it reuses the real
// package's name and declares a structurally identical FS slice, so
// the analyzer sees the same shapes it sees in the durable store.
package segstore

import "io"

// FS mirrors the durable store's filesystem slice.
type FS interface {
	OpenAppend(name string) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	SyncDir() error
}

// File is an append handle.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// GoodCommit is the blessed sequence: write temp, sync file, rename,
// sync dir.
func GoodCommit(fsys FS, data []byte) error {
	f, err := fsys.OpenAppend("MANIFEST.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename("MANIFEST.tmp", "MANIFEST"); err != nil {
		return err
	}
	return fsys.SyncDir()
}

// BadNoSync renames without flushing the staged file first.
func BadNoSync(fsys FS, data []byte) error {
	f, err := fsys.OpenAppend("MANIFEST.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Close()
	if err := fsys.Rename("MANIFEST.tmp", "MANIFEST"); err != nil { // want `Rename without a preceding file Sync`
		return err
	}
	return fsys.SyncDir()
}

// BadNoSyncDir renames but never makes the directory entry durable.
func BadNoSyncDir(fsys FS, data []byte) error {
	f, err := fsys.OpenAppend("MANIFEST.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	return fsys.Rename("MANIFEST.tmp", "MANIFEST") // want `Rename without a following SyncDir`
}

// SuppressedRename demonstrates a justified suppression: renaming a
// discardable temp to another temp name is not a commit.
func SuppressedRename(fsys FS) error {
	//lint:ignore fsyncdiscipline temp-to-temp rename of discardable staging state, not a commit point
	return fsys.Rename("a.tmp", "b.tmp")
}
