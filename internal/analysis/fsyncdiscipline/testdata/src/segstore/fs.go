package segstore

import "os"

// DirFS is the designated FS implementation; direct os calls are
// allowed only in this file.
type DirFS struct{ dir string }

// Rename implements FS over the real filesystem.
func (f *DirFS) Rename(oldname, newname string) error {
	return os.Rename(f.dir+"/"+oldname, f.dir+"/"+newname)
}

// SyncDir implements FS.
func (f *DirFS) SyncDir() error { return nil }
