package segstore

import "os"

// FaultFS forwards to an inner FS; its own Rename method is a
// forwarder, not a commit sequence, and must not be flagged.
type FaultFS struct{ inner FS }

// Rename implements FS by forwarding.
func (f *FaultFS) Rename(oldname, newname string) error {
	return f.inner.Rename(oldname, newname)
}

// SyncDir implements FS by forwarding.
func (f *FaultFS) SyncDir() error { return f.inner.SyncDir() }

// BadDirectOS mutates the filesystem behind the FS abstraction's
// back, outside the DirFS file.
func BadDirectOS(path string) error {
	return os.Remove(path) // want `direct os.Remove bypasses the FS abstraction`
}
