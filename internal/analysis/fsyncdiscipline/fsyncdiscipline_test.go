package fsyncdiscipline_test

import (
	"testing"

	"vpm/internal/analysis/analysistest"
	"vpm/internal/analysis/fsyncdiscipline"
)

// TestFsyncDiscipline drives the pass over the fixture: renames
// missing the preceding file Sync or the following SyncDir and direct
// os.* mutation must be flagged; the full commit sequence, the DirFS
// implementation file, forwarding FS wrappers and justified
// suppressions must not.
func TestFsyncDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", fsyncdiscipline.Analyzer, "segstore")
}
