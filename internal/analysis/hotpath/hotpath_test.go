package hotpath_test

import (
	"testing"

	"vpm/internal/analysis/analysistest"
	"vpm/internal/analysis/hotpath"
)

// TestHotpath drives the pass over the fixture: allocation idioms in
// functions reached from //vpm:hotpath roots — directly, through
// methods, and through package-local interface calls — must be
// flagged; grow-only appends, cold functions and justified
// suppressions must not.
func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "hot")
}
