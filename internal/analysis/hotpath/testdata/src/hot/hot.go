// Package hot is the hotpath fixture: annotated roots, call-graph
// propagation (direct, method, interface), and every allocation idiom
// the pass bans.
package hot

import "fmt"

// Collector mimics the per-packet pipeline shape.
type Collector struct {
	counts map[string]int
	buf    []byte
	name   string
}

// observer is a package-local interface; hotness propagates through
// its method calls to every same-named method in the package.
type observer interface {
	observe(id uint64)
}

// Observe is the per-packet entry point.
//
//vpm:hotpath
func (c *Collector) Observe(id uint64, key string) {
	c.counts[key]++
	c.step(id)
}

// step is hot by propagation from Observe.
func (c *Collector) step(id uint64) {
	c.buf = append(c.buf, byte(id)) // grow-only append: allowed
	label := "pkt:" + c.name        // want `string concatenation in a hot function`
	_ = label
}

// BadFmt is hot by direct-call propagation from ObserveBatch.
func badFmt(id uint64) string {
	return fmt.Sprintf("pkt-%d", id) // want `fmt.Sprintf in a hot function`
}

// ObserveBatch is a second annotated root.
//
//vpm:hotpath
func ObserveBatch(c *Collector, ids []uint64) {
	for _, id := range ids {
		_ = badFmt(id)
	}
	var o observer = sink{}
	o.observe(0)
}

type sink struct{}

// observe is hot through the interface fan-out from ObserveBatch.
func (sink) observe(id uint64) {
	s := make([]uint64, 1) // want `make in a hot function allocates per call`
	s[0] = id
}

// cold is never reached from an annotated root; nothing here is
// flagged.
func cold() string {
	x := make([]byte, 8)
	_ = x
	return fmt.Sprintf("cold")
}
