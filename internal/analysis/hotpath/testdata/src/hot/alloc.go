package hot

// record mimics a receipt.
type record struct {
	id uint64
}

// encoder mimics the arena encoder shape.
type encoder struct {
	out   []record
	spill []byte
}

// Drain is an annotated root exercising the remaining idioms.
//
//vpm:hotpath
func (e *encoder) Drain(ids []uint64) []record {
	for _, id := range ids {
		e.out = append(e.out, record{id: id})
	}
	fresh := append([]record(nil), e.out...) // want `append whose result does not feed back into its base`
	_ = fresh
	cb := func(r record) uint64 { return r.id } // want `closure created in a hot function`
	_ = cb
	r := &record{id: 1} // want `&composite-literal in a hot function heap-allocates per call`
	_ = r
	tmp := []byte{0} // want `slice/map literal in a hot function allocates per call`
	_ = tmp
	p := new(record) // want `new in a hot function allocates per call`
	_ = p
	var boxed any = record{id: 2}
	_ = boxed
	iface := any(record{id: 3}) // want `conversion to an interface in a hot function`
	_ = iface
	//lint:ignore hotpath once-per-drain spill buffer, amortized over the whole epoch
	e.spill = make([]byte, 0, 64)
	return e.out
}
