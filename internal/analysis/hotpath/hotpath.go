// Package hotpath is the static twin of the runtime zero-allocation
// gate (core.AllocsPerPktBudget, PR 6). The packet→receipt pipeline
// holds ~17 ns/pkt only because its steady state performs no heap
// allocation; one stray fmt.Sprintf or string concatenation in a
// function reached per packet blows the budget by orders of magnitude
// and is only caught when the CI bench job runs.
//
// Functions are marked hot with a //vpm:hotpath line in their doc
// comment (the convention used on Observe/ObserveBatch/Drain across
// the collection pipeline). Hotness propagates through the
// same-package static call graph: everything an annotated function
// calls — including through interface methods declared in the package
// — is hot too. Cross-package edges are not followed; each package on
// the hot path carries its own annotations, which keeps the contract
// visible at every layer.
//
// Inside a hot function the pass flags the allocation idioms:
// fmt calls, non-constant string concatenation, closure creation,
// make/new/slice-or-map composite literals and &T{}, explicit
// conversions to interface types (boxing), and append calls whose
// result does not feed back into the appended slice (the grow-only
// recycled-buffer pattern is the one allowed form). Slow-path work
// inside a hot function — a once-per-path constructor, a once-per-
// drain sort — is suppressed with a justified //lint:ignore.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"vpm/internal/analysis"
)

// Annotation marks a function as per-packet hot.
const Annotation = "vpm:hotpath"

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "functions reachable from //vpm:hotpath annotations must not allocate: no fmt, " +
		"no string concat, no closures, no make/new/literals, append only in grow-only form",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	decls, methodsByName := index(pass)
	hot := propagate(pass, decls, methodsByName)
	for fn, fd := range decls {
		if hot[fn] && !analysis.IsTestFile(pass.Fset, fd.Pos()) {
			checkBody(pass, fd)
		}
	}
	return nil, nil
}

// index maps the package's declared functions and groups its methods
// by name (for interface-call resolution).
func index(pass *analysis.Pass) (map[*types.Func]*ast.FuncDecl, map[string][]*types.Func) {
	decls := make(map[*types.Func]*ast.FuncDecl)
	methods := make(map[string][]*types.Func)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if fd.Recv != nil {
				methods[fd.Name.Name] = append(methods[fd.Name.Name], fn)
			}
		}
	}
	return decls, methods
}

// annotated reports whether the declaration carries //vpm:hotpath.
func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), Annotation) {
			return true
		}
	}
	return false
}

// propagate seeds hotness at annotated functions and walks the
// same-package call graph to a fixed point.
func propagate(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, methodsByName map[string][]*types.Func) map[*types.Func]bool {
	hot := make(map[*types.Func]bool)
	var queue []*types.Func
	for fn, fd := range decls {
		if annotated(fd) {
			hot[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := decls[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range resolve(pass, call, decls, methodsByName) {
				if !hot[callee] {
					hot[callee] = true
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	return hot
}

// resolve returns the same-package functions a call may invoke. A call
// through an interface method declared in this package fans out to
// every same-named method the package declares — an over-approximation
// that errs on the side of the invariant.
func resolve(pass *analysis.Pass, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl, methodsByName map[string][]*types.Func) []*types.Func {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() != pass.Pkg {
		return nil
	}
	if _, declared := decls[fn]; declared {
		return []*types.Func{fn}
	}
	// Interface method: fan out by name.
	return methodsByName[fn.Name()]
}

// checkBody flags allocation idioms in one hot function.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Appends in the allowed grow-only form: x = append(x, ...).
	allowedAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if ok && isBuiltin(pass, call, "append") && len(call.Args) > 0 &&
				types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				allowedAppend[call] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Report(analysis.Diagnostic{
				Pos:     n.Pos(),
				Message: "closure created in a hot function: the captured environment allocates",
				Fix:     "hoist the closure out of the per-packet path or use a method value bound at setup time",
			})
			return true // its body is still hot; keep walking
		case *ast.BinaryExpr:
			checkStringConcat(pass, n)
		case *ast.AssignStmt:
			checkConcatAssign(pass, n)
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.UnaryExpr:
			checkAddressOfLit(pass, n)
		case *ast.CallExpr:
			checkCall(pass, n, allowedAppend)
		}
		return true
	})
}

// checkCall flags fmt, make/new, non-grow-only append, and interface
// conversions.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, allowedAppend map[*ast.CallExpr]bool) {
	if fn := analysis.Callee(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Report(analysis.Diagnostic{
			Pos:     call.Pos(),
			Message: "fmt." + fn.Name() + " in a hot function: formatting allocates on every call",
			Fix:     "render with an AppendText-style helper into a recycled buffer (see internal/intern)",
		})
		return
	}
	switch {
	case isBuiltin(pass, call, "make"):
		pass.Report(analysis.Diagnostic{
			Pos:     call.Pos(),
			Message: "make in a hot function allocates per call",
			Fix:     "allocate at setup time or recycle through a pool (see Drain/Recycle)",
		})
	case isBuiltin(pass, call, "new"):
		pass.Report(analysis.Diagnostic{
			Pos:     call.Pos(),
			Message: "new in a hot function allocates per call",
			Fix:     "allocate at setup time or recycle through a pool (see Drain/Recycle)",
		})
	case isBuiltin(pass, call, "append"):
		if !allowedAppend[call] {
			pass.Report(analysis.Diagnostic{
				Pos:     call.Pos(),
				Message: "append whose result does not feed back into its base: the grown slice escapes its recycled buffer",
				Fix:     "use the grow-only form x = append(x, ...) on a recycled slice",
			})
		}
	default:
		checkInterfaceConversion(pass, call)
	}
}

// checkInterfaceConversion flags explicit conversions T(x) where T is
// an interface and x is concrete — boxing allocates.
func checkInterfaceConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	if _, isIface := tv.Type.Underlying().(*types.Interface); !isIface {
		return
	}
	argT := pass.TypesInfo.TypeOf(call.Args[0])
	if argT == nil {
		return
	}
	if _, already := argT.Underlying().(*types.Interface); already {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos:     call.Pos(),
		Message: "conversion to an interface in a hot function: boxing the value allocates",
		Fix:     "keep the concrete type on the per-packet path",
	})
}

// checkStringConcat flags non-constant string +.
func checkStringConcat(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op.String() != "+" {
		return
	}
	tv, ok := pass.TypesInfo.Types[b]
	if !ok || tv.Value != nil { // constant-folded concatenation is free
		return
	}
	if bt, ok := tv.Type.Underlying().(*types.Basic); !ok || bt.Info()&types.IsString == 0 {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos:     b.Pos(),
		Message: "string concatenation in a hot function allocates the joined string",
		Fix:     "append bytes into a recycled buffer, or intern the rendering (internal/intern)",
	})
}

// checkConcatAssign flags s += t on strings.
func checkConcatAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if as.Tok.String() != "+=" || len(as.Lhs) != 1 {
		return
	}
	t := pass.TypesInfo.TypeOf(as.Lhs[0])
	if t == nil {
		return
	}
	if bt, ok := t.Underlying().(*types.Basic); !ok || bt.Info()&types.IsString == 0 {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos:     as.Pos(),
		Message: "string += in a hot function allocates the joined string",
		Fix:     "append bytes into a recycled buffer, or intern the rendering (internal/intern)",
	})
}

// checkCompositeLit flags slice/map literals (always heap-backed when
// non-empty).
func checkCompositeLit(pass *analysis.Pass, cl *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		pass.Report(analysis.Diagnostic{
			Pos:     cl.Pos(),
			Message: "slice/map literal in a hot function allocates per call",
			Fix:     "allocate at setup time or recycle through a pool",
		})
	}
}

// checkAddressOfLit flags &T{...} — an escaping heap allocation.
func checkAddressOfLit(pass *analysis.Pass, u *ast.UnaryExpr) {
	if u.Op.String() != "&" {
		return
	}
	if _, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
		pass.Report(analysis.Diagnostic{
			Pos:     u.Pos(),
			Message: "&composite-literal in a hot function heap-allocates per call",
			Fix:     "allocate at setup time or recycle through a pool",
		})
	}
}

// isBuiltin matches a builtin call by name.
func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isB
}
