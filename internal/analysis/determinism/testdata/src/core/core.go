// Package core is a determinism fixture: it reuses the scoped package
// name so the analyzer treats it as replay-deterministic code.
package core

import (
	"bytes"
	"math/rand"
	"sort"
	"time"
)

// BadAppend leaks map order into a slice that is never sorted.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appending to out inside a map range leaks map iteration order`
	}
	return out
}

// GoodAppendSorted collects then sorts — the blessed idiom.
func GoodAppendSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// GoodAppendHelperSort clears the candidate through a helper whose
// name marks it as a sorter (the repository's sortReceipts pattern).
func GoodAppendHelperSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(s []string) { sort.Strings(s) }

// BadEncode writes during iteration — order already escaped.
func BadEncode(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want `WriteString called inside a map range: output records map iteration order`
	}
}

// BadSend exposes iteration order to a channel receiver.
func BadSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside a map range: receivers observe map iteration order`
	}
}

// GoodLoopLocal appends to a slice declared inside the loop body;
// per-iteration state carries no cross-key order.
func GoodLoopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// GoodMapCopy writes through a map key while ranging — keyed writes
// are order-independent, so the deep-copy idiom is allowed.
func GoodMapCopy(m map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(m))
	for k, v := range m {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// GoodSliceRange ranges a slice, not a map.
func GoodSliceRange(s []string, buf *bytes.Buffer) {
	for _, v := range s {
		buf.WriteString(v)
	}
}

// BadClock reads the wall clock in replay-deterministic code.
func BadClock() int64 {
	return time.Now().UnixNano() // want `time.Now in a replay-deterministic package`
}

// BadGlobalRand draws from the process-global RNG.
func BadGlobalRand() int {
	return rand.Intn(10) // want `global math/rand.Intn in a replay-deterministic package`
}

// GoodSeededRand threads a caller-seeded source.
func GoodSeededRand(r *rand.Rand) int {
	return r.Intn(10)
}

// GoodNewRand constructs a seeded source — the fix, not the bug.
func GoodNewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SuppressedClock demonstrates a justified suppression: boot-time
// logging is outside the replayed computation.
func SuppressedClock() int64 {
	//lint:ignore determinism boot-time log stamp, outside the replayed computation
	return time.Now().UnixNano()
}
