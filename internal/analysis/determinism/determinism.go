// Package determinism guards the repository's replay-determinism
// invariant: every verdict, receipt encoding and layout computation
// must be a pure function of the evidence, byte-identical at any
// shard/worker count and across crash-recovery re-execution. The two
// bug classes that have violated it in past PRs are (a) Go map
// iteration order leaking into an output sequence (PR 5's
// TreeTopology link numbering) and (b) wall-clock or global-RNG reads
// inside code that re-runs during recovery.
//
// The pass applies only to the deterministic packages (core, receipt,
// dissem, seqdetect, segstore) and skips test files. It flags:
//
//   - ranging over a map while appending to a slice declared outside
//     the loop, unless the slice later reaches a sort call in the same
//     function (the collect-then-sort idiom);
//   - ranging over a map while writing to a writer, feeding an
//     encoder, formatting output, or sending on a channel — order has
//     already escaped, no later sort can fix it;
//   - time.Now/Since/Until — replayed runs must take timestamps from
//     the observation stream or epoch clock;
//   - the global math/rand functions — randomness must come from a
//     seeded *rand.Rand threaded through the computation.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vpm/internal/analysis"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "verdict/encode/layout packages must not leak map iteration order into output " +
		"and must not read wall clocks or global RNGs",
	Run: run,
}

// scoped names the replay-deterministic packages. Fixture packages in
// testdata reuse these names, which is how the analysistest suite
// exercises the pass.
var scoped = map[string]bool{
	"core":      true,
	"receipt":   true,
	"dissem":    true,
	"seqdetect": true,
	"segstore":  true,
}

// orderSinks are method names that emit or accumulate data in call
// order: reaching one from inside a map range means iteration order
// escaped into an output stream.
var orderSinks = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "EncodeBlock": true, "AppendEncode": true, "AppendBinary": true,
	"MarshalBinary": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !scoped[pass.Pkg.Name()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
				return true
			case *ast.CallExpr:
				checkClock(pass, n)
				checkGlobalRand(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkFunc examines one function body for map-range order leaks.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Sort events anywhere in the function, in position order: a call
	// whose name contains "sort" and the root objects it touches.
	type sortEvent struct {
		pos  token.Pos
		objs map[types.Object]bool
	}
	var sorts []sortEvent
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !strings.Contains(strings.ToLower(qualifiedCalleeName(call)), "sort") {
			return true
		}
		ev := sortEvent{pos: call.Pos(), objs: make(map[types.Object]bool)}
		for _, arg := range call.Args {
			if id := analysis.RootIdent(arg); id != nil {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					ev.objs[obj] = true
				}
			}
		}
		sorts = append(sorts, ev)
		return true
	})

	sortedAfter := func(obj types.Object, after token.Pos) bool {
		for _, ev := range sorts {
			if ev.pos > after && ev.objs[obj] {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, rng, sortedAfter)
		return true
	})
}

// checkMapRangeBody flags order leaks inside one map-range loop.
func checkMapRangeBody(pass *analysis.Pass, rng *ast.RangeStmt, sortedAfter func(types.Object, token.Pos) bool) {
	declaredInside := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is checked on its own visit; avoid
			// double-reporting its body.
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false
				}
			}
		case *ast.SendStmt:
			pass.Report(analysis.Diagnostic{
				Pos:     n.Pos(),
				Message: "channel send inside a map range: receivers observe map iteration order",
				Fix:     "collect into a slice, sort, then send",
			})
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				// A keyed map write (out[k] = append(...)) is
				// order-independent: the result is the same map
				// whatever order the keys arrive in.
				if ix, ok := ast.Unparen(n.Lhs[i]).(*ast.IndexExpr); ok {
					if bt := pass.TypesInfo.TypeOf(ix.X); bt != nil {
						if _, isMap := bt.Underlying().(*types.Map); isMap {
							continue
						}
					}
				}
				id := analysis.RootIdent(n.Lhs[i])
				if id == nil {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil || declaredInside(obj) {
					continue
				}
				if !sortedAfter(obj, rng.End()) {
					pass.Report(analysis.Diagnostic{
						Pos:     n.Pos(),
						Message: "appending to " + id.Name + " inside a map range leaks map iteration order",
						Fix:     "sort " + id.Name + " after the loop (or iterate sorted keys)",
					})
				}
			}
		case *ast.CallExpr:
			name := calleeName(n)
			if orderSinks[name] {
				pass.Report(analysis.Diagnostic{
					Pos:     n.Pos(),
					Message: name + " called inside a map range: output records map iteration order",
					Fix:     "iterate sorted keys, or collect and sort before emitting",
				})
			}
		}
		return true
	})
}

// checkClock flags wall-clock reads.
func checkClock(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		pass.Report(analysis.Diagnostic{
			Pos:     call.Pos(),
			Message: "time." + fn.Name() + " in a replay-deterministic package: recovery re-execution would diverge",
			Fix:     "take timestamps from the observation stream or the epoch clock",
		})
	}
}

// checkGlobalRand flags the process-global math/rand functions.
func checkGlobalRand(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return
	}
	if fn.Signature().Recv() != nil {
		return // a method on a caller-owned *rand.Rand is seeded state
	}
	if strings.HasPrefix(fn.Name(), "New") {
		return // constructing a seeded source is the fix, not the bug
	}
	pass.Report(analysis.Diagnostic{
		Pos:     call.Pos(),
		Message: "global math/rand." + fn.Name() + " in a replay-deterministic package: unseeded state diverges across runs",
		Fix:     "thread a seeded *rand.Rand through the computation",
	})
}

// qualifiedCalleeName renders the callee including any qualifier
// ("sort.Strings", "slices.SortFunc", "sortReceipts"), so the
// contains-"sort" test sees both package-qualified and helper names.
func qualifiedCalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return ""
}

// calleeName extracts the syntactic callee name (method or function).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isBuiltinAppend matches the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}
