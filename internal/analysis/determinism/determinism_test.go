package determinism_test

import (
	"testing"

	"vpm/internal/analysis/analysistest"
	"vpm/internal/analysis/determinism"
)

// TestDeterminism drives the pass over the fixture package: unsorted
// map-range appends, in-loop writes/sends, wall clocks and global RNG
// must be flagged; the collect-then-sort idiom, loop-local state,
// seeded sources and justified suppressions must not.
func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "core")
}
