package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// IsTestFile reports whether pos lies in a _test.go file. The
// determinism/hotpath/fsyncdiscipline passes guard production
// invariants and skip test code; errwrap runs everywhere (the sentinel
// comparisons that motivated it lived in tests).
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Callee resolves the *types.Func a call invokes, or nil for builtins,
// conversions and indirect calls through function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call (pkg.Fn): no Selection entry.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CalleePkgPath returns the import path of the package the call's
// target function belongs to ("" when unresolvable or a builtin).
func CalleePkgPath(info *types.Info, call *ast.CallExpr) string {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// IsPackageLevel reports whether obj is declared at some package's
// top-level scope.
func IsPackageLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// ErrorType is the universe error interface.
var ErrorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// ImplementsError reports whether t satisfies the error interface.
func ImplementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, ErrorType) || types.Implements(types.NewPointer(t), ErrorType)
}

// RootIdent digs the base identifier out of an lvalue-ish expression
// (x, x.f, x[i], *x ...), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return nil
		}
	}
}
