// Package stats provides deterministic random number generation and the
// small statistical toolkit (quantiles, summaries, binomial confidence
// bounds) shared by the VPM simulator, the workload generators and the
// experiment harnesses.
//
// Everything in this package is deterministic given a seed: experiments
// and tests never depend on wall-clock entropy, so every table and
// figure in EXPERIMENTS.md is exactly reproducible.
package stats

import "math"

// RNG is a small, fast, seedable pseudo-random generator based on the
// SplitMix64 stream (Steele et al.), sufficient for workload generation
// and loss/delay processes. It is NOT cryptographically secure and is
// not safe for concurrent use; give each goroutine its own RNG.
//
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
	// spare holds a cached second normal variate from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new RNG whose stream is independent of (but
// deterministically derived from) the receiver's current state. Use it
// to hand child components their own generators without correlating
// their streams.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, debiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1)
// using the Box-Muller transform with caching of the paired variate.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
// Scale by 1/lambda for rate lambda.
func (r *RNG) ExpFloat64() float64 {
	// Inverse transform; guard against log(0).
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Pareto returns a Pareto(alpha, xm) variate: heavy-tailed with shape
// alpha and minimum xm. Used for flow-size generation (heavy-tailed
// Internet flow sizes).
func (r *RNG) Pareto(alpha, xm float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
