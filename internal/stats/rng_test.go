package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first outputs")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	s := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	mean := s / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(9)
	const n = 10
	const trials = 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %v", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	s := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		s += v
	}
	if mean := s / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(1.2, 3.0); v < 3.0 {
			t.Fatalf("Pareto variate %v below xm", v)
		}
	}
}

func TestBool(t *testing.T) {
	r := NewRNG(23)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			n++
		}
	}
	if p := float64(n) / trials; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(29)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(31)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
