package stats

import "math"

// This file implements exact binomial tail probabilities (via the
// log-gamma function from the standard library) and the order-statistic
// confidence bounds for quantiles used by the delay-quantile estimator
// (paper reference [20], Sommers et al., "Accurate and Efficient SLA
// Compliance Monitoring"). Given n i.i.d. samples of a distribution,
// the true q-quantile lies between the lo-th and hi-th order statistics
// with a confidence computable from the Binomial(n, q) distribution; no
// assumption about the delay distribution is needed.

// LogBinomCoeff returns log(C(n, k)) computed with Lgamma.
func LogBinomCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}

// BinomPMF returns P[X = k] for X ~ Binomial(n, p).
func BinomPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogBinomCoeff(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lp)
}

// BinomCDF returns P[X <= k] for X ~ Binomial(n, p), by direct
// summation of the PMF. n in this codebase is at most a few tens of
// thousands (sample counts), for which this is fast and accurate.
func BinomCDF(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	// Sum the smaller tail for numerical behaviour.
	if float64(k) <= float64(n)*p {
		s := 0.0
		for i := 0; i <= k; i++ {
			s += BinomPMF(n, i, p)
		}
		if s > 1 {
			s = 1
		}
		return s
	}
	s := 0.0
	for i := k + 1; i <= n; i++ {
		s += BinomPMF(n, i, p)
	}
	c := 1 - s
	if c < 0 {
		c = 0
	}
	return c
}

// QuantileOrderBounds returns 1-based order-statistic indices (lo, hi)
// such that, for n i.i.d. samples, the true q-quantile lies in
// [x_(lo), x_(hi)] with probability at least conf. It returns
// ok == false when n is too small for the requested confidence (the
// caller should then fall back to the sample min/max).
//
// The bounds come from P[x_(lo) <= Q_q <= x_(hi)] =
// BinomCDF(n, hi-1, q) - BinomCDF(n, lo-1, q): the number of samples
// below the true quantile is Binomial(n, q).
func QuantileOrderBounds(n int, q, conf float64) (lo, hi int, ok bool) {
	if n <= 0 {
		return 0, 0, false
	}
	// Start from the central order statistic and widen symmetrically
	// (in probability mass) until the coverage reaches conf.
	center := int(math.Round(q * float64(n)))
	if center < 1 {
		center = 1
	}
	if center > n {
		center = n
	}
	lo, hi = center, center
	cover := func(lo, hi int) float64 {
		return BinomCDF(n, hi-1, q) - BinomCDF(n, lo-1, q)
	}
	for cover(lo, hi) < conf {
		grew := false
		if lo > 1 {
			lo--
			grew = true
		}
		if hi < n {
			hi++
			grew = true
		}
		if !grew {
			return 1, n, false
		}
	}
	return lo, hi, true
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion: k successes out of n at confidence conf (e.g. 0.95).
// Used for loss-rate estimates derived from sampled packets.
func WilsonInterval(k, n int, conf float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	z := NormalQuantile(0.5 + conf/2)
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// NormalQuantile returns the p-quantile of the standard normal
// distribution using the Acklam rational approximation (relative error
// below 1.15e-9 over the full range).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	const phigh = 1 - plow
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
