package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7 estimator, the R and
// NumPy default). It copies and sorts xs; use QuantileSorted when the
// input is already sorted. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	return QuantileSorted(c, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the values of xs at each of the given quantiles.
// xs is copied and sorted once.
func Quantiles(xs []float64, qs ...float64) []float64 {
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = QuantileSorted(c, q)
	}
	return out
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, StdDev       float64
	Min, Max           float64
	P50, P90, P99      float64
	P999               float64 // 99.9th percentile
	Sum                float64
	SampleQuantileBase []float64 // sorted copy, retained for further quantile queries
}

// Summarize computes a Summary of xs. For an empty input it returns the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	s := Summary{
		N:                  len(c),
		Min:                c[0],
		Max:                c[len(c)-1],
		P50:                QuantileSorted(c, 0.50),
		P90:                QuantileSorted(c, 0.90),
		P99:                QuantileSorted(c, 0.99),
		P999:               QuantileSorted(c, 0.999),
		SampleQuantileBase: c,
	}
	for _, x := range c {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	s.StdDev = StdDev(c)
	return s
}

// String renders the summary on one line, suitable for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Histogram is a fixed-width-bucket histogram over [Lo, Hi). Values
// outside the range are clamped into the first/last bucket.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	Count   int
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.Count++
}

// BucketMid returns the midpoint value of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + w*(float64(i)+0.5)
}

// Quantile returns an approximate q-quantile from the histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return h.Lo
	}
	target := q * float64(h.Count)
	cum := 0.0
	for i, c := range h.Buckets {
		cum += float64(c)
		if cum >= target {
			return h.BucketMid(i)
		}
	}
	return h.Hi
}
