package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almost(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	if sd := StdDev(xs); !almost(sd, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of singleton != 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestQuantileExtremes(t *testing.T) {
	xs := []float64{5, 1, 3}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if q := Quantile(xs, 0.25); !almost(q, 2.5, 1e-12) {
		t.Errorf("q.25 = %v, want 2.5", q)
	}
}

func TestQuantileMonotone(t *testing.T) {
	r := NewRNG(1)
	f := func(seed uint32) bool {
		rr := NewRNG(uint64(seed))
		n := rr.Intn(200) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesMatchQuantile(t *testing.T) {
	xs := []float64{9, 2, 7, 4, 4, 1}
	qs := Quantiles(xs, 0.1, 0.5, 0.9)
	for i, q := range []float64{0.1, 0.5, 0.9} {
		if qs[i] != Quantile(xs, q) {
			t.Errorf("Quantiles[%d] mismatch", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 1000 || s.Min != 0 || s.Max != 999 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almost(s.Mean, 499.5, 1e-9) {
		t.Errorf("mean = %v", s.Mean)
	}
	if !almost(s.P50, 499.5, 1e-9) {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("non-zero N for empty input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	for i, c := range h.Buckets {
		if c != 10 {
			t.Errorf("bucket %d = %d, want 10", i, c)
		}
	}
	// Clamping.
	h.Add(-5)
	h.Add(50)
	if h.Buckets[0] != 11 || h.Buckets[9] != 11 {
		t.Error("clamping failed")
	}
	if q := h.Quantile(0.5); q < 4 || q > 6 {
		t.Errorf("histogram median = %v", q)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(1,0,5) did not panic")
		}
	}()
	NewHistogram(1, 0, 5)
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 50, 500} {
		for _, p := range []float64{0.01, 0.3, 0.5, 0.97} {
			s := 0.0
			for k := 0; k <= n; k++ {
				s += BinomPMF(n, k, p)
			}
			if !almost(s, 1, 1e-9) {
				t.Errorf("PMF(n=%d,p=%v) sums to %v", n, p, s)
			}
		}
	}
}

func TestBinomPMFKnown(t *testing.T) {
	// Binomial(4, 0.5): P[X=2] = 6/16.
	if p := BinomPMF(4, 2, 0.5); !almost(p, 0.375, 1e-12) {
		t.Errorf("PMF = %v, want 0.375", p)
	}
	if BinomPMF(4, -1, 0.5) != 0 || BinomPMF(4, 5, 0.5) != 0 {
		t.Error("out-of-support PMF not zero")
	}
	if BinomPMF(4, 0, 0) != 1 || BinomPMF(4, 4, 1) != 1 {
		t.Error("degenerate p PMF wrong")
	}
}

func TestBinomCDFProperties(t *testing.T) {
	n, p := 30, 0.2
	prev := 0.0
	for k := 0; k <= n; k++ {
		c := BinomCDF(n, k, p)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at k=%d", k)
		}
		prev = c
	}
	if !almost(BinomCDF(n, n, p), 1, 1e-12) {
		t.Error("CDF(n) != 1")
	}
	if BinomCDF(n, -1, p) != 0 {
		t.Error("CDF(-1) != 0")
	}
	// Cross-check against direct sum.
	s := 0.0
	for k := 0; k <= 7; k++ {
		s += BinomPMF(n, k, p)
	}
	if c := BinomCDF(n, 7, p); !almost(c, s, 1e-9) {
		t.Errorf("CDF(7) = %v, direct sum %v", c, s)
	}
}

func TestQuantileOrderBoundsCoverage(t *testing.T) {
	// Empirically verify coverage: for n samples of U(0,1), the true
	// q-quantile (=q) should fall within [x_(lo), x_(hi)] at least
	// conf of the time (allowing simulation noise).
	r := NewRNG(77)
	const n = 200
	const q = 0.9
	const conf = 0.95
	lo, hi, ok := QuantileOrderBounds(n, q, conf)
	if !ok {
		t.Fatal("bounds not found")
	}
	if lo < 1 || hi > n || lo > hi {
		t.Fatalf("bad bounds lo=%d hi=%d", lo, hi)
	}
	const trials = 2000
	covered := 0
	xs := make([]float64, n)
	for tr := 0; tr < trials; tr++ {
		for i := range xs {
			xs[i] = r.Float64()
		}
		sort.Float64s(xs)
		if xs[lo-1] <= q && q <= xs[hi-1] {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < conf-0.03 {
		t.Errorf("coverage %v below nominal %v", rate, conf)
	}
}

func TestQuantileOrderBoundsSmallN(t *testing.T) {
	// With 2 samples you cannot get 99.9% coverage of the median.
	lo, hi, ok := QuantileOrderBounds(2, 0.5, 0.999)
	if ok {
		t.Fatalf("expected failure, got [%d,%d]", lo, hi)
	}
	if _, _, ok := QuantileOrderBounds(0, 0.5, 0.9); ok {
		t.Error("n=0 should not be ok")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100, 0.95)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%v,%v] should contain 0.5", lo, hi)
	}
	if lo < 0.38 || hi > 0.62 {
		t.Errorf("interval [%v,%v] suspiciously wide", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0, 0.95)
	if lo != 0 || hi != 1 {
		t.Error("empty-sample interval should be [0,1]")
	}
	lo, _ = WilsonInterval(0, 10, 0.95)
	if lo != 0 {
		t.Error("zero successes should give lo=0")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.841344746, 1.0},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almost(got, c.want, 1e-4) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("extreme quantiles should be infinite")
	}
}

func TestLogBinomCoeff(t *testing.T) {
	if got := math.Exp(LogBinomCoeff(10, 3)); !almost(got, 120, 1e-6) {
		t.Errorf("C(10,3) = %v, want 120", got)
	}
	if !math.IsInf(LogBinomCoeff(5, 9), -1) {
		t.Error("out-of-range coefficient should be -Inf")
	}
}
