package fleet

// BenchRow is one verifier-tier width's result in the fleet scale-out
// sweep — the keys/s-vs-processes curve point that vpm-fleet run -json
// emits and BENCH_fleet.json records. Fingerprint is the sha256-based
// digest of the merged verdict stream (Fingerprint); equal fingerprints
// across widths is the byte-identity acceptance gate.
type BenchRow struct {
	Procs       int     `json:"procs"`
	Domains     int     `json:"domains"`
	Keys        int     `json:"keys"`
	Packets     int64   `json:"packets"`
	Epochs      int     `json:"epochs"`
	WallMS      float64 `json:"wall_ms"`
	KeysPerSec  float64 `json:"keys_per_sec"`
	Fingerprint string  `json:"fingerprint"`
}
