package fleet

import (
	"vpm/internal/core"
	"vpm/internal/netsim"
)

// RunReference runs the whole world in-process — one simulation, one
// windowed store, one rolling verifier over every key — and returns
// the complete epoch report stream. This is the ground truth the fleet
// must reproduce: for any shard count, merging the shards' reports
// epoch by epoch yields encodings byte-identical to these (the
// acceptance bar, asserted by tests and the bench gate).
//
// Like a collector run, this consumes w's per-HOP collector state:
// build a fresh World for each reference run.
func RunReference(w *World, chunkSlots int64) ([]core.EpochReport, error) {
	if chunkSlots <= 0 {
		chunkSlots = 1 << 18
	}
	win, err := core.NewWindowedStore(w.HOPs, 3)
	if err != nil {
		return nil, err
	}
	rolling := core.NewRollingVerifier(core.Layout{}, w.VerifierConfig(), win, nil, 0.95)
	rolling.SetKeyLayouts(w.Dep.KeyLayouts())
	driver, err := core.NewEpochDriver(w.Dep, w.Spec.IntervalNS, win.Sink())
	if err != nil {
		return nil, err
	}
	runner, err := netsim.NewTopoRunner(w.Topo, w.Table)
	if err != nil {
		return nil, err
	}
	observers := driver.Observers()
	var reports []core.EpochReport
	total := w.Spec.TotalSlots()
	for lo := int64(0); lo < total; lo += chunkSlots {
		hi := lo + chunkSlots
		horizon := int64(1) << 62
		if hi < total {
			horizon = w.Spec.slotTime(hi)
		} else {
			hi = total
		}
		pkts := w.Spec.PacketsForSlots(w.Keys, lo, hi)
		if _, err := runner.RunSegment(pkts, observers, horizon); err != nil {
			return nil, err
		}
		reps, err := rolling.VerifyReady()
		if err != nil {
			return nil, err
		}
		reports = append(reports, reps...)
		win.Evict()
	}
	// The same spec-derived terminal the fleet's collectors close at:
	// the reference must seal the identical epoch range or the final
	// empty epochs' reports would differ.
	driver.CloseAt(w.Terminal)
	win.FinishStream()
	reps, err := rolling.VerifyReady()
	if err != nil {
		return nil, err
	}
	reports = append(reports, reps...)
	return reports, nil
}
