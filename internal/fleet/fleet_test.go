package fleet

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vpm/internal/core"
	"vpm/internal/dissem"
	"vpm/internal/netsim"
)

// testSpec is small enough to simulate once per collector per shard
// count, large enough that every epoch carries receipts for most keys.
func testSpec() Spec {
	return Spec{
		Seed:       42,
		Domains:    8,
		ExtraLinks: 6,
		Keys:       64,
		Epochs:     3,
		IntervalNS: 50_000_000, // 50ms epochs
		RatePPS:    60_000,     // ~3000 packets per epoch
		Collectors: 2,
		Workers:    2,
	}
}

func TestSpecRoundTrip(t *testing.T) {
	s := testSpec()
	got, err := ParseSpec(s.Encode())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if got != s {
		t.Fatalf("round trip changed the spec: %+v vs %+v", got, s)
	}
	bad := s
	bad.Collectors = 0
	if _, err := ParseSpec(bad.Encode()); err == nil {
		t.Fatal("zero-collector spec validated")
	}
	if _, err := ParseSpec("{"); err == nil {
		t.Fatal("malformed spec parsed")
	}
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("zero-shard ring built")
	}
	r1, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(4)
	keys := netsim.WideKeys(10_000)
	counts := make([]int, 4)
	for _, k := range keys {
		s := r1.OwnerKey(k)
		if s2 := r2.OwnerKey(k); s2 != s {
			t.Fatalf("two rings disagree on %v: %d vs %d", k, s, s2)
		}
		counts[s]++
	}
	// Consistent hashing with 64 vnodes is not perfectly even, but no
	// shard should be starved or hold a majority.
	for s, c := range counts {
		if c < len(keys)/10 || c > len(keys)*4/10 {
			t.Fatalf("shard %d owns %d of %d keys — ring badly unbalanced (%v)", s, c, len(keys), counts)
		}
	}
	// One shard owns everything.
	one, _ := NewRing(1)
	for _, k := range keys[:100] {
		if one.OwnerKey(k) != 0 {
			t.Fatal("1-shard ring routed a key off shard 0")
		}
	}
}

func TestWorldSplitsHOPsAcrossCollectors(t *testing.T) {
	w, err := testSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]int)
	for ci := 0; ci < w.Spec.Collectors; ci++ {
		for _, h := range w.OwnedHOPs(ci) {
			if prev, dup := seen[uint32(h)]; dup {
				t.Fatalf("HOP %v owned by collectors %d and %d", h, prev, ci)
			}
			seen[uint32(h)] = ci
		}
	}
	if len(seen) != len(w.HOPs) {
		t.Fatalf("collectors own %d HOPs, world has %d", len(seen), len(w.HOPs))
	}
	if w.Terminal < core.EpochID(w.Spec.Epochs-1) {
		t.Fatalf("terminal epoch %d before the last traffic epoch %d", w.Terminal, w.Spec.Epochs-1)
	}
}

// startCollectors runs every collector process in-process: each drives
// its slice of the world and serves its bundles from an httptest
// server. Each collector builds its own World from the spec, exactly
// like a real process would — a World's per-HOP collector state is
// single-use. Returns the base URLs and a wait function.
func startCollectors(t *testing.T, spec Spec) ([]string, func()) {
	t.Helper()
	urls := make([]string, spec.Collectors)
	var wg sync.WaitGroup
	errs := make([]error, spec.Collectors)
	for ci := 0; ci < spec.Collectors; ci++ {
		cw, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCollector(cw, ci)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(c.Handler())
		t.Cleanup(hs.Close)
		urls[ci] = hs.URL
		wg.Add(1)
		go func(ci int, c *Collector) {
			defer wg.Done()
			errs[ci] = c.Run(context.Background(), CollectorOptions{})
		}(ci, c)
	}
	return urls, func() {
		wg.Wait()
		for ci, err := range errs {
			if err != nil {
				t.Fatalf("collector %d: %v", ci, err)
			}
		}
	}
}

// TestFleetMatchesReferenceAtEveryShardCount is the tentpole
// acceptance test in miniature: the same world, collected by 2
// processes and verified by {1, 2, 4} shards, must merge into verdict
// bytes identical to the single-process reference at every width.
func TestFleetMatchesReferenceAtEveryShardCount(t *testing.T) {
	w, err := testSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	refReports, err := RunReference(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(refReports) != int(w.Terminal)+1 {
		t.Fatalf("reference produced %d reports, want %d (epochs 0..%d)", len(refReports), int(w.Terminal)+1, w.Terminal)
	}
	ref, err := EncodeReports(refReports)
	if err != nil {
		t.Fatal(err)
	}
	refFP := Fingerprint(ref)
	sawTraffic := false
	for _, r := range ref {
		if bytes.Contains(r, []byte(`"Keys"`)) {
			sawTraffic = true
		}
	}
	if !sawTraffic {
		t.Fatal("reference verdicts carry no per-key reports — the fixture is too small to prove anything")
	}

	for _, shards := range []int{1, 2, 4} {
		urls, wait := startCollectors(t, w.Spec)
		parts := make([]*ShardOutput, shards)
		verrs := make([]error, shards)
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			v, err := NewVerifier(w, shards, s, VerifierOptions{})
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(s int, v *Verifier) {
				defer wg.Done()
				reports, err := v.Run(context.Background(), urls, VerifierOptions{Poll: 5 * time.Millisecond})
				if err != nil {
					verrs[s] = err
					return
				}
				parts[s], verrs[s] = NewShardOutput(shards, s, reports)
			}(s, v)
		}
		wg.Wait()
		wait()
		for s, err := range verrs {
			if err != nil {
				t.Fatalf("shards=%d: verifier %d: %v", shards, s, err)
			}
		}
		merged, err := MergeShardOutputs(parts)
		if err != nil {
			t.Fatalf("shards=%d: merge: %v", shards, err)
		}
		if len(merged) != len(ref) {
			t.Fatalf("shards=%d: merged %d epochs, reference has %d", shards, len(merged), len(ref))
		}
		for e := range merged {
			if !bytes.Equal(merged[e], ref[e]) {
				t.Fatalf("shards=%d: epoch %d verdict diverges from reference:\n got %s\nwant %s",
					shards, e, merged[e], ref[e])
			}
		}
		if fp := Fingerprint(merged); fp != refFP {
			t.Fatalf("shards=%d: fingerprint %s, want %s", shards, fp, refFP)
		}
	}
}

// TestVerifierRestartIsReplay: a verifier that ran, was discarded, and
// re-ran from scratch against retained collector feeds produces
// byte-identical output — crash recovery needs no state.
func TestVerifierRestartIsReplay(t *testing.T) {
	w, err := testSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	urls, wait := startCollectors(t, w.Spec)
	run := func() *ShardOutput {
		v, err := NewVerifier(w, 2, 0, VerifierOptions{})
		if err != nil {
			t.Fatal(err)
		}
		reports, err := v.Run(context.Background(), urls, VerifierOptions{Poll: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		out, err := NewShardOutput(2, 0, reports)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := run()
	wait() // collectors done: the second run replays a complete feed
	second := run()
	if len(first.Reports) != len(second.Reports) {
		t.Fatalf("restart changed epoch count: %d vs %d", len(first.Reports), len(second.Reports))
	}
	for e := range first.Reports {
		if !bytes.Equal(first.Reports[e], second.Reports[e]) {
			t.Fatalf("restart changed epoch %d verdict", e)
		}
	}
}

func TestMergeShardOutputsRefusesBadTiers(t *testing.T) {
	mk := func(shards, shard int, n int) *ShardOutput {
		out, err := NewShardOutput(shards, shard, make([]core.EpochReport, n))
		if err != nil {
			t.Fatal(err)
		}
		// Give each report its epoch so the core merge accepts them.
		for e := 0; e < n; e++ {
			b, _ := core.EncodeEpochReport(core.EpochReport{Epoch: core.EpochID(e)})
			out.Reports[e] = b
		}
		return out
	}
	if _, err := MergeShardOutputs(nil); err == nil {
		t.Fatal("merged zero parts")
	}
	if _, err := MergeShardOutputs([]*ShardOutput{mk(2, 0, 3)}); err == nil {
		t.Fatal("merged an incomplete tier")
	}
	if _, err := MergeShardOutputs([]*ShardOutput{mk(2, 0, 3), mk(3, 1, 3)}); err == nil {
		t.Fatal("merged mixed tiers")
	}
	if _, err := MergeShardOutputs([]*ShardOutput{mk(2, 0, 3), mk(2, 0, 3)}); err == nil {
		t.Fatal("merged duplicate shard indexes")
	}
	if _, err := MergeShardOutputs([]*ShardOutput{mk(2, 0, 3), mk(2, 1, 2)}); err == nil {
		t.Fatal("merged mismatched epoch ranges")
	}
	good, err := MergeShardOutputs([]*ShardOutput{mk(2, 0, 3), mk(2, 1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(good) != 3 {
		t.Fatalf("merged %d epochs, want 3", len(good))
	}
}

func TestFilterBundlePreservesIdentity(t *testing.T) {
	w, err := testSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(w, 4, 2, VerifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := &dissem.Bundle{Origin: 9, Seq: 3, Epoch: 7}
	fb := v.filterBundle(b)
	if fb.Origin != 9 || fb.Seq != 3 || fb.Epoch != 7 {
		t.Fatalf("filter changed bundle identity: %+v", fb)
	}
	if len(fb.Samples) != 0 || len(fb.Aggs) != 0 {
		t.Fatal("empty bundle grew receipts")
	}
}
