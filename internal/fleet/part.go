package fleet

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"vpm/internal/core"
)

// Shard part files: how a verifier process hands its partial verdicts
// to the merge step. Reports are stored as the canonical
// core.EncodeEpochReport bytes (json.RawMessage), not re-marshaled
// structs, so the byte-identity guarantee survives the process
// boundary; the merge decodes, recombines, and re-encodes — and Go's
// shortest-round-trip float encoding makes decode→encode of canonical
// bytes exact, so merging N=1 parts reproduces the input bytes.

// ShardOutput is one verifier process's complete output.
type ShardOutput struct {
	// Shard / Shards locate this part in the tier; the merge refuses
	// mixed tiers.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Reports holds one canonical epoch-report encoding per epoch, in
	// ascending epoch order — all epochs 0..Terminal, including ones
	// where this shard owned no traffic.
	Reports []json.RawMessage `json:"reports"`
}

// NewShardOutput encodes a verifier's reports canonically.
func NewShardOutput(shards, shard int, reports []core.EpochReport) (*ShardOutput, error) {
	out := &ShardOutput{Shard: shard, Shards: shards, Reports: make([]json.RawMessage, 0, len(reports))}
	for i := range reports {
		b, err := core.EncodeEpochReport(reports[i])
		if err != nil {
			return nil, err
		}
		out.Reports = append(out.Reports, json.RawMessage(b))
	}
	return out, nil
}

// WriteFile persists the part atomically (temp file + rename), so a
// supervisor never reads a torn part from a crashed verifier.
func (o *ShardOutput) WriteFile(path string) error {
	data, err := json.Marshal(o)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".part-*")
	if err != nil {
		return err
	}
	//lint:ignore fsyncdiscipline part files are re-derivable fleet outputs, not the durability-bearing segment store — a torn write is re-run, not recovered
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadShardFile loads one part.
func ReadShardFile(path string) (*ShardOutput, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var o ShardOutput
	if err := json.Unmarshal(data, &o); err != nil {
		return nil, fmt.Errorf("fleet: part %s: %w", path, err)
	}
	return &o, nil
}

// MergeShardOutputs recombines a full tier's parts into the union
// verdict stream: one canonical epoch-report encoding per epoch,
// ascending. All parts must come from the same tier width and cover
// the same epoch range.
func MergeShardOutputs(parts []*ShardOutput) ([]json.RawMessage, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("fleet: no shard outputs to merge")
	}
	shards := parts[0].Shards
	if len(parts) != shards {
		return nil, fmt.Errorf("fleet: got %d parts for a %d-shard tier", len(parts), shards)
	}
	seen := make([]bool, shards)
	for _, p := range parts {
		if p.Shards != shards {
			return nil, fmt.Errorf("fleet: mixed tiers: part from %d-shard tier, want %d", p.Shards, shards)
		}
		if p.Shard < 0 || p.Shard >= shards || seen[p.Shard] {
			return nil, fmt.Errorf("fleet: bad or duplicate shard index %d", p.Shard)
		}
		seen[p.Shard] = true
		if len(p.Reports) != len(parts[0].Reports) {
			return nil, fmt.Errorf("fleet: shard %d covers %d epochs, shard %d covers %d",
				p.Shard, len(p.Reports), parts[0].Shard, len(parts[0].Reports))
		}
	}
	out := make([]json.RawMessage, 0, len(parts[0].Reports))
	for e := range parts[0].Reports {
		eparts := make([]core.EpochReport, 0, shards)
		for _, p := range parts {
			rep, err := core.DecodeEpochReport(p.Reports[e])
			if err != nil {
				return nil, fmt.Errorf("fleet: shard %d epoch index %d: %w", p.Shard, e, err)
			}
			eparts = append(eparts, rep)
		}
		merged, err := core.MergeEpochReports(eparts)
		if err != nil {
			return nil, err
		}
		enc, err := core.EncodeEpochReport(merged)
		if err != nil {
			return nil, err
		}
		out = append(out, json.RawMessage(enc))
	}
	return out, nil
}

// Fingerprint digests a verdict stream: sha256 over the newline-joined
// canonical report encodings, first 8 bytes hex — the same convention
// the topology experiments use. Equal fingerprints at different shard
// counts are the acceptance criterion.
func Fingerprint(reports []json.RawMessage) string {
	h := sha256.New()
	for _, r := range reports {
		h.Write(r)
		h.Write([]byte("\n"))
	}
	sum := h.Sum(nil)
	return fmt.Sprintf("%x", sum[:8])
}

// EncodeReports renders in-process reports canonically — the
// single-process path to a fingerprintable stream.
func EncodeReports(reports []core.EpochReport) ([]json.RawMessage, error) {
	o, err := NewShardOutput(1, 0, reports)
	if err != nil {
		return nil, err
	}
	return o.Reports, nil
}
