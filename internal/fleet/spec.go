package fleet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"vpm/internal/core"
	"vpm/internal/dissem"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
)

// Spec is the fleet's shared world description. Every process —
// collectors, verifiers, the supervisor, the in-process reference —
// derives everything it needs deterministically from this one value:
// the topology and route table, the traffic, the per-HOP signing keys,
// the domain-to-collector assignment, and the terminal epoch. Passing
// the same Spec to N processes is what makes their union output
// byte-identical to one process's: there is no state to synchronize,
// only a seed to agree on.
type Spec struct {
	// Seed drives the topology wiring, traffic, digests and signing
	// keys.
	Seed uint64 `json:"seed"`
	// Domains is the transit-domain count of the random-AS topology.
	Domains int `json:"domains"`
	// ExtraLinks is the chord-link count added to the spanning tree.
	ExtraLinks int `json:"extra_links"`
	// Keys is the distinct traffic-key count (WideKeys space, up to
	// 2^24).
	Keys int `json:"keys"`
	// Epochs is the number of traffic-carrying reporting intervals;
	// observation spill seals a few trailing empty epochs on top.
	Epochs int `json:"epochs"`
	// IntervalNS is the epoch length in simulated nanoseconds.
	IntervalNS int64 `json:"interval_ns"`
	// RatePPS is the aggregate send rate across all keys.
	RatePPS float64 `json:"rate_pps"`
	// Collectors is the collector-process count; domain d belongs to
	// collector d mod Collectors.
	Collectors int `json:"collectors"`
	// Workers sizes each verifier's per-epoch worker pool (0 =
	// GOMAXPROCS). Reports are identical at any pool size.
	Workers int `json:"workers"`
}

// Validate rejects specs that cannot produce a verifiable fleet run.
// Errors are plain validation errors (no sentinel).
func (s Spec) Validate() error {
	if s.Domains < 3 {
		return fmt.Errorf("fleet: need at least 3 domains, got %d", s.Domains)
	}
	if s.Keys < 1 || s.Keys > 1<<24 {
		return fmt.Errorf("fleet: key count %d outside [1, 2^24]", s.Keys)
	}
	if s.Epochs < 1 {
		return fmt.Errorf("fleet: need at least 1 epoch, got %d", s.Epochs)
	}
	if s.IntervalNS <= 0 {
		return fmt.Errorf("fleet: epoch interval %dns must be positive", s.IntervalNS)
	}
	if s.RatePPS <= 0 {
		return fmt.Errorf("fleet: send rate %v pps must be positive", s.RatePPS)
	}
	if s.Collectors < 1 {
		return fmt.Errorf("fleet: need at least 1 collector, got %d", s.Collectors)
	}
	if s.ExtraLinks < 0 || s.Workers < 0 {
		return fmt.Errorf("fleet: negative extra-links or workers")
	}
	if s.slotsPerEpoch() < 1 {
		return fmt.Errorf("fleet: rate %v pps over %dns sends no packets per epoch", s.RatePPS, s.IntervalNS)
	}
	return nil
}

// Encode renders the spec as one-line JSON — the -spec flag value the
// supervisor hands every child process.
func (s Spec) Encode() string {
	b, err := json.Marshal(s)
	if err != nil {
		panic("fleet: spec encode: " + err.Error()) // struct of scalars, cannot fail
	}
	return string(b)
}

// ParseSpec parses Encode's output and validates it.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	if err := json.Unmarshal([]byte(text), &s); err != nil {
		return Spec{}, fmt.Errorf("fleet: bad spec %q: %w", text, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// CollectorOf returns the collector-process index owning domain d.
func (s Spec) CollectorOf(domain int) int { return domain % s.Collectors }

// slotsPerEpoch is the packet count each epoch carries.
func (s Spec) slotsPerEpoch() int64 {
	return int64(math.Round(s.RatePPS * float64(s.IntervalNS) / 1e9))
}

// World is the deterministic expansion of a Spec: topology, routes,
// prefix table, deployment (collectors + verifier constants) and key
// list. Every fleet process builds its own World from the shared Spec
// and they all agree, because construction consumes nothing but the
// Spec.
type World struct {
	Spec  Spec
	Topo  *netsim.Topology
	Table *packet.Table
	Dep   *core.Deployment
	Keys  []packet.PathKey
	// HOPs are the routed, collector-bearing HOPs in ascending order —
	// the seal set every verifier's windowed store expects.
	HOPs []receipt.HOPID
	// Terminal is the last epoch any observation can land in, derived
	// from the worst-case route delay bound: every process seals empty
	// epochs through it so the whole fleet agrees on the final epoch
	// without communicating.
	Terminal core.EpochID
}

// deployConfig returns the fleet's deployment constants — the topo
// experiments' tuning, which keeps receipt volume sane at fleet-scale
// key counts.
func (s Spec) deployConfig() core.DeployConfig {
	cfg := core.DefaultDeployConfig()
	cfg.MarkerRate = 0.004
	cfg.Default = core.Tuning{SampleRate: 0.05, AggRate: 0.001}
	return cfg
}

// Build expands the spec. The topology is the random-AS family over
// WideKeys; collector processes and verifier processes both call this
// and read different parts of the result.
func (s Spec) Build() (*World, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	keys := netsim.WideKeys(s.Keys)
	topo := netsim.RandomASTopology(s.Seed, s.Domains, s.ExtraLinks, keys)
	prefixes := make([]packet.Prefix, 0, 2*len(keys))
	for _, k := range keys {
		prefixes = append(prefixes, k.Src, k.Dst)
	}
	table := packet.NewTable(prefixes)
	dep, err := core.NewTopoDeployment(topo, table, s.deployConfig())
	if err != nil {
		return nil, err
	}
	hops := make([]receipt.HOPID, 0, len(dep.Collectors))
	for h := range dep.Collectors {
		hops = append(hops, h)
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
	w := &World{Spec: s, Topo: topo, Table: table, Dep: dep, Keys: keys, HOPs: hops}
	w.Terminal = w.terminalEpoch()
	return w, nil
}

// terminalEpoch bounds the last epoch any observation can land in:
// the last send time plus the worst-case route delay (links' delay +
// full jitter, domains' base delay + full reorder jitter + positive
// observation-clock skews; the fleet's domains are healthy, with no
// queueing process). All processes compute the same bound from the
// same spec, which replaces the cross-HOP terminal alignment a
// single-process EpochDriver.Close does in memory.
func (w *World) terminalEpoch() core.EpochID {
	pos := func(v int64) int64 {
		if v > 0 {
			return v
		}
		return 0
	}
	var maxDelay int64
	for ri := range w.Topo.Routes {
		rt := &w.Topo.Routes[ri]
		src := w.Topo.Links[rt.Links[0]].From
		acc := pos(w.Topo.Domains[src].EgressSkewNS)
		for j, li := range rt.Links {
			l := &w.Topo.Links[li]
			acc += l.DelayNS + l.JitterNS
			d := &w.Topo.Domains[w.Topo.Links[li].To]
			acc += pos(d.IngressSkewNS)
			if j+1 < len(rt.Links) {
				acc += d.BaseDelayNS + d.ReorderJitterNS + pos(d.EgressSkewNS)
			}
		}
		if acc > maxDelay {
			maxDelay = acc
		}
	}
	lastSend := w.Spec.slotTime(w.Spec.TotalSlots() - 1)
	return core.EpochID((lastSend + maxDelay) / w.Spec.IntervalNS)
}

// TotalSlots is the whole run's packet count.
func (s Spec) TotalSlots() int64 { return s.slotsPerEpoch() * int64(s.Epochs) }

// slotTime is global packet slot g's send time: slots are spread
// evenly across the run, keys round-robin across consecutive slots.
func (s Spec) slotTime(g int64) int64 {
	per := s.slotsPerEpoch()
	epoch, in := g/per, g%per
	return epoch*s.IntervalNS + in*s.IntervalNS/per
}

// PacketsForSlots materializes packets for global slots [lo, hi) in
// send order. The traffic is synthetic but wide: every key carries
// packets (slot g belongs to key g mod Keys), each packet has a
// distinct header so digests decorrelate, and timestamps are strictly
// derived from the slot index — any process materializing any slot
// range gets identical packets.
func (s Spec) PacketsForSlots(keys []packet.PathKey, lo, hi int64) []packet.Packet {
	if hi > s.TotalSlots() {
		hi = s.TotalSlots()
	}
	if lo >= hi {
		return nil
	}
	out := make([]packet.Packet, 0, hi-lo)
	for g := lo; g < hi; g++ {
		k := keys[g%int64(len(keys))]
		out = append(out, packet.Packet{
			TotalLen: 500,
			IPID:     uint16(g),
			TTL:      64,
			Proto:    packet.ProtoUDP,
			Src:      k.Src.Addr,
			Dst:      k.Dst.Addr,
			SrcPort:  uint16(33000 + (g>>16)&0x7fff),
			DstPort:  9,
			SentAt:   s.slotTime(g),
		})
	}
	return out
}

// Signer derives HOP h's bundle-signing key from the spec seed — 8
// seed bytes plus 4 HOP bytes, so fleets with thousands of HOPs get
// distinct keys (the single-byte scheme vpm-hopd uses for its Fig1
// demo wraps at 256). Every process derives the same keys, standing in
// for the out-of-band key distribution a real deployment would use.
func (s Spec) Signer(h receipt.HOPID) *dissem.Signer {
	var seed [32]byte
	binary.LittleEndian.PutUint64(seed[0:8], s.Seed)
	binary.LittleEndian.PutUint32(seed[8:12], uint32(h))
	seed[12] = 0xf1 // fleet key-derivation domain tag
	return dissem.NewSigner(seed)
}

// Registry returns the public-key registry of every collector-bearing
// HOP.
func (w *World) Registry() dissem.Registry {
	reg := make(dissem.Registry, len(w.HOPs))
	for _, h := range w.HOPs {
		reg[h] = w.Spec.Signer(h).Public()
	}
	return reg
}

// OwnedHOPs returns the HOPs collector process i drives, in ascending
// order: the collector-bearing HOPs of every domain assigned to i.
func (w *World) OwnedHOPs(collector int) []receipt.HOPID {
	var out []receipt.HOPID
	for _, h := range w.HOPs {
		if w.Spec.CollectorOf(w.Topo.HOPDomain(h)) == collector {
			out = append(out, h)
		}
	}
	return out
}

// VerifierConfig returns the verifier constants with the spec's worker
// pool size applied.
func (w *World) VerifierConfig() core.VerifierConfig {
	cfg := w.Dep.VerifierConfig()
	cfg.Workers = w.Spec.Workers
	return cfg
}
