package fleet

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"vpm/internal/core"
	"vpm/internal/dissem"
	"vpm/internal/netsim"
	"vpm/internal/receipt"
)

// Collector is one collector process's state: it drives the epoch
// pipeline for the HOPs of its domain slice and serves every sealed
// epoch as a signed bundle. The HTTP surface a verifier consumes:
//
//	GET /hops                 — JSON list of the HOPs this process owns
//	GET /hop/<id>/receipts    — that HOP's bundle feed (dissem.Server)
//	GET /status               — {"index","finished","terminal"}
//
// Bundles are retained for the whole run (no DropThrough): a verifier
// shard that crashes and restarts re-fetches everything from cursor
// zero, which is what makes verifier restart a pure replay instead of
// a recovery protocol.
type Collector struct {
	world   *World
	index   int
	owned   []receipt.HOPID
	servers map[receipt.HOPID]*dissem.Server
	mux     *http.ServeMux

	finished atomic.Bool
	terminal atomic.Uint64
}

// CollectorOptions tunes the simulation drive loop, not its output —
// every option combination produces the same bundles.
type CollectorOptions struct {
	// ChunkSlots is how many packet slots each simulation segment
	// materializes (bounds peak memory). 0 means a 256k default.
	ChunkSlots int64
	// Pace inserts a real-time sleep between segments, so tests can
	// kill processes mid-epoch deterministically. 0 runs full speed.
	Pace time.Duration
}

// NewCollector builds collector process index's state for the world.
// The collector drives w's per-HOP collector state, which is
// single-use: build a fresh World per collector run (each real process
// does, from the shared spec), and never share one World between a
// collector and RunReference.
func NewCollector(w *World, index int) (*Collector, error) {
	if index < 0 || index >= w.Spec.Collectors {
		return nil, fmt.Errorf("fleet: collector index %d outside [0, %d)", index, w.Spec.Collectors)
	}
	c := &Collector{
		world:   w,
		index:   index,
		owned:   w.OwnedHOPs(index),
		servers: make(map[receipt.HOPID]*dissem.Server),
	}
	for _, h := range c.owned {
		c.servers[h] = dissem.NewServer(h, w.Spec.Signer(h))
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/hops", c.handleHops)
	c.mux.HandleFunc("/status", c.handleStatus)
	c.mux.HandleFunc("/hop/", c.handleReceipts)
	return c, nil
}

// Owned returns the HOPs this collector drives, ascending.
func (c *Collector) Owned() []receipt.HOPID { return c.owned }

// Handler returns the collector's HTTP surface. It is safe to serve
// while Run is still simulating: bundle feeds grow as epochs seal and
// /status flips finished when the terminal epoch is sealed.
func (c *Collector) Handler() http.Handler { return c.mux }

// HopInfo is one row of the /hops listing.
type HopInfo struct {
	HOP    receipt.HOPID `json:"hop"`
	Domain string        `json:"domain"`
	// Pub is the HOP's ed25519 public key, hex — informational (the
	// verifier derives keys from the spec; a real deployment would
	// authenticate this listing out of band).
	Pub string `json:"pub"`
}

// CollectorStatus is the /status document.
type CollectorStatus struct {
	Index int `json:"index"`
	// Finished reports that every owned HOP has sealed every epoch
	// through Terminal — the feed will not grow further.
	Finished bool   `json:"finished"`
	Terminal uint64 `json:"terminal"`
}

func (c *Collector) handleHops(w http.ResponseWriter, r *http.Request) {
	out := make([]HopInfo, 0, len(c.owned))
	for _, h := range c.owned {
		d := c.world.Topo.HOPDomain(h)
		out = append(out, HopInfo{
			HOP:    h,
			Domain: c.world.Topo.Domains[d].Name,
			Pub:    hex.EncodeToString(c.world.Spec.Signer(h).Public()),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (c *Collector) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(CollectorStatus{
		Index:    c.index,
		Finished: c.finished.Load(),
		Terminal: c.terminal.Load(),
	})
}

func (c *Collector) handleReceipts(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/hop/")
	idText, ok := strings.CutSuffix(rest, "/receipts")
	if !ok {
		http.NotFound(w, r)
		return
	}
	id, err := strconv.ParseUint(idText, 10, 32)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	srv, ok := c.servers[receipt.HOPID(id)]
	if !ok {
		http.NotFound(w, r)
		return
	}
	srv.ServeHTTP(w, r)
}

// Run simulates the whole world's traffic while observing only the
// owned HOPs, publishing each sealed (HOP, epoch) as one signed
// bundle. The simulation is the full deterministic world — every
// collector process replays identical traffic and forwarding decisions
// — but observation is restricted to the process's HOPs, so the union
// of all collectors' bundles equals a single whole-world run's (the
// replayer delivers per-HOP observation streams independently).
// Returns once every owned HOP has sealed through the spec-derived
// terminal epoch, or early with ctx's error on cancellation.
func (c *Collector) Run(ctx context.Context, opts CollectorOptions) error {
	chunk := opts.ChunkSlots
	if chunk <= 0 {
		chunk = 1 << 18
	}
	sink := func(hop receipt.HOPID, epoch core.EpochID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) {
		c.servers[hop].PublishEpoch(uint64(epoch), samples, aggs)
	}
	driver, err := core.NewEpochDriverFor(c.world.Dep, c.owned, c.world.Spec.IntervalNS, sink)
	if err != nil {
		return err
	}
	runner, err := netsim.NewTopoRunner(c.world.Topo, c.world.Table)
	if err != nil {
		return err
	}
	observers := driver.Observers()
	total := c.world.Spec.TotalSlots()
	for lo := int64(0); lo < total; lo += chunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + chunk
		horizon := int64(1) << 62
		if hi < total {
			// Every future packet is sent at or after the next chunk's
			// first send time.
			horizon = c.world.Spec.slotTime(hi)
		} else {
			hi = total
		}
		pkts := c.world.Spec.PacketsForSlots(c.world.Keys, lo, hi)
		if _, err := runner.RunSegment(pkts, observers, horizon); err != nil {
			return err
		}
		if opts.Pace > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(opts.Pace):
			}
		}
	}
	driver.CloseAt(c.world.Terminal)
	c.terminal.Store(uint64(c.world.Terminal))
	c.finished.Store(true)
	return nil
}
