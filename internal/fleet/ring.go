// Package fleet splits the single-process measurement pipeline into a
// multi-process deployment: per-domain collector processes stream
// sealed, signed epoch bundles over the dissemination plane to a
// horizontally sharded verifier tier, and a merge step recombines the
// shards' partial verdicts into union epoch reports byte-identical to
// a single process's at any shard count.
//
// The paper's §6 deployment story has per-domain monitors producing
// receipts and independent parties verifying them; this package is
// that story as processes. Three roles:
//
//   - Collector (one process per domain slice): simulates or observes
//     the shared world, runs the epoch pipeline for its own HOPs only,
//     and serves each sealed epoch as an ed25519-signed bundle.
//   - Verifier (N processes): fetches every collector's bundles with
//     bounded retry, keeps only the receipts whose traffic key it owns
//     on the consistent-hash ring, and runs the indexed store +
//     rolling verifier over its key slice.
//   - Merge: concatenates the shards' disjoint per-key reports and
//     re-sorts into canonical order (core.MergeEpochReports).
//
// Ownership is per traffic key, not per receipt.StoreKey pair: a
// verifier needs every HOP's receipts for a key to run the §4 link
// checks, so the ring hashes only the StoreKey's traffic-key component
// and a shard owns whole keys across all HOPs.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"

	"vpm/internal/packet"
	"vpm/internal/receipt"
)

// ringVnodes is the number of virtual nodes per shard. 64 keeps the
// largest/smallest shard load within a few percent of even at the
// shard counts a fleet runs (single digits to low hundreds) while the
// ring stays small enough to rebuild on every membership change.
const ringVnodes = 64

// Ring is a consistent-hash ring assigning traffic keys to verifier
// shards. It is deterministic: every process that builds a Ring for
// the same shard count computes the same ownership, which is what lets
// collectors stay ignorant of sharding entirely — routing happens at
// the consuming end.
type Ring struct {
	shards int
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

// mix64 is the splitmix64 finalizer. FNV-1a alone places similar
// inputs (consecutive vnode labels, keys differing in one octet) at
// nearby ring positions, which clusters ownership badly; the finalizer
// restores avalanche so the ring spreads evenly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds the ring for n verifier shards (n >= 1).
func NewRing(n int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("fleet: ring needs at least 1 shard, got %d", n)
	}
	r := &Ring{shards: n, points: make([]ringPoint, 0, n*ringVnodes)}
	for s := 0; s < n; s++ {
		for v := 0; v < ringVnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "vpm-fleet-shard-%d-vnode-%d", s, v)
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// OwnerKey returns the shard owning traffic key k: the first ring
// point at or after the key's hash, wrapping at the top.
func (r *Ring) OwnerKey(k packet.PathKey) int {
	if r.shards == 1 {
		return 0
	}
	var buf [57]byte
	h := fnv.New64a()
	h.Write(k.AppendText(buf[:0]))
	kh := mix64(h.Sum64())
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Owner returns the shard owning store key k. Only the traffic-key
// component routes (see the package comment): every (HOP, key) pair of
// one traffic key maps to one shard.
func (r *Ring) Owner(k receipt.StoreKey) int {
	return r.OwnerKey(k.Key)
}
