package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"vpm/internal/core"
	"vpm/internal/dissem"
	"vpm/internal/packet"
	"vpm/internal/receipt"
)

// Verifier is one shard of the fleet's verifier tier. It polls every
// collector's bundle feeds, keeps only the receipts whose traffic key
// it owns on the consistent-hash ring, and runs the windowed store +
// rolling verifier over that key slice. Because per-key verification
// reads only that key's receipts, each shard's per-key reports are
// byte-for-byte the reports a single whole-store verifier computes —
// MergeEpochReports recombines the shards' outputs into the exact
// single-process report stream.
//
// Fleet shards run the sequential (SPRT) detection arm off: its engine
// state is global across keys, so its verdicts cannot be recombined
// from key slices (see core.ErrBadMerge). The windowed per-epoch
// checks — the paper's core protocol — shard cleanly.
type Verifier struct {
	world   *World
	ring    *Ring
	shard   int
	win     *core.WindowedStore
	rolling *core.RollingVerifier
}

// VerifierOptions tunes the shard's fetch loop.
type VerifierOptions struct {
	// Retry bounds each collector fetch. Zero value means
	// dissem.DefaultRetryPolicy.
	Retry dissem.RetryPolicy
	// Poll is the idle wait between sweeps that found no new bundles.
	// 0 means 20ms.
	Poll time.Duration
	// Retention is the windowed store's verified-epoch retention.
	// 0 means 3 — the ±1 evidence window plus one epoch of slack.
	Retention int
	// HTTP optionally overrides the fetch client (timeouts, transports).
	HTTP *http.Client
}

// NewVerifier builds shard `shard` of a `shards`-wide verifier tier.
// Every shard must be built with the same shards count or ownership
// splits inconsistently.
func NewVerifier(w *World, shards, shard int, opts VerifierOptions) (*Verifier, error) {
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("fleet: shard %d outside [0, %d)", shard, shards)
	}
	ring, err := NewRing(shards)
	if err != nil {
		return nil, err
	}
	retention := opts.Retention
	if retention <= 0 {
		retention = 3
	}
	win, err := core.NewWindowedStore(w.HOPs, retention)
	if err != nil {
		return nil, err
	}
	v := &Verifier{world: w, ring: ring, shard: shard, win: win}
	v.rolling = core.NewRollingVerifier(core.Layout{}, w.VerifierConfig(), win, nil, 0.95)
	// Only owned keys get layouts — at fleet scale the layout map is
	// the dominant allocation, and a shard needs 1/shards of it.
	v.rolling.SetKeyLayouts(w.Dep.KeyLayoutsFor(func(k packet.PathKey) bool {
		return ring.OwnerKey(k) == shard
	}))
	return v, nil
}

// filterBundle strips b down to the receipts whose traffic key this
// shard owns. The bundle's identity (origin, seq, epoch) is preserved:
// a filtered-to-empty bundle still seals its (HOP, epoch).
func (v *Verifier) filterBundle(b *dissem.Bundle) *dissem.Bundle {
	out := &dissem.Bundle{Origin: b.Origin, Seq: b.Seq, Epoch: b.Epoch}
	for _, r := range b.Samples {
		if v.ring.OwnerKey(r.Path.Key) == v.shard {
			out.Samples = append(out.Samples, r)
		}
	}
	for _, r := range b.Aggs {
		if v.ring.OwnerKey(r.Path.Key) == v.shard {
			out.Aggs = append(out.Aggs, r)
		}
	}
	return out
}

// Run polls the collector base URLs until every HOP's feed is fully
// consumed — each HOP publishes exactly Terminal+1 bundles (one per
// epoch), so completion is a deterministic cursor position, not a
// negotiation — verifying epochs as they become ready and evicting
// behind the retention window. Returns this shard's epoch reports in
// ascending epoch order.
//
// Collectors retain all bundles, so a restarted shard re-fetches from
// cursor zero and reproduces its exact output: crash recovery is
// replay.
func (v *Verifier) Run(ctx context.Context, collectorURLs []string, opts VerifierOptions) ([]core.EpochReport, error) {
	if len(collectorURLs) != v.world.Spec.Collectors {
		return nil, fmt.Errorf("fleet: got %d collector URLs, spec has %d collectors", len(collectorURLs), v.world.Spec.Collectors)
	}
	retry := opts.Retry
	if retry == (dissem.RetryPolicy{}) {
		retry = dissem.DefaultRetryPolicy
	}
	poll := opts.Poll
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	client := &dissem.Client{
		HTTP:     opts.HTTP,
		Registry: v.world.Registry(),
		Viewer:   fmt.Sprintf("shard-%d", v.shard),
	}

	// One feed per (collector, HOP); done when the cursor reaches the
	// bundle count every HOP is guaranteed to publish.
	type feed struct {
		url    string
		hop    receipt.HOPID
		cursor uint64
	}
	var feeds []*feed
	for ci, base := range collectorURLs {
		for _, h := range v.world.OwnedHOPs(ci) {
			feeds = append(feeds, &feed{url: fmt.Sprintf("%s/hop/%d/receipts", base, h), hop: h})
		}
	}
	want := uint64(v.world.Terminal) + 1

	var reports []core.EpochReport
	for {
		progressed := false
		remaining := 0
		for _, f := range feeds {
			if f.cursor >= want {
				continue
			}
			remaining++
			err := dissem.Retry(ctx, retry, func() error {
				return client.FetchEach(ctx, f.url, f.hop, f.cursor, func(b *dissem.Bundle) error {
					if err := v.win.IngestBundle(v.filterBundle(b)); err != nil {
						// A duplicate (HOP, epoch) in one feed is
						// publisher misbehavior; no retry fixes it.
						return dissem.Permanent(err)
					}
					if err := v.win.SealHOP(b.Origin, core.EpochID(b.Epoch)); err != nil {
						return dissem.Permanent(err)
					}
					f.cursor = b.Seq + 1
					progressed = true
					return nil
				})
			})
			if err != nil {
				var budget *dissem.RetryBudgetError
				if errors.As(err, &budget) {
					return reports, fmt.Errorf("fleet: shard %d: feed %s: %w", v.shard, f.url, err)
				}
				return reports, fmt.Errorf("fleet: shard %d: feed %s: %w", v.shard, f.url, err)
			}
		}
		if remaining == 0 {
			break
		}
		// Verify incrementally, but keep the final two epochs for after
		// FinishStream: epoch Terminal only seals at the collectors'
		// CloseAt, so the single-process reference necessarily verifies
		// Terminal−1 and Terminal post-finish — with the stream-end
		// (tailComplete) evidence rule in effect. Verifying them early
		// here would produce different (equally sound, but not
		// byte-identical) reports for the tail epochs.
		for _, e := range v.win.Ready() {
			if e+1 >= v.world.Terminal {
				break
			}
			rep, err := v.rolling.VerifyEpoch(e)
			if err != nil {
				return reports, err
			}
			reports = append(reports, rep)
		}
		v.win.Evict()
		if !progressed {
			select {
			case <-ctx.Done():
				return reports, ctx.Err()
			case <-time.After(poll):
			}
		}
	}
	// All feeds drained: the final epoch needs the stream declared over
	// before it can verify (no successor epoch will seal).
	v.win.FinishStream()
	reps, err := v.rolling.VerifyReady()
	reports = append(reports, reps...)
	if err != nil {
		return reports, err
	}
	v.win.Evict()
	return reports, nil
}
