// Package e2e holds the black-box end-to-end harness: it builds the
// real vpm-node binary, runs it as a child process against a real
// on-disk data directory, kills it with SIGKILL at randomized points
// mid-epoch, restarts it, and checks the durable-store recovery
// contract from the outside — no test hooks, no in-process shortcuts.
// The oracle is a reference run of the same binary with the same seed
// that was never interrupted: after recovery converges, the union of
// persisted verdicts must be byte-identical to the reference's.
//
// Everything lives in the package's tests; there is no library here to
// import. See kill9_test.go.
package e2e
