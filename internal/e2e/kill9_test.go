package e2e

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"vpm/internal/segstore"
)

// The knobs every child process shares. The workload is deterministic
// in (seed, rate, interval, epochs), which is what makes a separate
// uninterrupted run a valid oracle for the killed-and-recovered one.
const (
	e2eEpochs   = 8
	e2eInterval = "100ms"
	e2eSeed     = "42"
	e2eRate     = "20000"
	killRounds  = 3
)

// buildVPMNode compiles the real binary once per test run.
func buildVPMNode(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vpm-node")
	cmd := exec.Command("go", "build", "-o", bin, "vpm/cmd/vpm-node")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building vpm-node: %v\n%s", err, out)
	}
	return bin
}

// nodeCmd assembles a vpm-node invocation against dir.
func nodeCmd(bin, dir string, extra ...string) (*exec.Cmd, *bytes.Buffer, *bytes.Buffer) {
	args := []string{
		"-epochs", fmt.Sprint(e2eEpochs), "-interval", e2eInterval,
		"-seed", e2eSeed, "-rate", e2eRate, "-quiet", "-data-dir", dir,
	}
	cmd := exec.Command(bin, append(args, extra...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	return cmd, &stdout, &stderr
}

// runToCompletion runs one uninterrupted invocation and requires exit 0.
func runToCompletion(t *testing.T, bin, dir string, extra ...string) (string, string) {
	t.Helper()
	cmd, stdout, stderr := nodeCmd(bin, dir, extra...)
	if err := cmd.Run(); err != nil {
		t.Fatalf("vpm-node %v: %v\nstdout:\n%s\nstderr:\n%s", cmd.Args, err, stdout, stderr)
	}
	return stdout.String(), stderr.String()
}

// waitForManifest polls until the node's first durable seal commits a
// MANIFEST into dir. Readiness polling instead of a fixed sleep: the
// child's startup cost (binary load, store creation, first epoch) is
// wildly variable under -race on a loaded CI machine, and a wall-clock
// wait either flakes or overshoots.
func waitForManifest(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no MANIFEST committed within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// manifestLastSealed reads the killed process's MANIFEST directly —
// without opening the store, so the surviving bytes stay exactly as the
// crash left them — and returns the last durably sealed epoch.
func manifestLastSealed(t *testing.T, dir string) (uint64, bool) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false
	}
	if err != nil {
		t.Fatal(err)
	}
	entries, err := segstore.DecodeManifest(raw)
	if err != nil {
		// A torn MANIFEST.tmp is possible; a torn MANIFEST is not — the
		// commit protocol renames a fully synced temp into place.
		t.Fatalf("committed MANIFEST does not decode: %v", err)
	}
	if len(entries) == 0 {
		return 0, false
	}
	return entries[len(entries)-1].ToEpoch, true
}

// storeReports opens dir and returns every persisted verdict, keyed by
// epoch, plus the sealed-epoch list.
func storeReports(t *testing.T, dir string) (map[uint64][]byte, []uint64) {
	t.Helper()
	s, _, err := segstore.Open(dir, segstore.Options{})
	if err != nil {
		t.Fatalf("opening %s: %v", dir, err)
	}
	defer s.Close()
	out := make(map[uint64][]byte)
	for _, epoch := range s.ReportEpochs() {
		rep, err := s.Report(epoch)
		if err != nil {
			t.Fatalf("reading epoch %d report: %v", epoch, err)
		}
		out[epoch] = rep
	}
	return out, s.SealedEpochs()
}

// TestKill9RecoveryMatchesUninterruptedRun is the tentpole's proof:
// kill -9 a paced vpm-node at a random point mid-run, restart it, and
// require (a) boot recovers exactly the epochs the manifest had
// durably sealed, (b) the restarted run completes with exit 0, and
// (c) the union of persisted verdicts is byte-identical to an
// uninterrupted reference run — nothing lost, nothing double-counted,
// nothing silently recomputed differently.
func TestKill9RecoveryMatchesUninterruptedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and repeatedly runs the vpm-node binary")
	}
	bin := buildVPMNode(t)

	// The oracle: same binary, same knobs, never interrupted.
	refDir := filepath.Join(t.TempDir(), "ref")
	runToCompletion(t, bin, refDir)
	refReports, refSealed := storeReports(t, refDir)
	if len(refReports) == 0 || len(refSealed) == 0 {
		t.Fatalf("reference run persisted nothing (reports %d, sealed %v)", len(refReports), refSealed)
	}

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for round := 0; round < killRounds; round++ {
		round := round
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "data")

			// Paced run: one epoch per 100ms of wall clock, so the kill
			// delay below lands mid-run, usually mid-epoch. The random
			// delay is the point of the sweep — each round crashes at a
			// different phase of the epoch cycle, sometimes before the
			// first durable seal — but it is anchored to the node having
			// booted (its data dir existing) rather than to cmd.Start, so
			// a slow binary launch under -race cannot silently turn every
			// round into a kill-before-boot no-op.
			cmd, _, stderr := nodeCmd(bin, dir, "-pace")
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			booted := time.Now().Add(30 * time.Second)
			for {
				if _, err := os.Stat(dir); err == nil {
					break
				}
				if time.Now().After(booted) {
					cmd.Process.Kill()
					t.Fatal("node never created its data dir within 30s")
				}
				time.Sleep(5 * time.Millisecond)
			}
			delay := time.Duration(rng.Int63n(int64(500 * time.Millisecond)))
			t.Logf("killing %v after boot", delay)
			time.Sleep(delay)
			if err := cmd.Process.Kill(); err != nil { // SIGKILL: no handler runs
				t.Fatal(err)
			}
			err := cmd.Wait()
			var exit *exec.ExitError
			if !errors.As(err, &exit) || exit.ExitCode() == 0 {
				t.Fatalf("killed process reported %v\nstderr:\n%s", err, stderr)
			}

			durableLast, hadDurable := manifestLastSealed(t, dir)
			if hadDurable {
				t.Logf("crash left epochs through %d durably sealed", durableLast)
			} else {
				t.Log("crash landed before the first durable seal")
			}

			// Restart, unpaced: boot must recover, then re-execute the
			// deterministic stream to completion.
			_, bootLog := runToCompletion(t, bin, dir)
			if !strings.Contains(bootLog, "recovered") {
				t.Fatalf("restart did not report recovery:\n%s", bootLog)
			}
			wantLast := "none"
			if hadDurable {
				wantLast = fmt.Sprint(durableLast)
			}
			if want := fmt.Sprintf("last sealed epoch %s", wantLast); !strings.Contains(bootLog, want) {
				t.Fatalf("restart recovered to the wrong epoch: want %q in:\n%s", want, bootLog)
			}

			// Union of the two runs' verdicts == the uninterrupted run's.
			gotReports, gotSealed := storeReports(t, dir)
			if fmt.Sprint(gotSealed) != fmt.Sprint(refSealed) {
				t.Fatalf("sealed epochs %v, reference %v", gotSealed, refSealed)
			}
			if len(gotReports) != len(refReports) {
				t.Fatalf("%d reports after recovery, reference has %d", len(gotReports), len(refReports))
			}
			for epoch, want := range refReports {
				got, ok := gotReports[epoch]
				if !ok {
					t.Fatalf("epoch %d verdict missing after recovery", epoch)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("epoch %d verdict differs from the uninterrupted run", epoch)
				}
			}
		})
	}
}

var apiAddrRE = regexp.MustCompile(`query API on (http://[^\s]+)`)

// syncBuffer is a mutex-guarded buffer safe to read while the child
// process is still writing to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeOnlyServesRecoveredVerdicts closes the loop across the
// process boundary: after a kill and a recovering restart, a third
// invocation in -serve-only mode must serve the persisted verdicts
// over HTTP byte-identical to what is on disk.
func TestServeOnlyServesRecoveredVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and repeatedly runs the vpm-node binary")
	}
	bin := buildVPMNode(t)
	dir := filepath.Join(t.TempDir(), "data")

	// A paced run killed mid-flight, then a recovering completion. The
	// kill waits for the first durable seal (the MANIFEST landing on
	// disk) rather than a wall-clock delay, so the serve-only phase is
	// guaranteed recovered verdicts to serve even on a machine where
	// startup is slow.
	cmd, _, _ := nodeCmd(bin, dir, "-pace")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitForManifest(t, dir)
	cmd.Process.Kill()
	cmd.Wait()
	runToCompletion(t, bin, dir)
	wantReports, wantSealed := storeReports(t, dir)

	// Audit mode: serve the store without running anything. Its stderr
	// is polled while the process runs, so it needs the locked buffer.
	serve, _, _ := nodeCmd(bin, dir, "-serve-only", "-http", "127.0.0.1:0")
	serveErr := &syncBuffer{}
	serve.Stderr = serveErr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		serve.Process.Signal(syscall.SIGTERM)
		serve.Wait()
	}()

	// The listener address is announced on stderr once the store is open.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := apiAddrRE.FindStringSubmatch(serveErr.String()); m != nil {
			base = m[1]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("serve-only never announced its address:\nstderr:\n%s", serveErr)
	}

	resp, err := http.Get(base + "/api/v1/verdicts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/v1/verdicts: %d\n%s", resp.StatusCode, body)
	}
	var verdicts struct {
		Epochs  []uint64          `json:"epochs"`
		Reports []json.RawMessage `json:"reports"`
	}
	if err := json.Unmarshal(body, &verdicts); err != nil {
		t.Fatalf("decoding verdicts: %v\n%s", err, body)
	}
	if len(verdicts.Epochs) != len(wantSealed) {
		t.Fatalf("API served %d epochs, store holds %d", len(verdicts.Epochs), len(wantSealed))
	}
	for i, epoch := range verdicts.Epochs {
		if !bytes.Equal(verdicts.Reports[i], wantReports[epoch]) {
			t.Fatalf("epoch %d served over HTTP differs from the stored verdict", epoch)
		}
	}
}
