package e2e

import (
	"bytes"
	"errors"
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"vpm/internal/fleet"
)

// fleetSpec is the shared world every process in the black-box fleet
// test derives independently from the spec JSON. Small enough to run
// under -race in CI, large enough that a paced collection is still
// in flight when the verifier is killed.
func fleetSpec() fleet.Spec {
	return fleet.Spec{
		Seed:       42,
		Domains:    8,
		ExtraLinks: 6,
		Keys:       64,
		Epochs:     3,
		IntervalNS: 50_000_000,
		RatePPS:    60_000,
		Collectors: 2,
	}
}

func buildVPMFleet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vpm-fleet")
	cmd := exec.Command("go", "build", "-o", bin, "vpm/cmd/vpm-fleet")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building vpm-fleet: %v\n%s", err, out)
	}
	return bin
}

var fleetAddrRE = regexp.MustCompile(`collector \d+ serving on (http://[^\s]+)`)

// startFleetCollector spawns one real collector process and scrapes
// its announced address. Pacing stretches the simulation over wall
// time so the kill below lands while collection is still in flight.
func startFleetCollector(t *testing.T, bin string, spec fleet.Spec, index int, pace time.Duration) (*exec.Cmd, string) {
	t.Helper()
	args := []string{"collect",
		"-spec", spec.Encode(),
		"-index", strconv.Itoa(index),
		"-addr", "127.0.0.1:0",
		"-chunk", "512",
	}
	if pace > 0 {
		args = append(args, "-pace", pace.String())
	}
	cmd := exec.Command(bin, args...)
	stderr := &syncBuffer{}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd, scrapeAddr(t, stderr, fleetAddrRE, fmt.Sprintf("collector %d", index))
}

func fleetVerifyCmd(bin string, spec fleet.Spec, shards, shard int, urls []string, out string) *exec.Cmd {
	return exec.Command(bin, "verify",
		"-spec", spec.Encode(),
		"-shards", strconv.Itoa(shards),
		"-shard", strconv.Itoa(shard),
		"-collectors", strings.Join(urls, ","),
		"-out", out,
	)
}

// TestFleetVerifierKillAndRestartConverges is the black-box fleet
// proof: real collector and verifier binaries over real HTTP, one
// verifier shard SIGKILLed while collection is still streaming, then
// restarted from nothing. Because collectors retain every bundle,
// the restarted shard replays the feeds from cursor zero and the
// merged union must be byte-identical to the in-process single-run
// reference — crash recovery without a recovery protocol.
func TestFleetVerifierKillAndRestartConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the vpm-fleet binary")
	}
	bin := buildVPMFleet(t)
	spec := fleetSpec()

	// The oracle: one in-process whole-world run (fresh World — the
	// collector state is single-use).
	refWorld, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	refReports, err := fleet.RunReference(refWorld, 0)
	if err != nil {
		t.Fatal(err)
	}
	refEnc, err := fleet.EncodeReports(refReports)
	if err != nil {
		t.Fatal(err)
	}

	// Paced collectors: ~512 packet slots per 20ms keeps the stream
	// alive for roughly a second of wall clock.
	urls := make([]string, spec.Collectors)
	for i := range urls {
		_, urls[i] = startFleetCollector(t, bin, spec, i, 20*time.Millisecond)
	}

	dir := t.TempDir()
	const shards = 2
	parts := make([]string, shards)
	cmds := make([]*exec.Cmd, shards)
	for s := range parts {
		parts[s] = filepath.Join(dir, fmt.Sprintf("part-%d.json", s))
		cmds[s] = fleetVerifyCmd(bin, spec, shards, s, urls, parts[s])
		var stderr bytes.Buffer
		cmds[s].Stderr = &stderr
		if err := cmds[s].Start(); err != nil {
			t.Fatal(err)
		}
	}

	// Kill shard 1 while the collectors are still streaming epochs.
	time.Sleep(150 * time.Millisecond)
	if err := cmds[1].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	err = cmds[1].Wait()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() == 0 {
		t.Fatalf("killed verifier reported %v", err)
	}

	// Restart it cold: no state survives, the part file was never
	// written; the shard refetches everything and writes as if the
	// crash never happened.
	restarted := fleetVerifyCmd(bin, spec, shards, 1, urls, parts[1])
	var restartErr bytes.Buffer
	restarted.Stderr = &restartErr
	if err := restarted.Run(); err != nil {
		t.Fatalf("restarted verifier: %v\nstderr:\n%s", err, restartErr.String())
	}
	if err := cmds[0].Wait(); err != nil {
		t.Fatalf("surviving verifier: %v", err)
	}

	outs := make([]*fleet.ShardOutput, shards)
	for s, p := range parts {
		if outs[s], err = fleet.ReadShardFile(p); err != nil {
			t.Fatalf("part %d: %v", s, err)
		}
	}
	merged, err := fleet.MergeShardOutputs(outs)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(refEnc) {
		t.Fatalf("merged %d epochs, reference has %d", len(merged), len(refEnc))
	}
	for e := range merged {
		if !bytes.Equal(merged[e], refEnc[e]) {
			t.Fatalf("epoch %d union diverges from single-process reference after kill+restart:\n got %s\nwant %s",
				e, merged[e], refEnc[e])
		}
	}
	if got, want := fleet.Fingerprint(merged), fleet.Fingerprint(refEnc); got != want {
		t.Fatalf("fingerprint %s after kill+restart, reference %s", got, want)
	}
}
