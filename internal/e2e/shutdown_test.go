package e2e

import (
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// These tests pin the daemons' HTTP lifecycle: a peer that opens a TCP
// connection and never sends a request (or never finishes its headers)
// must not block shutdown. Go's http.Server.Shutdown waits for
// connections in StateNew indefinitely unless the server carries read
// timeouts and the caller bounds the drain — exactly the bug these
// binaries had with `defer srv.Shutdown(context.Background())` and
// bare `http.ListenAndServe`.

// waitExit requires the process to exit with code 0 within d.
func waitExit(t *testing.T, cmd *exec.Cmd, d time.Duration, stderr fmt.Stringer) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v\nstderr:\n%s", err, stderr)
		}
	case <-time.After(d):
		cmd.Process.Kill()
		t.Fatalf("daemon still running %v after SIGTERM — a stalled connection blocked shutdown\nstderr:\n%s", d, stderr)
	}
}

// stallConn opens a raw TCP connection to addr and leaves it open with
// an unfinished request: headers started, never terminated. The server
// sees a connection that is neither idle nor a complete request.
func stallConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET /hops HTTP/1.1\r\nHost: stalled\r\n")); err != nil {
		t.Fatal(err)
	}
	return conn
}

// scrapeAddr polls a child's stderr until re matches, returning the
// first capture group.
func scrapeAddr(t *testing.T, buf *syncBuffer, re *regexp.Regexp, what string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			return m[1]
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never announced its address:\nstderr:\n%s", what, buf)
	return ""
}

// TestNodeShutdownNotBlockedByStalledConnection: vpm-node in
// serve-only mode must exit cleanly on SIGTERM even while a client
// holds an open connection with unfinished headers.
func TestNodeShutdownNotBlockedByStalledConnection(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the vpm-node binary")
	}
	bin := buildVPMNode(t)
	dir := filepath.Join(t.TempDir(), "data")
	runToCompletion(t, bin, dir) // populate a store to serve

	serve, _, _ := nodeCmd(bin, dir, "-serve-only", "-http", "127.0.0.1:0")
	stderr := &syncBuffer{}
	serve.Stderr = stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve.Process.Kill()
	base := scrapeAddr(t, stderr, apiAddrRE, "serve-only node")

	// One healthy request proves the server is actually up...
	resp, err := http.Get(base + "/api/v1/verdicts")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// ...then a stalled connection tries to pin it open.
	conn := stallConn(t, strings.TrimPrefix(base, "http://"))
	defer conn.Close()

	if err := serve.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Well past the 5s drain bound, far under the pre-fix forever.
	waitExit(t, serve, 20*time.Second, stderr)
}

var hopdAddrRE = regexp.MustCompile(`serving receipts for \d+ HOPs on ([^\s]+)`)

// TestHopdShutdownDrainsAndExitsZero: vpm-hopd must announce, serve,
// and on SIGTERM drain within its deadline and exit 0 — with a stalled
// connection open, which its old bare ListenAndServe+log.Fatal form
// could never do (no signal handling at all, exit always nonzero).
func TestHopdShutdownDrainsAndExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the vpm-hopd binary")
	}
	bin := filepath.Join(t.TempDir(), "vpm-hopd")
	build := exec.Command("go", "build", "-o", bin, "vpm/cmd/vpm-hopd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vpm-hopd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-duration", "50ms", "-rate", "20000")
	stderr := &syncBuffer{}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	addr := scrapeAddr(t, stderr, hopdAddrRE, "vpm-hopd")

	resp, err := http.Get("http://" + addr + "/hops")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /hops: %d", resp.StatusCode)
	}
	conn := stallConn(t, addr)
	defer conn.Close()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitExit(t, cmd, 20*time.Second, stderr)
	if !strings.Contains(stderr.String(), "clean shutdown") {
		t.Fatalf("no clean-shutdown line in stderr:\n%s", stderr)
	}
}
