package core

import (
	"testing"

	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

// These tests exercise the other half of the paper's inconsistency
// semantics: honest domains connected by a *faulty inter-domain link*
// also produce inconsistent receipts — "such an inconsistency can be
// due either to a lie or to a faulty inter-domain link" (§3.1). The
// verifier must localize the problem to exactly the faulty link, and
// healthy infrastructure must stay quiet.

func TestFaultyLinkFlagged(t *testing.T) {
	// The X-N link (between HOPs 5 and 6) drops 10% of traffic.
	sc := buildScenario(t, scenarioOpt{
		durNS: int64(500e6),
		mutatePath: func(p *netsim.Path) {
			// Link index 2 connects X (domain 2) and N (domain 3).
			p.Links[2].Loss = lossmodel.NewBernoulli(0.10, stats.NewRNG(71))
		},
	})
	v := sc.dep.NewVerifier(sc.key)
	for _, lv := range v.VerifyAllLinks() {
		faulty := lv.Up == 5 && lv.Down == 6
		if faulty && lv.Consistent() {
			t.Errorf("faulty link %v-%v not flagged (missing-down=%d, matched=%d)",
				lv.Up, lv.Down, lv.MissingDown, lv.MatchedSamples)
		}
		if !faulty && !lv.Consistent() {
			t.Errorf("healthy link %v-%v flagged: %v", lv.Up, lv.Down, lv.Violations[0])
		}
	}
	// The aggregate counts across the faulty link must show the loss
	// too (count-mismatch evidence).
	lv := v.CheckLink(5, 6)
	var counts, missing int
	for _, viol := range lv.Violations {
		switch viol.Kind {
		case receipt.CountMismatch:
			counts++
		case receipt.MissingDownstream:
			missing++
		}
	}
	if counts == 0 {
		t.Error("faulty link produced no aggregate count mismatches")
	}
	if missing == 0 {
		t.Error("faulty link produced no missing sample records")
	}
}

func TestSlowLinkBreaksDelayBound(t *testing.T) {
	// A link whose real delay exceeds its advertised MaxDiff: honest
	// receipts violate the timestamp rule — the neighbors must either
	// fix the link or advertise a larger (and embarrassing) MaxDiff
	// (§4, "No Clock Synchronization").
	sc := buildScenario(t, scenarioOpt{
		durNS: int64(300e6),
		mutatePath: func(p *netsim.Path) {
			p.Links[2].DelayNS = p.Links[2].MaxDiffNS + 2_000_000
		},
	})
	v := sc.dep.NewVerifier(sc.key)
	lv := v.CheckLink(5, 6)
	if lv.Consistent() {
		t.Fatal("slow link passed the MaxDiff check")
	}
	for _, viol := range lv.Violations {
		if viol.Kind != receipt.DelayBound {
			t.Fatalf("unexpected violation kind %v", viol.Kind)
		}
	}
}

func TestClockSkewWithinMaxDiffTolerated(t *testing.T) {
	// Modest skew (under MaxDiff minus link delay) stays consistent —
	// the paper's incentive story: domains keep clocks synced well
	// enough, or their links look slow.
	sc := buildScenario(t, scenarioOpt{
		durNS: int64(300e6),
		mutatePath: func(p *netsim.Path) {
			ni := p.DomainIndex("N")
			p.Domains[ni].IngressSkewNS = 500_000 // 0.5 ms forward skew
		},
	})
	v := sc.dep.NewVerifier(sc.key)
	if lv := v.CheckLink(5, 6); !lv.Consistent() {
		t.Fatalf("0.5ms skew should fit inside MaxDiff: %v", lv.Violations[0])
	}
}

func TestClockSkewBeyondMaxDiffFlagged(t *testing.T) {
	sc := buildScenario(t, scenarioOpt{
		durNS: int64(300e6),
		mutatePath: func(p *netsim.Path) {
			ni := p.DomainIndex("N")
			p.Domains[ni].IngressSkewNS = 5_000_000 // 5 ms >> MaxDiff 3 ms
		},
	})
	v := sc.dep.NewVerifier(sc.key)
	lv := v.CheckLink(5, 6)
	if lv.Consistent() {
		t.Fatal("5ms skew against a 3ms MaxDiff went unflagged")
	}
	// Negative skew (downstream clock behind) is tolerated by the
	// one-sided rule — skew only hurts when it inflates the apparent
	// link delay.
	sc2 := buildScenario(t, scenarioOpt{
		durNS: int64(300e6),
		mutatePath: func(p *netsim.Path) {
			ni := p.DomainIndex("N")
			p.Domains[ni].IngressSkewNS = -5_000_000
		},
	})
	v2 := sc2.dep.NewVerifier(sc2.key)
	if lv := v2.CheckLink(5, 6); !lv.Consistent() {
		t.Fatalf("negative skew flagged: %v", lv.Violations[0])
	}
}

func TestMaxDiffMismatchDetected(t *testing.T) {
	// Two neighbors advertising different MaxDiff values for their
	// shared link violate rule (1) of §4.
	sc := buildScenario(t, scenarioOpt{durNS: int64(200e6)})
	v := NewVerifier(sc.dep.Layout())
	v.SetConfig(sc.dep.VerifierConfig())
	for hop, proc := range sc.dep.Processors {
		for _, s := range proc.CombinedSamples() {
			if s.Path.Key != sc.key {
				continue
			}
			if hop == 6 {
				s.Path.MaxDiffNS += 1_000_000 // N advertises a different bound
			}
			v.AddSampleReceipt(hop, s)
		}
	}
	lv := v.CheckLink(5, 6)
	found := false
	for _, viol := range lv.Violations {
		if viol.Kind == receipt.MaxDiffMismatch {
			found = true
		}
	}
	if !found {
		t.Fatal("MaxDiff mismatch not detected")
	}
}

func TestMultiPathCollector(t *testing.T) {
	// A collector classifying many concurrent paths keeps per-path
	// state separate — the §7.1 "active path" scenario at test scale.
	const nPaths = 20
	tc := trace.Config{Seed: 61, DurationNS: int64(200e6)}
	for i := 0; i < nPaths; i++ {
		spec := trace.DefaultPath(5000)
		spec.SrcPrefix = packet.MakePrefix(10, byte(1+i), 0, 0, 16)
		spec.DstPrefix = packet.MakePrefix(172, byte(16+i), 0, 0, 16)
		tc.Paths = append(tc.Paths, spec)
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	path := netsim.Fig1Path(9)
	dep, err := NewDeployment(path, tc.Table(), DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := path.Run(pkts, dep.Observers()); err != nil {
		t.Fatal(err)
	}
	dep.Finalize()
	m := dep.Collectors[4].Memory()
	if m.ActivePaths != nPaths {
		t.Fatalf("collector tracks %d paths, want %d", m.ActivePaths, nPaths)
	}
	// Each path's verifier sees only its own traffic, with no phantom
	// loss on the lossless path.
	for i := 0; i < nPaths; i++ {
		key := packet.PathKey{Src: tc.Paths[i].SrcPrefix, Dst: tc.Paths[i].DstPrefix}
		v := dep.NewVerifier(key)
		rep, err := v.LossBetween(4, 5)
		if err != nil {
			t.Fatalf("path %d: %v", i, err)
		}
		if rep.Lost != 0 {
			t.Fatalf("path %d phantom loss %d", i, rep.Lost)
		}
	}
}
