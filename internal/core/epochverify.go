package core

import (
	"fmt"

	"vpm/internal/aggregation"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/seqdetect"
)

// This file implements the per-epoch (scoped) forms of the §4 link
// check and the per-domain estimates that rolling verification runs as
// each interval seals.
//
// Per-epoch verification cannot simply run CheckLink over one epoch's
// receipts: receipts for the same packet legitimately seal in adjacent
// epochs at different HOPs. A sample is sealed in the epoch of its
// *deciding marker* (Algorithm 1 decides a packet only when the next
// marker arrives), and the same marker crosses each HOP at a slightly
// different local time; likewise an aggregate seals where its cutting
// point lands. The skew is bounded by one interval (marker transit and
// propagation delay are far below any sane epoch length), so the
// scoped check works on two scopes:
//
//   - claims — the receipts sealed in the target epoch: the records
//     this epoch's report vouches for, each attributed to exactly one
//     epoch;
//   - evidence — the ±1-epoch view around the target, which contains
//     the counterpart records of every claim.
//
// Missing-record judgments iterate the claims but match against the
// evidence, so boundary spill never reads as a lie, while every record
// is still judged exactly once — in the epoch that sealed it.
// Aggregate counts are compared only over regions bounded by cutting
// points common to both ends within the evidence window (Join's
// half-open edge regions are trimmed); the untrimmed full-stream
// comparison is exactly the batch verdict, which continuous operation
// reproduces byte-for-byte when epochs are unioned
// (TestBatchContinuousEquivalence).

// epochScope bundles the two scopes of one epoch's verification.
type epochScope struct {
	view   *Verifier // evidence: ±1-epoch window, configured
	claims *ReceiptStore
	// headComplete reports that the view's lower edge is the true
	// stream start (epoch 0 is inside the view): nothing precedes the
	// first joined pair, so no patch-up evidence is missing at its
	// leading boundary and the head region may be compared.
	headComplete bool
	// tailComplete reports that nothing exists beyond the view's upper
	// edge (the stream finished at or inside it), so Join's tail
	// region is bounded and may be compared.
	tailComplete bool
	// seq, when non-nil, captures per-packet evidence for the
	// sequential arm (see seqarm.go). The checks only append to it;
	// the rolling verifier feeds it to the engine after the parallel
	// sweep, in deterministic work order.
	seq *seqCollector
}

// epochLinkCheck is the scoped §4 link check: MaxDiff agreement, the
// timestamp bound and missing-record checks for the packets claimed in
// the target epoch, and aggregate-count equality over commonly-bounded
// regions of the evidence window.
func (s *epochScope) epochLinkCheck(key packet.PathKey, linkID int, up, down receipt.HOPID) LinkVerdict {
	v := s.view
	lv := LinkVerdict{LinkID: linkID, Up: up, Down: down}
	iu, id := v.indexFor(up), v.indexFor(down)
	pu, hasU := iu.path()
	pd, hasD := id.path()
	if hasU && hasD && pu.MaxDiffNS != pd.MaxDiffNS {
		lv.Violations = append(lv.Violations, receipt.Inconsistency{
			Kind:   receipt.MaxDiffMismatch,
			Detail: fmt.Sprintf("%v advertises %dns, %v advertises %dns", up, pu.MaxDiffNS, down, pd.MaxDiffNS),
		})
	}
	maxDiff := pu.MaxDiffNS

	cuUniq, _ := s.claims.lookup(up, key).snapshot()
	cdUniq, _ := s.claims.lookup(down, key).snapshot()
	_, su := iu.snapshot()
	_, sd := id.snapshot()
	// The sequential arm's trial streams, in claims order: linkItems
	// interleaves keep/drop Bernoulli trials with matched link deltas
	// (one mixed slice serves both the loss and the delay detector —
	// each skips the other's kinds); fabItems is the mirror-direction
	// trial stream over the downstream HOP's claims.
	var linkItems, fabItems []seqdetect.Evidence
	var missingDown, missingUp []receipt.Inconsistency
	for _, pid := range cuUniq {
		tu := su[pid]
		td, ok := sd[pid]
		if !ok {
			if v.expectedSampled(iu, down, pid) {
				missingDown = append(missingDown, receipt.Inconsistency{
					Kind:  receipt.MissingDownstream,
					PktID: pid,
					Detail: fmt.Sprintf("delivered by %v, unreported by %v",
						up, down),
				})
				if s.seq != nil {
					linkItems = append(linkItems, seqdetect.Evidence{Kind: seqdetect.KindDrop})
				}
			}
			continue
		}
		lv.MatchedSamples++
		delta := td - tu
		if s.seq != nil {
			linkItems = append(linkItems,
				seqdetect.Evidence{Kind: seqdetect.KindKeep},
				seqdetect.Evidence{Kind: seqdetect.KindDelta, Value: float64(delta)})
		}
		if delta > maxDiff {
			lv.Violations = append(lv.Violations, receipt.Inconsistency{
				Kind:   receipt.DelayBound,
				PktID:  pid,
				Detail: fmt.Sprintf("link delta %dns exceeds MaxDiff %dns", delta, maxDiff),
			})
		}
	}
	for _, pid := range cdUniq {
		if _, ok := su[pid]; !ok {
			if v.expectedSampled(id, up, pid) {
				missingUp = append(missingUp, receipt.Inconsistency{
					Kind:  receipt.MissingUpstream,
					PktID: pid,
					Detail: fmt.Sprintf("reported received by %v, never reported delivered by %v",
						down, up),
				})
				if s.seq != nil {
					fabItems = append(fabItems, seqdetect.Evidence{Kind: seqdetect.KindDrop})
				}
			}
		} else if s.seq != nil {
			fabItems = append(fabItems, seqdetect.Evidence{Kind: seqdetect.KindKeep})
		}
	}
	if s.seq != nil {
		sc := seqLinkScope(key, up, down)
		s.seq.add(sc, seqdetect.ClassLoss, linkItems)
		s.seq.add(sc, seqdetect.ClassDelay, linkItems)
		s.seq.add(sc, seqdetect.ClassFabricate, fabItems)
	}
	lv.MissingDown, lv.MissingUp = len(missingDown), len(missingUp)
	// Symmetric §5.3 reorder noise at epoch granularity, absorbed by
	// the same rule the batch CheckLink applies (absorbSymmetricNoise);
	// asymmetric excess — real loss or lies — keeps its full weight
	// (TestRollingVerifierFlagsFaultyLink).
	tol := v.missingTolerance(lv.MatchedSamples)
	judgeDown, judgeUp := absorbSymmetricNoise(lv.MissingDown, lv.MissingUp, v.reorderNoiseFloor(up, down))
	if judgeDown > tol {
		lv.Violations = append(lv.Violations, missingDown...)
	}
	if judgeUp > tol {
		lv.Violations = append(lv.Violations, missingUp...)
	}

	if ra, rb := iu.aggReceipts(), id.aggReceipts(); len(ra) > 0 && len(rb) > 0 {
		pairs := aggregation.JoinAligned(ra, rb)
		for _, p := range s.boundedPairs(pairs, ra, rb) {
			lv.Violations = append(lv.Violations, receipt.CheckAggPair(p.A, p.B)...)
		}
	}
	return lv
}

// boundedPairs trims a joined sequence to the pairs whose packet
// regions can actually be judged inside the evidence window:
//
//   - Interior pairs — bounded by cutting points common to both HOPs,
//     with a preceding pair in view — are always comparable: PatchUp
//     already migrated reordered packets across both of their
//     boundaries.
//   - The head pair is comparable only when the view reaches the true
//     stream start AND both sequences begin at the same packet;
//     otherwise its leading boundary's patch-up evidence (the AggTrans
//     of the preceding, out-of-view aggregate) is missing and a few
//     legitimately migrated packets would read as a count lie.
//   - The tail pair is comparable only when nothing beyond the view
//     can extend either sequence (stream finished inside the window).
//
// Half-open edge regions compare receipts for different packet sets —
// seal-epoch skew, not lies — and are left to the reports whose view
// does bound them; the union-of-epochs batch check remains the
// complete backstop.
func (s *epochScope) boundedPairs(pairs []aggregation.Pair, a, b []receipt.AggReceipt) []aggregation.Pair {
	lo, hi := 0, len(pairs)
	if !s.headComplete || a[0].Agg.First != b[0].Agg.First {
		lo = 1
	}
	if !s.tailComplete {
		hi--
	}
	if lo >= hi {
		return nil
	}
	return pairs[lo:hi]
}

// epochDomainReport estimates one domain's loss and delay for the
// target epoch: delays from the samples the egress HOP sealed in it
// (each sample contributes to exactly one epoch's estimate), loss from
// the commonly-bounded joined aggregates of the evidence window.
func (s *epochScope) epochDomainReport(key packet.PathKey, seg Segment, qs []float64, confidence float64) (DomainReport, error) {
	v := s.view
	rep := DomainReport{Name: seg.Name, Ingress: seg.Up, Egress: seg.Down}

	if seg.Partial {
		// ECMP branch/merge point: the two HOPs see different subsets
		// of the key's packets, so aggregate counts are not comparable
		// (see Segment.Partial). Delay estimates below still are.
		rep.PartialLoss = true
	} else if ra, rb := v.indexFor(seg.Up).aggReceipts(), v.indexFor(seg.Down).aggReceipts(); len(ra) > 0 && len(rb) > 0 {
		pairs := aggregation.Join(ra, rb)
		mig := aggregation.PatchUp(pairs)
		bounded := s.boundedPairs(pairs, ra, rb)
		rep.Loss = LossReport{Pairs: bounded, Migrations: mig}
		for _, p := range bounded {
			rep.Loss.In += int64(p.A.PktCnt)
			rep.Loss.Lost += p.Lost()
		}
	}

	cdUniq, _ := s.claims.lookup(seg.Down, key).snapshot()
	_, si := v.indexFor(seg.Up).snapshot()
	_, se := v.indexFor(seg.Down).snapshot()
	var delays []float64
	var biasItems []seqdetect.Evidence
	// Without MarkerThreshold the marker/σ-sample split is unknown and
	// no sequential bias stream is collected — the same precondition
	// the batch CheckMarkerBias has.
	collectBias := s.seq != nil && v.cfg.MarkerThreshold != 0
	for _, pid := range cdUniq {
		if ti, ok := si[pid]; ok {
			d := float64(se[pid] - ti)
			delays = append(delays, d)
			if collectBias {
				biasItems = append(biasItems, seqdetect.Evidence{
					Kind:  seqMarkerKind(pid, v.cfg.MarkerThreshold),
					Value: d,
				})
			}
		}
	}
	if collectBias {
		s.seq.add(seqDomainScope(key, seg), seqdetect.ClassBias, biasItems)
	}
	rep.DelaySamples = len(delays)
	if len(delays) > 0 {
		ests, err := quantile.Quantiles(delays, qs, confidence)
		if err != nil {
			return rep, err
		}
		rep.DelayEstimates = ests
	} else {
		rep.DelayEstimateErr = "no matched samples"
	}
	return rep, nil
}
