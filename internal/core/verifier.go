package core

import (
	"fmt"

	"vpm/internal/aggregation"
	"vpm/internal/dissem"
	"vpm/internal/hashing"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/seqdetect"
	"vpm/internal/stats"
)

// SegmentKind distinguishes the two kinds of adjacency on a path.
type SegmentKind int

// Segment kinds.
const (
	// LinkSegment is an inter-domain link between two HOPs of
	// different domains — where consistency is checked.
	LinkSegment SegmentKind = iota
	// DomainSegment is an intra-domain crossing between a domain's
	// ingress and egress HOPs — where performance is estimated.
	DomainSegment
)

// Segment is one adjacency of the path layout.
type Segment struct {
	Kind     SegmentKind
	Up, Down receipt.HOPID
	// Name is the domain name for DomainSegment, or "A-B" for links.
	Name string
	// UpDomain and DownDomain name the domains owning the Up and Down
	// HOPs. Layout builders should set them; LinkDomains falls back to
	// splitting Name on "-" when they are empty — a legacy path that
	// breaks for domain names containing hyphens, which mesh
	// topologies legitimately produce.
	UpDomain, DownDomain string
	// Partial marks a domain segment whose two HOPs see different
	// subsets of a traffic key's packets — an ECMP branch or merge
	// point, where the key's routes share one HOP but not the other.
	// Aggregate-based loss across such a segment would count the
	// sibling routes' packets as losses, so domain reports skip it.
	Partial bool
}

// Layout describes a linear path's HOPs in order and its segments.
// The verifier needs it to know which HOP pairs are links (checked for
// consistency) and which are domains (estimated for performance).
type Layout struct {
	HOPs     []receipt.HOPID
	Segments []Segment
}

// DomainSegmentByName finds the domain segment with the given name.
func (l Layout) DomainSegmentByName(name string) (Segment, bool) {
	for _, s := range l.Segments {
		if s.Kind == DomainSegment && s.Name == name {
			return s, true
		}
	}
	return Segment{}, false
}

// Links returns the layout's inter-domain link segments in path
// order. The slice index is the link's LinkID — the ordinal
// VerifyAllLinks stamps on verdicts and sorts them by.
func (l Layout) Links() []Segment {
	var out []Segment
	for _, s := range l.Segments {
		if s.Kind == LinkSegment {
			out = append(out, s)
		}
	}
	return out
}

// DomainSegments returns the layout's intra-domain segments in path
// order — the units DomainReports estimates in parallel.
func (l Layout) DomainSegments() []Segment {
	var out []Segment
	for _, s := range l.Segments {
		if s.Kind == DomainSegment {
			out = append(out, s)
		}
	}
	return out
}

// VerifierConfig carries the deployment constants a verifier needs to
// reason about sampling expectations across HOPs with different rates.
type VerifierConfig struct {
	// MarkerThreshold is the system-wide µ (hashing.ThresholdForRate
	// of the marker rate). Zero means unknown: the verifier then
	// treats every upstream sample as expected downstream (strict
	// mode, correct only when all HOPs share one rate).
	MarkerThreshold uint64
	// SampleThresholds maps each HOP to its advertised σ. Missing
	// entries fall back to strict mode for that HOP.
	SampleThresholds map[receipt.HOPID]uint64
	// MissingToleranceFraction and MissingToleranceFloor bound the
	// unexplained missing sample records a link check absorbs as
	// reordering noise (§5.3) before declaring inconsistency. Zero
	// values select the defaults (5% of matched samples, floor 10) —
	// an order of magnitude below what fabrication or under-reporting
	// lies produce, and above what heavy jitter causes on honest
	// links.
	MissingToleranceFraction float64
	MissingToleranceFloor    int
	// SampleKeep, when non-nil, is the system-wide retention thinning
	// filter of the streaming sketch backend (streamagg.KeepFilter's
	// Keep): a sampled packet's record appears in receipts only when
	// SampleKeep(id) is true. The verifier composes it with the
	// Algorithm 1 re-derivation so a thinned record is never expected
	// — and never flagged missing — on a link, even when one side
	// retains exactly (oracle deployments mixing the two backends).
	// Markers are never thinned, so marker timelines are unaffected.
	SampleKeep func(pktID uint64) bool
	// Workers sizes the worker pool VerifyAllLinks and DomainReports
	// spread independent link and domain checks over: 0 uses
	// GOMAXPROCS, 1 runs serially. Verdicts are byte-identical at any
	// pool size; only wall-clock time changes.
	Workers int
	// BiasChecks makes rolling verification run the marker-bias check
	// (CheckMarkerBias) per domain per epoch, attaching the verdicts —
	// and blame for suspicious ones — to each EpochKeyReport. Off by
	// default: the check needs MarkerThreshold and enough samples per
	// epoch to judge.
	BiasChecks bool
	// Sequential, when non-nil, arms the concurrent SPRT arm of
	// rolling verification: every per-epoch link and domain check also
	// feeds its per-packet evidence to the seqdetect engine, which may
	// cross a detection threshold mid-epoch — epochs before the batch
	// checks accumulate enough per-epoch weight. Sequential verdicts
	// ride on EpochReport.Seq; the batch verdicts are untouched and
	// their persisted encodings stay byte-identical to an unarmed run.
	Sequential *seqdetect.Config
}

// Verifier is a receipt collector for one HOP path: it ingests
// receipts from every HOP, estimates each domain's loss and delay, and
// checks consistency across every inter-domain link (§4). The paper's
// verifiability argument requires collecting from all HOPs on the
// path — a verifier that sees only a segment cannot expose collusions
// (§3.1).
//
// Receipts live in an indexed ReceiptStore keyed by (HOP, traffic
// key), so one store can be shared by many per-path verifiers (see
// Deployment.NewStore) and ingested concurrently from several
// dissemination fetches. Receipts arrive either pre-decoded
// (AddSampleReceipt, AddAggReceipts) or as signed dissemination
// bundles consumed incrementally (Ingest, IngestSigned,
// IngestBundles) — no need to hold a path's worth of receipts in
// memory before verification starts.
//
// A verifier built by NewVerifierFor (or Deployment.NewVerifier) is
// restricted to one traffic key: queries resolve (HOP, key) indexes
// directly, so receipts for other paths in the same store or bundle
// stream are invisible to it. An unrestricted verifier (NewVerifier)
// answers queries from everything its HOPs reported, merging traffic
// keys if several were ingested.
type Verifier struct {
	layout Layout
	cfg    VerifierConfig

	store      *ReceiptStore
	key        packet.PathKey
	restricted bool
}

// NewVerifier builds an unrestricted verifier for the given path
// layout over a fresh private store.
func NewVerifier(layout Layout) *Verifier {
	return &Verifier{layout: layout, store: NewReceiptStore()}
}

// NewVerifierFor builds a verifier restricted to one traffic key over
// a fresh private store: receipts for other origin-prefix pairs may be
// ingested (e.g. from multi-path dissemination bundles) but never leak
// into this verifier's answers.
func NewVerifierFor(layout Layout, key packet.PathKey) *Verifier {
	v := NewVerifier(layout)
	v.key, v.restricted = key, true
	return v
}

// NewVerifierOn builds a key-restricted verifier over a shared
// ReceiptStore. Ingest the store once, then verify every path key it
// holds without re-scanning receipts per key.
func NewVerifierOn(layout Layout, store *ReceiptStore, key packet.PathKey) *Verifier {
	return &Verifier{layout: layout, store: store, key: key, restricted: true}
}

// SetConfig installs the deployment constants (see VerifierConfig).
func (v *Verifier) SetConfig(cfg VerifierConfig) { v.cfg = cfg }

// Store exposes the verifier's receipt store, e.g. to share it with
// further verifiers or to ingest into it directly.
func (v *Verifier) Store() *ReceiptStore { return v.store }

// indexFor resolves the index answering queries about hop.
func (v *Verifier) indexFor(hop receipt.HOPID) *pathIndex {
	if v.restricted {
		return v.store.lookup(hop, v.key)
	}
	return v.store.hopView(hop)
}

// AddSampleReceipt ingests one HOP's sample receipt.
func (v *Verifier) AddSampleReceipt(hop receipt.HOPID, r receipt.SampleReceipt) {
	v.store.AddSamples(hop, r)
}

// AddAggReceipts ingests one HOP's aggregate receipts, in stream
// order.
func (v *Verifier) AddAggReceipts(hop receipt.HOPID, rs []receipt.AggReceipt) {
	v.store.AddAggs(hop, rs)
}

// Ingest consumes one decoded dissemination bundle: every sample and
// aggregate receipt in it is filed under the bundle's origin HOP.
// Bundles may arrive in any order and may interleave traffic keys; a
// restricted verifier simply never reads the foreign indexes. Safe to
// call concurrently (one goroutine per dissemination fetch).
func (v *Verifier) Ingest(b *dissem.Bundle) {
	for _, s := range b.Samples {
		v.store.AddSamples(b.Origin, s)
	}
	v.store.AddAggs(b.Origin, b.Aggs)
}

// IngestSigned authenticates one signed bundle against the key
// registered for its claimed origin, then ingests it. Unauthenticated
// receipts never enter the store.
func (v *Verifier) IngestSigned(reg dissem.Registry, sb dissem.SignedBundle) error {
	b, err := dissem.VerifyFromRegistry(reg, sb)
	if err != nil {
		return err
	}
	v.Ingest(b)
	return nil
}

// IngestBundles drains a stream of signed bundles, authenticating and
// ingesting each as it arrives — the streaming counterpart of
// collecting every receipt up front. On a verification failure it
// keeps draining the channel (so producers do not block) but ingests
// nothing further, and returns the first error.
func (v *Verifier) IngestBundles(reg dissem.Registry, bundles <-chan dissem.SignedBundle) error {
	var firstErr error
	for sb := range bundles {
		if firstErr != nil {
			continue
		}
		if err := v.IngestSigned(reg, sb); err != nil {
			firstErr = err
		}
	}
	return firstErr
}

// SampleCount returns the number of distinct sampled packets ingested
// for a HOP.
func (v *Verifier) SampleCount(hop receipt.HOPID) int { return v.indexFor(hop).sampleCount() }

// DelaysBetween returns the per-packet delays (nanoseconds, as
// float64 for the statistics layer) of the packets sampled by both
// HOPs: Rb.Time − Ra.Time per common PktID (§4, Receipt-based
// Statistics), in b's deterministic first-arrival packet order.
func (v *Verifier) DelaysBetween(a, b receipt.HOPID) []float64 {
	_, sa := v.indexFor(a).snapshot()
	ub, sb := v.indexFor(b).snapshot()
	if len(sa) == 0 || len(sb) == 0 {
		return nil
	}
	out := make([]float64, 0, len(sb))
	for _, id := range ub {
		if ta, ok := sa[id]; ok {
			out = append(out, float64(sb[id]-ta))
		}
	}
	return out
}

// MarkerBiasReport is the outcome of the marker-preference check — an
// extension beyond the paper. Markers are the one part of VPM's sample
// set a domain can predict at forwarding time (µ is a public system
// constant), so a domain could treat markers preferentially: its loss
// accounting stays exact, but steep delay tails can be flattered
// because the always-sampled markers skip the congestion the σ-keyed
// samples suffer. The check compares the delay distributions of marker
// and non-marker samples between a domain's HOPs; honest treatment
// makes them statistically indistinguishable (markers are
// hash-selected, hence a uniform subsample).
type MarkerBiasReport struct {
	MarkerN, OtherN           int
	MarkerP90MS, OtherP90MS   float64
	MarkerMeanMS, OtherMeanMS float64
	// Suspicious is set when markers are systematically faster than
	// σ-keyed samples beyond sampling noise.
	Suspicious bool
}

// CheckMarkerBias compares marker vs non-marker delay distributions
// between two HOPs. It requires the verifier's MarkerThreshold to be
// configured.
func (v *Verifier) CheckMarkerBias(a, b receipt.HOPID) (MarkerBiasReport, error) {
	var rep MarkerBiasReport
	mu := v.cfg.MarkerThreshold
	if mu == 0 {
		return rep, fmt.Errorf("core: marker threshold not configured")
	}
	_, sa := v.indexFor(a).snapshot()
	ub, sb := v.indexFor(b).snapshot()
	var markers, others []float64
	for _, id := range ub {
		ta, ok := sa[id]
		if !ok {
			continue
		}
		d := float64(sb[id] - ta)
		if hashing.Exceeds(id, mu) {
			markers = append(markers, d)
		} else {
			others = append(others, d)
		}
	}
	rep.MarkerN, rep.OtherN = len(markers), len(others)
	if len(markers) < 10 || len(others) < 10 {
		return rep, fmt.Errorf("core: too few samples to judge marker bias (%d markers, %d others)",
			len(markers), len(others))
	}
	rep.MarkerP90MS = stats.Quantile(markers, 0.9) / 1e6
	rep.OtherP90MS = stats.Quantile(others, 0.9) / 1e6
	rep.MarkerMeanMS = stats.Mean(markers) / 1e6
	rep.OtherMeanMS = stats.Mean(others) / 1e6
	// Honest markers are a uniform subsample: their median should sit
	// inside the others' distribution. Flag when the marker p90 falls
	// below the others' median — far outside subsampling noise for
	// the populations required above.
	otherP50 := stats.Quantile(others, 0.5) / 1e6
	rep.Suspicious = rep.MarkerP90MS < otherP50
	return rep, nil
}

// CorroboratedDelays returns the delays between HOPs a and b
// restricted to the packets that HOP witness also sampled — the
// subset of a domain's claims a third party can actually verify.
// The §7.2 verifiability analysis is built on this: the witness's
// sampling rate caps the quality of verification.
func (v *Verifier) CorroboratedDelays(a, b, witness receipt.HOPID) []float64 {
	_, sa := v.indexFor(a).snapshot()
	_, sb := v.indexFor(b).snapshot()
	uw, sw := v.indexFor(witness).snapshot()
	if len(sa) == 0 || len(sb) == 0 || len(sw) == 0 {
		return nil
	}
	out := make([]float64, 0, len(sw))
	for _, id := range uw {
		ta, okA := sa[id]
		tb, okB := sb[id]
		if okA && okB {
			out = append(out, float64(tb-ta))
		}
	}
	return out
}

// DelayQuantiles estimates the delay quantiles of the traffic between
// two HOPs from their matched samples.
func (v *Verifier) DelayQuantiles(a, b receipt.HOPID, qs []float64, confidence float64) ([]quantile.Estimate, error) {
	delays := v.DelaysBetween(a, b)
	if len(delays) == 0 {
		return nil, fmt.Errorf("core: no matched samples between %v and %v", a, b)
	}
	return quantile.Quantiles(delays, qs, confidence)
}

// LossReport is the aggregate-based loss computation between two HOPs.
type LossReport struct {
	// Pairs are the joined (and patch-up aligned) aggregates.
	Pairs []aggregation.Pair
	// In is the total packets the upstream HOP counted; Lost is the
	// total difference.
	In, Lost int64
	// Migrations counts packets the §6.3 patch-up moved across
	// cutting points.
	Migrations int
}

// Rate returns the measured loss rate.
func (r LossReport) Rate() float64 {
	if r.In == 0 {
		return 0
	}
	return float64(r.Lost) / float64(r.In)
}

// LossBetween computes the loss between two HOPs from their aggregate
// receipts via the §6 join + patch-up pipeline.
func (v *Verifier) LossBetween(a, b receipt.HOPID) (LossReport, error) {
	ra := v.indexFor(a).aggReceipts()
	rb := v.indexFor(b).aggReceipts()
	if len(ra) == 0 || len(rb) == 0 {
		return LossReport{}, fmt.Errorf("core: missing aggregate receipts between %v and %v", a, b)
	}
	pairs := aggregation.Join(ra, rb)
	mig := aggregation.PatchUp(pairs)
	rep := LossReport{Pairs: pairs, Migrations: mig}
	for _, p := range pairs {
		rep.In += int64(p.A.PktCnt)
		rep.Lost += p.Lost()
	}
	return rep, nil
}

// LinkVerdict is the outcome of checking one inter-domain link.
type LinkVerdict struct {
	// LinkID is the link's ordinal along the path (see Layout.Links);
	// VerifyAllLinks returns verdicts sorted by it.
	LinkID   int
	Up, Down receipt.HOPID
	// Violations found (empty = consistent).
	Violations []receipt.Inconsistency
	// MatchedSamples is how many sampled packets both ends reported.
	MatchedSamples int
	// MissingDown and MissingUp count the unexplained missing records
	// in each direction, whether or not they crossed the noise
	// tolerance into Violations.
	MissingDown, MissingUp int
}

// Consistent reports whether the link's receipts agree.
func (lv LinkVerdict) Consistent() bool { return len(lv.Violations) == 0 }

// String renders the verdict.
func (lv LinkVerdict) String() string {
	if lv.Consistent() {
		return fmt.Sprintf("link %v-%v: consistent (%d matched samples)", lv.Up, lv.Down, lv.MatchedSamples)
	}
	return fmt.Sprintf("link %v-%v: %d violations, e.g. %v", lv.Up, lv.Down, len(lv.Violations), lv.Violations[0])
}

// missingTolerance returns the number of unexplained missing sample
// records a link check absorbs as noise before declaring
// inconsistency. Reordering across a marker boundary legitimately
// desynchronizes the sample sets of two honest HOPs for the packets
// near the marker (§5.3), so missing records bounded by a small
// fraction of the matched samples must not condemn a link.
func (v *Verifier) missingTolerance(matched int) int {
	frac := v.cfg.MissingToleranceFraction
	if frac <= 0 {
		frac = 0.05
	}
	floor := v.cfg.MissingToleranceFloor
	if floor <= 0 {
		floor = 10
	}
	tol := int(float64(matched) * frac)
	if tol < floor {
		tol = floor
	}
	return tol
}

// reorderNoiseFloor bounds the symmetric §5.3 reordering noise a
// missing-record check absorbs: one flipped marker desynchronizes up
// to a temporary buffer's worth of sampling decisions — σ/µ samples in
// expectation per direction — and the floor covers a few such events.
// Used by both the batch CheckLink and the per-epoch link checks, so
// the two pipelines judge honest jitter identically.
func (v *Verifier) reorderNoiseFloor(up, down receipt.HOPID) int {
	mu := v.cfg.MarkerThreshold
	if mu == 0 {
		return 0
	}
	muRate := hashing.RateForThreshold(mu)
	if muRate <= 0 {
		return 0
	}
	sigma := v.cfg.SampleThresholds[up]
	if s, ok := v.cfg.SampleThresholds[down]; ok && (sigma == 0 || s < sigma) {
		sigma = s // lower threshold = higher sampling rate = bigger buffers
	}
	if sigma == 0 {
		return 0
	}
	perBuffer := hashing.RateForThreshold(sigma) / muRate
	return int(4 * perBuffer)
}

// absorbSymmetricNoise splits a link check's missing-record counts
// into the part absorbed as §5.3 reorder noise and the part to judge.
// Reordering across a marker boundary desynchronizes the two ends'
// sampling decisions symmetrically — each end samples ~σ/µ packets the
// other did not, per flipped marker — so the symmetric component
// min(down, up) is absorbed up to the floor; loss and lies are
// asymmetric (a dropped packet is missing downstream only, a
// fabricated one upstream only) and keep their full weight. A
// symmetric component larger than the floor is judged in full.
//
// The absorption concedes a bounded window: an adversary that pairs k
// suppressed records with k fabricated ones, k ≤ floor, hides 2k
// records as noise — the same order as what the fractional tolerance
// already forgives, and the paired fabrications still risk the
// aggregate-count and delay-bound checks. The batch CheckLink and the
// per-epoch epochLinkCheck share this one function so the two
// pipelines can never drift apart in how they judge honest jitter.
func absorbSymmetricNoise(missDown, missUp, floor int) (judgeDown, judgeUp int) {
	sym := missDown
	if missUp < sym {
		sym = missUp
	}
	if sym > floor {
		sym = 0 // too large even for reorder noise: judge in full
	}
	return missDown - sym, missUp - sym
}

// CheckLink verifies the receipts of the two HOPs at the ends of one
// inter-domain link (§4): MaxDiff agreement, the timestamp bound on
// commonly sampled packets, missing-record checks under the subset
// property, and aggregate count equality over the joined aggregates.
// Packets are visited in each HOP's first-arrival order, so the
// verdict — including the order of its violations — is deterministic.
//
// Missing-record semantics: a packet the upstream HOP claims to have
// delivered is expected in the downstream receipt exactly when the
// downstream HOP's advertised sampling threshold would have selected
// it (the verifier re-derives the Algorithm 1 decision). Expected but
// missing records beyond a small reordering-noise tolerance are
// inconsistencies — caused either by a faulty link or by a lie; the
// two neighbors then debug the link, and if it is healthy the liar
// stands exposed to the neighbor it implicated (§3.1).
func (v *Verifier) CheckLink(up, down receipt.HOPID) LinkVerdict {
	lv := LinkVerdict{Up: up, Down: down}
	iu, id := v.indexFor(up), v.indexFor(down)
	pu, hasU := iu.path()
	pd, hasD := id.path()
	if hasU && hasD && pu.MaxDiffNS != pd.MaxDiffNS {
		lv.Violations = append(lv.Violations, receipt.Inconsistency{
			Kind:   receipt.MaxDiffMismatch,
			Detail: fmt.Sprintf("%v advertises %dns, %v advertises %dns", up, pu.MaxDiffNS, down, pd.MaxDiffNS),
		})
	}
	maxDiff := pu.MaxDiffNS

	uUniq, su := iu.snapshot()
	dUniq, sd := id.snapshot()
	var missingDown, missingUp []receipt.Inconsistency
	for _, pid := range uUniq {
		tu := su[pid]
		td, ok := sd[pid]
		if !ok {
			if v.expectedSampled(iu, down, pid) {
				missingDown = append(missingDown, receipt.Inconsistency{
					Kind:  receipt.MissingDownstream,
					PktID: pid,
					Detail: fmt.Sprintf("delivered by %v, unreported by %v",
						up, down),
				})
			}
			continue
		}
		lv.MatchedSamples++
		if delta := td - tu; delta > maxDiff {
			lv.Violations = append(lv.Violations, receipt.Inconsistency{
				Kind:   receipt.DelayBound,
				PktID:  pid,
				Detail: fmt.Sprintf("link delta %dns exceeds MaxDiff %dns", delta, maxDiff),
			})
		}
	}
	for _, pid := range dUniq {
		if _, ok := su[pid]; !ok {
			if v.expectedSampled(id, up, pid) {
				missingUp = append(missingUp, receipt.Inconsistency{
					Kind:  receipt.MissingUpstream,
					PktID: pid,
					Detail: fmt.Sprintf("reported received by %v, never reported delivered by %v",
						down, up),
				})
			}
		}
	}
	lv.MissingDown, lv.MissingUp = len(missingDown), len(missingUp)
	// Symmetric §5.3 reorder noise is absorbed before judging (see
	// absorbSymmetricNoise); the mesh fixtures exposed that this batch
	// check lacked the absorption the per-epoch check always had — an
	// honest shared link under jitter could trip the one-sided
	// tolerance (TestCheckLinkSymmetricReorderNoise).
	tol := v.missingTolerance(lv.MatchedSamples)
	judgeDown, judgeUp := absorbSymmetricNoise(lv.MissingDown, lv.MissingUp, v.reorderNoiseFloor(up, down))
	if judgeDown > tol {
		lv.Violations = append(lv.Violations, missingDown...)
	}
	if judgeUp > tol {
		lv.Violations = append(lv.Violations, missingUp...)
	}

	// Aggregate counts across the link.
	if ra, rb := iu.aggReceipts(), id.aggReceipts(); len(ra) > 0 && len(rb) > 0 {
		pairs := aggregation.JoinAligned(ra, rb)
		for _, p := range pairs {
			lv.Violations = append(lv.Violations, receipt.CheckAggPair(p.A, p.B)...)
		}
	}
	return lv
}

// expectedSampled reports whether HOP `other` must have sampled packet
// id, given that the HOP behind reporter's index ri sampled it. It
// re-derives the Algorithm 1 decision: find the marker that keyed id
// in the reporter's sample timeline (the first marker at or after id's
// observation — markers are the samples whose digest exceeds the
// system-wide µ, binary-searched on the index's cached marker
// timeline) and test SampleFcn(id, marker) against other's advertised
// σ. Markers themselves are always expected. Without deployment
// constants the verifier is strict: everything is expected (correct
// when all HOPs share one rate).
func (v *Verifier) expectedSampled(ri *pathIndex, other receipt.HOPID, id uint64) bool {
	mu := v.cfg.MarkerThreshold
	if mu == 0 {
		return true
	}
	if hashing.Exceeds(id, mu) {
		return true // markers are always sampled everywhere
	}
	if v.cfg.SampleKeep != nil && !v.cfg.SampleKeep(id) {
		// Thinned by the system-wide retention filter: no HOP's
		// receipts carry it, regardless of sampling thresholds.
		return false
	}
	sigma, ok := v.cfg.SampleThresholds[other]
	if !ok {
		return true
	}
	t, ok := ri.timeOf(id)
	if !ok {
		return true
	}
	marker, ok := markerAtOrAfter(ri.markerTimeline(mu), t)
	if !ok {
		// No marker followed: the reporter could not have sampled id
		// through Algorithm 1 either; don't expect it elsewhere.
		return false
	}
	return hashing.Exceeds(hashing.SampleFcn(id, marker), sigma)
}

// VerifyAllLinks checks every inter-domain link on the path, spreading
// the independent link checks over VerifierConfig.Workers goroutines
// (0 = GOMAXPROCS). Link pairs share no mutable state, so the verdicts
// are byte-identical at any pool size; they return LinkID-sorted (path
// order) regardless of which worker finished first.
func (v *Verifier) VerifyAllLinks() []LinkVerdict {
	links := v.layout.Links()
	if len(links) == 0 {
		return nil
	}
	out := make([]LinkVerdict, len(links))
	runParallel(resolveWorkers(v.cfg.Workers), len(links), func(i int) {
		lv := v.CheckLink(links[i].Up, links[i].Down)
		lv.LinkID = i
		out[i] = lv
	})
	return out
}

// DomainReport is a verifier's estimate of one domain's performance.
type DomainReport struct {
	Name            string
	Ingress, Egress receipt.HOPID
	Loss            LossReport
	// PartialLoss is set when the segment is an ECMP branch/merge
	// point (Segment.Partial): the two HOPs see different subsets of
	// the key's packets, so the aggregate loss comparison is skipped
	// and Loss stays zero. Delay estimates remain valid — matched
	// samples intersect to the common subset.
	PartialLoss      bool
	DelaySamples     int
	DelayEstimates   []quantile.Estimate
	DelayEstimateErr string // non-empty when no samples matched
}

// DomainReport estimates the named domain's loss and delay from its
// own receipts.
func (v *Verifier) DomainReport(name string, qs []float64, confidence float64) (DomainReport, error) {
	seg, ok := v.layout.DomainSegmentByName(name)
	if !ok {
		return DomainReport{}, fmt.Errorf("core: no domain %q in layout", name)
	}
	return v.domainReport(seg, qs, confidence)
}

// DomainReports estimates every transit domain on the path, in path
// order, spreading the independent per-domain estimates over
// VerifierConfig.Workers goroutines (0 = GOMAXPROCS). Like
// VerifyAllLinks, the reports are byte-identical at any pool size.
// The first per-domain error (by path order) is returned alongside
// the reports that succeeded.
func (v *Verifier) DomainReports(qs []float64, confidence float64) ([]DomainReport, error) {
	segs := v.layout.DomainSegments()
	if len(segs) == 0 {
		return nil, nil
	}
	out := make([]DomainReport, len(segs))
	errs := make([]error, len(segs))
	runParallel(resolveWorkers(v.cfg.Workers), len(segs), func(i int) {
		out[i], errs[i] = v.domainReport(segs[i], qs, confidence)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// domainReport estimates one domain segment's loss and delay.
func (v *Verifier) domainReport(seg Segment, qs []float64, confidence float64) (DomainReport, error) {
	rep := DomainReport{Name: seg.Name, Ingress: seg.Up, Egress: seg.Down}
	if seg.Partial {
		rep.PartialLoss = true
	} else if loss, err := v.LossBetween(seg.Up, seg.Down); err == nil {
		rep.Loss = loss
	}
	delays := v.DelaysBetween(seg.Up, seg.Down)
	rep.DelaySamples = len(delays)
	if len(delays) > 0 {
		ests, err := quantile.Quantiles(delays, qs, confidence)
		if err != nil {
			return rep, err
		}
		rep.DelayEstimates = ests
	} else {
		rep.DelayEstimateErr = "no matched samples"
	}
	return rep, nil
}
