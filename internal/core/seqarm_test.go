package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/receipt"
	"vpm/internal/seqdetect"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

// runSeqRolling replays one deterministic lossy-or-healthy Fig1
// deployment and rolls it up with the given sequential config and
// worker count, returning the per-epoch reports in epoch order.
func runSeqRolling(t *testing.T, lossyLink bool, seq *seqdetect.Config, workers int) ([]EpochReport, Layout) {
	t.Helper()
	tc := equivTraceConfig(1, 20_000, int64(2e8))
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	const intervalNS = int64(5e7)

	path := netsim.Fig1Path(77)
	if lossyLink {
		// Heavy loss on the L→X link, as in
		// TestRollingVerifierFlagsFaultyLink.
		ge, err := lossmodel.FromTargetLoss(0.3, 4, stats.NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		path.Links[1].Loss = ge
	}
	dc := DefaultDeployConfig()
	dc.Default.SampleRate = 0.05
	dep, err := NewDeployment(path, tc.Table(), dc)
	if err != nil {
		t.Fatal(err)
	}
	var hops []receipt.HOPID
	for id := range dep.Collectors {
		hops = append(hops, id)
	}
	win, err := NewWindowedStore(hops, 2)
	if err != nil {
		t.Fatal(err)
	}
	driver, err := NewEpochDriver(dep, intervalNS, win.Sink())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := path.Run(pkts, driver.Observers()); err != nil {
		t.Fatal(err)
	}
	driver.Close()
	win.FinishStream()

	cfg := dep.VerifierConfig()
	cfg.Sequential = seq
	cfg.Workers = workers
	rolling := NewRollingVerifier(dep.Layout(), cfg, win, nil, 0)
	reps, err := rolling.VerifyReady()
	if err != nil {
		t.Fatal(err)
	}
	return reps, dep.Layout()
}

// TestSequentialArmDetectsLossyLinkEarly: with the SPRT arm on, a
// lossy link must produce a sequential loss verdict on the right link
// no later than the batch arm's first flagged epoch + 1 — and the
// batch verdict fields must be unaffected by arming: stripping Seq
// from the armed reports yields encodings byte-identical to an
// unarmed run's.
func TestSequentialArmDetectsLossyLinkEarly(t *testing.T) {
	unarmed, _ := runSeqRolling(t, true, nil, 0)
	armed, layout := runSeqRolling(t, true, &seqdetect.Config{}, 0)
	if len(armed) != len(unarmed) {
		t.Fatalf("armed run has %d reports, unarmed %d", len(armed), len(unarmed))
	}

	// Arming must not perturb the batch verdicts, and an unarmed
	// report's canonical bytes must not mention the Seq field at all
	// (the wire format predating the arm).
	for i := range unarmed {
		ub, err := EncodeEpochReport(unarmed[i])
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(ub, []byte(`"Seq"`)) {
			t.Fatalf("epoch %d: unarmed report encodes a Seq field", unarmed[i].Epoch)
		}
		stripped := armed[i]
		stripped.Seq = nil
		ab, err := EncodeEpochReport(stripped)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ub, ab) {
			t.Fatalf("epoch %d: batch verdict bytes changed when the sequential arm is on", unarmed[i].Epoch)
		}
	}

	firstBatch := -1
	for _, rep := range unarmed {
		for _, k := range rep.Keys {
			for _, lv := range k.Links {
				if lv.LinkID == 1 && !lv.Consistent() && firstBatch < 0 {
					firstBatch = int(rep.Epoch)
				}
			}
		}
	}
	if firstBatch < 0 {
		t.Fatal("batch arm never flagged the lossy link — workload proves nothing")
	}

	link := layout.Links()[1]
	found := false
	for _, rep := range armed {
		for _, v := range rep.Seq {
			if v.Class != seqdetect.ClassLoss {
				continue
			}
			if v.Up != uint32(link.Up) || v.Down != uint32(link.Down) {
				t.Fatalf("sequential loss verdict on link %d->%d, want %v->%v",
					v.Up, v.Down, link.Up, link.Down)
			}
			found = true
			if v.Frac <= 0 || v.Frac > 1 {
				t.Fatalf("crossing fraction %v outside (0,1]", v.Frac)
			}
			if got, bound := v.EpochsToVerdict(), float64(firstBatch)+1; got > bound {
				t.Fatalf("sequential detection at %.3f epochs, batch flagged by %.1f", got, bound)
			}
		}
	}
	if !found {
		t.Fatal("sequential arm emitted no loss verdict for the lossy link")
	}
}

// TestSequentialArmWorkerInvariance: sequential verdicts must be
// identical at any worker-pool size — the evidence replay is serial
// and in deterministic work order regardless of who captured it.
func TestSequentialArmWorkerInvariance(t *testing.T) {
	serial, _ := runSeqRolling(t, true, &seqdetect.Config{}, 1)
	pooled, _ := runSeqRolling(t, true, &seqdetect.Config{}, 8)
	if len(serial) != len(pooled) {
		t.Fatalf("report counts differ: %d vs %d", len(serial), len(pooled))
	}
	for i := range serial {
		sb, err := json.Marshal(serial[i].Seq)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := json.Marshal(pooled[i].Seq)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, pb) {
			t.Fatalf("epoch %d: sequential verdicts differ across pool sizes:\n 1: %s\n 8: %s",
				serial[i].Epoch, sb, pb)
		}
	}
}

// TestSequentialArmHonestRunQuiet: a healthy deployment with the arm
// on yields zero sequential verdicts and zero batch violations.
func TestSequentialArmHonestRunQuiet(t *testing.T) {
	reps, _ := runSeqRolling(t, false, &seqdetect.Config{}, 0)
	for _, rep := range reps {
		if len(rep.Seq) != 0 {
			t.Fatalf("epoch %d: honest run emitted sequential verdicts: %+v", rep.Epoch, rep.Seq)
		}
		if rep.Violations() != 0 {
			t.Fatalf("epoch %d: honest run has batch violations", rep.Epoch)
		}
	}
}
