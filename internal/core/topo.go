package core

import (
	"fmt"
	"sort"

	"vpm/internal/aggregation"
	"vpm/internal/hashing"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/sampling"
)

// This file wires the mesh topology engine into the deployment and
// verification stack. A topology deployment places one collector per
// link-endpoint HOP — a HOP on a shared link files receipts for every
// traffic key crossing it, which the (HOP, key)-indexed ReceiptStore
// holds without change — and verification runs per (traffic key,
// route): each route is a linear HOP sequence, so the whole §4 link
// checking machinery applies route by route, with per-route layouts
// replacing the single linear Layout.

// NewTopoDeployment builds collectors for every routed HOP of every
// deploying domain in the topology. The returned Deployment drives the
// same Processor/Finalize/NewStore pipeline as a linear one (and the
// same EpochDriver for continuous operation); only its layout accessors
// differ — use RouteLayouts/KeyLayouts instead of Layout.
func NewTopoDeployment(topo *netsim.Topology, table *packet.Table, cfg DeployConfig) (*Deployment, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Deployment{
		Topo:             topo,
		Table:            table,
		Collectors:       make(map[receipt.HOPID]PathCollector),
		Processors:       make(map[receipt.HOPID]*Processor),
		markerThreshold:  hashing.ThresholdForRate(cfg.MarkerRate),
		sampleThresholds: make(map[receipt.HOPID]uint64),
	}
	// Only HOPs on some route ever observe traffic; collectors on the
	// rest would drain nothing.
	routed := make(map[receipt.HOPID]bool)
	for ri := range topo.Routes {
		for _, h := range topo.RouteHOPs(ri) {
			routed[h] = true
		}
	}
	hops := make([]int, 0, len(routed))
	for h := range routed {
		hops = append(hops, int(h))
	}
	sort.Ints(hops)
	for _, hi := range hops {
		h := receipt.HOPID(hi)
		dom := &topo.Domains[topo.HOPDomain(h)]
		if cfg.SkipDomains[dom.Name] {
			continue
		}
		tune, ok := cfg.PerDomain[dom.Name]
		if !ok {
			tune = cfg.Default
		}
		col, err := NewPathCollector(CollectorConfig{
			HOP:   h,
			Table: table,
			PathID: func(key packet.PathKey) receipt.PathID {
				return topo.PathIDFor(key, h)
			},
			Sampling: sampling.Config{
				MarkerRate: cfg.MarkerRate,
				SampleRate: tune.SampleRate,
			},
			Aggregation: aggregation.Config{
				CutRate:  tune.AggRate,
				WindowNS: cfg.WindowNS,
			},
			Shards: cfg.Shards,
		})
		if err != nil {
			return nil, fmt.Errorf("core: HOP %v: %w", h, err)
		}
		d.Collectors[h] = col
		d.Processors[h] = NewProcessor(col)
		d.sampleThresholds[h] = hashing.ThresholdForRate(tune.SampleRate)
	}
	// Route layouts are pure functions of the (immutable) topology;
	// they are derived lazily on first KeyLayouts call so collector-
	// only processes (fleet collectors never verify) skip the cost —
	// at a million keys the layout cache is the deployment's largest
	// allocation.
	return d, nil
}

// RouteLayout derives the verifier layout of one route: the route's
// HOP sequence with alternating link and domain segments, explicit
// owning-domain names on every segment, and ECMP branch/merge domain
// segments marked Partial (the two HOPs see different subsets of the
// key's traffic there, so aggregate loss is not comparable across
// them).
func (d *Deployment) RouteLayout(ri int) Layout {
	topo := d.Topo
	rt := &topo.Routes[ri]
	hops := topo.RouteHOPs(ri)
	doms := topo.RouteDomains(ri)
	// Which of the key's routes cross each HOP — different sets at a
	// domain segment's two ends mean an ECMP branch or merge there.
	// The comparison is on the route *sets*, not their sizes: two HOPs
	// crossed by equally many but different routes (a domain that is
	// both a branch and a merge point) still see different packet
	// subsets.
	share := func(h receipt.HOPID) string {
		var sig []byte
		for _, rj := range topo.RoutesForKey(rt.Key) {
			for _, hh := range topo.RouteHOPs(rj) {
				if hh == h {
					sig = append(sig, byte(rj), byte(rj>>8))
					break
				}
			}
		}
		return string(sig) // RoutesForKey is ordered, so the signature is canonical
	}
	var l Layout
	l.HOPs = append(l.HOPs, hops...)
	for j := range rt.Links {
		from, to := topo.Domains[doms[j]].Name, topo.Domains[doms[j+1]].Name
		l.Segments = append(l.Segments, Segment{
			Kind:       LinkSegment,
			Up:         hops[2*j],
			Down:       hops[2*j+1],
			Name:       from + "-" + to,
			UpDomain:   from,
			DownDomain: to,
		})
		if j+1 < len(rt.Links) {
			name := topo.Domains[doms[j+1]].Name
			in, eg := hops[2*j+1], hops[2*j+2]
			l.Segments = append(l.Segments, Segment{
				Kind:       DomainSegment,
				Up:         in,
				Down:       eg,
				Name:       name,
				UpDomain:   name,
				DownDomain: name,
				Partial:    share(in) != share(eg),
			})
		}
	}
	return l
}

// RouteLayouts returns every route's layout, indexed like
// Topology.Routes.
func (d *Deployment) RouteLayouts() []Layout {
	out := make([]Layout, len(d.Topo.Routes))
	for i := range out {
		out[i] = d.RouteLayout(i)
	}
	return out
}

// KeyLayouts groups the route layouts by traffic key, in route-table
// order — the map RollingVerifier.SetKeyLayouts consumes for mesh
// verification, and the unit batch verification iterates: one
// verification sweep per (key, route layout). The map is built on
// first call and cached (layouts are immutable once built); do not
// mutate it.
func (d *Deployment) KeyLayouts() map[packet.PathKey][]Layout {
	d.keyLayoutsOnce.Do(func() {
		d.keyLayouts = d.KeyLayoutsFor(nil)
	})
	return d.keyLayouts
}

// KeyLayoutsFor builds the route-layout map for the keys keep admits
// (nil keeps every key) — the key-sliced verifier view a fleet shard
// uses: a verifier responsible for 1/Nth of the key space materializes
// layouts for its slice only, instead of the whole route table's.
// Each call builds a fresh map; for the unfiltered shared cache use
// KeyLayouts.
func (d *Deployment) KeyLayoutsFor(keep func(packet.PathKey) bool) map[packet.PathKey][]Layout {
	out := make(map[packet.PathKey][]Layout)
	for ri := range d.Topo.Routes {
		key := d.Topo.Routes[ri].Key
		if keep != nil && !keep(key) {
			continue
		}
		out[key] = append(out[key], d.RouteLayout(ri))
	}
	return out
}
