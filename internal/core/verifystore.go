package core

import (
	"runtime"
	"sort"
	"sync"

	"vpm/internal/hashing"
	"vpm/internal/packet"
	"vpm/internal/receipt"
)

// ReceiptStore is the indexed receipt store behind the verifier.
// Receipts from every HOP on a path — or from every HOP on many paths
// — are filed under their (HOP, traffic-key) receipt.StoreKey as they
// arrive, so a link check matches the two ends of a link with index
// lookups instead of re-scanning flat per-HOP slices.
//
// Beyond the raw sample map, each index maintains two derived views,
// built lazily and cached:
//
//   - the deduplicated packet order (first-arrival order of distinct
//     PktIDs), which makes every verifier iteration deterministic
//     instead of following Go map order;
//   - the marker timeline (time-sorted samples whose digest exceeds
//     the system-wide µ), which turns the Algorithm 1 re-derivation in
//     missing-record checks from a scan over all of a HOP's samples
//     into a binary search.
//
// Concurrency: ingest calls (AddSamples, AddAggs, IngestBundle) may
// run concurrently with each other — a store can drain several
// dissemination fetches at once. Verification may run concurrently
// with verification (the worker pools of VerifyAllLinks and
// DomainReports read the same store from many goroutines), but not
// with ingest: quiesce ingestion before verifying.
type ReceiptStore struct {
	mu     sync.Mutex
	idx    map[receipt.StoreKey]*pathIndex
	byHOP  map[receipt.HOPID][]*pathIndex // creation order per HOP
	merged map[receipt.HOPID]*pathIndex   // cached multi-key merges
}

// NewReceiptStore returns an empty indexed receipt store.
func NewReceiptStore() *ReceiptStore {
	return &ReceiptStore{
		idx:    make(map[receipt.StoreKey]*pathIndex),
		byHOP:  make(map[receipt.HOPID][]*pathIndex),
		merged: make(map[receipt.HOPID]*pathIndex),
	}
}

// pathIndex holds everything one HOP reported about one traffic key.
// The store's mutex guards index creation; the index's own mutex
// guards every field, so concurrent readers (verification workers)
// and the lazy cache builds stay race-free.
type pathIndex struct {
	mu sync.Mutex

	pathID  receipt.PathID
	hasPath bool
	byID    map[uint64]int64 // PktID -> observation time (last write wins)
	ordered []receipt.SampleRecord
	aggs    []receipt.AggReceipt

	// Derived caches; dirty is set on every sample append.
	dirty    bool
	uniq     []uint64               // distinct PktIDs, first-arrival order
	markers  []receipt.SampleRecord // time-sorted (stable) markers under markerMu
	markerMu uint64
}

// index returns (creating if needed) the index for key. It is only
// called on ingest, so the HOP's cached merged view — a snapshot of
// all its indexes — is invalidated unconditionally.
func (s *ReceiptStore) index(key receipt.StoreKey) *pathIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.merged, key.HOP)
	pi, ok := s.idx[key]
	if !ok {
		pi = &pathIndex{byID: make(map[uint64]int64)}
		s.idx[key] = pi
		s.byHOP[key.HOP] = append(s.byHOP[key.HOP], pi)
	}
	return pi
}

// AddSamples files one sample receipt under its store key.
func (s *ReceiptStore) AddSamples(hop receipt.HOPID, r receipt.SampleReceipt) {
	pi := s.index(receipt.KeyOf(hop, r.Path))
	pi.mu.Lock()
	defer pi.mu.Unlock()
	for _, rec := range r.Samples {
		pi.byID[rec.PktID] = rec.TimeNS
	}
	pi.ordered = append(pi.ordered, r.Samples...)
	pi.pathID, pi.hasPath = r.Path, true
	pi.dirty = true
}

// AddAggs files one HOP's aggregate receipts, in stream order. The
// receipts may span several traffic keys; each lands in its own index.
func (s *ReceiptStore) AddAggs(hop receipt.HOPID, rs []receipt.AggReceipt) {
	for i := 0; i < len(rs); {
		j := i + 1
		for j < len(rs) && rs[j].Path.Key == rs[i].Path.Key {
			j++
		}
		pi := s.index(receipt.KeyOf(hop, rs[i].Path))
		pi.mu.Lock()
		pi.aggs = append(pi.aggs, rs[i:j]...)
		if !pi.hasPath {
			pi.pathID, pi.hasPath = rs[i].Path, true
		}
		pi.mu.Unlock()
		i = j
	}
}

// Keys returns the distinct traffic keys the store has receipts for,
// in packet.PathKey order — the deterministic iteration order for
// multi-path verification sweeps.
func (s *ReceiptStore) Keys() []packet.PathKey {
	s.mu.Lock()
	seen := make(map[packet.PathKey]bool)
	var out []packet.PathKey
	for k := range s.idx {
		if !seen[k.Key] {
			seen[k.Key] = true
			out = append(out, k.Key)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// lookup returns the index for (hop, key) without creating it, or nil.
func (s *ReceiptStore) lookup(hop receipt.HOPID, key packet.PathKey) *pathIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx[receipt.StoreKey{HOP: hop, Key: key}]
}

// hopView returns the index serving unrestricted queries about hop:
// the HOP's sole index when it reported one traffic key, or a cached
// merge of all its indexes (in creation order) when it reported
// several — the flat-pool semantics hand-built verifiers relied on
// before the store existed.
func (s *ReceiptStore) hopView(hop receipt.HOPID) *pathIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.byHOP[hop]
	switch len(list) {
	case 0:
		return nil
	case 1:
		return list[0]
	}
	if m, ok := s.merged[hop]; ok {
		return m
	}
	m := &pathIndex{byID: make(map[uint64]int64)}
	for _, pi := range list {
		pi.mu.Lock()
		for _, rec := range pi.ordered {
			m.byID[rec.PktID] = rec.TimeNS
		}
		m.ordered = append(m.ordered, pi.ordered...)
		m.aggs = append(m.aggs, pi.aggs...)
		if pi.hasPath {
			m.pathID, m.hasPath = pi.pathID, true
		}
		pi.mu.Unlock()
	}
	m.dirty = true
	s.merged[hop] = m
	return m
}

// path returns the index's PathID claim.
func (pi *pathIndex) path() (receipt.PathID, bool) {
	if pi == nil {
		return receipt.PathID{}, false
	}
	pi.mu.Lock()
	defer pi.mu.Unlock()
	return pi.pathID, pi.hasPath
}

// sampleCount returns the number of distinct sampled packets.
func (pi *pathIndex) sampleCount() int {
	if pi == nil {
		return 0
	}
	pi.mu.Lock()
	defer pi.mu.Unlock()
	return len(pi.byID)
}

// timeOf returns the observation time of one packet.
func (pi *pathIndex) timeOf(id uint64) (int64, bool) {
	if pi == nil {
		return 0, false
	}
	pi.mu.Lock()
	defer pi.mu.Unlock()
	t, ok := pi.byID[id]
	return t, ok
}

// aggReceipts returns the index's aggregate receipts in stream order.
// The returned slice is shared: callers must not mutate it.
func (pi *pathIndex) aggReceipts() []receipt.AggReceipt {
	if pi == nil {
		return nil
	}
	pi.mu.Lock()
	defer pi.mu.Unlock()
	return pi.aggs
}

// snapshot returns the deduplicated packet order and the sample map.
// Both are shared, read-only views: the uniq slice is rebuilt (never
// mutated in place) and byID is only written under ingest, which is
// excluded during verification.
func (pi *pathIndex) snapshot() (uniq []uint64, byID map[uint64]int64) {
	if pi == nil {
		return nil, nil
	}
	pi.mu.Lock()
	defer pi.mu.Unlock()
	pi.rebuildLocked()
	return pi.uniq, pi.byID
}

// markerTimeline returns the time-sorted marker samples under µ = mu.
// The slice is rebuilt on µ changes and never mutated in place.
func (pi *pathIndex) markerTimeline(mu uint64) []receipt.SampleRecord {
	if pi == nil {
		return nil
	}
	pi.mu.Lock()
	defer pi.mu.Unlock()
	pi.rebuildLocked()
	if pi.markerMu != mu || pi.markers == nil {
		markers := make([]receipt.SampleRecord, 0, 8)
		for _, rec := range pi.ordered {
			if hashing.Exceeds(rec.PktID, mu) {
				markers = append(markers, rec)
			}
		}
		// Stable: among markers with equal timestamps the earliest
		// arrival stays first, matching the pre-index linear scan.
		sort.SliceStable(markers, func(a, b int) bool { return markers[a].TimeNS < markers[b].TimeNS })
		pi.markers, pi.markerMu = markers, mu
	}
	return pi.markers
}

// rebuildLocked refreshes the uniq cache; pi.mu must be held.
func (pi *pathIndex) rebuildLocked() {
	if !pi.dirty && pi.uniq != nil {
		return
	}
	seen := make(map[uint64]bool, len(pi.byID))
	uniq := make([]uint64, 0, len(pi.byID))
	for _, rec := range pi.ordered {
		if !seen[rec.PktID] {
			seen[rec.PktID] = true
			uniq = append(uniq, rec.PktID)
		}
	}
	pi.uniq = uniq
	pi.dirty = false
	pi.markers = nil // timeline derives from ordered; rebuild on demand
}

// markerAtOrAfter returns the PktID of the earliest marker observed at
// or after t on the timeline (ties broken by arrival order), or false
// when no marker followed.
func markerAtOrAfter(timeline []receipt.SampleRecord, t int64) (uint64, bool) {
	i := sort.Search(len(timeline), func(i int) bool { return timeline[i].TimeNS >= t })
	if i == len(timeline) {
		return 0, false
	}
	return timeline[i].PktID, true
}

// runParallel executes fn(0..n-1) on min(workers, n) goroutines.
// workers <= 1 runs inline. Tasks are claimed from a shared counter,
// so callers get determinism by writing results into index i — never
// by relying on execution order.
func runParallel(workers, n int, fn func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// resolveWorkers maps a VerifierConfig.Workers value to a concrete
// pool size: 0 means GOMAXPROCS, anything else is taken literally
// (floored at 1).
func resolveWorkers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}
