package core

import (
	"vpm/internal/receipt"
	"vpm/internal/stats"
)

// This file implements the lying-domain strategies of the threat model
// (§2.1): domains that construct receipts from incomplete or
// fabricated information to exaggerate their performance. Each
// strategy is a transformation over honest receipts — what a lying
// control plane would emit instead of the truth. The verifier tests
// then show each lie either surfacing as an inter-domain inconsistency
// that exposes the liar to the neighbor it implicates, or requiring a
// colluder to absorb the blame (§3.1).

// FabricateDelivery is the blame-shift lie: domain X dropped packets
// but claims it delivered everything. Its egress receipts are forged
// from its ingress receipts — every packet that entered is reported as
// delivered claimedDelayNS later (a flattering, constant transit
// time). The forged egress claims are inconsistent with the downstream
// neighbor's ingress receipts, which expose the missing packets.
func FabricateDelivery(ingressSamples receipt.SampleReceipt, ingressAggs []receipt.AggReceipt,
	egressPath receipt.PathID, claimedDelayNS int64) (receipt.SampleReceipt, []receipt.AggReceipt) {

	fs := receipt.SampleReceipt{Path: egressPath}
	for _, s := range ingressSamples.Samples {
		fs.Samples = append(fs.Samples, receipt.SampleRecord{
			PktID:  s.PktID,
			TimeNS: s.TimeNS + claimedDelayNS,
		})
	}
	var fa []receipt.AggReceipt
	for _, a := range ingressAggs {
		f := receipt.AggReceipt{
			Path:   egressPath,
			Agg:    a.Agg,
			PktCnt: a.PktCnt, // claims zero loss
		}
		for _, t := range a.AggTrans {
			f.AggTrans = append(f.AggTrans, receipt.SampleRecord{PktID: t.PktID, TimeNS: t.TimeNS + claimedDelayNS})
		}
		fa = append(fa, f)
	}
	return fs, fa
}

// ShaveDelays is the delay-exaggeration lie: the liar reports its
// egress timestamps compressed toward its ingress timestamps so its
// delay quantiles look better. factor 0 reports zero transit time;
// factor 1 is honest. The compressed egress times understate the time
// the packets reached the next HOP, so the link deltas blow past
// MaxDiff and the lie surfaces as DelayBound inconsistencies.
func ShaveDelays(ingress, egress receipt.SampleReceipt, factor float64) receipt.SampleReceipt {
	inTime := make(map[uint64]int64, len(ingress.Samples))
	for _, s := range ingress.Samples {
		inTime[s.PktID] = s.TimeNS
	}
	out := receipt.SampleReceipt{Path: egress.Path}
	for _, s := range egress.Samples {
		t := s.TimeNS
		if tin, ok := inTime[s.PktID]; ok {
			t = tin + int64(float64(s.TimeNS-tin)*factor)
		}
		out.Samples = append(out.Samples, receipt.SampleRecord{PktID: s.PktID, TimeNS: t})
	}
	return out
}

// CoverUpReceipt is the collusion lie: downstream neighbor N covers
// X's fabricated deliveries by claiming it received the packets X
// never delivered. N's forged ingress receipt echoes X's (fabricated)
// egress claims shifted by a plausible link delay. N now holds the
// blame: either its own egress receipts show the loss inside N, or N
// must lie to *its* downstream neighbor and be exposed there (§3.1).
func CoverUpReceipt(liarEgress receipt.SampleReceipt, ownPath receipt.PathID, linkDelayNS int64) receipt.SampleReceipt {
	out := receipt.SampleReceipt{Path: ownPath}
	for _, s := range liarEgress.Samples {
		out.Samples = append(out.Samples, receipt.SampleRecord{
			PktID:  s.PktID,
			TimeNS: s.TimeNS + linkDelayNS,
		})
	}
	return out
}

// CoverUpAggs forges N's ingress aggregate receipts to match X's
// fabricated counts.
func CoverUpAggs(liarEgress []receipt.AggReceipt, ownPath receipt.PathID, linkDelayNS int64) []receipt.AggReceipt {
	var out []receipt.AggReceipt
	for _, a := range liarEgress {
		f := receipt.AggReceipt{Path: ownPath, Agg: a.Agg, PktCnt: a.PktCnt}
		for _, t := range a.AggTrans {
			f.AggTrans = append(f.AggTrans, receipt.SampleRecord{PktID: t.PktID, TimeNS: t.TimeNS + linkDelayNS})
		}
		out = append(out, f)
	}
	return out
}

// DropSamples is the under-reporting lie: the liar omits a fraction of
// its sample records (e.g. the ones with embarrassing delays),
// hoping the verifier's estimate improves. Omitted records for
// packets that other HOPs reported become missing-record evidence.
func DropSamples(r receipt.SampleReceipt, dropFraction float64, seed uint64) receipt.SampleReceipt {
	rng := stats.NewRNG(seed)
	out := receipt.SampleReceipt{Path: r.Path}
	for _, s := range r.Samples {
		if rng.Bool(dropFraction) {
			continue
		}
		out.Samples = append(out.Samples, s)
	}
	return out
}

// BiasedSampler models the §3.2 attack against Trajectory Sampling ++:
// a domain that knows, at forwarding time, whether a packet is
// sampled, and treats sampled packets preferentially. Against VPM the
// predicate is unknowable at forwarding time — a domain would have to
// buffer all traffic for the marker interval (~10 ms), visibly
// inflating its delay (§5.1) — so this type exists for the baseline
// comparison experiments.
type BiasedSampler struct {
	// IsSampled is the adversary's predictor. For TS++ it is exact
	// (digest > threshold is checkable immediately); for VPM any
	// predictor is no better than chance.
	IsSampled func(digest uint64) bool
}

// ShouldPrefer implements the netsim preferential-treatment hook.
func (b *BiasedSampler) ShouldPrefer(digest uint64) bool {
	return b.IsSampled != nil && b.IsSampled(digest)
}
