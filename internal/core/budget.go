package core

// AllocsPerPktBudget is the documented steady-state allocation budget
// of the batch hot path: the CI zero-alloc gate (the root package's
// BenchmarkObserveBatchSharded) and TestObserveBatchSteadyStateZeroAlloc
// fail when ObserveBatch exceeds it. The budget is not exactly zero
// because closing an aggregate (at the configured ~1e-5 cut rate)
// legitimately allocates its AggTrans window; per packet that is
// orders of magnitude below this ceiling.
const AllocsPerPktBudget = 0.001
