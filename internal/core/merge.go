package core

import (
	"errors"
	"fmt"
	"sort"
)

// Verdict merge: recombining one epoch's per-shard partial reports
// into the union report a single-process verifier would have emitted.
//
// The fleet's verifier tier splits the key space across processes, so
// each shard's EpochReport covers a disjoint subset of the epoch's
// traffic keys. Per-key verification reads only that key's receipts
// (restricted verifiers never touch foreign indexes), so a shard's
// per-key reports are bit-for-bit the ones the whole-store verifier
// computes — recovering the union is purely an ordering problem. A
// single-process report lists keys in claims.Keys() order (PathKey
// order, routes in layout order within a key), so sorting the
// concatenated shard entries by (key, route) reproduces the exact
// sequence, and EncodeEpochReport of the merge is byte-identical to
// the single-process encoding at any shard count.

// ErrBadMerge reports per-shard epoch reports that cannot form one
// union report: mismatched epochs, a (key, route) claimed by two
// shards, or sequential (SPRT) verdicts, whose engine state is global
// across keys and cannot be recombined from key slices.
var ErrBadMerge = errors.New("core: epoch reports not mergeable")

// MergeEpochReports merges one epoch's per-shard partial reports into
// the union report. All parts must cover the same epoch and disjoint
// (key, route) sets, and none may carry sequential verdicts (fleet
// shards run with the SPRT arm off); violations return an error
// wrapping ErrBadMerge. Parts may be empty (a shard that owned no keys
// with traffic this epoch); an all-empty merge yields the same empty
// report a single process emits for an idle epoch.
func MergeEpochReports(parts []EpochReport) (EpochReport, error) {
	if len(parts) == 0 {
		return EpochReport{}, fmt.Errorf("%w: no parts", ErrBadMerge)
	}
	out := EpochReport{Epoch: parts[0].Epoch}
	n := 0
	for i := range parts {
		if parts[i].Epoch != out.Epoch {
			return EpochReport{}, fmt.Errorf("%w: part covers epoch %d, want %d", ErrBadMerge, parts[i].Epoch, out.Epoch)
		}
		if len(parts[i].Seq) > 0 {
			return EpochReport{}, fmt.Errorf("%w: part for epoch %d carries sequential verdicts", ErrBadMerge, out.Epoch)
		}
		n += len(parts[i].Keys)
	}
	if n == 0 {
		// Keep Keys nil, not empty: the canonical encoding of an idle
		// epoch spells null, and the merge must reproduce it.
		return out, nil
	}
	out.Keys = make([]EpochKeyReport, 0, n)
	for i := range parts {
		out.Keys = append(out.Keys, parts[i].Keys...)
	}
	sort.Slice(out.Keys, func(i, j int) bool {
		if c := out.Keys[i].Key.Compare(out.Keys[j].Key); c != 0 {
			return c < 0
		}
		return out.Keys[i].Route < out.Keys[j].Route
	})
	for i := 1; i < len(out.Keys); i++ {
		if out.Keys[i].Key == out.Keys[i-1].Key && out.Keys[i].Route == out.Keys[i-1].Route {
			return EpochReport{}, fmt.Errorf("%w: key %v route %d reported by two shards", ErrBadMerge, out.Keys[i].Key, out.Keys[i].Route)
		}
	}
	return out, nil
}
