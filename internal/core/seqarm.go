package core

import (
	"vpm/internal/hashing"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/seqdetect"
)

// The sequential arm (VerifierConfig.Sequential) runs Wald SPRT /
// Bayes-factor detectors concurrently with the per-epoch batch checks.
// The batch checks stay the ground truth — their verdict bytes are
// identical whether the arm is on or off — while the sequential arm
// accumulates per-packet evidence across epochs and can flag a lying
// link after a fraction of one epoch's packets.
//
// Determinism: the link and domain checks run on a worker pool, so
// evidence is first captured into a per-work-item seqCollector during
// the parallel sweep, then fed to the engine serially in work order
// once the sweep completes. The engine therefore sees the exact same
// stream at any pool size, and crossings land on the same packet
// (TestSequentialArmWorkerInvariance).

// seqBatch is one evidence batch bound for the engine: the detector
// scope, the evidence class, and the items in claims order.
type seqBatch struct {
	scope seqdetect.Scope
	class seqdetect.Class
	items []seqdetect.Evidence
}

// seqCollector buffers one work item's evidence batches during the
// parallel sweep. Each work item owns its collector exclusively, so no
// locking is needed.
type seqCollector struct {
	batches []seqBatch
}

// add appends one batch; empty batches are kept too — feeding zero
// items is harmless and keeps the feed loop trivial.
func (c *seqCollector) add(scope seqdetect.Scope, class seqdetect.Class, items []seqdetect.Evidence) {
	c.batches = append(c.batches, seqBatch{scope: scope, class: class, items: items})
}

// seqLinkScope names a link detector's scope.
func seqLinkScope(key packet.PathKey, up, down receipt.HOPID) seqdetect.Scope {
	return seqdetect.Scope{Key: key.String(), Up: uint32(up), Down: uint32(down)}
}

// seqDomainScope names a domain-segment bias detector's scope.
func seqDomainScope(key packet.PathKey, seg Segment) seqdetect.Scope {
	return seqdetect.Scope{
		Key:    key.String(),
		Up:     uint32(seg.Up),
		Down:   uint32(seg.Down),
		Domain: seg.Name,
	}
}

// seqMarkerKind classifies a domain delay sample for the bias
// detector: markers versus σ-samples, by the same hash-threshold rule
// the HOPs use (§3).
func seqMarkerKind(pid, mu uint64) seqdetect.Kind {
	if hashing.Exceeds(pid, mu) {
		return seqdetect.KindMarkerDelta
	}
	return seqdetect.KindOtherDelta
}

// feedSequential drains the work items' collectors into the engine in
// work order, then closes the epoch and returns the epoch's new
// sequential verdicts. Must be called from the single verification
// goroutine only.
func (rv *RollingVerifier) feedSequential(epoch EpochID, cols []*seqCollector) []seqdetect.SeqVerdict {
	if rv.seq == nil {
		return nil
	}
	for _, col := range cols {
		if col == nil {
			continue
		}
		for _, b := range col.batches {
			rv.seq.Observe(b.scope, b.class, b.items)
		}
	}
	return rv.seq.EndEpoch(uint64(epoch))
}

// SeqVerdicts returns every sequential verdict the arm has emitted so
// far, in emission order; nil when the arm is off.
func (rv *RollingVerifier) SeqVerdicts() []seqdetect.SeqVerdict {
	if rv.seq == nil {
		return nil
	}
	return rv.seq.Verdicts()
}
