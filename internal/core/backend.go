package core

import (
	"encoding/json"
	"fmt"

	"vpm/internal/receipt"
)

// StoreBackend is the durable persistence hook beneath a
// WindowedStore. RAM remains the evidence window — the backend only
// sees receipts at their seal points, mirroring each (HOP, epoch) to
// stable storage as the HOP commits to it, so a continuous deployment
// can be killed and restarted without losing judged history. The
// production implementation is segstore.Store (wired by cmd/vpm-node);
// the interface lives here so core never imports the storage layer.
//
// Call order per epoch: AppendEpochHOP once per expected HOP (exactly
// when that HOP seals the epoch — its receipt set is final), then
// SealEpoch once when the last HOP seals. A backend must make
// SealEpoch the durability point: after it returns, the epoch must
// survive kill -9; before it, the epoch is discardable. PutReport
// files the epoch's canonical verdict bytes (EncodeEpochReport) after
// verification; LastSealed and HasReport drive crash recovery (see
// AttachBackend).
type StoreBackend interface {
	AppendEpochHOP(epoch EpochID, hop receipt.HOPID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) error
	SealEpoch(epoch EpochID) error
	LastSealed() (EpochID, bool)
	HasReport(epoch EpochID) bool
	PutReport(epoch EpochID, encoded []byte) error
}

// EncodeEpochReport renders the canonical verdict bytes for one epoch
// report: deterministic JSON (every report type is structs and slices
// — no maps — so encoding is order-stable). The kill-9 e2e harness
// asserts byte identity of these encodings across crash-recovery, and
// the historical query API serves them verbatim.
func EncodeEpochReport(rep EpochReport) ([]byte, error) {
	return json.Marshal(rep)
}

// DecodeEpochReport parses EncodeEpochReport's output.
func DecodeEpochReport(data []byte) (EpochReport, error) {
	var rep EpochReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("core: decoding epoch report: %w", err)
	}
	return rep, nil
}

// AttachBackend wires a durable backend beneath the window. The
// backend's last durably sealed epoch becomes the recovery watermark:
// epochs at or below it are not re-persisted when the stream is
// re-executed (they are already durable — re-appending would
// double-count), and epochs with a durable verdict report skip
// re-verification entirely (see RollingVerifier.VerifyReady),
// counting as recovered instead.
//
// Attach before ingest starts. Recovery by re-execution relies on the
// deterministic pipeline: the restarted process replays the stream
// from epoch 0, rebuilding the RAM window (whose ±1-epoch evidence
// reach spans the watermark boundary) while the backend filters what
// is already on disk.
func (w *WindowedStore) AttachBackend(b StoreBackend) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.backend = b
	w.durable, w.hasDurable = b.LastSealed()
}

// DurableWatermark returns the backend's last durably sealed epoch at
// attach time; false with no backend or a fresh one.
func (w *WindowedStore) DurableWatermark() (EpochID, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.backend == nil {
		return 0, false
	}
	return w.durable, w.hasDurable
}

// Recovered returns how many epochs skipped re-verification because a
// durable verdict report already existed.
func (w *WindowedStore) Recovered() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recovered
}

// durableSealLocked reports whether epoch was already durably sealed
// before this process attached — persistence must skip it.
func (w *WindowedStore) durableSealLocked(epoch EpochID) bool {
	return w.hasDurable && epoch <= w.durable
}

// skipRecovered reports whether epoch's verification can be skipped:
// it was durably sealed before attach AND a durable verdict report
// exists. When it can, the epoch is marked verified (the durable
// report stands as its verdict) and counted as recovered.
func (w *WindowedStore) skipRecovered(epoch EpochID) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.backend == nil || !w.durableSealLocked(epoch) || !w.backend.HasReport(epoch) {
		return false
	}
	if seg, ok := w.segs[epoch]; ok {
		seg.verified = true
	}
	w.recovered++
	return true
}

// persistReport files the canonical encoding of rep with the backend;
// a no-op without one.
func (w *WindowedStore) persistReport(rep EpochReport) error {
	w.mu.Lock()
	b := w.backend
	w.mu.Unlock()
	if b == nil {
		return nil
	}
	data, err := EncodeEpochReport(rep)
	if err != nil {
		return fmt.Errorf("core: encoding epoch %d report: %w", rep.Epoch, err)
	}
	if err := b.PutReport(rep.Epoch, data); err != nil {
		return fmt.Errorf("core: persisting epoch %d report: %w", rep.Epoch, err)
	}
	return nil
}
