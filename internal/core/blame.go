package core

import (
	"fmt"
	"sort"
	"strings"

	"vpm/internal/packet"
	"vpm/internal/receipt"
)

// This file turns raw verification outcomes into blame attributions:
// each finding names the *narrowest* implicated link/domain set the
// evidence supports and classifies the evidence itself. The paper's
// §3.1 argument is exactly this shape — a receipt inconsistency at an
// inter-domain link implicates the two adjacent domains and no one
// else ("the liar is exposed to the neighbor it implicated"), while
// dissemination-layer misbehavior (a bad signature, a replayed epoch,
// two contradictory signed bundles) is self-incriminating and narrows
// the blame to the single origin HOP.

// EvidenceClass classifies the proof behind one blame finding.
type EvidenceClass int

// The evidence classes a verifier can hold against a domain.
const (
	// EvMissingReceipt: sample records expected under the advertised
	// thresholds are absent in one direction (fabrication,
	// suppression, under-reporting, or genuine link loss).
	EvMissingReceipt EvidenceClass = iota
	// EvInconsistentAggregate: the two ends of a link report different
	// packet counts for the same aggregate.
	EvInconsistentAggregate
	// EvDelayBound: a matched sample's link delta exceeds the
	// advertised MaxDiff (delay under-reporting, or a broken clock).
	EvDelayBound
	// EvMaxDiffMismatch: the two ends advertise different MaxDiff
	// bounds for their shared link.
	EvMaxDiffMismatch
	// EvMarkerBias: the predictable marker samples transit
	// systematically faster than the unpredictable σ-keyed samples —
	// impossible for honest treatment of a uniform hash subsample.
	EvMarkerBias
	// EvSignature: a bundle failed authentication against the origin's
	// registered key.
	EvSignature
	// EvEpochReplay: a validly signed bundle arrived for a (HOP,
	// epoch) that was already sealed — a stale replay or duplicate.
	EvEpochReplay
	// EvWithheldBundle: an expected HOP never published an epoch's
	// bundle, leaving the epoch permanently unverifiable.
	EvWithheldBundle
	// EvBundleGap: a publisher pruned bundles a lagging cursor had not
	// consumed — receipts are permanently missing.
	EvBundleGap
	// EvEquivocation: the same origin served two validly signed,
	// mismatched bundles for the same sequence number to different
	// verifiers — non-repudiable proof of lying.
	EvEquivocation
)

// String names the evidence class.
func (e EvidenceClass) String() string {
	switch e {
	case EvMissingReceipt:
		return "missing-receipt"
	case EvInconsistentAggregate:
		return "inconsistent-aggregate"
	case EvDelayBound:
		return "delay-bound"
	case EvMaxDiffMismatch:
		return "maxdiff-mismatch"
	case EvMarkerBias:
		return "marker-bias"
	case EvSignature:
		return "signature"
	case EvEpochReplay:
		return "epoch-replay"
	case EvWithheldBundle:
		return "withheld-bundle"
	case EvBundleGap:
		return "bundle-gap"
	case EvEquivocation:
		return "equivocation"
	default:
		return fmt.Sprintf("evidence(%d)", int(e))
	}
}

// Blame is one attribution: the narrowest implicated HOP/domain set
// for one class of evidence in one epoch.
type Blame struct {
	// Epoch the implicated claims were sealed in (0 in batch mode).
	Epoch EpochID
	// Evidence classifies the proof.
	Evidence EvidenceClass
	// LinkID is the implicated link's ordinal along the path
	// (Layout.Links order), or -1 when the evidence implicates HOPs
	// directly rather than through a link check.
	LinkID int
	// HOPs is the narrowest implicated HOP set: the two ends of a link
	// for receipt inconsistencies, the single origin for
	// dissemination-layer evidence.
	HOPs []receipt.HOPID
	// Domains names the domains owning those HOPs.
	Domains []string
	// Count is the number of supporting violations or events.
	Count int
	// Detail elaborates the first supporting finding.
	Detail string
}

// String renders the blame finding.
func (b Blame) String() string {
	who := make([]string, len(b.HOPs))
	for i, h := range b.HOPs {
		who[i] = h.String()
	}
	return fmt.Sprintf("epoch %d: %s ×%d implicates {%s} (%s)",
		b.Epoch, b.Evidence, b.Count, strings.Join(who, ","), strings.Join(b.Domains, ","))
}

// LinkDomains returns the names of the two domains adjacent to the
// given link ordinal (Layout.Links order), from the segment's explicit
// UpDomain/DownDomain fields. Layouts from older builders carry only
// the "A-B" segment name; those fall back to splitting the name on "-"
// — a linear-path-era convention that misattributes when the upstream
// domain's own name contains a hyphen (mesh generators and real AS
// names legitimately do), which is why the explicit fields exist.
// ok is false for an out-of-range ordinal.
func (l Layout) LinkDomains(linkID int) (up, down string, ok bool) {
	links := l.Links()
	if linkID < 0 || linkID >= len(links) {
		return "", "", false
	}
	if s := links[linkID]; s.UpDomain != "" || s.DownDomain != "" {
		return s.UpDomain, s.DownDomain, true
	}
	parts := strings.SplitN(links[linkID].Name, "-", 2)
	if len(parts) != 2 {
		return "", "", false
	}
	return parts[0], parts[1], true
}

// evidenceOf maps a receipt inconsistency kind onto its evidence
// class.
func evidenceOf(k receipt.InconsistencyKind) EvidenceClass {
	switch k {
	case receipt.MaxDiffMismatch:
		return EvMaxDiffMismatch
	case receipt.DelayBound:
		return EvDelayBound
	case receipt.CountMismatch:
		return EvInconsistentAggregate
	default: // MissingDownstream, MissingUpstream
		return EvMissingReceipt
	}
}

// AttributeBlame condenses link verdicts into blame findings: one
// finding per (link, evidence class) with a violation, each naming the
// two HOPs at the link's ends and their owning domains — the
// narrowest set a single-link inconsistency can implicate (§3.1).
// Findings are ordered by (LinkID, Evidence), so attribution is as
// deterministic as the verdicts it summarizes.
func AttributeBlame(layout Layout, epoch EpochID, verdicts []LinkVerdict) []Blame {
	var out []Blame
	for _, lv := range verdicts {
		if lv.Consistent() {
			continue
		}
		byClass := make(map[EvidenceClass]*Blame)
		var order []EvidenceClass
		for _, v := range lv.Violations {
			ev := evidenceOf(v.Kind)
			b, ok := byClass[ev]
			if !ok {
				up, down, _ := layout.LinkDomains(lv.LinkID)
				b = &Blame{
					Epoch:    epoch,
					Evidence: ev,
					LinkID:   lv.LinkID,
					HOPs:     []receipt.HOPID{lv.Up, lv.Down},
					Domains:  []string{up, down},
					Detail:   v.String(),
				}
				byClass[ev] = b
				order = append(order, ev)
			}
			b.Count++
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, ev := range order {
			out = append(out, *byClass[ev])
		}
	}
	return out
}

// BlameMarkerBias builds the attribution for a suspicious marker-bias
// verdict on one domain segment: the implicated set is the domain's
// own HOP pair — the bias is computed from the domain's ingress/egress
// delta, so no neighbor shares the blame.
func BlameMarkerBias(epoch EpochID, seg Segment, rep MarkerBiasReport) Blame {
	return Blame{
		Epoch:    epoch,
		Evidence: EvMarkerBias,
		LinkID:   -1,
		HOPs:     []receipt.HOPID{seg.Up, seg.Down},
		Domains:  []string{seg.Name},
		Count:    1,
		Detail: fmt.Sprintf("domain %s: marker p90 %.3fms vs σ-sample p90 %.3fms",
			seg.Name, rep.MarkerP90MS, rep.OtherP90MS),
	}
}

// BlameHOP builds a direct, single-HOP attribution for
// dissemination-layer evidence (signature failures, epoch replays,
// withheld bundles, equivocation): the origin signed — or failed to
// produce — the offending bundle itself, so no second domain shares
// the blame.
func BlameHOP(layout Layout, epoch EpochID, ev EvidenceClass, hop receipt.HOPID, count int, detail string) Blame {
	return Blame{
		Epoch:    epoch,
		Evidence: ev,
		LinkID:   -1,
		HOPs:     []receipt.HOPID{hop},
		Domains:  []string{layout.domainOf(hop)},
		Count:    count,
		Detail:   detail,
	}
}

// domainOf names the domain owning a HOP: the explicit per-segment
// domain fields first (any segment kind), then the domain segments by
// name, then the linear-era link-name fallback for stub HOPs.
func (l Layout) domainOf(hop receipt.HOPID) string {
	for _, s := range l.Segments {
		if s.Up == hop && s.UpDomain != "" {
			return s.UpDomain
		}
		if s.Down == hop && s.DownDomain != "" {
			return s.DownDomain
		}
	}
	for _, s := range l.Segments {
		if s.Kind == DomainSegment && (s.Up == hop || s.Down == hop) {
			return s.Name
		}
	}
	// Stubs: recover from the adjacent link name.
	for i, s := range l.Links() {
		if s.Up == hop {
			up, _, _ := l.LinkDomains(i)
			return up
		}
		if s.Down == hop {
			_, down, _ := l.LinkDomains(i)
			return down
		}
	}
	return ""
}

// SharedBlame is one merged blame finding across many traffic keys
// and routes: the same implicated HOP set and evidence class, with the
// supporting violations summed and the distinct contributing keys
// counted. On a mesh, a faulty shared link produces one finding per
// (key, route) crossing it; merged, the evidence concentrates on the
// link's own HOP pair — many keys implicating one narrow set — while
// honest disjoint routes contribute nothing.
type SharedBlame struct {
	Blame
	// Keys is the number of distinct traffic keys whose verdicts
	// contributed to this finding.
	Keys int
}

// MergeBlames condenses per-key blame findings into shared findings:
// one per (evidence class, implicated HOP set), counts summed, keyed
// contributions counted. Output is ordered by (HOP set, evidence) so
// mesh-wide attribution is deterministic whatever order the per-key
// verdicts arrived in. The per-route LinkID ordinals are route-local
// and meaningless across routes, so merged findings carry LinkID -1;
// the HOP pair is the global link identity.
func MergeBlames(perKey map[packet.PathKey][]Blame) []SharedBlame {
	type groupKey struct {
		ev   EvidenceClass
		hops string
	}
	hopsKey := func(hops []receipt.HOPID) string {
		sorted := append([]receipt.HOPID(nil), hops...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var b strings.Builder
		for _, h := range sorted {
			fmt.Fprintf(&b, "%d,", uint32(h))
		}
		return b.String()
	}
	merged := make(map[groupKey]*SharedBlame)
	contrib := make(map[groupKey]map[packet.PathKey]bool)
	keys := make([]packet.PathKey, 0, len(perKey))
	for k := range perKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
	for _, k := range keys {
		for _, b := range perKey[k] {
			gk := groupKey{ev: b.Evidence, hops: hopsKey(b.HOPs)}
			sb, ok := merged[gk]
			if !ok {
				cp := b
				cp.LinkID = -1
				cp.HOPs = append([]receipt.HOPID(nil), b.HOPs...)
				cp.Domains = append([]string(nil), b.Domains...)
				cp.Count = 0
				sb = &SharedBlame{Blame: cp}
				merged[gk] = sb
				contrib[gk] = make(map[packet.PathKey]bool)
			}
			sb.Count += b.Count
			contrib[gk][k] = true
		}
	}
	out := make([]SharedBlame, 0, len(merged))
	for gk, sb := range merged {
		sb.Keys = len(contrib[gk])
		out = append(out, *sb)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for x := 0; x < len(a.HOPs) && x < len(b.HOPs); x++ {
			if a.HOPs[x] != b.HOPs[x] {
				return a.HOPs[x] < b.HOPs[x]
			}
		}
		if len(a.HOPs) != len(b.HOPs) {
			return len(a.HOPs) < len(b.HOPs)
		}
		return a.Evidence < b.Evidence
	})
	return out
}
