package core

import (
	"bytes"
	"errors"
	"testing"

	"vpm/internal/packet"
	"vpm/internal/seqdetect"
)

func mergeKey(b byte) packet.PathKey {
	return packet.PathKey{
		Src: packet.MakePrefix(10, 0, 0, b, 32),
		Dst: packet.MakePrefix(192, 0, 0, b, 32),
	}
}

func TestMergeEpochReportsReordersToCanonical(t *testing.T) {
	// A whole report split across three shards in arbitrary key order.
	whole := EpochReport{Epoch: 7, Keys: []EpochKeyReport{
		{Key: mergeKey(1), Route: 0},
		{Key: mergeKey(1), Route: 1},
		{Key: mergeKey(2), Route: 0},
		{Key: mergeKey(5), Route: 0},
	}}
	parts := []EpochReport{
		{Epoch: 7, Keys: []EpochKeyReport{{Key: mergeKey(5), Route: 0}, {Key: mergeKey(1), Route: 1}}},
		{Epoch: 7, Keys: []EpochKeyReport{{Key: mergeKey(2), Route: 0}, {Key: mergeKey(1), Route: 0}}},
		{Epoch: 7}, // shard that owned no traffic this epoch
	}
	got, err := MergeEpochReports(parts)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := EncodeEpochReport(got)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := EncodeEpochReport(whole)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("merge not canonical:\n got %s\nwant %s", gotB, wantB)
	}
}

func TestMergeEpochReportsEmptyStaysNull(t *testing.T) {
	got, err := MergeEpochReports([]EpochReport{{Epoch: 3}, {Epoch: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Keys != nil {
		t.Fatalf("all-empty merge produced non-nil Keys %v — canonical idle encoding is null", got.Keys)
	}
	b, _ := EncodeEpochReport(got)
	single, _ := EncodeEpochReport(EpochReport{Epoch: 3})
	if !bytes.Equal(b, single) {
		t.Fatalf("idle merge encodes %s, single-process idle epoch encodes %s", b, single)
	}
}

func TestMergeEpochReportsRefusals(t *testing.T) {
	cases := []struct {
		name  string
		parts []EpochReport
	}{
		{"no parts", nil},
		{"epoch mismatch", []EpochReport{{Epoch: 1}, {Epoch: 2}}},
		{"duplicate key+route", []EpochReport{
			{Epoch: 1, Keys: []EpochKeyReport{{Key: mergeKey(1), Route: 0}}},
			{Epoch: 1, Keys: []EpochKeyReport{{Key: mergeKey(1), Route: 0}}},
		}},
		{"sequential verdicts", []EpochReport{
			{Epoch: 1, Seq: []seqdetect.SeqVerdict{{}}},
			{Epoch: 1},
		}},
	}
	for _, tc := range cases {
		if _, err := MergeEpochReports(tc.parts); !errors.Is(err, ErrBadMerge) {
			t.Errorf("%s: want ErrBadMerge, got %v", tc.name, err)
		}
	}
}
