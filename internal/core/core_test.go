package core

import (
	"math"
	"testing"

	"vpm/internal/delaymodel"
	"vpm/internal/hashing"
	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

// scenario builds the Figure 1 world: a trace, the path, and a
// deployment, with optional congestion and loss inside X.
type scenario struct {
	pkts  []packet.Packet
	path  *netsim.Path
	dep   *Deployment
	key   packet.PathKey
	truth *netsim.Result
}

type scenarioOpt struct {
	ratePPS    float64
	durNS      int64
	congestX   bool
	lossX      float64
	cfg        DeployConfig
	mutatePath func(*netsim.Path)
}

func buildScenario(t testing.TB, opt scenarioOpt) *scenario {
	t.Helper()
	if opt.ratePPS == 0 {
		opt.ratePPS = 100000
	}
	if opt.durNS == 0 {
		opt.durNS = int64(1e9)
	}
	if opt.cfg.MarkerRate == 0 {
		opt.cfg = DefaultDeployConfig()
	}
	tc := trace.Config{
		Seed:       42,
		DurationNS: opt.durNS,
		Paths:      []trace.PathSpec{trace.DefaultPath(opt.ratePPS)},
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	path := netsim.Fig1Path(7)
	xi := path.DomainIndex("X")
	if opt.congestX {
		q, err := delaymodel.New(delaymodel.BurstyUDPScenario(3))
		if err != nil {
			t.Fatal(err)
		}
		path.Domains[xi].Delay = q
	}
	if opt.lossX > 0 {
		ge, err := lossmodel.FromTargetLoss(opt.lossX, 8, stats.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		path.Domains[xi].Loss = ge
	}
	if opt.mutatePath != nil {
		opt.mutatePath(path)
	}
	dep, err := NewDeployment(path, tc.Table(), opt.cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := &scenario{
		pkts: pkts,
		path: path,
		dep:  dep,
		key: packet.PathKey{
			Src: tc.Paths[0].SrcPrefix,
			Dst: tc.Paths[0].DstPrefix,
		},
	}
	res, err := path.Run(pkts, dep.Observers())
	if err != nil {
		t.Fatal(err)
	}
	sc.truth = res
	dep.Finalize()
	return sc
}

func TestCollectorValidation(t *testing.T) {
	if _, err := NewCollector(CollectorConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	tbl := packet.NewTable([]packet.Prefix{packet.MakePrefix(10, 0, 0, 0, 8)})
	if _, err := NewCollector(CollectorConfig{Table: tbl}); err == nil {
		t.Error("missing PathID builder accepted")
	}
}

func TestHonestLossEstimationIsExact(t *testing.T) {
	sc := buildScenario(t, scenarioOpt{lossX: 0.10, durNS: int64(500e6)})
	v := sc.dep.NewVerifier(sc.key)
	rep, err := v.LossBetween(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := sc.truth.DomainByName("X")
	if rep.Lost != int64(truth.DroppedInside) {
		t.Fatalf("receipt-computed loss %d != true loss %d", rep.Lost, truth.DroppedInside)
	}
	if rep.In != int64(truth.In) {
		t.Fatalf("receipt-computed input %d != true input %d", rep.In, truth.In)
	}
	if math.Abs(rep.Rate()-truth.LossRate()) > 1e-12 {
		t.Fatalf("rates differ: %v vs %v", rep.Rate(), truth.LossRate())
	}
}

func TestHonestDelayEstimation(t *testing.T) {
	sc := buildScenario(t, scenarioOpt{congestX: true, durNS: int64(500e6)})
	v := sc.dep.NewVerifier(sc.key)
	truth, _ := sc.truth.DomainByName("X")
	delays := v.DelaysBetween(4, 5)
	if len(delays) == 0 {
		t.Fatal("no matched samples")
	}
	// ~1.1% effective sampling of ~50k delivered packets.
	if len(delays) < 200 {
		t.Fatalf("only %d matched samples", len(delays))
	}
	acc, err := quantile.AccuracyNS(delays, truth.TrueDelaysNS, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's no-loss accuracy at 1% sampling is sub-millisecond.
	if acc > 2e6 {
		t.Errorf("delay accuracy %.3fms worse than 2ms at 1%% sampling, no loss", acc/1e6)
	}
	ests, err := v.DelayQuantiles(4, 5, quantile.DefaultQuantiles, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("%d estimates", len(ests))
	}
	trueP90 := stats.Quantile(truth.TrueDelaysNS, 0.9)
	if ests[1].Lo > trueP90 || ests[1].Hi < trueP90 {
		// Allow slack: the CI is for the sampled population; loss-free
		// sampling is unbiased so this should rarely trip.
		if math.Abs(ests[1].Point-trueP90) > 3e6 {
			t.Errorf("p90 estimate %v far from truth %v", ests[1].Point, trueP90)
		}
	}
}

func TestHonestPathFullyConsistent(t *testing.T) {
	sc := buildScenario(t, scenarioOpt{congestX: true, lossX: 0.25, durNS: int64(500e6)})
	v := sc.dep.NewVerifier(sc.key)
	for _, lv := range v.VerifyAllLinks() {
		if !lv.Consistent() {
			t.Errorf("honest path, link %v-%v inconsistent: %v", lv.Up, lv.Down, lv.Violations[:min(3, len(lv.Violations))])
		}
		if lv.MatchedSamples == 0 {
			t.Errorf("link %v-%v matched no samples", lv.Up, lv.Down)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAsymmetricRatesStayConsistent(t *testing.T) {
	// X samples 1%, N samples 0.1%: the subset property plus the
	// verifier's expectation logic must avoid false alarms.
	cfg := DefaultDeployConfig()
	cfg.PerDomain = map[string]Tuning{
		"N": {SampleRate: 0.001, AggRate: 0.001},
		"X": {SampleRate: 0.01, AggRate: 0.001},
	}
	sc := buildScenario(t, scenarioOpt{cfg: cfg, durNS: int64(500e6)})
	v := sc.dep.NewVerifier(sc.key)
	for _, lv := range v.VerifyAllLinks() {
		if !lv.Consistent() {
			t.Errorf("asymmetric honest path, link %v-%v: %d violations, e.g. %v",
				lv.Up, lv.Down, len(lv.Violations), lv.Violations[0])
		}
	}
	// Verification quality between X's egress (5) and N's ingress (6)
	// is limited by N's lower rate.
	if n5, n6 := v.SampleCount(5), v.SampleCount(6); n6 >= n5 {
		t.Errorf("N (rate 0.1%%) has %d samples vs X's %d", n6, n5)
	}
}

func TestDomainReport(t *testing.T) {
	sc := buildScenario(t, scenarioOpt{congestX: true, lossX: 0.10, durNS: int64(500e6)})
	v := sc.dep.NewVerifier(sc.key)
	rep, err := v.DomainReport("X", quantile.DefaultQuantiles, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := sc.truth.DomainByName("X")
	if math.Abs(rep.Loss.Rate()-truth.LossRate()) > 0.001 {
		t.Errorf("loss %v vs truth %v", rep.Loss.Rate(), truth.LossRate())
	}
	if rep.DelaySamples == 0 || len(rep.DelayEstimates) != 3 {
		t.Errorf("bad delay estimation: %+v", rep)
	}
	if _, err := v.DomainReport("Z", quantile.DefaultQuantiles, 0.95); err == nil {
		t.Error("unknown domain accepted")
	}
}

func TestBlameShiftExposedAtDownstreamLink(t *testing.T) {
	// X drops 20% and fabricates egress receipts claiming delivery.
	sc := buildScenario(t, scenarioOpt{lossX: 0.20, durNS: int64(400e6)})
	v := NewVerifier(sc.dep.Layout())
	v.SetConfig(VerifierConfig{
		MarkerThreshold:  sc.dep.markerThreshold,
		SampleThresholds: sc.dep.sampleThresholds,
	})
	// Ingest honest receipts everywhere, but replace X's egress (HOP
	// 5) with fabrications derived from its ingress (HOP 4).
	var xIngressSamples receipt.SampleReceipt
	var xIngressAggs []receipt.AggReceipt
	for hop, proc := range sc.dep.Processors {
		combined := proc.CombinedSamples()
		if hop == 5 {
			continue
		}
		for _, s := range combined {
			if s.Path.Key == sc.key {
				v.AddSampleReceipt(hop, s)
				if hop == 4 {
					xIngressSamples = s
				}
			}
		}
		var aggs []receipt.AggReceipt
		for _, a := range proc.Aggs {
			if a.Path.Key == sc.key {
				aggs = append(aggs, a)
			}
		}
		v.AddAggReceipts(hop, aggs)
		if hop == 4 {
			xIngressAggs = aggs
		}
	}
	egressPath := sc.path.PathIDFor(receipt.PathID{Key: sc.key}, sc.path.DomainIndex("X"), false)
	fs, fa := FabricateDelivery(xIngressSamples, xIngressAggs, egressPath, 500_000)
	v.AddSampleReceipt(5, fs)
	v.AddAggReceipts(5, fa)

	// X's own performance now looks perfect...
	rep, err := v.LossBetween(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 {
		t.Fatalf("fabricated receipts should show zero loss, got %d", rep.Lost)
	}
	// ...but the X-N link (HOPs 5-6) is inconsistent: X is exposed to
	// N, exactly the §3.1 strawman argument.
	lv := v.CheckLink(5, 6)
	if lv.Consistent() {
		t.Fatal("blame-shift lie went undetected")
	}
	var missing, countMismatch int
	for _, viol := range lv.Violations {
		switch viol.Kind {
		case receipt.MissingDownstream:
			missing++
		case receipt.CountMismatch:
			countMismatch++
		}
	}
	if missing == 0 {
		t.Error("no missing-downstream violations for fabricated deliveries")
	}
	if countMismatch == 0 {
		t.Error("no aggregate count mismatches for fabricated counts")
	}
	// All other links stay consistent.
	for _, seg := range v.layout.Segments {
		if seg.Kind != LinkSegment || (seg.Up == 5 && seg.Down == 6) {
			continue
		}
		if verdict := v.CheckLink(seg.Up, seg.Down); !verdict.Consistent() {
			t.Errorf("innocent link %v-%v flagged: %v", seg.Up, seg.Down, verdict.Violations[0])
		}
	}
}

func TestCoverUpShiftsBlameToColluder(t *testing.T) {
	// X lies; N covers. The X-N link becomes consistent, but the loss
	// X caused now appears INSIDE N (between HOPs 6 and 7): the
	// colluder takes the blame (§3.1).
	sc := buildScenario(t, scenarioOpt{lossX: 0.20, durNS: int64(400e6)})
	v := NewVerifier(sc.dep.Layout())
	v.SetConfig(VerifierConfig{
		MarkerThreshold:  sc.dep.markerThreshold,
		SampleThresholds: sc.dep.sampleThresholds,
	})
	var xIngressSamples receipt.SampleReceipt
	var xIngressAggs []receipt.AggReceipt
	for hop, proc := range sc.dep.Processors {
		if hop == 5 || hop == 6 {
			continue
		}
		for _, s := range proc.CombinedSamples() {
			if s.Path.Key == sc.key {
				v.AddSampleReceipt(hop, s)
				if hop == 4 {
					xIngressSamples = s
				}
			}
		}
		var aggs []receipt.AggReceipt
		for _, a := range proc.Aggs {
			if a.Path.Key == sc.key {
				aggs = append(aggs, a)
			}
		}
		v.AddAggReceipts(hop, aggs)
		if hop == 4 {
			xIngressAggs = aggs
		}
	}
	xi := sc.path.DomainIndex("X")
	ni := sc.path.DomainIndex("N")
	egressPath := sc.path.PathIDFor(receipt.PathID{Key: sc.key}, xi, false)
	nIngressPath := sc.path.PathIDFor(receipt.PathID{Key: sc.key}, ni, true)
	fs, fa := FabricateDelivery(xIngressSamples, xIngressAggs, egressPath, 500_000)
	v.AddSampleReceipt(5, fs)
	v.AddAggReceipts(5, fa)
	cover := CoverUpReceipt(fs, nIngressPath, 1_000_000)
	v.AddSampleReceipt(6, cover)
	v.AddAggReceipts(6, CoverUpAggs(fa, nIngressPath, 1_000_000))

	// The covered link looks consistent.
	if lv := v.CheckLink(5, 6); !lv.Consistent() {
		t.Fatalf("cover-up should make the X-N link consistent, got %v", lv.Violations[0])
	}
	// But N now owns X's loss.
	nLoss, err := v.LossBetween(6, 7)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := sc.truth.DomainByName("X")
	if nLoss.Lost < int64(truth.DroppedInside)*9/10 {
		t.Fatalf("colluder N shows %d lost; it should have absorbed ~%d", nLoss.Lost, truth.DroppedInside)
	}
}

func TestShavedDelaysBreakMaxDiff(t *testing.T) {
	sc := buildScenario(t, scenarioOpt{congestX: true, durNS: int64(400e6)})
	v := sc.dep.NewVerifier(sc.key)
	// Rebuild HOP 5's receipt with shaved delays.
	var in5, eg5 receipt.SampleReceipt
	for _, s := range sc.dep.Processors[4].CombinedSamples() {
		if s.Path.Key == sc.key {
			in5 = s
		}
	}
	for _, s := range sc.dep.Processors[5].CombinedSamples() {
		if s.Path.Key == sc.key {
			eg5 = s
		}
	}
	shaved := ShaveDelays(in5, eg5, 0.05)
	v2 := NewVerifier(sc.dep.Layout())
	v2.SetConfig(VerifierConfig{MarkerThreshold: sc.dep.markerThreshold, SampleThresholds: sc.dep.sampleThresholds})
	for hop, proc := range sc.dep.Processors {
		if hop == 5 {
			continue
		}
		for _, s := range proc.CombinedSamples() {
			if s.Path.Key == sc.key {
				v2.AddSampleReceipt(hop, s)
			}
		}
	}
	v2.AddSampleReceipt(5, shaved)
	lv := v2.CheckLink(5, 6)
	found := false
	for _, viol := range lv.Violations {
		if viol.Kind == receipt.DelayBound {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("shaved delays did not violate the MaxDiff bound")
	}
	// Honest receipts would not have.
	if hon := v.CheckLink(5, 6); !hon.Consistent() {
		t.Fatalf("honest congested link inconsistent: %v", hon.Violations[0])
	}
}

func TestDropSamplesExposedByEvidence(t *testing.T) {
	sc := buildScenario(t, scenarioOpt{durNS: int64(300e6)})
	v := NewVerifier(sc.dep.Layout())
	v.SetConfig(VerifierConfig{MarkerThreshold: sc.dep.markerThreshold, SampleThresholds: sc.dep.sampleThresholds})
	for hop, proc := range sc.dep.Processors {
		for _, s := range proc.CombinedSamples() {
			if s.Path.Key != sc.key {
				continue
			}
			if hop == 5 {
				s = DropSamples(s, 0.5, 99)
			}
			v.AddSampleReceipt(hop, s)
		}
	}
	lv := v.CheckLink(5, 6)
	if lv.Consistent() {
		t.Fatal("under-reporting went undetected")
	}
	missingUp := 0
	for _, viol := range lv.Violations {
		if viol.Kind == receipt.MissingUpstream {
			missingUp++
		}
	}
	if missingUp == 0 {
		t.Error("expected missing-upstream evidence against the under-reporter")
	}
}

func TestMarkerBiasDetection(t *testing.T) {
	// Extension check: a domain preferring markers (the only VPM
	// samples predictable at forwarding time) flatters its delay tail
	// but is caught by comparing marker vs non-marker delay
	// distributions.
	markerMu := hashing.ThresholdForRate(DefaultDeployConfig().MarkerRate)
	mkWorld := func(biased bool) (*scenario, *Verifier) {
		opt := scenarioOpt{congestX: true, durNS: int64(500e6)}
		if biased {
			opt.mutatePath = func(p *netsim.Path) {
				xi := p.DomainIndex("X")
				p.Domains[xi].Preferential = func(_ *packet.Packet, digest uint64) bool {
					return hashing.Exceeds(digest, markerMu)
				}
			}
		}
		sc := buildScenario(t, opt)
		return sc, sc.dep.NewVerifier(sc.key)
	}
	_, vHonest := mkWorld(false)
	rep, err := vHonest.CheckMarkerBias(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suspicious {
		t.Fatalf("honest domain flagged for marker bias: %+v", rep)
	}
	_, vBiased := mkWorld(true)
	rep, err = vBiased.CheckMarkerBias(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Suspicious {
		t.Fatalf("marker-preferring domain not flagged: %+v", rep)
	}
	if rep.MarkerP90MS >= rep.OtherP90MS {
		t.Errorf("expected flattered marker delays: %+v", rep)
	}
}

func TestMarkerBiasRequiresConfig(t *testing.T) {
	v := NewVerifier(Layout{})
	if _, err := v.CheckMarkerBias(4, 5); err == nil {
		t.Fatal("unconfigured verifier should refuse the check")
	}
}

func TestPartialDeployment(t *testing.T) {
	cfg := DefaultDeployConfig()
	cfg.SkipDomains = map[string]bool{"L": true}
	sc := buildScenario(t, scenarioOpt{cfg: cfg, durNS: int64(300e6)})
	if _, ok := sc.dep.Collectors[2]; ok {
		t.Fatal("skipped domain still has collectors")
	}
	v := sc.dep.NewVerifier(sc.key)
	// X's performance is still estimable from its own receipts.
	if _, err := v.LossBetween(4, 5); err != nil {
		t.Fatalf("X not estimable under partial deployment: %v", err)
	}
}

func TestMemoryAccounting(t *testing.T) {
	sc := buildScenario(t, scenarioOpt{durNS: int64(200e6)})
	m := sc.dep.Collectors[4].Memory()
	if m.ActivePaths != 1 {
		t.Errorf("active paths = %d, want 1", m.ActivePaths)
	}
	if m.MonitoringCacheBytes != receipt.BaseAggReceiptBytes {
		t.Errorf("cache bytes = %d", m.MonitoringCacheBytes)
	}
	if m.TempBufferPeakEntries == 0 || m.TempBufferPeakBytes == 0 {
		t.Error("temp buffer accounting empty")
	}
	obs, uncls := sc.dep.Collectors[4].Stats()
	if obs == 0 || uncls != 0 {
		t.Errorf("stats: observed=%d unclassified=%d", obs, uncls)
	}
}

func TestBandwidthOverheadUnderPaperBudget(t *testing.T) {
	sc := buildScenario(t, scenarioOpt{durNS: int64(500e6)})
	var traffic int64
	for i := range sc.pkts {
		traffic += int64(sc.pkts[i].WireLen())
	}
	// Traffic crosses 8 HOPs; compare receipts to single-path volume.
	rb := sc.dep.TotalReceiptBytes()
	frac := float64(rb) / float64(traffic)
	// The paper's headline: "less than 0.1% overhead" per domain; we
	// have 8 reporting HOPs, so allow 8x that for the whole path.
	if frac > 0.008 {
		t.Errorf("path receipt overhead %.4f%% exceeds budget", frac*100)
	}
	if rb == 0 {
		t.Error("no receipt bytes accounted")
	}
}

func TestOverheadBudgets(t *testing.T) {
	// §7.1 scenarios, paper numbers vs ours.
	paper := PaperMemoryScenario(100000, 3.125e6, 10_000_000)
	if paper.MonitoringCacheBytes != 2_000_000 {
		t.Errorf("paper cache = %d, want 2MB", paper.MonitoringCacheBytes)
	}
	if paper.TempBufferBytes < 200_000 || paper.TempBufferBytes > 450_000 {
		t.Errorf("paper temp buffer = %d, want ~218-437KB", paper.TempBufferBytes)
	}
	ours := ComputeMemoryBudget(100000, 3.125e6, 10_000_000)
	if ours.MonitoringCacheBytes <= paper.MonitoringCacheBytes {
		t.Error("our 64-bit state should cost more than the paper's 20B")
	}
	if ours.String() == "" || paper.String() == "" {
		t.Error("empty budget strings")
	}
	bw := ComputeBandwidthBudget(10, 1000, 0.01, 400)
	// The paper's scenario lands at 0.2 B/pkt, 0.046% with 22-byte
	// receipts; our receipts are larger but the order must hold.
	if bw.BytesPerPacket > 3 {
		t.Errorf("bandwidth %v B/pkt implausibly high", bw.BytesPerPacket)
	}
	if bw.OverheadFraction > 0.01 {
		t.Errorf("overhead fraction %v exceeds 1%%", bw.OverheadFraction)
	}
	if bw.String() == "" {
		t.Error("empty bandwidth string")
	}
}

func TestProcessorPolling(t *testing.T) {
	sc := buildScenario(t, scenarioOpt{durNS: int64(200e6)})
	p := sc.dep.Processors[4]
	if p.Polls() == 0 {
		t.Error("no polls recorded")
	}
	if p.ReceiptBytes() == 0 {
		t.Error("no bytes recorded")
	}
	if len(p.CombinedSamples()) == 0 {
		t.Error("no combined samples")
	}
}

func BenchmarkCollectorObserve(b *testing.B) {
	tc := trace.Config{
		Seed:       1,
		DurationNS: int64(100e6),
		Paths:      []trace.PathSpec{trace.DefaultPath(100000)},
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		b.Fatal(err)
	}
	tbl := tc.Table()
	col, err := NewCollector(CollectorConfig{
		HOP:   4,
		Table: tbl,
		PathID: func(key packet.PathKey) receipt.PathID {
			return receipt.PathID{Key: key}
		},
		Sampling:    DefaultSamplingConfig(),
		Aggregation: DefaultAggregationConfig(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := &pkts[i%len(pkts)]
		col.Observe(p, p.Digest(1), int64(i))
		if i%1000000 == 999999 {
			col.Drain()
		}
	}
}
