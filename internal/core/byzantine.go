package core

import (
	"sort"
	"sync"

	"vpm/internal/receipt"
	"vpm/internal/stats"
)

// This file is the control-plane half of the Byzantine HOP framework:
// adversaries that rewrite *sealed receipts* between collection and
// publication — the lying control plane of §2.1, which constructs
// receipts from incomplete or fabricated information rather than
// corrupting what the data plane observed (that half lives in
// netsim.Adversary). Control-plane lies can span a domain's HOP pair —
// forging egress receipts from ingress receipts — or echo a
// neighbor's claims (collusion, §3.1), so the framework buffers each
// epoch until every tapped HOP has sealed it and hands the adversary
// the complete set to corrupt at once.

// SealedEpoch is one HOP's sealed interval as the adversary sees it:
// the receipts the honest collector produced, mutable in place.
type SealedEpoch struct {
	HOP     receipt.HOPID
	Epoch   EpochID
	Samples []receipt.SampleReceipt
	Aggs    []receipt.AggReceipt
}

// EpochAdversary is a lying control plane. Taps names the HOPs whose
// sealed intervals it intercepts (the HOPs its domain owns, plus any
// upstream neighbor it colludes with); Corrupt receives one epoch's
// sealed intervals across every tapped HOP — keyed by HOP — and
// mutates them in place before publication. Corrupt is called once
// per epoch, in ascending epoch order, from a single goroutine.
type EpochAdversary interface {
	// Name identifies the adversary in reports and matrix rows.
	Name() string
	// Taps returns the HOPs whose sealed epochs the adversary
	// intercepts.
	Taps() []receipt.HOPID
	// Corrupt rewrites one epoch's sealed intervals in place.
	Corrupt(epoch EpochID, sealed map[receipt.HOPID]*SealedEpoch)
}

// adversarySink buffers sealed intervals from tapped HOPs until an
// epoch is complete across all taps, corrupts it, and forwards the
// results to the underlying sink. Non-tapped HOPs pass straight
// through. Safe for concurrent use (distinct HOPs seal from distinct
// replay goroutines); completed epochs flush in ascending order
// because every tap seals its own epochs in order.
type adversarySink struct {
	next EpochSink
	adv  EpochAdversary
	taps map[receipt.HOPID]bool

	mu      sync.Mutex
	pending map[EpochID]map[receipt.HOPID]*SealedEpoch
}

// NewAdversarySink interposes adv between an epoch pipeline and sink:
// sealed intervals from the adversary's tapped HOPs are held until the
// epoch is complete across all taps, corrupted as a set, and forwarded
// in HOP order. Chain several adversaries by wrapping repeatedly — the
// outermost wrap sees honest receipts first, and each inner layer sees
// its predecessor's output (a colluder taps the liar's already-forged
// egress, exactly as §3.1's chain argument requires).
func NewAdversarySink(sink EpochSink, adv EpochAdversary) EpochSink {
	taps := make(map[receipt.HOPID]bool)
	for _, h := range adv.Taps() {
		taps[h] = true
	}
	as := &adversarySink{
		next:    sink,
		adv:     adv,
		taps:    taps,
		pending: make(map[EpochID]map[receipt.HOPID]*SealedEpoch),
	}
	return as.seal
}

// seal is the EpochSink the wrapped pipeline drives.
func (as *adversarySink) seal(hop receipt.HOPID, epoch EpochID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) {
	if !as.taps[hop] {
		as.next(hop, epoch, samples, aggs)
		return
	}
	// The mutex stays held through Corrupt and forwarding: completed
	// epochs can be detected on different replay goroutines, and the
	// adversary contract promises serialized, ascending Corrupt calls
	// (the chain of sinks is acyclic, so holding it is deadlock-free).
	as.mu.Lock()
	defer as.mu.Unlock()
	set, ok := as.pending[epoch]
	if !ok {
		set = make(map[receipt.HOPID]*SealedEpoch, len(as.taps))
		as.pending[epoch] = set
	}
	set[hop] = &SealedEpoch{HOP: hop, Epoch: epoch, Samples: samples, Aggs: aggs}
	if len(set) < len(as.taps) {
		return
	}
	delete(as.pending, epoch)

	as.adv.Corrupt(epoch, set)
	hops := make([]receipt.HOPID, 0, len(set))
	for h := range set {
		hops = append(hops, h)
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
	for _, h := range hops {
		se := set[h]
		as.next(se.HOP, se.Epoch, se.Samples, se.Aggs)
	}
}

// epochWindow reports whether an epoch falls inside a half-open
// [from, to) activation window; to = 0 means unbounded.
func epochWindow(epoch, from, to EpochID) bool {
	return epoch >= from && (to == 0 || epoch < to)
}

// Fabricator is the blame-shift lie of §3.1 as a pluggable control
// plane: domain X drops traffic but publishes egress receipts forged
// from its ingress receipts — every packet that entered is claimed
// delivered ClaimedDelayNS later, and the egress aggregates echo the
// ingress counts (zero loss). The forged claims are inconsistent with
// the downstream neighbor's ingress receipts, which expose the missing
// packets on the shared link.
type Fabricator struct {
	// Ingress and Egress are the lying domain's HOPs.
	Ingress, Egress receipt.HOPID
	// RewritePath maps an ingress receipt's PathID to the PathID the
	// forged egress receipt must carry (Deployment paths differ per
	// HOP position).
	RewritePath func(ingress receipt.PathID) receipt.PathID
	// ClaimedDelayNS is the flattering constant transit time claimed.
	ClaimedDelayNS int64
	// From and To bound the active epochs ([From, To); To = 0 means
	// unbounded) — an attack can straddle rotations.
	From, To EpochID
}

// Name implements EpochAdversary.
func (f *Fabricator) Name() string { return "fabricate-delivery" }

// Taps implements EpochAdversary.
func (f *Fabricator) Taps() []receipt.HOPID { return []receipt.HOPID{f.Ingress, f.Egress} }

// Corrupt replaces the egress interval with a forgery of the ingress
// interval.
func (f *Fabricator) Corrupt(epoch EpochID, sealed map[receipt.HOPID]*SealedEpoch) {
	if !epochWindow(epoch, f.From, f.To) {
		return
	}
	in, eg := sealed[f.Ingress], sealed[f.Egress]
	if in == nil || eg == nil {
		return
	}
	eg.Samples = eg.Samples[:0]
	for _, s := range in.Samples {
		fs, _ := FabricateDelivery(s, nil, f.RewritePath(s.Path), f.ClaimedDelayNS)
		eg.Samples = append(eg.Samples, fs)
	}
	eg.Aggs = eg.Aggs[:0]
	for _, a := range in.Aggs {
		_, fa := FabricateDelivery(receipt.SampleReceipt{}, []receipt.AggReceipt{a}, f.RewritePath(a.Path), f.ClaimedDelayNS)
		eg.Aggs = append(eg.Aggs, fa...)
	}
}

// Colluder is the §3.1 cover-up: the downstream neighbor taps the
// liar's (already forged) egress interval and replaces its own ingress
// interval with an echo — every claimed delivery is "received"
// LinkDelayNS later, counts included. The shared link now looks
// consistent, but the vanished packets reappear as loss *inside* the
// colluder: the blame has moved, not disappeared, which is the
// paper's containment guarantee for colluding neighbor sets.
type Colluder struct {
	// LiarEgress is the upstream neighbor's egress HOP being covered.
	LiarEgress receipt.HOPID
	// OwnIngress is the colluder's ingress HOP, whose receipts are
	// replaced.
	OwnIngress receipt.HOPID
	// RewritePath maps the liar's egress PathID to the colluder's
	// ingress PathID.
	RewritePath func(liar receipt.PathID) receipt.PathID
	// LinkDelayNS is the plausible link transit claimed.
	LinkDelayNS int64
	// From and To bound the active epochs ([From, To); To = 0 means
	// unbounded).
	From, To EpochID
}

// Name implements EpochAdversary.
func (c *Colluder) Name() string { return "collude-coverup" }

// Taps implements EpochAdversary.
func (c *Colluder) Taps() []receipt.HOPID { return []receipt.HOPID{c.LiarEgress, c.OwnIngress} }

// Corrupt replaces the colluder's ingress interval with the echo.
func (c *Colluder) Corrupt(epoch EpochID, sealed map[receipt.HOPID]*SealedEpoch) {
	if !epochWindow(epoch, c.From, c.To) {
		return
	}
	liar, own := sealed[c.LiarEgress], sealed[c.OwnIngress]
	if liar == nil || own == nil {
		return
	}
	own.Samples = own.Samples[:0]
	for _, s := range liar.Samples {
		own.Samples = append(own.Samples, CoverUpReceipt(s, c.RewritePath(s.Path), c.LinkDelayNS))
	}
	own.Aggs = own.Aggs[:0]
	for _, a := range liar.Aggs {
		own.Aggs = append(own.Aggs, CoverUpAggs([]receipt.AggReceipt{a}, c.RewritePath(a.Path), c.LinkDelayNS)...)
	}
}

// RecordDropper is the under-reporting lie at the receipt level: the
// control plane deletes a deterministic fraction of its sample records
// before publication (say, the embarrassing ones), leaving aggregates
// honest. Records the neighbor did report become missing-record
// evidence against the dropper's link (§4).
type RecordDropper struct {
	// HOP whose sample records are thinned.
	HOP receipt.HOPID
	// Fraction of sample records to delete, in [0,1].
	Fraction float64
	// Seed drives the deterministic deletions.
	Seed uint64
	// From and To bound the active epochs ([From, To); To = 0 means
	// unbounded).
	From, To EpochID

	rng *stats.RNG
}

// Name implements EpochAdversary.
func (r *RecordDropper) Name() string { return "drop-sample-records" }

// Taps implements EpochAdversary.
func (r *RecordDropper) Taps() []receipt.HOPID { return []receipt.HOPID{r.HOP} }

// Corrupt thins the HOP's sample records in place.
func (r *RecordDropper) Corrupt(epoch EpochID, sealed map[receipt.HOPID]*SealedEpoch) {
	if r.rng == nil {
		r.rng = stats.NewRNG(r.Seed ^ 0xd20bbed)
	}
	if !epochWindow(epoch, r.From, r.To) {
		return
	}
	se := sealed[r.HOP]
	if se == nil {
		return
	}
	for i := range se.Samples {
		kept := se.Samples[i].Samples[:0]
		for _, rec := range se.Samples[i].Samples {
			if r.rng.Bool(r.Fraction) {
				continue
			}
			kept = append(kept, rec)
		}
		se.Samples[i].Samples = kept
	}
}

// BatchSeal packages a finalized batch deployment as epoch-0 sealed
// intervals — the bridge that lets the same EpochAdversary implementations
// attack the one-shot pipeline: seal, corrupt, then ingest the result.
func BatchSeal(d *Deployment) map[receipt.HOPID]*SealedEpoch {
	out := make(map[receipt.HOPID]*SealedEpoch, len(d.Processors))
	for hop, proc := range d.Processors {
		out[hop] = &SealedEpoch{
			HOP:     hop,
			Samples: proc.CombinedSamples(),
			Aggs:    append([]receipt.AggReceipt(nil), proc.Aggs...),
		}
	}
	return out
}

// CorruptSealed runs each adversary over the sealed intervals in the
// order given — so a colluder listed after a fabricator taps the
// fabricator's output, exactly as chained AdversarySinks do in
// continuous mode.
func CorruptSealed(sealed map[receipt.HOPID]*SealedEpoch, advs ...EpochAdversary) {
	for _, adv := range advs {
		tapped := make(map[receipt.HOPID]*SealedEpoch)
		for _, h := range adv.Taps() {
			if se, ok := sealed[h]; ok {
				tapped[h] = se
			}
		}
		adv.Corrupt(0, tapped)
	}
}

// StoreFromSealed indexes sealed intervals into a fresh receipt store,
// in HOP order — the published, possibly-lying view a batch verifier
// judges.
func StoreFromSealed(sealed map[receipt.HOPID]*SealedEpoch) *ReceiptStore {
	hops := make([]int, 0, len(sealed))
	for h := range sealed {
		hops = append(hops, int(h))
	}
	sort.Ints(hops)
	store := NewReceiptStore()
	for _, h := range hops {
		se := sealed[receipt.HOPID(h)]
		for _, s := range se.Samples {
			store.AddSamples(se.HOP, s)
		}
		store.AddAggs(se.HOP, se.Aggs)
	}
	return store
}
