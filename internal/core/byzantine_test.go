package core

import (
	"errors"
	"sync"
	"testing"

	"vpm/internal/dissem"
	"vpm/internal/receipt"
)

// recordingAdversary logs every Corrupt call.
type recordingAdversary struct {
	taps []receipt.HOPID

	mu     sync.Mutex
	epochs []EpochID
	seen   []map[receipt.HOPID]int // sample-receipt counts per call
}

func (r *recordingAdversary) Name() string          { return "recorder" }
func (r *recordingAdversary) Taps() []receipt.HOPID { return r.taps }
func (r *recordingAdversary) Corrupt(epoch EpochID, sealed map[receipt.HOPID]*SealedEpoch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epochs = append(r.epochs, epoch)
	counts := make(map[receipt.HOPID]int, len(sealed))
	for h, se := range sealed {
		counts[h] = len(se.Samples)
	}
	r.seen = append(r.seen, counts)
}

// TestAdversarySinkBuffersEpochs: the harness holds a tapped HOP's
// sealed interval until every tap sealed that epoch, hands the
// adversary the complete set in ascending epoch order, and passes
// non-tapped HOPs straight through.
func TestAdversarySinkBuffersEpochs(t *testing.T) {
	adv := &recordingAdversary{taps: []receipt.HOPID{4, 5}}
	type sealEvent struct {
		hop   receipt.HOPID
		epoch EpochID
	}
	var forwarded []sealEvent
	sink := NewAdversarySink(func(hop receipt.HOPID, epoch EpochID, samples []receipt.SampleReceipt, _ []receipt.AggReceipt) {
		forwarded = append(forwarded, sealEvent{hop, epoch})
	}, adv)

	one := []receipt.SampleReceipt{{}}
	sink(6, 0, one, nil) // not tapped: straight through
	if len(forwarded) != 1 || forwarded[0] != (sealEvent{6, 0}) {
		t.Fatalf("non-tapped HOP not passed through: %v", forwarded)
	}
	sink(4, 0, one, nil) // first tap of epoch 0: held
	if len(forwarded) != 1 || len(adv.epochs) != 0 {
		t.Fatalf("incomplete epoch leaked: fwd=%v corrupt=%v", forwarded, adv.epochs)
	}
	sink(4, 1, one, nil) // tap 4 runs ahead into epoch 1: still held
	sink(5, 0, one, nil) // epoch 0 complete: corrupted + flushed in HOP order
	if len(adv.epochs) != 1 || adv.epochs[0] != 0 {
		t.Fatalf("corrupt calls: %v, want [0]", adv.epochs)
	}
	if len(forwarded) != 3 || forwarded[1] != (sealEvent{4, 0}) || forwarded[2] != (sealEvent{5, 0}) {
		t.Fatalf("epoch 0 flush order wrong: %v", forwarded)
	}
	sink(5, 1, one, nil) // epoch 1 completes second: ascending order held
	if len(adv.epochs) != 2 || adv.epochs[1] != 1 {
		t.Fatalf("corrupt calls: %v, want [0 1]", adv.epochs)
	}
	if got := adv.seen[0]; got[4] != 1 || got[5] != 1 {
		t.Fatalf("adversary saw %v for epoch 0", got)
	}
}

// fig1Layout builds the standard 5-domain layout without a deployment.
func fig1Layout() Layout {
	return Layout{
		HOPs: []receipt.HOPID{1, 2, 3, 4, 5, 6, 7, 8},
		Segments: []Segment{
			{Kind: LinkSegment, Up: 1, Down: 2, Name: "S-L"},
			{Kind: DomainSegment, Up: 2, Down: 3, Name: "L"},
			{Kind: LinkSegment, Up: 3, Down: 4, Name: "L-X"},
			{Kind: DomainSegment, Up: 4, Down: 5, Name: "X"},
			{Kind: LinkSegment, Up: 5, Down: 6, Name: "X-N"},
			{Kind: DomainSegment, Up: 6, Down: 7, Name: "N"},
			{Kind: LinkSegment, Up: 7, Down: 8, Name: "N-D"},
		},
	}
}

// TestAttributeBlame groups violations by evidence class, names the
// link's two HOPs and adjacent domains, and stamps the epoch.
func TestAttributeBlame(t *testing.T) {
	layout := fig1Layout()
	verdicts := []LinkVerdict{
		{LinkID: 1, Up: 3, Down: 4}, // consistent: no blame
		{LinkID: 2, Up: 5, Down: 6, Violations: []receipt.Inconsistency{
			{Kind: receipt.MissingDownstream, PktID: 1},
			{Kind: receipt.CountMismatch},
			{Kind: receipt.MissingDownstream, PktID: 2},
		}},
	}
	blames := AttributeBlame(layout, 7, verdicts)
	if len(blames) != 2 {
		t.Fatalf("got %d blames, want 2: %v", len(blames), blames)
	}
	missing := blames[0]
	if missing.Evidence != EvMissingReceipt || missing.Count != 2 {
		t.Fatalf("first blame: %+v", missing)
	}
	if missing.Epoch != 7 || missing.LinkID != 2 {
		t.Fatalf("epoch/link attribution wrong: %+v", missing)
	}
	if len(missing.HOPs) != 2 || missing.HOPs[0] != 5 || missing.HOPs[1] != 6 {
		t.Fatalf("HOP set: %v", missing.HOPs)
	}
	if len(missing.Domains) != 2 || missing.Domains[0] != "X" || missing.Domains[1] != "N" {
		t.Fatalf("domain set: %v", missing.Domains)
	}
	if blames[1].Evidence != EvInconsistentAggregate || blames[1].Count != 1 {
		t.Fatalf("second blame: %+v", blames[1])
	}
}

func TestBlameHOPNamesDomain(t *testing.T) {
	layout := fig1Layout()
	b := BlameHOP(layout, 3, EvWithheldBundle, 5, 1, "no bundle")
	if len(b.HOPs) != 1 || b.HOPs[0] != 5 || b.LinkID != -1 {
		t.Fatalf("blame: %+v", b)
	}
	if len(b.Domains) != 1 || b.Domains[0] != "X" {
		t.Fatalf("HOP 5 should map to domain X: %v", b.Domains)
	}
	if s := BlameHOP(layout, 0, EvSignature, 1, 1, ""); len(s.Domains) != 1 || s.Domains[0] != "S" {
		t.Fatalf("stub HOP 1 should map to S: %v", s.Domains)
	}
}

// TestWindowStaleSealRejected: a second bundle for a sealed (HOP,
// epoch) is refused with a typed StaleSealError — the detection point
// for replayed epochs — and sealing metadata is exposed through
// MissingSeals / UnverifiedEpochs.
func TestWindowStaleSealRejected(t *testing.T) {
	hops := []receipt.HOPID{1, 2}
	win, err := NewWindowedStore(hops, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := &dissem.Bundle{Origin: 1, Epoch: 0}
	if err := win.IngestBundle(b); err != nil {
		t.Fatal(err)
	}
	if err := win.SealHOP(1, 0); err != nil {
		t.Fatal(err)
	}
	err = win.IngestBundle(b)
	var stale *StaleSealError
	if !errors.As(err, &stale) {
		t.Fatalf("replayed bundle accepted: %v", err)
	}
	if stale.HOP != 1 || stale.Epoch != 0 {
		t.Fatalf("stale error misattributed: %+v", stale)
	}
	// HOP 2 never sealed epoch 0: it is the missing seal.
	if ms := win.MissingSeals(0); len(ms) != 1 || ms[0] != 2 {
		t.Fatalf("MissingSeals: %v, want [2]", ms)
	}
	if un := win.UnverifiedEpochs(); len(un) != 1 || un[0] != 0 {
		t.Fatalf("UnverifiedEpochs: %v, want [0]", un)
	}
}

// TestFabricatorEpochWindow: outside its [From, To) activation window
// the fabricator leaves intervals untouched; inside it the egress is
// forged from the ingress.
func TestFabricatorEpochWindow(t *testing.T) {
	pathOf := func(in receipt.PathID) receipt.PathID {
		in.PrevHOP, in.NextHOP = 5, 6
		return in
	}
	fab := &Fabricator{Ingress: 4, Egress: 5, RewritePath: pathOf, ClaimedDelayNS: 100, From: 2, To: 4}
	mk := func() map[receipt.HOPID]*SealedEpoch {
		return map[receipt.HOPID]*SealedEpoch{
			4: {HOP: 4, Samples: []receipt.SampleReceipt{{Samples: []receipt.SampleRecord{{PktID: 1, TimeNS: 10}, {PktID: 2, TimeNS: 20}}}}},
			5: {HOP: 5, Samples: []receipt.SampleReceipt{{Samples: []receipt.SampleRecord{{PktID: 1, TimeNS: 15}}}}},
		}
	}
	idle := mk()
	fab.Corrupt(1, idle)
	if n := len(idle[5].Samples[0].Samples); n != 1 {
		t.Fatalf("fabricator active outside its window: egress has %d records", n)
	}
	active := mk()
	fab.Corrupt(2, active)
	recs := active[5].Samples[0].Samples
	if len(recs) != 2 || recs[0].TimeNS != 110 || recs[1].TimeNS != 120 {
		t.Fatalf("forged egress wrong: %+v", recs)
	}
}
