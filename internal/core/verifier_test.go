package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"vpm/internal/dissem"
	"vpm/internal/hashing"
	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

// buildMultiPathScenario runs the verify-pipeline acceptance scenario:
// a 16-HOP path (9 domains) carrying 64 origin-prefix paths, densely
// sampled. With lossyLink, one mid-path inter-domain link drops ~30%
// of traffic, so link checks surface real violations (missing
// downstream records past the noise tolerance, aggregate count
// mismatches).
func buildMultiPathScenario(t testing.TB, lossyLink bool) (*Deployment, []packet.PathKey) {
	t.Helper()
	const nPaths = 64
	paths := make([]trace.PathSpec, nPaths)
	keys := make([]packet.PathKey, nPaths)
	for i := range paths {
		p := trace.DefaultPath(100000.0 / nPaths)
		p.SrcPrefix = packet.MakePrefix(10, byte(i), 0, 0, 16)
		p.DstPrefix = packet.MakePrefix(192, byte(i), 0, 0, 16)
		paths[i] = p
		keys[i] = packet.PathKey{Src: p.SrcPrefix, Dst: p.DstPrefix}
	}
	tc := trace.Config{Seed: 21, DurationNS: int64(150e6), Paths: paths}
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	path := netsim.LinearPath(23, 9)
	if n := path.NumHOPs(); n != 16 {
		t.Fatalf("scenario has %d HOPs, want 16", n)
	}
	if lossyLink {
		ge, err := lossmodel.FromTargetLoss(0.30, 4, stats.NewRNG(29))
		if err != nil {
			t.Fatal(err)
		}
		path.Links[3].Loss = ge
	}
	dc := DefaultDeployConfig()
	dc.Default.SampleRate = 0.3
	dc.Default.AggRate = 0.001
	dep, err := NewDeployment(path, tc.Table(), dc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := path.Run(pkts, dep.Observers()); err != nil {
		t.Fatal(err)
	}
	dep.Finalize()
	return dep, keys
}

// configured returns a verifier over the shared store with the given
// worker-pool size.
func configured(dep *Deployment, store *ReceiptStore, key packet.PathKey, workers int) *Verifier {
	v := dep.NewVerifierOn(store, key)
	cfg := dep.VerifierConfig()
	cfg.Workers = workers
	v.SetConfig(cfg)
	return v
}

// TestParallelVerifyEquivalence is the tentpole acceptance test:
// VerifyAllLinks and DomainReports on the 16-HOP, 64-path scenario
// must produce verdicts byte-identical to the serial verifier — for
// the shared indexed store at any pool size, and for the legacy
// per-key rebuilt store.
func TestParallelVerifyEquivalence(t *testing.T) {
	dep, keys := buildMultiPathScenario(t, true)
	store := dep.NewStore()
	var totalViolations, totalMatched int
	for _, key := range keys {
		serial := configured(dep, store, key, 1)
		parallel := configured(dep, store, key, 4)
		rebuilt := dep.NewVerifier(key) // private store, default pool

		sv := serial.VerifyAllLinks()
		pv := parallel.VerifyAllLinks()
		rv := rebuilt.VerifyAllLinks()
		sr, pr := fmt.Sprintf("%+v", sv), fmt.Sprintf("%+v", pv)
		if sr != pr {
			t.Fatalf("key %v: parallel verdicts differ from serial:\nserial:   %s\nparallel: %s", key, sr, pr)
		}
		if rr := fmt.Sprintf("%+v", rv); rr != sr {
			t.Fatalf("key %v: rebuilt-store verdicts differ from shared-store:\nshared:  %s\nrebuilt: %s", key, sr, rr)
		}
		if !reflect.DeepEqual(sv, pv) {
			t.Fatalf("key %v: DeepEqual mismatch between serial and parallel verdicts", key)
		}
		for i, lv := range sv {
			if lv.LinkID != i {
				t.Fatalf("key %v: verdict %d has LinkID %d; want path order", key, i, lv.LinkID)
			}
			totalViolations += len(lv.Violations)
			totalMatched += lv.MatchedSamples
		}

		sd, serr := serial.DomainReports(nil, 0.95)
		pd, perr := parallel.DomainReports(nil, 0.95)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("key %v: error mismatch: %v vs %v", key, serr, perr)
		}
		if ds, dp := fmt.Sprintf("%+v", sd), fmt.Sprintf("%+v", pd); ds != dp {
			t.Fatalf("key %v: parallel domain reports differ from serial", key)
		}
	}
	// The scenario must be non-trivial: dense matching everywhere and
	// real violations on the faulty link.
	if totalMatched == 0 {
		t.Fatal("no matched samples anywhere — scenario degenerate")
	}
	if totalViolations == 0 {
		t.Fatal("lossy link produced no violations — scenario degenerate")
	}
}

// TestVerifyAllLinksDetectsFaultyLink pins the faulty link down to the
// right LinkID on the multi-path scenario.
func TestVerifyAllLinksDetectsFaultyLink(t *testing.T) {
	dep, keys := buildMultiPathScenario(t, true)
	store := dep.NewStore()
	// Link 3 connects domain 3's egress (HOP 7) to domain 4's ingress
	// (HOP 8).
	badUp, badDown := receipt.HOPID(7), receipt.HOPID(8)
	flagged := 0
	for _, key := range keys {
		for _, lv := range configured(dep, store, key, 0).VerifyAllLinks() {
			if lv.Consistent() {
				continue
			}
			if lv.Up != badUp || lv.Down != badDown {
				t.Fatalf("key %v: violations on healthy link %v-%v: %v", key, lv.Up, lv.Down, lv.Violations[0])
			}
			flagged++
		}
	}
	if flagged < len(keys)/2 {
		t.Fatalf("faulty link flagged on only %d/%d keys", flagged, len(keys))
	}
}

// TestStoreKeyedIsolation checks that a restricted verifier never
// reads another path's receipts out of the shared store.
func TestStoreKeyedIsolation(t *testing.T) {
	dep, keys := buildMultiPathScenario(t, false)
	store := dep.NewStore()
	if got := len(store.Keys()); got != len(keys) {
		t.Fatalf("store holds %d traffic keys, want %d", got, len(keys))
	}
	shared := configured(dep, store, keys[0], 1)
	private := dep.NewVerifier(keys[0])
	for _, hop := range dep.Layout().HOPs {
		if s, p := shared.SampleCount(hop), private.SampleCount(hop); s != p {
			t.Fatalf("HOP %v: shared store sees %d samples, private rebuild %d", hop, s, p)
		}
	}
}

// TestStreamingIngestMatchesBatch feeds the deployment's receipts
// through the signed-bundle streaming path — concurrently, from four
// producer channels — and requires verdicts byte-identical to the
// batch-built verifier.
func TestStreamingIngestMatchesBatch(t *testing.T) {
	dep, keys := buildMultiPathScenario(t, true)

	// Sign one bundle per HOP.
	reg := dissem.Registry{}
	var bundles []dissem.SignedBundle
	for hop, proc := range dep.Processors {
		var seed [32]byte
		seed[0] = byte(hop)
		signer := dissem.NewSigner(seed)
		reg[hop] = signer.Public()
		bundles = append(bundles, signer.Sign(&dissem.Bundle{
			Origin:  hop,
			Samples: proc.CombinedSamples(),
			Aggs:    proc.Aggs,
		}))
	}

	v := NewVerifierFor(dep.Layout(), keys[7])
	v.SetConfig(dep.VerifierConfig())
	const producers = 4
	chans := make([]chan dissem.SignedBundle, producers)
	for i := range chans {
		chans[i] = make(chan dissem.SignedBundle)
	}
	var wg sync.WaitGroup
	errs := make([]error, producers)
	for i := range chans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = v.IngestBundles(reg, chans[i])
		}(i)
	}
	for i, sb := range bundles {
		chans[i%producers] <- sb
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	want := fmt.Sprintf("%+v", dep.NewVerifier(keys[7]).VerifyAllLinks())
	got := fmt.Sprintf("%+v", v.VerifyAllLinks())
	if got != want {
		t.Fatalf("streamed-ingest verdicts differ from batch:\nbatch:  %s\nstream: %s", want, got)
	}
}

// TestIngestRejectsBadBundles checks the streaming path's signature
// discipline: forged or unknown-origin bundles never enter the store.
func TestIngestRejectsBadBundles(t *testing.T) {
	var seed [32]byte
	seed[0] = 1
	legit := dissem.NewSigner(seed)
	seed[0] = 2
	evil := dissem.NewSigner(seed)
	reg := dissem.Registry{4: legit.Public()}

	path := receipt.PathKeyOf(
		packet.MakePrefix(10, 1, 0, 0, 16),
		packet.MakePrefix(172, 16, 0, 0, 16), 3, 5, 2_000_000)
	bundle := &dissem.Bundle{Origin: 4, Samples: []receipt.SampleReceipt{{
		Path:    path,
		Samples: []receipt.SampleRecord{{PktID: 1, TimeNS: 2}},
	}}}

	v := NewVerifier(Layout{})
	if err := v.IngestSigned(reg, evil.Sign(bundle)); err == nil {
		t.Error("forged bundle accepted")
	}
	unknown := *bundle
	unknown.Origin = 9
	if err := v.IngestSigned(reg, legit.Sign(&unknown)); err == nil {
		t.Error("unknown-origin bundle accepted")
	}
	if got := v.SampleCount(4); got != 0 {
		t.Fatalf("rejected bundles left %d samples in the store", got)
	}

	// A bad bundle mid-stream drains the channel and reports the error.
	ch := make(chan dissem.SignedBundle, 3)
	ch <- legit.Sign(bundle)
	ch <- evil.Sign(bundle)
	ch <- legit.Sign(bundle)
	close(ch)
	if err := v.IngestBundles(reg, ch); err == nil {
		t.Error("stream with forged bundle reported no error")
	}
	if got := v.SampleCount(4); got != 1 {
		t.Fatalf("stream ingested %d distinct samples, want 1 (pre-error bundle only)", got)
	}
}

// TestMergedViewTracksLaterIngest guards the unrestricted multi-key
// path: once a HOP has receipts for several traffic keys, further
// ingest into an existing key must invalidate the cached merged view,
// not leave queries answering from a stale snapshot.
func TestMergedViewTracksLaterIngest(t *testing.T) {
	keyA := receipt.PathKeyOf(
		packet.MakePrefix(10, 1, 0, 0, 16),
		packet.MakePrefix(172, 16, 0, 0, 16), 3, 5, 2_000_000)
	keyB := receipt.PathKeyOf(
		packet.MakePrefix(10, 2, 0, 0, 16),
		packet.MakePrefix(172, 16, 0, 0, 16), 3, 5, 2_000_000)
	v := NewVerifier(Layout{})
	v.AddSampleReceipt(4, receipt.SampleReceipt{Path: keyA,
		Samples: []receipt.SampleRecord{{PktID: 1, TimeNS: 10}}})
	v.AddSampleReceipt(4, receipt.SampleReceipt{Path: keyB,
		Samples: []receipt.SampleRecord{{PktID: 2, TimeNS: 20}}})
	if got := v.SampleCount(4); got != 2 {
		t.Fatalf("after two keys: %d samples, want 2", got)
	}
	// Ingest into an already-existing index after the merge was built.
	v.AddSampleReceipt(4, receipt.SampleReceipt{Path: keyA,
		Samples: []receipt.SampleRecord{{PktID: 3, TimeNS: 30}}})
	if got := v.SampleCount(4); got != 3 {
		t.Fatalf("after late ingest: %d samples, want 3 (stale merged view?)", got)
	}
	v.AddAggReceipts(4, []receipt.AggReceipt{{Path: keyA, PktCnt: 7}})
	v.AddSampleReceipt(5, receipt.SampleReceipt{Path: keyA,
		Samples: []receipt.SampleRecord{{PktID: 1, TimeNS: 15}, {PktID: 3, TimeNS: 35}}})
	if got := len(v.DelaysBetween(4, 5)); got != 2 {
		t.Fatalf("%d matched delays across late-ingested samples, want 2", got)
	}
}

// TestMissingToleranceDefaultsAndOverrides covers the §5.3 noise
// tolerance arithmetic directly.
func TestMissingToleranceDefaultsAndOverrides(t *testing.T) {
	v := NewVerifier(Layout{})
	// Zero config: floor 10, 5% fraction.
	for _, tc := range []struct{ matched, want int }{
		{0, 10}, {1, 10}, {199, 10}, {200, 10}, {201, 10}, {400, 20}, {10000, 500},
	} {
		if got := v.missingTolerance(tc.matched); got != tc.want {
			t.Errorf("default tolerance(%d) = %d, want %d", tc.matched, got, tc.want)
		}
	}
	// Explicit config.
	v.SetConfig(VerifierConfig{MissingToleranceFraction: 0.5, MissingToleranceFloor: 2})
	if got := v.missingTolerance(10); got != 5 {
		t.Errorf("tolerance(10) at 50%%/floor2 = %d, want 5", got)
	}
	if got := v.missingTolerance(2); got != 2 {
		t.Errorf("tolerance(2) at 50%%/floor2 = %d, want floor 2", got)
	}
	// Negative values fall back to the defaults.
	v.SetConfig(VerifierConfig{MissingToleranceFraction: -1, MissingToleranceFloor: -1})
	if got := v.missingTolerance(10000); got != 500 {
		t.Errorf("negative config tolerance(10000) = %d, want default 500", got)
	}
}

// markerSplit draws n uniform packet digests and partitions them into
// markers and others under mu (digests, not sequence numbers: the
// marker test compares a digest against µ directly).
func markerSplit(n int, mu uint64) (markers, others []uint64) {
	rng := stats.NewRNG(97)
	for i := 0; i < n; i++ {
		id := rng.Uint64()
		if hashing.Exceeds(id, mu) {
			markers = append(markers, id)
		} else {
			others = append(others, id)
		}
	}
	return markers, others
}

// biasWorld hand-builds two HOPs whose marker samples cross with delay
// markerDelay and whose σ-keyed samples cross with otherDelay.
func biasWorld(t *testing.T, mu uint64, markerDelay, otherDelay int64) *Verifier {
	t.Helper()
	markers, others := markerSplit(4000, mu)
	if len(markers) < 10 || len(others) < 10 {
		t.Fatalf("degenerate split: %d markers, %d others", len(markers), len(others))
	}
	var up, down []receipt.SampleRecord
	tNS := int64(0)
	add := func(id uint64, delay int64) {
		up = append(up, receipt.SampleRecord{PktID: id, TimeNS: tNS})
		down = append(down, receipt.SampleRecord{PktID: id, TimeNS: tNS + delay})
		tNS += 1000
	}
	for _, id := range markers {
		add(id, markerDelay)
	}
	for _, id := range others {
		add(id, otherDelay)
	}
	v := NewVerifier(Layout{})
	v.SetConfig(VerifierConfig{MarkerThreshold: mu})
	v.AddSampleReceipt(1, receipt.SampleReceipt{Samples: up})
	v.AddSampleReceipt(2, receipt.SampleReceipt{Samples: down})
	return v
}

// TestCheckMarkerBiasEdgeCases covers the error paths: missing
// configuration, empty sample sets, and too-thin populations.
func TestCheckMarkerBiasEdgeCases(t *testing.T) {
	// Unconfigured µ.
	v := NewVerifier(Layout{})
	if _, err := v.CheckMarkerBias(1, 2); err == nil {
		t.Error("unconfigured marker threshold accepted")
	}
	// Configured but empty: no receipts at all.
	mu := hashing.ThresholdForRate(0.5)
	v.SetConfig(VerifierConfig{MarkerThreshold: mu})
	rep, err := v.CheckMarkerBias(1, 2)
	if err == nil {
		t.Error("empty sample sets accepted")
	}
	if rep.MarkerN != 0 || rep.OtherN != 0 {
		t.Errorf("empty report has counts %d/%d", rep.MarkerN, rep.OtherN)
	}
	// One thin HOP: a single shared sample is still too few.
	v.AddSampleReceipt(1, receipt.SampleReceipt{Samples: []receipt.SampleRecord{{PktID: 1, TimeNS: 0}}})
	v.AddSampleReceipt(2, receipt.SampleReceipt{Samples: []receipt.SampleRecord{{PktID: 1, TimeNS: 5}}})
	if _, err := v.CheckMarkerBias(1, 2); err == nil {
		t.Error("thin populations accepted")
	}
}

// TestCheckMarkerBiasSingleHOP compares a HOP against itself: every
// delay is zero, which must read as unbiased.
func TestCheckMarkerBiasSingleHOP(t *testing.T) {
	mu := hashing.ThresholdForRate(0.5)
	markers, others := markerSplit(200, mu)
	var recs []receipt.SampleRecord
	for i, id := range append(markers, others...) {
		recs = append(recs, receipt.SampleRecord{PktID: id, TimeNS: int64(i) * 1000})
	}
	v := NewVerifier(Layout{})
	v.SetConfig(VerifierConfig{MarkerThreshold: mu})
	v.AddSampleReceipt(3, receipt.SampleReceipt{Samples: recs})
	rep, err := v.CheckMarkerBias(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suspicious {
		t.Errorf("self-comparison flagged as biased: %+v", rep)
	}
	if rep.MarkerP90MS != 0 || rep.OtherP90MS != 0 {
		t.Errorf("self-comparison has non-zero delays: %+v", rep)
	}
}

// TestCheckMarkerBiasDetectsPreferentialMarkers pins the detector's
// two sides: preferential marker treatment trips it, honest uniform
// treatment does not.
func TestCheckMarkerBiasDetectsPreferentialMarkers(t *testing.T) {
	mu := hashing.ThresholdForRate(0.5)
	biased := biasWorld(t, mu, 1_000, 5_000_000)
	rep, err := biased.CheckMarkerBias(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Suspicious {
		t.Errorf("fast markers not flagged: %+v", rep)
	}
	honest := biasWorld(t, mu, 5_000_000, 5_000_000)
	rep, err = honest.CheckMarkerBias(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suspicious {
		t.Errorf("uniform treatment flagged: %+v", rep)
	}
}

// TestDelayQuantilesZeroConfidence checks that a zero (or one)
// confidence is rejected at the estimation layer rather than
// producing degenerate bounds.
func TestDelayQuantilesZeroConfidence(t *testing.T) {
	v := NewVerifier(Layout{})
	recs := make([]receipt.SampleRecord, 50)
	for i := range recs {
		recs[i] = receipt.SampleRecord{PktID: uint64(i + 1), TimeNS: int64(i) * 1000}
	}
	v.AddSampleReceipt(1, receipt.SampleReceipt{Samples: recs})
	v.AddSampleReceipt(2, receipt.SampleReceipt{Samples: recs})
	if _, err := v.DelayQuantiles(1, 2, []float64{0.5}, 0); err == nil {
		t.Error("zero confidence accepted")
	}
	if _, err := v.DelayQuantiles(1, 2, []float64{0.5}, 1); err == nil {
		t.Error("confidence 1 accepted")
	}
	if _, err := v.DelayQuantiles(1, 2, []float64{0.5}, 0.95); err != nil {
		t.Errorf("valid confidence rejected: %v", err)
	}
}
