package core

import (
	"bytes"
	"reflect"
	"testing"

	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/trace"
)

// equivTraceConfig builds a multi-path trace so collectors hold several
// active paths (exercising shard spread and drain ordering). Total rate
// is split evenly across paths.
func equivTraceConfig(paths int, totalPPS float64, durationNS int64) trace.Config {
	cfg := trace.Config{Seed: 42, DurationNS: durationNS}
	for i := 0; i < paths; i++ {
		cfg.Paths = append(cfg.Paths, trace.PathSpec{
			SrcPrefix:    packet.MakePrefix(10, byte(1+i), 0, 0, 16),
			DstPrefix:    packet.MakePrefix(172, byte(16+i), 0, 0, 16),
			RatePPS:      totalPPS / float64(paths),
			ActiveFlows:  32,
			MeanFlowPkts: 50,
			UDPFraction:  0.2,
		})
	}
	return cfg
}

// runDeployment replays pkts over a fresh Fig1 path (same seed every
// call, so loss/jitter randomness is identical across runs) into a
// deployment with the given shard count, and finalizes it.
func runDeployment(t testing.TB, tc trace.Config, pkts []packet.Packet, shards int) (*Deployment, *netsim.Result) {
	t.Helper()
	path := netsim.Fig1Path(77)
	dc := DefaultDeployConfig()
	dc.Shards = shards
	dep, err := NewDeployment(path, tc.Table(), dc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := path.Run(pkts, dep.Observers())
	if err != nil {
		t.Fatal(err)
	}
	dep.Finalize()
	return dep, res
}

// encodeReceipts renders a HOP's full receipt output to wire bytes, so
// equivalence can be asserted byte-for-byte.
func encodeReceipts(samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) []byte {
	var b []byte
	for _, s := range samples {
		b = s.AppendBinary(b)
	}
	for _, a := range aggs {
		b = a.AppendBinary(b)
	}
	return b
}

// TestShardedSerialEquivalence is the acceptance check of the sharded
// pipeline: a sharded deployment (4 shards) and a serial deployment
// fed the same 100k-packet trace emit byte-identical receipt sets at
// every HOP, with matching counters and memory accounting.
func TestShardedSerialEquivalence(t *testing.T) {
	tc := equivTraceConfig(3, 100_000, int64(1e9)) // ~100k packets over 3 paths
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 90_000 {
		t.Fatalf("trace too small for the acceptance scale: %d packets", len(pkts))
	}

	serial, resS := runDeployment(t, tc, pkts, 1)
	sharded, resP := runDeployment(t, tc, pkts, 4)

	if !reflect.DeepEqual(resS, resP) {
		t.Fatal("ground truth differs between serial and sharded runs")
	}
	for id, sc := range serial.Collectors {
		pc, ok := sharded.Collectors[id]
		if !ok {
			t.Fatalf("sharded deployment missing %v", id)
		}
		if shc, ok := pc.(*ShardedCollector); !ok {
			t.Fatalf("%v: expected a ShardedCollector, got %T", id, pc)
		} else if shc.NumShards() != 4 {
			t.Fatalf("%v: expected 4 shards, got %d", id, shc.NumShards())
		}
		so, su := sc.Stats()
		po, pu := pc.Stats()
		if so != po || su != pu {
			t.Errorf("%v: stats differ: serial (%d,%d) sharded (%d,%d)", id, so, su, po, pu)
		}
		sm, pm := sc.Memory(), pc.Memory()
		if sm.ActivePaths != pm.ActivePaths {
			t.Errorf("%v: active paths differ: %d vs %d", id, sm.ActivePaths, pm.ActivePaths)
		}
		if sm.TempBufferPeakEntries != pm.TempBufferPeakEntries {
			t.Errorf("%v: temp-buffer peak differs: %d vs %d", id, sm.TempBufferPeakEntries, pm.TempBufferPeakEntries)
		}

		ps, pp := serial.Processors[id], sharded.Processors[id]
		if !bytes.Equal(encodeReceipts(ps.Samples, ps.Aggs), encodeReceipts(pp.Samples, pp.Aggs)) {
			t.Errorf("%v: receipt wire bytes differ between serial and sharded", id)
		}
		if !reflect.DeepEqual(ps.Samples, pp.Samples) {
			t.Errorf("%v: sample receipts differ", id)
		}
		if !reflect.DeepEqual(ps.Aggs, pp.Aggs) {
			t.Errorf("%v: aggregate receipts differ", id)
		}
	}
}

// TestDrainDeterminism is the regression test for the old
// map-iteration drain order: two identical runs must produce identical
// (ordered) drain output, for both collector variants.
func TestDrainDeterminism(t *testing.T) {
	tc := equivTraceConfig(5, 50_000, int64(400e6))
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		var prev map[receipt.HOPID][]byte
		for run := 0; run < 2; run++ {
			dep, _ := runDeployment(t, tc, pkts, shards)
			cur := make(map[receipt.HOPID][]byte)
			for id, p := range dep.Processors {
				cur[id] = encodeReceipts(p.Samples, p.Aggs)
			}
			if prev != nil {
				for id, b := range cur {
					if !bytes.Equal(prev[id], b) {
						t.Errorf("shards=%d %v: drain output differs between identical runs", shards, id)
					}
				}
			}
			prev = cur
		}
	}
}

// TestShardedCollectorDirect exercises the collector layer without the
// simulator: single-packet Observe on a serial collector versus
// ObserveBatch on a sharded one must agree on receipts, counters and
// active paths — including unclassified traffic.
func TestShardedCollectorDirect(t *testing.T) {
	tc := equivTraceConfig(4, 40_000, int64(500e6))
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CollectorConfig{
		HOP:   4,
		Table: tc.Table(),
		PathID: func(key packet.PathKey) receipt.PathID {
			return receipt.PathID{Key: key, PrevHOP: 3, NextHOP: 5, MaxDiffNS: 3_000_000}
		},
		Sampling:    DefaultSamplingConfig(),
		Aggregation: DefaultAggregationConfig(),
	}
	serial, err := NewCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 8
	sharded, err := NewShardedCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// An unclassifiable packet interleaved every 1000 packets.
	alien := pkts[0]
	alien.Src = [4]byte{192, 0, 2, 1}
	alien.Dst = [4]byte{198, 51, 100, 1}

	var batch []netsim.Observation
	flushBatch := func() {
		sharded.ObserveBatch(batch)
		batch = batch[:0]
	}
	for i := range pkts {
		pkt := &pkts[i]
		digest := pkt.Digest(1)
		tNS := int64(i) * 10_000
		serial.Observe(pkt, digest, tNS)
		batch = append(batch, netsim.Observation{Pkt: pkt, Digest: digest, TimeNS: tNS})
		if i%1000 == 999 {
			serial.Observe(&alien, alien.Digest(1), tNS)
			batch = append(batch, netsim.Observation{Pkt: &alien, Digest: alien.Digest(1), TimeNS: tNS})
		}
		if len(batch) >= 4096 {
			flushBatch()
		}
	}
	flushBatch()

	so, su := serial.Stats()
	po, pu := sharded.Stats()
	if so != po || su != pu {
		t.Fatalf("stats differ: serial (%d,%d) sharded (%d,%d)", so, su, po, pu)
	}
	if su == 0 {
		t.Fatal("test expected unclassified packets")
	}
	if sp, pp := serial.Memory().ActivePaths, sharded.Memory().ActivePaths; sp != pp || sp != 4 {
		t.Fatalf("active paths: serial %d sharded %d (want 4)", sp, pp)
	}
	ss, sa := serial.Drain()
	hs, ha := sharded.Drain()
	if !bytes.Equal(encodeReceipts(ss, sa), encodeReceipts(hs, ha)) {
		t.Fatal("drained receipts differ between serial Observe and sharded ObserveBatch")
	}
	ss, sa = serial.Flush()
	hs, ha = sharded.Flush()
	if !bytes.Equal(encodeReceipts(ss, sa), encodeReceipts(hs, ha)) {
		t.Fatal("flushed receipts differ between serial Observe and sharded ObserveBatch")
	}
}

// TestShardedReplayRace drives the fully concurrent configuration —
// parallel per-HOP replay feeding sharded collectors that fan out over
// shard goroutines — so `go test -race` patrols the whole pipeline.
func TestShardedReplayRace(t *testing.T) {
	tc := equivTraceConfig(4, 100_000, int64(1e9))
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	dep, res := runDeployment(t, tc, pkts, 4)
	var observed uint64
	for _, c := range dep.Collectors {
		o, _ := c.Stats()
		observed += o
	}
	if observed == 0 || res.Delivered == 0 {
		t.Fatalf("concurrent run observed nothing: %d observations, %d delivered", observed, res.Delivered)
	}
}
