package core

import (
	"fmt"
	"strings"
	"testing"

	"vpm/internal/hashing"
	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

// topoTraceConfig builds a trace with one path spec per key.
func topoTraceConfig(keys []packet.PathKey, ratePPS float64, durNS int64) trace.Config {
	tc := trace.Config{Seed: 21, DurationNS: durNS}
	for _, k := range keys {
		tc.Paths = append(tc.Paths, trace.PathSpec{
			SrcPrefix:    k.Src,
			DstPrefix:    k.Dst,
			RatePPS:      ratePPS,
			ActiveFlows:  8,
			MeanFlowPkts: 50,
			UDPFraction:  0.2,
		})
	}
	return tc
}

// meshDeployConfig samples densely enough that per-key link checks see
// real populations at test scale.
func meshDeployConfig() DeployConfig {
	dc := DefaultDeployConfig()
	dc.MarkerRate = 0.004
	dc.Default.SampleRate = 0.05
	dc.Default.AggRate = 0.001
	return dc
}

// runTopo deploys cfg on topo, runs pkts, and returns the finalized
// deployment with its shared store.
func runTopo(t testing.TB, topo *netsim.Topology, tc trace.Config, pkts []packet.Packet, dc DeployConfig) (*Deployment, *ReceiptStore) {
	t.Helper()
	dep, err := NewTopoDeployment(topo, tc.Table(), dc)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := netsim.NewTopoRunner(topo, tc.Table())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(pkts, dep.Observers()); err != nil {
		t.Fatal(err)
	}
	dep.Finalize()
	return dep, dep.NewStore()
}

// meshVerdicts verifies every (key, route) of a topo deployment over
// store and returns the per-key blames plus all link verdicts keyed by
// (key, route).
func meshVerdicts(dep *Deployment, store *ReceiptStore) (map[packet.PathKey][]Blame, map[string][]LinkVerdict) {
	perKey := make(map[packet.PathKey][]Blame)
	verdicts := make(map[string][]LinkVerdict)
	for _, key := range dep.Topo.Keys() {
		for ri, layout := range dep.KeyLayouts()[key] {
			v := NewVerifierOn(layout, store, key)
			v.SetConfig(dep.VerifierConfig())
			lvs := v.VerifyAllLinks()
			verdicts[fmt.Sprintf("%v/%d", key, ri)] = lvs
			perKey[key] = append(perKey[key], AttributeBlame(layout, 0, lvs)...)
		}
	}
	return perKey, verdicts
}

// TestTopoSharedLinkBlame is the mesh blame-localization acceptance
// check: a lossy shared access link on a star topology is blamed on
// exactly its owning domain pair by every traffic key crossing it,
// while the disjoint honest distribution links stay violation-free.
func TestTopoSharedLinkBlame(t *testing.T) {
	keys := netsim.TopoKeys(4)
	topo := netsim.StarTopology(31, 5, keys)
	ll, err := lossmodel.FromTargetLoss(0.3, 4, stats.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	topo.Links[0].Loss = ll // the shared leaf0→hub access link

	tc := topoTraceConfig(keys, 25000, 2e8)
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	dep, store := runTopo(t, topo, tc, pkts, meshDeployConfig())

	perKey, verdicts := meshVerdicts(dep, store)
	sharedEg, sharedIn := topo.LinkHOPs(0)
	implicated := map[receipt.HOPID]bool{sharedEg: true, sharedIn: true}

	// Every key must blame the shared link, and nothing else.
	for _, key := range keys {
		if len(perKey[key]) == 0 {
			t.Fatalf("key %v: faulty shared link produced no blame", key)
		}
		for _, b := range perKey[key] {
			for _, h := range b.HOPs {
				if !implicated[h] {
					t.Fatalf("key %v: blame leaked to HOP %v outside the shared link: %v", key, h, b)
				}
			}
			if b.Domains[0] != "leaf0" || b.Domains[1] != "hub" {
				t.Fatalf("key %v: blame names domains %v, want [leaf0 hub]", key, b.Domains)
			}
		}
	}
	// Honest disjoint links: zero violations anywhere else.
	for kr, lvs := range verdicts {
		for _, lv := range lvs {
			if implicated[lv.Up] && implicated[lv.Down] {
				continue
			}
			if len(lv.Violations) != 0 {
				t.Fatalf("%s: honest link %v-%v has %d violations", kr, lv.Up, lv.Down, len(lv.Violations))
			}
		}
	}

	// Merged, the findings concentrate on one narrow HOP set with every
	// key contributing.
	merged := MergeBlames(perKey)
	if len(merged) == 0 {
		t.Fatal("MergeBlames dropped all findings")
	}
	for _, sb := range merged {
		if len(sb.HOPs) != 2 || !implicated[sb.HOPs[0]] || !implicated[sb.HOPs[1]] {
			t.Fatalf("merged blame implicates %v, want the shared link pair", sb.HOPs)
		}
		if sb.Keys != len(keys) {
			t.Fatalf("merged blame %v credited to %d keys, want %d", sb.Evidence, sb.Keys, len(keys))
		}
		if sb.LinkID != -1 {
			t.Fatalf("merged blame kept a route-local LinkID %d", sb.LinkID)
		}
	}
}

// meshFingerprint renders every (key, route) link verdict and domain
// report over a store, for byte-identical cross-mode comparison — the
// mesh counterpart of verdictFingerprint.
func meshFingerprint(t *testing.T, dep *Deployment, store *ReceiptStore) string {
	t.Helper()
	var b strings.Builder
	for _, key := range dep.Topo.Keys() {
		for ri, layout := range dep.KeyLayouts()[key] {
			v := NewVerifierOn(layout, store, key)
			v.SetConfig(dep.VerifierConfig())
			fmt.Fprintf(&b, "key %v route %d\n", key, ri)
			for _, lv := range v.VerifyAllLinks() {
				fmt.Fprintf(&b, "  %+v\n", lv)
			}
			reps, err := v.DomainReports(quantile.DefaultQuantiles, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			for _, rep := range reps {
				fmt.Fprintf(&b, "  %+v\n", rep)
			}
		}
	}
	return b.String()
}

// TestMeshBatchContinuousEquivalence extends the batch/continuous
// acceptance check to a mesh fixture: the same star-topology trace
// (faulty shared link included) replayed one-shot and across rotated
// epochs produces byte-identical per-(key, route) verdicts when the
// per-epoch receipts are aggregated into one store.
func TestMeshBatchContinuousEquivalence(t *testing.T) {
	keys := netsim.TopoKeys(3)
	build := func() *netsim.Topology {
		topo := netsim.StarTopology(57, 4, keys)
		ll, err := lossmodel.FromTargetLoss(0.25, 4, stats.NewRNG(8))
		if err != nil {
			t.Fatal(err)
		}
		topo.Links[0].Loss = ll
		return topo
	}
	tc := topoTraceConfig(keys, 20000, 4e8)
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}

	// Batch arm.
	batchDep, batchStore := runTopo(t, build(), tc, append([]packet.Packet(nil), pkts...), meshDeployConfig())
	want := meshFingerprint(t, batchDep, batchStore)

	// Continuous arm: 8 rotated epochs through an EpochDriver, receipts
	// sealed per epoch and aggregated back into one store.
	const intervalNS = int64(5e7)
	topo := build()
	epDep, err := NewTopoDeployment(topo, tc.Table(), meshDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := newEpochRecorder()
	driver, err := NewEpochDriver(epDep, intervalNS, rec.sink)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := netsim.NewTopoRunner(topo, tc.Table())
	if err != nil {
		t.Fatal(err)
	}
	pcopy := append([]packet.Packet(nil), pkts...)
	start := 0
	for e := 1; e <= 8; e++ {
		horizon := int64(e) * intervalNS
		end := start
		for end < len(pcopy) && pcopy[end].SentAt < horizon {
			end++
		}
		if _, err := tr.RunSegment(pcopy[start:end], driver.Observers(), horizon); err != nil {
			t.Fatal(err)
		}
		start = end
	}
	if _, err := tr.Run(pcopy[start:], driver.Observers()); err != nil {
		t.Fatal(err)
	}
	driver.Close()

	agg := NewReceiptStore()
	for hop, sealed := range rec.byHOP {
		for _, se := range sealed {
			for _, s := range se.samples {
				agg.AddSamples(hop, s)
			}
			agg.AddAggs(hop, se.aggs)
		}
	}
	got := meshFingerprint(t, epDep, agg)
	if got != want {
		t.Fatalf("mesh verdicts differ between one-shot and rotated epochs:\nbatch:\n%s\ncontinuous:\n%s", want, got)
	}
	if !strings.Contains(want, "violations") {
		t.Fatalf("fingerprint carries no shared-link violations — the comparison proved nothing:\n%s", want)
	}
}

// TestMeshRollingVerifier drives the mesh path of the epoch pipeline
// end-to-end: a faulty shared access leg on an ECMP Clos fabric,
// epochs rotated by an EpochDriver straight into a WindowedStore, and
// a RollingVerifier with per-key route layouts (SetKeyLayouts). The
// per-epoch reports must carry one report per (key, route), confine
// every blame to the faulty link's HOP pair, check links shared by a
// key's routes exactly once per key (on the first route), and leave
// the disjoint spine legs violation-free.
func TestMeshRollingVerifier(t *testing.T) {
	keys := netsim.TopoKeys(2)
	topo := netsim.ClosTopology(91, 2, 2, keys)
	ll, err := lossmodel.FromTargetLoss(0.3, 4, stats.NewRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	topo.Links[0].Loss = ll // host0→edge0: shared by key0's two ECMP routes

	tc := topoTraceConfig(keys, 40000, 4e8)
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := NewTopoDeployment(topo, tc.Table(), meshDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	hops := make([]receipt.HOPID, 0, len(dep.Collectors))
	for h := range dep.Collectors {
		hops = append(hops, h)
	}
	win, err := NewWindowedStore(hops, 8)
	if err != nil {
		t.Fatal(err)
	}
	const intervalNS = int64(5e7) // 8 epochs
	driver, err := NewEpochDriver(dep, intervalNS, win.Sink())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := netsim.NewTopoRunner(topo, tc.Table())
	if err != nil {
		t.Fatal(err)
	}
	start := 0
	for e := 1; e <= 8; e++ {
		horizon := int64(e) * intervalNS
		end := start
		for end < len(pkts) && pkts[end].SentAt < horizon {
			end++
		}
		if _, err := tr.RunSegment(pkts[start:end], driver.Observers(), horizon); err != nil {
			t.Fatal(err)
		}
		start = end
	}
	if _, err := tr.Run(pkts[start:], driver.Observers()); err != nil {
		t.Fatal(err)
	}
	driver.Close()
	win.FinishStream()

	rolling := NewRollingVerifier(Layout{}, dep.VerifierConfig(), win, nil, 0.95)
	rolling.SetKeyLayouts(dep.KeyLayouts())
	reps, err := rolling.VerifyReady()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) < 8 {
		t.Fatalf("only %d epochs verified", len(reps))
	}

	faultEg, faultIn := topo.LinkHOPs(0)
	sawRoute1, sawViolation := false, false
	for _, rep := range reps {
		for _, kr := range rep.Keys {
			if kr.Route == 1 {
				sawRoute1 = true
				// The shared access legs were checked on route 0; the
				// route-1 report must cover only its disjoint spine leg.
				for _, lv := range kr.Links {
					if lv.Up == faultEg && lv.Down == faultIn {
						t.Fatalf("epoch %d key %v: shared link re-checked on route 1", rep.Epoch, kr.Key)
					}
				}
			}
			for _, lv := range kr.Links {
				onFault := lv.Up == faultEg && lv.Down == faultIn
				if len(lv.Violations) > 0 {
					sawViolation = true
					if !onFault {
						t.Fatalf("epoch %d key %v route %d: %d violations on honest link %v-%v",
							rep.Epoch, kr.Key, kr.Route, len(lv.Violations), lv.Up, lv.Down)
					}
				}
			}
			for _, b := range kr.Blames {
				for _, h := range b.HOPs {
					if h != faultEg && h != faultIn {
						t.Fatalf("epoch %d: blame leaked to HOP %v: %v", rep.Epoch, h, b)
					}
				}
			}
		}
	}
	if !sawRoute1 {
		t.Fatal("no per-route reports for the ECMP key's second route — SetKeyLayouts not exercised")
	}
	if !sawViolation {
		t.Fatal("faulty shared link produced no per-epoch violations")
	}
}

// TestRouteLayoutPartial: on an ECMP Clos fabric the branch/merge
// domain segments (edge domains, where a key's routes share one HOP
// but not the other) are marked Partial; the spine transit segments
// are not.
func TestRouteLayoutPartial(t *testing.T) {
	keys := netsim.TopoKeys(1)
	topo := netsim.ClosTopology(7, 2, 2, keys)
	dep, err := NewTopoDeployment(topo, topoTraceConfig(keys, 1000, 1e7).Table(), meshDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	layouts := dep.KeyLayouts()[keys[0]]
	if len(layouts) != 2 {
		t.Fatalf("want one layout per ECMP route, got %d", len(layouts))
	}
	for ri, l := range layouts {
		segs := l.DomainSegments()
		if len(segs) != 3 {
			t.Fatalf("route %d: want 3 transit domain segments, got %d", ri, len(segs))
		}
		// edge(src) — branch point, spine — fully on-route, edge(dst) —
		// merge point.
		if !segs[0].Partial || !segs[2].Partial {
			t.Fatalf("route %d: edge segments not marked Partial: %+v", ri, segs)
		}
		if segs[1].Partial {
			t.Fatalf("route %d: spine segment wrongly marked Partial", ri)
		}
	}
}

// TestTopoDeploymentNewVerifier is the regression test for the nil
// Path dereference: the single-layout convenience entry points
// (Deployment.NewVerifier / NewVerifierOn / Layout) must work on a
// mesh deployment — resolving the key's first route layout — instead
// of panicking on the nil linear path.
func TestTopoDeploymentNewVerifier(t *testing.T) {
	keys := netsim.TopoKeys(2)
	topo := netsim.StarTopology(41, 4, keys)
	tc := topoTraceConfig(keys, 20000, 1e8)
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	dep, _ := runTopo(t, topo, tc, pkts, meshDeployConfig())

	if l := dep.Layout(); len(l.HOPs) != 0 {
		t.Fatalf("mesh Layout() should be empty, got %d HOPs", len(l.HOPs))
	}
	v := dep.NewVerifier(keys[0]) // must not panic
	lvs := v.VerifyAllLinks()
	if len(lvs) != 2 {
		t.Fatalf("verifier over the key's route: %d link verdicts, want 2", len(lvs))
	}
	var matched int
	for _, lv := range lvs {
		matched += lv.MatchedSamples
	}
	if matched == 0 {
		t.Fatal("mesh NewVerifier matched no samples")
	}
	// An unrouted key yields an empty, harmless verifier.
	if lvs := dep.NewVerifierOn(dep.NewStore(), netsim.TopoKeys(9)[8]).VerifyAllLinks(); len(lvs) != 0 {
		t.Fatalf("unrouted key produced %d verdicts", len(lvs))
	}
}

// TestLinkDomainsHyphenNames is the regression test for the
// linear-path-era "A-B" name splitting: a domain legitimately named
// with a hyphen ("edge-1") used to be misattributed; explicit
// UpDomain/DownDomain fields now carry the truth, with the name split
// still honored for legacy layouts.
func TestLinkDomainsHyphenNames(t *testing.T) {
	l := Layout{
		HOPs: []receipt.HOPID{1, 2},
		Segments: []Segment{{
			Kind:       LinkSegment,
			Up:         1,
			Down:       2,
			Name:       "edge-1-core",
			UpDomain:   "edge-1",
			DownDomain: "core",
		}},
	}
	up, down, ok := l.LinkDomains(0)
	if !ok || up != "edge-1" || down != "core" {
		t.Fatalf("explicit domains ignored: got %q/%q ok=%v", up, down, ok)
	}
	// BlameHOP must resolve the owning domain through the same fields.
	b := BlameHOP(l, 0, EvSignature, 1, 1, "x")
	if len(b.Domains) != 1 || b.Domains[0] != "edge-1" {
		t.Fatalf("BlameHOP domain: got %v, want [edge-1]", b.Domains)
	}
	// Legacy layout without explicit fields: the split fallback still
	// answers (and documents the wrong answer hyphens would produce).
	legacy := Layout{Segments: []Segment{{Kind: LinkSegment, Up: 1, Down: 2, Name: "A-B"}}}
	up, down, ok = legacy.LinkDomains(0)
	if !ok || up != "A" || down != "B" {
		t.Fatalf("legacy fallback broken: got %q/%q ok=%v", up, down, ok)
	}
}

// TestCheckLinkSymmetricReorderNoise is the regression test for the
// batch/epoch noise-floor mismatch the mesh fixtures exposed: §5.3
// marker-boundary reordering desynchronizes two honest HOPs' sample
// sets symmetrically (each end records some packets the other did
// not), and the batch CheckLink used to judge each direction in
// isolation — an honest jittery link with ~40 missing records each way
// read as two-sided fabrication. The symmetric component must be
// absorbed up to the σ/µ-scaled floor; asymmetric excess (real loss or
// lies) keeps its full weight.
func TestCheckLinkSymmetricReorderNoise(t *testing.T) {
	const (
		markerRate = 0.004
		sampleRate = 0.05
	)
	mu := hashing.ThresholdForRate(markerRate)
	sigma := hashing.ThresholdForRate(sampleRate)
	layout := Layout{
		HOPs: []receipt.HOPID{1, 2},
		Segments: []Segment{{
			Kind: LinkSegment, Up: 1, Down: 2,
			Name: "A-B", UpDomain: "A", DownDomain: "B",
		}},
	}
	key := netsim.TopoKeys(1)[0]
	pid := receipt.PathID{Key: key, MaxDiffNS: 3_000_000}
	// All PktIDs are markers (digest above µ), so the verifier expects
	// every record at both ends.
	id := func(i int) uint64 { return ^uint64(0) - uint64(i) }
	build := func(extraUp, extraDown int) *Verifier {
		v := NewVerifierFor(layout, key)
		v.SetConfig(VerifierConfig{
			MarkerThreshold:  mu,
			SampleThresholds: map[receipt.HOPID]uint64{1: sigma, 2: sigma},
		})
		var up, down []receipt.SampleRecord
		for i := 0; i < 500; i++ { // matched population
			up = append(up, receipt.SampleRecord{PktID: id(i), TimeNS: int64(i)})
			down = append(down, receipt.SampleRecord{PktID: id(i), TimeNS: int64(i)})
		}
		for i := 0; i < extraUp; i++ {
			up = append(up, receipt.SampleRecord{PktID: id(1000 + i), TimeNS: int64(1000 + i)})
		}
		for i := 0; i < extraDown; i++ {
			down = append(down, receipt.SampleRecord{PktID: id(2000 + i), TimeNS: int64(2000 + i)})
		}
		v.AddSampleReceipt(1, receipt.SampleReceipt{Path: pid, Samples: up})
		v.AddSampleReceipt(2, receipt.SampleReceipt{Path: pid, Samples: down})
		return v
	}

	// Symmetric 40/40 (floor is 4·σ/µ = 50): honest reorder noise.
	lv := build(40, 40).CheckLink(1, 2)
	if !lv.Consistent() {
		t.Fatalf("symmetric reorder noise flagged as violation: %v", lv)
	}
	if lv.MissingDown != 40 || lv.MissingUp != 40 {
		t.Fatalf("missing counts not surfaced: %+v", lv)
	}
	// Asymmetric 80/0: suppression-shaped, must still be flagged.
	if lv := build(80, 0).CheckLink(1, 2); lv.Consistent() {
		t.Fatal("asymmetric missing records were absorbed as noise")
	}
	// Symmetric but huge (80/80 > floor): judged in full, flagged.
	if lv := build(80, 80).CheckLink(1, 2); lv.Consistent() {
		t.Fatal("oversized symmetric divergence was absorbed as noise")
	}
}

// TestMeshBlameIngestionOrderInvariance: AttributeBlame over a mesh is
// invariant under the order receipts arrive across HOPs. Per-HOP
// streams keep their sealed order (the dissemination cursor guarantees
// that); the interleaving across HOPs is adversarially shuffled with
// fixed seeds.
func TestMeshBlameIngestionOrderInvariance(t *testing.T) {
	keys := netsim.TopoKeys(3)
	topo := netsim.StarTopology(13, 4, keys)
	ll, err := lossmodel.FromTargetLoss(0.25, 4, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	topo.Links[0].Loss = ll
	tc := topoTraceConfig(keys, 20000, 2e8)
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	dep, _ := runTopo(t, topo, tc, pkts, meshDeployConfig())

	// Per-HOP receipt streams in sealed order.
	type hopStream struct {
		hop     receipt.HOPID
		samples []receipt.SampleReceipt
		aggs    []receipt.AggReceipt
	}
	var streams []hopStream
	for hop, proc := range dep.Processors {
		streams = append(streams, hopStream{hop: hop, samples: proc.CombinedSamples(), aggs: proc.Aggs})
	}

	fingerprint := func(store *ReceiptStore) string {
		perKey, verdicts := meshVerdicts(dep, store)
		var b strings.Builder
		for _, sb := range MergeBlames(perKey) {
			fmt.Fprintf(&b, "%v keys=%d\n", sb.Blame, sb.Keys)
		}
		for _, key := range dep.Topo.Keys() {
			for ri := range dep.KeyLayouts()[key] {
				for _, lv := range verdicts[fmt.Sprintf("%v/%d", key, ri)] {
					fmt.Fprintf(&b, "%v/%d %+v\n", key, ri, lv)
				}
			}
		}
		return b.String()
	}

	var want string
	for shuffle := uint64(0); shuffle < 5; shuffle++ {
		store := NewReceiptStore()
		rng := stats.NewRNG(1000 + shuffle)
		// Random interleaving across HOPs, order within a HOP preserved.
		pos := make([]int, len(streams)) // next sample receipt per stream
		aggDone := make([]bool, len(streams))
		remaining := 0
		for _, s := range streams {
			remaining += len(s.samples) + 1 // +1 for the agg batch
		}
		for remaining > 0 {
			i := rng.Intn(len(streams))
			s := &streams[i]
			if pos[i] < len(s.samples) {
				store.AddSamples(s.hop, s.samples[pos[i]])
				pos[i]++
				remaining--
			} else if !aggDone[i] {
				store.AddAggs(s.hop, s.aggs)
				aggDone[i] = true
				remaining--
			}
		}
		got := fingerprint(store)
		if shuffle == 0 {
			want = got
			if !strings.Contains(want, "missing-receipt") {
				t.Fatalf("fingerprint carries no shared-link findings:\n%s", want)
			}
			continue
		}
		if got != want {
			t.Fatalf("shuffle %d: blame attribution depends on ingestion order:\nwant:\n%s\ngot:\n%s", shuffle, want, got)
		}
	}
}
