package core

import (
	"bytes"
	"testing"

	"vpm/internal/hashing"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
)

// evictWorld builds a tiny deployment-free workload with two disjoint
// key populations: nKeys "wave A" source prefixes and nKeys "wave B"
// ones, all toward a single destination prefix.
func evictWorld(nKeys int) (*packet.Table, []packet.Packet, []packet.Packet) {
	prefixes := []packet.Prefix{packet.MakePrefix(172, 16, 0, 0, 16)}
	for i := 0; i < 2*nKeys; i++ {
		prefixes = append(prefixes, packet.MakePrefix(10, 0, byte(i), 0, 24))
	}
	table := packet.NewTable(prefixes)
	mk := func(wave int) []packet.Packet {
		var pkts []packet.Packet
		for i := 0; i < nKeys; i++ {
			for j := 0; j < 64; j++ {
				pkts = append(pkts, packet.Packet{
					Src:  [4]byte{10, 0, byte(wave*nKeys + i), byte(j + 1)},
					Dst:  [4]byte{172, 16, 1, 1},
					IPID: uint16(wave*10_000 + i*64 + j),
				})
			}
		}
		return pkts
	}
	return table, mk(0), mk(1)
}

func evictCfg(table *packet.Table, idleEpochs int) CollectorConfig {
	return CollectorConfig{
		HOP:   4,
		Table: table,
		PathID: func(key packet.PathKey) receipt.PathID {
			return receipt.PathID{Key: key, PrevHOP: 3, NextHOP: 5, MaxDiffNS: 3_000_000}
		},
		Sampling:        DefaultSamplingConfig(),
		Aggregation:     DefaultAggregationConfig(),
		EvictIdleEpochs: idleEpochs,
	}
}

// feedWave feeds one wave's packets at 10µs spacing starting at t0,
// returning the next free timestamp.
func feedWave(col PathCollector, pkts []packet.Packet, t0 int64) int64 {
	obs := make([]netsim.Observation, len(pkts))
	for i := range pkts {
		obs[i] = netsim.Observation{
			Pkt:    &pkts[i],
			Digest: hashing.Mix64(uint64(pkts[i].IPID) + 1),
			TimeNS: t0 + int64(i)*10_000,
		}
	}
	col.ObserveBatch(obs)
	return t0 + int64(len(pkts))*10_000
}

// TestEvictIdlePaths: with EvictIdleEpochs = 2, paths that stop seeing
// traffic are dropped from the monitoring cache after two idle Drains,
// their open aggregates force-flushed into that Drain so no packet
// count is lost; serial and sharded collectors evict identically.
func TestEvictIdlePaths(t *testing.T) {
	const nKeys = 8
	table, waveA, waveB := evictWorld(nKeys)

	run := func(col PathCollector) (activeAfter int, total uint64, stream []byte) {
		t0 := feedWave(col, waveA, 0)
		count := func(aggs []receipt.AggReceipt) {
			for _, a := range aggs {
				total += a.PktCnt
			}
		}
		encode := func(samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) {
			var arena receipt.Arena
			stream = append(stream, arena.Encode(samples, aggs)...)
		}
		s, a := col.Drain() // epoch 1: wave A active
		count(a)
		encode(s, a)
		for e := 0; e < 3; e++ { // epochs 2..4: only wave B
			t0 = feedWave(col, waveB, t0)
			s, a = col.Drain()
			count(a)
			encode(s, a)
		}
		activeAfter = col.Memory().ActivePaths
		s, a = col.Flush()
		count(a)
		encode(s, a)
		return activeAfter, total, stream
	}

	serial, err := NewCollector(evictCfg(table, 2))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedCollector(evictCfg(table, 2))
	if err != nil {
		t.Fatal(err)
	}
	keep, err := NewCollector(evictCfg(table, 0))
	if err != nil {
		t.Fatal(err)
	}

	activeSerial, totalSerial, streamSerial := run(serial)
	activeSharded, totalSharded, streamSharded := run(sharded)
	activeKeep, totalKeep, _ := run(keep)

	if activeSerial != nKeys {
		t.Errorf("serial: %d active paths after idle epochs, want %d (wave A evicted)", activeSerial, nKeys)
	}
	if activeSharded != nKeys {
		t.Errorf("sharded: %d active paths after idle epochs, want %d", activeSharded, nKeys)
	}
	if activeKeep != 2*nKeys {
		t.Errorf("no-eviction baseline: %d active paths, want %d", activeKeep, 2*nKeys)
	}

	// Every classified packet is counted exactly once regardless of
	// eviction: the idle-timeout flush reports open aggregates, it does
	// not drop them.
	want := uint64(len(waveA) + 3*len(waveB))
	if totalSerial != want || totalSharded != want || totalKeep != want {
		t.Errorf("aggregate packet counts: serial %d sharded %d keep %d, want %d",
			totalSerial, totalSharded, totalKeep, want)
	}

	if !bytes.Equal(streamSerial, streamSharded) {
		t.Error("serial and sharded receipt streams differ under eviction")
	}
}

// TestEvictResurrection: a key that goes idle, is evicted, and then
// resumes gets fresh state and keeps reporting — eviction must not
// leave a stale shard memo pointing at deleted state.
func TestEvictResurrection(t *testing.T) {
	const nKeys = 4
	table, waveA, waveB := evictWorld(nKeys)
	cfg := evictCfg(table, 1)
	cfg.Shards = 2
	col, err := NewShardedCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	count := func(aggs []receipt.AggReceipt) {
		for _, a := range aggs {
			total += a.PktCnt
		}
	}
	t0 := feedWave(col, waveA, 0)
	_, a := col.Drain()
	count(a)
	t0 = feedWave(col, waveB, t0) // A idle → evicted on next Drain
	_, a = col.Drain()
	count(a)
	if got := col.Memory().ActivePaths; got != nKeys {
		t.Fatalf("%d active paths after eviction, want %d", got, nKeys)
	}
	t0 = feedWave(col, waveA, t0) // A resumes with fresh state
	_ = t0
	if got := col.Memory().ActivePaths; got != 2*nKeys {
		t.Fatalf("%d active paths after resurrection, want %d", got, 2*nKeys)
	}
	_, a = col.Flush()
	count(a)
	if want := uint64(2*len(waveA) + len(waveB)); total != want {
		t.Fatalf("counted %d packets across evict/resume, want %d", total, want)
	}
}
